// Package repro is a from-scratch Go reproduction of "Matching
// Heterogeneous Event Data" (Zhu, Song, Lian, Wang, Zou — SIGMOD 2014).
//
// The public API lives in repro/ems; the command-line tools in cmd/emsmatch
// (match two logs), cmd/emsgen (generate synthetic datasets) and
// cmd/emsbench (regenerate every figure of the paper's evaluation). The
// benchmarks in this package time one representative slice of every figure;
// see DESIGN.md for the system inventory and EXPERIMENTS.md for measured
// results.
package repro
