package repro

// Benchmarks for the components beyond the paper's figures: the extra
// similarity-flooding baseline, correspondence-selection strategies, the
// Markov-weighting ablation, incremental warm-started rematching, and batch
// matching.

import (
	"math/rand"
	"testing"

	"repro/ems"
	"repro/internal/baselines/flood"
	"repro/internal/baselines/ged"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/depgraph"
	"repro/internal/matching"
)

// BenchmarkSimilarityFlooding times the extra baseline on a 20-event pair.
func BenchmarkSimilarityFlooding(b *testing.B) {
	p := benchPairLogs(b, 20)
	g1, _ := depgraph.Build(p.Log1)
	g2, _ := depgraph.Build(p.Log2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := flood.Compute(g1, g2, flood.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSelectionStrategies compares the three correspondence-selection
// strategies on a realistic similarity matrix.
func BenchmarkSelectionStrategies(b *testing.B) {
	p := benchPairLogs(b, 30)
	g1, _ := depgraph.Build(p.Log1)
	g2, _ := depgraph.Build(p.Log2)
	ga1, _ := g1.AddArtificial()
	ga2, _ := g2.AddArtificial()
	r, err := core.Compute(ga1, ga2, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	for _, s := range []matching.Strategy{matching.MaxTotal, matching.Greedy, matching.Stable} {
		b.Run(s.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := matching.SelectWith(s, r.Names1, r.Names2, r.Sim, 0.25, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationWeighting compares Definition 1 dependency weighting
// against Markov transition weighting end to end.
func BenchmarkAblationWeighting(b *testing.B) {
	p := benchPairLogs(b, 20)
	b.Run("dependency", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ems.Match(p.Log1, p.Log2); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("markov", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ems.Match(p.Log1, p.Log2, ems.WithMarkovWeighting()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationGEDNodeSim compares the paper-faithful frequency-only
// GED substitution signal against the degree-augmented variant.
func BenchmarkAblationGEDNodeSim(b *testing.B) {
	p := benchPairLogs(b, 20)
	g1, _ := depgraph.Build(p.Log1)
	g2, _ := depgraph.Build(p.Log2)
	run := func(b *testing.B, fw, dw float64) {
		cfg := ged.DefaultConfig()
		cfg.FreqWeight, cfg.DegreeWeight = fw, dw
		for i := 0; i < b.N; i++ {
			if _, err := ged.Match(g1, g2, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("freq-only", func(b *testing.B) { run(b, 1, 0) })
	b.Run("freq+degree", func(b *testing.B) { run(b, 0.5, 0.5) })
}

// BenchmarkIncrementalRematch compares a warm-started rematch after a small
// log update against a cold start on the same logs.
func BenchmarkIncrementalRematch(b *testing.B) {
	p := benchPairLogs(b, 20)
	extra := p.Log2.Traces[:10]
	b.Run("warm", func(b *testing.B) {
		m, err := ems.NewMatcher(p.Log1, p.Log2)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Rematch(); err != nil {
			b.Fatal(err)
		}
		if err := m.Append(2, extra...); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.Rematch(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cold", func(b *testing.B) {
		updated := p.Log2.Clone()
		for _, t := range extra {
			updated.Append(t)
		}
		for i := 0; i < b.N; i++ {
			if _, err := ems.Match(p.Log1, updated); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMatchAll times batch matching across worker counts.
func BenchmarkMatchAll(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	var pairs []ems.PairInput
	for i := 0; i < 8; i++ {
		p := benchPairLogsSeeded(b, rng.Int63(), 16)
		pairs = append(pairs, ems.PairInput{Name: p.Name, Log1: p.Log1, Log2: p.Log2})
	}
	for _, workers := range []int{1, 4} {
		name := "workers=1"
		if workers == 4 {
			name = "workers=4"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				outs := ems.MatchAll(pairs, workers, false)
				for _, o := range outs {
					if o.Err != nil {
						b.Fatal(o.Err)
					}
				}
			}
		})
	}
}

func benchPairLogsSeeded(b *testing.B, seed int64, events int) *dataset.Pair {
	b.Helper()
	rng := rand.New(rand.NewSource(seed))
	p, err := dataset.GeneratePair(rng, "bench", dataset.Options{
		Events: events, Traces: 100, OpaqueFraction: 1, ExtraFront: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return p
}
