package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunGeneratesFiles(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 12, 60, 1, "DS-FB", 0, false, 1.0, 1); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, f := range []string{"log1.csv", "log2.csv", "truth.txt"} {
		data, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Fatalf("missing %s: %v", f, err)
		}
		if len(data) == 0 {
			t.Errorf("%s is empty", f)
		}
	}
	truth, _ := os.ReadFile(filepath.Join(dir, "truth.txt"))
	if !strings.Contains(string(truth), "->") {
		t.Errorf("truth.txt has no correspondences: %q", truth)
	}
}

func TestRunTrimStyle(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 12, 60, 2, "DS-B", 2, true, 0.5, 0); err != nil {
		t.Fatalf("run trim: %v", err)
	}
}

func TestRunAllTestbeds(t *testing.T) {
	for _, tb := range []string{"DS-F", "DS-B", "DS-FB", "none"} {
		if err := run(t.TempDir(), 10, 50, 3, tb, 1, false, 1.0, 0); err != nil {
			t.Errorf("testbed %s: %v", tb, err)
		}
	}
}

func TestRunRejectsUnknownTestbed(t *testing.T) {
	if err := run(t.TempDir(), 10, 50, 1, "bogus", 0, false, 1, 0); err == nil {
		t.Errorf("unknown testbed accepted")
	}
}

func TestRunBatch(t *testing.T) {
	dir := t.TempDir()
	if err := runBatch(dir, 3, 10, 50, 7, "DS-B", 1, false, 1.0, 0); err != nil {
		t.Fatalf("runBatch: %v", err)
	}
	manifest, err := os.ReadFile(filepath.Join(dir, "manifest.txt"))
	if err != nil {
		t.Fatalf("manifest missing: %v", err)
	}
	if !strings.Contains(string(manifest), "pair-02 seed=9") {
		t.Errorf("manifest content wrong:\n%s", manifest)
	}
	for i := 0; i < 3; i++ {
		p := filepath.Join(dir, "pair-0"+string(rune('0'+i)), "log1.csv")
		if _, err := os.Stat(p); err != nil {
			t.Errorf("pair %d log missing: %v", i, err)
		}
	}
}
