// Command emsgen generates synthetic heterogeneous event-log pairs with
// known ground truth, reproducing the evaluation datasets of "Matching
// Heterogeneous Event Data" (SIGMOD 2014): a random process model is played
// out into two logs and the second log is opaquely renamed, dislocated,
// and optionally given composite events.
//
// Usage:
//
//	emsgen -out DIR [flags]
//
// The output directory receives log1.csv, log2.csv and truth.txt (one
// ground-truth correspondence per line, "a,b -> x").
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"repro/ems"
	"repro/internal/dataset"
)

func main() {
	var (
		out        = flag.String("out", "", "output directory (required)")
		events     = flag.Int("events", 20, "number of distinct activities")
		traces     = flag.Int("traces", 200, "traces per log")
		seed       = flag.Int64("seed", 1, "random seed")
		testbed    = flag.String("testbed", "DS-FB", "dislocation testbed: DS-F, DS-B, DS-FB or none")
		dislocate  = flag.Int("dislocate", 0, "dislocated events per affected end (0 = random 1..2)")
		trim       = flag.Bool("trim", false, "dislocate by trimming instead of injecting extra events")
		opaque     = flag.Float64("opaque", 1.0, "fraction of log-2 events with garbled names")
		composites = flag.Int("composites", 0, "composite events to inject into log 2")
		pairs      = flag.Int("pairs", 1, "number of pairs; >1 writes pair-NN subdirectories and a manifest")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "usage: emsgen -out DIR [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	var err error
	if *pairs > 1 {
		err = runBatch(*out, *pairs, *events, *traces, *seed, *testbed, *dislocate, *trim, *opaque, *composites)
	} else {
		err = run(*out, *events, *traces, *seed, *testbed, *dislocate, *trim, *opaque, *composites)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "emsgen:", err)
		os.Exit(1)
	}
}

// runBatch generates a whole testbed group: one subdirectory per pair plus
// a manifest listing every pair with its seed.
func runBatch(out string, pairs, events, traces int, seed int64, testbed string, dislocate int,
	trim bool, opaque float64, composites int) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	var manifest strings.Builder
	fmt.Fprintf(&manifest, "# emsgen testbed: %s, %d pairs, %d events, %d traces, seed %d\n",
		testbed, pairs, events, traces, seed)
	for i := 0; i < pairs; i++ {
		dir := filepath.Join(out, fmt.Sprintf("pair-%02d", i))
		pairSeed := seed + int64(i)
		if err := run(dir, events, traces, pairSeed, testbed, dislocate, trim, opaque, composites); err != nil {
			return fmt.Errorf("pair %d: %w", i, err)
		}
		fmt.Fprintf(&manifest, "pair-%02d seed=%d\n", i, pairSeed)
	}
	return os.WriteFile(filepath.Join(out, "manifest.txt"), []byte(manifest.String()), 0o644)
}

func run(out string, events, traces int, seed int64, testbed string, dislocate int,
	trim bool, opaque float64, composites int) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	opts := dataset.Options{
		Events:          events,
		Traces:          traces,
		OpaqueFraction:  opaque,
		CompositeMerges: composites,
	}
	m := dislocate
	if m == 0 {
		m = 1 + rand.New(rand.NewSource(seed)).Intn(2)
	}
	front, back := 0, 0
	switch dataset.Testbed(testbed) {
	case dataset.DSF:
		back = m
	case dataset.DSB:
		front = m
	case dataset.DSFB:
		front, back = m, m
	case dataset.None:
	default:
		return fmt.Errorf("unknown testbed %q", testbed)
	}
	if trim {
		opts.DislocateFront, opts.DislocateBack = front, back
	} else {
		opts.ExtraFront, opts.ExtraBack = front, back
	}
	rng := rand.New(rand.NewSource(seed))
	pair, err := dataset.GeneratePair(rng, filepath.Base(out), opts)
	if err != nil {
		return err
	}
	if err := writeCSV(filepath.Join(out, "log1.csv"), pair.Log1); err != nil {
		return err
	}
	if err := writeCSV(filepath.Join(out, "log2.csv"), pair.Log2); err != nil {
		return err
	}
	var b strings.Builder
	for _, c := range pair.Truth {
		fmt.Fprintf(&b, "%s -> %s\n", strings.Join(c.Left, ","), strings.Join(c.Right, ","))
	}
	if err := os.WriteFile(filepath.Join(out, "truth.txt"), []byte(b.String()), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d traces x2, %d truth correspondences\n", out, pair.Log1.Len(), len(pair.Truth))
	return nil
}

func writeCSV(path string, l *ems.Log) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return ems.WriteCSV(f, l)
}
