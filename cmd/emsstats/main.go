// Command emsstats inspects an event log: it prints summary statistics,
// the dependency graph's node and edge frequencies, the longest distances
// l(v) that drive early-convergence pruning, and the SEQ-pattern composite
// candidates — everything the matcher derives from a log before comparing
// it to another. It can also export the dependency graph as Graphviz DOT.
//
// The flightrec subcommand reconstructs an emsd anomaly post-hoc from the
// flight-recorder dumps the daemon wrote under -data-dir/flightrec/: it
// lists a dump directory's incidents, or replays one dump's event ring as a
// timeline relative to the moment of the anomaly.
//
// Usage:
//
//	emsstats [flags] LOG
//	emsstats -dot graph.dot -artificial orders.csv
//	emsstats flightrec DIR|DUMP.json
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/ems"
	"repro/internal/composite"
	"repro/internal/depgraph"
	"repro/internal/eventlog"
	"repro/internal/obs"
)

func main() {
	var (
		format     = flag.String("format", "csv", "log file format: csv, xml or xes")
		artificial = flag.Bool("artificial", false, "add the artificial event v^X before reporting")
		minFreq    = flag.Float64("min-freq", 0, "minimum edge frequency filter")
		dotPath    = flag.String("dot", "", "write the dependency graph as Graphviz DOT to this file")
		candidates = flag.Bool("candidates", false, "list SEQ-pattern composite candidates")
		confidence = flag.Float64("confidence", 0.9, "candidate link confidence")
	)
	flag.Parse()
	if flag.Arg(0) == "flightrec" {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: emsstats flightrec DIR|DUMP.json")
			os.Exit(2)
		}
		if err := runFlightrec(os.Stdout, flag.Arg(1)); err != nil {
			fmt.Fprintln(os.Stderr, "emsstats: flightrec:", err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: emsstats [flags] LOG")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(os.Stdout, flag.Arg(0), *format, *artificial, *minFreq, *dotPath, *candidates, *confidence); err != nil {
		fmt.Fprintln(os.Stderr, "emsstats:", err)
		os.Exit(1)
	}
}

func run(w *os.File, path, format string, artificial bool, minFreq float64,
	dotPath string, listCandidates bool, confidence float64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var l *ems.Log
	switch format {
	case "csv":
		l, err = ems.ReadCSV(f, path)
	case "xml":
		l, err = ems.ReadXML(f)
	case "xes":
		l, err = ems.ReadXES(f)
	default:
		return fmt.Errorf("unknown format %q (want csv, xml or xes)", format)
	}
	if err != nil {
		return err
	}
	fmt.Fprintln(w, eventlog.Summary(l))

	g, err := depgraph.Build(l)
	if err != nil {
		return err
	}
	if artificial {
		if g, err = g.AddArtificial(); err != nil {
			return err
		}
	}
	if minFreq > 0 {
		g = g.FilterMinFrequency(minFreq)
	}
	fmt.Fprintf(w, "dependency graph: %d vertices, %d edges, avg degree %.2f\n",
		g.N(), g.EdgeCount(), g.AvgDegree())

	fmt.Fprintln(w, "node frequencies:")
	for i := g.RealStart(); i < g.N(); i++ {
		fmt.Fprintf(w, "  %-30s %.3f\n", g.Names[i], g.NodeFreq[i])
	}

	fmt.Fprintln(w, "edges (u -> v: frequency):")
	type edge struct {
		u, v int
		f    float64
	}
	var edges []edge
	for u := range g.EdgeFreq {
		for v, fr := range g.EdgeFreq[u] {
			edges = append(edges, edge{u, v, fr})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].u != edges[j].u {
			return edges[i].u < edges[j].u
		}
		return edges[i].v < edges[j].v
	})
	for _, e := range edges {
		fmt.Fprintf(w, "  %s -> %s: %.3f\n", displayName(g, e.u), displayName(g, e.v), e.f)
	}

	if artificial {
		dist, err := g.LongestFromArtificial()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "longest distances l(v) from vX (convergence rounds):")
		for i := g.RealStart(); i < g.N(); i++ {
			if dist[i] == depgraph.Infinite {
				fmt.Fprintf(w, "  %-30s inf (on/behind a cycle)\n", g.Names[i])
			} else {
				fmt.Fprintf(w, "  %-30s %d\n", g.Names[i], dist[i])
			}
		}
	}

	if listCandidates {
		cands := composite.Discover(l, composite.DiscoverOptions{Confidence: confidence, MaxLen: 4})
		fmt.Fprintf(w, "composite candidates (confidence >= %.2f): %d\n", confidence, len(cands))
		for _, c := range cands {
			fmt.Fprintf(w, "  {%s} support %.2f\n", strings.Join(c.Events, ", "), c.Support)
		}
	}

	if dotPath != "" {
		df, err := os.Create(dotPath)
		if err != nil {
			return err
		}
		defer df.Close()
		if err := g.WriteDOT(df, l.Name); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote DOT graph to %s\n", dotPath)
	}
	return nil
}

// runFlightrec reconstructs emsd anomalies post-hoc: given a directory it
// lists every incident dump in order; given one dump file it prints the
// recorded event ring as a timeline relative to the moment of the anomaly.
func runFlightrec(w *os.File, path string) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	if fi.IsDir() {
		names, err := obs.ListFlightDumps(path)
		if err != nil {
			return err
		}
		if len(names) == 0 {
			fmt.Fprintln(w, "no flight-recorder dumps")
			return nil
		}
		for _, name := range names {
			d, err := obs.ReadFlightDump(filepath.Join(path, name))
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%s  %-16s node=%s at=%s events=%d%s\n",
				name, d.Reason, d.Node,
				time.Unix(0, d.AtNS).UTC().Format(time.RFC3339), len(d.Events),
				attrString(d.Attrs))
		}
		return nil
	}
	d, err := obs.ReadFlightDump(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "anomaly %q on node %s at %s%s\n", d.Reason, d.Node,
		time.Unix(0, d.AtNS).UTC().Format(time.RFC3339Nano), attrString(d.Attrs))
	fmt.Fprintf(w, "%d events leading up to it:\n", len(d.Events))
	for _, ev := range d.Events {
		rel := float64(ev.AtNS-d.AtNS) / 1e9
		fmt.Fprintf(w, "  %+9.3fs  #%-5d %-14s%s\n", rel, ev.Seq, ev.Kind, attrString(ev.Attrs))
	}
	return nil
}

// attrString renders an attrs map as sorted " k=v" pairs.
func attrString(attrs map[string]string) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(" ")
		b.WriteString(k)
		b.WriteString("=")
		b.WriteString(attrs[k])
	}
	return b.String()
}

func displayName(g *depgraph.Graph, i int) string {
	if g.HasArtificial && i == 0 {
		return "vX"
	}
	return g.Names[i]
}
