// Command emsstats inspects an event log: it prints summary statistics,
// the dependency graph's node and edge frequencies, the longest distances
// l(v) that drive early-convergence pruning, and the SEQ-pattern composite
// candidates — everything the matcher derives from a log before comparing
// it to another. It can also export the dependency graph as Graphviz DOT.
//
// Usage:
//
//	emsstats [flags] LOG
//	emsstats -dot graph.dot -artificial orders.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/ems"
	"repro/internal/composite"
	"repro/internal/depgraph"
	"repro/internal/eventlog"
)

func main() {
	var (
		format     = flag.String("format", "csv", "log file format: csv, xml or xes")
		artificial = flag.Bool("artificial", false, "add the artificial event v^X before reporting")
		minFreq    = flag.Float64("min-freq", 0, "minimum edge frequency filter")
		dotPath    = flag.String("dot", "", "write the dependency graph as Graphviz DOT to this file")
		candidates = flag.Bool("candidates", false, "list SEQ-pattern composite candidates")
		confidence = flag.Float64("confidence", 0.9, "candidate link confidence")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: emsstats [flags] LOG")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(os.Stdout, flag.Arg(0), *format, *artificial, *minFreq, *dotPath, *candidates, *confidence); err != nil {
		fmt.Fprintln(os.Stderr, "emsstats:", err)
		os.Exit(1)
	}
}

func run(w *os.File, path, format string, artificial bool, minFreq float64,
	dotPath string, listCandidates bool, confidence float64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var l *ems.Log
	switch format {
	case "csv":
		l, err = ems.ReadCSV(f, path)
	case "xml":
		l, err = ems.ReadXML(f)
	case "xes":
		l, err = ems.ReadXES(f)
	default:
		return fmt.Errorf("unknown format %q (want csv, xml or xes)", format)
	}
	if err != nil {
		return err
	}
	fmt.Fprintln(w, eventlog.Summary(l))

	g, err := depgraph.Build(l)
	if err != nil {
		return err
	}
	if artificial {
		if g, err = g.AddArtificial(); err != nil {
			return err
		}
	}
	if minFreq > 0 {
		g = g.FilterMinFrequency(minFreq)
	}
	fmt.Fprintf(w, "dependency graph: %d vertices, %d edges, avg degree %.2f\n",
		g.N(), g.EdgeCount(), g.AvgDegree())

	fmt.Fprintln(w, "node frequencies:")
	for i := g.RealStart(); i < g.N(); i++ {
		fmt.Fprintf(w, "  %-30s %.3f\n", g.Names[i], g.NodeFreq[i])
	}

	fmt.Fprintln(w, "edges (u -> v: frequency):")
	type edge struct {
		u, v int
		f    float64
	}
	var edges []edge
	for u := range g.EdgeFreq {
		for v, fr := range g.EdgeFreq[u] {
			edges = append(edges, edge{u, v, fr})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].u != edges[j].u {
			return edges[i].u < edges[j].u
		}
		return edges[i].v < edges[j].v
	})
	for _, e := range edges {
		fmt.Fprintf(w, "  %s -> %s: %.3f\n", displayName(g, e.u), displayName(g, e.v), e.f)
	}

	if artificial {
		dist, err := g.LongestFromArtificial()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "longest distances l(v) from vX (convergence rounds):")
		for i := g.RealStart(); i < g.N(); i++ {
			if dist[i] == depgraph.Infinite {
				fmt.Fprintf(w, "  %-30s inf (on/behind a cycle)\n", g.Names[i])
			} else {
				fmt.Fprintf(w, "  %-30s %d\n", g.Names[i], dist[i])
			}
		}
	}

	if listCandidates {
		cands := composite.Discover(l, composite.DiscoverOptions{Confidence: confidence, MaxLen: 4})
		fmt.Fprintf(w, "composite candidates (confidence >= %.2f): %d\n", confidence, len(cands))
		for _, c := range cands {
			fmt.Fprintf(w, "  {%s} support %.2f\n", strings.Join(c.Events, ", "), c.Support)
		}
	}

	if dotPath != "" {
		df, err := os.Create(dotPath)
		if err != nil {
			return err
		}
		defer df.Close()
		if err := g.WriteDOT(df, l.Name); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote DOT graph to %s\n", dotPath)
	}
	return nil
}

func displayName(g *depgraph.Graph, i int) string {
	if g.HasArtificial && i == 0 {
		return "vX"
	}
	return g.Names[i]
}
