package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/ems"
	"repro/internal/paperexample"
)

func writeLog(t *testing.T, format string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "log."+format)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	l := paperexample.Log1()
	switch format {
	case "csv":
		err = ems.WriteCSV(f, l)
	case "xml":
		err = ems.WriteXML(f, l)
	case "xes":
		err = ems.WriteXES(f, l)
	}
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func capture(t *testing.T, fn func(*os.File) error) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "out.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := fn(f); err != nil {
		t.Fatalf("run: %v", err)
	}
	f.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestRunBasic(t *testing.T) {
	path := writeLog(t, "csv")
	out := capture(t, func(f *os.File) error {
		return run(f, path, "csv", false, 0, "", false, 0.9)
	})
	for _, want := range []string{"5 traces", "dependency graph", "A -> C: 0.400"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunArtificialAndCandidates(t *testing.T) {
	path := writeLog(t, "csv")
	out := capture(t, func(f *os.File) error {
		return run(f, path, "csv", true, 0, "", true, 0.9)
	})
	for _, want := range []string{"longest distances", "composite candidates", "{C, D}"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFormats(t *testing.T) {
	for _, format := range []string{"csv", "xml", "xes"} {
		path := writeLog(t, format)
		out := capture(t, func(f *os.File) error {
			return run(f, path, format, false, 0, "", false, 0.9)
		})
		if !strings.Contains(out, "6 distinct events") {
			t.Errorf("%s: summary missing:\n%s", format, out)
		}
	}
}

func TestRunDOTExport(t *testing.T) {
	path := writeLog(t, "csv")
	dot := filepath.Join(t.TempDir(), "g.dot")
	capture(t, func(f *os.File) error {
		return run(f, path, "csv", true, 0, dot, false, 0.9)
	})
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatalf("DOT file: %v", err)
	}
	if !strings.Contains(string(data), "digraph") {
		t.Errorf("DOT content wrong: %q", data)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(os.Stdout, "missing.csv", "csv", false, 0, "", false, 0.9); err == nil {
		t.Errorf("missing file accepted")
	}
	path := writeLog(t, "csv")
	if err := run(os.Stdout, path, "bogus", false, 0, "", false, 0.9); err == nil {
		t.Errorf("unknown format accepted")
	}
}
