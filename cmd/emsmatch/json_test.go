package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/ems"
)

func TestRunWritesJSON(t *testing.T) {
	p1, p2 := writePairFiles(t)
	out := filepath.Join(t.TempDir(), "result.json")
	cfg := runConfig{format: "csv", alpha: 1.0, estimate: -1, threshold: 0.1,
		composite: true, delta: 0.005, outJSON: out, workers: 2}
	if err := run(p1, p2, cfg); err != nil {
		t.Fatalf("run: %v", err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatalf("json output missing: %v", err)
	}
	defer f.Close()
	res, err := ems.ReadResultJSON(f)
	if err != nil {
		t.Fatalf("reload: %v", err)
	}
	if len(res.Mapping) == 0 {
		t.Errorf("reloaded result has no correspondences")
	}
}
