package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/ems"
)

func TestRunWritesJSON(t *testing.T) {
	p1, p2 := writePairFiles(t)
	out := filepath.Join(t.TempDir(), "result.json")
	if err := run(p1, p2, "csv", 1.0, false, -1, 0, 0.1, true, 0.005, false, out, 2, 0); err != nil {
		t.Fatalf("run: %v", err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatalf("json output missing: %v", err)
	}
	defer f.Close()
	res, err := ems.ReadResultJSON(f)
	if err != nil {
		t.Fatalf("reload: %v", err)
	}
	if len(res.Mapping) == 0 {
		t.Errorf("reloaded result has no correspondences")
	}
}
