// Command emsmatch matches the events of two heterogeneous event logs using
// the Event Matching Similarity of "Matching Heterogeneous Event Data"
// (SIGMOD 2014) and prints the selected correspondences.
//
// Usage:
//
//	emsmatch [flags] LOG1 LOG2
//
// Logs are two-column case,event CSV files (or the XES-like XML dialect
// with -format xml). Example:
//
//	emsmatch -labels -alpha 0.7 -composite orders_a.csv orders_b.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/ems"
)

func main() {
	var (
		format     = flag.String("format", "csv", "log file format: csv or xml")
		alpha      = flag.Float64("alpha", 1.0, "weight of structural vs label similarity (1 = structure only)")
		useLabels  = flag.Bool("labels", false, "blend q-gram cosine label similarity (sets alpha 0.7 unless -alpha given)")
		estimate   = flag.Int("estimate", -1, "estimation iterations I (Algorithm 1); -1 = exact")
		minFreq    = flag.Float64("min-freq", 0, "minimum edge frequency filter")
		threshold  = flag.Float64("threshold", 0.1, "minimum similarity for a selected correspondence")
		compositeF = flag.Bool("composite", false, "enable m:n composite event matching (Algorithm 2)")
		delta      = flag.Float64("delta", 0.005, "minimum improvement for a composite merge")
		matrix     = flag.Bool("matrix", false, "print the full similarity matrix")
		outJSON    = flag.String("o", "", "also write the full result as JSON to this file")
		workers    = flag.Int("workers", 0, "iteration-engine goroutines (0 = auto, 1 = serial; results identical)")
		timeout    = flag.Duration("timeout", 0, "abort the match after this wall-clock budget (0 = none)")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: emsmatch [flags] LOG1 LOG2")
		flag.PrintDefaults()
		os.Exit(2)
	}
	// Testing the value can't distinguish an explicit `-alpha 1.0` from the
	// default; only flag.Visit (set flags only) can.
	alphaSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "alpha" {
			alphaSet = true
		}
	})
	if err := run(flag.Arg(0), flag.Arg(1), *format, resolveAlpha(*alpha, alphaSet, *useLabels), *useLabels, *estimate,
		*minFreq, *threshold, *compositeF, *delta, *matrix, *outJSON, *workers, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "emsmatch:", err)
		os.Exit(1)
	}
}

// resolveAlpha implements the -labels default: blending at 0.7 kicks in only
// when the user did not pass -alpha themselves, so an explicit `-alpha 1.0
// -labels` (structure only, labels loaded but weightless) is honored.
func resolveAlpha(alpha float64, alphaSet, useLabels bool) float64 {
	if useLabels && !alphaSet {
		return 0.7
	}
	return alpha
}

func run(path1, path2, format string, alpha float64, useLabels bool, estimate int,
	minFreq, threshold float64, compositeMatch bool, delta float64, matrix bool, outJSON string,
	workers int, timeout time.Duration) error {
	l1, err := readLog(path1, format)
	if err != nil {
		return err
	}
	l2, err := readLog(path2, format)
	if err != nil {
		return err
	}
	opts := []ems.Option{
		ems.WithMinFrequency(minFreq),
		ems.WithSelectionThreshold(threshold),
		ems.WithDelta(delta),
		ems.WithWorkers(workers),
	}
	if useLabels {
		opts = append(opts, ems.WithLabelSimilarity(ems.QGramCosine(3)))
	}
	opts = append(opts, ems.WithAlpha(alpha))
	if estimate >= 0 {
		opts = append(opts, ems.WithEstimation(estimate))
	}
	if timeout > 0 {
		opts = append(opts, ems.WithTimeout(timeout))
	}
	var res *ems.Result
	if compositeMatch {
		res, err = ems.MatchComposite(l1, l2, opts...)
	} else {
		res, err = ems.Match(l1, l2, opts...)
	}
	if err != nil {
		return err
	}
	fmt.Printf("log 1: %d events, log 2: %d events, %d similarity evaluations, %d rounds\n",
		len(res.Names1), len(res.Names2), res.Evaluations, res.Rounds)
	for _, g := range res.Composites1 {
		fmt.Printf("composite in %s: {%s}\n", l1.Name, strings.Join(g, ", "))
	}
	for _, g := range res.Composites2 {
		fmt.Printf("composite in %s: {%s}\n", l2.Name, strings.Join(g, ", "))
	}
	fmt.Printf("correspondences (%d):\n", len(res.Mapping))
	for _, c := range res.Mapping {
		fmt.Printf("  %s\n", c)
	}
	if matrix {
		printMatrix(res)
	}
	if outJSON != "" {
		f, err := os.Create(outJSON)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := res.WriteJSON(f); err != nil {
			return err
		}
		fmt.Printf("wrote result to %s\n", outJSON)
	}
	return nil
}

func readLog(path, format string) (*ems.Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch format {
	case "csv":
		return ems.ReadCSV(f, path)
	case "xml":
		return ems.ReadXML(f)
	default:
		return nil, fmt.Errorf("unknown format %q (want csv or xml)", format)
	}
}

func printMatrix(res *ems.Result) {
	display := func(n string) string { return strings.Join(ems.ExpandComposite(n), "+") }
	fmt.Printf("%-24s", "")
	for _, n := range res.Names2 {
		fmt.Printf(" %-12.12s", display(n))
	}
	fmt.Println()
	for i, a := range res.Names1 {
		fmt.Printf("%-24.24s", display(a))
		for j := range res.Names2 {
			fmt.Printf(" %-12.3f", res.At(i, j))
		}
		fmt.Println()
	}
}
