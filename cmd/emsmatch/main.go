// Command emsmatch matches the events of two heterogeneous event logs using
// the Event Matching Similarity of "Matching Heterogeneous Event Data"
// (SIGMOD 2014) and prints the selected correspondences.
//
// Usage:
//
//	emsmatch [flags] LOG1 LOG2
//
// Logs are two-column case,event CSV files (or the XES-like XML dialect
// with -format xml). Example:
//
//	emsmatch -labels -alpha 0.7 -composite orders_a.csv orders_b.csv
//
// Dirty recordings can be ingested with -lenient (malformed records are
// skipped and counted instead of failing the read) and cleaned with
// -repair, which runs the dirty-log repair pipeline over both logs before
// matching and prints what it changed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/ems"
)

// runConfig carries every flag into run.
type runConfig struct {
	format    string
	alpha     float64
	useLabels bool
	estimate  int
	minFreq   float64
	threshold float64
	composite bool
	delta     float64
	matrix    bool
	outJSON   string
	workers   int
	timeout   time.Duration
	lenient   bool
	repair    bool
}

func main() {
	var cfg runConfig
	flag.StringVar(&cfg.format, "format", "csv", "log file format: csv or xml")
	flag.Float64Var(&cfg.alpha, "alpha", 1.0, "weight of structural vs label similarity (1 = structure only)")
	flag.BoolVar(&cfg.useLabels, "labels", false, "blend q-gram cosine label similarity (sets alpha 0.7 unless -alpha given)")
	flag.IntVar(&cfg.estimate, "estimate", -1, "estimation iterations I (Algorithm 1); -1 = exact")
	flag.Float64Var(&cfg.minFreq, "min-freq", 0, "minimum edge frequency filter")
	flag.Float64Var(&cfg.threshold, "threshold", 0.1, "minimum similarity for a selected correspondence")
	flag.BoolVar(&cfg.composite, "composite", false, "enable m:n composite event matching (Algorithm 2)")
	flag.Float64Var(&cfg.delta, "delta", 0.005, "minimum improvement for a composite merge")
	flag.BoolVar(&cfg.matrix, "matrix", false, "print the full similarity matrix")
	flag.StringVar(&cfg.outJSON, "o", "", "also write the full result as JSON to this file")
	flag.IntVar(&cfg.workers, "workers", 0, "iteration-engine goroutines (0 = auto, 1 = serial; results identical)")
	flag.DurationVar(&cfg.timeout, "timeout", 0, "abort the match after this wall-clock budget (0 = none)")
	flag.BoolVar(&cfg.lenient, "lenient", false, "skip and count malformed input records instead of failing the read")
	flag.BoolVar(&cfg.repair, "repair", false, "run the dirty-log repair pipeline over both logs before matching")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: emsmatch [flags] LOG1 LOG2")
		flag.PrintDefaults()
		os.Exit(2)
	}
	// Testing the value can't distinguish an explicit `-alpha 1.0` from the
	// default; only flag.Visit (set flags only) can.
	alphaSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "alpha" {
			alphaSet = true
		}
	})
	cfg.alpha = resolveAlpha(cfg.alpha, alphaSet, cfg.useLabels)
	if err := run(flag.Arg(0), flag.Arg(1), cfg); err != nil {
		fmt.Fprintln(os.Stderr, "emsmatch:", err)
		os.Exit(1)
	}
}

// resolveAlpha implements the -labels default: blending at 0.7 kicks in only
// when the user did not pass -alpha themselves, so an explicit `-alpha 1.0
// -labels` (structure only, labels loaded but weightless) is honored.
func resolveAlpha(alpha float64, alphaSet, useLabels bool) float64 {
	if useLabels && !alphaSet {
		return 0.7
	}
	return alpha
}

func run(path1, path2 string, cfg runConfig) error {
	l1, err := readLog(path1, cfg)
	if err != nil {
		return err
	}
	l2, err := readLog(path2, cfg)
	if err != nil {
		return err
	}
	opts := []ems.Option{
		ems.WithMinFrequency(cfg.minFreq),
		ems.WithSelectionThreshold(cfg.threshold),
		ems.WithDelta(cfg.delta),
		ems.WithWorkers(cfg.workers),
	}
	if cfg.useLabels {
		opts = append(opts, ems.WithLabelSimilarity(ems.QGramCosine(3)))
	}
	opts = append(opts, ems.WithAlpha(cfg.alpha))
	if cfg.estimate >= 0 {
		opts = append(opts, ems.WithEstimation(cfg.estimate))
	}
	if cfg.timeout > 0 {
		opts = append(opts, ems.WithTimeout(cfg.timeout))
	}
	if cfg.repair {
		opts = append(opts, ems.WithRepair())
	}
	var res *ems.Result
	if cfg.composite {
		res, err = ems.MatchComposite(l1, l2, opts...)
	} else {
		res, err = ems.Match(l1, l2, opts...)
	}
	if err != nil {
		return err
	}
	fmt.Printf("log 1: %d events, log 2: %d events, %d similarity evaluations, %d rounds\n",
		len(res.Names1), len(res.Names2), res.Evaluations, res.Rounds)
	printRepair(l1.Name, res.Repair1)
	printRepair(l2.Name, res.Repair2)
	for _, g := range res.Composites1 {
		fmt.Printf("composite in %s: {%s}\n", l1.Name, strings.Join(g, ", "))
	}
	for _, g := range res.Composites2 {
		fmt.Printf("composite in %s: {%s}\n", l2.Name, strings.Join(g, ", "))
	}
	fmt.Printf("correspondences (%d):\n", len(res.Mapping))
	for _, c := range res.Mapping {
		fmt.Printf("  %s\n", c)
	}
	if cfg.matrix {
		printMatrix(res)
	}
	if cfg.outJSON != "" {
		f, err := os.Create(cfg.outJSON)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := res.WriteJSON(f); err != nil {
			return err
		}
		fmt.Printf("wrote result to %s\n", cfg.outJSON)
	}
	return nil
}

// printRepair summarizes what the repair pipeline did to one log, including
// a line per quarantined-trace sample so unrepairable traces are visible
// without digging into the JSON result.
func printRepair(name string, rep *ems.RepairReport) {
	if rep == nil {
		return
	}
	fmt.Printf("repair %s: %d/%d traces kept, %d dropped, %d reordered, %d imputed, %d quarantined\n",
		name, rep.TracesOut, rep.TracesIn,
		rep.EventsDropped, rep.EventsReordered, rep.EventsImputed, rep.TracesQuarantined)
	for _, q := range rep.Quarantined {
		fmt.Printf("  quarantined trace #%d (%d events): %s at stage %s\n",
			q.Index, q.Events, q.Reason, q.Stage)
	}
}

func readLog(path string, cfg runConfig) (*ems.Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var (
		l   *ems.Log
		rep *ems.SkipReport
		ro  = ems.ReadOptions{Lenient: cfg.lenient}
	)
	switch cfg.format {
	case "csv":
		l, rep, err = ems.ReadCSVWith(f, path, ro)
	case "xml":
		l, rep, err = ems.ReadXMLWith(f, ro)
	default:
		return nil, fmt.Errorf("unknown format %q (want csv or xml)", cfg.format)
	}
	if err != nil {
		return nil, err
	}
	if n := rep.Total(); n > 0 {
		fmt.Fprintf(os.Stderr, "emsmatch: %s: skipped %d malformed records\n", path, n)
	}
	return l, nil
}

func printMatrix(res *ems.Result) {
	display := func(n string) string { return strings.Join(ems.ExpandComposite(n), "+") }
	fmt.Printf("%-24s", "")
	for _, n := range res.Names2 {
		fmt.Printf(" %-12.12s", display(n))
	}
	fmt.Println()
	for i, a := range res.Names1 {
		fmt.Printf("%-24.24s", display(a))
		for j := range res.Names2 {
			fmt.Printf(" %-12.3f", res.At(i, j))
		}
		fmt.Println()
	}
}
