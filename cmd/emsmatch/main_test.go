package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/ems"
	"repro/internal/paperexample"
)

func writePairFiles(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	p1 := filepath.Join(dir, "log1.csv")
	p2 := filepath.Join(dir, "log2.csv")
	for path, l := range map[string]*ems.Log{p1: paperexample.Log1(), p2: paperexample.Log2()} {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := ems.WriteCSV(f, l); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return p1, p2
}

func TestRunPlainMatch(t *testing.T) {
	p1, p2 := writePairFiles(t)
	if err := run(p1, p2, runConfig{format: "csv", alpha: 1.0, estimate: -1, threshold: 0.1, delta: 0.005}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunCompositeWithMatrix(t *testing.T) {
	p1, p2 := writePairFiles(t)
	if err := run(p1, p2, runConfig{format: "csv", alpha: 1.0, estimate: -1, threshold: 0.1, composite: true, delta: 0.005, matrix: true}); err != nil {
		t.Fatalf("run composite: %v", err)
	}
}

func TestRunLabelsAndEstimate(t *testing.T) {
	p1, p2 := writePairFiles(t)
	if err := run(p1, p2, runConfig{format: "csv", alpha: 1.0, useLabels: true, estimate: 3, minFreq: 0.05, threshold: 0.1, delta: 0.005}); err != nil {
		t.Fatalf("run labels: %v", err)
	}
}

func TestRunXMLFormat(t *testing.T) {
	dir := t.TempDir()
	p1 := filepath.Join(dir, "log1.xml")
	p2 := filepath.Join(dir, "log2.xml")
	for path, l := range map[string]*ems.Log{p1: paperexample.Log1(), p2: paperexample.Log2()} {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := ems.WriteXML(f, l); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	if err := run(p1, p2, runConfig{format: "xml", alpha: 1.0, estimate: -1, threshold: 0.1, delta: 0.005}); err != nil {
		t.Fatalf("run xml: %v", err)
	}
}

// TestResolveAlpha pins the -labels default against the flag bug where an
// explicit `-alpha 1.0` was silently overridden to 0.7: the 0.7 default may
// only apply when -alpha was not set at all.
func TestResolveAlpha(t *testing.T) {
	cases := []struct {
		alpha     float64
		alphaSet  bool
		useLabels bool
		want      float64
	}{
		{1.0, false, false, 1.0}, // plain default
		{1.0, false, true, 0.7},  // -labels without -alpha: blend
		{1.0, true, true, 1.0},   // explicit -alpha 1.0 -labels: honored
		{0.5, true, true, 0.5},   // explicit -alpha 0.5 -labels: honored
		{0.3, true, false, 0.3},  // explicit -alpha without -labels
	}
	for _, c := range cases {
		if got := resolveAlpha(c.alpha, c.alphaSet, c.useLabels); got != c.want {
			t.Errorf("resolveAlpha(%g, set=%t, labels=%t) = %g, want %g",
				c.alpha, c.alphaSet, c.useLabels, got, c.want)
		}
	}
}

// TestRunLenientRepair drives the dirty-log path end to end: a log with a
// malformed row needs -lenient to load at all, and -repair cleans the
// stutter it also carries.
func TestRunLenientRepair(t *testing.T) {
	p1, _ := writePairFiles(t)
	dirty := filepath.Join(t.TempDir(), "dirty.csv")
	csv := "case,event\n" +
		"t1,a\nt1,a\nt1,b\n" + // stuttered a
		"ragged row with no comma\n" +
		"t2,a\nt2,b\n"
	if err := os.WriteFile(dirty, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	strict := runConfig{format: "csv", alpha: 1, estimate: -1, threshold: 0.1, delta: 0.005, repair: true}
	if err := run(p1, dirty, strict); err == nil {
		t.Fatal("malformed CSV accepted without -lenient")
	}
	lenient := strict
	lenient.lenient = true
	if err := run(p1, dirty, lenient); err != nil {
		t.Fatalf("lenient repair run: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	p1, p2 := writePairFiles(t)
	if err := run("nonexistent.csv", p2, runConfig{format: "csv", alpha: 1, estimate: -1, threshold: 0.1, delta: 0.005}); err == nil {
		t.Errorf("missing file accepted")
	}
	if err := run(p1, p2, runConfig{format: "bogus", alpha: 1, estimate: -1, threshold: 0.1, delta: 0.005}); err == nil {
		t.Errorf("unknown format accepted")
	}
	if err := run(p1, p2, runConfig{format: "csv", alpha: 7, estimate: -1, threshold: 0.1, delta: 0.005}); err == nil {
		t.Errorf("invalid alpha accepted")
	}
}
