package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/ems"
	"repro/internal/paperexample"
)

func writePairFiles(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	p1 := filepath.Join(dir, "log1.csv")
	p2 := filepath.Join(dir, "log2.csv")
	for path, l := range map[string]*ems.Log{p1: paperexample.Log1(), p2: paperexample.Log2()} {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := ems.WriteCSV(f, l); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return p1, p2
}

func TestRunPlainMatch(t *testing.T) {
	p1, p2 := writePairFiles(t)
	if err := run(p1, p2, "csv", 1.0, false, -1, 0, 0.1, false, 0.005, false, ""); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunCompositeWithMatrix(t *testing.T) {
	p1, p2 := writePairFiles(t)
	if err := run(p1, p2, "csv", 1.0, false, -1, 0, 0.1, true, 0.005, true, ""); err != nil {
		t.Fatalf("run composite: %v", err)
	}
}

func TestRunLabelsAndEstimate(t *testing.T) {
	p1, p2 := writePairFiles(t)
	if err := run(p1, p2, "csv", 1.0, true, 3, 0.05, 0.1, false, 0.005, false, ""); err != nil {
		t.Fatalf("run labels: %v", err)
	}
}

func TestRunXMLFormat(t *testing.T) {
	dir := t.TempDir()
	p1 := filepath.Join(dir, "log1.xml")
	p2 := filepath.Join(dir, "log2.xml")
	for path, l := range map[string]*ems.Log{p1: paperexample.Log1(), p2: paperexample.Log2()} {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := ems.WriteXML(f, l); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	if err := run(p1, p2, "xml", 1.0, false, -1, 0, 0.1, false, 0.005, false, ""); err != nil {
		t.Fatalf("run xml: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	p1, p2 := writePairFiles(t)
	if err := run("nonexistent.csv", p2, "csv", 1, false, -1, 0, 0.1, false, 0.005, false, ""); err == nil {
		t.Errorf("missing file accepted")
	}
	if err := run(p1, p2, "bogus", 1, false, -1, 0, 0.1, false, 0.005, false, ""); err == nil {
		t.Errorf("unknown format accepted")
	}
	if err := run(p1, p2, "csv", 7, false, -1, 0, 0.1, false, 0.005, false, ""); err == nil {
		t.Errorf("invalid alpha accepted")
	}
}
