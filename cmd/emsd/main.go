// Command emsd serves event-log matching over HTTP: a long-running daemon
// exposing the ems engine behind an async job API with a bounded worker
// pool, a content-addressed result cache, and a metrics endpoint.
//
// Usage:
//
//	emsd [-addr :8484] [-workers N] [-engine-workers N] [-cache N] [-allow-paths]
//	     [-job-timeout D] [-max-job-timeout D] [-max-queue-depth N]
//	     [-data-dir DIR] [-checkpoint-every N] [-job-retries N]
//	     [-mem-budget SIZE] [-mem-pressure F]
//	     [-log-format text|json] [-slow-job D] [-debug-addr ADDR]
//	     [-trace-sample F] [-trace-retain N]
//	     [-node-id ID] [-advertise URL] [-peers id=url,id=url,...]
//
// Clustering: give every node a unique -node-id and list the other members
// with -peers. Each node forwards submissions to the consistent-hash owner
// of the job's content key, POST /v1/batch fans an N×M grid of log pairs
// across the whole cluster, and job handles stay valid on whichever node a
// client talks to. See "Clustering emsd" in the README.
//
// Submit a job, poll it, fetch the result:
//
//	curl -s -X POST localhost:8484/v1/jobs -d '{
//	  "log1": {"csv": "case,event\nc1,A\nc1,C\n"},
//	  "log2": {"csv": "case,event\nc1,1\nc1,2\n"},
//	  "options": {"labels": true}
//	}'
//	curl -s localhost:8484/v1/jobs/job-000001
//	curl -s localhost:8484/v1/jobs/job-000001/result
//
// Observability: GET /metrics serves the Prometheus exposition,
// GET /v1/jobs/{id}/progress streams a running job's per-round convergence,
// GET /v1/traces/{trace_id} assembles a request's cluster-wide span tree
// (see "Tracing emsd" in the README), and -debug-addr opens a separate
// admin listener with net/http/pprof and
// expvar (keep it off public interfaces). Logs are structured (slog);
// -log-format json emits one JSON object per line.
//
// SIGINT/SIGTERM drain in-flight jobs and cancel queued ones before exit.
package main

import (
	"bufio"
	"context"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime/debug"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":8484", "listen address")
		workers    = flag.Int("workers", 0, "concurrent match computations (0 = GOMAXPROCS)")
		engWorkers = flag.Int("engine-workers", 0, "per-job iteration-engine goroutines (0 = GOMAXPROCS/workers, -1 = serial)")
		cacheSize  = flag.Int("cache", 128, "result cache capacity in entries (-1 disables)")
		maxJobs    = flag.Int("max-jobs", 10000, "job registry retention bound")
		allowPaths = flag.Bool("allow-paths", false, "allow jobs to read logs from server-local file paths")
		drain      = flag.Duration("drain", 30*time.Second, "graceful shutdown drain timeout; stragglers are interrupted in-engine afterwards")
		jobTimeout = flag.Duration("job-timeout", 0, "default per-job wall-clock deadline (0 = none); requests may override via options.timeout_ms")
		maxTimeout = flag.Duration("max-job-timeout", 0, "hard cap on every job deadline, including requests that ask for none (0 = no cap)")
		maxQueue   = flag.Int("max-queue-depth", 0, "shed submissions once this many jobs are queued (0 = unbounded)")
		dataDir    = flag.String("data-dir", "", "persist jobs, checkpoints and results here; on restart unfinished jobs are recovered (empty = in-memory only)")
		ckpEvery   = flag.Int("checkpoint-every", 0, "engine rounds between persisted checkpoints of a running job (0 = default 16; needs -data-dir)")
		jobRetries = flag.Int("job-retries", 0, "retries (with backoff, from the last checkpoint) for jobs whose computation panicked (needs -data-dir)")
		logFormat  = flag.String("log-format", "text", "log output format: text or json")
		slowJob    = flag.Duration("slow-job", 0, "dump a job's span timeline to the log when its wall time reaches this threshold (0 = never)")
		debugAddr  = flag.String("debug-addr", "", "serve net/http/pprof and expvar on this extra admin address (empty = off; do not expose publicly)")
		checkURL   = flag.String("check-metrics", "", "fetch this /metrics URL, validate the Prometheus exposition, and exit (CI scrape gate)")
		nodeID     = flag.String("node-id", "", "this node's cluster identity; must be unique per cluster (empty = hostname, falling back to \"emsd\")")
		advertise  = flag.String("advertise", "", "base URL peers reach this node on, e.g. http://10.0.0.5:8484 (cluster mode)")
		peers      = flag.String("peers", "", "comma-separated id=url list of the other cluster members (empty = standalone)")
		memBudget  = flag.String("mem-budget", "", "memory budget for admitted jobs, e.g. 512MiB or 4GiB (also sets the Go runtime soft memory limit; empty = ungoverned)")
		pressure   = flag.Float64("mem-pressure", 0, "committed fraction of -mem-budget at which jobs start degrading (0 = default 0.75)")
		traceSmpl  = flag.Float64("trace-sample", 1, "fraction of traces stored for GET /v1/traces (deterministic by trace ID, so all nodes keep the same traces; 0 disables the store)")
		traceKeep  = flag.Int("trace-retain", 0, "per-node trace store capacity in traces (0 = default 512)")
	)
	flag.Parse()
	if *checkURL != "" {
		if err := checkExposition(*checkURL); err != nil {
			fmt.Fprintln(os.Stderr, "emsd: check-metrics:", err)
			os.Exit(1)
		}
		fmt.Println("metrics exposition ok")
		return
	}
	logger, err := newLogger(os.Stderr, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "emsd:", err)
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "emsd:", err)
		os.Exit(1)
	}
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "emsd: debug listener:", err)
			os.Exit(1)
		}
		logger.Info("debug listener up", "addr", dln.Addr().String())
		go func() {
			if err := http.Serve(dln, debugMux()); err != nil {
				logger.Warn("debug listener stopped", "error", err)
			}
		}()
	}
	id := *nodeID
	if id == "" {
		if id, _ = os.Hostname(); id == "" {
			id = "emsd"
		}
	}
	ccfg, err := parsePeers(*peers, *advertise)
	if err != nil {
		fmt.Fprintln(os.Stderr, "emsd:", err)
		os.Exit(2)
	}
	budget, err := parseBytes(*memBudget)
	if err != nil {
		fmt.Fprintln(os.Stderr, "emsd: -mem-budget:", err)
		os.Exit(2)
	}
	if budget > 0 {
		// The governor bounds predicted engine allocations; the runtime soft
		// limit backs it up for everything the prediction does not cover
		// (HTTP buffers, cache copies, GC slack) by collecting harder as the
		// process approaches the same ceiling.
		debug.SetMemoryLimit(budget)
	}
	cfg := server.Config{
		NodeID:           id,
		Cluster:          ccfg,
		Workers:          *workers,
		EngineWorkers:    *engWorkers,
		CacheSize:        *cacheSize,
		MaxJobs:          *maxJobs,
		AllowPaths:       *allowPaths,
		JobTimeout:       *jobTimeout,
		MaxJobTimeout:    *maxTimeout,
		MaxQueueDepth:    *maxQueue,
		DataDir:          *dataDir,
		CheckpointEvery:  *ckpEvery,
		JobRetries:       *jobRetries,
		SlowJobThreshold: *slowJob,
		MemBudget:        budget,
		PressureFraction: *pressure,
		TraceSample:      *traceSmpl,
		TraceRetain:      *traceKeep,
		Log:              logger,
	}
	if *traceSmpl <= 0 {
		// Config.TraceSample uses 0 for "store everything" so the zero-valued
		// Config keeps traces; the CLI reads more naturally with 0 = off.
		cfg.TraceSample = -1
	}
	if err := serve(ctx, ln, cfg, *drain, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "emsd:", err)
		os.Exit(1)
	}
}

// parsePeers turns the -peers flag ("n2=http://host:8484,n3=http://...")
// into a cluster configuration; empty means standalone (nil).
func parsePeers(list, advertise string) (*server.ClusterConfig, error) {
	if list == "" {
		return nil, nil
	}
	ccfg := &server.ClusterConfig{Advertise: advertise}
	for _, entry := range strings.Split(list, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		id, url, ok := strings.Cut(entry, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("-peers: want id=url, got %q", entry)
		}
		ccfg.Peers = append(ccfg.Peers, cluster.Node{ID: id, Addr: url})
	}
	if len(ccfg.Peers) == 0 {
		return nil, fmt.Errorf("-peers: no peers in %q", list)
	}
	return ccfg, nil
}

// parseBytes reads a human byte size: a plain integer is bytes; the
// suffixes KB/MB/GB/TB (decimal) and KiB/MiB/GiB/TiB (binary, also bare
// K/M/G/T) scale it. Empty means 0 (ungoverned).
func parseBytes(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	units := []struct {
		suffix string
		mult   int64
	}{
		{"TiB", 1 << 40}, {"GiB", 1 << 30}, {"MiB", 1 << 20}, {"KiB", 1 << 10},
		{"TB", 1e12}, {"GB", 1e9}, {"MB", 1e6}, {"KB", 1e3},
		{"T", 1 << 40}, {"G", 1 << 30}, {"M", 1 << 20}, {"K", 1 << 10},
		{"B", 1},
	}
	mult := int64(1)
	num := s
	for _, u := range units {
		if strings.HasSuffix(s, u.suffix) {
			mult = u.mult
			num = strings.TrimSpace(strings.TrimSuffix(s, u.suffix))
			break
		}
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("want a size like 512MiB or 4GiB, got %q", s)
	}
	return int64(v * float64(mult)), nil
}

// newLogger builds the process logger writing to w in the chosen format.
func newLogger(w io.Writer, format string) (*slog.Logger, error) {
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, nil)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
	}
}

// checkExposition is the CI scrape gate: it fetches a live /metrics
// endpoint, fails on the first malformed exposition line, and requires all
// three instrument kinds (counter, gauge, histogram) to be present so a
// half-wired registry cannot pass.
func checkExposition(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	kinds := map[string]int{}
	lines, bad := 0, 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		lines++
		if !obs.ValidExpositionLine(line) {
			bad++
			if bad <= 5 {
				fmt.Fprintf(os.Stderr, "emsd: malformed exposition line %d: %q\n", lines, line)
			}
			continue
		}
		if f := strings.Fields(line); len(f) == 4 && f[0] == "#" && f[1] == "TYPE" {
			kinds[f[3]]++
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if bad > 0 {
		return fmt.Errorf("%d of %d lines malformed", bad, lines)
	}
	for _, kind := range []string{"counter", "gauge", "histogram"} {
		if kinds[kind] == 0 {
			return fmt.Errorf("no %s families in the exposition (%d lines)", kind, lines)
		}
	}
	fmt.Printf("emsd: %d exposition lines, %d counter / %d gauge / %d histogram families\n",
		lines, kinds["counter"], kinds["gauge"], kinds["histogram"])
	return nil
}

// debugMux is the admin surface of -debug-addr: the pprof profile family
// plus expvar. It is a separate mux (not http.DefaultServeMux) so importing
// net/http/pprof never leaks profiles onto the public API listener.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// serve runs the service on ln until ctx is cancelled, then drains: job
// intake stops, queued jobs are cancelled, running jobs get up to the drain
// timeout to finish while the HTTP listener keeps answering polls.
func serve(ctx context.Context, ln net.Listener, cfg server.Config, drain time.Duration, logw io.Writer) error {
	if cfg.Log == nil {
		cfg.Log, _ = newLogger(logw, "text")
	}
	s, err := server.New(cfg)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	peerCount := 0
	if cfg.Cluster != nil {
		peerCount = len(cfg.Cluster.Peers)
	}
	cfg.Log.Info("emsd listening", "addr", ln.Addr().String(), "workers", cfg.Workers,
		"cache", cfg.CacheSize, "node_id", cfg.NodeID, "peers", peerCount)
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	cfg.Log.Info("emsd: draining")
	dctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	serr := s.Shutdown(dctx)
	herr := hs.Shutdown(dctx)
	<-errc // http.ErrServerClosed from the Serve goroutine
	st := s.Stats()
	cfg.Log.Info("emsd: stopped",
		"completed", st.Completed, "failed", st.Failed, "cancelled", st.Cancelled)
	if serr != nil {
		return fmt.Errorf("drain: %w", serr)
	}
	return herr
}
