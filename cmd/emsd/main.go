// Command emsd serves event-log matching over HTTP: a long-running daemon
// exposing the ems engine behind an async job API with a bounded worker
// pool, a content-addressed result cache, and a metrics endpoint.
//
// Usage:
//
//	emsd [-addr :8484] [-workers N] [-engine-workers N] [-cache N] [-allow-paths]
//	     [-job-timeout D] [-max-job-timeout D] [-max-queue-depth N]
//	     [-data-dir DIR] [-checkpoint-every N] [-job-retries N]
//
// Submit a job, poll it, fetch the result:
//
//	curl -s -X POST localhost:8484/v1/jobs -d '{
//	  "log1": {"csv": "case,event\nc1,A\nc1,C\n"},
//	  "log2": {"csv": "case,event\nc1,1\nc1,2\n"},
//	  "options": {"labels": true}
//	}'
//	curl -s localhost:8484/v1/jobs/job-000001
//	curl -s localhost:8484/v1/jobs/job-000001/result
//
// SIGINT/SIGTERM drain in-flight jobs and cancel queued ones before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":8484", "listen address")
		workers    = flag.Int("workers", 0, "concurrent match computations (0 = GOMAXPROCS)")
		engWorkers = flag.Int("engine-workers", 0, "per-job iteration-engine goroutines (0 = GOMAXPROCS/workers, -1 = serial)")
		cacheSize  = flag.Int("cache", 128, "result cache capacity in entries (-1 disables)")
		maxJobs    = flag.Int("max-jobs", 10000, "job registry retention bound")
		allowPaths = flag.Bool("allow-paths", false, "allow jobs to read logs from server-local file paths")
		drain      = flag.Duration("drain", 30*time.Second, "graceful shutdown drain timeout; stragglers are interrupted in-engine afterwards")
		jobTimeout = flag.Duration("job-timeout", 0, "default per-job wall-clock deadline (0 = none); requests may override via options.timeout_ms")
		maxTimeout = flag.Duration("max-job-timeout", 0, "hard cap on every job deadline, including requests that ask for none (0 = no cap)")
		maxQueue   = flag.Int("max-queue-depth", 0, "shed submissions once this many jobs are queued (0 = unbounded)")
		dataDir    = flag.String("data-dir", "", "persist jobs, checkpoints and results here; on restart unfinished jobs are recovered (empty = in-memory only)")
		ckpEvery   = flag.Int("checkpoint-every", 0, "engine rounds between persisted checkpoints of a running job (0 = default 16; needs -data-dir)")
		jobRetries = flag.Int("job-retries", 0, "retries (with backoff, from the last checkpoint) for jobs whose computation panicked (needs -data-dir)")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "emsd:", err)
		os.Exit(1)
	}
	cfg := server.Config{
		Workers:       *workers,
		EngineWorkers: *engWorkers,
		CacheSize:     *cacheSize,
		MaxJobs:       *maxJobs,
		AllowPaths:    *allowPaths,
		JobTimeout:    *jobTimeout,
		MaxJobTimeout: *maxTimeout,
		MaxQueueDepth:   *maxQueue,
		DataDir:         *dataDir,
		CheckpointEvery: *ckpEvery,
		JobRetries:      *jobRetries,
	}
	if err := serve(ctx, ln, cfg, *drain, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "emsd:", err)
		os.Exit(1)
	}
}

// serve runs the service on ln until ctx is cancelled, then drains: job
// intake stops, queued jobs are cancelled, running jobs get up to the drain
// timeout to finish while the HTTP listener keeps answering polls.
func serve(ctx context.Context, ln net.Listener, cfg server.Config, drain time.Duration, logw io.Writer) error {
	if cfg.Log == nil {
		cfg.Log = log.New(logw, "", log.LstdFlags)
	}
	s, err := server.New(cfg)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Fprintf(logw, "emsd listening on %s (workers=%d cache=%d)\n", ln.Addr(), cfg.Workers, cfg.CacheSize)
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(logw, "emsd: draining")
	dctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	serr := s.Shutdown(dctx)
	herr := hs.Shutdown(dctx)
	<-errc // http.ErrServerClosed from the Serve goroutine
	st := s.Stats()
	fmt.Fprintf(logw, "emsd: stopped (completed=%d failed=%d cancelled=%d)\n",
		st.Completed, st.Failed, st.Cancelled)
	if serr != nil {
		return fmt.Errorf("drain: %w", serr)
	}
	return herr
}
