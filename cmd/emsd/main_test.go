package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net"
	"net/http"
	"testing"
	"time"

	"repro/ems"
	"repro/internal/paperexample"
	"repro/internal/server"
)

// TestServeSmoke boots the daemon on an ephemeral port, submits the paper's
// running example, polls to completion, and checks the served
// correspondences against a direct ems.Match call — then cancels the
// context and expects a clean drain.
func TestServeSmoke(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var logBuf bytes.Buffer
	served := make(chan error, 1)
	go func() {
		served <- serve(ctx, ln, server.Config{Workers: 2}, 30*time.Second, &logBuf)
	}()
	base := "http://" + ln.Addr().String()
	waitHealthy(t, base)

	// Submit the paper pair as inline CSV.
	var csv1, csv2 bytes.Buffer
	if err := ems.WriteCSV(&csv1, paperexample.Log1()); err != nil {
		t.Fatal(err)
	}
	if err := ems.WriteCSV(&csv2, paperexample.Log2()); err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(map[string]any{
		"log1": map[string]string{"name": "L1", "csv": csv1.String()},
		"log2": map[string]string{"name": "L2", "csv": csv2.String()},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var view struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}
	err = json.NewDecoder(resp.Body).Decode(&view)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted || view.ID == "" {
		t.Fatalf("submit: status %d, view %+v", resp.StatusCode, view)
	}

	// Poll until terminal.
	deadline := time.Now().Add(30 * time.Second)
	for view.Status != "done" {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", view.Status)
		}
		if view.Status == "failed" || view.Status == "cancelled" {
			t.Fatalf("job ended %q", view.Status)
		}
		time.Sleep(5 * time.Millisecond)
		r, err := http.Get(base + "/v1/jobs/" + view.ID)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(r.Body).Decode(&view)
		r.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
	}

	// The served result equals a direct in-process Match.
	r, err := http.Get(base + "/v1/jobs/" + view.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	got, err := ems.ReadResultJSON(r.Body)
	r.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	want, err := ems.Match(paperexample.Log1(), paperexample.Log2())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Mapping) != len(want.Mapping) {
		t.Fatalf("served %d correspondences, direct match %d", len(got.Mapping), len(want.Mapping))
	}
	for i := range want.Mapping {
		if got.Mapping[i].Key() != want.Mapping[i].Key() {
			t.Errorf("correspondence %d: served %v, direct %v", i, got.Mapping[i], want.Mapping[i])
		}
		if math.Abs(got.Mapping[i].Score-want.Mapping[i].Score) > 1e-9 {
			t.Errorf("correspondence %d score: served %g, direct %g", i, got.Mapping[i].Score, want.Mapping[i].Score)
		}
	}

	// Context cancel (the SIGTERM path) drains and returns promptly.
	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not return after context cancel")
	}
	if !bytes.Contains(logBuf.Bytes(), []byte("emsd: stopped")) {
		t.Errorf("shutdown log missing: %q", logBuf.String())
	}
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK && bytes.Contains(b, []byte("ok")) {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("server never became healthy")
}

// TestServeRefusesBusyPort pins the error path: a second daemon on the same
// port must fail loudly, not serve.
func TestServeRefusesBusyPort(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if _, err := net.Listen("tcp", ln.Addr().String()); err == nil {
		t.Fatal("duplicate listen succeeded")
	}
	// And serve on a closed listener returns the accept error.
	closed, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	closed.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := serve(ctx, closed, server.Config{Workers: 1}, time.Second, io.Discard); err == nil {
		t.Fatal("serve on a closed listener returned nil")
	}
}
