//go:build race

package main

// raceEnabled reports that this test binary runs under the race detector,
// whose instrumentation slows the engine by an order of magnitude — far
// beyond the wall-clock tolerance of the regression gate.
const raceEnabled = true
