package main

import "testing"

// TestBenchRegress is the in-tree face of `make bench-regress`: re-measure
// the benchmark pair and fail when exact-serial or fast-path-serial wall
// time regressed more than 25% against the committed BENCH_core.json
// trajectory point. Wall-clock assertions are meaningless under -short
// (budget) and -race (order-of-magnitude instrumentation slowdown), so both
// skip; everything non-temporal the measurement checks — fast-path pruning
// fired, the certified error bound held — still runs on every non-short
// invocation.
func TestBenchRegress(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock regression gate skipped under -short")
	}
	if raceEnabled {
		t.Skip("wall-clock regression gate skipped under -race")
	}
	if err := runCoreRegress("../../BENCH_core.json", 2); err != nil {
		t.Fatal(err)
	}
}
