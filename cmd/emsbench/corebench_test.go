package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunCoreBench exercises the scaling harness end to end on a small pair
// and checks the report invariants: schema, run set, and the bit-identical
// flag on every parallel run.
func TestRunCoreBench(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := runCoreBench(path, 24, 40, 1, []int{2, 4}, true); err != nil {
		t.Fatalf("runCoreBench: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read report: %v", err)
	}
	var rep coreBenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("unmarshal report: %v", err)
	}
	if rep.Schema != "ems-core-bench/v2" {
		t.Errorf("schema = %q", rep.Schema)
	}
	if rep.Events != 24 || rep.Traces != 40 {
		t.Errorf("workload = %d events/%d traces, want 24/40", rep.Events, rep.Traces)
	}
	if rep.Pairs <= 0 || rep.Rounds <= 0 || rep.Evals <= 0 {
		t.Errorf("empty workload stats: pairs=%d rounds=%d evals=%d", rep.Pairs, rep.Rounds, rep.Evals)
	}
	if len(rep.Runs) != 3 {
		t.Fatalf("got %d runs, want 3 (serial, 2, 4)", len(rep.Runs))
	}
	wantWorkers := []int{1, 2, 4}
	for i, r := range rep.Runs {
		if r.Workers != wantWorkers[i] {
			t.Errorf("run %d workers = %d, want %d", i, r.Workers, wantWorkers[i])
		}
		if !r.BitIdentical {
			t.Errorf("run with %d workers is not bit-identical to serial", r.Workers)
		}
		if r.WallNS <= 0 || r.EvalsPerSec <= 0 || r.Speedup <= 0 {
			t.Errorf("run %d has empty measurements: %+v", i, r)
		}
	}
	if rep.Runs[0].Speedup != 1.0 {
		t.Errorf("serial speedup = %v, want 1.0", rep.Runs[0].Speedup)
	}
	fp := rep.FastPath
	if fp == nil {
		t.Fatal("report has no fastpath section")
	}
	if fp.SerialWallNS <= 0 || fp.SpeedupVsExact <= 0 || fp.Rounds <= 0 || fp.Evals <= 0 {
		t.Errorf("fastpath has empty measurements: %+v", fp)
	}
	if fp.PrunedPairSkips <= 0 {
		t.Errorf("fastpath pruned_pair_skips = %d, want > 0", fp.PrunedPairSkips)
	}
	if fp.MaxAbsError > fp.ErrorBound {
		t.Errorf("fastpath observed error %g exceeds certified bound %g", fp.MaxAbsError, fp.ErrorBound)
	}
	if fp.Rounds >= rep.Rounds {
		t.Errorf("fastpath took %d exact rounds, exact run took %d — no cutover happened", fp.Rounds, rep.Rounds)
	}
	if rep.MemPredictedBytes <= 0 {
		t.Errorf("mem_predicted_bytes = %d, want > 0 with -mem", rep.MemPredictedBytes)
	}
	for i, r := range rep.Runs {
		if r.PeakMemBytes <= 0 {
			t.Errorf("run %d peak_mem_bytes = %d, want > 0 with -mem", i, r.PeakMemBytes)
		}
	}
	if fp.PeakMemBytes <= 0 {
		t.Errorf("fastpath peak_mem_bytes = %d, want > 0 with -mem", fp.PeakMemBytes)
	}
}

// TestParseWorkerCounts covers the -bench-workers parser.
func TestParseWorkerCounts(t *testing.T) {
	got, err := parseWorkerCounts(" 2, 4 ,8")
	if err != nil {
		t.Fatalf("parseWorkerCounts: %v", err)
	}
	if len(got) != 3 || got[0] != 2 || got[1] != 4 || got[2] != 8 {
		t.Errorf("got %v, want [2 4 8]", got)
	}
	for _, bad := range []string{"", "0", "two", "4,-1"} {
		if _, err := parseWorkerCounts(bad); err == nil {
			t.Errorf("parseWorkerCounts(%q) accepted", bad)
		}
	}
}
