package main

import "testing"

func TestRunSingleFigures(t *testing.T) {
	// Only the cheap figures; the full sweep is exercised by the
	// experiments package tests.
	for _, fig := range []int{3, 5, 7} {
		if err := run(false, fig); err != nil {
			t.Errorf("fig %d: %v", fig, err)
		}
	}
}

func TestRunRejectsUnknownFigure(t *testing.T) {
	if err := run(false, 2); err == nil {
		t.Errorf("figure 2 accepted")
	}
	if err := run(false, 15); err == nil {
		t.Errorf("figure 15 accepted")
	}
}
