// Command emsbench regenerates every figure of the evaluation section of
// "Matching Heterogeneous Event Data" (SIGMOD 2014) on deterministic
// synthetic testbeds and prints the result tables.
//
// Usage:
//
//	emsbench                      # quick scale, all figures
//	emsbench -full                # paper-sized datasets (minutes)
//	emsbench -fig 8               # one figure only
//	emsbench -json BENCH_core.json  # core-engine scaling benchmark
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		full        = flag.Bool("full", false, "paper-sized datasets (slower)")
		fig         = flag.Int("fig", 0, "run a single figure (3-14); 0 = all")
		ablations   = flag.Bool("ablations", false, "run the design-choice ablations instead of the figures")
		robustness  = flag.Bool("robustness", false, "run the noise-robustness extension experiment")
		benchJSON   = flag.String("json", "", "run the core-engine scaling benchmark and write its report to this file")
		benchEvents = flag.Int("bench-events", 200, "activities of the synthetic benchmark pair (with -json)")
		benchTraces = flag.Int("bench-traces", 200, "traces per benchmark log (with -json)")
		benchReps   = flag.Int("bench-reps", 3, "repetitions per worker count, fastest kept (with -json)")
		benchW      = flag.String("bench-workers", "2,4,8", "comma-separated worker counts to compare against serial (with -json)")
		benchMem    = flag.Bool("mem", true, "add a peak-heap column: one extra untimed run per configuration, recorded as peak_mem_bytes in the -json report")
		regress     = flag.String("regress", "", "re-measure the benchmark pair and fail if wall clocks regressed >25% against this committed report")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()
	err := withProfiles(*cpuProfile, *memProfile, func() error {
		if *regress != "" {
			return runCoreRegress(*regress, *benchReps)
		}
		if *benchJSON != "" {
			counts, err := parseWorkerCounts(*benchW)
			if err != nil {
				return err
			}
			return runCoreBench(*benchJSON, *benchEvents, *benchTraces, *benchReps, counts, *benchMem)
		}
		if *ablations || *robustness {
			return runExtras(*full, *ablations, *robustness)
		}
		return run(*full, *fig)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "emsbench:", err)
		os.Exit(1)
	}
}

// withProfiles brackets fn with the optional CPU and heap profiles, so the
// Makefile's `profile` target (and ad-hoc runs) can feed `go tool pprof`
// without a separate harness.
func withProfiles(cpu, mem string, fn func() error) error {
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if mem != "" {
		defer func() {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "emsbench: heap profile:", err)
				return
			}
			runtime.GC() // settle allocations so the heap profile shows retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "emsbench: heap profile:", err)
			}
			f.Close()
		}()
	}
	return fn()
}

// parseWorkerCounts parses the -bench-workers list ("2,4,8").
func parseWorkerCounts(s string) ([]int, error) {
	var counts []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -bench-workers entry %q (want positive integers)", part)
		}
		counts = append(counts, n)
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("-bench-workers is empty")
	}
	return counts, nil
}

func runExtras(full, ablations, robustness bool) error {
	s := experiments.QuickScale()
	if full {
		s = experiments.FullScale()
	}
	var tables []*experiments.Table
	if ablations {
		ts, err := experiments.Ablations(s)
		if err != nil {
			return err
		}
		tables = append(tables, ts...)
	}
	if robustness {
		ts, err := experiments.Robustness(s)
		if err != nil {
			return err
		}
		tables = append(tables, ts...)
	}
	for _, t := range tables {
		fmt.Println(t)
	}
	return nil
}

func run(full bool, fig int) error {
	s := experiments.QuickScale()
	sizes := []int{10, 20, 30}
	f9events, f9ms := 30, []int{1, 2, 3}
	if full {
		s = experiments.FullScale()
		sizes = []int{10, 20, 30, 50, 70, 100}
		f9events, f9ms = 60, []int{2, 4, 6, 8, 10}
	}
	var tables []*experiments.Table
	var err error
	switch fig {
	case 0:
		// Stream tables as figures complete; the aggregate return is
		// discarded since everything was already printed.
		_, err = experiments.All(s, full, func(t *experiments.Table) {
			fmt.Println(t)
		})
		return err
	case 3:
		tables, err = experiments.Fig3(s)
	case 4:
		tables, err = experiments.Fig4(s)
	case 5:
		tables, err = experiments.Fig5(s)
	case 6:
		tables, err = experiments.Fig6(s)
	case 7:
		tables, err = experiments.Fig7(s)
	case 8:
		tables, err = experiments.Fig8(s, sizes)
	case 9:
		tables, err = experiments.Fig9(s, f9events, f9ms)
	case 10:
		tables, err = experiments.Fig10(s)
	case 11:
		tables, err = experiments.Fig11(s)
	case 12:
		tables, err = experiments.Fig12(s)
	case 13:
		tables, err = experiments.Fig13(s)
	case 14:
		tables, err = experiments.Fig14(s)
	default:
		return fmt.Errorf("unknown figure %d (want 3-14)", fig)
	}
	for _, t := range tables {
		fmt.Println(t)
	}
	return err
}
