// Command emsbench regenerates every figure of the evaluation section of
// "Matching Heterogeneous Event Data" (SIGMOD 2014) on deterministic
// synthetic testbeds and prints the result tables.
//
// Usage:
//
//	emsbench            # quick scale, all figures
//	emsbench -full      # paper-sized datasets (minutes)
//	emsbench -fig 8     # one figure only
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	var (
		full       = flag.Bool("full", false, "paper-sized datasets (slower)")
		fig        = flag.Int("fig", 0, "run a single figure (3-14); 0 = all")
		ablations  = flag.Bool("ablations", false, "run the design-choice ablations instead of the figures")
		robustness = flag.Bool("robustness", false, "run the noise-robustness extension experiment")
	)
	flag.Parse()
	if *ablations || *robustness {
		if err := runExtras(*full, *ablations, *robustness); err != nil {
			fmt.Fprintln(os.Stderr, "emsbench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*full, *fig); err != nil {
		fmt.Fprintln(os.Stderr, "emsbench:", err)
		os.Exit(1)
	}
}

func runExtras(full, ablations, robustness bool) error {
	s := experiments.QuickScale()
	if full {
		s = experiments.FullScale()
	}
	var tables []*experiments.Table
	if ablations {
		ts, err := experiments.Ablations(s)
		if err != nil {
			return err
		}
		tables = append(tables, ts...)
	}
	if robustness {
		ts, err := experiments.Robustness(s)
		if err != nil {
			return err
		}
		tables = append(tables, ts...)
	}
	for _, t := range tables {
		fmt.Println(t)
	}
	return nil
}

func run(full bool, fig int) error {
	s := experiments.QuickScale()
	sizes := []int{10, 20, 30}
	f9events, f9ms := 30, []int{1, 2, 3}
	if full {
		s = experiments.FullScale()
		sizes = []int{10, 20, 30, 50, 70, 100}
		f9events, f9ms = 60, []int{2, 4, 6, 8, 10}
	}
	var tables []*experiments.Table
	var err error
	switch fig {
	case 0:
		// Stream tables as figures complete; the aggregate return is
		// discarded since everything was already printed.
		_, err = experiments.All(s, full, func(t *experiments.Table) {
			fmt.Println(t)
		})
		return err
	case 3:
		tables, err = experiments.Fig3(s)
	case 4:
		tables, err = experiments.Fig4(s)
	case 5:
		tables, err = experiments.Fig5(s)
	case 6:
		tables, err = experiments.Fig6(s)
	case 7:
		tables, err = experiments.Fig7(s)
	case 8:
		tables, err = experiments.Fig8(s, sizes)
	case 9:
		tables, err = experiments.Fig9(s, f9events, f9ms)
	case 10:
		tables, err = experiments.Fig10(s)
	case 11:
		tables, err = experiments.Fig11(s)
	case 12:
		tables, err = experiments.Fig12(s)
	case 13:
		tables, err = experiments.Fig13(s)
	case 14:
		tables, err = experiments.Fig14(s)
	default:
		return fmt.Errorf("unknown figure %d (want 3-14)", fig)
	}
	for _, t := range tables {
		fmt.Println(t)
	}
	return err
}
