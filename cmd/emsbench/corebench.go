package main

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/depgraph"
	"repro/internal/eventlog"
	"repro/internal/procgen"
)

// coreBenchReport is the machine-readable output of the core-engine scaling
// benchmark (`emsbench -json BENCH_core.json`). It freezes a perf
// trajectory point — serial versus N-worker wall time on a fixed synthetic
// pair — so later changes to the iteration engine can be regressed against
// it.
type coreBenchReport struct {
	Schema     string  `json:"schema"`
	Events     int     `json:"events"`
	Traces     int     `json:"traces"`
	Vertices1  int     `json:"vertices1"`
	Vertices2  int     `json:"vertices2"`
	Pairs      int     `json:"pairs"`
	Rounds     int     `json:"rounds"`
	Evals      int     `json:"evaluations"`
	Converged  bool    `json:"converged"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	SerialMS   float64 `json:"serial_wall_ms"`
	// MemPredictedBytes is the cost model's predicted peak engine heap for
	// the exact serial configuration (core.EstimateCost) — the figure the
	// emsd resource governor admits against. Recorded next to the measured
	// peaks so drift between model and reality shows up in the trajectory.
	MemPredictedBytes int64 `json:"mem_predicted_bytes,omitempty"`

	Runs        []coreBenchRun     `json:"runs"`
	Convergence *convergenceReport `json:"convergence"`
	// FastPath is the trajectory point of the adaptive estimation-seeded
	// fast path (the ems-facade default) on the same pair, serial.
	FastPath *fastPathReport `json:"fastpath"`
}

// fastPathReport freezes the fast path's wall clock and accuracy on the
// benchmark pair, measured serially against the exact serial baseline of the
// same report.
type fastPathReport struct {
	SerialWallNS int64   `json:"serial_wall_ns"`
	SerialMS     float64 `json:"serial_wall_ms"`
	// SpeedupVsExact is the exact serial wall time divided by the fast
	// path's (both from this report, same binary and machine).
	SpeedupVsExact float64 `json:"speedup_vs_exact"`
	// Rounds is the exact rounds the adaptive cutover allowed before the
	// estimation pass took over.
	Rounds    int  `json:"rounds"`
	Evals     int  `json:"evaluations"`
	Estimated bool `json:"estimated"`
	// PrunedPairSkips counts the pair evaluations the per-pair freezing and
	// Proposition-2 bounds skipped — the counter whose zero in earlier
	// trajectory points motivated the fast path. Must be > 0.
	PrunedPairSkips int `json:"pruned_pair_skips"`
	// ErrorBound is the certified a-posteriori per-pair bound of the run;
	// MaxAbsError is the observed worst error against the exact serial
	// matrix (always <= ErrorBound).
	ErrorBound  float64 `json:"error_bound"`
	MaxAbsError float64 `json:"max_abs_error"`
	Budget      float64 `json:"budget"`
	// PeakMemBytes mirrors coreBenchRun.PeakMemBytes for the fast path.
	PeakMemBytes int64 `json:"peak_mem_bytes,omitempty"`
}

// convergenceReport is the iteration telemetry of the benchmark pair,
// gathered from an instrumented (observer-armed) run that is excluded from
// the timings. It freezes the convergence trajectory — how many rounds the
// fixpoint takes, how the per-round delta decays, and what Proposition-2
// pruning saves — alongside the wall-clock numbers.
type convergenceReport struct {
	// Rounds to converge and the delta of the final round, against the
	// configured epsilon.
	Rounds     int     `json:"rounds"`
	FinalDelta float64 `json:"final_delta"`
	Epsilon    float64 `json:"epsilon"`
	// PerRoundDelta is the worst per-direction delta of each round, in
	// round order: the decay curve the Epsilon test watches.
	PerRoundDelta []float64 `json:"per_round_delta"`
	// PrunedPairSkips counts pair evaluations skipped by Proposition 2
	// across all rounds and directions.
	PrunedPairSkips int `json:"pruned_pair_skips"`
	// EvalsNoPruning is the evaluation count of a pruning-disabled run of
	// the same pair; EvalsSavedByPruning is the difference to the pruned
	// run (results are bit-identical either way).
	EvalsNoPruning      int `json:"evals_no_pruning"`
	EvalsSavedByPruning int `json:"evals_saved_by_pruning"`
}

// coreBenchRun is one measured worker configuration.
type coreBenchRun struct {
	Workers     int     `json:"workers"`
	WallNS      int64   `json:"wall_ns"`
	WallMS      float64 `json:"wall_ms"`
	EvalsPerSec float64 `json:"evals_per_sec"`
	// Speedup is serial wall time divided by this run's wall time (1.0 for
	// the serial run itself). Worker counts beyond the machine's cores
	// cannot speed anything up; the field records what the hardware gave.
	Speedup float64 `json:"speedup"`
	// BitIdentical confirms the run reproduced the serial Sim matrix and
	// counters exactly — the engine's determinism contract, re-checked on
	// every benchmark emission.
	BitIdentical bool `json:"bit_identical"`
	// PeakMemBytes is the measured peak heap growth of one extra
	// (untimed) run of this configuration; 0 when -mem was off.
	PeakMemBytes int64 `json:"peak_mem_bytes,omitempty"`
}

// coreBenchSeed fixes the synthetic workload so trajectory points stay
// comparable across sessions.
const coreBenchSeed = 2014

// coreBenchPair generates the benchmark workload: two skewed playouts of
// one generated process specification, so the logs are heterogeneous views
// of the same behavior, built into artificial-event dependency graphs.
func coreBenchPair(events, traces int) (*depgraph.Graph, *depgraph.Graph, error) {
	rng := rand.New(rand.NewSource(coreBenchSeed))
	spec, err := procgen.Generate(rng, procgen.DefaultOptions(events))
	if err != nil {
		return nil, nil, err
	}
	po := procgen.PlayoutOptions{Traces: traces, LoopRepeat: 0.3, MaxLoop: 3, XorSkew: 2}
	l1, err := spec.Playout(rng, "bench1", po)
	if err != nil {
		return nil, nil, err
	}
	l2, err := spec.Playout(rng, "bench2", po)
	if err != nil {
		return nil, nil, err
	}
	build := func(l *eventlog.Log) (*depgraph.Graph, error) {
		g, err := depgraph.Build(l)
		if err != nil {
			return nil, err
		}
		return g.AddArtificial()
	}
	g1, err := build(l1)
	if err != nil {
		return nil, nil, err
	}
	g2, err := build(l2)
	if err != nil {
		return nil, nil, err
	}
	return g1, g2, nil
}

// measureCoreBench runs the benchmark measurements on the standard pair and
// assembles the report. Each configuration runs reps times and keeps the
// fastest wall time; N-worker runs are verified bit-identical against the
// serial baseline, the fast-path run against its certified error bound.
func measureCoreBench(events, traces, reps int, workerCounts []int, measureMem bool) (*coreBenchReport, error) {
	g1, g2, err := coreBenchPair(events, traces)
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig()

	measure := func(c core.Config) (*core.Result, time.Duration, error) {
		var best time.Duration
		var res *core.Result
		for r := 0; r < reps; r++ {
			start := time.Now()
			out, err := core.Compute(g1, g2, c)
			wall := time.Since(start)
			if err != nil {
				return nil, 0, err
			}
			if res == nil || wall < best {
				best = wall
				res = out
			}
		}
		return res, best, nil
	}
	// memOf runs one extra, untimed computation with a heap sampler armed,
	// so the memory column never perturbs the wall clocks.
	memOf := func(c core.Config) (int64, error) {
		if !measureMem {
			return 0, nil
		}
		return peakHeapDuring(func() error {
			_, err := core.Compute(g1, g2, c)
			return err
		})
	}
	atWorkers := func(workers int) core.Config {
		c := cfg
		c.Workers = workers
		return c
	}

	serial, serialWall, err := measure(atWorkers(1))
	if err != nil {
		return nil, err
	}
	report := &coreBenchReport{
		Schema:     "ems-core-bench/v2",
		Events:     events,
		Traces:     traces,
		Vertices1:  g1.N(),
		Vertices2:  g2.N(),
		Pairs:      g1.RealCount() * g2.RealCount(),
		Rounds:     serial.Rounds,
		Evals:      serial.Evaluations,
		Converged:  serial.Converged,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		SerialMS:   durMS(serialWall),
	}
	if measureMem {
		report.MemPredictedBytes = core.EstimateCost(g1, g2, atWorkers(1)).Bytes
	}
	run := benchRun(1, serialWall, serialWall, serial, serial)
	if run.PeakMemBytes, err = memOf(atWorkers(1)); err != nil {
		return nil, err
	}
	report.Runs = append(report.Runs, run)
	for _, w := range workerCounts {
		if w <= 1 {
			continue
		}
		res, wall, err := measure(atWorkers(w))
		if err != nil {
			return nil, err
		}
		run := benchRun(w, wall, serialWall, serial, res)
		if run.PeakMemBytes, err = memOf(atWorkers(w)); err != nil {
			return nil, err
		}
		report.Runs = append(report.Runs, run)
	}
	conv, err := measureConvergence(g1, g2, cfg, serial)
	if err != nil {
		return nil, err
	}
	report.Convergence = conv

	fcfg := atWorkers(1)
	fcfg.FastPath = true
	fcfg.Tiled = true
	fast, fastWall, err := measure(fcfg)
	if err != nil {
		return nil, err
	}
	var maxErr float64
	for i := range serial.Sim {
		if d := math.Abs(serial.Sim[i] - fast.Sim[i]); d > maxErr {
			maxErr = d
		}
	}
	if maxErr > fast.ErrorBound {
		return nil, fmt.Errorf("fast path violated its certified bound: max abs error %g > bound %g", maxErr, fast.ErrorBound)
	}
	fp := &fastPathReport{
		SerialWallNS:    fastWall.Nanoseconds(),
		SerialMS:        durMS(fastWall),
		Rounds:          fast.Rounds,
		Evals:           fast.Evaluations,
		Estimated:       fast.Estimated,
		PrunedPairSkips: fast.Pruned,
		ErrorBound:      fast.ErrorBound,
		MaxAbsError:     maxErr,
		Budget:          core.DefaultFastPathBudget,
	}
	if fastWall > 0 {
		fp.SpeedupVsExact = float64(serialWall) / float64(fastWall)
	}
	if fp.PrunedPairSkips == 0 {
		return nil, fmt.Errorf("fast path reported zero pruned pair skips on the benchmark pair")
	}
	if fp.PeakMemBytes, err = memOf(fcfg); err != nil {
		return nil, err
	}
	report.FastPath = fp
	return report, nil
}

// peakHeapDuring runs fn with a 1ms heap sampler armed and returns the peak
// heap growth over the pre-run (post-GC) baseline. The sampler reads
// runtime.MemStats, so the measured run must never be the timed one.
func peakHeapDuring(fn func() error) (int64, error) {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	base := int64(ms.HeapAlloc)
	var peak atomic.Int64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				var m runtime.MemStats
				runtime.ReadMemStats(&m)
				if d := int64(m.HeapAlloc) - base; d > peak.Load() {
					peak.Store(d)
				}
			}
		}
	}()
	err := fn()
	// One final sample before anything is garbage-collected: short runs may
	// finish between ticks.
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	if d := int64(m.HeapAlloc) - base; d > peak.Load() {
		peak.Store(d)
	}
	close(stop)
	<-done
	if err != nil {
		return 0, err
	}
	return peak.Load(), nil
}

// printCoreBench renders the human-readable summary of a report.
func printCoreBench(report *coreBenchReport) {
	fmt.Printf("core bench: %d events, %d pairs, %d rounds, %d evaluations (GOMAXPROCS=%d)\n",
		report.Events, report.Pairs, report.Rounds, report.Evals, report.GOMAXPROCS)
	for _, r := range report.Runs {
		mem := ""
		if r.PeakMemBytes > 0 {
			mem = fmt.Sprintf("  mem=%7.2fMiB", float64(r.PeakMemBytes)/(1<<20))
		}
		fmt.Printf("  workers=%d  wall=%8.2fms  evals/s=%12.0f  speedup=%.2fx  bit_identical=%v%s\n",
			r.Workers, r.WallMS, r.EvalsPerSec, r.Speedup, r.BitIdentical, mem)
	}
	if report.MemPredictedBytes > 0 {
		fmt.Printf("cost model:  predicted peak %.2fMiB for exact serial\n",
			float64(report.MemPredictedBytes)/(1<<20))
	}
	if conv := report.Convergence; conv != nil {
		fmt.Printf("convergence: %d rounds to delta=%.2e (eps=%.0e); pruning skipped %d pair-rounds, saving %d of %d evals\n",
			conv.Rounds, conv.FinalDelta, conv.Epsilon, conv.PrunedPairSkips,
			conv.EvalsSavedByPruning, conv.EvalsNoPruning)
	}
	if fp := report.FastPath; fp != nil {
		fmt.Printf("fast path:   wall=%8.2fms  speedup=%.2fx vs exact serial  rounds=%d  pruned_pair_skips=%d\n",
			fp.SerialMS, fp.SpeedupVsExact, fp.Rounds, fp.PrunedPairSkips)
		fmt.Printf("             certified bound=%.4f  observed max error=%.4f  (budget %.2g)\n",
			fp.ErrorBound, fp.MaxAbsError, fp.Budget)
	}
}

// runCoreBench measures the benchmark pair and writes the JSON report to
// path.
func runCoreBench(path string, events, traces, reps int, workerCounts []int, measureMem bool) error {
	report, err := measureCoreBench(events, traces, reps, workerCounts, measureMem)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	printCoreBench(report)
	fmt.Printf("wrote %s\n", path)
	return nil
}

// regressTolerance is the wall-clock slack `emsbench -regress` allows over a
// committed trajectory point before declaring a regression.
const regressTolerance = 1.25

// runCoreRegress re-measures the benchmark pair and fails (non-nil error)
// when wall clocks regressed more than regressTolerance against the
// committed report at path, comparing exact serial and fast-path serial
// separately. Counters that must not rot (pruned skips, the certified bound
// discipline) are re-checked by measureCoreBench itself.
func runCoreRegress(path string, reps int) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var committed coreBenchReport
	if err := json.Unmarshal(raw, &committed); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	if committed.FastPath == nil {
		return fmt.Errorf("%s has no fastpath section (schema %s); regenerate with -json", path, committed.Schema)
	}
	report, err := measureCoreBench(committed.Events, committed.Traces, reps, nil, false)
	if err != nil {
		return err
	}
	printCoreBench(report)
	fail := false
	check := func(name string, now, was float64) {
		limit := was * regressTolerance
		verdict := "ok"
		if now > limit {
			verdict = "REGRESSED"
			fail = true
		}
		fmt.Printf("regress %-12s now=%8.2fms  committed=%8.2fms  limit=%8.2fms  %s\n",
			name, now, was, limit, verdict)
	}
	check("exact-serial", report.SerialMS, committed.SerialMS)
	check("fast-serial", report.FastPath.SerialMS, committed.FastPath.SerialMS)
	if fail {
		return fmt.Errorf("wall clock regressed more than %.0f%% against %s", (regressTolerance-1)*100, path)
	}
	return nil
}

// measureConvergence reruns the pair serially with the engine's round
// observer armed (pruned), then once with pruning disabled, and reconciles
// both against the timed serial result.
func measureConvergence(g1, g2 *depgraph.Graph, cfg core.Config, serial *core.Result) (*convergenceReport, error) {
	c := cfg
	c.Workers = 1
	conv := &convergenceReport{Epsilon: c.Epsilon}
	c.Observer = func(ob core.RoundObservation) {
		delta := 0.0
		pruned := 0
		for _, d := range ob.Dirs {
			// Only directions that stepped this round contribute to its
			// delta; a converged engine keeps reporting its final state.
			if d.Round == ob.Round {
				if d.Delta > delta {
					delta = d.Delta
				}
			}
			pruned += d.TotalPruned
		}
		conv.PerRoundDelta = append(conv.PerRoundDelta, delta)
		conv.FinalDelta = delta
		conv.PrunedPairSkips = pruned
	}
	observed, err := core.Compute(g1, g2, c)
	if err != nil {
		return nil, err
	}
	if observed.Rounds != serial.Rounds || observed.Evaluations != serial.Evaluations {
		return nil, fmt.Errorf("observer changed the run: %d rounds / %d evals vs %d / %d",
			observed.Rounds, observed.Evaluations, serial.Rounds, serial.Evaluations)
	}
	conv.Rounds = observed.Rounds
	noPrune := cfg
	noPrune.Workers = 1
	noPrune.Prune = false
	unpruned, err := core.Compute(g1, g2, noPrune)
	if err != nil {
		return nil, err
	}
	conv.EvalsNoPruning = unpruned.Evaluations
	conv.EvalsSavedByPruning = unpruned.Evaluations - serial.Evaluations
	return conv, nil
}

// benchRun assembles one run record, checking the result against the serial
// baseline bit for bit.
func benchRun(workers int, wall, serialWall time.Duration, serial, res *core.Result) coreBenchRun {
	identical := serial.Evaluations == res.Evaluations &&
		serial.Rounds == res.Rounds &&
		serial.Converged == res.Converged &&
		len(serial.Sim) == len(res.Sim)
	if identical {
		for i := range serial.Sim {
			if serial.Sim[i] != res.Sim[i] {
				identical = false
				break
			}
		}
	}
	var eps float64
	if secs := wall.Seconds(); secs > 0 {
		eps = float64(res.Evaluations) / secs
	}
	var speedup float64
	if wall > 0 {
		speedup = float64(serialWall) / float64(wall)
	}
	return coreBenchRun{
		Workers:      workers,
		WallNS:       wall.Nanoseconds(),
		WallMS:       durMS(wall),
		EvalsPerSec:  eps,
		Speedup:      speedup,
		BitIdentical: identical,
	}
}

func durMS(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
