//go:build !race

package main

// raceEnabled reports whether this test binary runs under the race detector.
const raceEnabled = false
