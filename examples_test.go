package repro

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestExamplesRun executes every example binary end to end; each must exit
// zero and print something. Skipped in -short mode (they need the Go
// toolchain and a few seconds each).
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples need the go toolchain; skipped in -short mode")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatalf("examples directory: %v", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			cmd := exec.Command("go", "run", "./"+filepath.Join("examples", name))
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", name, err, out)
			}
			if len(out) == 0 {
				t.Errorf("example %s printed nothing", name)
			}
		})
	}
}
