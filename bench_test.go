package repro

// One benchmark per figure of the paper's evaluation (Section 5). Each
// benchmark times a representative slice of the corresponding experiment at
// a small deterministic scale; cmd/emsbench regenerates the full tables.
// Additional micro-benchmarks at the bottom time the core building blocks
// (dependency graph construction, one similarity iteration, estimation,
// assignment), and ablation benchmarks isolate the design choices DESIGN.md
// calls out (artificial event, pruning, both-direction aggregation).

import (
	"math/rand"
	"testing"

	"repro/ems"
	"repro/internal/assignment"
	"repro/internal/baselines/bhv"
	"repro/internal/baselines/ged"
	"repro/internal/baselines/opq"
	"repro/internal/composite"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/depgraph"
	"repro/internal/experiments"
	"repro/internal/matching"
)

// benchPairs builds a small deterministic testbed once per benchmark.
func benchPairs(b *testing.B, tb dataset.Testbed, events, composites int) []*dataset.Pair {
	b.Helper()
	pairs, err := dataset.MakeTestbed(tb, dataset.TestbedOptions{
		Pairs: 2, Events: events, Traces: 80,
		OpaqueFraction: 0.5, CompositeMerges: composites, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return pairs
}

func benchMethod(b *testing.B, m experiments.Method, pairs []*dataset.Pair) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunMethod(m, pairs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig03 times singleton matching, structure only, per method on
// the DS-FB testbed (Figure 3).
func BenchmarkFig03(b *testing.B) {
	pairs := benchPairs(b, dataset.DSFB, 12, 0)
	for _, m := range []experiments.Method{
		experiments.EMS(false),
		experiments.EMSEstimate(5, false),
		experiments.GED(false),
		experiments.OPQ(),
		experiments.BHV(false),
	} {
		b.Run(m.Name, func(b *testing.B) { benchMethod(b, m, pairs) })
	}
}

// BenchmarkFig04 times singleton matching with typographic similarity
// (Figure 4).
func BenchmarkFig04(b *testing.B) {
	pairs := benchPairs(b, dataset.DSFB, 12, 0)
	for _, m := range []experiments.Method{
		experiments.EMS(true),
		experiments.EMSEstimate(5, true),
		experiments.GED(true),
		experiments.BHV(true),
	} {
		b.Run(m.Name, func(b *testing.B) { benchMethod(b, m, pairs) })
	}
}

// BenchmarkFig05 times the estimation trade-off at I = 0, 5 and exact
// (Figure 5).
func BenchmarkFig05(b *testing.B) {
	pairs := benchPairs(b, dataset.DSFB, 16, 0)
	b.Run("I=0", func(b *testing.B) { benchMethod(b, experiments.EMSEstimate(0, false), pairs) })
	b.Run("I=5", func(b *testing.B) { benchMethod(b, experiments.EMSEstimate(5, false), pairs) })
	b.Run("MAX", func(b *testing.B) { benchMethod(b, experiments.EMS(false), pairs) })
}

// BenchmarkFig06 times exact EMS with and without early-convergence pruning
// (Figure 6).
func BenchmarkFig06(b *testing.B) {
	pairs := benchPairs(b, dataset.DSFB, 16, 0)
	run := func(b *testing.B, prune bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, p := range pairs {
				g1, _ := depgraph.Build(p.Log1)
				g2, _ := depgraph.Build(p.Log2)
				ga1, _ := g1.AddArtificial()
				ga2, _ := g2.AddArtificial()
				cfg := core.DefaultConfig()
				cfg.Prune = prune
				if _, err := core.Compute(ga1, ga2, cfg); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("pruned", func(b *testing.B) { run(b, true) })
	b.Run("unpruned", func(b *testing.B) { run(b, false) })
}

// BenchmarkFig07 times EMS across minimum-frequency thresholds (Figure 7).
func BenchmarkFig07(b *testing.B) {
	pairs := benchPairs(b, dataset.DSFB, 16, 0)
	for _, th := range []float64{0, 0.10, 0.25} {
		name := "minfreq=0.00"
		switch th {
		case 0.10:
			name = "minfreq=0.10"
		case 0.25:
			name = "minfreq=0.25"
		}
		b.Run(name, func(b *testing.B) {
			benchMethod(b, experiments.EMSMinFreq(th, false), pairs)
		})
	}
}

// BenchmarkFig08 times EMS and EMS+es across event-set sizes (Figure 8; the
// baselines' scalability is covered by Fig03 at fixed size, OPQ being
// infeasible above 30 events).
func BenchmarkFig08(b *testing.B) {
	for _, events := range []int{10, 20, 40} {
		pairs := benchPairs(b, dataset.None, events, 0)
		b.Run("EMS/"+itoa(events), func(b *testing.B) { benchMethod(b, experiments.EMS(false), pairs) })
		b.Run("EMS+es/"+itoa(events), func(b *testing.B) { benchMethod(b, experiments.EMSEstimate(5, false), pairs) })
	}
}

// BenchmarkFig09 times EMS under growing dislocation (Figure 9).
func BenchmarkFig09(b *testing.B) {
	for _, m := range []int{1, 3} {
		pairs, err := dataset.MakeTestbed(dataset.DSB, dataset.TestbedOptions{
			Pairs: 2, Events: 16, Traces: 80,
			Dislocation: m, Style: dataset.StyleTrim, OpaqueFraction: 1.0, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Run("m="+itoa(m), func(b *testing.B) { benchMethod(b, experiments.EMS(false), pairs) })
	}
}

// BenchmarkFig10 times composite matching, structure only (Figure 10).
func BenchmarkFig10(b *testing.B) {
	pairs := benchPairs(b, dataset.DSFB, 10, 2)
	b.Run("EMS", func(b *testing.B) {
		benchMethod(b, experiments.EMSComposite("EMS", false, -1, true, true, 0.005, 8), pairs)
	})
	b.Run("EMS+es", func(b *testing.B) {
		benchMethod(b, experiments.EMSComposite("EMS+es", false, 5, true, true, 0.005, 8), pairs)
	})
	b.Run("GED", func(b *testing.B) {
		benchMethod(b, experiments.GEDComposite(false, 1e-6, 4), pairs)
	})
	b.Run("BHV", func(b *testing.B) {
		benchMethod(b, experiments.BHVComposite(false, 0.005, 4), pairs)
	})
}

// BenchmarkFig11 times composite matching with typographic similarity
// (Figure 11).
func BenchmarkFig11(b *testing.B) {
	pairs := benchPairs(b, dataset.DSFB, 10, 2)
	b.Run("EMS", func(b *testing.B) {
		benchMethod(b, experiments.EMSComposite("EMS", true, -1, true, true, 0.005, 8), pairs)
	})
	b.Run("EMS+es", func(b *testing.B) {
		benchMethod(b, experiments.EMSComposite("EMS+es", true, 5, true, true, 0.005, 8), pairs)
	})
}

// BenchmarkFig12 times the four composite pruning configurations
// (Figure 12).
func BenchmarkFig12(b *testing.B) {
	pairs := benchPairs(b, dataset.DSFB, 10, 2)
	variants := []struct {
		name   string
		uc, bd bool
	}{
		{"none", false, false},
		{"Uc", true, false},
		{"Bd", false, true},
		{"Uc+Bd", true, true},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			benchMethod(b, experiments.EMSComposite("EMS", false, -1, v.uc, v.bd, 0.005, 8), pairs)
		})
	}
}

// BenchmarkFig13 times composite matching across merge thresholds
// (Figure 13).
func BenchmarkFig13(b *testing.B) {
	pairs := benchPairs(b, dataset.DSFB, 10, 2)
	for _, d := range []float64{0.05, 0.005, 0.0005} {
		name := "delta=0.05"
		switch d {
		case 0.005:
			name = "delta=0.005"
		case 0.0005:
			name = "delta=0.0005"
		}
		b.Run(name, func(b *testing.B) {
			benchMethod(b, experiments.EMSComposite("EMS", false, -1, true, true, d, 8), pairs)
		})
	}
}

// BenchmarkFig14 times composite matching across candidate-set sizes
// (Figure 14).
func BenchmarkFig14(b *testing.B) {
	pairs := benchPairs(b, dataset.DSFB, 10, 2)
	for _, n := range []int{2, 8, 16} {
		b.Run("cands="+itoa(n), func(b *testing.B) {
			benchMethod(b, experiments.EMSComposite("EMS", false, -1, true, true, 0.005, n), pairs)
		})
	}
}

// --- Micro-benchmarks of the building blocks ---

func benchPairLogs(b *testing.B, events int) *dataset.Pair {
	b.Helper()
	rng := rand.New(rand.NewSource(5))
	p, err := dataset.GeneratePair(rng, "bench", dataset.Options{
		Events: events, Traces: 100, OpaqueFraction: 1, ExtraFront: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkDepgraphBuild times dependency-graph construction from a log.
func BenchmarkDepgraphBuild(b *testing.B) {
	p := benchPairLogs(b, 30)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := depgraph.Build(p.Log1)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := g.AddArtificial(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimilarityIteration times the exact EMS fixpoint on a 30-event
// pair.
func BenchmarkSimilarityIteration(b *testing.B) {
	p := benchPairLogs(b, 30)
	g1, _ := depgraph.Build(p.Log1)
	g2, _ := depgraph.Build(p.Log2)
	ga1, _ := g1.AddArtificial()
	ga2, _ := g2.AddArtificial()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Compute(ga1, ga2, core.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimation times Algorithm 1 with I = 1 on the same pair.
func BenchmarkEstimation(b *testing.B) {
	p := benchPairLogs(b, 30)
	g1, _ := depgraph.Build(p.Log1)
	g2, _ := depgraph.Build(p.Log2)
	ga1, _ := g1.AddArtificial()
	ga2, _ := g2.AddArtificial()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ExactEstimationTradeoff(ga1, ga2, core.DefaultConfig(), 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAssignment times the Hungarian selection on a 50x50 matrix.
func BenchmarkAssignment(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	const n = 50
	m := make([]float64, n*n)
	for i := range m {
		m[i] = rng.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := assignment.Maximize(m, n, n); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCandidateDiscovery times SEQ-pattern discovery.
func BenchmarkCandidateDiscovery(b *testing.B) {
	p := benchPairLogs(b, 40)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		composite.Discover(p.Log1, composite.DefaultDiscoverOptions())
	}
}

// BenchmarkBaselines times the three competitor similarity computations on
// a common 20-event pair.
func BenchmarkBaselines(b *testing.B) {
	p := benchPairLogs(b, 20)
	g1, _ := depgraph.Build(p.Log1)
	g2, _ := depgraph.Build(p.Log2)
	b.Run("BHV", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := bhv.Compute(g1, g2, bhv.DefaultConfig()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("GED", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ged.Match(g1, g2, ged.DefaultConfig()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("OPQ", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := opq.Match(g1, g2, opq.DefaultConfig()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ablations ---

// BenchmarkAblationArtificialEvent compares accuracy-relevant work with and
// without the artificial event (without it, dislocated matching degrades —
// this ablation times the cost of the device).
func BenchmarkAblationArtificialEvent(b *testing.B) {
	p := benchPairLogs(b, 20)
	g1, _ := depgraph.Build(p.Log1)
	g2, _ := depgraph.Build(p.Log2)
	ga1, _ := g1.AddArtificial()
	ga2, _ := g2.AddArtificial()
	b.Run("with", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Compute(ga1, ga2, core.DefaultConfig()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("without", func(b *testing.B) {
		// BHV is exactly the ablated similarity: same propagation, no
		// artificial event.
		for i := 0; i < b.N; i++ {
			if _, err := bhv.Compute(g1, g2, bhv.DefaultConfig()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationDirections compares single-direction and both-direction
// similarity.
func BenchmarkAblationDirections(b *testing.B) {
	p := benchPairLogs(b, 20)
	g1, _ := depgraph.Build(p.Log1)
	g2, _ := depgraph.Build(p.Log2)
	ga1, _ := g1.AddArtificial()
	ga2, _ := g2.AddArtificial()
	for _, d := range []core.Direction{core.Forward, core.Backward, core.Both} {
		cfg := core.DefaultConfig()
		cfg.Direction = d
		b.Run(d.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Compute(ga1, ga2, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEndToEnd times the full public-API pipeline (build + similarity
// + selection) for plain and composite matching.
func BenchmarkEndToEnd(b *testing.B) {
	p := benchPairLogs(b, 20)
	b.Run("Match", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ems.Match(p.Log1, p.Log2); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("MatchComposite", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ems.MatchComposite(p.Log1, p.Log2); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSelection times correspondence selection on realistic outputs.
func BenchmarkSelection(b *testing.B) {
	p := benchPairLogs(b, 30)
	g1, _ := depgraph.Build(p.Log1)
	g2, _ := depgraph.Build(p.Log2)
	ga1, _ := g1.AddArtificial()
	ga2, _ := g2.AddArtificial()
	r, err := core.Compute(ga1, ga2, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := matching.Select(r.Names1, r.Names2, r.Sim, 0.25, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
