// Package ems is the public API of this repository: an implementation of
// "Matching Heterogeneous Event Data" (Zhu, Song, Lian, Wang, Zou — SIGMOD
// 2014). It matches events across heterogeneous event logs that exhibit
// opaque names, dislocated traces and composite events, using the paper's
// iterative Event Matching Similarity (EMS) over event dependency graphs.
//
// Quick start:
//
//	res, err := ems.Match(log1, log2)        // 1:1 event correspondences
//	res, err := ems.MatchComposite(log1, log2) // m:n composite matching
//
// Both entry points accept functional options to control the similarity
// (alpha/decay/labels), the exact-vs-estimation trade-off of Algorithm 1,
// pruning, and correspondence selection.
//
// Match runs the adaptive fast path by default: exact rounds until the
// geometric convergence tail is detected, then the closed-form estimation of
// Section 3.5 plus one certifying residual round. The certified worst-case
// error is returned in Result.ErrorBound; WithExact restores plain exact
// iteration, WithFastPath tunes the error budget. MatchComposite always runs
// exact (its merge decisions compare similarity averages).
package ems

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/composite"
	"repro/internal/core"
	"repro/internal/depgraph"
	"repro/internal/eventlog"
	"repro/internal/label"
	"repro/internal/matching"
)

// Trace is a finite sequence of event names recorded for one process
// instance.
type Trace = eventlog.Trace

// Log is a multiset of traces for one process.
type Log = eventlog.Log

// Correspondence relates a group of log-1 events to a group of log-2
// events; singleton groups express 1:1 matches.
type Correspondence = matching.Correspondence

// Mapping is a set of correspondences.
type Mapping = matching.Mapping

// Quality holds precision, recall and f-measure of a mapping against a
// ground truth.
type Quality = matching.Quality

// LabelSimilarity scores the typographic similarity of two event names in
// [0, 1].
type LabelSimilarity = label.Similarity

// ErrStopped is the sentinel matched (via errors.Is) by every error a match
// call returns when it was aborted by WithContext cancellation or a
// WithTimeout deadline. errors.Unwrap-ing such an error (or errors.Is with
// context.Canceled / context.DeadlineExceeded) reveals the cause.
var ErrStopped = core.ErrStopped

// Direction selects forward, backward, or averaged similarity propagation.
type Direction = core.Direction

// Propagation directions, re-exported from the core engine.
const (
	Forward  = core.Forward
	Backward = core.Backward
	Both     = core.Both
)

// NewLog returns an empty log with the given name.
func NewLog(name string) *Log { return eventlog.New(name) }

// ReadCSV parses a two-column case,event CSV into a log.
func ReadCSV(r io.Reader, name string) (*Log, error) { return eventlog.ReadCSV(r, name) }

// WriteCSV writes a log as a two-column case,event CSV.
func WriteCSV(w io.Writer, l *Log) error { return eventlog.WriteCSV(w, l) }

// ReadXML parses a log from the minimal XES-like XML dialect.
func ReadXML(r io.Reader) (*Log, error) { return eventlog.ReadXML(r) }

// WriteXML writes a log in the minimal XES-like XML dialect.
func WriteXML(w io.Writer, l *Log) error { return eventlog.WriteXML(w, l) }

// ReadXES parses a standard XES (IEEE 1849) document as produced by
// process-mining tools, extracting each event's concept:name.
func ReadXES(r io.Reader) (*Log, error) { return eventlog.ReadXES(r) }

// ReadOptions configure the log readers; Lenient converts malformed records
// and per-record size-limit violations into counted skips instead of
// aborting the file.
type ReadOptions = eventlog.ReadOptions

// SkipReport counts the records a lenient read dropped.
type SkipReport = eventlog.SkipReport

// ReadCSVWith is ReadCSV with options (notably lenient mode, which skips
// and counts malformed rows instead of failing the file).
func ReadCSVWith(r io.Reader, name string, o ReadOptions) (*Log, *SkipReport, error) {
	return eventlog.ReadCSVWith(r, name, o)
}

// ReadXMLWith is ReadXML with options (lenient mode skips and counts
// nameless events and the traces they empty out).
func ReadXMLWith(r io.Reader, o ReadOptions) (*Log, *SkipReport, error) {
	return eventlog.ReadXMLWith(r, o)
}

// ReadXESWith is ReadXES with options (lenient mode skips and counts events
// without a usable concept:name and the traces they empty out).
func ReadXESWith(r io.Reader, o ReadOptions) (*Log, *SkipReport, error) {
	return eventlog.ReadXESWith(r, o)
}

// WriteXES writes the log as a minimal valid XES document.
func WriteXES(w io.Writer, l *Log) error { return eventlog.WriteXES(w, l) }

// SelectionStrategy chooses how pair-wise similarities become
// correspondences; see the constants below.
type SelectionStrategy = matching.Strategy

// Selection strategies: the paper's maximum-total-similarity assignment,
// plus the greedy and stable-matching alternatives its related work
// outlines.
const (
	SelectMaxTotal = matching.MaxTotal
	SelectGreedy   = matching.Greedy
	SelectStable   = matching.Stable
)

// QGramCosine returns the q-gram cosine label similarity the paper uses.
func QGramCosine(q int) LabelSimilarity { return label.QGramCosine(q) }

// Levenshtein is the normalized edit-distance label similarity.
func Levenshtein(a, b string) float64 { return label.Levenshtein(a, b) }

// JaroWinkler is the prefix-boosted Jaro similarity, suited to labels that
// differ by suffixes.
func JaroWinkler(a, b string) float64 { return label.JaroWinkler(a, b) }

// MongeElkan lifts a base label similarity to multi-word labels, tolerating
// word reordering.
func MongeElkan(base LabelSimilarity) LabelSimilarity { return label.MongeElkan(base) }

// Evaluate scores a found mapping against the ground truth.
func Evaluate(found, truth Mapping) Quality { return matching.Evaluate(found, truth) }

// Consensus combines several mappings of the same log pair (different
// configurations, or contradictory human opinions) into one: only
// correspondences supported by at least quorum inputs survive, conflicts
// are resolved by support then score, and scores are averaged.
func Consensus(mappings []Mapping, quorum int) (Mapping, error) {
	return matching.Consensus(mappings, quorum)
}

// AddNoise returns a copy of the log with random corruption applied: each
// event dropped with dropProb, swapped with its successor with swapProb,
// and duplicated with dupProb. Useful for robustness testing.
func AddNoise(rng *rand.Rand, l *Log, dropProb, swapProb, dupProb float64) (*Log, error) {
	return eventlog.AddNoise(rng, l, eventlog.NoiseOptions{
		DropProb: dropProb, SwapProb: swapProb, DupProb: dupProb,
	})
}

// ExpandComposite splits a merged composite node name into its constituent
// event names; plain names yield a singleton. Use it to interpret the
// Names1/Names2 of a composite match result.
func ExpandComposite(name string) []string { return composite.SplitName(name) }

// Result is the outcome of a match: the pair-wise similarities between the
// (possibly merged) events of the two logs and the selected correspondences.
type Result struct {
	// Names1 and Names2 are the event names of each side in matrix order.
	// After composite matching, merged nodes carry joined names; use
	// ExpandComposite to split them.
	Names1, Names2 []string
	// Sim is the row-major |Names1| x |Names2| similarity matrix.
	Sim []float64
	// Mapping is the selected set of correspondences, best first. Groups
	// are expanded to original event names.
	Mapping Mapping
	// Evaluations counts how many times the iterative similarity formula
	// was evaluated.
	Evaluations int
	// Rounds is the number of iteration rounds performed.
	Rounds int
	// Estimated reports that the similarity was finished by a closed-form
	// estimation pass (the default fast path's adaptive cutover, or an
	// explicit WithEstimation) instead of iterating to convergence.
	Estimated bool
	// ErrorBound is the certified per-pair absolute error bound of a
	// fast-path run: no Sim entry is further than this from the exact
	// fixpoint (a-posteriori Banach bound, worst direction). Zero for exact
	// runs.
	ErrorBound float64
	// Pruned counts pair evaluations skipped as provably or adaptively
	// converged (Proposition 2 bounds plus the fast path's per-pair
	// freezing), summed over rounds and directions.
	Pruned int
	// Composites1 and Composites2 list the accepted composite events per
	// side (nil for plain matching).
	Composites1, Composites2 [][]string
	// Repair1 and Repair2 report what the dirty-log repair pipeline did to
	// each log (nil unless the match ran with WithRepair).
	Repair1, Repair2 *RepairReport
	// Degraded names the rung of the degradation ladder an overloaded
	// server dropped this job to ("fast-path" or "estimate-only"); empty
	// when the job ran exactly as requested. Library matches never set it.
	Degraded string
}

// At returns the similarity of the i-th event of log 1 and the j-th event
// of log 2.
func (r *Result) At(i, j int) float64 { return r.Sim[i*len(r.Names2)+j] }

// Similarity looks up the similarity of two events by name; ok is false
// when either name is unknown.
func (r *Result) Similarity(a, b string) (v float64, ok bool) {
	i, j := -1, -1
	for k, n := range r.Names1 {
		if n == a {
			i = k
		}
	}
	for k, n := range r.Names2 {
		if n == b {
			j = k
		}
	}
	if i < 0 || j < 0 {
		return 0, false
	}
	return r.At(i, j), true
}

// Match computes the 1:1 event matching between two logs: dependency graphs
// are built and extended with the artificial event, the EMS similarity is
// iterated to convergence (or estimated, per options), and correspondences
// are selected by maximum total similarity.
func Match(log1, log2 *Log, opts ...Option) (*Result, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	defer o.armStop()()
	o.armTrace()
	log1, log2, err = o.applyRepair(log1, log2)
	if err != nil {
		return nil, err
	}
	endGraph := o.span("graph-build")
	g1, err := buildGraph(log1, o)
	if err != nil {
		endGraph()
		return nil, err
	}
	g2, err := buildGraph(log2, o)
	endGraph()
	if err != nil {
		return nil, err
	}
	c, err := core.NewComputation(g1, g2, o.sim, nil)
	if err != nil {
		return nil, err
	}
	if o.resume != nil {
		if err := c.Restore(o.resume); err != nil {
			return nil, err
		}
	}
	if err := c.Run(); err != nil {
		return nil, err
	}
	cr, err := c.Result()
	if err != nil {
		return nil, err
	}
	defer o.span("select")()
	return assemble(cr, nil, nil, o)
}

// MatchComposite computes the m:n matching between two logs: candidate
// composite events are discovered as SEQ patterns in both logs and greedily
// merged while the average similarity improves by at least delta
// (Algorithm 2 of the paper), then correspondences are selected from the
// final similarity.
func MatchComposite(log1, log2 *Log, opts ...Option) (*Result, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	if o.resume != nil {
		return nil, fmt.Errorf("ems: WithResume is not supported for composite matching")
	}
	if o.sim.Checkpoint != nil {
		return nil, fmt.Errorf("ems: WithCheckpoints is not supported for composite matching")
	}
	defer o.armStop()()
	o.armTrace()
	log1, log2, err = o.applyRepair(log1, log2)
	if err != nil {
		return nil, err
	}
	endDiscover := o.span("discover")
	c1 := composite.Discover(log1, o.discover)
	c2 := composite.Discover(log2, o.discover)
	endDiscover()
	ccfg := composite.Config{
		Sim:          o.sim,
		Delta:        o.delta,
		MinFrequency: o.minFrequency,
		MaxSteps:     o.maxMergeSteps,
		UseUnchanged: o.useUnchanged,
		UseBounds:    o.useBounds,
	}
	// Composite matching compares average similarities across many short
	// computations and reuses values across merge steps (Proposition 4);
	// estimation error inside a merge decision could flip an accept/reject,
	// so the greedy loop always runs the exact engine.
	ccfg.Sim.FastPath = false
	// The greedy merge loop runs one short similarity computation per
	// candidate; per-round observation and per-computation spans would be
	// noise, so only the facade-level composite span survives into it.
	ccfg.Sim.Observer = nil
	ccfg.Sim.Span = nil
	endComposite := o.span("composite")
	gr, err := composite.Greedy(log1, log2, c1, c2, ccfg)
	endComposite()
	if err != nil {
		return nil, err
	}
	var comp1, comp2 [][]string
	for _, c := range gr.Merged1 {
		comp1 = append(comp1, append([]string(nil), c.Events...))
	}
	for _, c := range gr.Merged2 {
		comp2 = append(comp2, append([]string(nil), c.Events...))
	}
	endSelect := o.span("select")
	res, err := assemble(gr.Final, comp1, comp2, o)
	endSelect()
	if err != nil {
		return nil, err
	}
	res.Evaluations = gr.Stats.Evaluations
	return res, nil
}

func assemble(cr *core.Result, comp1, comp2 [][]string, o *options) (*Result, error) {
	m, err := matching.SelectWith(o.strategy, cr.Names1, cr.Names2, cr.Sim, o.selectionThreshold, composite.SplitName)
	if err != nil {
		return nil, err
	}
	return &Result{
		Names1:      cr.Names1,
		Names2:      cr.Names2,
		Sim:         cr.Sim,
		Mapping:     m,
		Evaluations: cr.Evaluations,
		Rounds:      cr.Rounds,
		Estimated:   cr.Estimated,
		ErrorBound:  cr.ErrorBound,
		Pruned:      cr.Pruned,
		Composites1: comp1,
		Composites2: comp2,
		Repair1:     o.rep1,
		Repair2:     o.rep2,
	}, nil
}

func buildGraph(l *Log, o *options) (*depgraph.Graph, error) {
	var g *depgraph.Graph
	var err error
	if o.markov {
		g, err = depgraph.BuildMarkov(l)
	} else {
		g, err = depgraph.Build(l)
	}
	if err != nil {
		return nil, err
	}
	ga, err := g.AddArtificial()
	if err != nil {
		return nil, err
	}
	if o.minFrequency > 0 {
		ga = ga.FilterMinFrequency(o.minFrequency)
	}
	return ga, nil
}
