package ems_test

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/ems"
	"repro/internal/paperexample"
)

func paperLogs() (*ems.Log, *ems.Log) {
	return paperexample.Log1(), paperexample.Log2()
}

func TestMatchPaperExample(t *testing.T) {
	l1, l2 := paperLogs()
	res, err := ems.Match(l1, l2)
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	// The dislocated pair: A must align to 2, not to 1.
	a2, ok := res.Similarity("A", "2")
	if !ok {
		t.Fatalf("pair (A,2) missing")
	}
	a1, _ := res.Similarity("A", "1")
	if a2 <= a1 {
		t.Errorf("dislocated matching failed: sim(A,2)=%.3f <= sim(A,1)=%.3f", a2, a1)
	}
	// Singleton truth must be covered by the selected mapping.
	q := ems.Evaluate(res.Mapping, paperexample.SingletonTruth())
	if q.Recall < 0.99 {
		t.Errorf("recall = %.3f, mapping %v", q.Recall, res.Mapping)
	}
}

func TestMatchCompositePaperExample(t *testing.T) {
	l1, l2 := paperLogs()
	res, err := ems.MatchComposite(l1, l2)
	if err != nil {
		t.Fatalf("MatchComposite: %v", err)
	}
	if len(res.Composites1) != 1 || !reflect.DeepEqual(res.Composites1[0], []string{"C", "D"}) {
		t.Fatalf("composites1 = %v, want [[C D]]", res.Composites1)
	}
	q := ems.Evaluate(res.Mapping, paperexample.Truth())
	if q.Recall < 0.99 {
		t.Errorf("composite recall = %.3f; mapping %v", q.Recall, res.Mapping)
	}
}

func TestMatchWithLabels(t *testing.T) {
	l1 := ems.NewLog("a")
	l1.Append(ems.Trace{"pay invoice", "ship order"})
	l2 := ems.NewLog("b")
	l2.Append(ems.Trace{"pay_invoice", "ship_order"})
	res, err := ems.Match(l1, l2,
		ems.WithAlpha(0.5),
		ems.WithLabelSimilarity(ems.QGramCosine(3)),
	)
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	v, _ := res.Similarity("pay invoice", "pay_invoice")
	w, _ := res.Similarity("pay invoice", "ship_order")
	if v <= w {
		t.Errorf("labels ignored: %.3f <= %.3f", v, w)
	}
}

func TestMatchEstimationOption(t *testing.T) {
	l1, l2 := paperLogs()
	exact, err := ems.Match(l1, l2)
	if err != nil {
		t.Fatal(err)
	}
	est, err := ems.Match(l1, l2, ems.WithEstimation(0))
	if err != nil {
		t.Fatal(err)
	}
	if est.Evaluations >= exact.Evaluations {
		t.Errorf("estimation did not reduce evaluations: %d vs %d", est.Evaluations, exact.Evaluations)
	}
}

func TestMatchDirectionOption(t *testing.T) {
	l1, l2 := paperLogs()
	fwd, err := ems.Match(l1, l2, ems.WithDirection(ems.Forward))
	if err != nil {
		t.Fatal(err)
	}
	bwd, err := ems.Match(l1, l2, ems.WithDirection(ems.Backward))
	if err != nil {
		t.Fatal(err)
	}
	both, err := ems.Match(l1, l2, ems.WithDirection(ems.Both))
	if err != nil {
		t.Fatal(err)
	}
	f, _ := fwd.Similarity("A", "2")
	b, _ := bwd.Similarity("A", "2")
	c, _ := both.Similarity("A", "2")
	if math.Abs(c-(f+b)/2) > 1e-9 {
		t.Errorf("both = %.4f, want average of %.4f and %.4f", c, f, b)
	}
}

func TestMatchMinFrequencyOption(t *testing.T) {
	l1, l2 := paperLogs()
	res, err := ems.Match(l1, l2, ems.WithMinFrequency(0.5))
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	if len(res.Names1) == 0 {
		t.Errorf("no events after filtering")
	}
}

func TestOptionValidation(t *testing.T) {
	l1, l2 := paperLogs()
	bad := [][]ems.Option{
		{ems.WithAlpha(-1)},
		{ems.WithAlpha(2)},
		{ems.WithDecay(0)},
		{ems.WithDecay(1)},
		{ems.WithEstimation(-2)},
		{ems.WithEpsilon(0)},
		{ems.WithMaxRounds(0)},
		{ems.WithMinFrequency(-0.1)},
		{ems.WithMinFrequency(1)},
		{ems.WithSelectionThreshold(-0.5)},
		{ems.WithSelectionThreshold(1.5)},
		{ems.WithCandidateDiscovery(0, 2, 0)},
		{ems.WithCandidateDiscovery(0.9, 1, 0)},
		{ems.WithMaxMergeSteps(-1)},
	}
	for i, opts := range bad {
		if _, err := ems.Match(l1, l2, opts...); err == nil {
			t.Errorf("case %d: invalid option accepted", i)
		}
	}
}

func TestMatchRejectsEmptyLog(t *testing.T) {
	l1, _ := paperLogs()
	if _, err := ems.Match(l1, ems.NewLog("empty")); err == nil {
		t.Errorf("empty log accepted")
	}
}

func TestResultAt(t *testing.T) {
	l1, l2 := paperLogs()
	res, err := ems.Match(l1, l2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Names1 {
		for j := range res.Names2 {
			v := res.At(i, j)
			if v < 0 || v > 1 {
				t.Fatalf("At(%d,%d) = %g out of range", i, j, v)
			}
		}
	}
	if _, ok := res.Similarity("A", "nope"); ok {
		t.Errorf("unknown name reported ok")
	}
}

func TestCSVAndXMLHelpers(t *testing.T) {
	l1, _ := paperLogs()
	var csvBuf, xmlBuf bytes.Buffer
	if err := ems.WriteCSV(&csvBuf, l1); err != nil {
		t.Fatal(err)
	}
	back, err := ems.ReadCSV(&csvBuf, "L1")
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != l1.Len() {
		t.Errorf("CSV round trip lost traces: %d vs %d", back.Len(), l1.Len())
	}
	if err := ems.WriteXML(&xmlBuf, l1); err != nil {
		t.Fatal(err)
	}
	back2, err := ems.ReadXML(&xmlBuf)
	if err != nil {
		t.Fatal(err)
	}
	if back2.Len() != l1.Len() {
		t.Errorf("XML round trip lost traces")
	}
}

func TestExpandComposite(t *testing.T) {
	l1, l2 := paperLogs()
	res, err := ems.MatchComposite(l1, l2)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range res.Names1 {
		parts := ems.ExpandComposite(n)
		if len(parts) == 0 {
			t.Errorf("ExpandComposite(%q) empty", n)
		}
		for _, p := range parts {
			if strings.Contains(p, "\x1d") {
				t.Errorf("separator left in %q", p)
			}
		}
	}
}

func TestLevenshteinHelper(t *testing.T) {
	if v := ems.Levenshtein("abc", "abc"); v != 1 {
		t.Errorf("Levenshtein identical = %g", v)
	}
}

func TestSelectionThresholdOption(t *testing.T) {
	l1, l2 := paperLogs()
	strict, err := ems.Match(l1, l2, ems.WithSelectionThreshold(0.99))
	if err != nil {
		t.Fatal(err)
	}
	if len(strict.Mapping) != 0 {
		t.Errorf("threshold 0.99 kept %v", strict.Mapping)
	}
	loose, err := ems.Match(l1, l2, ems.WithSelectionThreshold(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(loose.Mapping) == 0 {
		t.Errorf("threshold 0 selected nothing")
	}
}

func TestWithoutPruningSameResult(t *testing.T) {
	l1, l2 := paperLogs()
	a, err := ems.Match(l1, l2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ems.Match(l1, l2, ems.WithoutPruning())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Sim {
		if math.Abs(a.Sim[i]-b.Sim[i]) > 1e-6 {
			t.Fatalf("pruning changed results at %d", i)
		}
	}
}

func TestCompositePruningOptions(t *testing.T) {
	l1, l2 := paperLogs()
	a, err := ems.MatchComposite(l1, l2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ems.MatchComposite(l1, l2, ems.WithoutCompositePruning())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Composites1, b.Composites1) {
		t.Errorf("pruning changed accepted composites: %v vs %v", a.Composites1, b.Composites1)
	}
	c, err := ems.MatchComposite(l1, l2, ems.WithCompositePruning(true, false))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Composites1, c.Composites1) {
		t.Errorf("Uc-only changed accepted composites")
	}
}

func TestWithDeltaBlocksMerges(t *testing.T) {
	l1, l2 := paperLogs()
	res, err := ems.MatchComposite(l1, l2, ems.WithDelta(0.9))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Composites1)+len(res.Composites2) != 0 {
		t.Errorf("delta 0.9 still merged %v %v", res.Composites1, res.Composites2)
	}
}

func TestWithMaxMergeSteps(t *testing.T) {
	l1, l2 := paperLogs()
	res, err := ems.MatchComposite(l1, l2, ems.WithMaxMergeSteps(0))
	if err != nil {
		t.Fatal(err)
	}
	// 0 means unlimited; the CD merge still happens.
	if len(res.Composites1) == 0 {
		t.Errorf("unlimited merge steps produced no composite")
	}
}
