package ems

import (
	"repro/internal/align"
)

// Aligner aligns traces across the two logs under a computed mapping — the
// provenance-query application of the paper's introduction: find how an
// order processed in one system corresponds, step by step, to an order in
// the other.
type Aligner = align.Aligner

// AlignmentOp is one step of a trace alignment.
type AlignmentOp = align.Op

// Alignment relates one log-1 trace to one log-2 trace.
type Alignment = align.Alignment

// AlignmentHit is one result of a cross-log trace search.
type AlignmentHit = align.Hit

// NewAligner builds a trace aligner from a mapping (typically
// Result.Mapping).
func NewAligner(m Mapping) (*Aligner, error) { return align.New(m) }
