package ems_test

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/ems"
)

func TestResultJSONRoundTrip(t *testing.T) {
	l1, l2 := paperLogs()
	res, err := ems.MatchComposite(l1, l2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	back, err := ems.ReadResultJSON(&buf)
	if err != nil {
		t.Fatalf("ReadResultJSON: %v", err)
	}
	if !reflect.DeepEqual(back.Names1, res.Names1) || !reflect.DeepEqual(back.Names2, res.Names2) {
		t.Errorf("names changed in round trip")
	}
	for i := range res.Sim {
		if math.Abs(back.Sim[i]-res.Sim[i]) > 1e-12 {
			t.Fatalf("similarity changed at %d", i)
		}
	}
	if len(back.Mapping) != len(res.Mapping) {
		t.Fatalf("mapping size changed: %d vs %d", len(back.Mapping), len(res.Mapping))
	}
	for i := range res.Mapping {
		if back.Mapping[i].Key() != res.Mapping[i].Key() {
			t.Errorf("correspondence %d changed: %v vs %v", i, back.Mapping[i], res.Mapping[i])
		}
	}
	if !reflect.DeepEqual(back.Composites1, res.Composites1) {
		t.Errorf("composites changed: %v vs %v", back.Composites1, res.Composites1)
	}
	// The reloaded result supports the same queries.
	v1, ok1 := res.Similarity("A", "2")
	v2, ok2 := back.Similarity("A", "2")
	if !ok1 || !ok2 || math.Abs(v1-v2) > 1e-12 {
		t.Errorf("similarity query differs after reload")
	}
}

func TestReadResultJSONErrors(t *testing.T) {
	if _, err := ems.ReadResultJSON(strings.NewReader("not json")); err == nil {
		t.Errorf("garbage accepted")
	}
	bad := `{"names1":["a"],"names2":["x"],"sim":[1,2]}`
	if _, err := ems.ReadResultJSON(strings.NewReader(bad)); err == nil {
		t.Errorf("inconsistent matrix accepted")
	}
}

// TestReadResultJSONTruncated feeds every proper prefix of a valid document
// to the reader: a partial download or a torn file must error, never yield
// a silently wrong result, and never panic.
func TestReadResultJSONTruncated(t *testing.T) {
	l1, l2 := paperLogs()
	res, err := ems.Match(l1, l2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.String()
	// Step through prefixes (every byte would be slow; 7 is coprime with
	// the indentation patterns so all cut positions are exercised).
	for cut := 0; cut < len(full)-1; cut += 7 {
		if _, err := ems.ReadResultJSON(strings.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(full))
		}
	}
	if _, err := ems.ReadResultJSON(strings.NewReader(full)); err != nil {
		t.Fatalf("untruncated document rejected: %v", err)
	}
}

// TestReadResultJSONWrongShapes covers structurally valid JSON carrying the
// wrong types or impossible shapes.
func TestReadResultJSONWrongShapes(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"sim has strings", `{"names1":["a"],"names2":["b"],"sim":["x"]}`},
		{"mapping not a list", `{"names1":[],"names2":[],"sim":[],"mapping":5}`},
		{"top level array", `[1,2,3]`},
		{"matrix larger than names", `{"names1":["a"],"names2":["b"],"sim":[1,2,3,4]}`},
		{"matrix smaller than names", `{"names1":["a","b"],"names2":["c","d"],"sim":[1]}`},
		{"mapping references unknown left event",
			`{"names1":["a"],"names2":["x"],"sim":[1],"mapping":[{"left":["ghost"],"right":["x"],"score":1}]}`},
		{"mapping references unknown right event",
			`{"names1":["a"],"names2":["x"],"sim":[1],"mapping":[{"left":["a"],"right":["ghost"],"score":1}]}`},
	}
	for _, c := range cases {
		if _, err := ems.ReadResultJSON(strings.NewReader(c.doc)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	// Empty-but-consistent is fine: a result with no events.
	if _, err := ems.ReadResultJSON(strings.NewReader(`{"names1":[],"names2":[],"sim":[]}`)); err != nil {
		t.Errorf("empty result rejected: %v", err)
	}
	// Mapping groups may reference the constituents of a merged composite
	// node even though only the joined name appears in the matrix.
	compositeDoc := `{"names1":["a\u001db"],"names2":["x"],"sim":[1],` +
		`"mapping":[{"left":["a","b"],"right":["x"],"score":1}],"composites1":[["a","b"]]}`
	if _, err := ems.ReadResultJSON(strings.NewReader(compositeDoc)); err != nil {
		t.Errorf("composite constituents rejected: %v", err)
	}
}
