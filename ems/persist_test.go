package ems_test

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/ems"
)

func TestResultJSONRoundTrip(t *testing.T) {
	l1, l2 := paperLogs()
	res, err := ems.MatchComposite(l1, l2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	back, err := ems.ReadResultJSON(&buf)
	if err != nil {
		t.Fatalf("ReadResultJSON: %v", err)
	}
	if !reflect.DeepEqual(back.Names1, res.Names1) || !reflect.DeepEqual(back.Names2, res.Names2) {
		t.Errorf("names changed in round trip")
	}
	for i := range res.Sim {
		if math.Abs(back.Sim[i]-res.Sim[i]) > 1e-12 {
			t.Fatalf("similarity changed at %d", i)
		}
	}
	if len(back.Mapping) != len(res.Mapping) {
		t.Fatalf("mapping size changed: %d vs %d", len(back.Mapping), len(res.Mapping))
	}
	for i := range res.Mapping {
		if back.Mapping[i].Key() != res.Mapping[i].Key() {
			t.Errorf("correspondence %d changed: %v vs %v", i, back.Mapping[i], res.Mapping[i])
		}
	}
	if !reflect.DeepEqual(back.Composites1, res.Composites1) {
		t.Errorf("composites changed: %v vs %v", back.Composites1, res.Composites1)
	}
	// The reloaded result supports the same queries.
	v1, ok1 := res.Similarity("A", "2")
	v2, ok2 := back.Similarity("A", "2")
	if !ok1 || !ok2 || math.Abs(v1-v2) > 1e-12 {
		t.Errorf("similarity query differs after reload")
	}
}

func TestReadResultJSONErrors(t *testing.T) {
	if _, err := ems.ReadResultJSON(strings.NewReader("not json")); err == nil {
		t.Errorf("garbage accepted")
	}
	bad := `{"names1":["a"],"names2":["x"],"sim":[1,2]}`
	if _, err := ems.ReadResultJSON(strings.NewReader(bad)); err == nil {
		t.Errorf("inconsistent matrix accepted")
	}
}
