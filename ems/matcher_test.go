package ems_test

import (
	"math"
	"strings"
	"testing"

	"repro/ems"
)

func TestMatcherIncrementalEqualsColdStart(t *testing.T) {
	l1, l2 := paperLogs()
	m, err := ems.NewMatcher(l1, l2)
	if err != nil {
		t.Fatalf("NewMatcher: %v", err)
	}
	first, err := m.Rematch()
	if err != nil {
		t.Fatalf("Rematch: %v", err)
	}
	cold, err := ems.Match(l1, l2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first.Sim {
		if math.Abs(first.Sim[i]-cold.Sim[i]) > 1e-9 {
			t.Fatalf("first Rematch differs from Match at %d", i)
		}
	}

	// Append new traces to side 2 and rematch incrementally.
	if err := m.Append(2, ems.Trace{"1", "2", "4", "5", "6"}); err != nil {
		t.Fatal(err)
	}
	warm, err := m.Rematch()
	if err != nil {
		t.Fatal(err)
	}
	// Compare against a cold start on the same updated logs.
	u1, u2 := m.Logs()
	coldUpd, err := ems.Match(u1, u2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range warm.Sim {
		if math.Abs(warm.Sim[i]-coldUpd.Sim[i]) > 5e-3 {
			t.Fatalf("warm rematch differs from cold at %d: %g vs %g",
				i, warm.Sim[i], coldUpd.Sim[i])
		}
	}
}

func TestMatcherWarmStartCheaper(t *testing.T) {
	l1, l2 := paperLogs()
	m, err := ems.NewMatcher(l1, l2)
	if err != nil {
		t.Fatal(err)
	}
	first, err := m.Rematch()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Append(1, ems.Trace{"A", "C", "D", "E", "F"}); err != nil {
		t.Fatal(err)
	}
	second, err := m.Rematch()
	if err != nil {
		t.Fatal(err)
	}
	if second.Rounds > first.Rounds {
		t.Errorf("warm start took more rounds: %d vs %d", second.Rounds, first.Rounds)
	}
}

func TestMatcherAppendValidation(t *testing.T) {
	l1, l2 := paperLogs()
	m, err := ems.NewMatcher(l1, l2)
	if err != nil {
		t.Fatal(err)
	}
	for _, side := range []int{0, -1, 3, 42} {
		if err := m.Append(side, ems.Trace{"x"}); err == nil {
			t.Errorf("side %d accepted", side)
		} else if !strings.Contains(err.Error(), "side") {
			t.Errorf("side %d error does not name the problem: %v", side, err)
		}
	}
	if err := m.Append(1, ems.Trace{}); err == nil {
		t.Errorf("empty trace accepted")
	}
	if err := m.Append(2, nil); err == nil {
		t.Errorf("nil trace accepted")
	}
	// A batch with one empty trace must fail as a whole…
	if err := m.Append(1, ems.Trace{"y"}, ems.Trace{}); err == nil {
		t.Errorf("batch containing an empty trace accepted")
	}
	// …and the log sizes must stay consistent: only traces appended before
	// the failing one are present (documented first-error semantics).
	u1, u2 := m.Logs()
	if u1.Len() != l1.Len()+1 {
		t.Errorf("side 1 has %d traces, want %d (valid prefix of failed batch kept)",
			u1.Len(), l1.Len()+1)
	}
	if u2.Len() != l2.Len() {
		t.Errorf("side 2 grew on failed appends: %d vs %d", u2.Len(), l2.Len())
	}
	// The matcher still works after rejected appends.
	if _, err := m.Rematch(); err != nil {
		t.Errorf("Rematch after rejected appends: %v", err)
	}
}

func TestMatcherIsolatedFromCallerLogs(t *testing.T) {
	l1, l2 := paperLogs()
	m, err := ems.NewMatcher(l1, l2)
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the caller's log must not affect the matcher.
	l1.Traces[0][0] = "CORRUPTED"
	res, err := m.Rematch()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range res.Names1 {
		if n == "CORRUPTED" {
			t.Fatalf("matcher shares caller's log storage")
		}
	}
}

func TestNewMatcherValidation(t *testing.T) {
	l1, _ := paperLogs()
	if _, err := ems.NewMatcher(l1, nil); err == nil {
		t.Errorf("nil log accepted")
	}
	if _, err := ems.NewMatcher(l1, l1, ems.WithAlpha(9)); err == nil {
		t.Errorf("invalid option accepted")
	}
}
