package ems_test

import (
	"testing"

	"repro/ems"
)

func TestAlignerEndToEnd(t *testing.T) {
	l1, l2 := paperLogs()
	res, err := ems.MatchComposite(l1, l2)
	if err != nil {
		t.Fatal(err)
	}
	al, err := ems.NewAligner(res.Mapping)
	if err != nil {
		t.Fatalf("NewAligner: %v", err)
	}
	hits := al.Search(l1.Traces[0], l2, 1)
	if len(hits) != 1 {
		t.Fatalf("got %d hits", len(hits))
	}
	if hits[0].Similarity < 0.5 {
		t.Errorf("best cross-log trace similarity %.2f unexpectedly low:\n%s",
			hits[0].Similarity, hits[0].Alignment)
	}
	// The best hit for a cash trace must be a cash trace.
	if !l2.Traces[hits[0].Index].Contains("2") {
		t.Errorf("best hit %v is not a cash trace", l2.Traces[hits[0].Index])
	}
}
