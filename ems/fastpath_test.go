package ems_test

import (
	"math"
	"reflect"
	"testing"

	"repro/ems"
)

// TestMatchFastDefaultGoldenMapping pins the user-visible contract of the
// default fast path on the paper's running example: the selected mapping —
// the thing callers act on — must be identical to the exact computation's,
// and every similarity must stay within the certified error bound the fast
// result carries. WithExact must still produce a bound-free exact result.
func TestMatchFastDefaultGoldenMapping(t *testing.T) {
	l1, l2 := paperLogs()

	fast, err := ems.Match(l1, l2)
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	exact, err := ems.Match(l1, l2, ems.WithExact())
	if err != nil {
		t.Fatalf("Match exact: %v", err)
	}

	if exact.Estimated {
		t.Error("WithExact result reports Estimated")
	}
	if exact.ErrorBound != 0 {
		t.Errorf("WithExact ErrorBound = %g, want 0", exact.ErrorBound)
	}

	// The correspondences must be the same pairs in the same order; their
	// scores are similarities and may differ within the certified bound.
	if len(fast.Mapping) != len(exact.Mapping) {
		t.Fatalf("fast mapping has %d correspondences, exact %d:\nfast:  %v\nexact: %v",
			len(fast.Mapping), len(exact.Mapping), fast.Mapping, exact.Mapping)
	}
	for i := range fast.Mapping {
		f, e := fast.Mapping[i], exact.Mapping[i]
		if !reflect.DeepEqual(f.Left, e.Left) || !reflect.DeepEqual(f.Right, e.Right) {
			t.Errorf("correspondence %d differs: fast %v, exact %v", i, f, e)
		}
	}

	// The similarity matrices may differ, but only within the certified
	// bound (plus the epsilon slack of the exact reference itself).
	slack := fast.ErrorBound + 1e-4/(1-0.8) + 1e-12
	for i := range fast.Names1 {
		for j := range fast.Names2 {
			f := fast.At(i, j)
			e := exact.At(i, j)
			if d := math.Abs(f - e); d > slack {
				t.Errorf("sim(%s,%s): |fast-exact| = %g exceeds %g",
					fast.Names1[i], fast.Names2[j], d, slack)
			}
		}
	}
}

// TestMatchFastPathSurface covers the new result fields end to end on a
// workload large enough for the adaptive cutover to fire: the fast result
// declares the estimation, carries a positive certified bound and a
// non-zero pruned count, and finishes in fewer evaluations than exact.
func TestMatchFastPathSurface(t *testing.T) {
	l1, l2 := permutedLogsForFastPath(40, 60)

	fast, err := ems.Match(l1, l2)
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	exact, err := ems.Match(l1, l2, ems.WithExact())
	if err != nil {
		t.Fatalf("Match exact: %v", err)
	}

	if !fast.Estimated {
		t.Fatalf("default Match did not cut over (rounds=%d)", fast.Rounds)
	}
	if fast.ErrorBound <= 0 {
		t.Errorf("ErrorBound = %g, want > 0", fast.ErrorBound)
	}
	if fast.Pruned <= 0 {
		t.Errorf("Pruned = %d, want > 0", fast.Pruned)
	}
	if fast.Evaluations >= exact.Evaluations {
		t.Errorf("fast evaluations %d not below exact %d", fast.Evaluations, exact.Evaluations)
	}
	if fast.Rounds >= exact.Rounds {
		t.Errorf("fast rounds %d not below exact %d", fast.Rounds, exact.Rounds)
	}

	// The certified bound must hold against the exact reference.
	slack := fast.ErrorBound + 1e-4/(1-0.8) + 1e-12
	for i := range fast.Names1 {
		for j := range fast.Names2 {
			if d := math.Abs(fast.At(i, j) - exact.At(i, j)); d > slack {
				t.Fatalf("sim[%d,%d]: |fast-exact| = %g exceeds certified %g", i, j, d, slack)
			}
		}
	}

	// An explicit budget must round-trip through the option and tighten
	// the cutover; an out-of-range budget must be rejected.
	tight, err := ems.Match(l1, l2, ems.WithFastPath(0.005))
	if err != nil {
		t.Fatalf("Match WithFastPath: %v", err)
	}
	if tight.Rounds < fast.Rounds {
		t.Errorf("tighter budget cut over earlier: %d rounds vs %d", tight.Rounds, fast.Rounds)
	}
	for _, bad := range []float64{-0.1, 1, 1.5} {
		if _, err := ems.Match(l1, l2, ems.WithFastPath(bad)); err == nil {
			t.Errorf("WithFastPath(%g) accepted", bad)
		}
	}
}

// permutedLogsForFastPath builds a deterministic pair of logs with enough
// events and loop structure that the exact iteration needs a long geometric
// tail — the situation the adaptive cutover exists for.
func permutedLogsForFastPath(activities, traces int) (*ems.Log, *ems.Log) {
	names := make([]string, activities)
	for i := range names {
		names[i] = string(rune('A'+i%26)) + string(rune('0'+i/26))
	}
	mk := func(logName string, rot int) *ems.Log {
		l := ems.NewLog(logName)
		for k := 0; k < traces; k++ {
			tr := make([]string, 0, activities+2)
			start := (k * 7) % activities
			for off := 0; off <= activities/2; off++ {
				tr = append(tr, names[(start+off*3+rot)%activities])
			}
			// Close a loop every third trace to keep the convergence
			// bound infinite (cyclic dependency graph).
			if k%3 == 0 {
				tr = append(tr, names[start%activities], tr[0])
			}
			l.Append(tr)
		}
		return l
	}
	return mk("F1", 0), mk("F2", 1)
}
