package ems

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadResultJSON checks the result-persistence reader: it must never
// panic, and every result it accepts must survive a WriteJSON →
// ReadResultJSON round trip unchanged.
func FuzzReadResultJSON(f *testing.F) {
	f.Add(`{"names1":["a","b"],"names2":["x"],"sim":[0.5,0.25],` +
		`"mapping":[{"left":["a"],"right":["x"],"score":0.5}],"evaluations":4,"rounds":2}`)
	f.Add(`{"names1":[],"names2":[],"sim":[],"mapping":null,"evaluations":0,"rounds":0}`)
	f.Add(`{"names1":["a"],"names2":["x","y"],"sim":[0.1]}`) // size mismatch: must be rejected
	f.Add(`{`)
	f.Add(``)
	f.Add(`{"names1":["a+b"],"names2":["x"],"sim":[1],"composites1":[["a","b"]]}`)
	// Mapping groups referencing names absent from the matrix: rejected.
	f.Add(`{"names1":["a"],"names2":["x"],"sim":[1],"mapping":[{"left":["ghost"],"right":["x"],"score":1}]}`)
	f.Add(`{"names1":["a"],"names2":["x"],"sim":[1],"mapping":[{"left":["a"],"right":["ghost"],"score":1}]}`)
	// Composite constituents are legal mapping names for a merged node.
	f.Add(`{"names1":["a\u001db"],"names2":["x"],"sim":[1],"mapping":[{"left":["a","b"],"right":["x"],"score":1}]}`)
	f.Fuzz(func(t *testing.T, in string) {
		r, err := ReadResultJSON(strings.NewReader(in))
		if err != nil {
			return
		}
		if len(r.Sim) != len(r.Names1)*len(r.Names2) {
			t.Fatalf("accepted result has inconsistent matrix: %d sim for %dx%d",
				len(r.Sim), len(r.Names1), len(r.Names2))
		}
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatalf("accepted result failed to serialize: %v", err)
		}
		back, err := ReadResultJSON(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(back.Names1) != len(r.Names1) || len(back.Names2) != len(r.Names2) ||
			len(back.Sim) != len(r.Sim) || len(back.Mapping) != len(r.Mapping) ||
			back.Evaluations != r.Evaluations || back.Rounds != r.Rounds {
			t.Fatalf("round trip changed shape: %+v vs %+v", back, r)
		}
		for i := range r.Sim {
			// NaN never round-trips through JSON (encoding rejects it), so
			// any accepted value compares by ==.
			if back.Sim[i] != r.Sim[i] {
				t.Fatalf("round trip changed sim[%d]: %v vs %v", i, back.Sim[i], r.Sim[i])
			}
		}
	})
}
