package ems_test

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/ems"
)

func TestMatchAll(t *testing.T) {
	l1, l2 := paperLogs()
	pairs := []ems.PairInput{
		{Name: "p0", Log1: l1, Log2: l2},
		{Name: "p1", Log1: l1, Log2: l1},
		{Name: "p2", Log1: l2, Log2: l2},
	}
	outs := ems.MatchAll(pairs, 2, false)
	if len(outs) != 3 {
		t.Fatalf("got %d outputs", len(outs))
	}
	for i, o := range outs {
		if o.Name != pairs[i].Name {
			t.Errorf("output %d name %q, want %q (order broken)", i, o.Name, pairs[i].Name)
		}
		if o.Err != nil {
			t.Errorf("%s: %v", o.Name, o.Err)
		}
		if o.Result == nil || len(o.Result.Mapping) == 0 {
			t.Errorf("%s: empty result", o.Name)
		}
	}
	// Self-matching must recover the identity mapping.
	for _, c := range outs[1].Result.Mapping {
		if c.Left[0] != c.Right[0] {
			t.Errorf("self match wrong: %v", c)
		}
	}
}

func TestMatchAllMatchesSequential(t *testing.T) {
	l1, l2 := paperLogs()
	seq, err := ems.Match(l1, l2)
	if err != nil {
		t.Fatal(err)
	}
	outs := ems.MatchAll([]ems.PairInput{{Name: "p", Log1: l1, Log2: l2}}, 4, false)
	if outs[0].Err != nil {
		t.Fatal(outs[0].Err)
	}
	got := outs[0].Result
	if len(got.Sim) != len(seq.Sim) {
		t.Fatalf("matrix sizes differ")
	}
	for i := range got.Sim {
		if math.Abs(got.Sim[i]-seq.Sim[i]) > 1e-12 {
			t.Fatalf("concurrent result differs at %d", i)
		}
	}
}

func TestMatchAllComposite(t *testing.T) {
	l1, l2 := paperLogs()
	outs := ems.MatchAll([]ems.PairInput{{Name: "p", Log1: l1, Log2: l2}}, 0, true)
	if outs[0].Err != nil {
		t.Fatal(outs[0].Err)
	}
	if len(outs[0].Result.Composites1) != 1 {
		t.Errorf("composite batch missed the {C,D} merge: %v", outs[0].Result.Composites1)
	}
}

func TestMatchAllNilLogAndEmpty(t *testing.T) {
	outs := ems.MatchAll([]ems.PairInput{{Name: "bad", Log1: nil, Log2: nil}}, 1, false)
	if outs[0].Err == nil {
		t.Errorf("nil logs accepted")
	}
	if got := ems.MatchAll(nil, 3, false); len(got) != 0 {
		t.Errorf("empty batch returned %v", got)
	}
}

func TestMatchAllContextCancelled(t *testing.T) {
	l1, l2 := paperLogs()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before any pair starts
	pairs := []ems.PairInput{
		{Name: "p0", Log1: l1, Log2: l2},
		{Name: "p1", Log1: l1, Log2: l1},
		{Name: "p2", Log1: l2, Log2: l2},
	}
	outs := ems.MatchAllContext(ctx, pairs, 2, false)
	if len(outs) != 3 {
		t.Fatalf("got %d outputs", len(outs))
	}
	for i, o := range outs {
		if o.Name != pairs[i].Name {
			t.Errorf("output %d name %q, want %q", i, o.Name, pairs[i].Name)
		}
		if o.Result != nil {
			t.Errorf("%s: cancelled pair produced a result", o.Name)
		}
		if !errors.Is(o.Err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", o.Name, o.Err)
		}
	}
}

func TestMatchAllContextActiveEqualsMatchAll(t *testing.T) {
	l1, l2 := paperLogs()
	pairs := []ems.PairInput{{Name: "p", Log1: l1, Log2: l2}}
	plain := ems.MatchAll(pairs, 1, false)
	ctxed := ems.MatchAllContext(context.Background(), pairs, 1, false)
	if ctxed[0].Err != nil {
		t.Fatal(ctxed[0].Err)
	}
	for i := range plain[0].Result.Sim {
		if plain[0].Result.Sim[i] != ctxed[0].Result.Sim[i] {
			t.Fatalf("context variant differs at %d", i)
		}
	}
}

func TestTopMatches(t *testing.T) {
	l1, l2 := paperLogs()
	res, err := ems.Match(l1, l2)
	if err != nil {
		t.Fatal(err)
	}
	top := res.TopMatches("A", 3)
	if len(top) != 3 {
		t.Fatalf("got %d neighbors", len(top))
	}
	if top[0].Name != "2" {
		t.Errorf("best neighbor of A = %q, want 2 (dislocated match)", top[0].Name)
	}
	for i := 1; i < len(top); i++ {
		if top[i].Similarity > top[i-1].Similarity {
			t.Errorf("neighbors not sorted: %v", top)
		}
	}
	if res.TopMatches("nope", 3) != nil {
		t.Errorf("unknown event returned neighbors")
	}
	if res.TopMatches("A", 0) != nil {
		t.Errorf("k=0 returned neighbors")
	}
	if all := res.TopMatches("A", 100); len(all) != len(res.Names2) {
		t.Errorf("k beyond size returned %d", len(all))
	}
}

func TestMarkovWeightingOption(t *testing.T) {
	l1, l2 := paperLogs()
	res, err := ems.Match(l1, l2, ems.WithMarkovWeighting())
	if err != nil {
		t.Fatalf("Match markov: %v", err)
	}
	if len(res.Mapping) == 0 {
		t.Errorf("markov weighting selected nothing")
	}
	plain, err := ems.Match(l1, l2)
	if err != nil {
		t.Fatal(err)
	}
	// The weightings genuinely differ: at least one pair similarity moves.
	moved := false
	for i := range res.Sim {
		if math.Abs(res.Sim[i]-plain.Sim[i]) > 1e-6 {
			moved = true
			break
		}
	}
	if !moved {
		t.Errorf("markov weighting identical to dependency weighting")
	}
}
