package ems

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/obs"
)

// RoundObservation is the per-round progress report delivered to a
// WithProgress observer: the lockstep round index plus one DirRoundStats per
// propagation direction.
type RoundObservation = core.RoundObservation

// DirRoundStats is one direction engine's state at a round boundary: the
// latest convergence delta, per-round and total formula evaluations, and how
// many active pairs pruning skipped.
type DirRoundStats = core.DirRoundStats

// WithProgress installs a per-round progress observer on the iteration
// engine. The observer runs on the match call's goroutine between rounds —
// the engines are quiescent while it executes — and must not retain the
// observation's Dirs slice across calls. Arming it switches the engine to
// the lockstep round schedule (the same one WithCheckpoints uses), which is
// bit-identical to the concurrent schedule at every worker count.
//
// MatchComposite ignores the observer: composite matching interleaves many
// short similarity computations whose round indices would be meaningless to
// a consumer expecting a single converging trajectory.
func WithProgress(fn func(RoundObservation)) Option {
	return func(o *options) error {
		if fn == nil {
			return fmt.Errorf("ems: progress observer must not be nil")
		}
		o.sim.Observer = fn
		return nil
	}
}

// armTrace connects the engine's span hook to a trace carried by the
// WithContext context (see obs.ContextWithTrace). A Config.Span installed
// directly takes precedence. Called once per match call, after options are
// resolved.
func (o *options) armTrace() {
	if o.sim.Span != nil || o.ctx == nil {
		return
	}
	if tr := obs.TraceFrom(o.ctx); tr != nil {
		o.sim.Span = tr.Span
	}
}

// span opens a facade-level span (graph-build, select, ...) when tracing is
// armed; the returned func ends it. A no-op closure is returned otherwise so
// call sites need no nil checks.
func (o *options) span(name string) func() {
	if o.sim.Span == nil {
		return func() {}
	}
	return o.sim.Span(name)
}
