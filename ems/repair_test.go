package ems

import (
	"bytes"
	"math/rand"
	"testing"
)

// repairTestLogs builds a clean reference log pair plus a corrupted copy of
// the second log, deterministic in the seed.
func repairTestLogs(t *testing.T, seed int64) (l1, noisy *Log) {
	t.Helper()
	l1 = NewLog("ref")
	l2 := NewLog("dirty")
	events := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	for i := 0; i < 50; i++ {
		l1.Append(Trace(append([]string(nil), events...)))
		l2.Append(Trace(append([]string(nil), events...)))
	}
	rng := rand.New(rand.NewSource(seed))
	noisy, err := AddNoise(rng, l2, 0.08, 0.08, 0.04)
	if err != nil {
		t.Fatalf("AddNoise: %v", err)
	}
	return l1, noisy
}

func TestMatchWithRepairReportsAndImproves(t *testing.T) {
	l1, noisy := repairTestLogs(t, 3)
	plain, err := Match(l1, noisy)
	if err != nil {
		t.Fatalf("plain match: %v", err)
	}
	repaired, err := Match(l1, noisy, WithRepair())
	if err != nil {
		t.Fatalf("repaired match: %v", err)
	}
	if plain.Repair1 != nil || plain.Repair2 != nil {
		t.Fatal("plain match must not carry repair reports")
	}
	if repaired.Repair1 == nil || repaired.Repair2 == nil {
		t.Fatal("repaired match must carry both repair reports")
	}
	if repaired.Repair1.Touched() {
		t.Fatalf("clean log 1 was touched: %+v", repaired.Repair1)
	}
	r2 := repaired.Repair2
	if !r2.Touched() || r2.EventsDropped+r2.EventsReordered+r2.EventsImputed == 0 {
		t.Fatalf("noisy log 2 repair did nothing: %+v", r2)
	}
	if r2.TracesIn != r2.TracesOut+r2.TracesQuarantined {
		t.Fatalf("repair accounting broken: %+v", r2)
	}
	// The input logs must be untouched by the repaired run.
	if noisy.Len() != 50 {
		t.Fatalf("input log mutated: %d traces", noisy.Len())
	}
}

func TestMatchWithRepairDeterministicAcrossWorkers(t *testing.T) {
	l1, noisy := repairTestLogs(t, 11)
	var ref *Result
	for _, workers := range []int{1, 2, 8} {
		res, err := Match(l1, noisy, WithRepair(), WithWorkers(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if len(res.Sim) != len(ref.Sim) {
			t.Fatalf("workers=%d: matrix size %d != %d", workers, len(res.Sim), len(ref.Sim))
		}
		for i := range res.Sim {
			if res.Sim[i] != ref.Sim[i] {
				t.Fatalf("workers=%d: Sim[%d] = %v != %v (not bit-identical)", workers, i, res.Sim[i], ref.Sim[i])
			}
		}
		if len(res.Mapping) != len(ref.Mapping) {
			t.Fatalf("workers=%d: mapping size %d != %d", workers, len(res.Mapping), len(ref.Mapping))
		}
		// Repair itself must be deterministic too; compare scalar totals.
		if res.Repair2.EventsDropped != ref.Repair2.EventsDropped ||
			res.Repair2.EventsReordered != ref.Repair2.EventsReordered ||
			res.Repair2.EventsImputed != ref.Repair2.EventsImputed ||
			res.Repair2.TracesQuarantined != ref.Repair2.TracesQuarantined {
			t.Fatalf("workers=%d: repair report differs: %+v vs %+v", workers, res.Repair2, ref.Repair2)
		}
	}
}

func TestRepairReportRoundTripsThroughJSON(t *testing.T) {
	l1, noisy := repairTestLogs(t, 5)
	res, err := Match(l1, noisy, WithRepair())
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	back, err := ReadResultJSON(&buf)
	if err != nil {
		t.Fatalf("ReadResultJSON: %v", err)
	}
	if back.Repair1 == nil || back.Repair2 == nil {
		t.Fatal("repair reports lost in round trip")
	}
	if back.Repair2.EventsDropped != res.Repair2.EventsDropped ||
		back.Repair2.TracesQuarantined != res.Repair2.TracesQuarantined ||
		back.Repair2.TracesIn != res.Repair2.TracesIn ||
		len(back.Repair2.Stages) != len(res.Repair2.Stages) {
		t.Fatalf("repair report changed: %+v vs %+v", back.Repair2, res.Repair2)
	}
	// Results without repair must omit the fields entirely.
	plain, err := Match(l1, noisy)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := plain.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte("repair1")) {
		t.Fatal("plain result serialized a repair1 field")
	}
}

func TestRepairOptionValidation(t *testing.T) {
	bad := []RepairOptions{
		{Window: -1},
		{OrderRatio: -0.5},
		{OrderMaxFwd: 1.5},
		{OrderMaxPasses: -2},
		{ImputeRatio: -1},
		{ImputeMinPath: 1.5},
		{ImputeMax: -3},
	}
	for _, ro := range bad {
		if _, err := buildOptions([]Option{WithRepairOptions(ro)}); err == nil {
			t.Fatalf("accepted invalid repair options %+v", ro)
		}
	}
	if _, err := buildOptions([]Option{WithRepairOptions(RepairOptions{})}); err != nil {
		t.Fatalf("zero repair options rejected: %v", err)
	}
}

func TestMatcherRematchAppliesRepair(t *testing.T) {
	l1, noisy := repairTestLogs(t, 9)
	m, err := NewMatcher(l1, noisy, WithRepair())
	if err != nil {
		t.Fatalf("NewMatcher: %v", err)
	}
	res, err := m.Rematch()
	if err != nil {
		t.Fatalf("Rematch: %v", err)
	}
	if res.Repair2 == nil || !res.Repair2.Touched() {
		t.Fatalf("Rematch did not repair the noisy log: %+v", res.Repair2)
	}
	// A second Rematch (after appending a clean trace) repairs the raw
	// grown log again, not the previous repair's output.
	if err := m.Append(2, Trace{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}); err != nil {
		t.Fatal(err)
	}
	res2, err := m.Rematch()
	if err != nil {
		t.Fatalf("second Rematch: %v", err)
	}
	if res2.Repair2.TracesIn != res.Repair2.TracesIn+1 {
		t.Fatalf("second repair saw %d traces, want %d", res2.Repair2.TracesIn, res.Repair2.TracesIn+1)
	}
}
