package ems_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/ems"
	"repro/internal/paperexample"
)

func TestFacadeLabelHelpers(t *testing.T) {
	if v := ems.JaroWinkler("approve claim", "approve claim"); math.Abs(v-1) > 1e-9 {
		t.Errorf("JaroWinkler identical = %g", v)
	}
	me := ems.MongeElkan(ems.QGramCosine(2))
	if v := me("check inventory", "inventory check"); math.Abs(v-1) > 1e-9 {
		t.Errorf("MongeElkan reordered = %g", v)
	}
}

func TestFacadeConsensus(t *testing.T) {
	l1, l2 := paperLogs()
	a, err := ems.Match(l1, l2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ems.Match(l1, l2, ems.WithDirection(ems.Forward))
	if err != nil {
		t.Fatal(err)
	}
	merged, err := ems.Consensus([]ems.Mapping{a.Mapping, b.Mapping}, 2)
	if err != nil {
		t.Fatalf("Consensus: %v", err)
	}
	if len(merged) == 0 {
		t.Errorf("consensus of two agreeing runs empty")
	}
	if _, err := ems.Consensus(nil, 1); err == nil {
		t.Errorf("quorum above input count accepted")
	}
}

func TestFacadeAddNoise(t *testing.T) {
	l1, _ := paperLogs()
	rng := rand.New(rand.NewSource(1))
	noisy, err := ems.AddNoise(rng, l1, 0.2, 0.2, 0.1)
	if err != nil {
		t.Fatalf("AddNoise: %v", err)
	}
	if noisy.Len() != l1.Len() {
		t.Errorf("noise changed trace count")
	}
	if _, err := ems.AddNoise(rng, l1, 2, 0, 0); err == nil {
		t.Errorf("invalid probability accepted")
	}
}

func TestFacadeRemainingOptions(t *testing.T) {
	l1, l2 := paperLogs()
	res, err := ems.Match(l1, l2,
		ems.WithDecay(0.6),
		ems.WithEpsilon(1e-5),
		ems.WithMaxRounds(50),
		ems.WithExact(),
	)
	if err != nil {
		t.Fatalf("Match with tuning options: %v", err)
	}
	// Smaller decay compresses similarities but must preserve the
	// dislocated ranking.
	a2, _ := res.Similarity("A", "2")
	a1, _ := res.Similarity("A", "1")
	if a2 <= a1 {
		t.Errorf("decay 0.6 broke dislocated ranking: %g vs %g", a2, a1)
	}
	if _, err := ems.MatchComposite(l1, l2, ems.WithCandidateDiscovery(1.0, 2, 4)); err != nil {
		t.Fatalf("MatchComposite with discovery options: %v", err)
	}
}

// TestWithWorkersIdenticalResults: the engine worker count is a pure
// performance knob — matching results must not change, and negative values
// are rejected.
func TestWithWorkersIdenticalResults(t *testing.T) {
	l1, l2 := paperexample.Log1(), paperexample.Log2()
	serial, err := ems.Match(l1, l2, ems.WithWorkers(1))
	if err != nil {
		t.Fatalf("Match workers=1: %v", err)
	}
	par, err := ems.Match(l1, l2, ems.WithWorkers(4))
	if err != nil {
		t.Fatalf("Match workers=4: %v", err)
	}
	if len(serial.Sim) != len(par.Sim) {
		t.Fatalf("matrix sizes differ: %d vs %d", len(serial.Sim), len(par.Sim))
	}
	for i := range serial.Sim {
		if serial.Sim[i] != par.Sim[i] {
			t.Fatalf("workers changed similarity at %d: %x vs %x", i, serial.Sim[i], par.Sim[i])
		}
	}
	if serial.Evaluations != par.Evaluations || serial.Rounds != par.Rounds {
		t.Errorf("counters differ: evals %d/%d rounds %d/%d",
			serial.Evaluations, par.Evaluations, serial.Rounds, par.Rounds)
	}
	if len(serial.Mapping) != len(par.Mapping) {
		t.Errorf("mappings differ: %d vs %d correspondences", len(serial.Mapping), len(par.Mapping))
	}
	if _, err := ems.Match(l1, l2, ems.WithWorkers(-1)); err == nil {
		t.Error("negative workers accepted")
	}
}
