package ems

import (
	"fmt"

	"repro/internal/core"
)

// EngineCheckpoint is a consistent snapshot of the similarity iteration
// between rounds, sufficient to resume the same match bit-identically. It
// serializes via MarshalBinary/UnmarshalBinary (CRC-protected; corrupt bytes
// yield ErrCorruptCheckpoint) and is bound to the logs and numeric options
// it was taken from by a fingerprint — resuming under a different
// configuration fails with ErrCheckpointMismatch. Worker budget is
// deliberately not part of the fingerprint: a checkpoint taken under one
// WithWorkers value resumes under any other.
type EngineCheckpoint = core.Checkpoint

// ErrCheckpointMismatch reports a checkpoint taken from a different
// log pair or configuration; see EngineCheckpoint.
var ErrCheckpointMismatch = core.ErrCheckpointMismatch

// ErrCorruptCheckpoint reports checkpoint bytes that fail validation; see
// EngineCheckpoint.
var ErrCorruptCheckpoint = core.ErrCorruptCheckpoint

// WithCheckpoints makes Match deliver a checkpoint to fn every `every`
// iteration rounds (every <= 0 means every round). The hook runs
// synchronously between rounds; the snapshot is a deep copy the hook may
// retain or persist. Checkpointing never changes the computed numbers.
// Composite matching drives many short computations and does not support
// checkpointing; MatchComposite rejects this option.
func WithCheckpoints(every int, fn func(*EngineCheckpoint)) Option {
	return func(o *options) error {
		if fn == nil {
			return fmt.Errorf("ems: checkpoint hook must not be nil")
		}
		o.sim.Checkpoint = fn
		o.sim.CheckpointEvery = every
		return nil
	}
}

// WithResume starts the match from a previously captured checkpoint instead
// of round 0. The match must be constructed over the same logs and numeric
// options as the one the checkpoint was taken from (enforced via the
// checkpoint fingerprint); the final result is then bit-identical to the
// uninterrupted run. MatchComposite rejects this option.
func WithResume(cp *EngineCheckpoint) Option {
	return func(o *options) error {
		if cp == nil {
			return fmt.Errorf("ems: resume checkpoint must not be nil")
		}
		o.resume = cp
		return nil
	}
}
