package ems

import (
	"fmt"

	"repro/internal/repair"
)

// RepairReport describes what the dirty-log repair pipeline did to one log:
// per-stage counts of events dropped, reordered and imputed, plus the traces
// touched and quarantined. See WithRepair.
type RepairReport = repair.Report

// RepairOptions tune the repair pipeline enabled by WithRepairOptions. Every
// zero field picks the documented default, so the zero value is equivalent
// to WithRepair. Negative values are rejected.
type RepairOptions struct {
	// Window is the duplicate-collapse look-back distance (default 1:
	// adjacent repeats only).
	Window int
	// OrderRatio is the dominance ratio of order repair: an adjacent pair
	// is transposed only when the log records the reverse order at least
	// this many times as often. The default adapts to the log's measured
	// dirtiness: 4 on clean-looking logs, 2 on visibly noisy ones.
	OrderRatio float64
	// OrderMaxFwd caps the frequency of an order read as disorder: a pair
	// recorded by more than this fraction of traces is treated as a
	// legitimate interleaving and never swapped (default 0.25; 1 disables).
	OrderMaxFwd float64
	// OrderMaxPasses bounds reorder passes per trace before the trace is
	// quarantined as order-unstable (default: trace length + 1).
	OrderMaxPasses int
	// ImputeRatio is how many times stronger the indirect path a->c->b must
	// be than the direct a->b edge before c is imputed (default 4).
	ImputeRatio float64
	// ImputeMinPath is the minimum frequency of both path edges for an
	// imputation. The default adapts to the log's measured dirtiness: 0.5
	// on clean-looking logs, 0.25 on visibly noisy ones.
	ImputeMinPath float64
	// ImputeMax is the per-trace imputation budget; traces demanding more
	// are quarantined as beyond repair (default 3).
	ImputeMax int
}

// pipeline materializes the configured repair pipeline.
func (ro RepairOptions) pipeline() *repair.Pipeline {
	return repair.Default(repair.Options{
		Window:         ro.Window,
		OrderRatio:     ro.OrderRatio,
		OrderMaxFwd:    ro.OrderMaxFwd,
		OrderMaxPasses: ro.OrderMaxPasses,
		ImputeRatio:    ro.ImputeRatio,
		ImputeMinPath:  ro.ImputeMinPath,
		ImputeMax:      ro.ImputeMax,
	})
}

// WithRepair runs the default dirty-log repair pipeline over both logs
// before dependency graphs are built: duplicate events are collapsed,
// locally disordered events are put back into the log's dominant order, and
// events the dependency relation says were dropped are re-imputed. Traces no
// stage can bring into a consistent state are quarantined (dropped from the
// matched log) rather than failing the call; Result.Repair1 and
// Result.Repair2 account for everything the pipeline did. The input logs
// are never mutated.
func WithRepair() Option { return WithRepairOptions(RepairOptions{}) }

// WithRepairOptions is WithRepair with tuned pipeline knobs.
func WithRepairOptions(ro RepairOptions) Option {
	return func(o *options) error {
		if ro.Window < 0 {
			return fmt.Errorf("ems: repair window must be >= 0, got %d", ro.Window)
		}
		if ro.OrderRatio < 0 {
			return fmt.Errorf("ems: repair order ratio must be >= 0, got %g", ro.OrderRatio)
		}
		if ro.OrderMaxFwd < 0 || ro.OrderMaxFwd > 1 {
			return fmt.Errorf("ems: repair order max fwd must be in [0,1], got %g", ro.OrderMaxFwd)
		}
		if ro.OrderMaxPasses < 0 {
			return fmt.Errorf("ems: repair order max passes must be >= 0, got %d", ro.OrderMaxPasses)
		}
		if ro.ImputeRatio < 0 {
			return fmt.Errorf("ems: repair impute ratio must be >= 0, got %g", ro.ImputeRatio)
		}
		if ro.ImputeMinPath < 0 || ro.ImputeMinPath > 1 {
			return fmt.Errorf("ems: repair impute min path must be in [0,1], got %g", ro.ImputeMinPath)
		}
		if ro.ImputeMax < 0 {
			return fmt.Errorf("ems: repair impute max must be >= 0, got %d", ro.ImputeMax)
		}
		o.repair = &ro
		return nil
	}
}

// applyRepair runs the configured repair pipeline (if any) over both logs
// and stashes the reports for assemble. The returned logs are the repaired
// copies; without WithRepair the inputs pass through untouched.
func (o *options) applyRepair(log1, log2 *Log) (*Log, *Log, error) {
	if o.repair == nil {
		return log1, log2, nil
	}
	defer o.span("repair")()
	p := o.repair.pipeline()
	r1, rep1, err := p.Run(log1)
	if err != nil {
		return nil, nil, fmt.Errorf("ems: log 1: %w", err)
	}
	r2, rep2, err := p.Run(log2)
	if err != nil {
		return nil, nil, fmt.Errorf("ems: log 2: %w", err)
	}
	o.rep1, o.rep2 = rep1, rep2
	return r1, r2, nil
}
