package ems_test

import (
	"fmt"
	"log"

	"repro/ems"
)

// Two tiny logs of the same ordering process: subsidiary B uses opaque
// names and records an extra intake step before payment.
func exampleLogs() (*ems.Log, *ems.Log) {
	a := ems.NewLog("a")
	for i := 0; i < 4; i++ {
		a.Append(ems.Trace{"pay cash", "check stock", "ship"})
	}
	for i := 0; i < 6; i++ {
		a.Append(ems.Trace{"pay card", "check stock", "ship"})
	}
	b := ems.NewLog("b")
	for i := 0; i < 4; i++ {
		b.Append(ems.Trace{"accept", "x1", "x3", "x4"})
	}
	for i := 0; i < 6; i++ {
		b.Append(ems.Trace{"accept", "x2", "x3", "x4"})
	}
	return a, b
}

func ExampleMatch() {
	logA, logB := exampleLogs()
	res, err := ems.Match(logA, logB)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range res.Mapping {
		fmt.Println(c.Left[0], "->", c.Right[0])
	}
	// Output:
	// ship -> x4
	// check stock -> x3
	// pay card -> x2
	// pay cash -> x1
}

func ExampleMatch_withLabels() {
	logA := ems.NewLog("a")
	logA.Append(ems.Trace{"pay invoice", "ship order"})
	logB := ems.NewLog("b")
	logB.Append(ems.Trace{"pay_invoice", "ship_order"})
	res, err := ems.Match(logA, logB,
		ems.WithAlpha(0.5),
		ems.WithLabelSimilarity(ems.QGramCosine(3)),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Mapping[0].Left[0], "->", res.Mapping[0].Right[0])
	// Output:
	// pay invoice -> pay_invoice
}

func ExampleResult_TopMatches() {
	logA, logB := exampleLogs()
	res, err := ems.Match(logA, logB)
	if err != nil {
		log.Fatal(err)
	}
	for _, n := range res.TopMatches("pay cash", 2) {
		fmt.Printf("%s %.2f\n", n.Name, n.Similarity)
	}
	// Output:
	// x1 0.64
	// x2 0.52
}
