package ems

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// PairInput is one unit of batch matching: two logs that record the same
// process in different systems.
type PairInput struct {
	Name       string
	Log1, Log2 *Log
}

// PairOutput is the result of matching one input pair; exactly one of
// Result and Err is set.
type PairOutput struct {
	Name   string
	Result *Result
	Err    error
}

// MatchAll matches many log pairs concurrently with a bounded worker pool
// — the batch shape of the paper's motivating deployment, where thousands
// of process variants from 31 subsidiaries must be aligned. Outputs are
// returned in input order. workers <= 0 uses GOMAXPROCS. The composite flag
// selects MatchComposite per pair.
func MatchAll(pairs []PairInput, workers int, compositeMatch bool, opts ...Option) []PairOutput {
	return MatchAllContext(context.Background(), pairs, workers, compositeMatch, opts...)
}

// MatchAllContext is MatchAll with cancellation: pairs not yet started when
// ctx is cancelled are skipped and reported with an error wrapping
// ctx.Err(), and pairs already being matched abort within one iteration
// round (their error satisfies errors.Is(err, ErrStopped)) — the drain
// semantics a long-running service needs for prompt graceful shutdown. A
// panic while matching one pair is contained to that pair and reported as
// its error; the other pairs are unaffected.
func MatchAllContext(ctx context.Context, pairs []PairInput, workers int, compositeMatch bool, opts ...Option) []PairOutput {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pairs) {
		workers = len(pairs)
	}
	out := make([]PairOutput, len(pairs))
	if len(pairs) == 0 {
		return out
	}
	// The batch context is prepended so an explicit WithContext among the
	// caller's options still takes precedence, while every pair without one
	// aborts mid-computation when ctx is cancelled.
	opts = append([]Option{WithContext(ctx)}, opts...)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = matchPair(ctx, pairs[i], compositeMatch, opts)
			}
		}()
	}
feed:
	for i := range pairs {
		select {
		case jobs <- i:
		case <-ctx.Done():
			// Mark the unfed remainder (and this pair) as cancelled.
			for j := i; j < len(pairs); j++ {
				out[j] = PairOutput{
					Name: pairs[j].Name,
					Err:  fmt.Errorf("ems: pair %q not matched: %w", pairs[j].Name, ctx.Err()),
				}
			}
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	return out
}

// matchPair matches one batch pair, containing a panic in the underlying
// computation to this pair's output so the rest of the batch (and the
// calling process) survives.
func matchPair(ctx context.Context, p PairInput, compositeMatch bool, opts []Option) (out PairOutput) {
	out.Name = p.Name
	defer func() {
		if r := recover(); r != nil {
			out.Result = nil
			out.Err = fmt.Errorf("ems: pair %q panicked: %v", p.Name, r)
		}
	}()
	switch {
	case ctx.Err() != nil:
		out.Err = fmt.Errorf("ems: pair %q not matched: %w", p.Name, ctx.Err())
	case p.Log1 == nil || p.Log2 == nil:
		out.Err = fmt.Errorf("ems: pair %q has a nil log", p.Name)
	case compositeMatch:
		out.Result, out.Err = MatchComposite(p.Log1, p.Log2, opts...)
	default:
		out.Result, out.Err = Match(p.Log1, p.Log2, opts...)
	}
	return out
}

// Neighbor is one entry of a top-k similarity query.
type Neighbor struct {
	// Name is the (possibly merged) node name on the other side; use
	// ExpandComposite for constituents.
	Name       string
	Similarity float64
}

// TopMatches returns the k most similar log-2 events for a log-1 event, in
// descending similarity order — the interactive "what does this step
// correspond to over there?" query. Unknown events return nil.
func (r *Result) TopMatches(event string, k int) []Neighbor {
	i := -1
	for idx, n := range r.Names1 {
		if n == event {
			i = idx
			break
		}
	}
	if i < 0 || k <= 0 {
		return nil
	}
	out := make([]Neighbor, 0, len(r.Names2))
	for j, n := range r.Names2 {
		out = append(out, Neighbor{Name: n, Similarity: r.At(i, j)})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Similarity != out[b].Similarity {
			return out[a].Similarity > out[b].Similarity
		}
		return out[a].Name < out[b].Name
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}
