package ems_test

import (
	"errors"
	"testing"

	"repro/ems"
)

// TestMatchCheckpointResume captures checkpoints during a match, then
// resumes a fresh match from each of them and requires the exact same
// similarity matrix as the uninterrupted run.
func TestMatchCheckpointResume(t *testing.T) {
	l1, l2 := paperLogs()
	baseline, err := ems.Match(l1, l2)
	if err != nil {
		t.Fatal(err)
	}

	var cps []*ems.EngineCheckpoint
	checkpointed, err := ems.Match(l1, l2,
		ems.WithCheckpoints(1, func(cp *ems.EngineCheckpoint) { cps = append(cps, cp) }))
	if err != nil {
		t.Fatal(err)
	}
	for i := range baseline.Sim {
		if baseline.Sim[i] != checkpointed.Sim[i] {
			t.Fatalf("checkpointed run differs at %d: %v vs %v", i, checkpointed.Sim[i], baseline.Sim[i])
		}
	}
	if len(cps) == 0 {
		t.Fatal("no checkpoints captured")
	}

	for k, cp := range cps {
		data, err := cp.MarshalBinary()
		if err != nil {
			t.Fatalf("checkpoint %d: marshal: %v", k, err)
		}
		var decoded ems.EngineCheckpoint
		if err := decoded.UnmarshalBinary(data); err != nil {
			t.Fatalf("checkpoint %d: unmarshal: %v", k, err)
		}
		resumed, err := ems.Match(l1, l2, ems.WithResume(&decoded))
		if err != nil {
			t.Fatalf("checkpoint %d: resume: %v", k, err)
		}
		for i := range baseline.Sim {
			if baseline.Sim[i] != resumed.Sim[i] {
				t.Fatalf("checkpoint %d: resumed sim differs at %d: %v vs %v",
					k, i, resumed.Sim[i], baseline.Sim[i])
			}
		}
	}
}

// TestResumeRejectsDifferentOptions checks the fingerprint guard: a
// checkpoint resumes only under the configuration it was taken from.
func TestResumeRejectsDifferentOptions(t *testing.T) {
	l1, l2 := paperLogs()
	var cp *ems.EngineCheckpoint
	if _, err := ems.Match(l1, l2,
		ems.WithCheckpoints(1, func(c *ems.EngineCheckpoint) {
			if cp == nil {
				cp = c
			}
		})); err != nil {
		t.Fatal(err)
	}
	if cp == nil {
		t.Fatal("no checkpoint captured")
	}
	_, err := ems.Match(l1, l2, ems.WithResume(cp), ems.WithDecay(0.5))
	if !errors.Is(err, ems.ErrCheckpointMismatch) {
		t.Fatalf("resume under different decay: got %v, want ErrCheckpointMismatch", err)
	}
	// Corrupt checkpoint bytes are reported as such.
	data, err := cp.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 1
	var bad ems.EngineCheckpoint
	if err := bad.UnmarshalBinary(data); !errors.Is(err, ems.ErrCorruptCheckpoint) {
		t.Fatalf("corrupt bytes: got %v, want ErrCorruptCheckpoint", err)
	}
}

// TestCompositeRejectsDurabilityOptions: composite matching drives many
// short computations and supports neither checkpointing nor resume.
func TestCompositeRejectsDurabilityOptions(t *testing.T) {
	l1, l2 := paperLogs()
	if _, err := ems.MatchComposite(l1, l2,
		ems.WithCheckpoints(1, func(*ems.EngineCheckpoint) {})); err == nil {
		t.Fatal("MatchComposite accepted WithCheckpoints")
	}
	var cp ems.EngineCheckpoint
	if _, err := ems.MatchComposite(l1, l2, ems.WithResume(&cp)); err == nil {
		t.Fatal("MatchComposite accepted WithResume")
	}
}
