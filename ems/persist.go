package ems

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/composite"
	"repro/internal/matching"
)

// resultJSON is the serialized form of a Result. Composite node names keep
// their joined encoding so a round-tripped result behaves identically.
type resultJSON struct {
	Names1      []string             `json:"names1"`
	Names2      []string             `json:"names2"`
	Sim         []float64            `json:"sim"`
	Mapping     []correspondenceJSON `json:"mapping"`
	Evaluations int                  `json:"evaluations"`
	Rounds      int                  `json:"rounds"`
	Composites1 [][]string           `json:"composites1,omitempty"`
	Composites2 [][]string           `json:"composites2,omitempty"`
	Repair1     *RepairReport        `json:"repair1,omitempty"`
	Repair2     *RepairReport        `json:"repair2,omitempty"`
	Degraded    string               `json:"degraded,omitempty"`
}

type correspondenceJSON struct {
	Left  []string `json:"left"`
	Right []string `json:"right"`
	Score float64  `json:"score"`
}

// WriteJSON serializes the result, so expensive matchings can be stored in
// the process warehouse and reloaded without recomputation.
func (r *Result) WriteJSON(w io.Writer) error {
	out := resultJSON{
		Names1:      r.Names1,
		Names2:      r.Names2,
		Sim:         r.Sim,
		Evaluations: r.Evaluations,
		Rounds:      r.Rounds,
		Composites1: r.Composites1,
		Composites2: r.Composites2,
		Repair1:     r.Repair1,
		Repair2:     r.Repair2,
		Degraded:    r.Degraded,
	}
	for _, c := range r.Mapping {
		out.Mapping = append(out.Mapping, correspondenceJSON{Left: c.Left, Right: c.Right, Score: c.Score})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("ems: write result: %w", err)
	}
	return nil
}

// ReadResultJSON reloads a result written by WriteJSON.
func ReadResultJSON(rd io.Reader) (*Result, error) {
	var in resultJSON
	if err := json.NewDecoder(rd).Decode(&in); err != nil {
		return nil, fmt.Errorf("ems: read result: %w", err)
	}
	if len(in.Sim) != len(in.Names1)*len(in.Names2) {
		return nil, fmt.Errorf("ems: read result: matrix size %d does not match %dx%d",
			len(in.Sim), len(in.Names1), len(in.Names2))
	}
	// Mapping groups must only reference events of this result. Composite
	// node names contribute both the joined name and its constituents, since
	// correspondences store expanded event names.
	known1, known2 := knownNames(in.Names1), knownNames(in.Names2)
	for i, c := range in.Mapping {
		for _, n := range c.Left {
			if !known1[n] {
				return nil, fmt.Errorf("ems: read result: mapping %d references unknown log-1 event %q", i, n)
			}
		}
		for _, n := range c.Right {
			if !known2[n] {
				return nil, fmt.Errorf("ems: read result: mapping %d references unknown log-2 event %q", i, n)
			}
		}
	}
	r := &Result{
		Names1:      in.Names1,
		Names2:      in.Names2,
		Sim:         in.Sim,
		Evaluations: in.Evaluations,
		Rounds:      in.Rounds,
		Composites1: in.Composites1,
		Composites2: in.Composites2,
		Repair1:     in.Repair1,
		Repair2:     in.Repair2,
		Degraded:    in.Degraded,
	}
	for _, c := range in.Mapping {
		r.Mapping = append(r.Mapping, matching.NewCorrespondence(c.Left, c.Right, c.Score))
	}
	return r, nil
}

// knownNames collects every event name a mapping group may legally use: the
// matrix names themselves plus, for merged composite nodes, their
// constituent events.
func knownNames(names []string) map[string]bool {
	set := make(map[string]bool, len(names))
	for _, n := range names {
		set[n] = true
		for _, part := range composite.SplitName(n) {
			set[part] = true
		}
	}
	return set
}
