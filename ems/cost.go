package ems

import (
	"fmt"

	"repro/internal/core"
)

// Rungs of the server's degradation ladder, recorded in Result.Degraded
// when an overloaded daemon downgrades a job instead of shedding it.
const (
	// DegradedFastPath: the job asked for exact convergence but ran with the
	// adaptive fast path (certified error bounds) instead.
	DegradedFastPath = "fast-path"
	// DegradedEstimateOnly: the job ran the closed-form §3.5 estimation with
	// no fixpoint iteration at all.
	DegradedEstimateOnly = "estimate-only"
)

// Cost is the predicted footprint of a match, produced by EstimateCost
// before any engine state is allocated.
type Cost struct {
	// Bytes is the predicted peak engine heap (similarity matrices, label
	// matrix, agreement cache, pre-set tables) across all directions.
	Bytes int64
	// Evals is an upper bound on similarity-formula evaluations.
	Evals int64
}

// TooLargeError reports that a single match can never fit the server's
// memory budget: its predicted peak alone exceeds the whole budget, so
// queueing it would only defer an OOM. It carries the estimate so callers
// can see how far over they are.
type TooLargeError struct {
	// Predicted is the match's estimated peak footprint.
	Predicted Cost
	// BudgetBytes is the budget the prediction was rejected against.
	BudgetBytes int64
}

func (e *TooLargeError) Error() string {
	return fmt.Sprintf("ems: job too large: predicted peak %d bytes exceeds the %d-byte memory budget",
		e.Predicted.Bytes, e.BudgetBytes)
}

// EstimateCost predicts the peak engine memory and evaluation count of
// Match(log1, log2, opts...) without allocating any matrix-sized state:
// only the dependency graphs are built (which a subsequent Match rebuilds —
// they are small next to the matrices). The estimate covers the engine's
// O(n1*n2) working set; repair preprocessing is not applied first, and for
// composite matching the figure is a per-computation floor, not a total.
func EstimateCost(log1, log2 *Log, opts ...Option) (*Cost, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	g1, err := buildGraph(log1, o)
	if err != nil {
		return nil, err
	}
	g2, err := buildGraph(log2, o)
	if err != nil {
		return nil, err
	}
	ce := core.EstimateCost(g1, g2, o.sim)
	return &Cost{Bytes: ce.Bytes, Evals: ce.Evals}, nil
}
