package ems_test

import (
	"bytes"
	"testing"

	"repro/ems"
)

func TestSelectionStrategies(t *testing.T) {
	l1, l2 := paperLogs()
	for _, s := range []ems.SelectionStrategy{ems.SelectMaxTotal, ems.SelectGreedy, ems.SelectStable} {
		res, err := ems.Match(l1, l2, ems.WithSelectionStrategy(s))
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if len(res.Mapping) == 0 {
			t.Errorf("%v selected nothing", s)
		}
		// All strategies must find the dislocated pair A->2 on this
		// example: it is the row/column maximum for both events.
		found := false
		for _, c := range res.Mapping {
			if c.Left[0] == "A" && c.Right[0] == "2" {
				found = true
			}
		}
		if !found {
			t.Errorf("%v missed A->2: %v", s, res.Mapping)
		}
	}
}

func TestSelectionStrategyValidation(t *testing.T) {
	l1, l2 := paperLogs()
	if _, err := ems.Match(l1, l2, ems.WithSelectionStrategy(ems.SelectionStrategy(9))); err == nil {
		t.Errorf("unknown strategy accepted")
	}
}

func TestXESRoundTripFacade(t *testing.T) {
	l1, _ := paperLogs()
	var buf bytes.Buffer
	if err := ems.WriteXES(&buf, l1); err != nil {
		t.Fatal(err)
	}
	back, err := ems.ReadXES(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != l1.Len() {
		t.Errorf("XES round trip lost traces: %d vs %d", back.Len(), l1.Len())
	}
}
