package ems

import (
	"fmt"

	"repro/internal/core"
)

// Matcher supports incremental matching: as new traces stream into either
// log (the warehouse-ingestion shape of the paper's deployment), Rematch
// recomputes the similarity warm-started from the previous fixpoint, which
// typically converges in a fraction of the rounds a cold start needs. The
// fixpoint is unique (Theorem 1), so results equal a from-scratch Match up
// to the convergence threshold.
//
// Matcher is not safe for concurrent use.
type Matcher struct {
	opts       []Option
	log1, log2 *Log
	prev       *core.Result
}

// NewMatcher creates an incremental matcher over the two logs. The options
// apply to every Rematch call. Composite matching is not supported
// incrementally; use MatchComposite.
func NewMatcher(log1, log2 *Log, opts ...Option) (*Matcher, error) {
	if log1 == nil || log2 == nil {
		return nil, fmt.Errorf("ems: NewMatcher requires two logs")
	}
	if _, err := buildOptions(opts); err != nil {
		return nil, err
	}
	return &Matcher{opts: opts, log1: log1.Clone(), log2: log2.Clone()}, nil
}

// Append adds traces to one side (1 or 2) of the matcher's logs.
func (m *Matcher) Append(side int, traces ...Trace) error {
	var l *Log
	switch side {
	case 1:
		l = m.log1
	case 2:
		l = m.log2
	default:
		return fmt.Errorf("ems: side must be 1 or 2, got %d", side)
	}
	for _, t := range traces {
		if len(t) == 0 {
			return fmt.Errorf("ems: cannot append an empty trace")
		}
		l.Append(t.Clone())
	}
	return nil
}

// Logs returns copies of the matcher's current logs.
func (m *Matcher) Logs() (*Log, *Log) { return m.log1.Clone(), m.log2.Clone() }

// Rematch computes the current correspondences. The first call is a cold
// start; subsequent calls warm-start from the previous fixpoint.
func (m *Matcher) Rematch() (*Result, error) {
	o, err := buildOptions(m.opts)
	if err != nil {
		return nil, err
	}
	defer o.armStop()()
	o.armTrace()
	// Repair (when configured) runs on copies each call: the matcher's own
	// logs stay raw so appended traces are repaired against the statistics
	// of the grown log, not of an earlier repair's output.
	l1, l2, err := o.applyRepair(m.log1, m.log2)
	if err != nil {
		return nil, err
	}
	endGraph := o.span("graph-build")
	g1, err := buildGraph(l1, o)
	if err != nil {
		endGraph()
		return nil, err
	}
	g2, err := buildGraph(l2, o)
	endGraph()
	if err != nil {
		return nil, err
	}
	var seed *core.Seed
	if m.prev != nil {
		seed = &core.Seed{
			WarmForward:  warmMap(m.prev.Names1, m.prev.Names2, m.prev.Forward),
			WarmBackward: warmMap(m.prev.Names1, m.prev.Names2, m.prev.Backward),
		}
	}
	comp, err := core.NewComputation(g1, g2, o.sim, seed)
	if err != nil {
		return nil, err
	}
	if err := comp.Run(); err != nil {
		return nil, err
	}
	cr, err := comp.Result()
	if err != nil {
		return nil, err
	}
	m.prev = cr
	defer o.span("select")()
	return assemble(cr, nil, nil, o)
}

// warmMap converts a dense direction matrix into the name-keyed warm-start
// map the core seed expects.
func warmMap(names1, names2 []string, mat []float64) map[string]map[string]float64 {
	if mat == nil {
		return nil
	}
	out := make(map[string]map[string]float64, len(names1))
	for i, a := range names1 {
		row := make(map[string]float64, len(names2))
		for j, b := range names2 {
			row[b] = mat[i*len(names2)+j]
		}
		out[a] = row
	}
	return out
}
