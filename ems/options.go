package ems

import (
	"context"
	"fmt"
	"time"

	"repro/internal/composite"
	"repro/internal/core"
	"repro/internal/matching"
)

// options gathers the resolved configuration of a match call.
type options struct {
	sim                core.Config
	minFrequency       float64
	selectionThreshold float64
	strategy           matching.Strategy
	markov             bool
	// cancellation
	ctx     context.Context
	timeout time.Duration
	// durability: non-nil resumes the iteration from a checkpoint
	resume *EngineCheckpoint
	// composite matching
	discover      composite.DiscoverOptions
	delta         float64
	maxMergeSteps int
	useUnchanged  bool
	useBounds     bool
	// dirty-log repair: non-nil runs the repair pipeline over both logs
	// before graph construction; rep1/rep2 carry the reports to assemble.
	repair     *RepairOptions
	rep1, rep2 *RepairReport
}

// armStop installs the cooperative-cancellation hook derived from
// WithContext and WithTimeout onto the similarity config and returns a
// release function the match call must defer; the release stops the timeout
// timer (if any) so abandoned deadlines do not linger.
func (o *options) armStop() (release func()) {
	ctx := o.ctx
	if ctx == nil {
		if o.timeout <= 0 {
			return func() {}
		}
		ctx = context.Background()
	}
	cancel := func() {}
	if o.timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, o.timeout)
	}
	o.sim.Stop = ctx.Err
	return cancel
}

// Option customizes Match and MatchComposite.
type Option func(*options) error

func buildOptions(opts []Option) (*options, error) {
	o := &options{
		sim:                core.DefaultConfig(),
		selectionThreshold: 0.1,
		discover:           composite.DefaultDiscoverOptions(),
		delta:              0.005,
		useUnchanged:       true,
		useBounds:          true,
	}
	// The adaptive fast path (estimation-seeded iteration with certified
	// error bound) and the blocked matrix layout are on by default;
	// WithExact is the escape hatch back to plain exact iteration.
	o.sim.FastPath = true
	o.sim.Tiled = true
	for _, opt := range opts {
		if err := opt(o); err != nil {
			return nil, err
		}
	}
	if err := o.sim.Validate(); err != nil {
		return nil, err
	}
	return o, nil
}

// WithAlpha sets the weight of structural against label similarity
// (alpha = 1 ignores labels; requires [0, 1]).
func WithAlpha(alpha float64) Option {
	return func(o *options) error {
		if alpha < 0 || alpha > 1 {
			return fmt.Errorf("ems: alpha must be in [0,1], got %g", alpha)
		}
		o.sim.Alpha = alpha
		return nil
	}
}

// WithDecay sets the similarity decay constant c of the edge-agreement
// factor (requires (0, 1); the paper uses 0.8).
func WithDecay(c float64) Option {
	return func(o *options) error {
		if c <= 0 || c >= 1 {
			return fmt.Errorf("ems: decay must be in (0,1), got %g", c)
		}
		o.sim.C = c
		return nil
	}
}

// WithLabelSimilarity enables blending a typographic similarity into the
// structural one; combine with WithAlpha < 1 to give it weight.
func WithLabelSimilarity(sim LabelSimilarity) Option {
	return func(o *options) error {
		o.sim.Labels = sim
		return nil
	}
}

// WithEstimation switches to Algorithm 1 with a hand-picked cutover: the
// given number of exact iteration rounds followed by the closed-form
// estimation of Section 3.5. Iterations must be >= 0; larger trades time for
// accuracy. This replaces the default adaptive fast path, which picks the
// cutover round itself — prefer the default unless reproducing the paper's
// fixed-I experiments.
func WithEstimation(iterations int) Option {
	return func(o *options) error {
		if iterations < 0 {
			return fmt.Errorf("ems: estimation iterations must be >= 0, got %d", iterations)
		}
		o.sim.EstimateI = iterations
		o.sim.FastPath = false
		return nil
	}
}

// WithExact forces plain exact iteration to convergence, disabling the
// default fast path and any WithEstimation cutover. Results are then
// bit-identical at every worker count and match the paper's exact EMS;
// use it when reproducibility outweighs the fast path's certified error
// budget (Result.ErrorBound).
func WithExact() Option {
	return func(o *options) error {
		o.sim.EstimateI = -1
		o.sim.FastPath = false
		return nil
	}
}

// WithFastPath tunes the adaptive estimation-seeded fast path (on by
// default): exact Jacobi rounds run until the delta-decay ratio proves the
// geometric tail, then one closed-form estimation pass plus a certifying
// residual round replace the remaining iterations. budget is the per-pair
// absolute error the cutover detector aims for, in [0, 1); 0 picks the
// default (core.DefaultFastPathBudget). Every run certifies its actual
// worst-case error a posteriori in Result.ErrorBound, which is typically
// far below the budget. Overrides an earlier WithExact.
func WithFastPath(budget float64) Option {
	return func(o *options) error {
		if budget < 0 || budget >= 1 {
			return fmt.Errorf("ems: fast-path budget must be in [0,1), got %g", budget)
		}
		o.sim.FastPath = true
		o.sim.EstimateI = -1
		o.sim.FastPathBudget = budget
		return nil
	}
}

// WithoutPruning disables the early-convergence pruning of Proposition 2
// (results are unchanged; only more work is done). Useful for measuring the
// pruning benefit.
func WithoutPruning() Option {
	return func(o *options) error {
		o.sim.Prune = false
		return nil
	}
}

// WithDirection selects forward, backward, or averaged (Both, default)
// similarity propagation.
func WithDirection(d Direction) Option {
	return func(o *options) error {
		o.sim.Direction = d
		return nil
	}
}

// WithEpsilon sets the iteration convergence threshold.
func WithEpsilon(eps float64) Option {
	return func(o *options) error {
		if eps <= 0 {
			return fmt.Errorf("ems: epsilon must be > 0, got %g", eps)
		}
		o.sim.Epsilon = eps
		return nil
	}
}

// WithWorkers sets the number of goroutines the iteration engine splits
// each similarity round across. 0 (the default) picks GOMAXPROCS but stays
// serial on small instances; 1 forces the serial path. Results are
// bit-identical for every value — the rounds are Jacobi updates over the
// previous matrix, so rows are independent.
func WithWorkers(n int) Option {
	return func(o *options) error {
		if n < 0 {
			return fmt.Errorf("ems: workers must be >= 0, got %d", n)
		}
		o.sim.Workers = n
		return nil
	}
}

// WithContext makes the match call honor the context: cancellation is
// checked once per iteration round and once per row-chunk inside the
// parallel workers, so a running computation aborts within one round. The
// call then returns an error satisfying errors.Is(err, ErrStopped) that also
// wraps the context's cause (e.g. context.Canceled). The context never
// changes the numbers of a run it does not abort.
func WithContext(ctx context.Context) Option {
	return func(o *options) error {
		if ctx == nil {
			return fmt.Errorf("ems: context must not be nil")
		}
		o.ctx = ctx
		return nil
	}
}

// WithTimeout aborts the match call once the given wall-clock budget is
// spent, counted from the start of the call. It composes with WithContext:
// whichever expires first stops the computation. The returned error wraps
// both ErrStopped and context.DeadlineExceeded.
func WithTimeout(d time.Duration) Option {
	return func(o *options) error {
		if d <= 0 {
			return fmt.Errorf("ems: timeout must be > 0, got %v", d)
		}
		o.timeout = d
		return nil
	}
}

// WithMaxRounds caps iteration rounds for cyclic graphs.
func WithMaxRounds(n int) Option {
	return func(o *options) error {
		if n < 1 {
			return fmt.Errorf("ems: max rounds must be >= 1, got %d", n)
		}
		o.sim.MaxRounds = n
		return nil
	}
}

// WithMinFrequency filters dependency-graph edges below the threshold
// before matching (the minimum frequency control of Section 2); it trades
// accuracy for speed.
func WithMinFrequency(f float64) Option {
	return func(o *options) error {
		if f < 0 || f >= 1 {
			return fmt.Errorf("ems: min frequency must be in [0,1), got %g", f)
		}
		o.minFrequency = f
		return nil
	}
}

// WithSelectionThreshold drops selected correspondences whose similarity is
// below the threshold.
func WithSelectionThreshold(t float64) Option {
	return func(o *options) error {
		if t < 0 || t > 1 {
			return fmt.Errorf("ems: selection threshold must be in [0,1], got %g", t)
		}
		o.selectionThreshold = t
		return nil
	}
}

// WithMarkovWeighting builds dependency graphs with Markov transition
// probabilities (Ferreira et al.) instead of the paper's trace-normalized
// frequencies — an ablation of the paper's Definition 1 choice. The paper
// argues (and the ablation confirms) that conditional probabilities hide
// edge significance, so this is off by default.
func WithMarkovWeighting() Option {
	return func(o *options) error {
		o.markov = true
		return nil
	}
}

// WithSelectionStrategy chooses how correspondences are selected from the
// similarity matrix (default: the paper's maximum-total-similarity
// assignment).
func WithSelectionStrategy(s SelectionStrategy) Option {
	return func(o *options) error {
		switch s {
		case matching.MaxTotal, matching.Greedy, matching.Stable:
			o.strategy = s
			return nil
		default:
			return fmt.Errorf("ems: unknown selection strategy %v", s)
		}
	}
}

// WithDelta sets the minimum average-similarity improvement a composite
// merge must deliver (δ of Algorithm 2).
func WithDelta(delta float64) Option {
	return func(o *options) error {
		o.delta = delta
		return nil
	}
}

// WithCandidateDiscovery controls SEQ-pattern candidate discovery for
// composite matching: the minimum bidirectional link confidence, the
// maximum composite length, and an optional cap on the number of candidates
// (0 means unlimited).
func WithCandidateDiscovery(confidence float64, maxLen, maxCandidates int) Option {
	return func(o *options) error {
		if confidence <= 0 || confidence > 1 {
			return fmt.Errorf("ems: candidate confidence must be in (0,1], got %g", confidence)
		}
		if maxLen < 2 {
			return fmt.Errorf("ems: candidate max length must be >= 2, got %d", maxLen)
		}
		o.discover = composite.DiscoverOptions{Confidence: confidence, MaxLen: maxLen, MaxCandidates: maxCandidates}
		return nil
	}
}

// WithMaxMergeSteps caps accepted composite merges (0 means unlimited).
func WithMaxMergeSteps(n int) Option {
	return func(o *options) error {
		if n < 0 {
			return fmt.Errorf("ems: max merge steps must be >= 0, got %d", n)
		}
		o.maxMergeSteps = n
		return nil
	}
}

// WithoutCompositePruning disables the Uc (unchanged similarities) and Bd
// (upper bound) prunings of composite matching; results are unchanged, only
// slower. Useful for measuring the pruning benefit.
func WithoutCompositePruning() Option {
	return func(o *options) error {
		o.useUnchanged = false
		o.useBounds = false
		return nil
	}
}

// WithCompositePruning selects the two composite prunings individually:
// unchanged-similarity seeding (Proposition 4) and upper-bound aborts
// (Section 4.3).
func WithCompositePruning(unchanged, bounds bool) Option {
	return func(o *options) error {
		o.useUnchanged = unchanged
		o.useBounds = bounds
		return nil
	}
}
