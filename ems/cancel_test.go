package ems_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/ems"
	"repro/internal/core"
)

// TestWithContextCancelMidComputation: cancelling the context while the
// engine is inside an iteration round aborts the match within one round and
// surfaces ErrStopped wrapping context.Canceled.
func TestWithContextCancelMidComputation(t *testing.T) {
	l1, l2 := paperLogs()
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	restore := core.SetFailpoint(func(round int) {
		once.Do(func() {
			close(started)
			<-release
		})
	})
	defer restore()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := ems.Match(l1, l2, ems.WithContext(ctx))
		done <- err
	}()
	<-started // a round is in flight
	cancel()
	close(release)
	err := <-done
	if !errors.Is(err, ems.ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
}

// TestWithTimeoutExpires: a deadline shorter than the computation aborts it
// with ErrStopped wrapping context.DeadlineExceeded.
func TestWithTimeoutExpires(t *testing.T) {
	l1, l2 := paperLogs()
	restore := core.SetFailpoint(func(round int) {
		// Model a slow round so the 1ms budget is certainly exceeded by the
		// time the round's stop check runs.
		time.Sleep(20 * time.Millisecond)
	})
	defer restore()
	_, err := ems.Match(l1, l2, ems.WithTimeout(time.Millisecond))
	if !errors.Is(err, ems.ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want wrapped context.DeadlineExceeded", err)
	}
}

// TestWithTimeoutBenign: an ample deadline changes nothing — same numbers,
// no error.
func TestWithTimeoutBenign(t *testing.T) {
	l1, l2 := paperLogs()
	plain, err := ems.Match(l1, l2)
	if err != nil {
		t.Fatal(err)
	}
	timed, err := ems.Match(l1, l2, ems.WithTimeout(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.Sim {
		if plain.Sim[i] != timed.Sim[i] {
			t.Fatalf("timeout-armed result differs at %d", i)
		}
	}
}

// TestCancelOptionValidation: nil contexts and non-positive timeouts are
// rejected at option-build time.
func TestCancelOptionValidation(t *testing.T) {
	l1, l2 := paperLogs()
	if _, err := ems.Match(l1, l2, ems.WithContext(nil)); err == nil {
		t.Errorf("nil context accepted")
	}
	if _, err := ems.Match(l1, l2, ems.WithTimeout(0)); err == nil {
		t.Errorf("zero timeout accepted")
	}
	if _, err := ems.Match(l1, l2, ems.WithTimeout(-time.Second)); err == nil {
		t.Errorf("negative timeout accepted")
	}
}

// TestMatchCompositeHonorsContext: the greedy composite search also aborts
// on cancellation (between candidates and inside candidate computations).
func TestMatchCompositeHonorsContext(t *testing.T) {
	l1, l2 := paperLogs()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ems.MatchComposite(l1, l2, ems.WithContext(ctx))
	if !errors.Is(err, ems.ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
}

// TestMatchAllContextCancelMidPair: cancelling the batch context aborts the
// pair that is currently computing, not just the unstarted ones.
func TestMatchAllContextCancelMidPair(t *testing.T) {
	l1, l2 := paperLogs()
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	restore := core.SetFailpoint(func(round int) {
		once.Do(func() {
			close(started)
			<-release
		})
	})
	defer restore()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	outs := make(chan []ems.PairOutput, 1)
	go func() {
		outs <- ems.MatchAllContext(ctx, []ems.PairInput{{Name: "slow", Log1: l1, Log2: l2}}, 1, false)
	}()
	<-started
	cancel()
	close(release)
	got := <-outs
	if got[0].Result != nil {
		t.Fatalf("cancelled pair produced a result")
	}
	if !errors.Is(got[0].Err, ems.ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", got[0].Err)
	}
}

// TestMatchAllPanicContained: a panic while matching one pair becomes that
// pair's error; later pairs of the same batch still match normally.
func TestMatchAllPanicContained(t *testing.T) {
	l1, l2 := paperLogs()
	var tripped atomic.Bool
	restore := core.SetFailpoint(func(round int) {
		if tripped.CompareAndSwap(false, true) {
			panic("injected batch panic")
		}
	})
	defer restore()
	pairs := []ems.PairInput{
		{Name: "boom", Log1: l1, Log2: l2},
		{Name: "fine", Log1: l1, Log2: l1},
	}
	// One worker runs the pairs in order: the first trips the failpoint, the
	// second must be unaffected.
	outs := ems.MatchAll(pairs, 1, false)
	if outs[0].Err == nil || !strings.Contains(outs[0].Err.Error(), "panicked") {
		t.Fatalf("boom pair err = %v, want contained panic", outs[0].Err)
	}
	if outs[1].Err != nil {
		t.Fatalf("fine pair err = %v", outs[1].Err)
	}
	if outs[1].Result == nil || len(outs[1].Result.Mapping) == 0 {
		t.Fatalf("fine pair has no result")
	}
}
