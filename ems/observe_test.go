package ems_test

import (
	"context"
	"testing"

	"repro/ems"
	"repro/internal/obs"
)

// TestWithProgress checks that the observer fires once per round (plus one
// synthetic final observation when an estimation pass finishes the run),
// that the trajectory it reports matches the result, and that arming it
// changes no numbers.
func TestWithProgress(t *testing.T) {
	l1, l2 := paperLogs()
	base, err := ems.Match(l1, l2)
	if err != nil {
		t.Fatal(err)
	}
	var got []ems.RoundObservation
	res, err := ems.Match(l1, l2, ems.WithProgress(func(ob ems.RoundObservation) {
		got = append(got, ob)
	}))
	if err != nil {
		t.Fatal(err)
	}
	want := res.Rounds
	if res.Estimated {
		want++ // the post-estimation synthetic round boundary
	}
	if len(got) != want {
		t.Fatalf("%d observations for %d rounds (estimated=%v)", len(got), res.Rounds, res.Estimated)
	}
	last := got[len(got)-1]
	if res.Estimated {
		estimated := false
		for _, d := range last.Dirs {
			estimated = estimated || d.Estimated
		}
		if !estimated {
			t.Error("final observation of an estimated run reports no Estimated direction")
		}
	}
	evals := 0
	for _, d := range last.Dirs {
		evals += d.TotalEvals
	}
	if evals != res.Evaluations {
		t.Errorf("observed %d evaluations, result has %d", evals, res.Evaluations)
	}
	if res.Rounds != base.Rounds || res.Evaluations != base.Evaluations {
		t.Errorf("observer changed counters: (%d,%d) vs (%d,%d)",
			res.Rounds, res.Evaluations, base.Rounds, base.Evaluations)
	}
	for i := range base.Sim {
		if base.Sim[i] != res.Sim[i] {
			t.Fatalf("observer changed Sim[%d]", i)
		}
	}
}

func TestWithProgressNil(t *testing.T) {
	l1, l2 := paperLogs()
	if _, err := ems.Match(l1, l2, ems.WithProgress(nil)); err == nil {
		t.Fatal("nil observer accepted")
	}
}

// TestWithProgressCompositeIgnored: composite matching must run fine with a
// progress observer armed — it is documented as ignored, not an error.
func TestWithProgressCompositeIgnored(t *testing.T) {
	l1, l2 := paperLogs()
	fired := 0
	res, err := ems.MatchComposite(l1, l2, ems.WithProgress(func(ems.RoundObservation) { fired++ }))
	if err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Errorf("composite matching fired the observer %d times", fired)
	}
	if len(res.Mapping) == 0 {
		t.Error("empty composite mapping")
	}
}

// TestTraceThroughContext: a trace carried by the WithContext context must
// collect engine and facade spans, and closing them all leaves none open.
func TestTraceThroughContext(t *testing.T) {
	l1, l2 := paperLogs()
	tr := obs.NewTrace("test-trace")
	ctx := obs.ContextWithTrace(context.Background(), tr)
	if _, err := ems.Match(l1, l2, ems.WithContext(ctx)); err != nil {
		t.Fatal(err)
	}
	spans := tr.Snapshot()
	want := map[string]bool{"graph-build": false, "select": false}
	for _, s := range spans {
		if s.Open {
			t.Errorf("span %q left open", s.Name)
		}
		if _, ok := want[s.Name]; ok {
			want[s.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("span %q missing from trace (got %d spans)", name, len(spans))
		}
	}

	// Composite matching records discover/composite/select but no engine
	// internals.
	tr2 := obs.NewTrace("test-trace-2")
	ctx2 := obs.ContextWithTrace(context.Background(), tr2)
	if _, err := ems.MatchComposite(l1, l2, ems.WithContext(ctx2)); err != nil {
		t.Fatal(err)
	}
	names := map[string]int{}
	for _, s := range tr2.Snapshot() {
		names[s.Name]++
	}
	for _, n := range []string{"discover", "composite", "select"} {
		if names[n] != 1 {
			t.Errorf("composite trace: span %q seen %d times, want 1 (all: %v)", n, names[n], names)
		}
	}
	if names["agreement-cache"] != 0 {
		t.Errorf("composite trace leaked %d engine spans", names["agreement-cache"])
	}
}
