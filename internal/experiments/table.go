// Package experiments regenerates every figure of the paper's evaluation
// (Section 5, Figures 3-14) on the synthetic testbeds of package dataset.
// Each FigNN function returns one or more text tables mirroring the series
// the paper plots: matching f-measure, wall-clock time, and the iteration
// counts the pruning figures report. cmd/emsbench prints them all; the
// bench_test.go targets at the repository root time representative slices.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: one figure panel.
type Table struct {
	// Title identifies the figure panel, e.g. "Figure 3(a): f-measure".
	Title string
	// Columns holds the header cells; Rows the data cells.
	Columns []string
	Rows    [][]string
}

// AddRow appends a row of already formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	b.WriteString(t.Title)
	b.WriteByte('\n')
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// fmtF formats an f-measure cell.
func fmtF(v float64) string { return fmt.Sprintf("%.3f", v) }

// fmtMS formats a duration cell in milliseconds.
func fmtMS(ms float64) string { return fmt.Sprintf("%.2f", ms) }
