package experiments

import (
	"fmt"
	"time"

	"repro/internal/composite"
	"repro/internal/dataset"
)

// compositeDelta is the default merge-improvement threshold for the
// composite figures (Example 7 uses 0.005).
const compositeDelta = 0.005

// compositeTestbed builds pairs containing injected composite events. The
// dislocation is injection-style: the composite figures isolate the m:n
// matching challenge, not trace removal.
func (s Scale) compositeTestbed() ([]*dataset.Pair, error) {
	opts := dataset.TestbedOptions{
		Pairs:           s.Pairs,
		Events:          s.Events,
		Traces:          s.Traces,
		OpaqueFraction:  0.5,
		CompositeMerges: 2,
		Style:           dataset.StyleInject,
		Seed:            s.Seed,
	}
	return dataset.MakeTestbed(dataset.DSFB, opts)
}

// compositeMethods returns the approaches of Figures 10/11.
func compositeMethods(useLabels bool, maxCandidates int) []Method {
	return []Method{
		EMSComposite("EMS", useLabels, -1, true, true, compositeDelta, maxCandidates),
		EMSComposite("EMS+es", useLabels, 5, true, true, compositeDelta, maxCandidates),
		GEDComposite(useLabels, 1e-6, maxCandidates),
		OPQComposite(1e-6, maxCandidates),
		BHVComposite(useLabels, compositeDelta, maxCandidates),
	}
}

// figComposite runs the Figure 10/11 protocol.
func figComposite(title string, s Scale, useLabels bool) ([]*Table, error) {
	pairs, err := s.compositeTestbed()
	if err != nil {
		return nil, err
	}
	acc := &Table{Title: title + ": f-measure", Columns: []string{"method", "f-measure"}}
	tim := &Table{Title: title + ": time (ms/pair)", Columns: []string{"method", "time"}}
	for _, m := range compositeMethods(useLabels, 8) {
		meas, err := RunMethod(m, pairs)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m.Name, err)
		}
		acc.AddRow(m.Name, cellQuality(meas))
		tim.AddRow(m.Name, cellTime(meas))
	}
	return []*Table{acc, tim}, nil
}

// Fig10 reproduces Figure 10: composite matching on structure only.
func Fig10(s Scale) ([]*Table, error) {
	return figComposite("Figure 10: composite matching, structure only", s, false)
}

// Fig11 reproduces Figure 11: composite matching with typographic
// similarity.
func Fig11(s Scale) ([]*Table, error) {
	return figComposite("Figure 11: composite matching with typographic similarity", s, true)
}

// Fig12 reproduces Figure 12: the prune power of unchanged similarities
// (Uc) and similarity upper bounds (Bd) — formula evaluations and time for
// the four pruning configurations.
func Fig12(s Scale) ([]*Table, error) {
	pairs, err := s.compositeTestbed()
	if err != nil {
		return nil, err
	}
	evals := &Table{
		Title:   "Figure 12(a): total iterations (formula-1 evaluations)",
		Columns: []string{"pruning", "evaluations"},
	}
	tim := &Table{
		Title:   "Figure 12(b): time (ms/pair)",
		Columns: []string{"pruning", "time"},
	}
	variants := []struct {
		name   string
		uc, bd bool
	}{
		{"none", false, false},
		{"Uc", true, false},
		{"Bd", false, true},
		{"Uc+Bd", true, true},
	}
	for _, v := range variants {
		totalEvals := 0
		var totalTime time.Duration
		for _, p := range pairs {
			c1 := composite.Discover(p.Log1, composite.DefaultDiscoverOptions())
			c2 := composite.Discover(p.Log2, composite.DefaultDiscoverOptions())
			cfg := composite.DefaultConfig()
			cfg.Delta = compositeDelta
			cfg.UseUnchanged = v.uc
			cfg.UseBounds = v.bd
			start := time.Now()
			res, err := composite.Greedy(p.Log1, p.Log2, c1, c2, cfg)
			if err != nil {
				return nil, err
			}
			totalTime += time.Since(start)
			totalEvals += res.Stats.Evaluations
		}
		ms := float64(totalTime.Microseconds()) / float64(len(pairs)) / 1000
		evals.AddRow(v.name, fmt.Sprintf("%d", totalEvals))
		tim.AddRow(v.name, fmtMS(ms))
	}
	return []*Table{evals, tim}, nil
}

// Fig13 reproduces Figure 13: the effect of the merge threshold delta — a
// moderately large threshold maximizes f-measure while small thresholds
// accept false composites and cost much more time.
func Fig13(s Scale) ([]*Table, error) {
	pairs, err := s.compositeTestbed()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Figure 13: varying threshold delta",
		Columns: []string{"delta", "f-measure", "time (ms/pair)"},
	}
	for _, d := range []float64{0.05, 0.02, 0.01, 0.005, 0.002, 0.0005} {
		m := EMSComposite("EMS", false, -1, true, true, d, 8)
		meas, err := RunMethod(m, pairs)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.4f", d), fmtF(meas.Quality.FMeasure), fmtMS(meas.MeanMS))
	}
	return []*Table{t}, nil
}

// Fig14 reproduces Figure 14: more composite candidates improve f-measure
// at sharply growing cost.
func Fig14(s Scale) ([]*Table, error) {
	pairs, err := s.compositeTestbed()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Figure 14: varying candidate set size",
		Columns: []string{"candidates", "f-measure", "time (ms/pair)"},
	}
	for _, n := range []int{1, 2, 4, 8, 16} {
		m := EMSComposite("EMS", false, -1, true, true, compositeDelta, n)
		meas, err := RunMethod(m, pairs)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", n), fmtF(meas.Quality.FMeasure), fmtMS(meas.MeanMS))
	}
	return []*Table{t}, nil
}

// All runs every figure at the given scale and returns the tables in paper
// order. Fig8 sizes and Fig9 parameters scale with the preset. When emit is
// non-nil it is called with each table as soon as its figure completes, so
// long runs stream results.
func All(s Scale, full bool, emit func(*Table)) ([]*Table, error) {
	var out []*Table
	add := func(ts []*Table, err error) error {
		if err != nil {
			return err
		}
		if emit != nil {
			for _, t := range ts {
				emit(t)
			}
		}
		out = append(out, ts...)
		return nil
	}
	sizes := []int{10, 20, 30}
	f9events, f9ms := 30, []int{1, 2, 3}
	if full {
		sizes = []int{10, 20, 30, 50, 70, 100}
		f9events, f9ms = 60, []int{2, 4, 6, 8, 10}
	}
	steps := []func() error{
		func() error { t, err := Fig3(s); return add(t, err) },
		func() error { t, err := Fig4(s); return add(t, err) },
		func() error { t, err := Fig5(s); return add(t, err) },
		func() error { t, err := Fig6(s); return add(t, err) },
		func() error { t, err := Fig7(s); return add(t, err) },
		func() error { t, err := Fig8(s, sizes); return add(t, err) },
		func() error { t, err := Fig9(s, f9events, f9ms); return add(t, err) },
		func() error { t, err := Fig10(s); return add(t, err) },
		func() error { t, err := Fig11(s); return add(t, err) },
		func() error { t, err := Fig12(s); return add(t, err) },
		func() error { t, err := Fig13(s); return add(t, err) },
		func() error { t, err := Fig14(s); return add(t, err) },
	}
	for _, step := range steps {
		if err := step(); err != nil {
			return out, err
		}
	}
	return out, nil
}
