package experiments

import (
	"testing"
)

// compositeQuick shrinks the composite experiments further: the generic
// greedy around GED/OPQ recomputes baselines per candidate and is slow by
// design.
func compositeQuick() Scale { return Scale{Pairs: 2, Events: 10, Traces: 80, Seed: 3} }

// TestFig10Shape: EMS must match or beat the baselines on composite
// matching, and the estimation variant must be cheaper than exact EMS...
// the headline of Figures 10.
func TestFig10Shape(t *testing.T) {
	tables, err := Fig10(compositeQuick())
	if err != nil {
		t.Fatalf("Fig10: %v", err)
	}
	acc, tim := tables[0], tables[1]
	ems := cell(t, row(t, acc, "EMS")[1])
	for _, name := range []string{"GED", "BHV"} {
		r := row(t, acc, name)
		if r[1] == "DNF" {
			continue
		}
		if cell(t, r[1]) > ems+0.15 {
			t.Errorf("%s notably beats EMS on composite matching: %s vs %.3f", name, r[1], ems)
		}
	}
	// The estimation variant must not be slower than exact EMS by more
	// than noise.
	emsT := cell(t, row(t, tim, "EMS")[1])
	esT := cell(t, row(t, tim, "EMS+es")[1])
	if esT > emsT*2 {
		t.Errorf("EMS+es time %.2f far exceeds EMS %.2f", esT, emsT)
	}
}

// TestFig11Runs: the with-labels variant completes and keeps EMS at least
// as accurate as without labels is not guaranteed pairwise, so just check
// structure of the output.
func TestFig11Runs(t *testing.T) {
	tables, err := Fig11(compositeQuick())
	if err != nil {
		t.Fatalf("Fig11: %v", err)
	}
	if len(tables) != 2 {
		t.Fatalf("got %d tables, want 2", len(tables))
	}
	for _, name := range []string{"EMS", "EMS+es", "GED", "OPQ", "BHV"} {
		row(t, tables[0], name)
	}
}

// TestFig12PruningPower: both prunings individually and combined must not
// exceed the unpruned evaluation count, and the combination must be the
// cheapest or tied.
func TestFig12PruningPower(t *testing.T) {
	tables, err := Fig12(compositeQuick())
	if err != nil {
		t.Fatalf("Fig12: %v", err)
	}
	evals := tables[0]
	none := cell(t, row(t, evals, "none")[1])
	uc := cell(t, row(t, evals, "Uc")[1])
	bd := cell(t, row(t, evals, "Bd")[1])
	both := cell(t, row(t, evals, "Uc+Bd")[1])
	if uc > none || bd > none {
		t.Errorf("individual pruning increased evaluations: none=%v uc=%v bd=%v", none, uc, bd)
	}
	if both > uc+1e-9 || both > bd+1e-9 {
		t.Errorf("combined pruning worse than individual: both=%v uc=%v bd=%v", both, uc, bd)
	}
}

// TestFig13DeltaSweep: smaller delta must never be cheaper than the largest
// delta (more candidate merges are attempted and accepted).
func TestFig13DeltaSweep(t *testing.T) {
	tables, err := Fig13(compositeQuick())
	if err != nil {
		t.Fatalf("Fig13: %v", err)
	}
	tb := tables[0]
	if len(tb.Rows) < 3 {
		t.Fatalf("too few delta rows: %d", len(tb.Rows))
	}
	// f-measure at the best delta must be at least that of the extremes.
	best := 0.0
	for _, r := range tb.Rows {
		if v := cell(t, r[1]); v > best {
			best = v
		}
	}
	firstF := cell(t, tb.Rows[0][1])
	if best < firstF {
		t.Errorf("sweep inconsistent: best %.3f below first %.3f", best, firstF)
	}
}

// TestFig14CandidateSweep: more candidates must not reduce the best
// achievable f-measure dramatically, and time must grow from the smallest
// to the largest candidate set.
func TestFig14CandidateSweep(t *testing.T) {
	tables, err := Fig14(compositeQuick())
	if err != nil {
		t.Fatalf("Fig14: %v", err)
	}
	tb := tables[0]
	fFirst := cell(t, tb.Rows[0][1])
	fLast := cell(t, tb.Rows[len(tb.Rows)-1][1])
	if fLast < fFirst-0.15 {
		t.Errorf("more candidates reduced f-measure: %.3f -> %.3f", fFirst, fLast)
	}
}

// TestAllQuick drives the full harness end to end at a tiny scale.
func TestAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness sweep in -short mode")
	}
	s := compositeQuick()
	emitted := 0
	tables, err := All(s, false, func(*Table) { emitted++ })
	if err != nil {
		t.Fatalf("All: %v", err)
	}
	if len(tables) < 15 {
		t.Errorf("only %d tables produced", len(tables))
	}
	if emitted != len(tables) {
		t.Errorf("emit called %d times for %d tables", emitted, len(tables))
	}
	for _, tb := range tables {
		if tb.Title == "" || len(tb.Rows) == 0 {
			t.Errorf("empty table: %+v", tb)
		}
	}
}
