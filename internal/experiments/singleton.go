package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/matching"
)

// Scale sizes a figure run. Quick keeps unit tests fast; Full mirrors the
// paper's dataset sizes as closely as the synthetic generator allows.
type Scale struct {
	// Pairs is the number of log pairs per testbed/group.
	Pairs int
	// Events is the default model size.
	Events int
	// Traces per log.
	Traces int
	// Seed makes every dataset deterministic.
	Seed int64
}

// QuickScale is used by unit tests and benchmarks.
func QuickScale() Scale { return Scale{Pairs: 3, Events: 16, Traces: 100, Seed: 1} }

// FullScale approximates the paper's group sizes (DS-F 23, DS-B 22 pairs).
func FullScale() Scale { return Scale{Pairs: 15, Events: 20, Traces: 200, Seed: 1} }

func (s Scale) testbed(tb dataset.Testbed, composites int) ([]*dataset.Pair, error) {
	opts := dataset.TestbedOptions{
		Pairs:           s.Pairs,
		Events:          s.Events,
		Traces:          s.Traces,
		OpaqueFraction:  0.5,
		CompositeMerges: composites,
		Seed:            s.Seed,
	}
	return dataset.MakeTestbed(tb, opts)
}

var testbeds = []dataset.Testbed{dataset.DSF, dataset.DSB, dataset.DSFB}

// singletonMethods returns the five approaches of Figures 3/4.
func singletonMethods(useLabels bool) []Method {
	return []Method{
		EMS(useLabels),
		EMSEstimate(5, useLabels),
		GED(useLabels),
		OPQ(),
		BHV(useLabels),
	}
}

// figSingleton runs the Figure 3/4 protocol: five methods across the three
// dislocation testbeds, reporting f-measure and mean time.
func figSingleton(title string, s Scale, useLabels bool) ([]*Table, error) {
	acc := &Table{Title: title + ": f-measure", Columns: []string{"method", "DS-F", "DS-B", "DS-FB"}}
	tim := &Table{Title: title + ": time (ms/pair)", Columns: []string{"method", "DS-F", "DS-B", "DS-FB"}}
	groups := make(map[dataset.Testbed][]*dataset.Pair, len(testbeds))
	for _, tb := range testbeds {
		pairs, err := s.testbed(tb, 0)
		if err != nil {
			return nil, err
		}
		groups[tb] = pairs
	}
	for _, m := range singletonMethods(useLabels) {
		accRow := []string{m.Name}
		timRow := []string{m.Name}
		for _, tb := range testbeds {
			meas, err := RunMethod(m, groups[tb])
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", m.Name, tb, err)
			}
			accRow = append(accRow, cellQuality(meas))
			timRow = append(timRow, cellTime(meas))
		}
		acc.AddRow(accRow...)
		tim.AddRow(timRow...)
	}
	return []*Table{acc, tim}, nil
}

func cellQuality(m Measurement) string {
	if m.DNF > 0 && m.Quality.Found == 0 {
		return "DNF"
	}
	return fmtF(m.Quality.FMeasure)
}

func cellTime(m Measurement) string {
	if m.DNF > 0 && m.MeanMS == 0 {
		return "DNF"
	}
	return fmtMS(m.MeanMS)
}

// Fig3 reproduces Figure 3: matching singleton events on structure only.
func Fig3(s Scale) ([]*Table, error) {
	return figSingleton("Figure 3: singleton matching, structure only", s, false)
}

// Fig4 reproduces Figure 4: singleton matching integrating typographic
// similarity.
func Fig4(s Scale) ([]*Table, error) {
	return figSingleton("Figure 4: singleton matching with typographic similarity", s, true)
}

// Fig5 reproduces Figure 5: the estimation trade-off — f-measure and time
// as the number of exact iterations I grows from 0 to MAX.
func Fig5(s Scale) ([]*Table, error) {
	pairs, err := s.testbed(dataset.DSFB, 0)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Figure 5: estimation trade-off (DS-FB)",
		Columns: []string{"I", "f-measure", "time (ms/pair)"},
	}
	for _, i := range []int{0, 1, 2, 3, 5, 10} {
		meas, err := RunMethod(EMSEstimate(i, false), pairs)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", i), fmtF(meas.Quality.FMeasure), fmtMS(meas.MeanMS))
	}
	meas, err := RunMethod(EMS(false), pairs)
	if err != nil {
		return nil, err
	}
	t.AddRow("MAX", fmtF(meas.Quality.FMeasure), fmtMS(meas.MeanMS))
	return []*Table{t}, nil
}

// Fig6 reproduces Figure 6: the prune power of early convergence — total
// formula-(1) evaluations and time, pruned vs unpruned, over growing event
// counts.
func Fig6(s Scale) ([]*Table, error) {
	evals := &Table{
		Title:   "Figure 6(a): total iterations (formula-1 evaluations)",
		Columns: []string{"events", "pruned", "unpruned"},
	}
	tim := &Table{
		Title:   "Figure 6(b): time (ms/pair)",
		Columns: []string{"events", "pruned", "unpruned"},
	}
	for _, events := range []int{10, 20, 30, 40} {
		sz := s
		sz.Events = events
		pairs, err := sz.testbed(dataset.DSFB, 0)
		if err != nil {
			return nil, err
		}
		pe, pt, err := measureEvaluations(pairs, true)
		if err != nil {
			return nil, err
		}
		ue, ut, err := measureEvaluations(pairs, false)
		if err != nil {
			return nil, err
		}
		evals.AddRow(fmt.Sprintf("%d", events), fmt.Sprintf("%d", pe), fmt.Sprintf("%d", ue))
		tim.AddRow(fmt.Sprintf("%d", events), fmtMS(pt), fmtMS(ut))
	}
	return []*Table{evals, tim}, nil
}

// measureEvaluations runs exact EMS over the pairs and returns the total
// formula evaluations and mean time.
func measureEvaluations(pairs []*dataset.Pair, prune bool) (int, float64, error) {
	totalEvals := 0
	var totalTime time.Duration
	for _, p := range pairs {
		g1, g2, err := buildGraphs(p, true, 0)
		if err != nil {
			return 0, 0, err
		}
		cfg := core.DefaultConfig()
		cfg.Prune = prune
		start := time.Now()
		r, err := core.Compute(g1, g2, cfg)
		if err != nil {
			return 0, 0, err
		}
		totalTime += time.Since(start)
		totalEvals += r.Evaluations
	}
	ms := float64(totalTime.Microseconds()) / float64(len(pairs)) / 1000
	return totalEvals, ms, nil
}

// Fig7 reproduces Figure 7: the minimum frequency control — accuracy falls
// and time falls as low-frequency edges are filtered.
func Fig7(s Scale) ([]*Table, error) {
	pairs, err := s.testbed(dataset.DSFB, 0)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Figure 7: minimum frequency control (DS-FB)",
		Columns: []string{"threshold", "f-measure", "time (ms/pair)"},
	}
	for _, th := range []float64{0, 0.05, 0.10, 0.15, 0.20, 0.25} {
		meas, err := RunMethod(EMSMinFreq(th, false), pairs)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.2f", th), fmtF(meas.Quality.FMeasure), fmtMS(meas.MeanMS))
	}
	return []*Table{t}, nil
}

// Fig8 reproduces Figure 8: scalability over the number of events; OPQ
// becomes infeasible beyond 30 events (reported DNF).
func Fig8(s Scale, sizes []int) ([]*Table, error) {
	if len(sizes) == 0 {
		sizes = []int{10, 20, 30, 50, 70, 100}
	}
	cols := []string{"method"}
	for _, n := range sizes {
		cols = append(cols, fmt.Sprintf("%d", n))
	}
	acc := &Table{Title: "Figure 8(a): scalability, f-measure vs events", Columns: cols}
	tim := &Table{Title: "Figure 8(b): scalability, time (ms/pair) vs events", Columns: cols}
	groups := make([][]*dataset.Pair, len(sizes))
	for i, n := range sizes {
		opts := dataset.TestbedOptions{
			Pairs: s.Pairs, Events: n, Traces: s.Traces,
			OpaqueFraction: 1.0, Seed: s.Seed + int64(n),
		}
		pairs, err := dataset.MakeTestbed(dataset.None, opts)
		if err != nil {
			return nil, err
		}
		groups[i] = pairs
	}
	for _, m := range singletonMethods(false) {
		accRow := []string{m.Name}
		timRow := []string{m.Name}
		for i := range sizes {
			meas, err := RunMethod(m, groups[i])
			if err != nil {
				return nil, err
			}
			accRow = append(accRow, cellQuality(meas))
			timRow = append(timRow, cellTime(meas))
		}
		acc.AddRow(accRow...)
		tim.AddRow(timRow...)
	}
	return []*Table{acc, tim}, nil
}

// Fig9 reproduces Figure 9: accuracy as the number of dislocated events m
// grows (the first m events of every log-2 trace are removed).
func Fig9(s Scale, events int, ms []int) ([]*Table, error) {
	if events == 0 {
		events = 60
	}
	if len(ms) == 0 {
		ms = []int{2, 4, 6, 8, 10}
	}
	cols := []string{"method"}
	for _, m := range ms {
		cols = append(cols, fmt.Sprintf("m=%d", m))
	}
	acc := &Table{Title: "Figure 9: f-measure vs dislocated events", Columns: cols}
	groups := make([][]*dataset.Pair, len(ms))
	for i, m := range ms {
		opts := dataset.TestbedOptions{
			Pairs: s.Pairs, Events: events, Traces: s.Traces,
			Dislocation: m, Style: dataset.StyleTrim, OpaqueFraction: 1.0, Seed: s.Seed + int64(m),
		}
		pairs, err := dataset.MakeTestbed(dataset.DSB, opts)
		if err != nil {
			return nil, err
		}
		groups[i] = pairs
	}
	for _, m := range singletonMethods(false) {
		row := []string{m.Name}
		for i := range ms {
			meas, err := RunMethod(m, groups[i])
			if err != nil {
				return nil, err
			}
			row = append(row, cellQuality(meas))
		}
		acc.AddRow(row...)
	}
	return []*Table{acc}, nil
}

// avgQuality is a convenience for tests.
func avgQuality(m Method, pairs []*dataset.Pair) (matching.Quality, error) {
	meas, err := RunMethod(m, pairs)
	return meas.Quality, err
}
