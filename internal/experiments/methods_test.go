package experiments

import (
	"testing"

	"repro/internal/dataset"
)

func TestRunMethodStdDev(t *testing.T) {
	pairs, err := QuickScale().testbed(dataset.DSF, 0)
	if err != nil {
		t.Fatal(err)
	}
	meas, err := RunMethod(EMS(false), pairs)
	if err != nil {
		t.Fatal(err)
	}
	if meas.StdDevF < 0 || meas.StdDevF > 1 {
		t.Errorf("StdDevF = %g out of range", meas.StdDevF)
	}
	if meas.MeanMS <= 0 {
		t.Errorf("MeanMS = %g, want > 0", meas.MeanMS)
	}
}

// TestSFAndICoPMethods drives the extra-baseline constructors directly.
func TestSFAndICoPMethods(t *testing.T) {
	pairs, err := QuickScale().testbed(dataset.DSF, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{SF(false), SF(true), ICoP()} {
		meas, err := RunMethod(m, pairs[:1])
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if meas.Quality.Found == 0 && m.Name != "ICoP" {
			t.Errorf("%s found nothing", m.Name)
		}
	}
}

// TestGenericCompositeBaselines drives the GED/OPQ/BHV composite wrappers on
// one small pair each.
func TestGenericCompositeBaselines(t *testing.T) {
	s := Scale{Pairs: 1, Events: 10, Traces: 60, Seed: 5}
	pairs, err := s.compositeTestbed()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{
		GEDComposite(false, 1e-6, 2),
		GEDComposite(true, 1e-6, 2),
		OPQComposite(1e-6, 2),
		BHVComposite(false, 0.005, 2),
		BHVComposite(true, 0.005, 2),
	} {
		if _, err := RunMethod(m, pairs); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}
