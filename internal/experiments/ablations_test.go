package experiments

import "testing"

// TestAblations checks the headline design-choice results: the artificial
// event is essential on DS-FB, both-direction aggregation is at least as
// good as forward alone, and the Definition 1 weighting does not lose to
// Markov weighting.
func TestAblations(t *testing.T) {
	tables, err := Ablations(QuickScale())
	if err != nil {
		t.Fatalf("Ablations: %v", err)
	}
	tb := tables[0]
	with := cell(t, row(t, tb, "artificial event: with (EMS)")[1])
	without := cell(t, row(t, tb, "artificial event: without")[1])
	if without >= with {
		t.Errorf("artificial event did not help: with=%.3f without=%.3f", with, without)
	}
	fwd := cell(t, row(t, tb, "direction: forward")[1])
	both := cell(t, row(t, tb, "direction: both")[1])
	if both < fwd-0.05 {
		t.Errorf("both directions notably below forward: %.3f vs %.3f", both, fwd)
	}
	dep := cell(t, row(t, tb, "weighting: dependency (Def. 1)")[1])
	mk := cell(t, row(t, tb, "weighting: markov (Ferreira)")[1])
	if mk > dep+0.05 {
		t.Errorf("markov weighting notably beats Definition 1: %.3f vs %.3f", mk, dep)
	}
	for _, name := range []string{"selection: max-total", "selection: greedy", "selection: stable"} {
		row(t, tb, name) // present
	}
}
