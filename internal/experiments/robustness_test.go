package experiments

import "testing"

// TestRobustness checks structure and the headline: EMS at zero noise
// matches the Fig3 DS-FB result, and EMS stays at least as accurate as GED
// and BHV at every noise level.
func TestRobustness(t *testing.T) {
	tables, err := Robustness(QuickScale())
	if err != nil {
		t.Fatalf("Robustness: %v", err)
	}
	tb := tables[0]
	if len(tb.Rows) != 6 {
		t.Fatalf("got %d method rows", len(tb.Rows))
	}
	ems := row(t, tb, "EMS")
	// The repair pipeline must pay off where it matters: at the heaviest
	// noise level EMS+repair may not fall below plain EMS.
	rep := row(t, tb, "EMS+repair")
	last := len(tb.Columns) - 1
	if cell(t, rep[last]) < cell(t, ems[last]) {
		t.Errorf("EMS+repair below EMS at %s: %s vs %s", tb.Columns[last], rep[last], ems[last])
	}
	for _, other := range []string{"GED", "BHV"} {
		or := row(t, tb, other)
		for col := 1; col < len(tb.Columns); col++ {
			if cell(t, or[col]) > cell(t, ems[col])+0.05 {
				t.Errorf("%s beats EMS at %s: %s vs %s", other, tb.Columns[col], or[col], ems[col])
			}
		}
	}
	// Accuracy at the heaviest noise must not exceed the clean accuracy.
	clean := cell(t, ems[1])
	noisy := cell(t, ems[len(tb.Columns)-1])
	if noisy > clean+0.05 {
		t.Errorf("noise improved EMS: %.3f -> %.3f", clean, noisy)
	}
}
