package experiments

import (
	"errors"
	"math"
	"time"

	"repro/internal/baselines/bhv"
	"repro/internal/baselines/flood"
	"repro/internal/baselines/ged"
	"repro/internal/baselines/icop"
	"repro/internal/baselines/opq"
	"repro/internal/composite"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/depgraph"
	"repro/internal/label"
	"repro/internal/matching"
	"repro/internal/repair"
)

// selectionThreshold filters assignment pairs for similarity-matrix
// methods; GED and OPQ emit mappings directly.
const selectionThreshold = 0.25

// labelSim is the typographic similarity used by the "with labels"
// experiments (Figures 4 and 11): cosine similarity with 3-grams, following
// the paper's choice.
var labelSim = label.QGramCosine(3)

// labelAlpha is the structure weight when labels are enabled.
const labelAlpha = 0.7

// Method is one matching approach evaluated by the harness.
type Method struct {
	Name string
	// Match computes the correspondences for a pair. The error ErrDNF marks
	// an input the method cannot feasibly process (the paper reports OPQ
	// timing out beyond 30 events).
	Match func(p *dataset.Pair) (matching.Mapping, error)
}

// ErrDNF marks a method that could not finish an input within its
// feasibility envelope.
var ErrDNF = errors.New("experiments: method did not finish")

func buildGraphs(p *dataset.Pair, artificial bool, minFreq float64) (*depgraph.Graph, *depgraph.Graph, error) {
	g1, err := depgraph.Build(p.Log1)
	if err != nil {
		return nil, nil, err
	}
	g2, err := depgraph.Build(p.Log2)
	if err != nil {
		return nil, nil, err
	}
	if artificial {
		if g1, err = g1.AddArtificial(); err != nil {
			return nil, nil, err
		}
		if g2, err = g2.AddArtificial(); err != nil {
			return nil, nil, err
		}
	}
	if minFreq > 0 {
		g1 = g1.FilterMinFrequency(minFreq)
		g2 = g2.FilterMinFrequency(minFreq)
	}
	return g1, g2, nil
}

func emsConfig(useLabels bool, estimateI int) core.Config {
	cfg := core.DefaultConfig()
	cfg.EstimateI = estimateI
	if useLabels {
		cfg.Alpha = labelAlpha
		cfg.Labels = labelSim
	}
	return cfg
}

// EMS is the paper's exact event matching similarity.
func EMS(useLabels bool) Method {
	return emsVariant("EMS", useLabels, -1, 0)
}

// EMSEstimate is EMS+es: Algorithm 1 with the given number of exact rounds.
func EMSEstimate(iterations int, useLabels bool) Method {
	return emsVariant("EMS+es", useLabels, iterations, 0)
}

// EMSMinFreq is EMS with the minimum-frequency edge filter (Figure 7).
func EMSMinFreq(threshold float64, useLabels bool) Method {
	return emsVariant("EMS", useLabels, -1, threshold)
}

// EMSRepair is exact EMS behind the dirty-log repair pipeline: both logs
// pass through repair.Default (duplicate collapse, order repair,
// dependency-driven imputation) before dependency graphs are built, the way
// a caller would run Match with WithRepair.
func EMSRepair(useLabels bool) Method {
	return Method{
		Name: "EMS+repair",
		Match: func(p *dataset.Pair) (matching.Mapping, error) {
			pl := repair.Default(repair.Options{})
			l1, _, err := pl.Run(p.Log1)
			if err != nil {
				return nil, err
			}
			l2, _, err := pl.Run(p.Log2)
			if err != nil {
				return nil, err
			}
			rp := &dataset.Pair{Name: p.Name, Log1: l1, Log2: l2, Truth: p.Truth}
			g1, g2, err := buildGraphs(rp, true, 0)
			if err != nil {
				return nil, err
			}
			r, err := core.Compute(g1, g2, emsConfig(useLabels, -1))
			if err != nil {
				return nil, err
			}
			return matching.Select(r.Names1, r.Names2, r.Sim, selectionThreshold, nil)
		},
	}
}

func emsVariant(name string, useLabels bool, estimateI int, minFreq float64) Method {
	return Method{
		Name: name,
		Match: func(p *dataset.Pair) (matching.Mapping, error) {
			g1, g2, err := buildGraphs(p, true, minFreq)
			if err != nil {
				return nil, err
			}
			cfg := emsConfig(useLabels, estimateI)
			r, err := core.Compute(g1, g2, cfg)
			if err != nil {
				return nil, err
			}
			return matching.Select(r.Names1, r.Names2, r.Sim, selectionThreshold, nil)
		},
	}
}

// BHV is the behavioural-similarity baseline.
func BHV(useLabels bool) Method {
	return Method{
		Name: "BHV",
		Match: func(p *dataset.Pair) (matching.Mapping, error) {
			g1, g2, err := buildGraphs(p, false, 0)
			if err != nil {
				return nil, err
			}
			cfg := bhv.DefaultConfig()
			if useLabels {
				cfg.Alpha = labelAlpha
				cfg.Labels = labelSim
			}
			r, err := bhv.Compute(g1, g2, cfg)
			if err != nil {
				return nil, err
			}
			return matching.Select(r.Names1, r.Names2, r.Sim, selectionThreshold, nil)
		},
	}
}

// GED is the greedy graph-edit-distance baseline.
func GED(useLabels bool) Method {
	return Method{
		Name: "GED",
		Match: func(p *dataset.Pair) (matching.Mapping, error) {
			g1, g2, err := buildGraphs(p, false, 0)
			if err != nil {
				return nil, err
			}
			cfg := ged.DefaultConfig()
			if useLabels {
				cfg.Labels = labelSim
			}
			r, err := ged.Match(g1, g2, cfg)
			if err != nil {
				return nil, err
			}
			return r.Mapping, nil
		},
	}
}

// OPQ is the opaque-name matching baseline. It ignores labels by design and
// returns ErrDNF beyond its feasibility envelope.
func OPQ() Method {
	return Method{
		Name: "OPQ",
		Match: func(p *dataset.Pair) (matching.Mapping, error) {
			g1, g2, err := buildGraphs(p, false, 0)
			if err != nil {
				return nil, err
			}
			r, err := opq.Match(g1, g2, opq.DefaultConfig())
			if errors.Is(err, opq.ErrTooLarge) {
				return nil, ErrDNF
			}
			if err != nil {
				return nil, err
			}
			return r.Mapping, nil
		},
	}
}

// SF is similarity flooding (Melnik et al.), an additional local
// graph-matching baseline beyond the paper's three.
func SF(useLabels bool) Method {
	return Method{
		Name: "SF",
		Match: func(p *dataset.Pair) (matching.Mapping, error) {
			g1, g2, err := buildGraphs(p, false, 0)
			if err != nil {
				return nil, err
			}
			cfg := flood.DefaultConfig()
			if useLabels {
				cfg.Labels = labelSim
			}
			r, err := flood.Compute(g1, g2, cfg)
			if err != nil {
				return nil, err
			}
			return matching.Select(r.Names1, r.Names2, r.Sim, selectionThreshold, nil)
		},
	}
}

// ICoP is the simplified label-driven composite matcher after Weidlich et
// al. — an additional m:n baseline beyond the paper's figures. It needs
// labels by construction.
func ICoP() Method {
	return Method{
		Name: "ICoP",
		Match: func(p *dataset.Pair) (matching.Mapping, error) {
			return icop.Match(p.Log1, p.Log2, icop.DefaultConfig())
		},
	}
}

// EMSComposite runs greedy composite matching with EMS similarity
// (Algorithm 2), exact or estimated.
func EMSComposite(name string, useLabels bool, estimateI int, uc, bd bool, delta float64, maxCandidates int) Method {
	return Method{
		Name: name,
		Match: func(p *dataset.Pair) (matching.Mapping, error) {
			dopts := composite.DefaultDiscoverOptions()
			dopts.MaxCandidates = maxCandidates
			c1 := composite.Discover(p.Log1, dopts)
			c2 := composite.Discover(p.Log2, dopts)
			cfg := composite.Config{
				Sim:          emsConfig(useLabels, estimateI),
				Delta:        delta,
				UseUnchanged: uc,
				UseBounds:    bd,
			}
			res, err := composite.Greedy(p.Log1, p.Log2, c1, c2, cfg)
			if err != nil {
				return nil, err
			}
			return matching.Select(res.Final.Names1, res.Final.Names2, res.Final.Sim,
				selectionThreshold, composite.SplitName)
		},
	}
}

// scoredMatcher adapts a matching method to the generic composite greedy:
// Score is the objective (higher is better) and MatchLogs produces the
// final mapping on the merged logs.
type scoredMatcher struct {
	score func(p *dataset.Pair) (float64, error)
	match func(p *dataset.Pair) (matching.Mapping, error)
}

// genericComposite embeds a baseline in the same greedy candidate loop the
// paper evaluates: every candidate merge is scored by recomputing the
// baseline's objective from scratch, which is what makes GED and OPQ so
// expensive in Figures 10/11.
func genericComposite(name string, sm scoredMatcher, delta float64, maxCandidates int) Method {
	return Method{
		Name: name,
		Match: func(p *dataset.Pair) (matching.Mapping, error) {
			dopts := composite.DefaultDiscoverOptions()
			dopts.MaxCandidates = maxCandidates
			c1 := composite.Discover(p.Log1, dopts)
			c2 := composite.Discover(p.Log2, dopts)
			cur := &dataset.Pair{Name: p.Name, Log1: p.Log1, Log2: p.Log2}
			best, err := sm.score(cur)
			if err != nil {
				return nil, err
			}
			used1 := map[string]bool{}
			used2 := map[string]bool{}
			for {
				type trial struct {
					side int
					c    composite.Candidate
					p    *dataset.Pair
					s    float64
				}
				var top *trial
				consider := func(side int, c composite.Candidate) error {
					np := &dataset.Pair{Name: cur.Name, Log1: cur.Log1, Log2: cur.Log2}
					if side == 1 {
						np.Log1 = cur.Log1.MergeConsecutive(c.Events, composite.JoinName(c.Events))
					} else {
						np.Log2 = cur.Log2.MergeConsecutive(c.Events, composite.JoinName(c.Events))
					}
					s, err := sm.score(np)
					if err != nil {
						return err
					}
					if s >= best+delta && (top == nil || s > top.s) {
						top = &trial{side: side, c: c, p: np, s: s}
					}
					return nil
				}
				for _, c := range c1 {
					if c.Overlaps(used1) {
						continue
					}
					if err := consider(1, c); err != nil {
						return nil, err
					}
				}
				for _, c := range c2 {
					if c.Overlaps(used2) {
						continue
					}
					if err := consider(2, c); err != nil {
						return nil, err
					}
				}
				if top == nil {
					break
				}
				cur = top.p
				best = top.s
				marks := used1
				if top.side == 2 {
					marks = used2
				}
				for _, e := range top.c.Events {
					marks[e] = true
				}
			}
			return sm.match(cur)
		},
	}
}

// GEDComposite embeds GED in the generic greedy loop (objective: negated
// edit distance).
func GEDComposite(useLabels bool, delta float64, maxCandidates int) Method {
	cfg := ged.DefaultConfig()
	if useLabels {
		cfg.Labels = compositeAwareLabels
	}
	sm := scoredMatcher{
		score: func(p *dataset.Pair) (float64, error) {
			g1, g2, err := buildGraphs(p, false, 0)
			if err != nil {
				return 0, err
			}
			r, err := ged.Match(g1, g2, cfg)
			if err != nil {
				return 0, err
			}
			return -r.Distance, nil
		},
		match: func(p *dataset.Pair) (matching.Mapping, error) {
			g1, g2, err := buildGraphs(p, false, 0)
			if err != nil {
				return nil, err
			}
			r, err := ged.Match(g1, g2, cfg)
			if err != nil {
				return nil, err
			}
			return expandMapping(r.Mapping), nil
		},
	}
	return genericComposite("GED", sm, delta, maxCandidates)
}

// OPQComposite embeds OPQ in the generic greedy loop.
func OPQComposite(delta float64, maxCandidates int) Method {
	cfg := opq.DefaultConfig()
	sm := scoredMatcher{
		score: func(p *dataset.Pair) (float64, error) {
			g1, g2, err := buildGraphs(p, false, 0)
			if err != nil {
				return 0, err
			}
			r, err := opq.Match(g1, g2, cfg)
			if errors.Is(err, opq.ErrTooLarge) {
				return 0, ErrDNF
			}
			if err != nil {
				return 0, err
			}
			return -r.Distance, nil
		},
		match: func(p *dataset.Pair) (matching.Mapping, error) {
			g1, g2, err := buildGraphs(p, false, 0)
			if err != nil {
				return nil, err
			}
			r, err := opq.Match(g1, g2, cfg)
			if errors.Is(err, opq.ErrTooLarge) {
				return nil, ErrDNF
			}
			if err != nil {
				return nil, err
			}
			return expandMapping(r.Mapping), nil
		},
	}
	return genericComposite("OPQ", sm, delta, maxCandidates)
}

// BHVComposite embeds BHV in the generic greedy loop (objective: average
// similarity).
func BHVComposite(useLabels bool, delta float64, maxCandidates int) Method {
	cfg := bhv.DefaultConfig()
	if useLabels {
		cfg.Alpha = labelAlpha
		cfg.Labels = compositeAwareLabels
	}
	run := func(p *dataset.Pair) (*bhv.Result, error) {
		g1, g2, err := buildGraphs(p, false, 0)
		if err != nil {
			return nil, err
		}
		return bhv.Compute(g1, g2, cfg)
	}
	sm := scoredMatcher{
		score: func(p *dataset.Pair) (float64, error) {
			r, err := run(p)
			if err != nil {
				return 0, err
			}
			var sum float64
			for _, v := range r.Sim {
				sum += v
			}
			if len(r.Sim) == 0 {
				return 0, nil
			}
			return sum / float64(len(r.Sim)), nil
		},
		match: func(p *dataset.Pair) (matching.Mapping, error) {
			r, err := run(p)
			if err != nil {
				return nil, err
			}
			return matching.Select(r.Names1, r.Names2, r.Sim, selectionThreshold, composite.SplitName)
		},
	}
	return genericComposite("BHV", sm, delta, maxCandidates)
}

// compositeAwareLabels scores merged composite names by the best pairwise
// constituent similarity, so label-based baselines are not penalized by the
// join separator.
func compositeAwareLabels(a, b string) float64 {
	best := 0.0
	for _, x := range composite.SplitName(a) {
		for _, y := range composite.SplitName(b) {
			if v := labelSim(x, y); v > best {
				best = v
			}
		}
	}
	return best
}

// expandMapping splits merged composite names in a mapping back into
// constituent groups.
func expandMapping(m matching.Mapping) matching.Mapping {
	out := make(matching.Mapping, 0, len(m))
	for _, c := range m {
		var left, right []string
		for _, e := range c.Left {
			left = append(left, composite.SplitName(e)...)
		}
		for _, e := range c.Right {
			right = append(right, composite.SplitName(e)...)
		}
		out = append(out, matching.NewCorrespondence(left, right, c.Score))
	}
	return out.Sort()
}

// Measurement aggregates one method's performance over a pair group.
type Measurement struct {
	Quality matching.Quality
	// StdDevF is the standard deviation of per-pair f-measures, reported so
	// readers can judge the stability of the averages.
	StdDevF float64
	// MeanMS is the mean wall-clock matching time per pair in milliseconds.
	MeanMS float64
	// DNF reports how many pairs the method could not finish; those pairs
	// are excluded from Quality and MeanMS.
	DNF int
}

// RunMethod evaluates a method over a group of pairs.
func RunMethod(m Method, pairs []*dataset.Pair) (Measurement, error) {
	var out Measurement
	var qs []matching.Quality
	var total time.Duration
	for _, p := range pairs {
		start := time.Now()
		found, err := m.Match(p)
		elapsed := time.Since(start)
		if errors.Is(err, ErrDNF) {
			out.DNF++
			continue
		}
		if err != nil {
			return out, err
		}
		total += elapsed
		qs = append(qs, matching.Evaluate(found, p.Truth))
	}
	out.Quality = matching.AverageQuality(qs)
	if n := len(qs); n > 0 {
		out.MeanMS = float64(total.Microseconds()) / float64(n) / 1000
		var varSum float64
		for _, q := range qs {
			d := q.FMeasure - out.Quality.FMeasure
			varSum += d * d
		}
		out.StdDevF = math.Sqrt(varSum / float64(n))
	}
	return out, nil
}
