package experiments

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/matching"
)

// cell parses a numeric cell, failing the test on DNF or malformed values.
func cell(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

// row finds a table row by its first cell.
func row(t *testing.T, tb *Table, name string) []string {
	t.Helper()
	for _, r := range tb.Rows {
		if r[0] == name {
			return r
		}
	}
	t.Fatalf("row %q not found in %q", name, tb.Title)
	return nil
}

func TestTableString(t *testing.T) {
	tb := &Table{Title: "T", Columns: []string{"a", "bb"}}
	tb.AddRow("x", "y")
	s := tb.String()
	for _, want := range []string{"T\n", "a", "bb", "x", "y", "--"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table %q missing %q", s, want)
		}
	}
}

// TestFig3Shape checks the paper's headline claims on Figure 3: EMS has the
// best f-measure on every testbed, and BHV degrades sharply from DS-F to
// DS-B (it cannot handle dislocated trace beginnings).
func TestFig3Shape(t *testing.T) {
	tables, err := Fig3(QuickScale())
	if err != nil {
		t.Fatalf("Fig3: %v", err)
	}
	acc := tables[0]
	ems := row(t, acc, "EMS")
	for _, other := range []string{"GED", "OPQ", "BHV"} {
		or := row(t, acc, other)
		for col := 1; col <= 3; col++ {
			if cell(t, or[col]) > cell(t, ems[col])+1e-9 {
				t.Errorf("%s beats EMS on %s: %s vs %s", other, acc.Columns[col], or[col], ems[col])
			}
		}
	}
	// EMS+es approximates EMS; it must stay within noise of the exact run.
	es := row(t, acc, "EMS+es")
	for col := 1; col <= 3; col++ {
		if cell(t, es[col]) > cell(t, ems[col])+0.1 {
			t.Errorf("EMS+es exceeds EMS beyond noise on %s: %s vs %s", acc.Columns[col], es[col], ems[col])
		}
	}
	bhv := row(t, acc, "BHV")
	if cell(t, bhv[2]) >= cell(t, bhv[1]) && cell(t, bhv[1]) > 0 {
		t.Errorf("BHV did not degrade on DS-B: DS-F=%s DS-B=%s", bhv[1], bhv[2])
	}
}

// TestFig4LabelsHelp: with typographic similarity enabled, EMS accuracy
// must not fall below the structure-only run (the paper reports improvement
// for all approaches except OPQ).
func TestFig4LabelsHelp(t *testing.T) {
	t3, err := Fig3(QuickScale())
	if err != nil {
		t.Fatalf("Fig3: %v", err)
	}
	t4, err := Fig4(QuickScale())
	if err != nil {
		t.Fatalf("Fig4: %v", err)
	}
	for col := 1; col <= 3; col++ {
		base := cell(t, row(t, t3[0], "EMS")[col])
		with := cell(t, row(t, t4[0], "EMS")[col])
		if with < base-0.1 {
			t.Errorf("labels hurt EMS on %s: %.3f -> %.3f", t3[0].Columns[col], base, with)
		}
	}
}

// TestFig5EstimationTradeoff: f-measure must (weakly) improve from I=0 to
// MAX, and I=0 must be the cheapest configuration.
func TestFig5EstimationTradeoff(t *testing.T) {
	tables, err := Fig5(QuickScale())
	if err != nil {
		t.Fatalf("Fig5: %v", err)
	}
	tb := tables[0]
	first := tb.Rows[0]
	last := tb.Rows[len(tb.Rows)-1]
	if last[0] != "MAX" {
		t.Fatalf("last row is %q, want MAX", last[0])
	}
	if cell(t, last[1]) < cell(t, first[1])-0.05 {
		t.Errorf("MAX f-measure %s below I=0 %s", last[1], first[1])
	}
	// Time: I=0 must not be notably more expensive than MAX. At quick
	// scale both are sub-millisecond and dominated by constant setup costs,
	// so only flag a 2x blowup; the full-scale run in EXPERIMENTS.md shows
	// the order-of-magnitude gap.
	if cell(t, first[2]) > 2*cell(t, last[2]) {
		t.Errorf("I=0 time %s far exceeds MAX time %s", first[2], last[2])
	}
}

// TestFig6PruningReducesEvaluations: pruned runs evaluate formula (1)
// strictly fewer times on every size.
func TestFig6PruningReducesEvaluations(t *testing.T) {
	tables, err := Fig6(QuickScale())
	if err != nil {
		t.Fatalf("Fig6: %v", err)
	}
	evals := tables[0]
	for _, r := range evals.Rows {
		pruned, unpruned := cell(t, r[1]), cell(t, r[2])
		if pruned >= unpruned {
			t.Errorf("events=%s: pruned %v >= unpruned %v", r[0], pruned, unpruned)
		}
	}
}

// TestFig7FrequencyControl: the strictest threshold must not beat the
// unfiltered accuracy, confirming the accuracy/time trade-off direction.
func TestFig7FrequencyControl(t *testing.T) {
	tables, err := Fig7(QuickScale())
	if err != nil {
		t.Fatalf("Fig7: %v", err)
	}
	tb := tables[0]
	unfiltered := cell(t, tb.Rows[0][1])
	strictest := cell(t, tb.Rows[len(tb.Rows)-1][1])
	if strictest > unfiltered+0.05 {
		t.Errorf("strict filtering improved accuracy: %.3f -> %.3f", unfiltered, strictest)
	}
}

// TestFig8OPQInfeasible: OPQ must report DNF beyond 30 events while EMS
// still produces results.
func TestFig8OPQInfeasible(t *testing.T) {
	tables, err := Fig8(QuickScale(), []int{10, 40})
	if err != nil {
		t.Fatalf("Fig8: %v", err)
	}
	acc := tables[0]
	opq := row(t, acc, "OPQ")
	if opq[2] != "DNF" {
		t.Errorf("OPQ at 40 events = %q, want DNF", opq[2])
	}
	ems := row(t, acc, "EMS")
	if ems[2] == "DNF" {
		t.Errorf("EMS DNF at 40 events")
	}
	if cell(t, ems[2]) <= 0 {
		t.Errorf("EMS f-measure at 40 events = %s", ems[2])
	}
}

// TestFig9DislocationDegradation: every method loses accuracy as more
// events are removed, and EMS stays at least as accurate as BHV.
func TestFig9DislocationDegradation(t *testing.T) {
	tables, err := Fig9(QuickScale(), 20, []int{1, 4})
	if err != nil {
		t.Fatalf("Fig9: %v", err)
	}
	acc := tables[0]
	ems := row(t, acc, "EMS")
	bhv := row(t, acc, "BHV")
	for col := 1; col <= 2; col++ {
		if cell(t, bhv[col]) > cell(t, ems[col])+1e-9 {
			t.Errorf("BHV beats EMS at %s", acc.Columns[col])
		}
	}
}

func TestRunMethodCountsDNF(t *testing.T) {
	m := Method{Name: "dnf", Match: func(*dataset.Pair) (matching.Mapping, error) {
		return nil, ErrDNF
	}}
	pairs, err := QuickScale().testbed(dataset.DSF, 0)
	if err != nil {
		t.Fatal(err)
	}
	meas, err := RunMethod(m, pairs)
	if err != nil {
		t.Fatalf("RunMethod: %v", err)
	}
	if meas.DNF != len(pairs) {
		t.Errorf("DNF = %d, want %d", meas.DNF, len(pairs))
	}
	if cellQuality(meas) != "DNF" || cellTime(meas) != "DNF" {
		t.Errorf("cells = %q/%q, want DNF", cellQuality(meas), cellTime(meas))
	}
}
