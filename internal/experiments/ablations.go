package experiments

import (
	"fmt"

	"repro/internal/baselines/bhv"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/depgraph"
	"repro/internal/matching"
)

// Ablations measures the design choices DESIGN.md calls out, each isolated
// on the DS-FB testbed (the hardest dislocation setting):
//
//   - the artificial event v^X (EMS vs the same propagation without it),
//   - the propagation direction (forward / backward / both),
//   - the graph weighting (Definition 1 frequencies vs Markov transition
//     probabilities),
//   - the correspondence selection strategy (max-total / greedy / stable).
func Ablations(s Scale) ([]*Table, error) {
	pairs, err := s.testbed(dataset.DSFB, 0)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Ablations (DS-FB): design choices of the paper",
		Columns: []string{"variant", "f-measure", "time (ms/pair)"},
	}
	add := func(name string, m Method) error {
		meas, err := RunMethod(m, pairs)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		t.AddRow(name, cellQuality(meas), cellTime(meas))
		return nil
	}

	// Artificial event: EMS (with) vs BHV-style propagation (without).
	if err := add("artificial event: with (EMS)", EMS(false)); err != nil {
		return nil, err
	}
	noArt := Method{Name: "no-artificial", Match: func(p *dataset.Pair) (matching.Mapping, error) {
		g1, g2, err := buildGraphs(p, false, 0)
		if err != nil {
			return nil, err
		}
		r, err := bhv.Compute(g1, g2, bhv.DefaultConfig())
		if err != nil {
			return nil, err
		}
		return matching.Select(r.Names1, r.Names2, r.Sim, selectionThreshold, nil)
	}}
	if err := add("artificial event: without", noArt); err != nil {
		return nil, err
	}

	// Directions.
	for _, d := range []core.Direction{core.Forward, core.Backward, core.Both} {
		dir := d
		m := Method{Name: "dir-" + d.String(), Match: func(p *dataset.Pair) (matching.Mapping, error) {
			g1, g2, err := buildGraphs(p, true, 0)
			if err != nil {
				return nil, err
			}
			cfg := core.DefaultConfig()
			cfg.Direction = dir
			r, err := core.Compute(g1, g2, cfg)
			if err != nil {
				return nil, err
			}
			return matching.Select(r.Names1, r.Names2, r.Sim, selectionThreshold, nil)
		}}
		if err := add("direction: "+d.String(), m); err != nil {
			return nil, err
		}
	}

	// Graph weighting.
	markov := Method{Name: "markov", Match: func(p *dataset.Pair) (matching.Mapping, error) {
		g1, err := depgraph.BuildMarkov(p.Log1)
		if err != nil {
			return nil, err
		}
		g2, err := depgraph.BuildMarkov(p.Log2)
		if err != nil {
			return nil, err
		}
		if g1, err = g1.AddArtificial(); err != nil {
			return nil, err
		}
		if g2, err = g2.AddArtificial(); err != nil {
			return nil, err
		}
		r, err := core.Compute(g1, g2, core.DefaultConfig())
		if err != nil {
			return nil, err
		}
		return matching.Select(r.Names1, r.Names2, r.Sim, selectionThreshold, nil)
	}}
	if err := add("weighting: dependency (Def. 1)", EMS(false)); err != nil {
		return nil, err
	}
	if err := add("weighting: markov (Ferreira)", markov); err != nil {
		return nil, err
	}

	// An additional local baseline beyond the paper's three: similarity
	// flooding [Melnik et al.], with and without labels. Like GED/OPQ it
	// evaluates local agreement and misses dislocated matches.
	if err := add("extra baseline: SF (opaque)", SF(false)); err != nil {
		return nil, err
	}
	if err := add("extra baseline: SF (labels)", SF(true)); err != nil {
		return nil, err
	}

	// Composite extras: the label-driven ICoP-style matcher on the
	// composite testbed, against EMS with and without labels — the paper's
	// related-work claim that label-only m:n matching is "noneffective on
	// opaque event names" made measurable.
	cpairs, err := s.compositeTestbed()
	if err != nil {
		return nil, err
	}
	addOn := func(name string, m Method, pairs []*dataset.Pair) error {
		meas, err := RunMethod(m, pairs)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		t.AddRow(name, cellQuality(meas), cellTime(meas))
		return nil
	}
	if err := addOn("composite: EMS (opaque)", EMSComposite("EMS", false, -1, true, true, compositeDelta, 8), cpairs); err != nil {
		return nil, err
	}
	if err := addOn("composite: ICoP (labels)", ICoP(), cpairs); err != nil {
		return nil, err
	}
	if err := addOn("composite: EMS (labels)", EMSComposite("EMS", true, -1, true, true, compositeDelta, 8), cpairs); err != nil {
		return nil, err
	}

	// Selection strategies.
	for _, st := range []matching.Strategy{matching.MaxTotal, matching.Greedy, matching.Stable} {
		strat := st
		m := Method{Name: "sel-" + st.String(), Match: func(p *dataset.Pair) (matching.Mapping, error) {
			g1, g2, err := buildGraphs(p, true, 0)
			if err != nil {
				return nil, err
			}
			r, err := core.Compute(g1, g2, core.DefaultConfig())
			if err != nil {
				return nil, err
			}
			return matching.SelectWith(strat, r.Names1, r.Names2, r.Sim, selectionThreshold, nil)
		}}
		if err := add("selection: "+st.String(), m); err != nil {
			return nil, err
		}
	}
	return []*Table{t}, nil
}
