package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/eventlog"
)

// Robustness is an extension experiment beyond the paper: it corrupts log 2
// of every DS-FB pair with increasing recording noise (dropped, swapped and
// duplicated events) and reports how each matcher's accuracy degrades.
// Real event logs are noisy; a matcher whose statistics aggregate over
// whole logs (EMS) should degrade more gracefully than one keyed to exact
// local patterns.
func Robustness(s Scale) ([]*Table, error) {
	base, err := s.testbed(dataset.DSFB, 0)
	if err != nil {
		return nil, err
	}
	levels := []float64{0, 0.02, 0.05, 0.10, 0.20}
	cols := []string{"method"}
	for _, lv := range levels {
		cols = append(cols, fmt.Sprintf("noise=%.2f", lv))
	}
	t := &Table{Title: "Robustness (extension): f-measure vs recording noise (DS-FB)", Columns: cols}
	groups := make([][]*dataset.Pair, len(levels))
	for i, lv := range levels {
		rng := rand.New(rand.NewSource(s.Seed + int64(i*1000)))
		pairs := make([]*dataset.Pair, len(base))
		for j, p := range base {
			noisy, err := eventlog.AddNoise(rng, p.Log2, eventlog.NoiseOptions{
				DropProb: lv, SwapProb: lv, DupProb: lv / 2,
			})
			if err != nil {
				return nil, err
			}
			pairs[j] = &dataset.Pair{Name: p.Name, Log1: p.Log1, Log2: noisy, Truth: p.Truth}
		}
		groups[i] = pairs
	}
	for _, m := range []Method{EMS(false), EMSRepair(false), EMSEstimate(5, false), GED(false), BHV(false), SF(false)} {
		row := []string{m.Name}
		for i := range levels {
			meas, err := RunMethod(m, groups[i])
			if err != nil {
				return nil, err
			}
			row = append(row, cellQuality(meas))
		}
		t.AddRow(row...)
	}
	return []*Table{t}, nil
}
