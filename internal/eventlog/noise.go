package eventlog

import (
	"fmt"
	"math/rand"
)

// NoiseOptions controls random log corruption, modeling the recording
// imperfections of real systems: lost events, out-of-order timestamps and
// accidental duplicates.
type NoiseOptions struct {
	// DropProb is the per-event probability of being dropped.
	DropProb float64
	// SwapProb is the per-position probability of swapping an event with
	// its successor (local ordering noise).
	SwapProb float64
	// DupProb is the per-event probability of being recorded twice.
	DupProb float64
}

// Validate checks the probabilities.
func (o NoiseOptions) Validate() error {
	for _, p := range []float64{o.DropProb, o.SwapProb, o.DupProb} {
		if p < 0 || p > 1 {
			return fmt.Errorf("eventlog: noise probability %g outside [0,1]", p)
		}
	}
	return nil
}

// AddNoise returns a copy of the log with random corruption applied.
// Traces never become empty: a trace whose events were all dropped keeps
// one surviving event.
func AddNoise(rng *rand.Rand, l *Log, opts NoiseOptions) (*Log, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	out := New(l.Name)
	for _, t := range l.Traces {
		nt := make(Trace, 0, len(t)+2)
		for _, e := range t {
			if rng.Float64() < opts.DropProb {
				continue
			}
			nt = append(nt, e)
			if rng.Float64() < opts.DupProb {
				nt = append(nt, e)
			}
		}
		if len(nt) == 0 {
			nt = append(nt, t[rng.Intn(len(t))])
		}
		for i := 0; i+1 < len(nt); i++ {
			if rng.Float64() < opts.SwapProb {
				nt[i], nt[i+1] = nt[i+1], nt[i]
			}
		}
		out.Append(nt)
	}
	return out, nil
}
