package eventlog

import (
	"bufio"
	"encoding/csv"
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteCSV writes the log in a two-column CSV format: caseID,event. Rows are
// grouped by trace; trace i gets case id "case-i". The format round-trips
// through ReadCSV.
func WriteCSV(w io.Writer, l *Log) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"case", "event"}); err != nil {
		return fmt.Errorf("eventlog: write csv header: %w", err)
	}
	for i, t := range l.Traces {
		id := fmt.Sprintf("case-%d", i)
		for _, e := range t {
			if err := cw.Write([]string{id, e}); err != nil {
				return fmt.Errorf("eventlog: write csv row: %w", err)
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("eventlog: flush csv: %w", err)
	}
	return nil
}

// ReadCSV parses a two-column caseID,event CSV (with header) into a log.
// Events of the same case are grouped into one trace in row order; traces
// are emitted in order of first appearance of their case id. Lines longer
// than MaxLineBytes and fields longer than MaxFieldBytes are rejected with a
// *LimitError before they can be buffered whole.
func ReadCSV(r io.Reader, name string) (*Log, error) {
	cr := csv.NewReader(bufio.NewReader(limitLines(r)))
	cr.FieldsPerRecord = 2
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("eventlog: read csv: %w", err)
	}
	for _, row := range rows {
		if len(row[0]) > MaxFieldBytes || len(row[1]) > MaxFieldBytes {
			return nil, fmt.Errorf("eventlog: read csv: %w",
				&LimitError{Format: "csv", What: "field", Limit: MaxFieldBytes})
		}
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("eventlog: read csv: empty input")
	}
	if !strings.EqualFold(rows[0][0], "case") {
		return nil, fmt.Errorf("eventlog: read csv: missing case,event header (got %q,%q)", rows[0][0], rows[0][1])
	}
	l := New(name)
	index := make(map[string]int)
	for _, row := range rows[1:] {
		id, ev := row[0], row[1]
		if ev == "" {
			return nil, fmt.Errorf("eventlog: read csv: empty event name for case %q", id)
		}
		i, ok := index[id]
		if !ok {
			i = len(l.Traces)
			index[id] = i
			l.Traces = append(l.Traces, nil)
		}
		l.Traces[i] = append(l.Traces[i], ev)
	}
	return l, nil
}

// xmlLog is the XES-like XML representation of a log. It carries only the
// control-flow perspective (event names), which is all the matcher needs.
type xmlLog struct {
	XMLName xml.Name   `xml:"log"`
	Name    string     `xml:"name,attr"`
	Traces  []xmlTrace `xml:"trace"`
}

type xmlTrace struct {
	Events []xmlEvent `xml:"event"`
}

type xmlEvent struct {
	Name string `xml:"name,attr"`
}

// WriteXML writes the log in a minimal XES-like XML dialect.
func WriteXML(w io.Writer, l *Log) error {
	x := xmlLog{Name: l.Name}
	for _, t := range l.Traces {
		xt := xmlTrace{Events: make([]xmlEvent, len(t))}
		for i, e := range t {
			xt.Events[i] = xmlEvent{Name: e}
		}
		x.Traces = append(x.Traces, xt)
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(x); err != nil {
		return fmt.Errorf("eventlog: write xml: %w", err)
	}
	return nil
}

// ReadXML parses a log written by WriteXML. Oversized tags and event names
// are rejected with a *LimitError (see MaxFieldBytes).
func ReadXML(r io.Reader) (*Log, error) {
	var x xmlLog
	if err := xml.NewDecoder(limitXMLRuns(r, "xml")).Decode(&x); err != nil {
		return nil, fmt.Errorf("eventlog: read xml: %w", err)
	}
	l := New(x.Name)
	for _, xt := range x.Traces {
		t := make(Trace, len(xt.Events))
		for i, xe := range xt.Events {
			if xe.Name == "" {
				return nil, fmt.Errorf("eventlog: read xml: trace %d event %d has empty name", len(l.Traces), i)
			}
			if len(xe.Name) > MaxFieldBytes {
				return nil, fmt.Errorf("eventlog: read xml: %w",
					&LimitError{Format: "xml", What: "event name", Limit: MaxFieldBytes})
			}
			t[i] = xe.Name
		}
		l.Traces = append(l.Traces, t)
	}
	return l, nil
}

// Summary returns a short human-readable description of the log: trace
// count, distinct event count, and the most frequent events.
func Summary(l *Log) string {
	st := CollectStats(l)
	type ef struct {
		e Event
		f float64
	}
	top := make([]ef, 0, len(st.NodeFreq))
	for e, f := range st.NodeFreq {
		top = append(top, ef{e, f})
	}
	sort.Slice(top, func(i, j int) bool {
		if top[i].f != top[j].f {
			return top[i].f > top[j].f
		}
		return top[i].e < top[j].e
	})
	var b strings.Builder
	fmt.Fprintf(&b, "log %q: %d traces, %d distinct events", l.Name, l.Len(), len(st.NodeFreq))
	n := min(5, len(top))
	if n > 0 {
		b.WriteString("; top:")
		for _, t := range top[:n] {
			fmt.Fprintf(&b, " %s(%.2f)", t.e, t.f)
		}
	}
	return b.String()
}
