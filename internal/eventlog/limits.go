package eventlog

import (
	"fmt"
	"io"
)

// Size caps for the log readers. Adversarial input — a CSV "line" of
// gigabytes without a newline, an XES attribute value of arbitrary length —
// would otherwise make the underlying parsers buffer the whole run in
// memory. Legitimate logs sit orders of magnitude below these limits.
const (
	// MaxLineBytes caps one physical CSV line.
	MaxLineBytes = 1 << 20
	// MaxFieldBytes caps one CSV field or XML/XES event name.
	MaxFieldBytes = 64 << 10
	// maxXMLRunBytes caps the distance between consecutive '<' bytes in an
	// XML document, which bounds how much any single tag (and therefore any
	// attribute value) or text run can make the decoder buffer. It leaves
	// room for a maximum-size name plus attribute syntax around it.
	maxXMLRunBytes = MaxFieldBytes * 2
)

// LimitError reports input that exceeds one of the reader size caps.
type LimitError struct {
	// Format is the reader that hit the cap: "csv", "xml" or "xes".
	Format string
	// What names the capped unit: "line", "field", "event name" or "tag".
	What string
	// Limit is the cap in bytes.
	Limit int
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("eventlog: %s %s exceeds %d bytes", e.Format, e.What, e.Limit)
}

// delimLimitReader passes the stream through until more than limit bytes
// arrive without the delimiter byte, then fails with lerr. It runs in front
// of the parser's own buffering, so the parser never gets the chance to
// accumulate an unbounded run.
type delimLimitReader struct {
	r     io.Reader
	delim byte
	limit int
	lerr  *LimitError
	run   int
}

func (d *delimLimitReader) Read(p []byte) (int, error) {
	n, err := d.r.Read(p)
	for i, b := range p[:n] {
		if b == d.delim {
			d.run = 0
			continue
		}
		if d.run++; d.run > d.limit {
			// Hand the parser the bytes up to the offending one along with
			// the error; it aborts either way.
			return i, d.lerr
		}
	}
	return n, err
}

// limitLines caps physical line length for the CSV reader.
func limitLines(r io.Reader) io.Reader {
	return &delimLimitReader{
		r: r, delim: '\n', limit: MaxLineBytes,
		lerr: &LimitError{Format: "csv", What: "line", Limit: MaxLineBytes},
	}
}

// limitXMLRuns caps tag/text runs for the XML-based readers.
func limitXMLRuns(r io.Reader, format string) io.Reader {
	return &delimLimitReader{
		r: r, delim: '<', limit: maxXMLRunBytes,
		lerr: &LimitError{Format: format, What: "tag", Limit: maxXMLRunBytes},
	}
}
