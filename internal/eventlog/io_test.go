package eventlog

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	l := sampleLog()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, l); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf, "sample")
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if !reflect.DeepEqual(got.Traces, l.Traces) {
		t.Errorf("round trip mismatch: got %v want %v", got.Traces, l.Traces)
	}
}

func TestReadCSVInterleavedCases(t *testing.T) {
	in := "case,event\nc1,a\nc2,x\nc1,b\nc2,y\n"
	l, err := ReadCSV(strings.NewReader(in), "t")
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	want := []Trace{{"a", "b"}, {"x", "y"}}
	if !reflect.DeepEqual(l.Traces, want) {
		t.Errorf("traces = %v, want %v", l.Traces, want)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"no header", "c1,a\n"},
		{"empty event", "case,event\nc1,\n"},
		{"wrong columns", "case,event\nc1,a,b\n"},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.in), "t"); err == nil {
			t.Errorf("%s: error expected, got nil", c.name)
		}
	}
}

func TestXMLRoundTrip(t *testing.T) {
	l := sampleLog()
	var buf bytes.Buffer
	if err := WriteXML(&buf, l); err != nil {
		t.Fatalf("WriteXML: %v", err)
	}
	got, err := ReadXML(&buf)
	if err != nil {
		t.Fatalf("ReadXML: %v", err)
	}
	if got.Name != l.Name {
		t.Errorf("name = %q, want %q", got.Name, l.Name)
	}
	if !reflect.DeepEqual(got.Traces, l.Traces) {
		t.Errorf("round trip mismatch: got %v want %v", got.Traces, l.Traces)
	}
}

func TestReadXMLRejectsEmptyName(t *testing.T) {
	in := `<log name="x"><trace><event name=""/></trace></log>`
	if _, err := ReadXML(strings.NewReader(in)); err == nil {
		t.Errorf("error expected for empty event name")
	}
}

func TestSummary(t *testing.T) {
	s := Summary(sampleLog())
	for _, want := range []string{"4 traces", "3 distinct events", "b(1.00)"} {
		if !strings.Contains(s, want) {
			t.Errorf("Summary %q missing %q", s, want)
		}
	}
}
