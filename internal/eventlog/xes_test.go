package eventlog

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestXESRoundTrip(t *testing.T) {
	l := sampleLog()
	var buf bytes.Buffer
	if err := WriteXES(&buf, l); err != nil {
		t.Fatalf("WriteXES: %v", err)
	}
	got, err := ReadXES(&buf)
	if err != nil {
		t.Fatalf("ReadXES: %v", err)
	}
	if got.Name != l.Name {
		t.Errorf("name = %q, want %q", got.Name, l.Name)
	}
	if !reflect.DeepEqual(got.Traces, l.Traces) {
		t.Errorf("traces = %v, want %v", got.Traces, l.Traces)
	}
}

func TestReadXESExternalDocument(t *testing.T) {
	// The shape ProM and friends emit: extra attributes interleaved with
	// concept:name, xmlns on the root, date/int attributes ignored.
	in := `<?xml version="1.0" encoding="UTF-8"?>
<log xes.version="1.0" xmlns="http://www.xes-standard.org/">
  <string key="concept:name" value="orders"/>
  <trace>
    <string key="concept:name" value="case-1"/>
    <event>
      <string key="org:resource" value="alice"/>
      <string key="concept:name" value="register order"/>
    </event>
    <event>
      <string key="concept:name" value="ship order"/>
      <string key="lifecycle:transition" value="complete"/>
    </event>
  </trace>
</log>`
	l, err := ReadXES(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadXES: %v", err)
	}
	if l.Name != "orders" {
		t.Errorf("log name = %q", l.Name)
	}
	want := Trace{"register order", "ship order"}
	if len(l.Traces) != 1 || !reflect.DeepEqual(l.Traces[0], want) {
		t.Errorf("traces = %v, want [%v]", l.Traces, want)
	}
}

func TestReadXESMissingConceptName(t *testing.T) {
	in := `<log><trace><event><string key="org:resource" value="bob"/></event></trace></log>`
	if _, err := ReadXES(strings.NewReader(in)); err == nil {
		t.Errorf("event without concept:name accepted")
	}
}

func TestReadXESSkipsEmptyTraces(t *testing.T) {
	in := `<log><trace></trace><trace><event><string key="concept:name" value="a"/></event></trace></log>`
	l, err := ReadXES(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadXES: %v", err)
	}
	if l.Len() != 1 {
		t.Errorf("traces = %d, want 1 (empty trace skipped)", l.Len())
	}
}

func TestWriteXESHasHeaderAndCaseNames(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteXES(&buf, sampleLog()); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"<?xml", "concept:name", "case-0"} {
		if !strings.Contains(s, want) {
			t.Errorf("XES output missing %q", want)
		}
	}
}
