package eventlog

import (
	"encoding/xml"
	"fmt"
	"io"
)

// This file implements the standard XES interchange format (IEEE 1849) at
// the level the matcher needs: the control-flow perspective, i.e. the
// concept:name attribute of each event. Real process-mining tools (ProM,
// Disco, Celonis exports) can exchange logs with this package directly.

type xesLog struct {
	XMLName xml.Name   `xml:"log"`
	Attrs   []xesAttr  `xml:"string"`
	Traces  []xesTrace `xml:"trace"`
}

type xesTrace struct {
	Attrs  []xesAttr  `xml:"string"`
	Events []xesEvent `xml:"event"`
}

type xesEvent struct {
	Attrs []xesAttr `xml:"string"`
}

type xesAttr struct {
	Key   string `xml:"key,attr"`
	Value string `xml:"value,attr"`
}

func attrValue(attrs []xesAttr, key string) (string, bool) {
	for _, a := range attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return "", false
}

// ReadXES parses an XES document, extracting each event's concept:name.
// Events without a concept:name attribute are rejected — without a name
// there is nothing to match on. Oversized tags and event names are rejected
// with a *LimitError (see MaxFieldBytes).
func ReadXES(r io.Reader) (*Log, error) {
	var x xesLog
	if err := xml.NewDecoder(limitXMLRuns(r, "xes")).Decode(&x); err != nil {
		return nil, fmt.Errorf("eventlog: read xes: %w", err)
	}
	name, _ := attrValue(x.Attrs, "concept:name")
	l := New(name)
	for ti, xt := range x.Traces {
		t := make(Trace, 0, len(xt.Events))
		for ei, xe := range xt.Events {
			n, ok := attrValue(xe.Attrs, "concept:name")
			if !ok || n == "" {
				return nil, fmt.Errorf("eventlog: read xes: trace %d event %d has no concept:name", ti, ei)
			}
			if len(n) > MaxFieldBytes {
				return nil, fmt.Errorf("eventlog: read xes: %w",
					&LimitError{Format: "xes", What: "event name", Limit: MaxFieldBytes})
			}
			t = append(t, n)
		}
		if len(t) > 0 {
			l.Traces = append(l.Traces, t)
		}
	}
	return l, nil
}

// WriteXES writes the log as a minimal valid XES document: every trace gets
// a concept:name ("case-i"), every event a concept:name string attribute.
func WriteXES(w io.Writer, l *Log) error {
	x := xesLog{
		Attrs: []xesAttr{{Key: "concept:name", Value: l.Name}},
	}
	for i, t := range l.Traces {
		xt := xesTrace{
			Attrs: []xesAttr{{Key: "concept:name", Value: fmt.Sprintf("case-%d", i)}},
		}
		for _, e := range t {
			xt.Events = append(xt.Events, xesEvent{
				Attrs: []xesAttr{{Key: "concept:name", Value: e}},
			})
		}
		x.Traces = append(x.Traces, xt)
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return fmt.Errorf("eventlog: write xes: %w", err)
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(x); err != nil {
		return fmt.Errorf("eventlog: write xes: %w", err)
	}
	return nil
}
