package eventlog

import (
	"bufio"
	"encoding/csv"
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// This file implements the lenient ingestion mode: dirty real-world exports
// keep malformed rows, events without names, and oversized runs, and the
// strict readers abort on the first such record. With Lenient set, the
// readers instead skip the offending record, count it in a SkipReport, and
// carry on — the repair pipeline downstream is the place that judges whether
// what remains is still matchable.

// ReadOptions configure the log readers.
type ReadOptions struct {
	// Lenient converts malformed records and per-record size-limit
	// violations into skipped-record warnings (see SkipReport) instead of
	// aborting the whole file. Structural failures remain fatal in both
	// modes: a missing CSV header, or an XML/XES document whose syntax
	// breaks mid-stream — a parser cannot resynchronise inside a broken
	// XML document, so there is nothing to leniently skip to.
	Lenient bool
}

// maxSkipWarnings caps the human-readable samples kept in a SkipReport; the
// counters stay exact beyond it.
const maxSkipWarnings = 8

// SkipReport counts the records lenient reading dropped.
type SkipReport struct {
	// Rows counts skipped CSV data rows (wrong column count, malformed
	// quoting, empty event name, oversized line or field).
	Rows int `json:"rows,omitempty"`
	// Events counts skipped XES/XML events (missing, empty or oversized
	// concept:name / name attribute).
	Events int `json:"events,omitempty"`
	// Traces counts traces dropped because every one of their events was
	// skipped.
	Traces int `json:"traces,omitempty"`
	// Oversized counts how many of the skips above were size-cap
	// violations (MaxLineBytes / MaxFieldBytes).
	Oversized int `json:"oversized,omitempty"`
	// Warnings samples up to maxSkipWarnings human-readable skip reasons.
	Warnings []string `json:"warnings,omitempty"`
}

// Total is the number of records (rows, events and traces) skipped.
func (r *SkipReport) Total() int { return r.Rows + r.Events + r.Traces }

func (r *SkipReport) note(format string, args ...any) {
	if len(r.Warnings) < maxSkipWarnings {
		r.Warnings = append(r.Warnings, fmt.Sprintf(format, args...))
	}
}

// ReadCSVWith is ReadCSV with options. In lenient mode the reader works line
// by line: a row with the wrong column count, broken quoting, an empty event
// name, or an oversized line or field is skipped and counted instead of
// failing the file. One caveat follows from line-based recovery: a quoted
// field spanning multiple physical lines — legal CSV, but never produced by
// WriteCSV — cannot be reassembled leniently and is skipped as malformed.
// The error is non-nil only for structural failures (unreadable input,
// missing case,event header, or no usable rows at all).
func ReadCSVWith(r io.Reader, name string, o ReadOptions) (*Log, *SkipReport, error) {
	if !o.Lenient {
		l, err := ReadCSV(r, name)
		return l, &SkipReport{}, err
	}
	rep := &SkipReport{}
	br := bufio.NewReaderSize(r, 64<<10)
	l := New(name)
	index := make(map[string]int)
	headerSeen := false
	for lineNo := 1; ; lineNo++ {
		line, oversized, err := readLenientLine(br)
		if err != nil && err != io.EOF {
			return nil, rep, fmt.Errorf("eventlog: read csv: %w", err)
		}
		done := err == io.EOF
		switch {
		case oversized:
			rep.Rows++
			rep.Oversized++
			rep.note("line %d: longer than %d bytes, skipped", lineNo, MaxLineBytes)
		case len(line) == 0:
			// Blank line; the strict reader skips those silently too.
		case !headerSeen:
			rec, perr := parseCSVLine(line)
			if perr != nil || len(rec) < 2 || !strings.EqualFold(rec[0], "case") {
				return nil, rep, fmt.Errorf("eventlog: read csv: missing case,event header")
			}
			headerSeen = true
		default:
			rec, perr := parseCSVLine(line)
			switch {
			case perr != nil:
				rep.Rows++
				rep.note("line %d: %v, skipped", lineNo, perr)
			case len(rec) != 2:
				rep.Rows++
				rep.note("line %d: %d columns (want 2), skipped", lineNo, len(rec))
			case len(rec[0]) > MaxFieldBytes || len(rec[1]) > MaxFieldBytes:
				rep.Rows++
				rep.Oversized++
				rep.note("line %d: field longer than %d bytes, skipped", lineNo, MaxFieldBytes)
			case rec[1] == "":
				rep.Rows++
				rep.note("line %d: empty event name for case %q, skipped", lineNo, rec[0])
			default:
				id, ev := rec[0], rec[1]
				i, ok := index[id]
				if !ok {
					i = len(l.Traces)
					index[id] = i
					l.Traces = append(l.Traces, nil)
				}
				l.Traces[i] = append(l.Traces[i], ev)
			}
		}
		if done {
			break
		}
	}
	if !headerSeen {
		return nil, rep, fmt.Errorf("eventlog: read csv: empty input")
	}
	if l.Len() == 0 && rep.Total() > 0 {
		return nil, rep, fmt.Errorf("eventlog: read csv: no usable rows (%d records skipped)", rep.Total())
	}
	return l, rep, nil
}

// readLenientLine reads one physical line (without its trailing newline).
// A line longer than MaxLineBytes is discarded to its end and reported as
// oversized instead of poisoning the stream the way the strict reader's
// limitLines wrapper must. err is io.EOF exactly when the input is
// exhausted; the final unterminated line is still returned.
func readLenientLine(br *bufio.Reader) (line []byte, oversized bool, err error) {
	var buf []byte
	for {
		chunk, rerr := br.ReadSlice('\n')
		if !oversized {
			buf = append(buf, chunk...)
			if len(buf) > MaxLineBytes {
				oversized = true
				buf = nil
			}
		}
		switch rerr {
		case nil:
			return trimLine(buf), oversized, nil
		case bufio.ErrBufferFull:
			continue
		case io.EOF:
			return trimLine(buf), oversized, io.EOF
		default:
			return nil, oversized, rerr
		}
	}
}

// trimLine strips the trailing newline (and a CRLF's carriage return).
func trimLine(b []byte) []byte {
	if n := len(b); n > 0 && b[n-1] == '\n' {
		b = b[:n-1]
	}
	if n := len(b); n > 0 && b[n-1] == '\r' {
		b = b[:n-1]
	}
	return b
}

// parseCSVLine parses one physical line as a single CSV record.
func parseCSVLine(line []byte) ([]string, error) {
	cr := csv.NewReader(strings.NewReader(string(line)))
	cr.FieldsPerRecord = -1
	return cr.Read()
}

// ReadXESWith is ReadXES with options. In lenient mode an event missing its
// concept:name (or carrying an empty or oversized one) is skipped and
// counted instead of failing the document, and a trace left empty by such
// skips is dropped and counted. XML syntax errors and oversized tag runs
// abort in both modes — the decoder cannot resynchronise past them.
func ReadXESWith(r io.Reader, o ReadOptions) (*Log, *SkipReport, error) {
	if !o.Lenient {
		l, err := ReadXES(r)
		return l, &SkipReport{}, err
	}
	rep := &SkipReport{}
	var x xesLog
	if err := xml.NewDecoder(limitXMLRuns(r, "xes")).Decode(&x); err != nil {
		return nil, rep, fmt.Errorf("eventlog: read xes: %w", err)
	}
	name, _ := attrValue(x.Attrs, "concept:name")
	l := New(name)
	for ti, xt := range x.Traces {
		t := make(Trace, 0, len(xt.Events))
		for ei, xe := range xt.Events {
			n, ok := attrValue(xe.Attrs, "concept:name")
			switch {
			case !ok || n == "":
				rep.Events++
				rep.note("trace %d event %d: no concept:name, skipped", ti, ei)
			case len(n) > MaxFieldBytes:
				rep.Events++
				rep.Oversized++
				rep.note("trace %d event %d: concept:name longer than %d bytes, skipped", ti, ei, MaxFieldBytes)
			default:
				t = append(t, n)
			}
		}
		switch {
		case len(t) > 0:
			l.Traces = append(l.Traces, t)
		case len(xt.Events) > 0:
			// Every event of the trace was skipped; an empty trace cannot
			// be kept (the log would fail validation downstream).
			rep.Traces++
			rep.note("trace %d: all %d events skipped, trace dropped", ti, len(xt.Events))
		}
	}
	return l, rep, nil
}

// ReadXMLWith is ReadXML with options; the lenient semantics mirror
// ReadXESWith for the minimal XML dialect (the name attribute plays the
// role of concept:name).
func ReadXMLWith(r io.Reader, o ReadOptions) (*Log, *SkipReport, error) {
	if !o.Lenient {
		l, err := ReadXML(r)
		return l, &SkipReport{}, err
	}
	rep := &SkipReport{}
	var x xmlLog
	if err := xml.NewDecoder(limitXMLRuns(r, "xml")).Decode(&x); err != nil {
		return nil, rep, fmt.Errorf("eventlog: read xml: %w", err)
	}
	l := New(x.Name)
	for ti, xt := range x.Traces {
		t := make(Trace, 0, len(xt.Events))
		for ei, xe := range xt.Events {
			switch {
			case xe.Name == "":
				rep.Events++
				rep.note("trace %d event %d: empty name, skipped", ti, ei)
			case len(xe.Name) > MaxFieldBytes:
				rep.Events++
				rep.Oversized++
				rep.note("trace %d event %d: name longer than %d bytes, skipped", ti, ei, MaxFieldBytes)
			default:
				t = append(t, xe.Name)
			}
		}
		if len(t) == 0 && len(xt.Events) > 0 {
			rep.Traces++
			rep.note("trace %d: all %d events skipped, trace dropped", ti, len(xt.Events))
			continue
		}
		// The strict reader keeps originally-empty traces; match it so a
		// clean document reads identically in both modes.
		l.Traces = append(l.Traces, t)
	}
	return l, rep, nil
}
