package eventlog

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleLog() *Log {
	l := New("sample")
	l.Append(Trace{"a", "b", "c"})
	l.Append(Trace{"a", "c", "b"})
	l.Append(Trace{"b", "c"})
	l.Append(Trace{"a", "b", "c"})
	return l
}

func TestTraceContains(t *testing.T) {
	tr := Trace{"a", "b", "c"}
	if !tr.Contains("b") {
		t.Errorf("Contains(b) = false, want true")
	}
	if tr.Contains("z") {
		t.Errorf("Contains(z) = true, want false")
	}
}

func TestTraceHasConsecutive(t *testing.T) {
	tr := Trace{"a", "b", "a", "c"}
	cases := []struct {
		a, b string
		want bool
	}{
		{"a", "b", true},
		{"b", "a", true},
		{"a", "c", true},
		{"c", "a", false},
		{"b", "c", false},
		{"a", "a", false},
	}
	for _, c := range cases {
		if got := tr.HasConsecutive(c.a, c.b); got != c.want {
			t.Errorf("HasConsecutive(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestTraceCloneIndependent(t *testing.T) {
	tr := Trace{"a", "b"}
	c := tr.Clone()
	c[0] = "z"
	if tr[0] != "a" {
		t.Errorf("Clone shares backing array: original mutated to %q", tr[0])
	}
}

func TestTraceString(t *testing.T) {
	if got, want := (Trace{"a", "b"}).String(), "<a, b>"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestLogCloneDeep(t *testing.T) {
	l := sampleLog()
	c := l.Clone()
	c.Traces[0][0] = "zzz"
	if l.Traces[0][0] != "a" {
		t.Errorf("Clone is shallow: original trace mutated")
	}
}

func TestAlphabetSorted(t *testing.T) {
	got := sampleLog().Alphabet()
	want := []string{"a", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Alphabet() = %v, want %v", got, want)
	}
}

func TestRename(t *testing.T) {
	l := sampleLog().Rename(map[string]string{"a": "x"})
	for _, tr := range l.Traces {
		for _, e := range tr {
			if e == "a" {
				t.Fatalf("Rename left an 'a' in %v", tr)
			}
		}
	}
	want := []string{"b", "c", "x"}
	if got := l.Alphabet(); !reflect.DeepEqual(got, want) {
		t.Errorf("renamed alphabet = %v, want %v", got, want)
	}
}

func TestCollectStatsNodeFreq(t *testing.T) {
	st := CollectStats(sampleLog())
	if st.TraceCount != 4 {
		t.Fatalf("TraceCount = %d, want 4", st.TraceCount)
	}
	cases := map[string]float64{"a": 0.75, "b": 1.0, "c": 1.0}
	for e, want := range cases {
		if got := st.NodeFreq[e]; math.Abs(got-want) > 1e-12 {
			t.Errorf("NodeFreq[%s] = %g, want %g", e, got, want)
		}
	}
}

func TestCollectStatsEdgeFreq(t *testing.T) {
	st := CollectStats(sampleLog())
	cases := map[[2]string]float64{
		{"a", "b"}: 0.5,
		{"b", "c"}: 0.75,
		{"a", "c"}: 0.25,
		{"c", "b"}: 0.25,
	}
	for p, want := range cases {
		if got := st.EdgeFreq[p]; math.Abs(got-want) > 1e-12 {
			t.Errorf("EdgeFreq[%v] = %g, want %g", p, got, want)
		}
	}
	if _, ok := st.EdgeFreq[[2]string{"c", "a"}]; ok {
		t.Errorf("EdgeFreq contains non-existent pair (c,a)")
	}
}

func TestCollectStatsCountsPairOncePerTrace(t *testing.T) {
	l := New("rep")
	l.Append(Trace{"a", "b", "a", "b"}) // a,b consecutive twice in one trace
	l.Append(Trace{"c"})
	st := CollectStats(l)
	if got := st.EdgeFreq[[2]string{"a", "b"}]; math.Abs(got-0.5) > 1e-12 {
		t.Errorf("EdgeFreq[a,b] = %g, want 0.5 (once per trace)", got)
	}
}

func TestCollectStatsEmptyLog(t *testing.T) {
	st := CollectStats(New("empty"))
	if st.TraceCount != 0 || len(st.NodeFreq) != 0 || len(st.EdgeFreq) != 0 {
		t.Errorf("empty log stats not empty: %+v", st)
	}
}

func TestValidate(t *testing.T) {
	if err := sampleLog().Validate(); err != nil {
		t.Errorf("valid log rejected: %v", err)
	}
	if err := New("x").Validate(); err == nil {
		t.Errorf("empty log accepted")
	}
	l := New("x")
	l.Append(Trace{})
	if err := l.Validate(); err == nil {
		t.Errorf("empty trace accepted")
	}
	l2 := New("x")
	l2.Append(Trace{"a", ""})
	if err := l2.Validate(); err == nil {
		t.Errorf("empty event name accepted")
	}
}

func TestMergeConsecutive(t *testing.T) {
	l := New("m")
	l.Append(Trace{"a", "b", "c", "a", "b"})
	l.Append(Trace{"b", "a"})
	m := l.MergeConsecutive([]string{"a", "b"}, "ab")
	want0 := Trace{"ab", "c", "ab"}
	if !reflect.DeepEqual(m.Traces[0], want0) {
		t.Errorf("merged trace 0 = %v, want %v", m.Traces[0], want0)
	}
	want1 := Trace{"b", "a"}
	if !reflect.DeepEqual(m.Traces[1], want1) {
		t.Errorf("merged trace 1 = %v, want %v", m.Traces[1], want1)
	}
}

func TestMergeConsecutiveEmptySeq(t *testing.T) {
	l := sampleLog()
	m := l.MergeConsecutive(nil, "x")
	if !reflect.DeepEqual(m.Traces, l.Traces) {
		t.Errorf("empty-seq merge changed the log")
	}
}

func TestMergeConsecutiveTripleOverlap(t *testing.T) {
	l := New("m")
	l.Append(Trace{"a", "a", "a"})
	m := l.MergeConsecutive([]string{"a", "a"}, "aa")
	want := Trace{"aa", "a"}
	if !reflect.DeepEqual(m.Traces[0], want) {
		t.Errorf("merged = %v, want %v (greedy left-to-right)", m.Traces[0], want)
	}
}

// Property: all node frequencies are in (0,1] and every edge frequency is
// <= min of its endpoint node frequencies... (a pair can only be consecutive
// in a trace that contains both events).
func TestStatsInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := randomLog(rng)
		st := CollectStats(l)
		for _, fv := range st.NodeFreq {
			if fv <= 0 || fv > 1 {
				return false
			}
		}
		for p, fe := range st.EdgeFreq {
			if fe <= 0 || fe > 1 {
				return false
			}
			if fe > st.NodeFreq[p[0]]+1e-12 || fe > st.NodeFreq[p[1]]+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: MergeConsecutive preserves the number of traces and never
// increases trace length.
func TestMergePreservesShape(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := randomLog(rng)
		alpha := l.Alphabet()
		if len(alpha) < 2 {
			return true
		}
		seq := []string{alpha[0], alpha[1]}
		m := l.MergeConsecutive(seq, "XY")
		if m.Len() != l.Len() {
			return false
		}
		for i := range m.Traces {
			if len(m.Traces[i]) > len(l.Traces[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func randomLog(rng *rand.Rand) *Log {
	events := []string{"a", "b", "c", "d", "e"}
	l := New("rand")
	n := 1 + rng.Intn(10)
	for i := 0; i < n; i++ {
		ln := 1 + rng.Intn(8)
		tr := make(Trace, ln)
		for j := range tr {
			tr[j] = events[rng.Intn(len(events))]
		}
		l.Append(tr)
	}
	return l
}
