// Package eventlog models event logs as used in process mining: a log is a
// multiset of traces, and a trace is a finite sequence of events. The package
// also computes the occurrence statistics (normalized node and edge
// frequencies) that dependency graphs are built from, and offers simple CSV
// and XML serialisations so logs can be exchanged with external tools.
package eventlog

import (
	"fmt"
	"sort"
	"strings"
)

// Event is the name (label) of a recorded activity. Two events with the same
// name inside one log denote the same activity; across logs names may be
// opaque and carry no meaning.
type Event = string

// Trace is one process instance: the sequence of events recorded for it.
type Trace []Event

// Clone returns a deep copy of the trace.
func (t Trace) Clone() Trace {
	c := make(Trace, len(t))
	copy(c, t)
	return c
}

// String renders the trace as "<a, b, c>".
func (t Trace) String() string {
	return "<" + strings.Join(t, ", ") + ">"
}

// Contains reports whether event v occurs anywhere in the trace.
func (t Trace) Contains(v Event) bool {
	for _, e := range t {
		if e == v {
			return true
		}
	}
	return false
}

// HasConsecutive reports whether events a and b occur consecutively (a
// immediately followed by b) at least once in the trace.
func (t Trace) HasConsecutive(a, b Event) bool {
	for i := 0; i+1 < len(t); i++ {
		if t[i] == a && t[i+1] == b {
			return true
		}
	}
	return false
}

// Log is a multiset of traces recorded for one process. The zero value is an
// empty log ready for use.
type Log struct {
	Name   string
	Traces []Trace
}

// New returns an empty log with the given name.
func New(name string) *Log {
	return &Log{Name: name}
}

// Append adds a trace to the log.
func (l *Log) Append(t Trace) {
	l.Traces = append(l.Traces, t)
}

// Len returns the number of traces in the log.
func (l *Log) Len() int { return len(l.Traces) }

// Equal reports whether two logs carry the same name and the same traces in
// the same order.
func (l *Log) Equal(o *Log) bool {
	if l.Name != o.Name || len(l.Traces) != len(o.Traces) {
		return false
	}
	for i := range l.Traces {
		if len(l.Traces[i]) != len(o.Traces[i]) {
			return false
		}
		for j := range l.Traces[i] {
			if l.Traces[i][j] != o.Traces[i][j] {
				return false
			}
		}
	}
	return true
}

// Clone returns a deep copy of the log.
func (l *Log) Clone() *Log {
	c := &Log{Name: l.Name, Traces: make([]Trace, len(l.Traces))}
	for i, t := range l.Traces {
		c.Traces[i] = t.Clone()
	}
	return c
}

// Alphabet returns the sorted set of distinct events occurring in the log.
func (l *Log) Alphabet() []Event {
	seen := make(map[Event]bool)
	for _, t := range l.Traces {
		for _, e := range t {
			seen[e] = true
		}
	}
	out := make([]Event, 0, len(seen))
	for e := range seen {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// Rename returns a copy of the log in which every event has been renamed
// through the mapping. Events absent from the mapping keep their name.
func (l *Log) Rename(mapping map[Event]Event) *Log {
	c := l.Clone()
	for _, t := range c.Traces {
		for i, e := range t {
			if n, ok := mapping[e]; ok {
				t[i] = n
			}
		}
	}
	return c
}

// Stats holds the normalized occurrence frequencies of a log: for every
// event the fraction of traces containing it, and for every ordered pair of
// events the fraction of traces in which they occur consecutively at least
// once (Definition 1 of the paper).
type Stats struct {
	// TraceCount is the number of traces the frequencies are normalized by.
	TraceCount int
	// NodeFreq maps each event to the fraction of traces that contain it.
	NodeFreq map[Event]float64
	// EdgeFreq maps consecutive event pairs to the fraction of traces in
	// which the pair occurs consecutively at least once.
	EdgeFreq map[[2]Event]float64
}

// CollectStats scans the log once and returns its occurrence statistics.
// An empty log yields zero-valued statistics and no error; frequencies are
// then all absent.
func CollectStats(l *Log) *Stats {
	s := &Stats{
		TraceCount: len(l.Traces),
		NodeFreq:   make(map[Event]float64),
		EdgeFreq:   make(map[[2]Event]float64),
	}
	if len(l.Traces) == 0 {
		return s
	}
	nodeCount := make(map[Event]int)
	edgeCount := make(map[[2]Event]int)
	seenNode := make(map[Event]bool)
	seenEdge := make(map[[2]Event]bool)
	for _, t := range l.Traces {
		clear(seenNode)
		clear(seenEdge)
		for i, e := range t {
			if !seenNode[e] {
				seenNode[e] = true
				nodeCount[e]++
			}
			if i+1 < len(t) {
				p := [2]Event{e, t[i+1]}
				if !seenEdge[p] {
					seenEdge[p] = true
					edgeCount[p]++
				}
			}
		}
	}
	n := float64(len(l.Traces))
	for e, c := range nodeCount {
		s.NodeFreq[e] = float64(c) / n
	}
	for p, c := range edgeCount {
		s.EdgeFreq[p] = float64(c) / n
	}
	return s
}

// Validate checks structural sanity of a log: it must contain at least one
// trace, and no trace may be empty or contain an empty event name.
func (l *Log) Validate() error {
	if len(l.Traces) == 0 {
		return fmt.Errorf("eventlog: log %q has no traces", l.Name)
	}
	for i, t := range l.Traces {
		if len(t) == 0 {
			return fmt.Errorf("eventlog: log %q trace %d is empty", l.Name, i)
		}
		for j, e := range t {
			if e == "" {
				return fmt.Errorf("eventlog: log %q trace %d event %d has empty name", l.Name, i, j)
			}
		}
	}
	return nil
}

// MergeConsecutive returns a copy of the log in which every maximal
// consecutive occurrence of the event sequence seq has been replaced by the
// single event merged. It is the log-level realisation of treating a
// composite event as one node.
func (l *Log) MergeConsecutive(seq []Event, merged Event) *Log {
	if len(seq) == 0 {
		return l.Clone()
	}
	out := &Log{Name: l.Name, Traces: make([]Trace, 0, len(l.Traces))}
	for _, t := range l.Traces {
		nt := make(Trace, 0, len(t))
		for i := 0; i < len(t); {
			if matchesAt(t, i, seq) {
				nt = append(nt, merged)
				i += len(seq)
			} else {
				nt = append(nt, t[i])
				i++
			}
		}
		out.Traces = append(out.Traces, nt)
	}
	return out
}

func matchesAt(t Trace, i int, seq []Event) bool {
	if i+len(seq) > len(t) {
		return false
	}
	for j, e := range seq {
		if t[i+j] != e {
			return false
		}
	}
	return true
}
