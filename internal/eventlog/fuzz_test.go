package eventlog

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets for the parsers: they must never panic, and everything they
// accept must round-trip. Each target also drives the lenient reader over
// the same input with two cross-mode properties: lenient reading never
// panics either, and whenever the strict reader succeeds and the lenient
// reader reports zero skips, both must have produced the identical log.

func FuzzReadCSV(f *testing.F) {
	f.Add("case,event\nc1,a\nc1,b\n")
	f.Add("case,event\n")
	f.Add("")
	f.Add("case,event\nc1,\"quoted,comma\"\n")
	f.Add("case,event\nc1,a\nc1\nc1,b,extra\nc1,b\n")
	f.Add("case,event\nc1,a\nc1,\nc2,x\n")
	f.Fuzz(func(t *testing.T, in string) {
		strict, serr := ReadCSV(strings.NewReader(in), "fuzz")
		lenient, rep, lerr := ReadCSVWith(strings.NewReader(in), "fuzz", ReadOptions{Lenient: true})
		if serr == nil && lerr == nil && rep.Total() == 0 && !lenient.Equal(strict) {
			t.Fatalf("lenient with zero skips diverged from strict: %v vs %v", lenient, strict)
		}
		if serr != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, strict); err != nil {
			t.Fatalf("accepted log failed to serialize: %v", err)
		}
		back, err := ReadCSV(&buf, "fuzz")
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.Len() != strict.Len() {
			t.Fatalf("round trip changed trace count: %d vs %d", back.Len(), strict.Len())
		}
	})
}

func FuzzReadXES(f *testing.F) {
	f.Add(`<log><trace><event><string key="concept:name" value="a"/></event></trace></log>`)
	f.Add(`<log/>`)
	f.Add(`<log><string key="concept:name" value="x"/></log>`)
	f.Add(`<log><trace><event><string key="concept:name" value="a"/></event><event><string key="org:resource" value="r"/></event></trace></log>`)
	f.Add(`<log><trace><event><string key="concept:name" value=""/></event></trace></log>`)
	f.Fuzz(func(t *testing.T, in string) {
		strict, serr := ReadXES(strings.NewReader(in))
		lenient, rep, lerr := ReadXESWith(strings.NewReader(in), ReadOptions{Lenient: true})
		if serr == nil && lerr == nil && rep.Total() == 0 && !lenient.Equal(strict) {
			t.Fatalf("lenient with zero skips diverged from strict: %v vs %v", lenient, strict)
		}
		if serr != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteXES(&buf, strict); err != nil {
			t.Fatalf("accepted log failed to serialize: %v", err)
		}
		if _, err := ReadXES(&buf); err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}

func FuzzReadXML(f *testing.F) {
	f.Add(`<log name="x"><trace><event name="a"/></trace></log>`)
	f.Add(`<log name="x"><trace><event name="a"/><event/></trace></log>`)
	f.Fuzz(func(t *testing.T, in string) {
		strict, serr := ReadXML(strings.NewReader(in))
		lenient, rep, lerr := ReadXMLWith(strings.NewReader(in), ReadOptions{Lenient: true})
		if serr == nil && lerr == nil && rep.Total() == 0 && !lenient.Equal(strict) {
			t.Fatalf("lenient with zero skips diverged from strict: %v vs %v", lenient, strict)
		}
		_ = strict
	})
}
