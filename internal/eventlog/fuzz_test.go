package eventlog

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets for the parsers: they must never panic, and everything they
// accept must round-trip.

func FuzzReadCSV(f *testing.F) {
	f.Add("case,event\nc1,a\nc1,b\n")
	f.Add("case,event\n")
	f.Add("")
	f.Add("case,event\nc1,\"quoted,comma\"\n")
	f.Fuzz(func(t *testing.T, in string) {
		l, err := ReadCSV(strings.NewReader(in), "fuzz")
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, l); err != nil {
			t.Fatalf("accepted log failed to serialize: %v", err)
		}
		back, err := ReadCSV(&buf, "fuzz")
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.Len() != l.Len() {
			t.Fatalf("round trip changed trace count: %d vs %d", back.Len(), l.Len())
		}
	})
}

func FuzzReadXES(f *testing.F) {
	f.Add(`<log><trace><event><string key="concept:name" value="a"/></event></trace></log>`)
	f.Add(`<log/>`)
	f.Add(`<log><string key="concept:name" value="x"/></log>`)
	f.Fuzz(func(t *testing.T, in string) {
		l, err := ReadXES(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteXES(&buf, l); err != nil {
			t.Fatalf("accepted log failed to serialize: %v", err)
		}
		if _, err := ReadXES(&buf); err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}

func FuzzReadXML(f *testing.F) {
	f.Add(`<log name="x"><trace><event name="a"/></trace></log>`)
	f.Fuzz(func(t *testing.T, in string) {
		if _, err := ReadXML(strings.NewReader(in)); err != nil {
			return
		}
	})
}
