package eventlog

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func requireLimitError(t *testing.T, err error, format, what string) {
	t.Helper()
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("got %v, want *LimitError", err)
	}
	if le.Format != format || le.What != what {
		t.Fatalf("got LimitError{%s,%s}, want {%s,%s}", le.Format, le.What, format, what)
	}
}

func TestReadCSVRejectsGiantLine(t *testing.T) {
	// One unterminated "line" past the cap; the reader must fail without
	// buffering the run whole.
	in := "case,event\nc1," + strings.Repeat("a", MaxLineBytes+100)
	_, err := ReadCSV(strings.NewReader(in), "L")
	requireLimitError(t, err, "csv", "line")
}

func TestReadCSVRejectsGiantField(t *testing.T) {
	// Quoted newlines keep every physical line under the line cap while one
	// logical field exceeds the field cap.
	field := strings.Repeat("b\n", MaxFieldBytes/2+64)
	in := "case,event\nc1,\"" + field + "\"\n"
	_, err := ReadCSV(strings.NewReader(in), "L")
	requireLimitError(t, err, "csv", "field")
}

func TestReadCSVAcceptsLargeButLegalInput(t *testing.T) {
	var b bytes.Buffer
	b.WriteString("case,event\n")
	for i := 0; i < 2000; i++ {
		b.WriteString("c1,")
		b.WriteString(strings.Repeat("e", 100))
		b.WriteString("\n")
	}
	l, err := ReadCSV(&b, "L")
	if err != nil {
		t.Fatalf("legal input rejected: %v", err)
	}
	if l.Len() != 1 || len(l.Traces[0]) != 2000 {
		t.Fatalf("unexpected shape: %d traces", l.Len())
	}
}

func TestReadXMLRejectsGiantAttribute(t *testing.T) {
	in := `<log name="L"><trace><event name="` +
		strings.Repeat("a", maxXMLRunBytes+100) + `"/></trace></log>`
	_, err := ReadXML(strings.NewReader(in))
	requireLimitError(t, err, "xml", "tag")
}

func TestReadXMLRejectsOversizedName(t *testing.T) {
	// Entity expansion sneaks a name past the raw-run cap while the decoded
	// value still exceeds the field cap.
	long := strings.Repeat("a", MaxFieldBytes/2) + "&amp;" + strings.Repeat("b", MaxFieldBytes/2+50)
	in := `<log name="L"><trace><event name="` + long + `"/></trace></log>`
	_, err := ReadXML(strings.NewReader(in))
	requireLimitError(t, err, "xml", "event name")
}

func TestReadXESRejectsGiantAttribute(t *testing.T) {
	in := `<log><trace><event><string key="concept:name" value="` +
		strings.Repeat("a", maxXMLRunBytes+100) + `"/></event></trace></log>`
	_, err := ReadXES(strings.NewReader(in))
	requireLimitError(t, err, "xes", "tag")
}

func TestReadXESRejectsOversizedName(t *testing.T) {
	long := strings.Repeat("a", MaxFieldBytes/2) + "&amp;" + strings.Repeat("b", MaxFieldBytes/2+50)
	in := `<log><trace><event><string key="concept:name" value="` + long + `"/></event></trace></log>`
	_, err := ReadXES(strings.NewReader(in))
	requireLimitError(t, err, "xes", "event name")
}

func TestReadXESAcceptsNormalDocument(t *testing.T) {
	l := New("L")
	l.Append(Trace{"a", "b"})
	var b bytes.Buffer
	if err := WriteXES(&b, l); err != nil {
		t.Fatal(err)
	}
	back, err := ReadXES(&b)
	if err != nil {
		t.Fatalf("normal document rejected: %v", err)
	}
	if back.Len() != 1 {
		t.Fatalf("unexpected trace count %d", back.Len())
	}
}
