package eventlog

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestAddNoiseZeroIsIdentity(t *testing.T) {
	l := sampleLog()
	rng := rand.New(rand.NewSource(1))
	n, err := AddNoise(rng, l, NoiseOptions{})
	if err != nil {
		t.Fatalf("AddNoise: %v", err)
	}
	if !reflect.DeepEqual(n.Traces, l.Traces) {
		t.Errorf("zero noise changed the log")
	}
}

func TestAddNoiseDrop(t *testing.T) {
	l := New("d")
	for i := 0; i < 50; i++ {
		l.Append(Trace{"a", "b", "c", "d"})
	}
	rng := rand.New(rand.NewSource(2))
	n, err := AddNoise(rng, l, NoiseOptions{DropProb: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, tr := range n.Traces {
		if len(tr) == 0 {
			t.Fatalf("empty trace after noise")
		}
		total += len(tr)
	}
	if total >= 50*4 {
		t.Errorf("drop noise removed nothing: %d events", total)
	}
}

func TestAddNoiseDup(t *testing.T) {
	l := New("d")
	for i := 0; i < 50; i++ {
		l.Append(Trace{"a", "b"})
	}
	rng := rand.New(rand.NewSource(3))
	n, err := AddNoise(rng, l, NoiseOptions{DupProb: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, tr := range n.Traces {
		total += len(tr)
	}
	if total <= 100 {
		t.Errorf("dup noise added nothing: %d events", total)
	}
}

func TestAddNoiseSwapPreservesMultiset(t *testing.T) {
	l := New("s")
	l.Append(Trace{"a", "b", "c", "d", "e"})
	rng := rand.New(rand.NewSource(4))
	n, err := AddNoise(rng, l, NoiseOptions{SwapProb: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	count := func(tr Trace) map[string]int {
		m := map[string]int{}
		for _, e := range tr {
			m[e]++
		}
		return m
	}
	if !reflect.DeepEqual(count(n.Traces[0]), count(l.Traces[0])) {
		t.Errorf("swap noise changed the event multiset: %v", n.Traces[0])
	}
}

func TestAddNoiseValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := AddNoise(rng, sampleLog(), NoiseOptions{DropProb: 2}); err == nil {
		t.Errorf("invalid probability accepted")
	}
}

// Property: noisy logs always remain valid and keep the trace count.
func TestAddNoiseValidProperty(t *testing.T) {
	f := func(seed int64, d, s, p uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		l := randomLog(rng)
		opts := NoiseOptions{
			DropProb: float64(d%100) / 100,
			SwapProb: float64(s%100) / 100,
			DupProb:  float64(p%100) / 100,
		}
		n, err := AddNoise(rng, l, opts)
		if err != nil {
			return false
		}
		return n.Len() == l.Len() && n.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
