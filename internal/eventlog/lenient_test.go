package eventlog

import (
	"strings"
	"testing"
)

func TestReadCSVLenientSkipsMalformedRows(t *testing.T) {
	in := strings.Join([]string{
		"case,event",
		"c1,a",
		"c1",         // wrong column count: 1
		"c1,b,extra", // wrong column count: 3
		"c1,b",
		`c1,"broken`, // unterminated quote
		"c2,",        // empty event name
		"c2,x",
		"", // blank line: ignored silently
		"c1,c",
	}, "\n")
	l, rep, err := ReadCSVWith(strings.NewReader(in), "dirty", ReadOptions{Lenient: true})
	if err != nil {
		t.Fatalf("ReadCSVWith: %v", err)
	}
	want := New("dirty")
	want.Append(Trace{"a", "b", "c"})
	want.Append(Trace{"x"})
	if !l.Equal(want) {
		t.Fatalf("log = %v, want %v", l, want)
	}
	if rep.Rows != 4 {
		t.Fatalf("Rows = %d, want 4 (report %+v)", rep.Rows, rep)
	}
	if rep.Oversized != 0 || rep.Events != 0 || rep.Traces != 0 {
		t.Fatalf("unexpected counts: %+v", rep)
	}
	if len(rep.Warnings) != 4 {
		t.Fatalf("want 4 warnings, got %v", rep.Warnings)
	}
	// The same input must abort the strict reader.
	if _, err := ReadCSV(strings.NewReader(in), "dirty"); err == nil {
		t.Fatal("strict reader accepted malformed input")
	}
}

func TestReadCSVLenientSkipsOversized(t *testing.T) {
	long := strings.Repeat("x", MaxLineBytes+10)
	bigField := strings.Repeat("y", MaxFieldBytes+1)
	in := "case,event\nc1,a\nc1," + long + "\nc1," + bigField[:MaxFieldBytes-10] + "\nc1,b\n"
	// The third data row fits the line cap but is near the field cap; keep
	// it to prove large-but-legal fields still pass.
	l, rep, err := ReadCSVWith(strings.NewReader(in), "l", ReadOptions{Lenient: true})
	if err != nil {
		t.Fatalf("ReadCSVWith: %v", err)
	}
	if got := len(l.Traces[0]); got != 3 {
		t.Fatalf("kept %d events, want 3", got)
	}
	if rep.Rows != 1 || rep.Oversized != 1 {
		t.Fatalf("report %+v, want 1 oversized row", rep)
	}
	// An oversized field on a line under the line cap is also skipped.
	in2 := "case,event\nc1,a\nc1," + bigField + "\nc1,b\n"
	l, rep, err = ReadCSVWith(strings.NewReader(in2), "l", ReadOptions{Lenient: true})
	if err != nil {
		t.Fatalf("ReadCSVWith: %v", err)
	}
	if got := len(l.Traces[0]); got != 2 {
		t.Fatalf("kept %d events, want 2", got)
	}
	if rep.Rows != 1 || rep.Oversized != 1 {
		t.Fatalf("report %+v, want 1 oversized field", rep)
	}
}

func TestReadCSVLenientStructuralErrors(t *testing.T) {
	if _, _, err := ReadCSVWith(strings.NewReader(""), "l", ReadOptions{Lenient: true}); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, _, err := ReadCSVWith(strings.NewReader("id,name\nc1,a\n"), "l", ReadOptions{Lenient: true}); err == nil {
		t.Fatal("missing header accepted")
	}
	// All data rows skipped: structurally unusable.
	if _, _, err := ReadCSVWith(strings.NewReader("case,event\nc1\nc2\n"), "l", ReadOptions{Lenient: true}); err == nil {
		t.Fatal("log with zero usable rows accepted")
	}
	// Header-only input parses to an empty log in both modes.
	l, rep, err := ReadCSVWith(strings.NewReader("case,event\n"), "l", ReadOptions{Lenient: true})
	if err != nil || l.Len() != 0 || rep.Total() != 0 {
		t.Fatalf("header-only: log=%v rep=%+v err=%v", l, rep, err)
	}
}

func TestReadCSVLenientMatchesStrictOnCleanInput(t *testing.T) {
	l := New("clean")
	l.Append(Trace{"a", "b,with comma", `c "quoted"`})
	l.Append(Trace{"x"})
	var b strings.Builder
	if err := WriteCSV(&b, l); err != nil {
		t.Fatal(err)
	}
	strict, err := ReadCSV(strings.NewReader(b.String()), "clean")
	if err != nil {
		t.Fatal(err)
	}
	lenient, rep, err := ReadCSVWith(strings.NewReader(b.String()), "clean", ReadOptions{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total() != 0 {
		t.Fatalf("clean input reported skips: %+v", rep)
	}
	if !lenient.Equal(strict) {
		t.Fatalf("lenient %v != strict %v", lenient, strict)
	}
}

func TestReadXESLenientSkipsBadEvents(t *testing.T) {
	in := `<?xml version="1.0"?>
<log>
  <string key="concept:name" value="dirty"/>
  <trace>
    <event><string key="concept:name" value="a"/></event>
    <event><string key="lifecycle:transition" value="complete"/></event>
    <event><string key="concept:name" value=""/></event>
    <event><string key="concept:name" value="b"/></event>
  </trace>
  <trace>
    <event><string key="other" value="nameless"/></event>
  </trace>
  <trace>
    <event><string key="concept:name" value="c"/></event>
  </trace>
</log>`
	l, rep, err := ReadXESWith(strings.NewReader(in), ReadOptions{Lenient: true})
	if err != nil {
		t.Fatalf("ReadXESWith: %v", err)
	}
	want := New("dirty")
	want.Append(Trace{"a", "b"})
	want.Append(Trace{"c"})
	if !l.Equal(want) {
		t.Fatalf("log = %v, want %v", l, want)
	}
	if rep.Events != 3 || rep.Traces != 1 {
		t.Fatalf("report %+v, want 3 skipped events and 1 dropped trace", rep)
	}
	// The same input must abort the strict reader.
	if _, err := ReadXES(strings.NewReader(in)); err == nil {
		t.Fatal("strict reader accepted an event without concept:name")
	}
	// Broken XML aborts even leniently.
	if _, _, err := ReadXESWith(strings.NewReader("<log><trace>"), ReadOptions{Lenient: true}); err == nil {
		t.Fatal("truncated XML accepted")
	}
}

func TestReadXMLLenientSkipsBadEvents(t *testing.T) {
	in := `<log name="dirty">
  <trace><event name="a"/><event/><event name="b"/></trace>
  <trace><event/></trace>
  <trace></trace>
</log>`
	l, rep, err := ReadXMLWith(strings.NewReader(in), ReadOptions{Lenient: true})
	if err != nil {
		t.Fatalf("ReadXMLWith: %v", err)
	}
	if len(l.Traces) != 2 || len(l.Traces[0]) != 2 || len(l.Traces[1]) != 0 {
		t.Fatalf("log = %v, want [a b] and one (originally) empty trace", l)
	}
	if rep.Events != 2 || rep.Traces != 1 {
		t.Fatalf("report %+v, want 2 skipped events and 1 dropped trace", rep)
	}
}

func TestLenientReadersMatchStrictRoundTrips(t *testing.T) {
	l := New("rt")
	l.Append(Trace{"alpha", "beta", "gamma"})
	l.Append(Trace{"beta"})
	var xes, xmlb strings.Builder
	if err := WriteXES(&xes, l); err != nil {
		t.Fatal(err)
	}
	if err := WriteXML(&xmlb, l); err != nil {
		t.Fatal(err)
	}
	got, rep, err := ReadXESWith(strings.NewReader(xes.String()), ReadOptions{Lenient: true})
	if err != nil || rep.Total() != 0 || !got.Equal(l) {
		t.Fatalf("xes round trip: log=%v rep=%+v err=%v", got, rep, err)
	}
	got, rep, err = ReadXMLWith(strings.NewReader(xmlb.String()), ReadOptions{Lenient: true})
	if err != nil || rep.Total() != 0 || !got.Equal(l) {
		t.Fatalf("xml round trip: log=%v rep=%+v err=%v", got, rep, err)
	}
	// Strict mode through the With API delegates to the strict readers.
	got, rep, err = ReadXESWith(strings.NewReader(xes.String()), ReadOptions{})
	if err != nil || rep.Total() != 0 || !got.Equal(l) {
		t.Fatalf("strict delegate: log=%v rep=%+v err=%v", got, rep, err)
	}
}
