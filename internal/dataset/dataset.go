// Package dataset constructs the evaluation datasets of Section 5. The
// paper's real data (149 event-log pairs from two subsidiaries of a bus
// manufacturer, with expert ground truth) is proprietary, so this package
// synthesizes pairs with the same injected challenges: a random process
// model is played out into two logs; the second log is renamed (opaquely or
// typographically-similarly), dislocated at the front and/or back of its
// traces, and optionally has always-consecutive runs merged into composite
// events. Because every mutation is generated, the ground-truth mapping is
// known exactly.
package dataset

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/composite"
	"repro/internal/eventlog"
	"repro/internal/matching"
	"repro/internal/procgen"
)

// Testbed identifies the dislocation placement of a pair group, mirroring
// the paper's testbeds.
type Testbed string

const (
	// DSF has dislocated events at the end of traces (paper: DS-F).
	DSF Testbed = "DS-F"
	// DSB has dislocated events at the beginning of traces (paper: DS-B).
	DSB Testbed = "DS-B"
	// DSFB has dislocated events at both ends (paper: DS-FB).
	DSFB Testbed = "DS-FB"
	// None has no dislocation (used by the scalability experiments).
	None Testbed = "none"
)

// Pair is one evaluation unit: two heterogeneous logs of the same process
// plus the generative ground-truth mapping.
type Pair struct {
	Name       string
	Log1, Log2 *eventlog.Log
	// Truth maps groups of log-1 event names to groups of log-2 event
	// names. Composite ground truth has multi-event left groups.
	Truth matching.Mapping
	// HasComposites reports whether composite events were injected.
	HasComposites bool
}

// Options controls pair generation.
type Options struct {
	// Events is the number of distinct activities in the process model.
	Events int
	// Traces is the number of traces simulated per log.
	Traces int
	// DislocateFront trims this many events from the beginning of every
	// log-2 trace.
	DislocateFront int
	// DislocateBack trims from the end likewise.
	DislocateBack int
	// ExtraFront injects this many fresh events (with no counterpart in
	// log 1) at the beginning of log-2 traces — the dislocation of the
	// paper's Example 1, where log 2 has an extra Order Accepted step
	// before the first shared event. Two alternative chains are injected
	// (chosen per trace) so the extra events have realistic frequencies.
	ExtraFront int
	// ExtraBack injects fresh events at the end of traces likewise.
	ExtraBack int
	// OpaqueFraction is the fraction of log-2 events whose names are
	// garbled beyond recognition; the rest get typographically similar
	// names. 1.0 reproduces the fully opaque setting.
	OpaqueFraction float64
	// CompositeMerges injects up to this many composite events into log 2
	// by merging always-consecutive runs.
	CompositeMerges int
	// FrequencySkew, when > 0, plays each log out with independently drawn
	// XOR branch weights of this skew, so corresponding events have
	// different occurrence frequencies across the two logs — the
	// statistical heterogeneity of independently implemented systems.
	FrequencySkew float64
}

// DefaultOptions returns a mid-sized pair configuration.
func DefaultOptions() Options {
	return Options{Events: 20, Traces: 200, OpaqueFraction: 1.0}
}

// GeneratePair synthesizes one evaluation pair from the options using the
// given random source.
func GeneratePair(rng *rand.Rand, name string, opts Options) (*Pair, error) {
	if opts.Events < 2 {
		return nil, fmt.Errorf("dataset: Events must be >= 2, got %d", opts.Events)
	}
	if opts.Traces < 1 {
		return nil, fmt.Errorf("dataset: Traces must be >= 1, got %d", opts.Traces)
	}
	spec, err := procgen.Generate(rng, procgen.DefaultOptions(opts.Events))
	if err != nil {
		return nil, err
	}
	po := procgen.DefaultPlayout()
	po.Traces = opts.Traces
	po.XorSkew = opts.FrequencySkew
	log1, err := spec.Playout(rng, name+"/1", po)
	if err != nil {
		return nil, err
	}
	// Each playout draws its own XOR branch weights, so with FrequencySkew
	// the two logs disagree on event frequencies like independently built
	// systems do.
	log2, err := spec.Playout(rng, name+"/2", po)
	if err != nil {
		return nil, err
	}
	p := &Pair{Name: name, Log1: log1}

	// 1) Composite injection: merge always-consecutive runs of log 2.
	type group struct {
		members []string
		merged  string
	}
	var groups []group
	if opts.CompositeMerges > 0 {
		cands := composite.Discover(log2, composite.DiscoverOptions{Confidence: 1.0, MaxLen: 3})
		rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
		used := make(map[string]bool)
		for _, c := range cands {
			if len(groups) >= opts.CompositeMerges || c.Overlaps(used) {
				continue
			}
			merged := fmt.Sprintf("joint step %d", len(groups)+1)
			log2 = log2.MergeConsecutive(c.Events, merged)
			groups = append(groups, group{members: append([]string(nil), c.Events...), merged: merged})
			for _, e := range c.Events {
				used[e] = true
			}
		}
		p.HasComposites = len(groups) > 0
	}

	// 2) Renaming: every log-2 event gets a new, unique name.
	rename := renameAlphabet(rng, log2.Alphabet(), opts.OpaqueFraction)
	log2 = log2.Rename(rename)

	// 3) Dislocation: trim trace fronts/backs and/or inject extra events
	// into log 2.
	log2 = trim(log2, opts.DislocateFront, opts.DislocateBack)
	log2 = inject(rng, log2, opts.ExtraFront, opts.ExtraBack)
	p.Log2 = log2

	// 4) Ground truth, restricted to events that survived the mutations.
	alpha2 := make(map[string]bool)
	for _, e := range log2.Alphabet() {
		alpha2[e] = true
	}
	alpha1 := make(map[string]bool)
	for _, e := range log1.Alphabet() {
		alpha1[e] = true
	}
	grouped := make(map[string]bool)
	for _, g := range groups {
		right := rename[g.merged]
		if !alpha2[right] {
			continue
		}
		ok := true
		for _, m := range g.members {
			if !alpha1[m] {
				ok = false
				break
			}
			grouped[m] = true
		}
		if ok {
			p.Truth = append(p.Truth, matching.NewCorrespondence(g.members, []string{right}, 1))
		}
	}
	singles := make([]string, 0, len(alpha1))
	for e := range alpha1 {
		singles = append(singles, e)
	}
	sort.Strings(singles)
	for _, e := range singles {
		if grouped[e] {
			continue
		}
		if r, ok := rename[e]; ok && alpha2[r] {
			p.Truth = append(p.Truth, matching.NewCorrespondence([]string{e}, []string{r}, 1))
		}
	}
	p.Truth.Sort()
	return p, nil
}

// renameAlphabet builds an injective renaming of the alphabet: a fraction of
// the events is garbled into meaningless identifiers (opaque names); the
// rest receive typographically similar variants.
func renameAlphabet(rng *rand.Rand, alphabet []string, opaqueFraction float64) map[string]string {
	taken := make(map[string]bool)
	out := make(map[string]string, len(alphabet))
	for _, e := range alphabet {
		var n string
		if rng.Float64() < opaqueFraction {
			n = garble(rng)
		} else {
			n = perturb(rng, e)
		}
		for taken[n] {
			n = fmt.Sprintf("%s~%d", n, rng.Intn(1000))
		}
		taken[n] = true
		out[e] = n
	}
	return out
}

// garble produces an opaque identifier carrying no typographic signal.
func garble(rng *rand.Rand) string {
	const digits = "0123456789abcdef"
	b := make([]byte, 8)
	for i := range b {
		b[i] = digits[rng.Intn(len(digits))]
	}
	return "#" + string(b)
}

// perturb produces a name similar to the original, the way independently
// developed systems label the same activity slightly differently.
func perturb(rng *rand.Rand, name string) string {
	switch rng.Intn(4) {
	case 0:
		return strings.ToUpper(name[:1]) + name[1:] + " step"
	case 1:
		return strings.ReplaceAll(name, " ", "_")
	case 2:
		return name + fmt.Sprintf(" v%d", 1+rng.Intn(3))
	default:
		if len(name) > 4 {
			return name[:len(name)-2] // clipped abbreviation
		}
		return name + "!"
	}
}

// trim removes front events from the beginning and back events from the end
// of every trace, always keeping at least one event per trace.
func trim(l *eventlog.Log, front, back int) *eventlog.Log {
	if front <= 0 && back <= 0 {
		return l
	}
	out := eventlog.New(l.Name)
	for _, t := range l.Traces {
		f := min(front, len(t)-1)
		if f < 0 {
			f = 0
		}
		rest := t[f:]
		b := min(back, len(rest)-1)
		if b < 0 {
			b = 0
		}
		out.Append(rest[:len(rest)-b].Clone())
	}
	return out
}

// inject prepends and/or appends chains of fresh events to log-2 traces.
// Two alternative chains are generated per end; each trace picks one with a
// 60/40 split, so the injected events carry frequencies below 1 like real
// alternative process entries.
func inject(rng *rand.Rand, l *eventlog.Log, front, back int) *eventlog.Log {
	if front <= 0 && back <= 0 {
		return l
	}
	mkChains := func(tag string, n int) [2][]string {
		var out [2][]string
		for v := 0; v < 2; v++ {
			chain := make([]string, n)
			for i := range chain {
				chain[i] = fmt.Sprintf("%s %d.%d", tag, v, i)
			}
			out[v] = chain
		}
		return out
	}
	frontChains := mkChains("intake", front)
	backChains := mkChains("wrapup", back)
	pick := func(c [2][]string) []string {
		if rng.Float64() < 0.6 {
			return c[0]
		}
		return c[1]
	}
	out := eventlog.New(l.Name)
	for _, t := range l.Traces {
		nt := make(eventlog.Trace, 0, len(t)+front+back)
		if front > 0 {
			nt = append(nt, pick(frontChains)...)
		}
		nt = append(nt, t...)
		if back > 0 {
			nt = append(nt, pick(backChains)...)
		}
		out.Append(nt)
	}
	return out
}

// Style selects the dislocation mechanism of a testbed.
type Style int

const (
	// StyleMixed alternates inject/trim across the pairs of a group.
	StyleMixed Style = iota
	// StyleInject adds extra unshared events at the affected trace ends.
	StyleInject
	// StyleTrim removes events from the affected trace ends.
	StyleTrim
)

// TestbedOptions configures a group of pairs sharing one testbed.
type TestbedOptions struct {
	// Pairs is the number of log pairs to generate.
	Pairs int
	// Events is the model size per pair.
	Events int
	// Traces per log.
	Traces int
	// Dislocation is the dislocation amount per affected end; 0 picks a
	// small random amount per pair.
	Dislocation int
	// Style selects how dislocation is injected. StyleMixed (the default)
	// alternates per pair between injecting extra unshared events (the
	// Example 1 pattern — log 2's extra "Order Accepted") and removing
	// events (as in Figure 9), modeling that real dislocated pairs have
	// both extra and missing steps. StyleInject and StyleTrim force one
	// style for every pair.
	Style Style
	// OpaqueFraction as in Options.
	OpaqueFraction float64
	// CompositeMerges as in Options.
	CompositeMerges int
	// FrequencySkew as in Options.
	FrequencySkew float64
	// Seed makes the group deterministic.
	Seed int64
}

// DefaultTestbedOptions mirrors the scale of the paper's real groups.
func DefaultTestbedOptions() TestbedOptions {
	return TestbedOptions{Pairs: 10, Events: 20, Traces: 200, OpaqueFraction: 1.0, Seed: 1}
}

// MakeTestbed generates a group of pairs for the given testbed kind.
func MakeTestbed(tb Testbed, opts TestbedOptions) ([]*Pair, error) {
	rng := rand.New(rand.NewSource(opts.Seed))
	out := make([]*Pair, 0, opts.Pairs)
	for i := 0; i < opts.Pairs; i++ {
		m := opts.Dislocation
		if m == 0 {
			m = 1 + rng.Intn(2)
		}
		po := Options{
			Events:          opts.Events,
			Traces:          opts.Traces,
			OpaqueFraction:  opts.OpaqueFraction,
			CompositeMerges: opts.CompositeMerges,
			FrequencySkew:   opts.FrequencySkew,
		}
		front, back := 0, 0
		switch tb {
		case DSF:
			back = m
		case DSB:
			front = m
		case DSFB:
			front, back = m, m
		case None:
		default:
			return nil, fmt.Errorf("dataset: unknown testbed %q", tb)
		}
		switch {
		case opts.Style == StyleTrim:
			po.DislocateFront, po.DislocateBack = front, back
		case opts.Style == StyleMixed && i%2 == 1:
			// Mixed trim pairs lose at most one event per affected end;
			// harsher removal is the explicit Figure 9 protocol.
			po.DislocateFront, po.DislocateBack = min(front, 1), min(back, 1)
		default:
			po.ExtraFront, po.ExtraBack = front, back
		}
		p, err := GeneratePair(rng, fmt.Sprintf("%s-%02d", tb, i), po)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
