package dataset

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/composite"
	"repro/internal/label"
)

func TestGeneratePairBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p, err := GeneratePair(rng, "p", DefaultOptions())
	if err != nil {
		t.Fatalf("GeneratePair: %v", err)
	}
	if err := p.Log1.Validate(); err != nil {
		t.Errorf("log1 invalid: %v", err)
	}
	if err := p.Log2.Validate(); err != nil {
		t.Errorf("log2 invalid: %v", err)
	}
	if len(p.Truth) == 0 {
		t.Fatalf("no ground truth generated")
	}
	// Truth references only existing events.
	a1 := map[string]bool{}
	for _, e := range p.Log1.Alphabet() {
		a1[e] = true
	}
	a2 := map[string]bool{}
	for _, e := range p.Log2.Alphabet() {
		a2[e] = true
	}
	for _, c := range p.Truth {
		for _, e := range c.Left {
			if !a1[e] {
				t.Errorf("truth left event %q not in log1", e)
			}
		}
		for _, e := range c.Right {
			if !a2[e] {
				t.Errorf("truth right event %q not in log2", e)
			}
		}
	}
}

func TestGeneratePairOpaqueNames(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	opts := DefaultOptions()
	opts.OpaqueFraction = 1.0
	p, err := GeneratePair(rng, "p", opts)
	if err != nil {
		t.Fatal(err)
	}
	sim := label.QGramCosine(3)
	for _, c := range p.Truth {
		if len(c.Left) != 1 {
			continue
		}
		if s := sim(c.Left[0], c.Right[0]); s > 0.5 {
			t.Errorf("opaque renaming left similar names: %q vs %q (%.2f)", c.Left[0], c.Right[0], s)
		}
	}
}

func TestGeneratePairSimilarNames(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	opts := DefaultOptions()
	opts.OpaqueFraction = 0
	p, err := GeneratePair(rng, "p", opts)
	if err != nil {
		t.Fatal(err)
	}
	sim := label.QGramCosine(3)
	var total float64
	var n int
	for _, c := range p.Truth {
		if len(c.Left) != 1 {
			continue
		}
		total += sim(c.Left[0], c.Right[0])
		n++
	}
	if n == 0 {
		t.Fatal("no singleton truth pairs")
	}
	if avg := total / float64(n); avg < 0.4 {
		t.Errorf("similar renaming too dissimilar: avg qgram %.2f", avg)
	}
}

func TestGeneratePairRenamingInjective(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p, err := GeneratePair(rng, "p", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, c := range p.Truth {
		key := strings.Join(c.Right, "|")
		if seen[key] {
			t.Errorf("two truth rows share right side %q", key)
		}
		seen[key] = true
	}
}

func TestGeneratePairDislocationFront(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	opts := DefaultOptions()
	base, err := GeneratePair(rand.New(rand.NewSource(5)), "base", opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.DislocateFront = 2
	p, err := GeneratePair(rng, "disl", opts)
	if err != nil {
		t.Fatal(err)
	}
	// Same seed, same model: the dislocated variant loses trace prefixes.
	for i := range p.Log2.Traces {
		if len(p.Log2.Traces[i]) > len(base.Log2.Traces[i]) {
			t.Fatalf("trace %d grew after trimming", i)
		}
	}
	// At least one trace actually shrank.
	shrunk := false
	for i := range p.Log2.Traces {
		if len(p.Log2.Traces[i]) < len(base.Log2.Traces[i]) {
			shrunk = true
		}
	}
	if !shrunk {
		t.Errorf("front dislocation removed nothing")
	}
}

func TestGeneratePairNeverEmptiesTraces(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	opts := DefaultOptions()
	opts.Events = 4
	opts.DislocateFront = 10
	opts.DislocateBack = 10
	p, err := GeneratePair(rng, "p", opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range p.Log2.Traces {
		if len(tr) == 0 {
			t.Fatalf("trace %d empty after extreme trimming", i)
		}
	}
}

func TestGeneratePairComposites(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	opts := DefaultOptions()
	opts.CompositeMerges = 2
	opts.Traces = 150
	p, err := GeneratePair(rng, "p", opts)
	if err != nil {
		t.Fatal(err)
	}
	if !p.HasComposites {
		t.Skip("no always-consecutive runs in this model; composite injection skipped")
	}
	multi := 0
	for _, c := range p.Truth {
		if len(c.Left) > 1 {
			multi++
			if len(c.Right) != 1 {
				t.Errorf("composite truth right side not singleton: %v", c)
			}
		}
	}
	if multi == 0 {
		t.Errorf("HasComposites set but no multi-event truth rows")
	}
}

func TestGeneratePairValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := GeneratePair(rng, "p", Options{Events: 1, Traces: 10}); err == nil {
		t.Errorf("Events=1 accepted")
	}
	if _, err := GeneratePair(rng, "p", Options{Events: 5, Traces: 0}); err == nil {
		t.Errorf("Traces=0 accepted")
	}
}

func TestMakeTestbedKinds(t *testing.T) {
	for _, tb := range []Testbed{DSF, DSB, DSFB, None} {
		opts := DefaultTestbedOptions()
		opts.Pairs = 3
		opts.Events = 12
		opts.Traces = 60
		pairs, err := MakeTestbed(tb, opts)
		if err != nil {
			t.Fatalf("MakeTestbed(%s): %v", tb, err)
		}
		if len(pairs) != 3 {
			t.Fatalf("%s: %d pairs, want 3", tb, len(pairs))
		}
		for _, p := range pairs {
			if len(p.Truth) == 0 {
				t.Errorf("%s %s: empty truth", tb, p.Name)
			}
		}
	}
	if _, err := MakeTestbed(Testbed("bogus"), DefaultTestbedOptions()); err == nil {
		t.Errorf("unknown testbed accepted")
	}
}

func TestMakeTestbedDeterministic(t *testing.T) {
	opts := DefaultTestbedOptions()
	opts.Pairs = 2
	opts.Events = 10
	opts.Traces = 50
	p1, err := MakeTestbed(DSB, opts)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := MakeTestbed(DSB, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1 {
		if p1[i].Log2.Traces[0].String() != p2[i].Log2.Traces[0].String() {
			t.Fatalf("same seed produced different pairs")
		}
	}
}

func TestTruthHasNoCompositeNameSep(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	opts := DefaultOptions()
	opts.CompositeMerges = 2
	p, err := GeneratePair(rng, "p", opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range p.Truth {
		for _, e := range append(append([]string{}, c.Left...), c.Right...) {
			if strings.Contains(e, composite.NameSep) {
				t.Errorf("truth event %q contains the composite name separator", e)
			}
		}
	}
}
