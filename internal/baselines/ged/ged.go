// Package ged implements the graph-edit-distance baseline (GED) of the
// paper's evaluation, following the greedy algorithm of Dijkman, Dumas and
// García-Bañuelos (BPM 2009) for business process model similarity. The edit
// distance of a partial node mapping combines the fraction of skipped
// (inserted/deleted) nodes, the fraction of skipped edges, and the average
// substitution distance of mapped node pairs. The greedy search repeatedly
// commits the pair that decreases the distance most.
//
// Node substitution similarity uses labels when available; in the opaque
// setting it falls back to the agreement of normalized node frequencies, a
// purely local signal — which is exactly the weakness the paper exploits:
// dislocated events have distinct local neighborhoods, so GED mismatches
// them.
package ged

import (
	"math"

	"repro/internal/depgraph"
	"repro/internal/label"
	"repro/internal/matching"
)

// Config parameterizes the greedy graph-edit-distance matcher.
type Config struct {
	// WSkipN, WSkipE, WSubN weigh skipped nodes, skipped edges and node
	// substitution in the distance; they should sum to 1.
	WSkipN, WSkipE, WSubN float64
	// Labels is the node label similarity; nil falls back to the
	// frequency-agreement similarity (opaque setting).
	Labels label.Similarity
	// CutOff discards candidate pairs with node similarity below it.
	CutOff float64
	// FreqWeight and DegreeWeight mix the opaque node-substitution signal:
	// agreement of normalized node frequencies and agreement of in/out
	// degrees. They should sum to 1. The paper's GED adaptation compares
	// frequency deviations (Example 2), which FreqWeight = 1 reproduces;
	// DegreeWeight adds local structure.
	FreqWeight, DegreeWeight float64
}

// DefaultConfig returns equal distance weights and the opaque fallback with
// the paper's frequency-deviation substitution signal.
func DefaultConfig() Config {
	return Config{
		WSkipN: 1.0 / 3, WSkipE: 1.0 / 3, WSubN: 1.0 / 3,
		CutOff: 0.05, FreqWeight: 1.0, DegreeWeight: 0,
	}
}

// cand is a candidate node pair with its substitution similarity.
type cand struct {
	i, j int
	s    float64
}

// Result carries the greedy mapping and its final edit distance.
type Result struct {
	Mapping  matching.Mapping
	Distance float64
}

// Match greedily computes a 1:1 node mapping between two dependency graphs
// (without artificial events) minimizing the graph edit distance.
func Match(g1, g2 *depgraph.Graph, cfg Config) (*Result, error) {
	n1, n2 := g1.N(), g2.N()
	sim := make([]float64, n1*n2)
	for i := 0; i < n1; i++ {
		for j := 0; j < n2; j++ {
			sim[i*n2+j] = cfg.nodeSim(g1, g2, i, j)
		}
	}
	var cands []cand
	for i := 0; i < n1; i++ {
		for j := 0; j < n2; j++ {
			if s := sim[i*n2+j]; s >= cfg.CutOff {
				cands = append(cands, cand{i, j, s})
			}
		}
	}
	used1 := make([]bool, n1)
	used2 := make([]bool, n2)
	var mapped []cand
	dist := cfg.distance(g1, g2, nil, sim)
	for {
		bestIdx := -1
		bestDist := dist
		for k, c := range cands {
			if used1[c.i] || used2[c.j] {
				continue
			}
			trial := append(mapped, c)
			d := cfg.distance(g1, g2, trial, sim)
			if d < bestDist-1e-12 {
				bestDist = d
				bestIdx = k
			}
		}
		if bestIdx < 0 {
			break
		}
		c := cands[bestIdx]
		mapped = append(mapped, c)
		used1[c.i] = true
		used2[c.j] = true
		dist = bestDist
	}
	var m matching.Mapping
	for _, c := range mapped {
		m = append(m, matching.NewCorrespondence(
			[]string{g1.Names[c.i]}, []string{g2.Names[c.j]}, c.s))
	}
	return &Result{Mapping: m.Sort(), Distance: dist}, nil
}

// nodeSim is the substitution similarity of two nodes. With labels it is
// the label similarity; in the opaque setting it combines the agreement of
// normalized node frequencies with in/out-degree agreement — all the local
// structure GED has access to.
func (cfg Config) nodeSim(g1, g2 *depgraph.Graph, i, j int) float64 {
	if cfg.Labels != nil {
		return cfg.Labels(g1.Names[i], g2.Names[j])
	}
	agree := func(a, b float64) float64 {
		if a+b == 0 {
			return 1
		}
		return 1 - math.Abs(a-b)/(a+b)
	}
	fw, dw := cfg.FreqWeight, cfg.DegreeWeight
	if fw+dw == 0 {
		fw = 1
	}
	freq := agree(g1.NodeFreq[i], g2.NodeFreq[j])
	din := agree(float64(len(g1.Pre[i])), float64(len(g2.Pre[j])))
	dout := agree(float64(len(g1.Post[i])), float64(len(g2.Post[j])))
	return (fw*freq + dw*(din+dout)/2) / (fw + dw)
}

// distance computes the graph edit distance induced by a partial mapping,
// following the absolute-count formulation of Dijkman et al.: the number of
// inserted/deleted nodes, the number of inserted/deleted edges, and twice
// the accumulated substitution distance of mapped pairs, weighted per the
// configuration. (The fraction-normalized variant makes every mapping
// unprofitable on large graphs: the per-pair substitution penalty dwarfs
// the 2/(n1+n2) skipped-node gain, so the greedy maps nothing.)
func (cfg Config) distance(g1, g2 *depgraph.Graph, mapped []cand, sim []float64) float64 {
	n1, n2 := g1.N(), g2.N()
	m1 := make(map[int]int, len(mapped)) // g1 node -> g2 node
	for _, c := range mapped {
		m1[c.i] = c.j
	}
	skippedNodes := float64(n1 + n2 - 2*len(mapped))
	e1, e2 := g1.EdgeCount(), g2.EdgeCount()
	matchedEdges := 0
	for u, m := range g1.EdgeFreq {
		mu, ok := m1[u]
		if !ok {
			continue
		}
		for v := range m {
			mv, ok := m1[v]
			if !ok {
				continue
			}
			if _, ok := g2.EdgeFreq[mu][mv]; ok {
				matchedEdges++
			}
		}
	}
	skippedEdges := float64(e1 + e2 - 2*matchedEdges)
	var subDist float64
	for _, c := range mapped {
		subDist += 2 * (1 - sim[c.i*n2+c.j])
	}
	return cfg.WSkipN*skippedNodes + cfg.WSkipE*skippedEdges + cfg.WSubN*subDist
}
