package ged

import (
	"testing"

	"repro/internal/depgraph"
	"repro/internal/eventlog"
	"repro/internal/label"
	"repro/internal/paperexample"
)

func chainGraph(t *testing.T, events ...string) *depgraph.Graph {
	t.Helper()
	l := eventlog.New("chain")
	l.Append(eventlog.Trace(events))
	g, err := depgraph.Build(l)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestIdentityMatch(t *testing.T) {
	g := chainGraph(t, "a", "b", "c")
	r, err := Match(g, g, DefaultConfig())
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	if len(r.Mapping) != 3 {
		t.Fatalf("mapped %d pairs, want 3: %v", len(r.Mapping), r.Mapping)
	}
	for _, c := range r.Mapping {
		if c.Left[0] != c.Right[0] {
			t.Errorf("identity graph mismatched %v", c)
		}
	}
	if r.Distance > 1e-9 {
		t.Errorf("identity distance = %g, want 0", r.Distance)
	}
}

func TestMappingIsOneToOne(t *testing.T) {
	g1, err := depgraph.Build(paperexample.Log1())
	if err != nil {
		t.Fatal(err)
	}
	g2, err := depgraph.Build(paperexample.Log2())
	if err != nil {
		t.Fatal(err)
	}
	r, err := Match(g1, g2, DefaultConfig())
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	left := map[string]bool{}
	right := map[string]bool{}
	for _, c := range r.Mapping {
		if left[c.Left[0]] || right[c.Right[0]] {
			t.Fatalf("node used twice in %v", r.Mapping)
		}
		left[c.Left[0]] = true
		right[c.Right[0]] = true
	}
}

func TestGreedyStopsWhenNoImprovement(t *testing.T) {
	// Two completely different graphs: frequency agreement is high but
	// structure is disjoint; distance never dips below the empty mapping
	// for very dissimilar nodes, so the mapping may be small — it must at
	// least terminate and be valid.
	g1 := chainGraph(t, "a", "b")
	l2 := eventlog.New("other")
	l2.Append(eventlog.Trace{"x"})
	l2.Append(eventlog.Trace{"y"})
	l2.Append(eventlog.Trace{"x"})
	l2.Append(eventlog.Trace{"y"})
	g2, err := depgraph.Build(l2)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Match(g1, g2, DefaultConfig())
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	if len(r.Mapping) > 2 {
		t.Errorf("mapping larger than smaller graph: %v", r.Mapping)
	}
}

func TestLabelsGuideMatching(t *testing.T) {
	g1 := chainGraph(t, "pay invoice", "ship order")
	g2 := chainGraph(t, "pay invoice v2", "ship order v2")
	cfg := DefaultConfig()
	cfg.Labels = label.QGramCosine(3)
	r, err := Match(g1, g2, cfg)
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	want := map[string]string{"pay invoice": "pay invoice v2", "ship order": "ship order v2"}
	for _, c := range r.Mapping {
		if want[c.Left[0]] != c.Right[0] {
			t.Errorf("label-guided match wrong: %v", c)
		}
	}
	if len(r.Mapping) != 2 {
		t.Errorf("mapped %d pairs, want 2", len(r.Mapping))
	}
}

// TestDislocationWeakness documents the failure mode the paper exploits:
// on the running example GED (structure only) misses the dislocated pair
// A->2.
func TestDislocationWeakness(t *testing.T) {
	g1, _ := depgraph.Build(paperexample.Log1())
	g2, _ := depgraph.Build(paperexample.Log2())
	r, err := Match(g1, g2, DefaultConfig())
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	// Not asserting the full wrong mapping (greedy details vary), just
	// that GED does not recover the complete singleton ground truth.
	correct := 0
	for _, c := range r.Mapping {
		for _, tc := range paperexample.SingletonTruth() {
			if c.Key() == tc.Key() {
				correct++
			}
		}
	}
	if correct == len(paperexample.SingletonTruth()) {
		t.Skipf("GED unexpectedly solved the dislocated example; greedy tie-breaking changed")
	}
}

func TestDistanceWeights(t *testing.T) {
	g1 := chainGraph(t, "a", "b")
	g2 := chainGraph(t, "a", "b")
	cfg := Config{WSkipN: 1, WSkipE: 0, WSubN: 0, CutOff: 0}
	r, err := Match(g1, g2, cfg)
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	// All nodes mapped: skipped-node fraction 0.
	if r.Distance > 1e-9 {
		t.Errorf("distance = %g, want 0 with full mapping", r.Distance)
	}
}
