// Package flood implements Similarity Flooding (Melnik, Garcia-Molina and
// Rahm, ICDE 2002), the versatile graph-matching algorithm the paper cites
// as the classical 1:1 schema matcher [14]. Similarities propagate over a
// pairwise connectivity graph: a pair (a, x) passes a share of its
// similarity to (b, y) whenever edges a→b and x→y exist, with propagation
// coefficients inversely proportional to the number of equally-labeled
// out-edges. The fixpoint is computed by iteration with normalization.
//
// Like GED and OPQ, Similarity Flooding evaluates local agreement: a pair
// is reinforced only by its direct neighbor pairs, so dislocated events —
// whose neighbors differ across the logs — are not recovered. It is
// included as an additional baseline beyond the paper's three.
package flood

import (
	"fmt"
	"math"

	"repro/internal/depgraph"
	"repro/internal/label"
)

// Config parameterizes the flooding iteration.
type Config struct {
	// Epsilon is the convergence threshold on the residual.
	Epsilon float64
	// MaxRounds caps the iteration.
	MaxRounds int
	// Labels provides the initial similarities; nil starts from a uniform
	// seed (the opaque setting).
	Labels label.Similarity
}

// DefaultConfig mirrors the settings of the original paper.
func DefaultConfig() Config {
	return Config{Epsilon: 1e-4, MaxRounds: 200}
}

// Result holds the fixpoint similarities over all event pairs.
type Result struct {
	Names1, Names2 []string
	Sim            []float64 // row-major |Names1| x |Names2|
	Rounds         int
}

// Compute runs similarity flooding between two dependency graphs (without
// artificial events).
func Compute(g1, g2 *depgraph.Graph, cfg Config) (*Result, error) {
	if g1.HasArtificial || g2.HasArtificial {
		return nil, fmt.Errorf("flood: graphs must not contain the artificial event")
	}
	if cfg.MaxRounds < 1 {
		cfg.MaxRounds = 1
	}
	n1, n2 := g1.N(), g2.N()
	size := n1 * n2
	if size == 0 {
		return &Result{Names1: g1.Names, Names2: g2.Names}, nil
	}
	// Propagation edges of the pairwise connectivity graph, with
	// coefficients 1/(outdeg) on each side, in both directions
	// (the "basic" fixpoint formula of the original paper).
	type prop struct {
		from, to int
		w        float64
	}
	var props []prop
	addProps := func(u1, v1, u2, v2 int) {
		from := u1*n2 + u2
		to := v1*n2 + v2
		// Weight shared among all pairs reachable from (u1,u2) forward.
		w1 := 1.0 / float64(len(g1.Post[u1])*len(g2.Post[u2]))
		props = append(props, prop{from: from, to: to, w: w1})
		// And the reverse direction against the edges.
		w2 := 1.0 / float64(len(g1.Pre[v1])*len(g2.Pre[v2]))
		props = append(props, prop{from: to, to: from, w: w2})
	}
	for u1 := 0; u1 < n1; u1++ {
		for _, v1 := range g1.Post[u1] {
			for u2 := 0; u2 < n2; u2++ {
				for _, v2 := range g2.Post[u2] {
					addProps(u1, v1, u2, v2)
				}
			}
		}
	}
	init := make([]float64, size)
	for i := 0; i < n1; i++ {
		for j := 0; j < n2; j++ {
			if cfg.Labels != nil {
				init[i*n2+j] = cfg.Labels(g1.Names[i], g2.Names[j])
			} else {
				init[i*n2+j] = 1 // uniform seed, opaque setting
			}
		}
	}
	cur := append([]float64(nil), init...)
	next := make([]float64, size)
	rounds := 0
	for ; rounds < cfg.MaxRounds; rounds++ {
		// sigma^{i+1} = normalize(sigma^0 + sigma^i + propagate(sigma^i)),
		// the "C" variant of Melnik et al., which converges fastest.
		for k := range next {
			next[k] = init[k] + cur[k]
		}
		for _, p := range props {
			next[p.to] += cur[p.from] * p.w
		}
		maxV := 0.0
		for _, v := range next {
			if v > maxV {
				maxV = v
			}
		}
		if maxV > 0 {
			for k := range next {
				next[k] /= maxV
			}
		}
		var residual float64
		for k := range next {
			d := next[k] - cur[k]
			residual += d * d
		}
		copy(cur, next)
		if math.Sqrt(residual) <= cfg.Epsilon {
			rounds++
			break
		}
	}
	return &Result{
		Names1: append([]string(nil), g1.Names...),
		Names2: append([]string(nil), g2.Names...),
		Sim:    cur,
		Rounds: rounds,
	}, nil
}
