package flood

import (
	"math"
	"testing"

	"repro/internal/depgraph"
	"repro/internal/eventlog"
	"repro/internal/label"
	"repro/internal/paperexample"
)

func chainGraph(t *testing.T, events ...string) *depgraph.Graph {
	t.Helper()
	l := eventlog.New("chain")
	l.Append(eventlog.Trace(events))
	g, err := depgraph.Build(l)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func lookup(t *testing.T, r *Result, a, b string) float64 {
	t.Helper()
	i, j := -1, -1
	for k, n := range r.Names1 {
		if n == a {
			i = k
		}
	}
	for k, n := range r.Names2 {
		if n == b {
			j = k
		}
	}
	if i < 0 || j < 0 {
		t.Fatalf("pair (%s,%s) missing", a, b)
	}
	return r.Sim[i*len(r.Names2)+j]
}

func TestIdentityChainAligns(t *testing.T) {
	g := chainGraph(t, "a", "b", "c", "d")
	r, err := Compute(g, g, DefaultConfig())
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	// Aligned pairs must dominate their rows.
	for _, e := range []string{"b", "c"} {
		self := lookup(t, r, e, e)
		for _, other := range []string{"a", "d"} {
			if lookup(t, r, e, other) > self+1e-9 {
				t.Errorf("sim(%s,%s) above self similarity", e, other)
			}
		}
	}
}

func TestConvergesAndNormalized(t *testing.T) {
	g1, _ := depgraph.Build(paperexample.Log1())
	g2, _ := depgraph.Build(paperexample.Log2())
	r, err := Compute(g1, g2, DefaultConfig())
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	maxV := 0.0
	for _, v := range r.Sim {
		if v < 0 || v > 1+1e-9 {
			t.Fatalf("similarity out of range: %g", v)
		}
		if v > maxV {
			maxV = v
		}
	}
	if math.Abs(maxV-1) > 1e-6 {
		t.Errorf("fixpoint not normalized: max %g", maxV)
	}
	if r.Rounds < 2 {
		t.Errorf("converged suspiciously fast: %d rounds", r.Rounds)
	}
}

func TestLabelsSeedPropagation(t *testing.T) {
	g1 := chainGraph(t, "pay invoice", "ship order")
	g2 := chainGraph(t, "pay invoicee", "ship orderr")
	cfg := DefaultConfig()
	cfg.Labels = label.QGramCosine(3)
	r, err := Compute(g1, g2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if lookup(t, r, "pay invoice", "pay invoicee") <= lookup(t, r, "pay invoice", "ship orderr") {
		t.Errorf("label seed did not align similar names")
	}
}

func TestRejectsArtificial(t *testing.T) {
	g, _ := depgraph.Build(paperexample.Log1())
	ga, _ := g.AddArtificial()
	if _, err := Compute(ga, g, DefaultConfig()); err == nil {
		t.Errorf("artificial graph accepted")
	}
}

func TestEmptyGraphs(t *testing.T) {
	r, err := Compute(&depgraph.Graph{}, &depgraph.Graph{}, DefaultConfig())
	if err != nil || len(r.Sim) != 0 {
		t.Errorf("empty graphs: %v, %v", r, err)
	}
}

// TestDislocationWeakness documents why flooding is a baseline, not a
// solution: on the running example the dislocated pair (A,2) is not ranked
// above (A,1), unlike with EMS.
func TestDislocationWeakness(t *testing.T) {
	g1, _ := depgraph.Build(paperexample.Log1())
	g2, _ := depgraph.Build(paperexample.Log2())
	r, err := Compute(g1, g2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a2 := lookup(t, r, "A", "2")
	a1 := lookup(t, r, "A", "1")
	if a2 > a1 {
		t.Skipf("flooding unexpectedly solved the dislocated example (a2=%.3f a1=%.3f)", a2, a1)
	}
}
