package icop

import (
	"reflect"
	"testing"

	"repro/internal/eventlog"
	"repro/internal/matching"
)

func logOf(traces ...eventlog.Trace) *eventlog.Log {
	l := eventlog.New("t")
	for _, tr := range traces {
		l.Append(tr)
	}
	return l
}

func TestMatchesSimilarLabels(t *testing.T) {
	l1 := logOf(eventlog.Trace{"pay invoice", "ship order"})
	l2 := logOf(eventlog.Trace{"pay invoice v2", "ship order v2"})
	m, err := Match(l1, l2, DefaultConfig())
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	want := map[string]string{"pay invoice": "pay invoice v2", "ship order": "ship order v2"}
	if len(m) != 2 {
		t.Fatalf("got %d correspondences: %v", len(m), m)
	}
	for _, c := range m {
		if want[c.Left[0]] != c.Right[0] {
			t.Errorf("wrong pair %v", c)
		}
	}
}

func TestFindsCompositeGroups(t *testing.T) {
	// "check inventory"+"validate order" in log 1 always consecutive; log 2
	// has the combined step.
	var tr1 []eventlog.Trace
	for i := 0; i < 10; i++ {
		tr1 = append(tr1, eventlog.Trace{"pay", "check inventory", "validate order", "ship"})
	}
	l1 := logOf(tr1...)
	var tr2 []eventlog.Trace
	for i := 0; i < 10; i++ {
		tr2 = append(tr2, eventlog.Trace{"pay", "check inventory & validate order", "ship"})
	}
	l2 := logOf(tr2...)
	m, err := Match(l1, l2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range m {
		if reflect.DeepEqual(c.Left, []string{"check inventory", "validate order"}) &&
			c.Right[0] == "check inventory & validate order" {
			found = true
		}
	}
	if !found {
		t.Errorf("composite group not found: %v", m)
	}
}

func TestOpaqueNamesFail(t *testing.T) {
	l1 := logOf(eventlog.Trace{"pay invoice", "ship order"})
	l2 := logOf(eventlog.Trace{"#a91b", "#c23d"})
	m, err := Match(l1, l2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	truth := matching.Mapping{
		matching.NewCorrespondence([]string{"pay invoice"}, []string{"#a91b"}, 1),
		matching.NewCorrespondence([]string{"ship order"}, []string{"#c23d"}, 1),
	}
	q := matching.Evaluate(m, truth)
	if q.FMeasure > 0 {
		t.Errorf("label-only matcher unexpectedly matched opaque names: %v", m)
	}
}

func TestNonOverlapping(t *testing.T) {
	l1 := logOf(eventlog.Trace{"review claim", "review claim form"})
	l2 := logOf(eventlog.Trace{"review claim"})
	m, err := Match(l1, l2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, c := range m {
		for _, e := range c.Right {
			if seen[e] {
				t.Fatalf("event %q matched twice: %v", e, m)
			}
			seen[e] = true
		}
	}
}

func TestRequiresLabels(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Labels = nil
	if _, err := Match(logOf(eventlog.Trace{"a"}), logOf(eventlog.Trace{"b"}), cfg); err == nil {
		t.Errorf("nil labels accepted")
	}
}
