// Package icop implements a simplified ICoP-style composite matcher after
// Weidlich, Dijkman and Mendling (CAiSE 2010), which the paper's related
// work discusses as the label-driven approach to m:n correspondences: group
// candidates are generated from the logs, group pairs are scored purely by
// aggregated label similarity, and non-overlapping pairs above a threshold
// are selected greedily.
//
// Because the score is typographic only, the approach is "noneffective on
// opaque event names" (the paper's words) — which is exactly the gap EMS
// fills. It is provided as the composite counterpart of the label-based
// singleton matchers.
package icop

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/composite"
	"repro/internal/eventlog"
	"repro/internal/label"
	"repro/internal/matching"
)

// Config parameterizes the matcher.
type Config struct {
	// Labels scores event-name similarity; required.
	Labels label.Similarity
	// Threshold is the minimum group-pair score to select.
	Threshold float64
	// MaxGroupLen caps candidate group sizes.
	MaxGroupLen int
	// Confidence is the SEQ-pattern link confidence for group candidates.
	Confidence float64
}

// DefaultConfig uses the paper's q-gram cosine measure.
func DefaultConfig() Config {
	return Config{
		Labels:      label.QGramCosine(3),
		Threshold:   0.5,
		MaxGroupLen: 3,
		Confidence:  0.9,
	}
}

// Match computes an m:n mapping between two logs by scoring candidate
// groups (singletons plus SEQ runs) with aggregated label similarity.
func Match(l1, l2 *eventlog.Log, cfg Config) (matching.Mapping, error) {
	if cfg.Labels == nil {
		return nil, fmt.Errorf("icop: label similarity is required")
	}
	if cfg.MaxGroupLen < 1 {
		cfg.MaxGroupLen = 1
	}
	groups1 := candidateGroups(l1, cfg)
	groups2 := candidateGroups(l2, cfg)
	type scored struct {
		g1, g2 []string
		score  float64
	}
	var cands []scored
	for _, a := range groups1 {
		for _, b := range groups2 {
			if s := groupScore(cfg.Labels, a, b); s >= cfg.Threshold {
				cands = append(cands, scored{g1: a, g2: b, score: s})
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		ki := composite.JoinName(cands[i].g1) + "|" + composite.JoinName(cands[i].g2)
		kj := composite.JoinName(cands[j].g1) + "|" + composite.JoinName(cands[j].g2)
		return ki < kj
	})
	used1 := make(map[string]bool)
	used2 := make(map[string]bool)
	var out matching.Mapping
	for _, c := range cands {
		if overlaps(c.g1, used1) || overlaps(c.g2, used2) {
			continue
		}
		mark(c.g1, used1)
		mark(c.g2, used2)
		out = append(out, matching.NewCorrespondence(c.g1, c.g2, c.score))
	}
	return out.Sort(), nil
}

// candidateGroups returns every singleton event plus every SEQ-pattern run
// up to the configured length.
func candidateGroups(l *eventlog.Log, cfg Config) [][]string {
	var out [][]string
	for _, e := range l.Alphabet() {
		out = append(out, []string{e})
	}
	if cfg.MaxGroupLen >= 2 {
		for _, c := range composite.Discover(l, composite.DiscoverOptions{
			Confidence: cfg.Confidence, MaxLen: cfg.MaxGroupLen,
		}) {
			out = append(out, c.Events)
		}
	}
	return out
}

// groupScore compares two groups with ICoP's "virtual documents"
// technique: the labels of each group are concatenated and the documents
// compared with the label similarity, so a composite group matches the
// combined label of its counterpart better than any single constituent
// does.
func groupScore(sim label.Similarity, a, b []string) float64 {
	return sim(strings.Join(a, " "), strings.Join(b, " "))
}

func overlaps(g []string, used map[string]bool) bool {
	for _, e := range g {
		if used[e] {
			return true
		}
	}
	return false
}

func mark(g []string, used map[string]bool) {
	for _, e := range g {
		used[e] = true
	}
}
