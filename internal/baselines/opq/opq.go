// Package opq implements the opaque-name matching baseline (OPQ) following
// Kang and Naughton (SIGMOD 2003): schema matching that ignores names
// entirely and searches for the node mapping minimizing the "normal
// distance" between the weighted dependency graphs — the Euclidean distance
// between corresponding edge weights (node frequencies act as self-edge
// weights).
//
// The search enumerates mappings: exhaustively up to ExhaustiveLimit nodes
// (factorial cost, as the paper notes: OPQ "cannot even finish the matching
// of events more than 30"), then by 2-swap hill climbing with restarts, and
// refuses inputs larger than HardLimit to emulate the paper's timeout.
package opq

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/depgraph"
	"repro/internal/matching"
)

// ErrTooLarge is returned when the input exceeds Config.HardLimit, mirroring
// the paper's observation that OPQ is infeasible beyond ~30 events.
var ErrTooLarge = fmt.Errorf("opq: input exceeds the feasible size limit")

// Config parameterizes the OPQ search.
type Config struct {
	// ExhaustiveLimit is the maximum node count for exact factorial
	// enumeration.
	ExhaustiveLimit int
	// HardLimit is the maximum node count attempted at all; larger inputs
	// return ErrTooLarge.
	HardLimit int
	// Restarts is the number of random restarts of the hill climber.
	Restarts int
	// Seed makes hill climbing deterministic.
	Seed int64
}

// DefaultConfig matches the paper's observed feasibility envelope.
func DefaultConfig() Config {
	return Config{ExhaustiveLimit: 8, HardLimit: 30, Restarts: 12, Seed: 1}
}

// Result carries the best mapping found and its normal distance (lower is
// better).
type Result struct {
	Mapping  matching.Mapping
	Distance float64
}

// Match searches for the bijective node mapping between two dependency
// graphs (without artificial events) minimizing the normal distance. The
// smaller side is padded with dummy nodes of zero weight; pairs assigned to
// dummies are dropped from the returned mapping.
func Match(g1, g2 *depgraph.Graph, cfg Config) (*Result, error) {
	if cfg.HardLimit > 0 && (g1.N() > cfg.HardLimit || g2.N() > cfg.HardLimit) {
		return nil, fmt.Errorf("%w: %d and %d nodes vs limit %d", ErrTooLarge, g1.N(), g2.N(), cfg.HardLimit)
	}
	n := max(g1.N(), g2.N())
	if n == 0 {
		return &Result{}, nil
	}
	w1 := weightMatrix(g1, n)
	w2 := weightMatrix(g2, n)
	var perm []int
	var dist float64
	if n <= cfg.ExhaustiveLimit {
		perm, dist = exhaustive(w1, w2, n)
	} else {
		perm, dist = hillClimb(w1, w2, n, cfg)
	}
	var m matching.Mapping
	for i, j := range perm {
		if i >= g1.N() || j >= g2.N() {
			continue // dummy padding
		}
		m = append(m, matching.NewCorrespondence(
			[]string{g1.Names[i]}, []string{g2.Names[j]}, 1-pairCost(w1, w2, n, i, j, perm)))
	}
	return &Result{Mapping: m.Sort(), Distance: dist}, nil
}

// weightMatrix flattens node and edge frequencies into an n x n matrix:
// diagonal entries are node frequencies, off-diagonal entries edge
// frequencies (0 when absent). Rows/columns beyond the graph are dummy.
func weightMatrix(g *depgraph.Graph, n int) []float64 {
	w := make([]float64, n*n)
	for i := 0; i < g.N(); i++ {
		w[i*n+i] = g.NodeFreq[i]
		for j, f := range g.EdgeFreq[i] {
			w[i*n+j] = f
		}
	}
	return w
}

// distance is the normal (Euclidean) distance between w1 and the
// permutation of w2: sqrt(sum (w1[i][j] - w2[p(i)][p(j)])^2).
func distance(w1, w2 []float64, n int, perm []int) float64 {
	var sum float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d := w1[i*n+j] - w2[perm[i]*n+perm[j]]
			sum += d * d
		}
	}
	return math.Sqrt(sum)
}

// pairCost measures how much the pair (i, perm[i]=j) alone contributes to
// the misalignment; it doubles as a per-pair score for reporting.
func pairCost(w1, w2 []float64, n, i, j int, perm []int) float64 {
	var sum float64
	for k := 0; k < n; k++ {
		d1 := w1[i*n+k] - w2[j*n+perm[k]]
		d2 := w1[k*n+i] - w2[perm[k]*n+j]
		sum += d1*d1 + d2*d2
	}
	return math.Min(1, math.Sqrt(sum))
}

// exhaustive enumerates all n! permutations (Heap's algorithm) and returns
// the best.
func exhaustive(w1, w2 []float64, n int) ([]int, float64) {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := append([]int(nil), perm...)
	bestD := distance(w1, w2, n, perm)
	c := make([]int, n)
	i := 0
	for i < n {
		if c[i] < i {
			if i%2 == 0 {
				perm[0], perm[i] = perm[i], perm[0]
			} else {
				perm[c[i]], perm[i] = perm[i], perm[c[i]]
			}
			if d := distance(w1, w2, n, perm); d < bestD {
				bestD = d
				copy(best, perm)
			}
			c[i]++
			i = 0
		} else {
			c[i] = 0
			i++
		}
	}
	return best, bestD
}

// hillClimb performs 2-swap steepest-descent hill climbing with random
// restarts.
func hillClimb(w1, w2 []float64, n int, cfg Config) ([]int, float64) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	restarts := max(1, cfg.Restarts)
	best := make([]int, n)
	bestD := math.Inf(1)
	perm := make([]int, n)
	for r := 0; r < restarts; r++ {
		for i := range perm {
			perm[i] = i
		}
		if r > 0 {
			rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		}
		d := distance(w1, w2, n, perm)
		for improved := true; improved; {
			improved = false
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					perm[i], perm[j] = perm[j], perm[i]
					if nd := distance(w1, w2, n, perm); nd < d-1e-12 {
						d = nd
						improved = true
					} else {
						perm[i], perm[j] = perm[j], perm[i]
					}
				}
			}
		}
		if d < bestD {
			bestD = d
			copy(best, perm)
		}
	}
	return best, bestD
}
