package opq

import (
	"errors"
	"math"
	"testing"

	"repro/internal/depgraph"
	"repro/internal/eventlog"
)

func chainGraph(t *testing.T, traces ...eventlog.Trace) *depgraph.Graph {
	t.Helper()
	l := eventlog.New("g")
	for _, tr := range traces {
		l.Append(tr)
	}
	g, err := depgraph.Build(l)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestExhaustiveIdentity(t *testing.T) {
	g := chainGraph(t,
		eventlog.Trace{"a", "b", "c"},
		eventlog.Trace{"a", "c"},
	)
	r, err := Match(g, g, DefaultConfig())
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	if r.Distance > 1e-9 {
		t.Errorf("identity distance = %g, want 0", r.Distance)
	}
	for _, c := range r.Mapping {
		if c.Left[0] != c.Right[0] {
			t.Errorf("identity mismatched %v", c)
		}
	}
}

func TestExhaustiveFindsRenamedPermutation(t *testing.T) {
	g1 := chainGraph(t,
		eventlog.Trace{"a", "b", "c", "d"},
		eventlog.Trace{"a", "c", "d"},
	)
	g2 := chainGraph(t,
		eventlog.Trace{"w", "x", "y", "z"},
		eventlog.Trace{"w", "y", "z"},
	)
	r, err := Match(g1, g2, DefaultConfig())
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	want := map[string]string{"a": "w", "b": "x", "c": "y", "d": "z"}
	for _, c := range r.Mapping {
		if want[c.Left[0]] != c.Right[0] {
			t.Errorf("wrong pair %v (distance %g)", c, r.Distance)
		}
	}
	if r.Distance > 1e-9 {
		t.Errorf("isomorphic graphs distance = %g, want 0", r.Distance)
	}
}

func TestHardLimit(t *testing.T) {
	events := make(eventlog.Trace, 31)
	for i := range events {
		events[i] = string(rune('A'+i%26)) + string(rune('0'+i/26))
	}
	g := chainGraph(t, events)
	_, err := Match(g, g, DefaultConfig())
	if !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

func TestHillClimbPath(t *testing.T) {
	// 12 nodes: above the exhaustive limit (8), below the hard limit.
	events := make(eventlog.Trace, 12)
	for i := range events {
		events[i] = string(rune('a' + i))
	}
	g := chainGraph(t, events)
	cfg := DefaultConfig()
	r, err := Match(g, g, cfg)
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	// Hill climbing starts at the identity permutation, which is optimal
	// here; it must find distance 0.
	if r.Distance > 1e-9 {
		t.Errorf("hill-climb identity distance = %g, want 0", r.Distance)
	}
}

func TestDifferentSizesPadded(t *testing.T) {
	g1 := chainGraph(t, eventlog.Trace{"a", "b", "c"})
	g2 := chainGraph(t, eventlog.Trace{"x", "y"})
	r, err := Match(g1, g2, DefaultConfig())
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	if len(r.Mapping) > 2 {
		t.Errorf("more pairs than smaller side: %v", r.Mapping)
	}
}

func TestEmptyGraphs(t *testing.T) {
	r, err := Match(&depgraph.Graph{}, &depgraph.Graph{}, DefaultConfig())
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	if len(r.Mapping) != 0 {
		t.Errorf("empty graphs produced mapping %v", r.Mapping)
	}
}

func TestDeterministic(t *testing.T) {
	events := make(eventlog.Trace, 10)
	for i := range events {
		events[i] = string(rune('a' + i))
	}
	g := chainGraph(t, events)
	r1, err := Match(g, g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Match(g, g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1.Distance-r2.Distance) > 1e-12 || len(r1.Mapping) != len(r2.Mapping) {
		t.Errorf("OPQ not deterministic: %g/%d vs %g/%d",
			r1.Distance, len(r1.Mapping), r2.Distance, len(r2.Mapping))
	}
}

func TestWeightMatrixLayout(t *testing.T) {
	g := chainGraph(t, eventlog.Trace{"a", "b"})
	w := weightMatrix(g, 3)
	ia, ib := g.Index["a"], g.Index["b"]
	if w[ia*3+ia] != 1 || w[ib*3+ib] != 1 {
		t.Errorf("diagonal node frequencies wrong: %v", w)
	}
	if w[ia*3+ib] != 1 {
		t.Errorf("edge weight wrong: %v", w)
	}
	if w[2*3+2] != 0 {
		t.Errorf("dummy row not zero: %v", w)
	}
}
