package bhv

import (
	"math"
	"testing"

	"repro/internal/depgraph"
	"repro/internal/eventlog"
	"repro/internal/label"
	"repro/internal/paperexample"
)

func exampleGraphs(t *testing.T) (*depgraph.Graph, *depgraph.Graph) {
	t.Helper()
	g1, err := depgraph.Build(paperexample.Log1())
	if err != nil {
		t.Fatal(err)
	}
	g2, err := depgraph.Build(paperexample.Log2())
	if err != nil {
		t.Fatal(err)
	}
	return g1, g2
}

func lookup(t *testing.T, r *Result, a, b string) float64 {
	t.Helper()
	i, j := -1, -1
	for k, n := range r.Names1 {
		if n == a {
			i = k
		}
	}
	for k, n := range r.Names2 {
		if n == b {
			j = k
		}
	}
	if i < 0 || j < 0 {
		t.Fatalf("pair (%s,%s) not found", a, b)
	}
	return r.Sim[i*len(r.Names2)+j]
}

// TestExample2Dislocation reproduces the BHV failure mode of Example 2:
// sources A and 1 get similarity 1 while the true dislocated pair (A,2)
// gets 0 — BHV cannot find dislocated matches.
func TestExample2Dislocation(t *testing.T) {
	g1, g2 := exampleGraphs(t)
	r, err := Compute(g1, g2, DefaultConfig())
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	if got := lookup(t, r, "A", "1"); math.Abs(got-1) > 1e-9 {
		t.Errorf("BHV(A,1) = %g, want 1 (both sources)", got)
	}
	if got := lookup(t, r, "A", "2"); got > 1e-9 {
		t.Errorf("BHV(A,2) = %g, want 0 (one-sided source)", got)
	}
}

func TestRejectsArtificialGraphs(t *testing.T) {
	g1, g2 := exampleGraphs(t)
	ga1, _ := g1.AddArtificial()
	if _, err := Compute(ga1, g2, DefaultConfig()); err == nil {
		t.Errorf("artificial graph accepted")
	}
}

func TestRejectsInvalidConfig(t *testing.T) {
	g1, g2 := exampleGraphs(t)
	cfg := DefaultConfig()
	cfg.C = 1.5
	if _, err := Compute(g1, g2, cfg); err == nil {
		t.Errorf("invalid config accepted")
	}
}

func TestRangeAndConvergence(t *testing.T) {
	g1, g2 := exampleGraphs(t)
	r, err := Compute(g1, g2, DefaultConfig())
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	for _, v := range r.Sim {
		if v < 0 || v > 1+1e-9 {
			t.Fatalf("similarity out of range: %g", v)
		}
	}
	if r.Rounds < 1 {
		t.Errorf("no iteration happened")
	}
}

// TestPropagationRewardsSharedStructure: identical chains score their
// aligned pairs higher than misaligned ones.
func TestPropagationRewardsSharedStructure(t *testing.T) {
	l := eventlog.New("chain")
	l.Append(eventlog.Trace{"a", "b", "c"})
	g, err := depgraph.Build(l)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Compute(g, g, DefaultConfig())
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	if lookup(t, r, "b", "b") <= lookup(t, r, "b", "c") {
		t.Errorf("aligned pair (b,b)=%g not above (b,c)=%g",
			lookup(t, r, "b", "b"), lookup(t, r, "b", "c"))
	}
}

func TestLabelBlending(t *testing.T) {
	g1, g2 := exampleGraphs(t)
	cfg := DefaultConfig()
	cfg.Alpha = 0.5
	cfg.Labels = label.QGramCosine(3)
	r, err := Compute(g1, g2, cfg)
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	// With labels, the one-sided-source pair (A,2) gets the label share.
	if got := lookup(t, r, "A", "2"); got != 0.5*label.QGramCosine(3)("A", "2") {
		t.Errorf("label share not applied to one-sided source: %g", got)
	}
}
