// Package bhv implements the behavioural similarity baseline (BHV) of the
// paper's evaluation: a SimRank-like iterative similarity over dependency
// graphs in the style of Nejati et al. (ICSE 2007), propagating forward from
// predecessors only and without the artificial event. Source events (empty
// pre-set) on both sides are fixed at similarity 1, which is exactly why the
// baseline cannot discover dislocated matches: a dislocated event that lost
// its true predecessors looks like a source and bonds to other sources.
package bhv

import (
	"fmt"
	"math"

	"repro/internal/depgraph"
	"repro/internal/label"
)

// Config parameterizes the behavioural similarity.
type Config struct {
	// Alpha weighs structure against label similarity, as in EMS.
	Alpha float64
	// C is the decay constant of the edge-agreement factor.
	C float64
	// Epsilon is the convergence threshold.
	Epsilon float64
	// MaxRounds caps iteration.
	MaxRounds int
	// Labels is the label similarity; nil means opaque (all zero).
	Labels label.Similarity
}

// DefaultConfig mirrors the EMS defaults (alpha=1, c=0.8).
func DefaultConfig() Config {
	return Config{Alpha: 1.0, C: 0.8, Epsilon: 1e-4, MaxRounds: 100}
}

// Result holds the similarity matrix over the events of the two graphs.
type Result struct {
	Names1, Names2 []string
	Sim            []float64 // row-major |Names1| x |Names2|
	Rounds         int
}

// Compute runs the behavioural similarity between two dependency graphs.
// The graphs must not contain the artificial event (BHV predates it).
func Compute(g1, g2 *depgraph.Graph, cfg Config) (*Result, error) {
	if g1.HasArtificial || g2.HasArtificial {
		return nil, fmt.Errorf("bhv: graphs must not contain the artificial event")
	}
	if cfg.Alpha < 0 || cfg.Alpha > 1 || cfg.C <= 0 || cfg.C >= 1 {
		return nil, fmt.Errorf("bhv: invalid config alpha=%g c=%g", cfg.Alpha, cfg.C)
	}
	if cfg.MaxRounds < 1 {
		cfg.MaxRounds = 1
	}
	n1, n2 := g1.N(), g2.N()
	lab := make([]float64, n1*n2)
	if cfg.Alpha < 1 && cfg.Labels != nil {
		for i := 0; i < n1; i++ {
			for j := 0; j < n2; j++ {
				lab[i*n2+j] = cfg.Labels(g1.Names[i], g2.Names[j])
			}
		}
	}
	cur := make([]float64, n1*n2)
	prev := make([]float64, n1*n2)
	fixed := make([]bool, n1*n2)
	for i := 0; i < n1; i++ {
		for j := 0; j < n2; j++ {
			if len(g1.Pre[i]) == 0 && len(g2.Pre[j]) == 0 {
				// Both are sources: maximal structural agreement.
				cur[i*n2+j] = cfg.Alpha + (1-cfg.Alpha)*lab[i*n2+j]
				fixed[i*n2+j] = true
			} else if len(g1.Pre[i]) == 0 || len(g2.Pre[j]) == 0 {
				// One-sided source: no predecessor evidence can ever arrive.
				cur[i*n2+j] = (1 - cfg.Alpha) * lab[i*n2+j]
				fixed[i*n2+j] = true
			}
		}
	}
	agreement := func(p1, v1, p2, v2 int) float64 {
		f1 := g1.EdgeFreq[p1][v1]
		f2 := g2.EdgeFreq[p2][v2]
		if f1+f2 == 0 {
			return 0
		}
		return cfg.C * (1 - math.Abs(f1-f2)/(f1+f2))
	}
	rounds := 0
	for ; rounds < cfg.MaxRounds; rounds++ {
		copy(prev, cur)
		var maxDelta float64
		for v1 := 0; v1 < n1; v1++ {
			for v2 := 0; v2 < n2; v2++ {
				idx := v1*n2 + v2
				if fixed[idx] {
					continue
				}
				var s12 float64
				for _, p1 := range g1.Pre[v1] {
					best := 0.0
					for _, p2 := range g2.Pre[v2] {
						if v := agreement(p1, v1, p2, v2) * prev[p1*n2+p2]; v > best {
							best = v
						}
					}
					s12 += best
				}
				s12 /= float64(len(g1.Pre[v1]))
				var s21 float64
				for _, p2 := range g2.Pre[v2] {
					best := 0.0
					for _, p1 := range g1.Pre[v1] {
						if v := agreement(p1, v1, p2, v2) * prev[p1*n2+p2]; v > best {
							best = v
						}
					}
					s21 += best
				}
				s21 /= float64(len(g2.Pre[v2]))
				v := cfg.Alpha*(s12+s21)/2 + (1-cfg.Alpha)*lab[idx]
				if d := math.Abs(v - prev[idx]); d > maxDelta {
					maxDelta = d
				}
				cur[idx] = v
			}
		}
		if maxDelta <= cfg.Epsilon {
			rounds++
			break
		}
	}
	return &Result{
		Names1: append([]string(nil), g1.Names...),
		Names2: append([]string(nil), g2.Names...),
		Sim:    cur,
		Rounds: rounds,
	}, nil
}
