// Package align aligns traces across heterogeneous event logs under an
// event mapping — the downstream application the paper's introduction
// motivates: once correspondences are established, provenance queries like
// "find the order in subsidiary B that was processed like this one in
// subsidiary A" become trace alignment problems.
//
// Alignment is computed by dynamic programming over the two traces, where
// two events align at zero cost when the mapping relates them (composite
// groups align one event of a side against the whole group on the other),
// and insertions/deletions/mismatches cost one.
package align

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/eventlog"
	"repro/internal/matching"
)

// Aligner answers trace-alignment queries under a fixed event mapping.
type Aligner struct {
	// left maps a log-1 event name to its correspondence id; right
	// likewise for log-2 events. Events sharing an id correspond.
	left, right map[string]int
}

// New builds an aligner from a mapping. Events appearing in several
// correspondences are rejected (mappings from Select/Consensus are
// conflict-free by construction).
func New(m matching.Mapping) (*Aligner, error) {
	a := &Aligner{left: make(map[string]int), right: make(map[string]int)}
	for id, c := range m {
		for _, e := range c.Left {
			if _, dup := a.left[e]; dup {
				return nil, fmt.Errorf("align: event %q appears in multiple correspondences", e)
			}
			a.left[e] = id
		}
		for _, e := range c.Right {
			if _, dup := a.right[e]; dup {
				return nil, fmt.Errorf("align: event %q appears in multiple correspondences", e)
			}
			a.right[e] = id
		}
	}
	return a, nil
}

// Op is one step of an alignment.
type Op struct {
	// Kind is "match", "mismatch", "del" (log-1 event unmatched) or "ins"
	// (log-2 event unmatched).
	Kind string
	// Left and Right are the aligned events ("" for gaps).
	Left, Right string
}

// Alignment is the result of aligning two traces.
type Alignment struct {
	Ops []Op
	// Cost is the edit cost: matches are free, everything else costs 1.
	Cost int
	// Similarity is 1 - Cost/max(len1, len2), in [0, 1].
	Similarity float64
}

// corresponds reports whether events e1 (log 1) and e2 (log 2) are related
// by the mapping.
func (a *Aligner) corresponds(e1, e2 string) bool {
	id1, ok1 := a.left[e1]
	id2, ok2 := a.right[e2]
	return ok1 && ok2 && id1 == id2
}

// Align computes a minimum-cost alignment of a log-1 trace against a log-2
// trace.
func (a *Aligner) Align(t1, t2 eventlog.Trace) Alignment {
	n, m := len(t1), len(t2)
	// dp[i][j]: min cost aligning t1[:i] against t2[:j]; among equal-cost
	// alignments mt[i][j] tracks the maximum number of matches, so the
	// reported alignment is the most informative optimal one.
	dp := make([][]int, n+1)
	mt := make([][]int, n+1)
	for i := range dp {
		dp[i] = make([]int, m+1)
		mt[i] = make([]int, m+1)
		dp[i][0] = i
	}
	for j := 0; j <= m; j++ {
		dp[0][j] = j
	}
	better := func(c1, m1, c2, m2 int) bool {
		return c1 < c2 || (c1 == c2 && m1 > m2)
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			match := a.corresponds(t1[i-1], t2[j-1])
			bestC, bestM := dp[i-1][j-1], mt[i-1][j-1]
			if match {
				bestM++
			} else {
				bestC++
			}
			if c, mm := dp[i-1][j]+1, mt[i-1][j]; better(c, mm, bestC, bestM) {
				bestC, bestM = c, mm
			}
			if c, mm := dp[i][j-1]+1, mt[i][j-1]; better(c, mm, bestC, bestM) {
				bestC, bestM = c, mm
			}
			dp[i][j] = bestC
			mt[i][j] = bestM
		}
	}
	// Backtrack along the transitions that realize (dp, mt).
	var ops []Op
	i, j := n, m
	for i > 0 || j > 0 {
		if i > 0 && j > 0 {
			match := a.corresponds(t1[i-1], t2[j-1])
			subC, subM := dp[i-1][j-1], mt[i-1][j-1]
			kind := "mismatch"
			if match {
				subM++
				kind = "match"
			} else {
				subC++
			}
			if subC == dp[i][j] && subM == mt[i][j] {
				ops = append(ops, Op{Kind: kind, Left: t1[i-1], Right: t2[j-1]})
				i, j = i-1, j-1
				continue
			}
		}
		if i > 0 && (j == 0 || (dp[i-1][j]+1 == dp[i][j] && mt[i-1][j] == mt[i][j])) {
			ops = append(ops, Op{Kind: "del", Left: t1[i-1]})
			i--
			continue
		}
		ops = append(ops, Op{Kind: "ins", Right: t2[j-1]})
		j--
	}
	for l, r := 0, len(ops)-1; l < r; l, r = l+1, r-1 {
		ops[l], ops[r] = ops[r], ops[l]
	}
	out := Alignment{Ops: ops, Cost: dp[n][m]}
	if mx := max(n, m); mx > 0 {
		out.Similarity = 1 - float64(out.Cost)/float64(mx)
	} else {
		out.Similarity = 1
	}
	return out
}

// Hit is one result of a cross-log trace search.
type Hit struct {
	// Index is the position of the trace in the searched log.
	Index int
	Alignment
}

// Search finds the k log-2 traces best aligned with the query log-1 trace,
// in descending similarity order.
func (a *Aligner) Search(query eventlog.Trace, l2 *eventlog.Log, k int) []Hit {
	if k <= 0 {
		return nil
	}
	hits := make([]Hit, 0, l2.Len())
	for i, t := range l2.Traces {
		hits = append(hits, Hit{Index: i, Alignment: a.Align(query, t)})
	}
	sort.Slice(hits, func(x, y int) bool {
		if hits[x].Similarity != hits[y].Similarity {
			return hits[x].Similarity > hits[y].Similarity
		}
		return hits[x].Index < hits[y].Index
	})
	if k < len(hits) {
		hits = hits[:k]
	}
	return hits
}

// String renders the alignment as two gap-padded rows.
func (al Alignment) String() string {
	var top, bottom []string
	for _, op := range al.Ops {
		l, r := op.Left, op.Right
		if l == "" {
			l = "-"
		}
		if r == "" {
			r = "-"
		}
		w := max(len(l), len(r))
		top = append(top, pad(l, w))
		bottom = append(bottom, pad(r, w))
	}
	return strings.Join(top, " | ") + "\n" + strings.Join(bottom, " | ")
}

func pad(s string, w int) string {
	for len(s) < w {
		s += " "
	}
	return s
}
