package align

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/eventlog"
	"repro/internal/matching"
	"repro/internal/paperexample"
)

func paperAligner(t *testing.T) *Aligner {
	t.Helper()
	a, err := New(paperexample.Truth())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return a
}

func TestAlignPerfectCorrespondence(t *testing.T) {
	a := paperAligner(t)
	// Trace A C D E F vs 2 4 5 6 (after dropping the extra event 1): C and
	// D both map to 4, so one of them aligns and the other is a deletion.
	al := a.Align(
		eventlog.Trace{"A", "C", "D", "E", "F"},
		eventlog.Trace{"2", "4", "5", "6"},
	)
	if al.Cost != 1 {
		t.Errorf("cost = %d, want 1 (the composite partner), ops:\n%s", al.Cost, al)
	}
}

func TestAlignDislocatedTrace(t *testing.T) {
	a := paperAligner(t)
	al := a.Align(
		eventlog.Trace{"A", "C", "D", "E", "F"},
		eventlog.Trace{"1", "2", "4", "5", "6"}, // the full log-2 trace
	)
	// Extra event 1 (ins) + composite partner (del) = 2.
	if al.Cost != 2 {
		t.Errorf("cost = %d, want 2:\n%s", al.Cost, al)
	}
	kinds := map[string]int{}
	for _, op := range al.Ops {
		kinds[op.Kind]++
	}
	if kinds["ins"] != 1 || kinds["del"] != 1 || kinds["match"] != 4 {
		t.Errorf("ops = %v, want 4 matches, 1 ins, 1 del", kinds)
	}
}

func TestAlignEmptyTraces(t *testing.T) {
	a := paperAligner(t)
	al := a.Align(nil, nil)
	if al.Cost != 0 || al.Similarity != 1 {
		t.Errorf("empty alignment = %+v", al)
	}
	al = a.Align(eventlog.Trace{"A"}, nil)
	if al.Cost != 1 || len(al.Ops) != 1 || al.Ops[0].Kind != "del" {
		t.Errorf("one-sided alignment = %+v", al)
	}
}

func TestNewRejectsConflicts(t *testing.T) {
	m := matching.Mapping{
		matching.NewCorrespondence([]string{"a"}, []string{"x"}, 1),
		matching.NewCorrespondence([]string{"a"}, []string{"y"}, 1),
	}
	if _, err := New(m); err == nil {
		t.Errorf("conflicting mapping accepted")
	}
}

func TestSearchRanksSimilarTraces(t *testing.T) {
	a := paperAligner(t)
	query := eventlog.Trace{"A", "C", "D", "E", "F"}
	hits := a.Search(query, paperexample.Log2(), 3)
	if len(hits) != 3 {
		t.Fatalf("got %d hits", len(hits))
	}
	// The cash traces (1 2 4 5 6) must rank above the card traces.
	best := paperexample.Log2().Traces[hits[0].Index]
	if !best.Contains("2") {
		t.Errorf("best hit %v does not contain the cash step", best)
	}
	for i := 1; i < len(hits); i++ {
		if hits[i].Similarity > hits[i-1].Similarity {
			t.Errorf("hits not sorted")
		}
	}
	if a.Search(query, paperexample.Log2(), 0) != nil {
		t.Errorf("k=0 returned hits")
	}
}

func TestAlignmentString(t *testing.T) {
	a := paperAligner(t)
	al := a.Align(eventlog.Trace{"A"}, eventlog.Trace{"1", "2"})
	s := al.String()
	if !strings.Contains(s, "-") || !strings.Contains(s, "A") {
		t.Errorf("rendering missing gaps or events:\n%s", s)
	}
	if len(strings.Split(s, "\n")) != 2 {
		t.Errorf("rendering not two rows:\n%s", s)
	}
}

// Property: cost is symmetric-ish in structure — it never exceeds
// len(t1)+len(t2), and similarity stays in [0,1]; identical traces under an
// identity mapping cost 0.
func TestAlignProperties(t *testing.T) {
	idMap := matching.Mapping{}
	events := []string{"a", "b", "c", "d"}
	for _, e := range events {
		idMap = append(idMap, matching.NewCorrespondence([]string{e}, []string{e}, 1))
	}
	a, err := New(idMap)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() eventlog.Trace {
			n := rng.Intn(8)
			tr := make(eventlog.Trace, n)
			for i := range tr {
				tr[i] = events[rng.Intn(len(events))]
			}
			return tr
		}
		t1, t2 := mk(), mk()
		al := a.Align(t1, t2)
		if al.Cost > len(t1)+len(t2) || al.Similarity < 0 || al.Similarity > 1 {
			return false
		}
		same := a.Align(t1, t1)
		return same.Cost == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
