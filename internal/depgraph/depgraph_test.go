package depgraph

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/eventlog"
	"repro/internal/paperexample"
)

func buildLog1(t *testing.T) *Graph {
	t.Helper()
	g, err := Build(paperexample.Log1())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func buildLog2(t *testing.T) *Graph {
	t.Helper()
	g, err := Build(paperexample.Log2())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func edge(t *testing.T, g *Graph, a, b string) float64 {
	t.Helper()
	f, ok := g.Freq(g.Index[a], g.Index[b])
	if !ok {
		t.Fatalf("edge (%s,%s) missing", a, b)
	}
	return f
}

// TestFigure1Frequencies validates the reconstructed example against the
// frequencies printed in Figures 1(c) and 1(d) of the paper.
func TestFigure1Frequencies(t *testing.T) {
	g1 := buildLog1(t)
	if got := g1.NodeFreq[g1.Index["A"]]; math.Abs(got-0.4) > 1e-12 {
		t.Errorf("f(A) = %g, want 0.4", got)
	}
	if got := g1.NodeFreq[g1.Index["C"]]; math.Abs(got-1.0) > 1e-12 {
		t.Errorf("f(C) = %g, want 1.0", got)
	}
	if got := edge(t, g1, "A", "C"); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("f(A,C) = %g, want 0.4", got)
	}
	if got := edge(t, g1, "B", "C"); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("f(B,C) = %g, want 0.6", got)
	}
	if got := edge(t, g1, "C", "D"); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("f(C,D) = %g, want 1.0", got)
	}
	g2 := buildLog2(t)
	if got := g2.NodeFreq[g2.Index["1"]]; math.Abs(got-1.0) > 1e-12 {
		t.Errorf("f(1) = %g, want 1.0", got)
	}
	if got := g2.NodeFreq[g2.Index["2"]]; math.Abs(got-0.4) > 1e-12 {
		t.Errorf("f(2) = %g, want 0.4", got)
	}
	if got := edge(t, g2, "1", "2"); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("f(1,2) = %g, want 0.4", got)
	}
}

func TestBuildAdjacency(t *testing.T) {
	g := buildLog1(t)
	c := g.Index["C"]
	var preNames []string
	for _, p := range g.Pre[c] {
		preNames = append(preNames, g.Names[p])
	}
	if !reflect.DeepEqual(preNames, []string{"A", "B"}) {
		t.Errorf("pre(C) = %v, want [A B]", preNames)
	}
	var postNames []string
	for _, p := range g.Post[c] {
		postNames = append(postNames, g.Names[p])
	}
	if !reflect.DeepEqual(postNames, []string{"D"}) {
		t.Errorf("post(C) = %v, want [D]", postNames)
	}
}

func TestBuildRejectsReservedName(t *testing.T) {
	l := eventlog.New("bad")
	l.Append(eventlog.Trace{ArtificialName, "a"})
	if _, err := Build(l); err == nil {
		t.Errorf("reserved artificial name accepted")
	}
}

func TestBuildRejectsEmptyLog(t *testing.T) {
	if _, err := Build(eventlog.New("empty")); err == nil {
		t.Errorf("empty log accepted")
	}
}

func TestAddArtificial(t *testing.T) {
	g := buildLog1(t)
	ga, err := g.AddArtificial()
	if err != nil {
		t.Fatalf("AddArtificial: %v", err)
	}
	if !ga.HasArtificial || ga.Names[0] != ArtificialName {
		t.Fatalf("artificial event not at index 0")
	}
	if ga.N() != g.N()+1 {
		t.Fatalf("N = %d, want %d", ga.N(), g.N()+1)
	}
	// Every real event gains edges to and from v^X with frequency f(v).
	for v := 1; v < ga.N(); v++ {
		name := ga.Names[v]
		want := g.NodeFreq[g.Index[name]]
		if f, ok := ga.Freq(0, v); !ok || math.Abs(f-want) > 1e-12 {
			t.Errorf("f(vX,%s) = %g,%v, want %g", name, f, ok, want)
		}
		if f, ok := ga.Freq(v, 0); !ok || math.Abs(f-want) > 1e-12 {
			t.Errorf("f(%s,vX) = %g,%v, want %g", name, f, ok, want)
		}
	}
	// Real edges are preserved.
	if f, ok := ga.Freq(ga.Index["A"], ga.Index["C"]); !ok || math.Abs(f-0.4) > 1e-12 {
		t.Errorf("f(A,C) after artificial = %g,%v, want 0.4", f, ok)
	}
	if _, err := ga.AddArtificial(); err == nil {
		t.Errorf("double AddArtificial accepted")
	}
}

func TestRealCountAndStart(t *testing.T) {
	g := buildLog1(t)
	if g.RealCount() != 6 || g.RealStart() != 0 {
		t.Errorf("plain graph: RealCount=%d RealStart=%d, want 6,0", g.RealCount(), g.RealStart())
	}
	ga, _ := g.AddArtificial()
	if ga.RealCount() != 6 || ga.RealStart() != 1 {
		t.Errorf("artificial graph: RealCount=%d RealStart=%d, want 6,1", ga.RealCount(), ga.RealStart())
	}
}

func TestFilterMinFrequency(t *testing.T) {
	g := buildLog1(t)
	f := g.FilterMinFrequency(0.5)
	if _, ok := f.Freq(f.Index["A"], f.Index["C"]); ok {
		t.Errorf("edge (A,C) with frequency 0.4 survived threshold 0.5")
	}
	if _, ok := f.Freq(f.Index["B"], f.Index["C"]); !ok {
		t.Errorf("edge (B,C) with frequency 0.6 removed by threshold 0.5")
	}
	// Original untouched.
	if _, ok := g.Freq(g.Index["A"], g.Index["C"]); !ok {
		t.Errorf("FilterMinFrequency mutated the receiver")
	}
	// Zero threshold is identity.
	f0 := g.FilterMinFrequency(0)
	if f0.EdgeCount() != g.EdgeCount() {
		t.Errorf("threshold 0 removed edges: %d vs %d", f0.EdgeCount(), g.EdgeCount())
	}
}

func TestReverse(t *testing.T) {
	g := buildLog1(t)
	r := g.Reverse()
	if f, ok := r.Freq(r.Index["C"], r.Index["A"]); !ok || math.Abs(f-0.4) > 1e-12 {
		t.Errorf("reversed edge (C,A) = %g,%v, want 0.4", f, ok)
	}
	if _, ok := r.Freq(r.Index["A"], r.Index["C"]); ok {
		t.Errorf("original edge direction survived reversal")
	}
	rr := r.Reverse()
	if !reflect.DeepEqual(rr.EdgeFreq, g.EdgeFreq) {
		t.Errorf("double reversal differs from original")
	}
}

func TestCloneIndependent(t *testing.T) {
	g := buildLog1(t)
	c := g.Clone()
	delete(c.EdgeFreq[c.Index["A"]], c.Index["C"])
	if _, ok := g.Freq(g.Index["A"], g.Index["C"]); !ok {
		t.Errorf("Clone shares edge maps")
	}
}

// TestLongestFromArtificial checks l(v) on the acyclic example graph:
// Example 5 of the paper states l(A) = 1 and that C converges at round 2
// and D at round 3, i.e. l(C) = 2 and l(D) = 3.
func TestLongestFromArtificial(t *testing.T) {
	g, _ := buildLog1(t).AddArtificial()
	l, err := g.LongestFromArtificial()
	if err != nil {
		t.Fatalf("LongestFromArtificial: %v", err)
	}
	want := map[string]int{"A": 1, "B": 1, "C": 2, "D": 3, "E": 4, "F": 4}
	// E and F are concurrent: E->F and F->E both exist, forming a cycle, so
	// both are Infinite in the reconstructed log.
	wantEF := Infinite
	for name, w := range want {
		got := l[g.Index[name]]
		if name == "E" || name == "F" {
			if got != wantEF {
				t.Errorf("l(%s) = %d, want Infinite (E/F cycle)", name, got)
			}
			continue
		}
		if got != w {
			t.Errorf("l(%s) = %d, want %d", name, got, w)
		}
	}
	if l[0] != 0 {
		t.Errorf("l(vX) = %d, want 0", l[0])
	}
}

func TestLongestFromArtificialRequiresArtificial(t *testing.T) {
	if _, err := buildLog1(t).LongestFromArtificial(); err == nil {
		t.Errorf("plain graph accepted")
	}
}

func TestLongestFromArtificialPureChain(t *testing.T) {
	l := eventlog.New("chain")
	l.Append(eventlog.Trace{"a", "b", "c", "d"})
	g, err := Build(l)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	ga, _ := g.AddArtificial()
	dist, err := ga.LongestFromArtificial()
	if err != nil {
		t.Fatalf("LongestFromArtificial: %v", err)
	}
	want := map[string]int{"a": 1, "b": 2, "c": 3, "d": 4}
	for name, w := range want {
		if got := dist[ga.Index[name]]; got != w {
			t.Errorf("l(%s) = %d, want %d", name, got, w)
		}
	}
}

func TestLongestFromArtificialLoop(t *testing.T) {
	l := eventlog.New("loop")
	l.Append(eventlog.Trace{"a", "b", "a", "c"})
	g, _ := Build(l)
	ga, _ := g.AddArtificial()
	dist, err := ga.LongestFromArtificial()
	if err != nil {
		t.Fatalf("LongestFromArtificial: %v", err)
	}
	// a<->b is a cycle; c is downstream of it. All three are Infinite.
	for _, name := range []string{"a", "b", "c"} {
		if got := dist[ga.Index[name]]; got != Infinite {
			t.Errorf("l(%s) = %d, want Infinite", name, got)
		}
	}
}

func TestAncestorsDescendants(t *testing.T) {
	g, _ := buildLog1(t).AddArtificial()
	d := g.Index["D"]
	anc := g.Ancestors(map[int]bool{d: true})
	var names []string
	for v := range anc {
		names = append(names, g.Names[v])
	}
	got := make(map[string]bool)
	for _, n := range names {
		got[n] = true
	}
	for _, want := range []string{"A", "B", "C"} {
		if !got[want] {
			t.Errorf("Ancestors(D) missing %s (got %v)", want, names)
		}
	}
	if got[ArtificialName] {
		t.Errorf("Ancestors(D) contains the artificial event")
	}
	desc := g.Descendants(map[int]bool{g.Index["C"]: true})
	for _, want := range []string{"D", "E", "F"} {
		if !desc[g.Index[want]] {
			t.Errorf("Descendants(C) missing %s", want)
		}
	}
	if desc[g.Index["A"]] {
		t.Errorf("Descendants(C) contains A")
	}
}

func TestFromFrequencies(t *testing.T) {
	g, err := FromFrequencies(
		map[string]float64{"a": 1, "b": 0.5},
		map[[2]string]float64{{"a", "b"}: 0.5},
	)
	if err != nil {
		t.Fatalf("FromFrequencies: %v", err)
	}
	if f, ok := g.Freq(g.Index["a"], g.Index["b"]); !ok || f != 0.5 {
		t.Errorf("edge (a,b) = %g,%v, want 0.5", f, ok)
	}
	if len(g.Pre[g.Index["b"]]) != 1 {
		t.Errorf("pre(b) size = %d, want 1", len(g.Pre[g.Index["b"]]))
	}
}

func TestFromFrequenciesErrors(t *testing.T) {
	if _, err := FromFrequencies(nil, nil); err == nil {
		t.Errorf("empty node set accepted")
	}
	if _, err := FromFrequencies(map[string]float64{"a": 2}, nil); err == nil {
		t.Errorf("out-of-range node frequency accepted")
	}
	if _, err := FromFrequencies(map[string]float64{"a": 1}, map[[2]string]float64{{"a", "z"}: 0.5}); err == nil {
		t.Errorf("edge to unknown node accepted")
	}
	if _, err := FromFrequencies(map[string]float64{"a": 1}, map[[2]string]float64{{"a", "a"}: 7}); err == nil {
		t.Errorf("out-of-range edge frequency accepted")
	}
	if _, err := FromFrequencies(map[string]float64{ArtificialName: 1}, nil); err == nil {
		t.Errorf("reserved name accepted")
	}
}

// Property: for random logs, AddArtificial always yields pre/post sets that
// contain v^X for every real event, and l(v) >= 1 for all real events.
func TestArtificialInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := randomLog(rng)
		g, err := Build(l)
		if err != nil {
			return false
		}
		ga, err := g.AddArtificial()
		if err != nil {
			return false
		}
		for v := 1; v < ga.N(); v++ {
			if len(ga.Pre[v]) == 0 || ga.Pre[v][0] != 0 {
				return false
			}
			if len(ga.Post[v]) == 0 || ga.Post[v][0] != 0 {
				return false
			}
		}
		dist, err := ga.LongestFromArtificial()
		if err != nil {
			return false
		}
		for v := 1; v < ga.N(); v++ {
			if dist[v] < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: filtering can only remove edges, never add, and the result of
// filtering with a higher threshold is a subgraph of a lower one.
func TestFilterMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := Build(randomLog(rng))
		if err != nil {
			return false
		}
		lo := g.FilterMinFrequency(0.2)
		hi := g.FilterMinFrequency(0.6)
		if lo.EdgeCount() > g.EdgeCount() || hi.EdgeCount() > lo.EdgeCount() {
			return false
		}
		for u := range hi.EdgeFreq {
			for v := range hi.EdgeFreq[u] {
				if _, ok := lo.Freq(u, v); !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestAvgDegree(t *testing.T) {
	g := buildLog1(t)
	if got := g.AvgDegree(); math.Abs(got-float64(g.EdgeCount())/6) > 1e-12 {
		t.Errorf("AvgDegree = %g", got)
	}
}

func randomLog(rng *rand.Rand) *eventlog.Log {
	events := []string{"a", "b", "c", "d", "e", "f"}
	l := eventlog.New("rand")
	n := 1 + rng.Intn(8)
	for i := 0; i < n; i++ {
		ln := 1 + rng.Intn(6)
		tr := make(eventlog.Trace, ln)
		for j := range tr {
			tr[j] = events[rng.Intn(len(events))]
		}
		l.Append(tr)
	}
	return l
}
