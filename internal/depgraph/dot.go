package depgraph

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the dependency graph in Graphviz DOT format, mirroring
// the visual conventions of the paper's Figure 2: solid edges with
// normalized frequencies as labels, and the artificial event and its edges
// dashed.
func (g *Graph) WriteDOT(w io.Writer, name string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=LR;\n  node [shape=circle];\n")
	for i, n := range g.Names {
		if g.HasArtificial && i == 0 {
			fmt.Fprintf(&b, "  n%d [label=\"vX\", style=dashed];\n", i)
			continue
		}
		fmt.Fprintf(&b, "  n%d [label=%q];\n", i, n)
	}
	for u := range g.EdgeFreq {
		for v, f := range g.EdgeFreq[u] {
			style := ""
			if g.HasArtificial && (u == 0 || v == 0) {
				style = ", style=dashed"
			}
			fmt.Fprintf(&b, "  n%d -> n%d [label=\"%.2f\"%s];\n", u, v, f, style)
		}
	}
	b.WriteString("}\n")
	if _, err := io.WriteString(w, b.String()); err != nil {
		return fmt.Errorf("depgraph: write dot: %w", err)
	}
	return nil
}
