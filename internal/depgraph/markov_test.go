package depgraph

import (
	"math"
	"testing"

	"repro/internal/eventlog"
	"repro/internal/paperexample"
)

func TestBuildMarkovTransitionProbabilities(t *testing.T) {
	l := eventlog.New("m")
	l.Append(eventlog.Trace{"a", "b"})
	l.Append(eventlog.Trace{"a", "c"})
	l.Append(eventlog.Trace{"a", "b"})
	g, err := BuildMarkov(l)
	if err != nil {
		t.Fatalf("BuildMarkov: %v", err)
	}
	// a is followed by b in 2 of 3 occurrences, by c in 1 of 3.
	if f, ok := g.Freq(g.Index["a"], g.Index["b"]); !ok || math.Abs(f-2.0/3) > 1e-12 {
		t.Errorf("P(b|a) = %g,%v, want 2/3", f, ok)
	}
	if f, ok := g.Freq(g.Index["a"], g.Index["c"]); !ok || math.Abs(f-1.0/3) > 1e-12 {
		t.Errorf("P(c|a) = %g,%v, want 1/3", f, ok)
	}
}

func TestBuildMarkovOutgoingSumsToOne(t *testing.T) {
	g, err := BuildMarkov(paperexample.Log1())
	if err != nil {
		t.Fatal(err)
	}
	for u := range g.EdgeFreq {
		if len(g.EdgeFreq[u]) == 0 {
			continue
		}
		var sum float64
		for _, f := range g.EdgeFreq[u] {
			sum += f
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("outgoing probabilities of %s sum to %g", g.Names[u], sum)
		}
	}
}

func TestBuildMarkovNodeOccupancy(t *testing.T) {
	l := eventlog.New("m")
	l.Append(eventlog.Trace{"a", "a", "b"})
	g, err := BuildMarkov(l)
	if err != nil {
		t.Fatal(err)
	}
	if f := g.NodeFreq[g.Index["a"]]; math.Abs(f-2.0/3) > 1e-12 {
		t.Errorf("occupancy(a) = %g, want 2/3", f)
	}
}

// TestMarkovLosesSignificance demonstrates the paper's argument for the
// Definition 1 weighting: a transition occurring in a single trace can
// still get conditional probability 1.0 under Markov weighting, while the
// dependency-graph frequency reflects how rare it is.
func TestMarkovLosesSignificance(t *testing.T) {
	l := eventlog.New("m")
	for i := 0; i < 9; i++ {
		l.Append(eventlog.Trace{"a", "b"})
	}
	l.Append(eventlog.Trace{"x", "y"}) // rare path, single trace
	mk, err := BuildMarkov(l)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := Build(l)
	if err != nil {
		t.Fatal(err)
	}
	mkF, _ := mk.Freq(mk.Index["x"], mk.Index["y"])
	dgF, _ := dg.Freq(dg.Index["x"], dg.Index["y"])
	if mkF != 1.0 {
		t.Errorf("Markov P(y|x) = %g, want 1.0", mkF)
	}
	if math.Abs(dgF-0.1) > 1e-12 {
		t.Errorf("dependency f(x,y) = %g, want 0.1", dgF)
	}
}

func TestBuildMarkovErrors(t *testing.T) {
	if _, err := BuildMarkov(eventlog.New("empty")); err == nil {
		t.Errorf("empty log accepted")
	}
	l := eventlog.New("bad")
	l.Append(eventlog.Trace{ArtificialName})
	if _, err := BuildMarkov(l); err == nil {
		t.Errorf("reserved name accepted")
	}
}

func TestBuildMarkovWorksWithSimilarity(t *testing.T) {
	// Markov graphs slot into the same pipeline: artificial event, l(v).
	g, err := BuildMarkov(paperexample.Log1())
	if err != nil {
		t.Fatal(err)
	}
	ga, err := g.AddArtificial()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ga.LongestFromArtificial(); err != nil {
		t.Fatal(err)
	}
}
