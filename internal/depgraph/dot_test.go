package depgraph

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	g := buildLog1(t)
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, "L1"); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	s := buf.String()
	for _, want := range []string{"digraph \"L1\"", "label=\"A\"", "label=\"0.40\"", "->"} {
		if !strings.Contains(s, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
	if strings.Contains(s, "style=dashed") {
		t.Errorf("plain graph has dashed artificial styling")
	}
}

func TestWriteDOTArtificial(t *testing.T) {
	g, _ := buildLog1(t).AddArtificial()
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, "L1"); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	s := buf.String()
	if !strings.Contains(s, `label="vX", style=dashed`) {
		t.Errorf("artificial node not dashed:\n%s", s)
	}
	if !strings.Contains(s, "style=dashed];") {
		t.Errorf("artificial edges not dashed")
	}
}
