package depgraph

import (
	"fmt"
	"sort"

	"repro/internal/eventlog"
)

// BuildMarkov constructs the alternative graph weighting of Ferreira et al.
// (BPM 2009), which the paper's related work discusses: edges carry the
// conditional transition probability P(v2 | v1) — the fraction of v1
// occurrences immediately followed by v2 — instead of the trace-normalized
// co-occurrence frequency of Definition 1. Node weights are occupancy
// probabilities (share of all event occurrences).
//
// The paper argues the Definition 1 weighting is preferable because "the
// conditional probability cannot tell the significance of the edge": a
// transition leaving a rare event can have probability 1.0 while occurring
// in a single trace. BuildMarkov exists so that this design choice can be
// measured (see the ablation benchmarks), and as a drop-in for workflows
// that expect Markov semantics.
func BuildMarkov(l *eventlog.Log) (*Graph, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	occ := make(map[string]int)
	trans := make(map[[2]string]int)
	total := 0
	for _, t := range l.Traces {
		for i, e := range t {
			occ[e]++
			total++
			if i+1 < len(t) {
				trans[[2]string{e, t[i+1]}]++
			}
		}
	}
	names := make([]string, 0, len(occ))
	for e := range occ {
		if e == ArtificialName {
			return nil, fmt.Errorf("depgraph: log %q contains the reserved artificial event name %q", l.Name, ArtificialName)
		}
		names = append(names, e)
	}
	sort.Strings(names)
	g := newGraph(names)
	for e, c := range occ {
		g.NodeFreq[g.Index[e]] = float64(c) / float64(total)
	}
	// Out-transition counts per source, for normalization.
	outCount := make(map[string]int)
	for pair, c := range trans {
		outCount[pair[0]] += c
	}
	for pair, c := range trans {
		u, v := g.Index[pair[0]], g.Index[pair[1]]
		g.EdgeFreq[u][v] = float64(c) / float64(outCount[pair[0]])
	}
	g.rebuildAdjacency()
	return g, nil
}
