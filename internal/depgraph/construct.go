package depgraph

import (
	"fmt"
	"sort"
)

// FromFrequencies constructs a dependency graph directly from frequency
// tables instead of a log — useful when statistics come from an external
// system or when reconstructing a published example. Node frequencies must
// be in (0, 1]; edge frequencies in (0, 1] and only between known nodes.
func FromFrequencies(nodeFreq map[string]float64, edgeFreq map[[2]string]float64) (*Graph, error) {
	if len(nodeFreq) == 0 {
		return nil, fmt.Errorf("depgraph: no nodes")
	}
	names := make([]string, 0, len(nodeFreq))
	for n, f := range nodeFreq {
		if n == ArtificialName {
			return nil, fmt.Errorf("depgraph: node uses the reserved artificial name %q", ArtificialName)
		}
		if f <= 0 || f > 1 {
			return nil, fmt.Errorf("depgraph: node %q frequency %g outside (0,1]", n, f)
		}
		names = append(names, n)
	}
	sort.Strings(names)
	g := newGraph(names)
	for n, f := range nodeFreq {
		g.NodeFreq[g.Index[n]] = f
	}
	for pair, f := range edgeFreq {
		u, ok := g.Index[pair[0]]
		if !ok {
			return nil, fmt.Errorf("depgraph: edge references unknown node %q", pair[0])
		}
		v, ok := g.Index[pair[1]]
		if !ok {
			return nil, fmt.Errorf("depgraph: edge references unknown node %q", pair[1])
		}
		if f <= 0 || f > 1 {
			return nil, fmt.Errorf("depgraph: edge %v frequency %g outside (0,1]", pair, f)
		}
		g.EdgeFreq[u][v] = f
	}
	g.rebuildAdjacency()
	return g, nil
}
