// Package depgraph implements the event dependency graph of Definition 1 in
// "Matching Heterogeneous Event Data" (SIGMOD 2014): a labeled directed graph
// whose vertices are events and whose node/edge labels are normalized
// occurrence frequencies, extended with the artificial event v^X that turns
// every event into a virtual trace start and end (the device that enables
// dislocated matching). The package also provides the minimum-frequency edge
// filter, graph reversal (for backward similarity), composite-event merging,
// and the longest-distance function l(v) used by early-convergence pruning.
package depgraph

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/eventlog"
)

// ArtificialName is the reserved label of the artificial event v^X. Real
// event logs must not contain it.
const ArtificialName = "⊥vX⊥"

// Infinite is the l(v) value of vertices whose longest distance from the
// artificial event is unbounded because a cycle lies on some path to them.
const Infinite = math.MaxInt32

// Graph is an event dependency graph. Vertices are indexed 0..N-1; when the
// artificial event is present it always has index 0 so that real events
// occupy 1..N-1. Adjacency and frequencies are stored in index space for
// fast iteration during similarity computation.
type Graph struct {
	// Names maps vertex index to event name. Names[0] == ArtificialName iff
	// HasArtificial.
	Names []string
	// Index maps event name to vertex index (inverse of Names).
	Index map[string]int
	// Pre[v] lists the in-neighbors (pre-set •v) of v, sorted ascending.
	Pre [][]int
	// Post[v] lists the out-neighbors (post-set v•) of v, sorted ascending.
	Post [][]int
	// NodeFreq[v] is the fraction of traces containing v (1.0 for v^X).
	NodeFreq []float64
	// EdgeFreq[u][v] is the normalized frequency of edge (u,v); absent keys
	// mean no edge.
	EdgeFreq []map[int]float64
	// HasArtificial records whether vertex 0 is the artificial event v^X.
	HasArtificial bool
}

// Build constructs the dependency graph of a log per Definition 1, without
// the artificial event. Vertices are the distinct events of the log in
// sorted name order; an edge (u,v) exists iff u and v occur consecutively in
// at least one trace, weighted by the fraction of traces where they do.
func Build(l *eventlog.Log) (*Graph, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	st := eventlog.CollectStats(l)
	names := make([]string, 0, len(st.NodeFreq))
	for e := range st.NodeFreq {
		if e == ArtificialName {
			return nil, fmt.Errorf("depgraph: log %q contains the reserved artificial event name %q", l.Name, ArtificialName)
		}
		names = append(names, e)
	}
	sort.Strings(names)
	g := newGraph(names)
	for i, n := range names {
		g.NodeFreq[i] = st.NodeFreq[n]
	}
	for pair, f := range st.EdgeFreq {
		u, v := g.Index[pair[0]], g.Index[pair[1]]
		g.EdgeFreq[u][v] = f
	}
	g.rebuildAdjacency()
	return g, nil
}

func newGraph(names []string) *Graph {
	n := len(names)
	g := &Graph{
		Names:    append([]string(nil), names...),
		Index:    make(map[string]int, n),
		Pre:      make([][]int, n),
		Post:     make([][]int, n),
		NodeFreq: make([]float64, n),
		EdgeFreq: make([]map[int]float64, n),
	}
	for i, name := range names {
		g.Index[name] = i
		g.EdgeFreq[i] = make(map[int]float64)
	}
	return g
}

// rebuildAdjacency recomputes Pre and Post from EdgeFreq.
func (g *Graph) rebuildAdjacency() {
	for i := range g.Pre {
		g.Pre[i] = g.Pre[i][:0]
		g.Post[i] = g.Post[i][:0]
	}
	for u := range g.EdgeFreq {
		for v := range g.EdgeFreq[u] {
			g.Post[u] = append(g.Post[u], v)
			g.Pre[v] = append(g.Pre[v], u)
		}
	}
	for i := range g.Pre {
		sort.Ints(g.Pre[i])
		sort.Ints(g.Post[i])
	}
}

// N returns the number of vertices including the artificial event if present.
func (g *Graph) N() int { return len(g.Names) }

// RealCount returns the number of real (non-artificial) events.
func (g *Graph) RealCount() int {
	if g.HasArtificial {
		return g.N() - 1
	}
	return g.N()
}

// RealStart returns the first index holding a real event: 1 when the
// artificial event occupies index 0, else 0.
func (g *Graph) RealStart() int {
	if g.HasArtificial {
		return 1
	}
	return 0
}

// Freq returns the frequency of edge (u,v) and whether the edge exists.
func (g *Graph) Freq(u, v int) (float64, bool) {
	f, ok := g.EdgeFreq[u][v]
	return f, ok
}

// EdgeCount returns the number of directed edges in the graph.
func (g *Graph) EdgeCount() int {
	n := 0
	for _, m := range g.EdgeFreq {
		n += len(m)
	}
	return n
}

// AvgDegree returns the average out-degree of the graph (edges / vertices);
// 0 for an empty graph.
func (g *Graph) AvgDegree() float64 {
	if g.N() == 0 {
		return 0
	}
	return float64(g.EdgeCount()) / float64(g.N())
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := newGraph(g.Names)
	c.HasArtificial = g.HasArtificial
	copy(c.NodeFreq, g.NodeFreq)
	for u, m := range g.EdgeFreq {
		for v, f := range m {
			c.EdgeFreq[u][v] = f
		}
	}
	c.rebuildAdjacency()
	return c
}

// AddArtificial returns a copy of the graph extended with the artificial
// event v^X at index 0: edges (v^X,v) and (v,v^X) with frequency f(v) are
// added for every real event v, so that every event can act as a virtual
// trace start and end. Calling it on a graph that already has the artificial
// event is an error.
func (g *Graph) AddArtificial() (*Graph, error) {
	if g.HasArtificial {
		return nil, fmt.Errorf("depgraph: graph already has the artificial event")
	}
	names := make([]string, 0, g.N()+1)
	names = append(names, ArtificialName)
	names = append(names, g.Names...)
	c := newGraph(names)
	c.HasArtificial = true
	c.NodeFreq[0] = 1.0
	for i, f := range g.NodeFreq {
		c.NodeFreq[i+1] = f
	}
	for u, m := range g.EdgeFreq {
		for v, f := range m {
			c.EdgeFreq[u+1][v+1] = f
		}
	}
	for v := 1; v < c.N(); v++ {
		c.EdgeFreq[0][v] = c.NodeFreq[v]
		c.EdgeFreq[v][0] = c.NodeFreq[v]
	}
	c.rebuildAdjacency()
	return c, nil
}

// FilterMinFrequency returns a copy of the graph with every edge whose
// frequency is strictly below the threshold removed (the minimum frequency
// control of Section 2). Artificial edges are filtered like real ones.
// Node frequencies are untouched. A threshold <= 0 returns an unfiltered
// copy.
func (g *Graph) FilterMinFrequency(threshold float64) *Graph {
	c := g.Clone()
	if threshold <= 0 {
		return c
	}
	for u := range c.EdgeFreq {
		for v, f := range c.EdgeFreq[u] {
			if f < threshold {
				delete(c.EdgeFreq[u], v)
			}
		}
	}
	c.rebuildAdjacency()
	return c
}

// Reverse returns the graph with every edge direction flipped; frequencies
// are preserved. Forward similarity on the reversed graph equals backward
// similarity on the original.
func (g *Graph) Reverse() *Graph {
	c := newGraph(g.Names)
	c.HasArtificial = g.HasArtificial
	copy(c.NodeFreq, g.NodeFreq)
	for u, m := range g.EdgeFreq {
		for v, f := range m {
			c.EdgeFreq[v][u] = f
		}
	}
	c.rebuildAdjacency()
	return c
}

// LongestFromArtificial computes l(v) for every vertex: the length of the
// longest path from v^X to v that does not revisit v^X. Vertices reachable
// through a (real-edge) cycle get Infinite. The artificial vertex itself has
// l = 0. The graph must have the artificial event.
//
// The computation works on the subgraph of real edges plus the outgoing
// artificial edges (incoming artificial edges cannot lie on a v^X→v path
// that does not revisit v^X): vertices on or downstream of a cycle get
// Infinite; the rest form a DAG processed in topological order.
func (g *Graph) LongestFromArtificial() ([]int, error) {
	if !g.HasArtificial {
		return nil, fmt.Errorf("depgraph: LongestFromArtificial requires the artificial event")
	}
	n := g.N()
	// Kahn's algorithm over the subgraph excluding edges into v^X.
	indeg := make([]int, n)
	for u := 0; u < n; u++ {
		for _, v := range g.Post[u] {
			if v == 0 {
				continue
			}
			indeg[v]++
		}
	}
	order := make([]int, 0, n)
	queue := []int{}
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range g.Post[u] {
			if v == 0 {
				continue
			}
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	acyclic := make([]bool, n)
	for _, v := range order {
		acyclic[v] = true
	}
	l := make([]int, n)
	for v := range l {
		l[v] = Infinite
	}
	l[0] = 0
	for _, u := range order {
		if l[u] == Infinite {
			continue
		}
		for _, v := range g.Post[u] {
			if v == 0 || !acyclic[v] {
				continue
			}
			if d := l[u] + 1; l[v] == Infinite || d > l[v] {
				l[v] = d
			}
		}
	}
	// Vertices not in the topological order are on or downstream of a cycle
	// and keep Infinite; acyclic vertices unreachable from v^X keep Infinite
	// as well (their similarity never leaves 0, so never updating them is
	// sound).
	return l, nil
}

// Ancestors returns, for the given vertex set, the union of all vertices
// from which any member is reachable via real edges (edges through v^X are
// skipped), excluding v^X itself. It is used by the unchanged-similarity
// pruning of Proposition 4.
func (g *Graph) Ancestors(of map[int]bool) map[int]bool {
	out := make(map[int]bool)
	var stack []int
	for v := range of {
		stack = append(stack, v)
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range g.Pre[v] {
			if g.HasArtificial && u == 0 {
				continue
			}
			if !out[u] {
				out[u] = true
				stack = append(stack, u)
			}
		}
	}
	return out
}

// Descendants is the dual of Ancestors: vertices reachable from the set via
// real edges.
func (g *Graph) Descendants(of map[int]bool) map[int]bool {
	out := make(map[int]bool)
	var stack []int
	for v := range of {
		stack = append(stack, v)
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range g.Post[v] {
			if g.HasArtificial && u == 0 {
				continue
			}
			if !out[u] {
				out[u] = true
				stack = append(stack, u)
			}
		}
	}
	return out
}
