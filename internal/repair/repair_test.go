package repair

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/eventlog"
)

// mkLog builds a log from traces written as "a b c" strings.
func mkLog(name string, traces ...string) *eventlog.Log {
	l := eventlog.New(name)
	for _, t := range traces {
		l.Append(eventlog.Trace(strings.Fields(t)))
	}
	return l
}

func traceOf(s string) eventlog.Trace { return eventlog.Trace(strings.Fields(s)) }

func wantTrace(t *testing.T, got eventlog.Trace, want string) {
	t.Helper()
	if !equalTrace(got, traceOf(want)) {
		t.Fatalf("got %v, want %v", got, traceOf(want))
	}
}

// applyStage runs one stage over one trace of a log, building the context
// the way the pipeline would: from the log the trace lives in.
func applyStage(t *testing.T, st Stage, l *eventlog.Log, idx int) (eventlog.Trace, Counts, Reason) {
	t.Helper()
	ctx, err := NewContext(l)
	if err != nil {
		t.Fatalf("NewContext: %v", err)
	}
	return st.Repair(ctx, l.Traces[idx])
}

func TestCollapseDuplicates(t *testing.T) {
	cases := []struct {
		name    string
		window  int
		in      string
		want    string
		dropped int
	}{
		{"clean", 1, "a b c", "a b c", 0},
		{"adjacent pair", 1, "a a b c", "a b c", 1},
		{"triple stutter", 1, "a a a b", "a b", 2},
		{"loop kept at window 1", 1, "a b a b", "a b a b", 0},
		{"wider window drops near repeat", 2, "a b a c", "a b c", 1},
		{"single event", 1, "a", "a", 0},
		{"all same", 1, "x x x x", "x", 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := &CollapseDuplicates{Window: tc.window}
			l := mkLog("l", tc.in)
			out, c, reason := applyStage(t, st, l, 0)
			if reason != "" {
				t.Fatalf("unexpected quarantine: %s", reason)
			}
			wantTrace(t, out, tc.want)
			if c.Dropped != tc.dropped {
				t.Fatalf("dropped = %d, want %d", c.Dropped, tc.dropped)
			}
			// Idempotence: a second run over the repaired log is a no-op.
			l2 := eventlog.New("l2")
			l2.Append(out)
			out2, c2, reason2 := applyStage(t, st, l2, 0)
			if reason2 != "" || !equalTrace(out2, out) || !c2.zero() {
				t.Fatalf("not idempotent: second run gave %v (counts %+v, reason %q)", out2, c2, reason2)
			}
		})
	}
}

func TestRepairOrder(t *testing.T) {
	// Majority context: many traces record a b c; the corrupted trace under
	// test is in the same log, as in the pipeline.
	base := []string{"a b c", "a b c", "a b c", "a b c", "a b c", "a b c"}
	cases := []struct {
		name      string
		corrupted string
		want      string
		reordered int
	}{
		{"clean", "a b c", "a b c", 0},
		{"one swap", "b a c", "a b c", 1},
		{"tail swap", "a c b", "a b c", 1},
		// The leading (b,a) flips; the tail (c,b) is also dominated but
		// flipping it would fabricate an adjacent "b b" stutter, which the
		// stage refuses (collapse has already run by then).
		{"swap refused when it would fabricate a stutter", "b a c b", "a b c b", 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := &RepairOrder{}
			l := mkLog("l", append(append([]string{}, base...), tc.corrupted)...)
			idx := l.Len() - 1
			out, c, reason := applyStage(t, st, l, idx)
			if reason != "" {
				t.Fatalf("unexpected quarantine: %s", reason)
			}
			wantTrace(t, out, tc.want)
			if c.Reordered != tc.reordered {
				t.Fatalf("reordered = %d, want %d", c.Reordered, tc.reordered)
			}
			// Idempotence: repair the repaired trace inside the repaired log.
			l2 := mkLog("l2", base...)
			l2.Append(out)
			out2, c2, reason2 := applyStage(t, st, l2, l2.Len()-1)
			if reason2 != "" || !equalTrace(out2, out) || !c2.zero() {
				t.Fatalf("not idempotent: second run gave %v (counts %+v, reason %q)", out2, c2, reason2)
			}
		})
	}
}

func TestRepairOrderQuarantinesUnstable(t *testing.T) {
	// With MaxPasses 1 a trace needing two passes to settle is quarantined;
	// the returned trace must be the untouched original and counts empty.
	base := []string{"a b c d", "a b c d", "a b c d", "a b c d", "a b c d", "a b c d"}
	l := mkLog("l", append(append([]string{}, base...), "d c b a")...)
	st := &RepairOrder{MaxPasses: 1}
	out, c, reason := applyStage(t, st, l, l.Len()-1)
	if reason != ReasonOrderUnstable {
		t.Fatalf("reason = %q, want %q", reason, ReasonOrderUnstable)
	}
	wantTrace(t, out, "d c b a")
	if !c.zero() {
		t.Fatalf("quarantined trace must carry zero counts, got %+v", c)
	}
	// With the default pass budget an adjacent transposition settles in
	// two passes (one swapping, one confirming no swaps remain).
	l2 := mkLog("l", append(append([]string{}, base...), "a c b d")...)
	out, c, reason = applyStage(t, &RepairOrder{}, l2, l2.Len()-1)
	if reason != "" {
		t.Fatalf("default budget quarantined: %s", reason)
	}
	wantTrace(t, out, "a b c d")
	if c.Reordered != 1 {
		t.Fatalf("reordered = %d, want 1", c.Reordered)
	}
}

func TestImputeMissing(t *testing.T) {
	// Majority of traces record a c b; the corrupted ones lost c. The
	// direct a->b edge is weak (only the corrupted traces), the path
	// a->c->b strong, so c is imputed.
	logOf := func(corrupted ...string) *eventlog.Log {
		traces := []string{"a c b", "a c b", "a c b", "a c b", "a c b", "a c b", "a c b", "a c b"}
		return mkLog("l", append(traces, corrupted...)...)
	}
	t.Run("imputes dropped event", func(t *testing.T) {
		st := &ImputeMissing{}
		l := logOf("a b")
		out, c, reason := applyStage(t, st, l, l.Len()-1)
		if reason != "" {
			t.Fatalf("unexpected quarantine: %s", reason)
		}
		wantTrace(t, out, "a c b")
		if c.Imputed != 1 {
			t.Fatalf("imputed = %d, want 1", c.Imputed)
		}
		// Idempotence: after repair no a->b adjacency remains anywhere, so a
		// second run changes nothing.
		l2 := logOf()
		l2.Append(out)
		out2, c2, reason2 := applyStage(t, st, l2, l2.Len()-1)
		if reason2 != "" || !equalTrace(out2, out) || !c2.zero() {
			t.Fatalf("not idempotent: second run gave %v (counts %+v, reason %q)", out2, c2, reason2)
		}
	})
	t.Run("keeps supported direct edge", func(t *testing.T) {
		// When a->b is itself common (half the log), the path is not
		// dominant enough and nothing is imputed.
		traces := []string{"a c b", "a c b", "a c b", "a b", "a b", "a b"}
		l := mkLog("l", traces...)
		out, c, reason := applyStage(t, &ImputeMissing{}, l, l.Len()-1)
		if reason != "" {
			t.Fatalf("unexpected quarantine: %s", reason)
		}
		wantTrace(t, out, "a b")
		if !c.zero() {
			t.Fatalf("expected no repair, got %+v", c)
		}
	})
	t.Run("quarantines over budget", func(t *testing.T) {
		st := &ImputeMissing{MaxPerTrace: 1}
		// Two independent losses in one trace exceed a budget of one.
		traces := []string{
			"a c b x e y", "a c b x e y", "a c b x e y", "a c b x e y",
			"a c b x e y", "a c b x e y", "a c b x e y", "a c b x e y",
		}
		l := mkLog("l", append(traces, "a b x y")...)
		out, c, reason := applyStage(t, st, l, l.Len()-1)
		if reason != ReasonBeyondRepair {
			t.Fatalf("reason = %q, want %q", reason, ReasonBeyondRepair)
		}
		wantTrace(t, out, "a b x y")
		if !c.zero() {
			t.Fatalf("quarantined trace must carry zero counts, got %+v", c)
		}
		// A budget of two repairs both losses.
		out, c, reason = applyStage(t, &ImputeMissing{MaxPerTrace: 2}, l, l.Len()-1)
		if reason != "" {
			t.Fatalf("unexpected quarantine: %s", reason)
		}
		wantTrace(t, out, "a c b x e y")
		if c.Imputed != 2 {
			t.Fatalf("imputed = %d, want 2", c.Imputed)
		}
	})
}

func TestPipelineReportAccounting(t *testing.T) {
	// A log with every defect class: duplicates, swaps, a dropped event,
	// and one hopeless trace (quarantined by order repair via a tiny pass
	// budget is hard to force here, so force beyond-repair instead).
	clean := []string{"a c b x e y", "a c b x e y", "a c b x e y", "a c b x e y",
		"a c b x e y", "a c b x e y", "a c b x e y", "a c b x e y"}
	dirty := []string{
		"a a c b x e y",   // duplicate
		"c a b x e y",     // swap
		"a b x e y",       // dropped c
		"a b x y",         // dropped c and e: beyond a budget of 1
		"a c b x e y",     // untouched
	}
	l := mkLog("dirty", append(append([]string{}, clean...), dirty...)...)
	p, err := NewPipeline(
		&CollapseDuplicates{},
		&RepairOrder{},
		&ImputeMissing{MaxPerTrace: 1},
	)
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	out, rep, err := p.Run(l)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.TracesIn != l.Len() {
		t.Fatalf("TracesIn = %d, want %d", rep.TracesIn, l.Len())
	}
	if rep.TracesIn != rep.TracesOut+rep.TracesQuarantined {
		t.Fatalf("accounting broken: in=%d out=%d quarantined=%d",
			rep.TracesIn, rep.TracesOut, rep.TracesQuarantined)
	}
	if out.Len() != rep.TracesOut {
		t.Fatalf("output log has %d traces, report says %d", out.Len(), rep.TracesOut)
	}
	// Stage sums must equal the totals.
	var dropped, reordered, imputed, quarantined int
	for _, sr := range rep.Stages {
		dropped += sr.EventsDropped
		reordered += sr.EventsReordered
		imputed += sr.EventsImputed
		quarantined += sr.TracesQuarantined
	}
	if dropped != rep.EventsDropped || reordered != rep.EventsReordered ||
		imputed != rep.EventsImputed || quarantined != rep.TracesQuarantined {
		t.Fatalf("stage sums (%d,%d,%d,%d) != totals (%d,%d,%d,%d)",
			dropped, reordered, imputed, quarantined,
			rep.EventsDropped, rep.EventsReordered, rep.EventsImputed, rep.TracesQuarantined)
	}
	if rep.EventsDropped != 1 || rep.EventsReordered != 1 || rep.EventsImputed != 1 {
		t.Fatalf("expected exactly one drop/reorder/impute, got %+v", rep)
	}
	if rep.TracesQuarantined != 1 {
		t.Fatalf("TracesQuarantined = %d, want 1", rep.TracesQuarantined)
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0].Reason != ReasonBeyondRepair ||
		rep.Quarantined[0].Index != len(clean)+3 {
		t.Fatalf("quarantine sample wrong: %+v", rep.Quarantined)
	}
	if rep.TracesTouched != 3 {
		t.Fatalf("TracesTouched = %d, want 3", rep.TracesTouched)
	}
	// The input log must be untouched.
	if !equalTrace(l.Traces[len(clean)], traceOf("a a c b x e y")) {
		t.Fatalf("input log mutated: %v", l.Traces[len(clean)])
	}
	// Every surviving dirty trace must have been restored to the clean form.
	for i, tr := range out.Traces {
		if !equalTrace(tr, traceOf("a c b x e y")) {
			t.Fatalf("output trace %d = %v, want clean form", i, tr)
		}
	}
}

func TestPipelineFixpointOnNoisyLog(t *testing.T) {
	// The default pipeline over a synthetically corrupted log must reach a
	// fixpoint: running it a second time on its own output changes nothing.
	clean := eventlog.New("clean")
	rng := rand.New(rand.NewSource(7))
	alphabet := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for i := 0; i < 60; i++ {
		clean.Append(eventlog.Trace(append([]string(nil), alphabet...)))
	}
	noisy, err := eventlog.AddNoise(rng, clean, eventlog.NoiseOptions{DropProb: 0.05, SwapProb: 0.05, DupProb: 0.03})
	if err != nil {
		t.Fatalf("AddNoise: %v", err)
	}
	p := Default(Options{})
	out1, rep1, err := p.Run(noisy)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	if !rep1.Touched() {
		t.Fatalf("noise at 5%% should touch something, report: %+v", rep1)
	}
	out2, rep2, err := p.Run(out1)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if rep2.EventsDropped != 0 || rep2.EventsReordered != 0 || rep2.TracesQuarantined != 0 {
		t.Fatalf("second run not a fixpoint: %+v", rep2)
	}
	if out2.Len() != out1.Len() {
		t.Fatalf("second run changed trace count: %d -> %d", out1.Len(), out2.Len())
	}
}

// rejectAll is a test stage that quarantines every trace.
type rejectAll struct{}

func (rejectAll) Name() string { return "reject-all" }
func (rejectAll) Repair(_ *Context, t eventlog.Trace) (eventlog.Trace, Counts, Reason) {
	return t, Counts{}, ReasonBeyondRepair
}

func TestPipelineErrors(t *testing.T) {
	if _, err := NewPipeline(); err == nil {
		t.Fatal("empty pipeline accepted")
	}
	if _, err := NewPipeline(&CollapseDuplicates{}, &CollapseDuplicates{Window: 2}); err == nil {
		t.Fatal("duplicate stage names accepted")
	}
	if _, err := NewPipeline(&CollapseDuplicates{}, nil); err == nil {
		t.Fatal("nil stage accepted")
	}
	p := Default(Options{})
	if _, _, err := p.Run(eventlog.New("empty")); err == nil {
		t.Fatal("empty log accepted")
	}
	// A stage that quarantines every trace must fail the run, with the
	// partial report still describing what happened.
	all, err := NewPipeline(rejectAll{})
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := all.Run(mkLog("l", "a b", "b a"))
	if err == nil {
		t.Fatal("expected all-quarantined error")
	}
	if rep == nil || rep.TracesQuarantined != 2 || rep.TracesOut != 0 {
		t.Fatalf("partial report missing or wrong: %+v", rep)
	}
}
