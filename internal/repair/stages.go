package repair

import (
	"repro/internal/depgraph"
	"repro/internal/eventlog"
)

// CollapseDuplicates drops a repeated event recorded within Window positions
// of an earlier kept copy of the same event — the shape stuttering sensors
// and at-least-once delivery produce. The default window of 1 removes only
// immediately adjacent repeats, so legitimate loops that revisit an event
// after other work are untouched. The stage is idempotent by construction:
// after one pass no two equal events remain within Window of each other.
type CollapseDuplicates struct {
	// Window is the look-back distance in kept events; <= 0 means 1.
	Window int
}

func (s *CollapseDuplicates) Name() string { return "collapse-duplicates" }

func (s *CollapseDuplicates) Repair(_ *Context, t eventlog.Trace) (eventlog.Trace, Counts, Reason) {
	w := s.Window
	if w <= 0 {
		w = 1
	}
	var c Counts
	out := make(eventlog.Trace, 0, len(t))
	for _, e := range t {
		dup := false
		for k := len(out) - 1; k >= 0 && k >= len(out)-w; k-- {
			if out[k] == e {
				dup = true
				break
			}
		}
		if dup {
			c.Dropped++
			continue
		}
		out = append(out, e)
	}
	return out, c, ""
}

// RepairOrder undoes local disorder (clock skew, unordered delivery) by
// majority vote over the whole log: an adjacent pair (a,b) is transposed
// when the log records the reverse order (b,a) at least Ratio times as
// often. Because the statistics come from the stage's input log, every
// observed adjacency has frequency > 0, so the vote always compares two
// real occurrence counts. Transpositions are applied in bounded bubble
// passes; a trace that still wants swaps after the pass budget has no
// consistent order under the dependency relation and is quarantined as
// order-unstable rather than emitted half-repaired.
type RepairOrder struct {
	// Ratio is the dominance ratio; <= 0 adapts to the log's measured
	// dirtiness: 4 on clean-looking logs (sparing legitimate concurrency
	// interleavings, which rarely exceed 4:1 skew), 2 on visibly noisy ones
	// (where undoing more disorder outweighs the occasional false swap).
	Ratio float64
	// MaxFwd caps the observed frequency of the order being undone: a pair
	// is only read as disorder when few traces record it, since recording
	// noise is rare by nature while legitimate concurrency interleavings
	// are common. <= 0 means 0.25; >= 1 disables the cap.
	MaxFwd float64
	// MaxPasses bounds the bubble passes; <= 0 means len(trace)+1, enough
	// for any stable order to settle.
	MaxPasses int
}

func (s *RepairOrder) Name() string { return "repair-order" }

func (s *RepairOrder) Repair(ctx *Context, t eventlog.Trace) (eventlog.Trace, Counts, Reason) {
	ratio := s.Ratio
	if ratio <= 0 {
		ratio = 4
		if ctx.Dirtiness > dirtyThreshold {
			ratio = 2
		}
	}
	maxFwd := s.MaxFwd
	if maxFwd <= 0 {
		maxFwd = 0.25
	}
	maxPasses := s.MaxPasses
	if maxPasses <= 0 {
		maxPasses = len(t) + 1
	}
	out := t.Clone()
	var c Counts
	for pass := 0; pass < maxPasses; pass++ {
		swapped := false
		for i := 0; i+1 < len(out); i++ {
			a, b := out[i], out[i+1]
			if a == b {
				continue
			}
			fwd := ctx.Stats.EdgeFreq[[2]eventlog.Event{a, b}]
			rev := ctx.Stats.EdgeFreq[[2]eventlog.Event{b, a}]
			if rev > fwd && rev >= ratio*fwd && fwd <= maxFwd {
				// Refuse a transposition that would fabricate an adjacent
				// duplicate: the collapse stage has already run, so a new
				// stutter here would survive to the output and break the
				// pipeline's fixpoint property.
				if (i > 0 && out[i-1] == b) || (i+2 < len(out) && out[i+2] == a) {
					continue
				}
				out[i], out[i+1] = b, a
				c.Reordered++
				swapped = true
				// Leave the displaced event to the next pass instead of
				// cascading it through this one; bounded passes stay bounded.
				i++
			}
		}
		if !swapped {
			return out, c, ""
		}
	}
	return t.Clone(), Counts{}, ReasonOrderUnstable
}

// ImputeMissing re-inserts events lost between two observed neighbors. For
// an adjacent pair (a,b) it consults the dependency relation: when some c
// both follows a and precedes b with frequency at least MinPath, and that
// indirect path is at least Ratio times stronger than the direct a->b edge,
// the direct adjacency is read as "c was dropped here" and the strongest
// such c is inserted. A trace demanding more than MaxPerTrace insertions is
// quarantined as beyond repair — that much loss is a recording failure, not
// a repairable instance.
type ImputeMissing struct {
	// Ratio is the indirect-over-direct dominance factor; <= 0 means 4.
	Ratio float64
	// MinPath is the minimum frequency of both path edges; <= 0 adapts to
	// the log's measured dirtiness: 0.5 on clean-looking logs (only paths
	// the log overwhelmingly supports justify inventing an event), 0.25 on
	// visibly noisy ones.
	MinPath float64
	// MaxPerTrace is the imputation budget per trace; <= 0 means 3.
	MaxPerTrace int
}

func (s *ImputeMissing) Name() string { return "impute-missing" }

func (s *ImputeMissing) Repair(ctx *Context, t eventlog.Trace) (eventlog.Trace, Counts, Reason) {
	ratio := s.Ratio
	if ratio <= 0 {
		ratio = 4
	}
	minPath := s.MinPath
	if minPath <= 0 {
		minPath = 0.5
		if ctx.Dirtiness > dirtyThreshold {
			minPath = 0.25
		}
	}
	budget := s.MaxPerTrace
	if budget <= 0 {
		budget = 3
	}
	var c Counts
	out := make(eventlog.Trace, 0, len(t)+budget)
	out = append(out, t[0])
	for i := 0; i+1 < len(t); i++ {
		a, b := t[i], t[i+1]
		if cand, ok := imputeCandidate(ctx.Graph, a, b, ratio, minPath); ok {
			if c.Imputed >= budget {
				return t.Clone(), Counts{}, ReasonBeyondRepair
			}
			out = append(out, cand)
			c.Imputed++
		}
		out = append(out, b)
	}
	return out, c, ""
}

// imputeCandidate picks the event to insert between a and b, or ok=false.
// Candidates are the successors of a that are also predecessors of b; the
// score of c is min(freq(a,c), freq(c,b)) — the weakest link of the path —
// and the best-scoring candidate wins, ties broken by name so the choice is
// deterministic.
func imputeCandidate(g *depgraph.Graph, a, b eventlog.Event, ratio, minPath float64) (eventlog.Event, bool) {
	ia, ok1 := g.Index[string(a)]
	ib, ok2 := g.Index[string(b)]
	if !ok1 || !ok2 {
		return "", false
	}
	direct := g.EdgeFreq[ia][ib]
	best := ""
	bestScore := 0.0
	for _, ic := range g.Post[ia] {
		if ic == ia || ic == ib {
			continue
		}
		score := min(g.EdgeFreq[ia][ic], g.EdgeFreq[ic][ib])
		if score < minPath || score < ratio*direct {
			continue
		}
		name := g.Names[ic]
		if score > bestScore || (score == bestScore && (best == "" || name < best)) {
			best, bestScore = name, score
		}
	}
	if best == "" {
		return "", false
	}
	return eventlog.Event(best), true
}
