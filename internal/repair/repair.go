// Package repair implements a staged event-log quality pipeline that runs
// between ingestion and dependency-graph construction: real-world logs
// arrive with duplicated events (stuttering sensors), locally disordered
// events (clock skew between recording components) and missing events
// (lost messages), and the committed robustness experiment shows how hard
// matching accuracy falls when such noise reaches the matcher unrepaired.
//
// A Pipeline is an ordered list of Stages. Each stage repairs one defect
// class per trace, using only aggregate evidence — the occurrence statistics
// and the dependency relation of the stage's own input log — so a single
// corrupted trace cannot steer its own repair. A stage that cannot bring a
// trace into a consistent state quarantines it with a typed Reason instead
// of failing the run: the trace is dropped from the output log and accounted
// in the Report, and matching proceeds on what remains.
package repair

import (
	"fmt"

	"repro/internal/depgraph"
	"repro/internal/eventlog"
)

// Reason classifies why a stage quarantined a trace.
type Reason string

const (
	// ReasonOrderUnstable marks a trace whose event order kept oscillating
	// after the bounded number of reorder passes — the dependency relation
	// carries no consistent order for it (e.g. a cyclic dominance between
	// its events), so no defensible repaired order exists.
	ReasonOrderUnstable Reason = "order-unstable"
	// ReasonBeyondRepair marks a trace that demanded more imputed events
	// than the per-trace budget: a trace missing that much is more likely a
	// recording failure than a repairable instance.
	ReasonBeyondRepair Reason = "beyond-repair"
)

// Counts are one trace's repair tallies from one stage.
type Counts struct {
	// Dropped counts duplicate events removed.
	Dropped int
	// Reordered counts adjacent transpositions applied.
	Reordered int
	// Imputed counts events inserted.
	Imputed int
}

func (c Counts) zero() bool { return c.Dropped == 0 && c.Reordered == 0 && c.Imputed == 0 }

// Context is the aggregate evidence a stage repairs against: the occurrence
// statistics and the dependency graph of the stage's input log. The pipeline
// rebuilds it before every stage, so later stages see the cleaned-up
// statistics of their predecessors' output.
type Context struct {
	// Stats are the normalized node/edge occurrence frequencies.
	Stats *eventlog.Stats
	// Graph is the dependency relation (Definition 1, without the
	// artificial event) of the same log.
	Graph *depgraph.Graph
	// Dirtiness estimates how noisy the log being repaired is: the fraction
	// of adjacent event pairs that are immediate stutters (e == next).
	// Stuttering is the one noise signature measurable without ground truth
	// — clean playouts essentially never record an event twice in a row —
	// so stages use it to calibrate how aggressively they may intervene.
	// Pipeline.Run measures it once on the raw input log and pins that value
	// for every stage, since the collapse stage removes the very evidence.
	Dirtiness float64
}

// NewContext builds the repair context for a log.
func NewContext(l *eventlog.Log) (*Context, error) {
	g, err := depgraph.Build(l)
	if err != nil {
		return nil, fmt.Errorf("repair: build dependency relation: %w", err)
	}
	return &Context{Stats: eventlog.CollectStats(l), Graph: g, Dirtiness: Dirtiness(l)}, nil
}

// Dirtiness returns the stutter rate of a log: immediately repeated events
// as a fraction of all adjacent pairs.
func Dirtiness(l *eventlog.Log) float64 {
	pairs, stutters := 0, 0
	for _, t := range l.Traces {
		for i := 0; i+1 < len(t); i++ {
			pairs++
			if t[i] == t[i+1] {
				stutters++
			}
		}
	}
	if pairs == 0 {
		return 0
	}
	return float64(stutters) / float64(pairs)
}

// dirtyThreshold splits the adaptive stages' two regimes: below it a log is
// presumed essentially clean and stages only undo rare, overwhelmingly
// contradicted recordings; above it the log is visibly noisy and the stages
// trade some false repairs for catching much more genuine corruption.
const dirtyThreshold = 0.03

// Stage repairs one defect class in one trace. Repair must not mutate t;
// it returns the repaired trace, the per-trace tallies, and a non-empty
// Reason when the trace must be quarantined instead (counts are then
// discarded — a quarantined trace contributes nothing to the output).
type Stage interface {
	Name() string
	Repair(ctx *Context, t eventlog.Trace) (eventlog.Trace, Counts, Reason)
}

// StageReport aggregates one stage's effect over the whole log.
type StageReport struct {
	Stage             string `json:"stage"`
	EventsDropped     int    `json:"events_dropped"`
	EventsReordered   int    `json:"events_reordered"`
	EventsImputed     int    `json:"events_imputed"`
	TracesTouched     int    `json:"traces_touched"`
	TracesQuarantined int    `json:"traces_quarantined"`
}

// QuarantinedTrace identifies one quarantined trace: its index in the input
// log, the stage that gave up on it, and why.
type QuarantinedTrace struct {
	Index  int    `json:"index"`
	Stage  string `json:"stage"`
	Reason Reason `json:"reason"`
	Events int    `json:"events"`
}

// maxQuarantineSamples caps the per-report list of quarantined traces; the
// counters stay exact beyond it.
const maxQuarantineSamples = 32

// Report is the outcome of one Pipeline.Run over one log.
type Report struct {
	// Log names the repaired log.
	Log string `json:"log,omitempty"`
	// TracesIn and TracesOut are the trace counts before and after repair;
	// TracesIn == TracesOut + TracesQuarantined always holds.
	TracesIn  int `json:"traces_in"`
	TracesOut int `json:"traces_out"`
	// Totals over all stages.
	EventsDropped     int `json:"events_dropped"`
	EventsReordered   int `json:"events_reordered"`
	EventsImputed     int `json:"events_imputed"`
	TracesTouched     int `json:"traces_touched"`
	TracesQuarantined int `json:"traces_quarantined"`
	// Stages holds the per-stage breakdown in execution order.
	Stages []StageReport `json:"stages,omitempty"`
	// Quarantined samples up to maxQuarantineSamples quarantined traces.
	Quarantined []QuarantinedTrace `json:"quarantined,omitempty"`
}

// Touched reports whether the repair changed the log at all.
func (r *Report) Touched() bool {
	return r.TracesTouched > 0 || r.TracesQuarantined > 0
}

// Pipeline is an ordered list of repair stages.
type Pipeline struct {
	stages []Stage
}

// NewPipeline builds a pipeline over the given stages, run in order.
func NewPipeline(stages ...Stage) (*Pipeline, error) {
	if len(stages) == 0 {
		return nil, fmt.Errorf("repair: pipeline needs at least one stage")
	}
	seen := make(map[string]bool, len(stages))
	for _, st := range stages {
		if st == nil {
			return nil, fmt.Errorf("repair: nil stage")
		}
		if seen[st.Name()] {
			return nil, fmt.Errorf("repair: duplicate stage %q", st.Name())
		}
		seen[st.Name()] = true
	}
	return &Pipeline{stages: stages}, nil
}

// Stages lists the pipeline's stage names in execution order.
func (p *Pipeline) Stages() []string {
	out := make([]string, len(p.stages))
	for i, st := range p.stages {
		out[i] = st.Name()
	}
	return out
}

// Options tune the default three-stage pipeline. The zero value picks the
// documented defaults for every knob.
type Options struct {
	// Window is the duplicate-collapse distance: a repeated event within
	// Window positions of an earlier copy is dropped. <= 0 means 1
	// (immediately adjacent repeats only).
	Window int
	// OrderRatio is the dominance ratio of order repair: an adjacent pair
	// (a,b) is swapped back only when the reverse order (b,a) is at least
	// OrderRatio times as frequent in the log. <= 0 adapts to the log's
	// measured dirtiness (4 when clean-looking, 2 when visibly noisy).
	OrderRatio float64
	// OrderMaxFwd caps the frequency of an order read as disorder: a pair
	// recorded by more than this fraction of traces is a legitimate
	// interleaving, not noise, and is never swapped. <= 0 means 0.25;
	// >= 1 disables the cap.
	OrderMaxFwd float64
	// OrderMaxPasses bounds reorder passes per trace before the trace is
	// quarantined as order-unstable. <= 0 derives it from the trace length.
	OrderMaxPasses int
	// ImputeRatio is how many times stronger the indirect path a->c->b must
	// be than the direct edge a->b before c is imputed between a and b.
	// <= 0 means 4.
	ImputeRatio float64
	// ImputeMinPath is the minimum frequency both path edges a->c and c->b
	// must carry for an imputation. <= 0 adapts to the log's measured
	// dirtiness (0.5 when clean-looking, 0.25 when visibly noisy).
	ImputeMinPath float64
	// ImputeMax is the per-trace imputation budget; a trace demanding more
	// insertions is quarantined as beyond repair. <= 0 means 3.
	ImputeMax int
}

func (o Options) withDefaults() Options {
	if o.Window <= 0 {
		o.Window = 1
	}
	// OrderRatio and ImputeMinPath stay 0 when unset: the stages then adapt
	// them to the measured dirtiness of each log they repair.
	if o.OrderMaxFwd <= 0 {
		o.OrderMaxFwd = 0.25
	}
	if o.ImputeRatio <= 0 {
		o.ImputeRatio = 4
	}
	if o.ImputeMax <= 0 {
		o.ImputeMax = 3
	}
	return o
}

// Default builds the standard pipeline: duplicate collapse, then order
// repair, then missing-event imputation — each stage cleaning the statistics
// the next one conditions on.
func Default(o Options) *Pipeline {
	o = o.withDefaults()
	p, err := NewPipeline(
		&CollapseDuplicates{Window: o.Window},
		&RepairOrder{Ratio: o.OrderRatio, MaxFwd: o.OrderMaxFwd, MaxPasses: o.OrderMaxPasses},
		&ImputeMissing{Ratio: o.ImputeRatio, MinPath: o.ImputeMinPath, MaxPerTrace: o.ImputeMax},
	)
	if err != nil {
		panic(err) // unreachable: the stage list is static and well-formed
	}
	return p
}

// Run repairs the log through every stage and returns the repaired log plus
// the report. The input log is never mutated. Run fails only when the log is
// structurally invalid, when the dependency relation cannot be built, or
// when a stage quarantines every remaining trace (an empty log cannot be
// matched, so there is nothing graceful left to degrade to).
func (p *Pipeline) Run(l *eventlog.Log) (*eventlog.Log, *Report, error) {
	if err := l.Validate(); err != nil {
		return nil, nil, fmt.Errorf("repair: %w", err)
	}
	type liveTrace struct {
		idx     int // index in the input log
		t       eventlog.Trace
		touched bool
	}
	cur := make([]liveTrace, len(l.Traces))
	for i, t := range l.Traces {
		cur[i] = liveTrace{idx: i, t: t.Clone()}
	}
	rep := &Report{Log: l.Name, TracesIn: l.Len()}
	dirt := Dirtiness(l)
	for _, st := range p.stages {
		work := &eventlog.Log{Name: l.Name, Traces: make([]eventlog.Trace, len(cur))}
		for i := range cur {
			work.Traces[i] = cur[i].t
		}
		ctx, err := NewContext(work)
		if err != nil {
			return nil, nil, err
		}
		// Adaptive stages must calibrate against the raw input's dirtiness:
		// the collapse stage removes the stutters the estimate is read from,
		// so the per-stage context would otherwise always look clean.
		ctx.Dirtiness = dirt
		sr := StageReport{Stage: st.Name()}
		next := make([]liveTrace, 0, len(cur))
		for _, lv := range cur {
			out, c, reason := st.Repair(ctx, lv.t)
			if reason != "" {
				sr.TracesQuarantined++
				rep.TracesQuarantined++
				if len(rep.Quarantined) < maxQuarantineSamples {
					rep.Quarantined = append(rep.Quarantined, QuarantinedTrace{
						Index: lv.idx, Stage: st.Name(), Reason: reason, Events: len(lv.t),
					})
				}
				continue
			}
			if !c.zero() || !equalTrace(out, lv.t) {
				sr.TracesTouched++
				lv.touched = true
			}
			sr.EventsDropped += c.Dropped
			sr.EventsReordered += c.Reordered
			sr.EventsImputed += c.Imputed
			lv.t = out
			next = append(next, lv)
		}
		rep.EventsDropped += sr.EventsDropped
		rep.EventsReordered += sr.EventsReordered
		rep.EventsImputed += sr.EventsImputed
		rep.Stages = append(rep.Stages, sr)
		cur = next
		if len(cur) == 0 {
			rep.TracesOut = 0
			return nil, rep, fmt.Errorf("repair: stage %q quarantined every trace of log %q", st.Name(), l.Name)
		}
	}
	out := &eventlog.Log{Name: l.Name, Traces: make([]eventlog.Trace, len(cur))}
	for i, lv := range cur {
		out.Traces[i] = lv.t
		if lv.touched {
			rep.TracesTouched++
		}
	}
	rep.TracesOut = len(cur)
	return out, rep, nil
}

func equalTrace(a, b eventlog.Trace) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
