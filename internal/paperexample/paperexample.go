// Package paperexample reconstructs the running example of the paper
// (Figure 1): two fragments of turbine-order-processing event logs from two
// subsidiaries, exhibiting all three challenges — the opaque event 5
// ("??????", originally "Delivery"), the dislocated event Paid by Cash
// (trace-initial in log 1, mid-trace in log 2), and the composite event 4
// (Inventory Checking & Validation, corresponding to C and D of log 1).
//
// The logs are built so that their dependency graphs reproduce the node and
// edge frequencies printed in Figures 1(c) and 1(d) — e.g. f(A) = 0.4,
// f(A,C) = 0.4, f(1) = 1.0 — which the worked Examples 2, 4, 5, 6, 7 and 8
// of the paper compute with. Tests across the repository validate against
// those numbers.
package paperexample

import (
	"repro/internal/eventlog"
	"repro/internal/matching"
)

// Event identifiers of the example, named as in the paper.
const (
	A = "A" // Paid by Cash
	B = "B" // Paid by Credit Card
	C = "C" // Check Inventory
	D = "D" // Validate
	E = "E" // Ship Goods
	F = "F" // Email Customer

	N1 = "1" // Order Accepted
	N2 = "2" // Paid by Cash
	N3 = "3" // Paid by Credit Card
	N4 = "4" // Inventory Checking & Validation (composite of C, D)
	N5 = "5" // Delivery (opaque "??????")
	N6 = "6" // Email
)

// Log1 returns the first log fragment: 5 traces, 40% starting with Paid by
// Cash (A) and 60% with Paid by Credit Card (B); Ship Goods (E) and Email
// Customer (F) are concurrent at the end.
func Log1() *eventlog.Log {
	l := eventlog.New("L1")
	for i := 0; i < 2; i++ {
		l.Append(eventlog.Trace{A, C, D, E, F})
	}
	for i := 0; i < 3; i++ {
		l.Append(eventlog.Trace{B, C, D, F, E})
	}
	return l
}

// Log2 returns the second log fragment: every trace starts with Order
// Accepted (1) — the dislocation — followed by an exclusive choice of Paid
// by Cash (2, 40%) or Paid by Credit Card (3, 60%), the composite event 4,
// and the concurrent 5 and 6.
func Log2() *eventlog.Log {
	l := eventlog.New("L2")
	for i := 0; i < 2; i++ {
		l.Append(eventlog.Trace{N1, N2, N4, N5, N6})
	}
	for i := 0; i < 3; i++ {
		l.Append(eventlog.Trace{N1, N3, N4, N6, N5})
	}
	return l
}

// Truth returns the ground-truth mapping M' of Example 2: A→2, B→3,
// {C,D}→4, E→5, F→6 (event 1 has no counterpart in log 1).
func Truth() matching.Mapping {
	return matching.Mapping{
		matching.NewCorrespondence([]string{A}, []string{N2}, 1),
		matching.NewCorrespondence([]string{B}, []string{N3}, 1),
		matching.NewCorrespondence([]string{C, D}, []string{N4}, 1),
		matching.NewCorrespondence([]string{E}, []string{N5}, 1),
		matching.NewCorrespondence([]string{F}, []string{N6}, 1),
	}.Sort()
}

// SingletonTruth returns the 1:1 portion of the ground truth (excluding the
// composite pair), for evaluating plain singleton matching.
func SingletonTruth() matching.Mapping {
	return matching.Mapping{
		matching.NewCorrespondence([]string{A}, []string{N2}, 1),
		matching.NewCorrespondence([]string{B}, []string{N3}, 1),
		matching.NewCorrespondence([]string{E}, []string{N5}, 1),
		matching.NewCorrespondence([]string{F}, []string{N6}, 1),
	}.Sort()
}
