package paperexample

import (
	"math"
	"testing"

	"repro/internal/eventlog"
)

// TestFrequenciesMatchFigure1 re-derives the statistics the paper prints in
// Figures 1(c)/1(d) from the reconstructed logs.
func TestFrequenciesMatchFigure1(t *testing.T) {
	st1 := eventlog.CollectStats(Log1())
	want1 := map[string]float64{A: 0.4, B: 0.6, C: 1.0, D: 1.0, E: 1.0, F: 1.0}
	for e, w := range want1 {
		if got := st1.NodeFreq[e]; math.Abs(got-w) > 1e-12 {
			t.Errorf("f(%s) = %g, want %g", e, got, w)
		}
	}
	if got := st1.EdgeFreq[[2]string{A, C}]; math.Abs(got-0.4) > 1e-12 {
		t.Errorf("f(A,C) = %g, want 0.4", got)
	}
	st2 := eventlog.CollectStats(Log2())
	want2 := map[string]float64{N1: 1.0, N2: 0.4, N3: 0.6, N4: 1.0, N5: 1.0, N6: 1.0}
	for e, w := range want2 {
		if got := st2.NodeFreq[e]; math.Abs(got-w) > 1e-12 {
			t.Errorf("f(%s) = %g, want %g", e, got, w)
		}
	}
}

func TestTruthShape(t *testing.T) {
	truth := Truth()
	if len(truth) != 5 {
		t.Fatalf("truth has %d rows, want 5", len(truth))
	}
	composite := 0
	for _, c := range truth {
		if len(c.Left) == 2 {
			composite++
		}
	}
	if composite != 1 {
		t.Errorf("truth has %d composite rows, want 1 ({C,D}->4)", composite)
	}
	if len(SingletonTruth()) != 4 {
		t.Errorf("singleton truth has %d rows, want 4", len(SingletonTruth()))
	}
}

func TestLogsValid(t *testing.T) {
	if err := Log1().Validate(); err != nil {
		t.Errorf("Log1 invalid: %v", err)
	}
	if err := Log2().Validate(); err != nil {
		t.Errorf("Log2 invalid: %v", err)
	}
}
