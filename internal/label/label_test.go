package label

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQGramCosineIdentical(t *testing.T) {
	sim := QGramCosine(3)
	if got := sim("Check Inventory", "Check Inventory"); math.Abs(got-1) > 1e-12 {
		t.Errorf("identical strings = %g, want 1", got)
	}
}

func TestQGramCosineCaseInsensitive(t *testing.T) {
	sim := QGramCosine(3)
	if got := sim("SHIP GOODS", "ship goods"); math.Abs(got-1) > 1e-12 {
		t.Errorf("case-insensitive match = %g, want 1", got)
	}
}

func TestQGramCosineSimilarVsDissimilar(t *testing.T) {
	sim := QGramCosine(3)
	similar := sim("check inventory", "check inventory v2")
	dissimilar := sim("check inventory", "#9f3a1b")
	if similar <= dissimilar {
		t.Errorf("similar %g <= dissimilar %g", similar, dissimilar)
	}
	if similar < 0.5 {
		t.Errorf("near-duplicate similarity %g unexpectedly low", similar)
	}
	if dissimilar > 0.2 {
		t.Errorf("garbled similarity %g unexpectedly high", dissimilar)
	}
}

func TestQGramCosineEmpty(t *testing.T) {
	sim := QGramCosine(3)
	if got := sim("", ""); got != 1 {
		t.Errorf("empty/empty = %g, want 1", got)
	}
	if got := sim("abc", ""); got != 0 {
		t.Errorf("abc/empty = %g, want 0", got)
	}
}

func TestQGramCosineQClamped(t *testing.T) {
	sim := QGramCosine(0) // clamped to 1
	if got := sim("ab", "ba"); math.Abs(got-1) > 1e-12 {
		t.Errorf("unigram profile of anagrams = %g, want 1", got)
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"abc", "abc", 1},
		{"abc", "abd", 2.0 / 3},
		{"", "", 1},
		{"abc", "", 0},
		{"kitten", "sitting", 1 - 3.0/7},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Levenshtein(%q,%q) = %g, want %g", c.a, c.b, got, c.want)
		}
	}
}

func TestJaccardWords(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"check order", "order check", 1},
		{"check order", "check invoice", 1.0 / 3},
		{"", "", 1},
		{"a b", "c d", 0},
	}
	for _, c := range cases {
		if got := JaccardWords(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("JaccardWords(%q,%q) = %g, want %g", c.a, c.b, got, c.want)
		}
	}
}

func TestZero(t *testing.T) {
	if Zero("a", "a") != 0 {
		t.Errorf("Zero not zero")
	}
}

func TestMatrix(t *testing.T) {
	m := Matrix(Levenshtein, []string{"ab", "cd"}, []string{"ab"})
	if len(m) != 2 {
		t.Fatalf("matrix size %d, want 2", len(m))
	}
	if m[0] != 1 || m[1] != 0 {
		t.Errorf("matrix = %v, want [1 0]", m)
	}
}

// Properties: symmetry and range for all measures.
func TestMeasureProperties(t *testing.T) {
	measures := map[string]Similarity{
		"qgram":   QGramCosine(3),
		"edit":    Levenshtein,
		"jaccard": JaccardWords,
	}
	for name, sim := range measures {
		f := func(a, b string) bool {
			v1, v2 := sim(a, b), sim(b, a)
			if math.Abs(v1-v2) > 1e-9 {
				return false
			}
			if v1 < 0 || v1 > 1+1e-9 {
				return false
			}
			return math.Abs(sim(a, a)-1) < 1e-9
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
