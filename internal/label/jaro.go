package label

import (
	"strings"
)

// JaroWinkler returns the Jaro-Winkler similarity, which rewards common
// prefixes — well suited to activity labels that differ by suffixes
// ("approve claim" vs "approve claim v2").
func JaroWinkler(a, b string) float64 {
	ra, rb := []rune(strings.ToLower(a)), []rune(strings.ToLower(b))
	j := jaro(ra, rb)
	if j == 0 {
		return 0
	}
	// Common prefix up to 4 runes, scaling factor 0.1 (the standard
	// constants).
	prefix := 0
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

func jaro(a, b []rune) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	window := max(len(a), len(b))/2 - 1
	if window < 0 {
		window = 0
	}
	matchedA := make([]bool, len(a))
	matchedB := make([]bool, len(b))
	matches := 0
	for i, ca := range a {
		lo := max(0, i-window)
		hi := min(len(b)-1, i+window)
		for j := lo; j <= hi; j++ {
			if matchedB[j] || b[j] != ca {
				continue
			}
			matchedA[i] = true
			matchedB[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions among matched runes.
	transpositions := 0
	j := 0
	for i := range a {
		if !matchedA[i] {
			continue
		}
		for !matchedB[j] {
			j++
		}
		if a[i] != b[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(len(a)) + m/float64(len(b)) + (m-t)/m) / 3
}

// MongeElkan lifts a base similarity to multi-word labels: each word of the
// first label is scored against its best counterpart in the second, then
// averaged; the result is symmetrized. It tolerates word reordering and
// missing filler words.
func MongeElkan(base Similarity) Similarity {
	oneWay := func(a, b []string) float64 {
		if len(a) == 0 && len(b) == 0 {
			return 1
		}
		if len(a) == 0 || len(b) == 0 {
			return 0
		}
		var sum float64
		for _, x := range a {
			best := 0.0
			for _, y := range b {
				if v := base(x, y); v > best {
					best = v
				}
			}
			sum += best
		}
		return sum / float64(len(a))
	}
	return func(a, b string) float64 {
		wa, wb := strings.Fields(strings.ToLower(a)), strings.Fields(strings.ToLower(b))
		return (oneWay(wa, wb) + oneWay(wb, wa)) / 2
	}
}
