package label

import (
	"math"
	"testing"
	"testing/quick"
)

func TestJaroWinklerKnownValues(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"martha", "marhta", 0.9611},
		{"dixon", "dicksonx", 0.8133},
		{"abc", "abc", 1},
		{"", "", 1},
		{"abc", "", 0},
		{"abc", "xyz", 0},
	}
	for _, c := range cases {
		if got := JaroWinkler(c.a, c.b); math.Abs(got-c.want) > 0.001 {
			t.Errorf("JaroWinkler(%q,%q) = %.4f, want %.4f", c.a, c.b, got, c.want)
		}
	}
}

func TestJaroWinklerPrefixBonus(t *testing.T) {
	// Same Jaro core (two shared runes), different prefix placement.
	withPrefix := JaroWinkler("abxy", "abqr")
	noPrefix := JaroWinkler("xyab", "qrab")
	if withPrefix <= noPrefix {
		t.Errorf("prefix bonus missing: %.4f vs %.4f", withPrefix, noPrefix)
	}
}

func TestMongeElkanWordReordering(t *testing.T) {
	sim := MongeElkan(JaroWinkler)
	reordered := sim("check inventory", "inventory check")
	if math.Abs(reordered-1) > 1e-9 {
		t.Errorf("reordered words = %.4f, want 1", reordered)
	}
	partial := sim("check inventory", "check stock")
	if partial >= reordered || partial <= 0.3 {
		t.Errorf("partial overlap = %.4f, want between 0.3 and 1", partial)
	}
}

func TestMongeElkanEmpty(t *testing.T) {
	sim := MongeElkan(JaroWinkler)
	if sim("", "") != 1 {
		t.Errorf("empty/empty != 1")
	}
	if sim("a", "") != 0 {
		t.Errorf("a/empty != 0")
	}
}

func TestJaroWinklerProperties(t *testing.T) {
	f := func(a, b string) bool {
		v := JaroWinkler(a, b)
		if v < 0 || v > 1+1e-9 {
			return false
		}
		if math.Abs(v-JaroWinkler(b, a)) > 1e-9 {
			return false
		}
		return math.Abs(JaroWinkler(a, a)-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestMongeElkanProperties(t *testing.T) {
	sim := MongeElkan(QGramCosine(2))
	f := func(a, b string) bool {
		v := sim(a, b)
		if v < 0 || v > 1+1e-9 {
			return false
		}
		return math.Abs(v-sim(b, a)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
