package label

import "testing"

// Fuzz targets: every measure must stay in [0,1], be symmetric, and give 1
// on identical inputs — for arbitrary (including invalid-UTF-8) strings.

func fuzzMeasure(f *testing.F, sim Similarity) {
	f.Add("check order", "chk order")
	f.Add("", "")
	f.Add("ü", "u")
	f.Fuzz(func(t *testing.T, a, b string) {
		v := sim(a, b)
		if v < 0 || v > 1+1e-9 {
			t.Fatalf("sim(%q,%q) = %g out of range", a, b, v)
		}
		w := sim(b, a)
		if d := v - w; d > 1e-9 || d < -1e-9 {
			t.Fatalf("asymmetric: %g vs %g", v, w)
		}
		if s := sim(a, a); s < 1-1e-9 {
			t.Fatalf("self similarity %g != 1 for %q", s, a)
		}
	})
}

func FuzzQGramCosine(f *testing.F)  { fuzzMeasure(f, QGramCosine(3)) }
func FuzzLevenshtein(f *testing.F)  { fuzzMeasure(f, Levenshtein) }
func FuzzJaroWinkler(f *testing.F)  { fuzzMeasure(f, JaroWinkler) }
func FuzzJaccardWords(f *testing.F) { fuzzMeasure(f, JaccardWords) }
