// Package label implements typographic (label) similarity measures between
// event names: cosine similarity over q-gram profiles (the measure the paper
// uses, following Gravano et al., WWW 2003), normalized Levenshtein edit
// similarity, and Jaccard word similarity. All measures return values in
// [0,1] where 1 means identical.
package label

import (
	"math"
	"strings"
	"unicode"
)

// Similarity computes a label similarity in [0,1] between two event names.
type Similarity func(a, b string) float64

// QGramCosine returns the cosine-similarity measure over q-gram frequency
// vectors. Names are lower-cased and padded with q-1 boundary markers so
// that prefixes and suffixes contribute. q must be >= 1; q = 3 reproduces
// the paper's setting.
func QGramCosine(q int) Similarity {
	if q < 1 {
		q = 1
	}
	return func(a, b string) float64 {
		pa, pb := qgramProfile(a, q), qgramProfile(b, q)
		return cosine(pa, pb)
	}
}

func qgramProfile(s string, q int) map[string]int {
	s = strings.ToLower(s)
	pad := strings.Repeat("\x00", q-1)
	r := []rune(pad + s + pad)
	prof := make(map[string]int)
	for i := 0; i+q <= len(r); i++ {
		prof[string(r[i:i+q])]++
	}
	return prof
}

func cosine(a, b map[string]int) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	var dot, na, nb float64
	for g, ca := range a {
		if cb, ok := b[g]; ok {
			dot += float64(ca) * float64(cb)
		}
		na += float64(ca) * float64(ca)
	}
	for _, cb := range b {
		nb += float64(cb) * float64(cb)
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// Levenshtein returns the normalized edit similarity
// 1 - dist(a,b)/max(len(a),len(b)), computed over runes.
func Levenshtein(a, b string) float64 {
	ra, rb := []rune(strings.ToLower(a)), []rune(strings.ToLower(b))
	if len(ra) == 0 && len(rb) == 0 {
		return 1
	}
	d := editDistance(ra, rb)
	return 1 - float64(d)/float64(max(len(ra), len(rb)))
}

func editDistance(a, b []rune) int {
	if len(a) < len(b) {
		a, b = b, a
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// JaccardWords returns the Jaccard similarity between the word sets of the
// two names, where words are maximal alphanumeric runs, lower-cased.
func JaccardWords(a, b string) float64 {
	wa, wb := wordSet(a), wordSet(b)
	if len(wa) == 0 && len(wb) == 0 {
		return 1
	}
	inter := 0
	for w := range wa {
		if wb[w] {
			inter++
		}
	}
	union := len(wa) + len(wb) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

func wordSet(s string) map[string]bool {
	out := make(map[string]bool)
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			out[strings.ToLower(cur.String())] = true
			cur.Reset()
		}
	}
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			cur.WriteRune(r)
		} else {
			flush()
		}
	}
	flush()
	return out
}

// Zero is the similarity that is 0 for every pair; it is used when labels
// are opaque and must be ignored (equivalently alpha = 1).
func Zero(a, b string) float64 { return 0 }

// Matrix evaluates the similarity for every pair of the two name slices and
// returns a dense row-major matrix m[i*len(b)+j] = sim(a[i], b[j]).
func Matrix(sim Similarity, a, b []string) []float64 {
	m := make([]float64, len(a)*len(b))
	for i, x := range a {
		for j, y := range b {
			m[i*len(b)+j] = sim(x, y)
		}
	}
	return m
}
