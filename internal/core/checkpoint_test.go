package core

import (
	"errors"
	"testing"
)

func TestCheckpointedRunBitIdenticalAndResumable(t *testing.T) {
	base := DefaultConfig()
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"both-prune", func(c *Config) {}},
		{"forward", func(c *Config) { c.Direction = Forward }},
		{"both-noprune", func(c *Config) { c.Prune = false }},
		{"estimate3", func(c *Config) { c.EstimateI = 3 }},
		{"workers4", func(c *Config) { c.Workers = 4 }},
		{"labels", func(c *Config) { c.Alpha = 0.7; c.Labels = testLabelSim }},
		{"tiled", func(c *Config) { c.Tiled = true }},
		{"fastpath", func(c *Config) { c.FastPath = true }},
		{"fastpath-tiled", func(c *Config) { c.FastPath = true; c.Tiled = true }},
	}
	g1, g2 := procgenGraphs(t, 7, 12, 40)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			baseline, err := Compute(g1, g2, cfg)
			if err != nil {
				t.Fatalf("baseline Compute: %v", err)
			}
			if cfg.FastPath && !baseline.Estimated {
				// The fast-path cases exist to cover resume-mid-fastpath:
				// a workload that epsilon-converges before the cutover
				// would silently skip the detector-state round-trip.
				t.Fatalf("fast path never cut over on this workload (rounds=%d)", baseline.Rounds)
			}

			// The checkpointed (lockstep) run must produce the same bits as
			// the plain (concurrent) run.
			var cps []*Checkpoint
			ccfg := cfg
			ccfg.CheckpointEvery = 2
			ccfg.Checkpoint = func(cp *Checkpoint) { cps = append(cps, cp) }
			checkpointed, err := Compute(g1, g2, ccfg)
			if err != nil {
				t.Fatalf("checkpointed Compute: %v", err)
			}
			requireBitIdentical(t, baseline, checkpointed, tc.name+"/checkpointed-run")
			if len(cps) == 0 {
				t.Fatalf("no checkpoints emitted")
			}

			// Resuming from every captured checkpoint — after a
			// serialization round-trip, under a different worker budget and
			// the opposite matrix layout (checkpoints are canonical
			// row-major, so tiled and untiled engines interchange) — must
			// reproduce the baseline exactly. For the fast-path cases this
			// includes checkpoints taken before the cutover, so the detector
			// state (delta history, ratio streak, frozen pairs) round-trips
			// too.
			for k, cp := range cps {
				data, err := cp.MarshalBinary()
				if err != nil {
					t.Fatalf("checkpoint %d: MarshalBinary: %v", k, err)
				}
				var decoded Checkpoint
				if err := decoded.UnmarshalBinary(data); err != nil {
					t.Fatalf("checkpoint %d: UnmarshalBinary: %v", k, err)
				}
				rcfg := cfg
				rcfg.Tiled = !rcfg.Tiled // resume under the opposite layout
				if rcfg.Workers == 4 {
					rcfg.Workers = 1 // resume under a different budget
				} else {
					rcfg.Workers = 4
				}
				c, err := NewComputation(g1, g2, rcfg, nil)
				if err != nil {
					t.Fatalf("checkpoint %d: NewComputation: %v", k, err)
				}
				if err := c.Restore(&decoded); err != nil {
					t.Fatalf("checkpoint %d: Restore: %v", k, err)
				}
				if err := c.Run(); err != nil {
					t.Fatalf("checkpoint %d: resumed Run: %v", k, err)
				}
				resumed, err := c.Result()
				if err != nil {
					t.Fatalf("checkpoint %d: resumed Result: %v", k, err)
				}
				requireBitIdentical(t, baseline, resumed, tc.name+"/resume")
			}
		})
	}
}

// testLabelSim is a deterministic non-trivial label similarity.
func testLabelSim(a, b string) float64 {
	if a == b {
		return 1
	}
	if len(a) == len(b) {
		return 0.5
	}
	return 0.25
}

func TestCheckpointCadence(t *testing.T) {
	g1, g2 := procgenGraphs(t, 11, 10, 30)
	cfg := DefaultConfig()
	cfg.Epsilon = 1e-12 // force many rounds
	var rounds []int
	cfg.CheckpointEvery = 3
	cfg.Checkpoint = func(cp *Checkpoint) { rounds = append(rounds, cp.Round()) }
	if _, err := Compute(g1, g2, cfg); err != nil {
		t.Fatalf("Compute: %v", err)
	}
	if len(rounds) == 0 {
		t.Fatalf("no checkpoints for a long run")
	}
	for i, r := range rounds {
		if want := 3 * (i + 1); r != want {
			t.Fatalf("checkpoint %d taken at round %d, want %d (all: %v)", i, r, want, rounds)
		}
	}
}

func TestCheckpointUnmarshalRejectsCorruption(t *testing.T) {
	g1, g2 := procgenGraphs(t, 5, 8, 20)
	cfg := DefaultConfig()
	var cp *Checkpoint
	cfg.CheckpointEvery = 1
	cfg.Checkpoint = func(c *Checkpoint) {
		if cp == nil {
			cp = c
		}
	}
	if _, err := Compute(g1, g2, cfg); err != nil {
		t.Fatalf("Compute: %v", err)
	}
	if cp == nil {
		t.Fatalf("no checkpoint captured")
	}
	data, err := cp.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}

	var clean Checkpoint
	if err := clean.UnmarshalBinary(data); err != nil {
		t.Fatalf("clean UnmarshalBinary: %v", err)
	}

	// Any single flipped byte must be caught by the CRC.
	for off := 0; off < len(data); off += 7 {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x40
		var out Checkpoint
		if err := out.UnmarshalBinary(mut); !errors.Is(err, ErrCorruptCheckpoint) {
			t.Fatalf("flip at %d: got %v, want ErrCorruptCheckpoint", off, err)
		}
	}
	// Truncation at any length must be caught too.
	for cut := 0; cut < len(data); cut += 5 {
		var out Checkpoint
		if err := out.UnmarshalBinary(data[:cut]); !errors.Is(err, ErrCorruptCheckpoint) {
			t.Fatalf("truncate to %d: got %v, want ErrCorruptCheckpoint", cut, err)
		}
	}
}

func TestRestoreRejectsMismatches(t *testing.T) {
	g1, g2 := procgenGraphs(t, 5, 8, 20)
	cfg := DefaultConfig()
	var cp *Checkpoint
	ccfg := cfg
	ccfg.CheckpointEvery = 1
	ccfg.Checkpoint = func(c *Checkpoint) {
		if cp == nil {
			cp = c
		}
	}
	if _, err := Compute(g1, g2, ccfg); err != nil {
		t.Fatalf("Compute: %v", err)
	}
	if cp == nil {
		t.Fatalf("no checkpoint captured")
	}

	// Different numeric configuration.
	other := cfg
	other.C = 0.6
	c, err := NewComputation(g1, g2, other, nil)
	if err != nil {
		t.Fatalf("NewComputation: %v", err)
	}
	if err := c.Restore(cp); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("different C: got %v, want ErrCheckpointMismatch", err)
	}

	// Different graphs.
	h1, h2 := procgenGraphs(t, 99, 8, 20)
	c, err = NewComputation(h1, h2, cfg, nil)
	if err != nil {
		t.Fatalf("NewComputation: %v", err)
	}
	if err := c.Restore(cp); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("different graphs: got %v, want ErrCheckpointMismatch", err)
	}

	// Restore after iteration has started.
	c, err = NewComputation(g1, g2, cfg, nil)
	if err != nil {
		t.Fatalf("NewComputation: %v", err)
	}
	if _, err := c.Step(); err != nil {
		t.Fatalf("Step: %v", err)
	}
	if err := c.Restore(cp); err == nil {
		t.Fatalf("Restore after Step succeeded, want error")
	}

	// Nil checkpoint.
	c, err = NewComputation(g1, g2, cfg, nil)
	if err != nil {
		t.Fatalf("NewComputation: %v", err)
	}
	if err := c.Restore(nil); err == nil {
		t.Fatalf("Restore(nil) succeeded, want error")
	}
}

func TestCheckpointMarshalRejectsInconsistent(t *testing.T) {
	bad := &Checkpoint{}
	if _, err := bad.MarshalBinary(); err == nil {
		t.Fatalf("marshal of empty checkpoint succeeded")
	}
	bad = &Checkpoint{Dirs: []DirCheckpoint{{N1: 2, N2: 2, Cur: make([]float64, 3), Prev: make([]float64, 4)}}}
	if _, err := bad.MarshalBinary(); err == nil {
		t.Fatalf("marshal of inconsistent dims succeeded")
	}
}
