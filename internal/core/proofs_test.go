package core

// Tests in this file validate the paper's formal results directly: each
// theorem, lemma and proposition of Sections 3 and 4 has a corresponding
// executable check on the reconstructed running example and on random logs.

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/depgraph"
)

// TestLemma5IncrementBound: 0 <= S^n - S^(n-1) <= (alpha*c)^n for every
// pair and round.
func TestLemma5IncrementBound(t *testing.T) {
	g1, g2 := exampleGraphs(t)
	cfg := forwardConfig()
	cfg.Prune = false
	ac := cfg.Alpha * cfg.C
	var prev []float64
	for n := 1; n <= 10; n++ {
		cfg.MaxRounds = n
		r, err := Compute(g1, g2, cfg)
		if err != nil {
			t.Fatalf("Compute: %v", err)
		}
		if prev != nil {
			bound := math.Pow(ac, float64(n))
			for i := range r.Sim {
				d := r.Sim[i] - prev[i]
				if d < -1e-12 || d > bound+1e-9 {
					t.Fatalf("round %d: increment %g outside [0, %g] at %d", n, d, bound, i)
				}
			}
		}
		prev = r.Sim
	}
}

// TestProposition2EarlyConvergence: for every pair, the similarity is
// exactly fixed after h = min(l(v1), l(v2)) rounds (checked on the acyclic
// part of the example).
func TestProposition2EarlyConvergence(t *testing.T) {
	g1, g2 := exampleGraphs(t)
	l1, err := g1.LongestFromArtificial()
	if err != nil {
		t.Fatal(err)
	}
	l2, err := g2.LongestFromArtificial()
	if err != nil {
		t.Fatal(err)
	}
	cfg := forwardConfig()
	cfg.Prune = false
	results := make(map[int][]float64)
	for n := 1; n <= 8; n++ {
		cfg.MaxRounds = n
		r, err := Compute(g1, g2, cfg)
		if err != nil {
			t.Fatal(err)
		}
		results[n] = r.Sim
	}
	n2 := g2.RealCount()
	for i := 0; i < g1.RealCount(); i++ {
		for j := 0; j < n2; j++ {
			h := min(l1[i+1], l2[j+1])
			if h == depgraph.Infinite || h >= 8 {
				continue
			}
			fixed := results[h][i*n2+j]
			for n := h + 1; n <= 8; n++ {
				if math.Abs(results[n][i*n2+j]-fixed) > 1e-12 {
					t.Fatalf("pair (%d,%d) with h=%d changed at round %d: %g -> %g",
						i, j, h, n, fixed, results[n][i*n2+j])
				}
			}
		}
	}
}

// TestExample6EstimationAnchors: with I = 0, the estimate of a pair that
// converges after one round — like (A,1), whose only predecessors are the
// artificial events — equals the exact similarity, as Example 6 states.
func TestExample6EstimationAnchors(t *testing.T) {
	g1, g2 := exampleGraphs(t)
	exact, err := Compute(g1, g2, forwardConfig())
	if err != nil {
		t.Fatal(err)
	}
	est, err := ExactEstimationTradeoff(g1, g2, forwardConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	we, _ := exact.Lookup("A", "1")
	ge, _ := est.Lookup("A", "1")
	if math.Abs(we-ge) > 1e-9 {
		t.Errorf("I=0 estimate of (A,1) = %g, want exact %g", ge, we)
	}
}

// TestTheorem1UniquenessFromDifferentStarts: the fixpoint is unique —
// iterating from a seeded nonzero start converges to the same limits (the
// contraction argument of the uniqueness proof). We approximate by seeding
// one non-artificial pair at its exact converged value and checking the
// rest agree.
func TestTheorem1UniquenessFromDifferentStarts(t *testing.T) {
	g1, g2 := exampleGraphs(t)
	cfg := forwardConfig()
	exact, err := Compute(g1, g2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := exact.Lookup("B", "3")
	seed := &Seed{Forward: map[string]map[string]float64{"B": {"3": v}}}
	comp, err := NewComputation(g1, g2, cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := comp.Run(); err != nil {
		t.Fatal(err)
	}
	r, err := comp.Result()
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.Sim {
		if math.Abs(r.Sim[i]-exact.Sim[i]) > 1e-3 {
			t.Fatalf("seeded fixpoint differs at %d: %g vs %g", i, r.Sim[i], exact.Sim[i])
		}
	}
}

// TestConvergenceRateProperty: on random logs, the exact computation
// reaches epsilon-convergence within the geometric bound
// log(eps)/log(alpha*c) + slack rounds.
func TestConvergenceRateProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g1, err := depgraph.Build(randomChainLog(rng))
		if err != nil {
			return true
		}
		g2, err := depgraph.Build(randomChainLog(rng))
		if err != nil {
			return true
		}
		ga1, _ := g1.AddArtificial()
		ga2, _ := g2.AddArtificial()
		cfg := DefaultConfig()
		r, err := Compute(ga1, ga2, cfg)
		if err != nil {
			return false
		}
		bound := int(math.Ceil(math.Log(cfg.Epsilon)/math.Log(cfg.Alpha*cfg.C))) + 2
		return r.Rounds <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestUpperBoundDominatesPairwise: the Proposition 6 / Corollary 7 bound
// dominates the final similarity for every pair, not just on average.
func TestUpperBoundDominatesPairwise(t *testing.T) {
	g1, g2 := exampleGraphs(t)
	cfg := forwardConfig()
	final, err := Compute(g1, g2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Recompute stepwise and check the per-round engine bound.
	comp, err := NewComputation(g1, g2, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	e := comp.fwd
	ac := cfg.Alpha * cfg.C
	for k := 0; k < 10; k++ {
		ack := math.Pow(ac, float64(k))
		n2 := e.n2
		for v1 := 1; v1 < e.n1; v1++ {
			for v2 := 1; v2 < n2; v2++ {
				h := min(e.l1[v1], e.l2[v2])
				var slack float64
				switch {
				case e.round >= h:
					slack = 0
				case h == depgraph.Infinite:
					slack = ack / (1 - ac)
				default:
					slack = (ack - math.Pow(ac, float64(h))) / (1 - ac)
				}
				bound := math.Min(1, e.cur[v1*n2+v2]+slack)
				got := final.Sim[(v1-1)*(n2-1)+(v2-1)]
				if got > bound+1e-9 {
					t.Fatalf("round %d: final %g exceeds bound %g for pair (%d,%d)", k, got, bound, v1, v2)
				}
			}
		}
		done, err := comp.Step()
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		if done {
			break
		}
	}
}
