package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// TestStopHookAbortsCompute: a hook that trips mid-computation aborts the
// run with an error wrapping both ErrStopped and the hook's cause.
func TestStopHookAbortsCompute(t *testing.T) {
	g1, g2 := procgenGraphs(t, 3, 15, 50)
	cause := errors.New("test cause")
	var calls atomic.Int64
	cfg := DefaultConfig()
	cfg.Workers = 4
	cfg.Stop = func() error {
		if calls.Add(1) > 3 {
			return cause
		}
		return nil
	}
	res, err := Compute(g1, g2, cfg)
	if res != nil {
		t.Fatalf("aborted Compute returned a result")
	}
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if !errors.Is(err, cause) {
		t.Fatalf("err = %v does not wrap the hook's cause", err)
	}
	var se *StopError
	if !errors.As(err, &se) || se.Cause != cause {
		t.Fatalf("err = %v is not a *StopError carrying the cause", err)
	}
}

// TestStopHookAlreadyCancelled: a hook that trips immediately aborts even
// before the first iteration round (during setup), and a context hook wires
// up naturally via ctx.Err.
func TestStopHookAlreadyCancelled(t *testing.T) {
	g1, g2 := exampleGraphs(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := DefaultConfig()
	cfg.Stop = ctx.Err
	if _, err := Compute(g1, g2, cfg); !errors.Is(err, ErrStopped) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrStopped wrapping context.Canceled", err)
	}
}

// TestStopErrorLatched: after the first abort, every later use of the
// computation returns the same stop error without consulting the hook again.
func TestStopErrorLatched(t *testing.T) {
	g1, g2 := exampleGraphs(t)
	cause := errors.New("latched cause")
	tripped := atomic.Bool{}
	cfg := DefaultConfig()
	cfg.Stop = func() error {
		if tripped.Load() {
			return cause
		}
		return nil
	}
	comp, err := NewComputation(g1, g2, cfg, nil)
	if err != nil {
		t.Fatalf("NewComputation: %v", err)
	}
	if _, err := comp.Step(); err != nil {
		t.Fatalf("pre-trip Step: %v", err)
	}
	tripped.Store(true)
	if _, err := comp.Step(); !errors.Is(err, cause) {
		t.Fatalf("post-trip Step err = %v, want cause", err)
	}
	// The hook is never consulted again: even if it would now return nil,
	// the latched error persists.
	tripped.Store(false)
	if _, err := comp.Step(); !errors.Is(err, cause) {
		t.Fatalf("latched Step err = %v, want original cause", err)
	}
	if _, err := comp.Result(); !errors.Is(err, cause) {
		t.Fatalf("latched Result err = %v, want original cause", err)
	}
}

// TestStopHookBenignBitIdentical: a hook that never trips must not perturb
// the numbers at any worker count — the uncancelled path stays bit-identical
// to the hook-free engine.
func TestStopHookBenignBitIdentical(t *testing.T) {
	g1, g2 := procgenGraphs(t, 9, 16, 50)
	baseCfg := DefaultConfig()
	baseCfg.Workers = 1
	want, err := Compute(g1, g2, baseCfg)
	if err != nil {
		t.Fatalf("baseline Compute: %v", err)
	}
	for _, workers := range []int{1, 2, 8} {
		cfg := DefaultConfig()
		cfg.Workers = workers
		cfg.Stop = func() error { return nil }
		got, err := Compute(g1, g2, cfg)
		if err != nil {
			t.Fatalf("hooked Compute workers=%d: %v", workers, err)
		}
		requireBitIdentical(t, want, got, "benign stop hook")
	}
}

// TestGoldenWithStopHook: the Example 8 numbers survive an installed (but
// never-tripping) cancellation hook bit-for-bit.
func TestGoldenWithStopHook(t *testing.T) {
	g1, g2 := exampleGraphs(t)
	plain, err := Compute(g1, g2, DefaultConfig())
	if err != nil {
		t.Fatalf("plain Compute: %v", err)
	}
	cfg := DefaultConfig()
	cfg.Stop = context.Background().Err
	hooked, err := Compute(g1, g2, cfg)
	if err != nil {
		t.Fatalf("hooked Compute: %v", err)
	}
	requireBitIdentical(t, plain, hooked, "example8 stop hook")
}

// TestFailpointPanicPropagates: a panic injected mid-round inside the engine
// reaches the caller's goroutine as an *EnginePanic (not a process crash),
// with the originating stack attached — the contract emsd's panic
// containment builds on.
func TestFailpointPanicPropagates(t *testing.T) {
	g1, g2 := procgenGraphs(t, 5, 15, 50)
	restore := SetFailpoint(func(round int) {
		if round == 2 {
			panic("injected failure")
		}
	})
	defer restore()
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: expected a panic", workers)
				}
				ep, ok := r.(*EnginePanic)
				if !ok {
					t.Fatalf("workers=%d: panic value %T, want *EnginePanic", workers, r)
				}
				if ep.Val != "injected failure" {
					t.Fatalf("workers=%d: panic value %v", workers, ep.Val)
				}
				if len(ep.Stack) == 0 {
					t.Fatalf("workers=%d: EnginePanic without a stack", workers)
				}
			}()
			cfg := DefaultConfig()
			cfg.Workers = workers
			_, _ = Compute(g1, g2, cfg)
		}()
	}
}

// TestWorkerPanicPropagates: a panic raised inside a pool worker goroutine
// (not the coordinating one) is handed back to the caller too. The label
// hook runs inside worker chunks, making it a convenient injection point.
func TestWorkerPanicPropagates(t *testing.T) {
	g1, g2 := procgenGraphs(t, 13, 16, 50)
	cfg := DefaultConfig()
	cfg.Workers = 4
	cfg.Alpha = 0.5
	cfg.Labels = func(a, b string) float64 { panic("label hook exploded") }
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected a panic from the worker goroutine")
		}
		if _, ok := r.(*EnginePanic); !ok {
			t.Fatalf("panic value %T, want *EnginePanic", r)
		}
	}()
	_, _ = Compute(g1, g2, cfg)
}
