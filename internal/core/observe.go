package core

// DirRoundStats is one direction engine's state at a round boundary, as
// delivered to Config.Observer. Counters are engine-lifetime totals except
// RoundEvals/RoundPruned, which cover only the latest round.
type DirRoundStats struct {
	// Direction identifies the engine (Forward or Backward; a Both
	// computation reports two entries).
	Direction Direction
	// Round is the number of iteration rounds this direction has performed.
	Round int
	// Delta is the maximum pair increment of the latest round — the
	// quantity the Epsilon convergence test watches.
	Delta float64
	// RoundEvals is the number of formula-(1) evaluations in the latest
	// round; TotalEvals accumulates them across rounds.
	RoundEvals int
	TotalEvals int
	// RoundPruned is the number of active (non-frozen) pairs the latest
	// round skipped as provably converged (Proposition 2); TotalPruned
	// accumulates them. Zero when pruning is disabled.
	RoundPruned int
	TotalPruned int
	// Converged reports whether this direction has stopped iterating.
	Converged bool
	// Estimated reports that this direction applied the closed-form
	// estimation (explicit EstimateI or a fast-path cutover). The final
	// observation of such a run is a synthetic round boundary emitted after
	// the estimation pass, so progress consumers see the jump to the final
	// state instead of a stall.
	Estimated bool
	// ErrorBound is the certified a-posteriori error bound of a fast-path
	// run; zero until the certification pass has run.
	ErrorBound float64
}

// RoundObservation is delivered to Config.Observer after every lockstep
// round: one entry per direction engine, in Forward, Backward order. A
// direction that converged in an earlier round keeps reporting its final
// state with Converged set.
type RoundObservation struct {
	// Round is the lockstep round index — the maximum per-direction round.
	Round int
	// Dirs holds the per-direction stats.
	Dirs []DirRoundStats
}

// directions returns the Direction of each engine in engines() order.
func (c *Computation) directions() []Direction {
	if c.cfg.Direction == Both {
		return []Direction{Forward, Backward}
	}
	return []Direction{c.cfg.Direction}
}

// observeRound assembles and delivers one RoundObservation. Called from the
// lockstep Run loop only, so no engine goroutine is mutating state.
func (c *Computation) observeRound() {
	engines := c.engines()
	dirs := c.directions()
	ob := RoundObservation{Dirs: make([]DirRoundStats, len(engines))}
	for i, e := range engines {
		ob.Dirs[i] = DirRoundStats{
			Direction:   dirs[i],
			Round:       e.round,
			Delta:       e.lastDelta,
			RoundEvals:  e.roundEvals,
			TotalEvals:  e.evals,
			RoundPruned: e.roundPruned,
			TotalPruned: e.totalPruned,
			Converged:   e.converged,
			Estimated:   e.estimated,
			ErrorBound:  e.errorBound,
		}
		if e.round > ob.Round {
			ob.Round = e.round
		}
	}
	c.cfg.Observer(ob)
}
