package core

import "sync/atomic"

// failpointFn is the testing-only per-round hook; see SetFailpoint.
var failpointFn atomic.Pointer[func(round int)]

// SetFailpoint installs a callback invoked at the start of every iteration
// round of every direction engine with the 1-based round number. It exists
// solely so tests can deterministically stall (sleep or block) or crash
// (panic) the engine mid-computation and exercise the cancellation, deadline
// and panic-containment paths; production code must never install one. The
// returned function restores the previous hook; pass nil to clear.
//
// With Direction Both, or several computations in flight, the callback runs
// concurrently from multiple goroutines and must be safe for concurrent use.
func SetFailpoint(fn func(round int)) (restore func()) {
	var p *func(round int)
	if fn != nil {
		p = &fn
	}
	old := failpointFn.Swap(p)
	return func() { failpointFn.Store(old) }
}

// fireFailpoint invokes the installed failpoint, if any. It is called once
// per round on each engine's coordinating goroutine, before the round's stop
// check — so a stalling failpoint models a slow round that cancellation then
// interrupts at the next check.
func fireFailpoint(round int) {
	if p := failpointFn.Load(); p != nil {
		(*p)(round)
	}
}
