package core

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/depgraph"
	"repro/internal/eventlog"
)

// fastConfig is DefaultConfig with the adaptive fast path switched on, the
// configuration ems.Match now uses by default.
func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.FastPath = true
	return cfg
}

// TestFastPathConvergenceRegression pins the headline claim of the fast
// path on a bench-shaped procedurally generated workload: the adaptive
// cutover must at least halve the number of exact iteration rounds, and the
// per-pair freezing must actually skip work (non-zero pruned counts, both in
// the final Result and in the per-round observer stream). A change that
// silently disables the cutover detector or the freezing pass fails here
// even though results would still be correct.
func TestFastPathConvergenceRegression(t *testing.T) {
	g1, g2 := procgenGraphs(t, 2014, 100, 200)

	exact, err := Compute(g1, g2, DefaultConfig())
	if err != nil {
		t.Fatalf("exact Compute: %v", err)
	}
	if exact.Estimated || exact.ErrorBound != 0 {
		t.Fatalf("exact run reports estimation: estimated=%v bound=%g", exact.Estimated, exact.ErrorBound)
	}

	cfg := fastConfig()
	var (
		roundPruned int
		lastObs     *RoundObservation
	)
	cfg.Observer = func(ob RoundObservation) {
		for _, d := range ob.Dirs {
			roundPruned += d.RoundPruned
		}
		lastObs = &ob
	}
	fast, err := Compute(g1, g2, cfg)
	if err != nil {
		t.Fatalf("fast Compute: %v", err)
	}

	if !fast.Estimated {
		t.Fatalf("fast path never cut over (rounds=%d, exact rounds=%d)", fast.Rounds, exact.Rounds)
	}
	if fast.Rounds > exact.Rounds/2 {
		t.Errorf("fast path took %d exact rounds, want <= half of exact's %d", fast.Rounds, exact.Rounds)
	}
	if fast.Evaluations >= exact.Evaluations {
		t.Errorf("fast path evaluations %d not below exact %d", fast.Evaluations, exact.Evaluations)
	}
	if fast.Pruned <= 0 {
		t.Errorf("fast path Result.Pruned = %d, want > 0", fast.Pruned)
	}
	if fast.ErrorBound <= 0 {
		t.Errorf("fast path ErrorBound = %g, want > 0", fast.ErrorBound)
	}

	// The observer stream must carry the same story: per-round pruned
	// counts accumulate, and the final (synthetic) observation reports the
	// estimation with its bound.
	if roundPruned <= 0 {
		t.Errorf("observer saw no pruned pairs (sum of RoundPruned = %d)", roundPruned)
	}
	if lastObs == nil {
		t.Fatal("observer never called")
	}
	estimated := false
	for _, d := range lastObs.Dirs {
		if d.Estimated {
			estimated = true
			if d.TotalPruned <= 0 {
				t.Errorf("final observation: %s TotalPruned = %d, want > 0", d.Direction, d.TotalPruned)
			}
			if d.ErrorBound <= 0 {
				t.Errorf("final observation: %s ErrorBound = %g, want > 0", d.Direction, d.ErrorBound)
			}
		}
	}
	if !estimated {
		t.Error("final observation has no Estimated direction despite Result.Estimated")
	}
}

// TestFastPathErrorWithinBound is the estimation-accuracy property test: for
// every combination of alpha (with and without a label part), decay constant
// and direction, the per-pair absolute difference between the fast-path
// result and the exact fixpoint iteration must stay within the certified
// a-posteriori bound the fast path reports. The exact reference is itself
// only an epsilon-converged iterate, at most Epsilon*ac/(1-ac) away from the
// true fixpoint, so that slack (plus float noise) is added to the allowance.
func TestFastPathErrorWithinBound(t *testing.T) {
	g1, g2 := procgenGraphs(t, 13, 24, 80)

	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"default", func(c *Config) {}},
		{"labels", func(c *Config) { c.Alpha = 0.7; c.Labels = testLabelSim }},
		{"lowC", func(c *Config) { c.C = 0.5 }},
		{"labels-lowC", func(c *Config) { c.Alpha = 0.7; c.C = 0.5; c.Labels = testLabelSim }},
		{"forward", func(c *Config) { c.Direction = Forward }},
		{"backward", func(c *Config) { c.Direction = Backward }},
		{"tight-budget", func(c *Config) { c.FastPathBudget = 0.01 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ecfg := DefaultConfig()
			tc.mutate(&ecfg)
			exact, err := Compute(g1, g2, ecfg)
			if err != nil {
				t.Fatalf("exact Compute: %v", err)
			}

			fcfg := ecfg
			fcfg.FastPath = true
			fast, err := Compute(g1, g2, fcfg)
			if err != nil {
				t.Fatalf("fast Compute: %v", err)
			}
			if fast.ErrorBound <= 0 {
				t.Fatalf("fast ErrorBound = %g, want > 0", fast.ErrorBound)
			}

			ac := fcfg.Alpha * fcfg.C
			allowed := fast.ErrorBound + fcfg.Epsilon*ac/(1-ac) + 1e-12
			matrices := []struct {
				name string
				e, f []float64
			}{
				{"Sim", exact.Sim, fast.Sim},
				{"Forward", exact.Forward, fast.Forward},
				{"Backward", exact.Backward, fast.Backward},
			}
			for _, m := range matrices {
				if len(m.e) != len(m.f) {
					t.Fatalf("%s length mismatch: exact %d, fast %d", m.name, len(m.e), len(m.f))
				}
				maxErr := 0.0
				for i := range m.e {
					if d := math.Abs(m.e[i] - m.f[i]); d > maxErr {
						maxErr = d
					}
				}
				if maxErr > allowed {
					t.Errorf("%s: max |fast-exact| = %g exceeds certified allowance %g (bound %g)",
						m.name, maxErr, allowed, fast.ErrorBound)
				}
			}
		})
	}
}

// TestFastPathDeterministic checks that the adaptive fast path — cutover
// detection, per-pair freezing and the certification pass — is bit-identical
// at every worker count and with either matrix layout. The cutover decision
// reads only the order-independent global max delta, so nothing may vary.
func TestFastPathDeterministic(t *testing.T) {
	g1, g2 := procgenGraphs(t, 2014, 30, 90)
	base := fastConfig()
	base.Workers = 1
	serial, err := Compute(g1, g2, base)
	if err != nil {
		t.Fatalf("serial Compute: %v", err)
	}
	if !serial.Estimated {
		t.Fatal("fast path never cut over on the determinism workload")
	}
	for _, workers := range []int{1, 2, 8} {
		for _, tiled := range []bool{false, true} {
			if workers == 1 && !tiled {
				continue
			}
			cfg := base
			cfg.Workers = workers
			cfg.Tiled = tiled
			got, err := Compute(g1, g2, cfg)
			if err != nil {
				t.Fatalf("workers=%d tiled=%v Compute: %v", workers, tiled, err)
			}
			label := fmt.Sprintf("fast workers=%d tiled=%v", workers, tiled)
			requireBitIdentical(t, serial, got, label)
			if got.Estimated != serial.Estimated {
				t.Errorf("%s: Estimated %v != serial %v", label, got.Estimated, serial.Estimated)
			}
			if got.ErrorBound != serial.ErrorBound {
				t.Errorf("%s: ErrorBound %x != serial %x", label, got.ErrorBound, serial.ErrorBound)
			}
			if got.Pruned != serial.Pruned {
				t.Errorf("%s: Pruned %d != serial %d", label, got.Pruned, serial.Pruned)
			}
		}
	}
}

// TestExactTiledBitIdentical extends the equivalence matrix to the blocked
// layout in exact mode: tiling is a pure storage change, so exact runs must
// reproduce the serial row-major bits at every worker count, with and
// without pruning and labels.
func TestExactTiledBitIdentical(t *testing.T) {
	g1, g2 := procgenGraphs(t, 7, 12, 40)
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"default", func(c *Config) {}},
		{"noprune", func(c *Config) { c.Prune = false }},
		{"labels", func(c *Config) { c.Alpha = 0.7; c.Labels = testLabelSim }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := DefaultConfig()
			tc.mutate(&base)
			base.Workers = 1
			base.Tiled = false
			serial, err := Compute(g1, g2, base)
			if err != nil {
				t.Fatalf("serial Compute: %v", err)
			}
			for _, workers := range []int{1, 2, 8} {
				cfg := base
				cfg.Workers = workers
				cfg.Tiled = true
				got, err := Compute(g1, g2, cfg)
				if err != nil {
					t.Fatalf("tiled workers=%d Compute: %v", workers, err)
				}
				requireBitIdentical(t, serial, got, fmt.Sprintf("tiled workers=%d", workers))
			}
		})
	}
}

// TestFastPathPrefilterHopeless covers the label-matrix pre-filter: on a
// frequency-filtered graph where a rare event loses all its in-edges
// (including the artificial one), every pair involving that event is
// provably stuck at similarity zero when its label part is zero, and the
// fast path deactivates those pairs before the first round. The skips must
// show up in the very first observation, and the frozen pairs must agree
// exactly with the exact fixpoint (which also leaves them at zero).
func TestFastPathPrefilterHopeless(t *testing.T) {
	mk := func(name, rare string) *eventlog.Log {
		l := eventlog.New(name)
		for i := 0; i < 9; i++ {
			l.Append(eventlog.Trace{"a", "b", "c"})
		}
		l.Append(eventlog.Trace{"a", rare, "c"})
		return l
	}
	build := func(l *eventlog.Log) *depgraph.Graph {
		t.Helper()
		g, err := depgraph.Build(l)
		if err != nil {
			t.Fatalf("Build %s: %v", l.Name, err)
		}
		ga, err := g.AddArtificial()
		if err != nil {
			t.Fatalf("AddArtificial %s: %v", l.Name, err)
		}
		// Threshold 0.2 removes every edge touching the rare event,
		// whose relative frequency is 0.1 — artificial edges included.
		return ga.FilterMinFrequency(0.2)
	}
	g1 := build(mk("L1", "d"))
	g2 := build(mk("L2", "e"))

	rare1 := -1
	for v, pre := range g1.Pre {
		if g1.Names[v] == "d" {
			rare1 = v
			if len(pre) != 0 {
				t.Fatalf("precondition: rare event %q still has %d in-edges after filtering", "d", len(pre))
			}
		}
	}
	if rare1 < 0 {
		t.Fatal("precondition: rare event missing from filtered graph")
	}

	cfg := fastConfig()
	cfg.Direction = Forward
	var first *RoundObservation
	cfg.Observer = func(ob RoundObservation) {
		if first == nil {
			o := ob
			first = &o
		}
	}
	fast, err := Compute(g1, g2, cfg)
	if err != nil {
		t.Fatalf("fast Compute: %v", err)
	}
	if first == nil {
		t.Fatal("observer never called")
	}
	if first.Dirs[0].RoundPruned <= 0 {
		t.Errorf("first round pruned %d pairs, want > 0 (pre-filter did not fire)", first.Dirs[0].RoundPruned)
	}

	ecfg := DefaultConfig()
	ecfg.Direction = Forward
	exact, err := Compute(g1, g2, ecfg)
	if err != nil {
		t.Fatalf("exact Compute: %v", err)
	}
	// Every pair involving the dangling rare event must be exactly zero in
	// both results: the pre-filter is a proof, not an approximation.
	for j, name2 := range exact.Names2 {
		i := -1
		for k, n := range exact.Names1 {
			if n == "d" {
				i = k
			}
		}
		if i < 0 {
			t.Fatal("rare event missing from result names")
		}
		if e, f := exact.At(i, j), fast.At(i, j); e != 0 || f != 0 {
			t.Errorf("pair (d,%s): exact=%g fast=%g, want both 0", name2, e, f)
		}
	}
}
