// Package core implements the Event Matching Similarity (EMS) of "Matching
// Heterogeneous Event Data" (SIGMOD 2014): a SimRank-style similarity over
// event dependency graphs, computed iteratively from the similarity of
// predecessor events weighted by edge-frequency agreement (Definition 2 and
// formula (1) of the paper), optionally blended with a label similarity.
//
// Beyond the plain fixpoint iteration the package implements everything the
// paper builds on top of it:
//
//   - early-convergence pruning (Proposition 2) driven by the longest
//     distance l(v) from the artificial event,
//   - the closed-form geometric estimation of Section 3.5 and the combined
//     Algorithm 1 (ExactEstimationTradeoff),
//   - similarity upper bounds (Proposition 6, Corollary 7) used to abort
//     unpromising composite-event candidates,
//   - backward similarity (forward similarity on the reversed graphs) and
//     the forward/backward average the experiments use,
//   - seeded recomputation that keeps provably unchanged pairs fixed
//     (Proposition 4), used by composite matching.
package core

import (
	"fmt"

	"repro/internal/label"
)

// Direction selects which neighbor sets similarity propagation follows.
type Direction int

const (
	// Forward propagates similarity from predecessors (in-neighbors), the
	// forward similarity of Definition 2.
	Forward Direction = iota
	// Backward propagates similarity from successors (out-neighbors).
	Backward
	// Both computes forward and backward similarity and averages them;
	// this is the configuration the paper's experiments use (Section 3.6).
	Both
)

// String returns the direction name.
func (d Direction) String() string {
	switch d {
	case Forward:
		return "forward"
	case Backward:
		return "backward"
	case Both:
		return "both"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Config parameterizes the similarity computation. The zero value is not
// usable; start from DefaultConfig.
type Config struct {
	// Alpha is the weight of the structural part against the label part:
	// S = Alpha*(s12+s21)/2 + (1-Alpha)*S^L. Alpha = 1 ignores labels
	// (the opaque-name setting). Must be in [0,1].
	Alpha float64
	// C is the decay constant c of the edge-agreement factor
	// C(...) = c * (1 - |f1-f2|/(f1+f2)). Must be in (0,1).
	C float64
	// Epsilon is the convergence threshold: iteration stops when no pair
	// changed by more than Epsilon in a round. Must be > 0.
	Epsilon float64
	// MaxRounds caps the number of iteration rounds when cycles make the
	// early-convergence bound infinite. Must be >= 1.
	MaxRounds int
	// Prune enables early-convergence pruning (Proposition 2). It never
	// changes results, only skips provably converged updates.
	Prune bool
	// EstimateI, when >= 0, switches to Algorithm 1: EstimateI exact
	// rounds followed by the closed-form estimation of Section 3.5.
	// A negative value means exact computation. An explicit EstimateI takes
	// precedence over FastPath (the cutover round is fixed, not adaptive).
	EstimateI int
	// FastPath enables the adaptive estimation-seeded fast path: exact
	// Jacobi rounds run while the engine watches the per-round delta-decay
	// ratio; once the geometric tail is detected — or the contraction bound
	// delta*ac/(1-ac) (Banach, with ac = Alpha*C) proves the remaining change
	// is below FastPathBudget/2 — the iteration cuts over to the per-pair
	// closed-form estimate of Section 3.5, fitted from the last two exact
	// iterates. Mid-run, pairs whose own increment stayed below a derived
	// tolerance for two consecutive rounds are frozen early (adaptive
	// per-pair pruning), which is where the Proposition-2 eval savings come
	// from on cyclic graphs whose global bound is infinite. The result
	// carries a rigorous a-posteriori error bound (Result.ErrorBound),
	// computed from one residual evaluation of the final matrix:
	// |S - S*| <= residual/(1-ac) per pair. FastPath never fires on runs
	// that converge to Epsilon before the cutover criterion is met, and is
	// deterministic at every worker count. Ignored when EstimateI >= 0.
	FastPath bool
	// FastPathBudget is the per-pair absolute error budget the fast path
	// aims for; <= 0 picks DefaultFastPathBudget. Must be < 1.
	FastPathBudget float64
	// Tiled stores the cur/prev similarity matrices as flat blocked 64x64
	// []float64 tiles instead of row-major, improving cache locality on
	// large instances. Pure layout: results are bit-identical with tiling
	// on or off, at every worker count, and checkpoints are interchangeable
	// between layouts.
	Tiled bool
	// Labels is the label similarity S^L; nil means opaque labels
	// (similarity 0 everywhere). It is only consulted when Alpha < 1.
	// With Workers > 1 it is called from several goroutines and must be
	// safe for concurrent use (every similarity in internal/label is).
	Labels label.Similarity
	// Direction selects forward, backward, or averaged similarity.
	Direction Direction
	// Workers is the number of goroutines that split each iteration round
	// into row ranges. 0 picks GOMAXPROCS but stays serial on small
	// instances; 1 forces the serial path. Rounds are Jacobi updates over
	// the previous matrix, so results are bit-identical for every value.
	Workers int
	// Stop, when non-nil, is the cooperative cancellation hook: the engine
	// consults it once per iteration round and once per row-chunk inside the
	// parallel workers — at the same sites in the label-matrix and
	// agreement-cache builds, the estimation pass and the upper-bound sums.
	// The first non-nil return aborts the computation with a *StopError
	// wrapping the returned cause; a typical hook is ctx.Err. It is called
	// from multiple goroutines and must be safe for concurrent use. The hook
	// never alters the numbers of runs it does not abort: uncancelled
	// computations stay bit-identical at every worker count.
	Stop func() error
	// Checkpoint, when non-nil, makes Run drive the direction engines in
	// lockstep and deliver a consistent snapshot of the iteration state every
	// CheckpointEvery rounds. The hook runs synchronously between rounds on
	// the Run goroutine; the snapshot is a deep copy the hook may retain,
	// serialize or persist. A computation restored from such a snapshot (see
	// Computation.Restore) finishes with bit-identical output. Like Stop and
	// Workers, the hook never changes the computed numbers.
	Checkpoint func(*Checkpoint)
	// CheckpointEvery is the number of iteration rounds between Checkpoint
	// calls; values <= 0 mean every round. Ignored when Checkpoint is nil.
	CheckpointEvery int
	// Observer, when non-nil, receives a RoundObservation after every
	// iteration round of Run: per-direction delta, evaluation count and
	// pruned-pair count — the live view of the paper's §5 convergence and
	// evaluation-savings behavior. Like Checkpoint it forces Run to drive
	// the direction engines in lockstep (so every observation is a
	// consistent round boundary across directions) and runs synchronously on
	// the Run goroutine; nil costs nothing and armed it never changes the
	// computed numbers. Stepwise drivers (composite matching) bypass it.
	Observer func(RoundObservation)
	// Span, when non-nil, is the tracing hook: the engine calls it at the
	// start of a named internal phase (label-matrix build, agreement-cache
	// build, each matching direction) and invokes the returned func at the
	// phase's end. It is called from multiple goroutines and must be safe
	// for concurrent use; nil costs nothing and armed it never changes the
	// computed numbers. obs.Trace.Span has exactly this shape.
	Span func(name string) func()
}

// DefaultFastPathBudget is the per-pair absolute error budget of the fast
// path when Config.FastPathBudget is unset. At the paper's alpha = 1,
// c = 0.8 it cuts over once the remaining change of every pair is provably
// below 0.025 — far below the similarity contrasts that drive
// correspondence selection, and certified per run by Result.ErrorBound.
const DefaultFastPathBudget = 0.05

// fastPathBudget resolves the configured budget against the default.
func (c Config) fastPathBudget() float64 {
	if c.FastPathBudget > 0 {
		return c.FastPathBudget
	}
	return DefaultFastPathBudget
}

// DefaultConfig returns the configuration used throughout the paper's
// experiments: alpha = 1 (structure only), c = 0.8, both directions, exact
// computation with pruning enabled.
func DefaultConfig() Config {
	return Config{
		Alpha:     1.0,
		C:         0.8,
		Epsilon:   1e-4,
		MaxRounds: 100,
		Prune:     true,
		EstimateI: -1,
		Direction: Both,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Alpha < 0 || c.Alpha > 1 {
		return fmt.Errorf("core: Alpha must be in [0,1], got %g", c.Alpha)
	}
	if c.C <= 0 || c.C >= 1 {
		return fmt.Errorf("core: C must be in (0,1), got %g", c.C)
	}
	if c.Epsilon <= 0 {
		return fmt.Errorf("core: Epsilon must be > 0, got %g", c.Epsilon)
	}
	if c.MaxRounds < 1 {
		return fmt.Errorf("core: MaxRounds must be >= 1, got %d", c.MaxRounds)
	}
	if c.Direction != Forward && c.Direction != Backward && c.Direction != Both {
		return fmt.Errorf("core: invalid Direction %d", int(c.Direction))
	}
	if c.Workers < 0 {
		return fmt.Errorf("core: Workers must be >= 0, got %d", c.Workers)
	}
	if c.FastPathBudget < 0 || c.FastPathBudget >= 1 {
		return fmt.Errorf("core: FastPathBudget must be in [0,1), got %g", c.FastPathBudget)
	}
	return nil
}

func (c Config) labels() label.Similarity {
	if c.Labels == nil || c.Alpha >= 1 {
		return label.Zero
	}
	return c.Labels
}
