package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/depgraph"
	"repro/internal/eventlog"
	"repro/internal/label"
	"repro/internal/paperexample"
)

func exampleGraphs(t *testing.T) (*depgraph.Graph, *depgraph.Graph) {
	t.Helper()
	g1, err := depgraph.Build(paperexample.Log1())
	if err != nil {
		t.Fatalf("Build L1: %v", err)
	}
	g2, err := depgraph.Build(paperexample.Log2())
	if err != nil {
		t.Fatalf("Build L2: %v", err)
	}
	ga1, err := g1.AddArtificial()
	if err != nil {
		t.Fatalf("AddArtificial L1: %v", err)
	}
	ga2, err := g2.AddArtificial()
	if err != nil {
		t.Fatalf("AddArtificial L2: %v", err)
	}
	return ga1, ga2
}

func forwardConfig() Config {
	cfg := DefaultConfig()
	cfg.Direction = Forward
	return cfg
}

// TestExample4FirstIteration reproduces the numbers of Example 4: with
// alpha = 1 and c = 0.8, after the first iteration S^1(A,1) = 0.457 and
// S^1(A,2) = 0.6 — the dislocated pair (A,2) already outranks (A,1).
func TestExample4FirstIteration(t *testing.T) {
	g1, g2 := exampleGraphs(t)
	cfg := forwardConfig()
	cfg.MaxRounds = 1
	cfg.Prune = false
	r, err := Compute(g1, g2, cfg)
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	sA1, ok := r.Lookup("A", "1")
	if !ok {
		t.Fatalf("pair (A,1) not found")
	}
	if math.Abs(sA1-0.457) > 0.001 {
		t.Errorf("S^1(A,1) = %.4f, want 0.457", sA1)
	}
	sA2, _ := r.Lookup("A", "2")
	if math.Abs(sA2-0.6) > 0.001 {
		t.Errorf("S^1(A,2) = %.4f, want 0.600", sA2)
	}
	if sA2 <= sA1 {
		t.Errorf("dislocated pair (A,2)=%.3f not ranked above (A,1)=%.3f", sA2, sA1)
	}
}

// TestExample4Converged checks that the dislocated ranking survives full
// convergence and that S(A,1) keeps its round-1 value (it converges after
// one round, per Example 5).
func TestExample4Converged(t *testing.T) {
	g1, g2 := exampleGraphs(t)
	r, err := Compute(g1, g2, forwardConfig())
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	sA1, _ := r.Lookup("A", "1")
	if math.Abs(sA1-0.457) > 0.001 {
		t.Errorf("S(A,1) = %.4f, want 0.457 (converged after round 1)", sA1)
	}
	sA2, _ := r.Lookup("A", "2")
	if sA2 <= sA1 {
		t.Errorf("S(A,2)=%.3f <= S(A,1)=%.3f after convergence", sA2, sA1)
	}
	if !r.Converged {
		t.Errorf("computation did not converge")
	}
}

// TestMonotoneConvergence verifies Theorem 1 on the example: similarities
// are non-decreasing over rounds and bounded by 1.
func TestMonotoneConvergence(t *testing.T) {
	g1, g2 := exampleGraphs(t)
	cfg := forwardConfig()
	cfg.Prune = false
	var prev []float64
	for rounds := 1; rounds <= 8; rounds++ {
		cfg.MaxRounds = rounds
		r, err := Compute(g1, g2, cfg)
		if err != nil {
			t.Fatalf("Compute: %v", err)
		}
		for i, v := range r.Sim {
			if v < -1e-12 || v > 1+1e-12 {
				t.Fatalf("round %d: similarity out of [0,1]: %g", rounds, v)
			}
			if prev != nil && v < prev[i]-1e-12 {
				t.Fatalf("round %d: similarity decreased from %g to %g at %d", rounds, prev[i], v, i)
			}
		}
		prev = r.Sim
	}
}

// TestPruningPreservesResults: Proposition 2 pruning must not change any
// similarity, only reduce the number of formula evaluations.
func TestPruningPreservesResults(t *testing.T) {
	g1, g2 := exampleGraphs(t)
	cfgOn := forwardConfig()
	cfgOff := forwardConfig()
	cfgOff.Prune = false
	on, err := Compute(g1, g2, cfgOn)
	if err != nil {
		t.Fatalf("Compute(prune): %v", err)
	}
	off, err := Compute(g1, g2, cfgOff)
	if err != nil {
		t.Fatalf("Compute(noprune): %v", err)
	}
	for i := range on.Sim {
		if math.Abs(on.Sim[i]-off.Sim[i]) > 1e-6 {
			t.Fatalf("pruning changed similarity at %d: %g vs %g", i, on.Sim[i], off.Sim[i])
		}
	}
	if on.Evaluations >= off.Evaluations {
		t.Errorf("pruning did not reduce evaluations: %d vs %d", on.Evaluations, off.Evaluations)
	}
}

// TestBothDirectionsAverage: the combined matrix is the average of forward
// and backward.
func TestBothDirectionsAverage(t *testing.T) {
	g1, g2 := exampleGraphs(t)
	cfg := DefaultConfig()
	r, err := Compute(g1, g2, cfg)
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	if r.Forward == nil || r.Backward == nil {
		t.Fatalf("per-direction matrices missing")
	}
	for i := range r.Sim {
		want := (r.Forward[i] + r.Backward[i]) / 2
		if math.Abs(r.Sim[i]-want) > 1e-12 {
			t.Fatalf("Sim[%d] = %g, want average %g", i, r.Sim[i], want)
		}
	}
}

// TestBackwardEqualsForwardOnReversed: backward similarity must equal
// forward similarity computed on reversed graphs.
func TestBackwardEqualsForwardOnReversed(t *testing.T) {
	g1, g2 := exampleGraphs(t)
	cfgB := DefaultConfig()
	cfgB.Direction = Backward
	rb, err := Compute(g1, g2, cfgB)
	if err != nil {
		t.Fatalf("Compute backward: %v", err)
	}
	cfgF := forwardConfig()
	rf, err := Compute(g1.Reverse(), g2.Reverse(), cfgF)
	if err != nil {
		t.Fatalf("Compute forward-on-reversed: %v", err)
	}
	for i := range rb.Sim {
		if math.Abs(rb.Sim[i]-rf.Sim[i]) > 1e-9 {
			t.Fatalf("backward != forward-on-reversed at %d: %g vs %g", i, rb.Sim[i], rf.Sim[i])
		}
	}
}

// TestLabelBlending: with alpha < 1 identical labels raise similarity.
func TestLabelBlending(t *testing.T) {
	l1 := eventlog.New("x")
	l1.Append(eventlog.Trace{"pay", "ship"})
	l2 := eventlog.New("y")
	l2.Append(eventlog.Trace{"pay", "ship"})
	g1, _ := depgraph.Build(l1)
	g2, _ := depgraph.Build(l2)
	ga1, _ := g1.AddArtificial()
	ga2, _ := g2.AddArtificial()
	cfg := DefaultConfig()
	cfg.Alpha = 0.5
	cfg.Labels = label.QGramCosine(3)
	r, err := Compute(ga1, ga2, cfg)
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	same, _ := r.Lookup("pay", "pay")
	diff, _ := r.Lookup("pay", "ship")
	if same <= diff {
		t.Errorf("label blending failed: sim(pay,pay)=%.3f <= sim(pay,ship)=%.3f", same, diff)
	}
	// Structure alone cannot distinguish the two positions' labels... with
	// alpha=1 the pair (pay,pay) and (pay,ship) differ only structurally.
	cfg1 := DefaultConfig()
	r1, err := Compute(ga1, ga2, cfg1)
	if err != nil {
		t.Fatalf("Compute alpha=1: %v", err)
	}
	same1, _ := r1.Lookup("pay", "pay")
	if same <= same1*0.5 {
		t.Errorf("labels unexpectedly lowered identical-pair similarity: %g vs %g", same, same1)
	}
}

// TestEstimationConvergesToExact: Figure 5's premise — as I grows the
// estimation approaches the exact similarity.
func TestEstimationConvergesToExact(t *testing.T) {
	g1, g2 := exampleGraphs(t)
	exact, err := Compute(g1, g2, forwardConfig())
	if err != nil {
		t.Fatalf("Compute exact: %v", err)
	}
	prevErr := math.Inf(1)
	for _, I := range []int{0, 2, 4, 8} {
		r, err := ExactEstimationTradeoff(g1, g2, forwardConfig(), I)
		if err != nil {
			t.Fatalf("Estimate I=%d: %v", I, err)
		}
		var maxErr float64
		for i := range r.Sim {
			if d := math.Abs(r.Sim[i] - exact.Sim[i]); d > maxErr {
				maxErr = d
			}
		}
		if maxErr > prevErr+0.05 {
			t.Errorf("estimation error grew with I=%d: %g after %g", I, maxErr, prevErr)
		}
		prevErr = maxErr
	}
	if prevErr > 0.05 {
		t.Errorf("estimation with I=8 still far from exact: max error %g", prevErr)
	}
}

// TestEstimationExactWhenIExceedsBound: Algorithm 1 with I beyond every
// pair's convergence bound equals the exact computation.
func TestEstimationExactWhenIExceedsBound(t *testing.T) {
	l := eventlog.New("chain")
	l.Append(eventlog.Trace{"a", "b", "c"})
	g, _ := depgraph.Build(l)
	ga, _ := g.AddArtificial()
	exact, err := Compute(ga, ga, forwardConfig())
	if err != nil {
		t.Fatalf("exact: %v", err)
	}
	est, err := ExactEstimationTradeoff(ga, ga, forwardConfig(), 10)
	if err != nil {
		t.Fatalf("estimate: %v", err)
	}
	for i := range exact.Sim {
		if math.Abs(exact.Sim[i]-est.Sim[i]) > 1e-9 {
			t.Fatalf("I=10 estimation differs from exact at %d: %g vs %g", i, exact.Sim[i], est.Sim[i])
		}
	}
}

// TestEstimationCheaper: estimation with small I does fewer formula
// evaluations than the exact computation.
func TestEstimationCheaper(t *testing.T) {
	g1, g2 := exampleGraphs(t)
	exact, _ := Compute(g1, g2, forwardConfig())
	est, err := ExactEstimationTradeoff(g1, g2, forwardConfig(), 1)
	if err != nil {
		t.Fatalf("estimate: %v", err)
	}
	if est.Evaluations >= exact.Evaluations {
		t.Errorf("estimation evaluations %d >= exact %d", est.Evaluations, exact.Evaluations)
	}
}

// TestSelfSimilarityIdentity: matching a graph against itself must rank
// every event's self-pair at least as high as any other pair in its row
// (identical structure is the best possible match).
func TestSelfSimilarityIdentity(t *testing.T) {
	l := eventlog.New("chain")
	l.Append(eventlog.Trace{"a", "b", "c", "d"})
	l.Append(eventlog.Trace{"a", "c", "b", "d"})
	g, _ := depgraph.Build(l)
	ga, _ := g.AddArtificial()
	r, err := Compute(ga, ga, DefaultConfig())
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	n := len(r.Names2)
	for i, a := range r.Names1 {
		self := r.Sim[i*n+i]
		for j := range r.Names2 {
			if r.Sim[i*n+j] > self+1e-9 {
				t.Errorf("sim(%s,%s)=%.4f exceeds self sim(%s,%s)=%.4f",
					a, r.Names2[j], r.Sim[i*n+j], a, a, self)
			}
		}
	}
}

// TestUpperBoundSound: stepping a computation, the average upper bound must
// always dominate the final exact average (Proposition 6 / Corollary 7).
func TestUpperBoundSound(t *testing.T) {
	g1, g2 := exampleGraphs(t)
	final, err := Compute(g1, g2, DefaultConfig())
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	want := final.Avg()
	comp, err := NewComputation(g1, g2, DefaultConfig(), nil)
	if err != nil {
		t.Fatalf("NewComputation: %v", err)
	}
	for i := 0; i < 50; i++ {
		ub, err := comp.AvgUpperBound()
		if err != nil {
			t.Fatalf("AvgUpperBound: %v", err)
		}
		if ub < want-1e-9 {
			t.Fatalf("round %d: upper bound %.6f below final average %.6f", i, ub, want)
		}
		done, err := comp.Step()
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		if done {
			break
		}
	}
	res, err := comp.Result()
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	got := res.Avg()
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("stepwise result %.6f differs from one-shot %.6f", got, want)
	}
}

// TestUpperBoundTightens: the bound is non-increasing over rounds.
func TestUpperBoundTightens(t *testing.T) {
	g1, g2 := exampleGraphs(t)
	comp, err := NewComputation(g1, g2, DefaultConfig(), nil)
	if err != nil {
		t.Fatalf("NewComputation: %v", err)
	}
	prev, err := comp.AvgUpperBound()
	if err != nil {
		t.Fatalf("AvgUpperBound: %v", err)
	}
	for i := 0; i < 20; i++ {
		done, err := comp.Step()
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		ub, err := comp.AvgUpperBound()
		if err != nil {
			t.Fatalf("AvgUpperBound: %v", err)
		}
		if ub > prev+1e-9 {
			t.Fatalf("upper bound grew from %.6f to %.6f at round %d", prev, ub, i+1)
		}
		prev = ub
		if done {
			break
		}
	}
}

// TestSeedFreezesPairs: seeded pairs keep their value exactly.
func TestSeedFreezesPairs(t *testing.T) {
	g1, g2 := exampleGraphs(t)
	seed := &Seed{
		Forward:  map[string]map[string]float64{"A": {"1": 0.123}},
		Backward: map[string]map[string]float64{"A": {"1": 0.321}},
	}
	comp, err := NewComputation(g1, g2, DefaultConfig(), seed)
	if err != nil {
		t.Fatalf("NewComputation: %v", err)
	}
	if err := comp.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	r, err := comp.Result()
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	fwd, _ := lookupIn(r.Names1, r.Names2, r.Forward, "A", "1")
	if math.Abs(fwd-0.123) > 1e-12 {
		t.Errorf("seeded forward value changed: %g", fwd)
	}
	bwd, _ := lookupIn(r.Names1, r.Names2, r.Backward, "A", "1")
	if math.Abs(bwd-0.321) > 1e-12 {
		t.Errorf("seeded backward value changed: %g", bwd)
	}
}

func lookupIn(names1, names2 []string, mat []float64, a, b string) (float64, bool) {
	i, j := -1, -1
	for k, n := range names1 {
		if n == a {
			i = k
		}
	}
	for k, n := range names2 {
		if n == b {
			j = k
		}
	}
	if i < 0 || j < 0 || mat == nil {
		return 0, false
	}
	return mat[i*len(names2)+j], true
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Alpha: -0.1, C: 0.8, Epsilon: 1e-4, MaxRounds: 10},
		{Alpha: 1.1, C: 0.8, Epsilon: 1e-4, MaxRounds: 10},
		{Alpha: 1, C: 0, Epsilon: 1e-4, MaxRounds: 10},
		{Alpha: 1, C: 1, Epsilon: 1e-4, MaxRounds: 10},
		{Alpha: 1, C: 0.8, Epsilon: 0, MaxRounds: 10},
		{Alpha: 1, C: 0.8, Epsilon: 1e-4, MaxRounds: 0},
		{Alpha: 1, C: 0.8, Epsilon: 1e-4, MaxRounds: 10, Direction: Direction(9)},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestComputeRequiresArtificial(t *testing.T) {
	g1, err := depgraph.Build(paperexample.Log1())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compute(g1, g1, DefaultConfig()); err == nil {
		t.Errorf("graphs without artificial event accepted")
	}
}

func TestExactEstimationTradeoffRejectsNegative(t *testing.T) {
	g1, g2 := exampleGraphs(t)
	if _, err := ExactEstimationTradeoff(g1, g2, DefaultConfig(), -1); err == nil {
		t.Errorf("negative iterations accepted")
	}
}

// Property: on random acyclic-ish logs, similarity stays within [0,1] and
// the computation converges.
func TestSimilarityRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l1 := randomChainLog(rng)
		l2 := randomChainLog(rng)
		g1, err := depgraph.Build(l1)
		if err != nil {
			return true // degenerate log; skip
		}
		g2, err := depgraph.Build(l2)
		if err != nil {
			return true
		}
		ga1, _ := g1.AddArtificial()
		ga2, _ := g2.AddArtificial()
		r, err := Compute(ga1, ga2, DefaultConfig())
		if err != nil {
			return false
		}
		for _, v := range r.Sim {
			if v < 0 || v > 1+1e-9 {
				return false
			}
		}
		return r.Converged
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: estimation results are also within [0,1].
func TestEstimationRangeProperty(t *testing.T) {
	f := func(seed int64, iRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		l1 := randomChainLog(rng)
		l2 := randomChainLog(rng)
		g1, err := depgraph.Build(l1)
		if err != nil {
			return true
		}
		g2, err := depgraph.Build(l2)
		if err != nil {
			return true
		}
		ga1, _ := g1.AddArtificial()
		ga2, _ := g2.AddArtificial()
		r, err := ExactEstimationTradeoff(ga1, ga2, DefaultConfig(), int(iRaw%6))
		if err != nil {
			return false
		}
		for _, v := range r.Sim {
			if v < 0 || v > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// randomChainLog builds short random traces over a small alphabet, mostly
// forward-flowing so graphs are often acyclic.
func randomChainLog(rng *rand.Rand) *eventlog.Log {
	events := []string{"a", "b", "c", "d", "e", "f", "g"}
	l := eventlog.New("rand")
	n := 2 + rng.Intn(8)
	for i := 0; i < n; i++ {
		start := rng.Intn(3)
		end := start + 1 + rng.Intn(len(events)-start-1)
		tr := make(eventlog.Trace, 0, end-start)
		for j := start; j <= end && j < len(events); j++ {
			if rng.Float64() < 0.8 {
				tr = append(tr, events[j])
			}
		}
		if len(tr) == 0 {
			tr = append(tr, events[start])
		}
		l.Append(tr)
	}
	return l
}

func TestDirectionString(t *testing.T) {
	if Forward.String() != "forward" || Backward.String() != "backward" || Both.String() != "both" {
		t.Errorf("direction names wrong: %s %s %s", Forward, Backward, Both)
	}
}

func TestResultAvgEmpty(t *testing.T) {
	r := &Result{}
	if r.Avg() != 0 {
		t.Errorf("empty Avg = %g, want 0", r.Avg())
	}
}
