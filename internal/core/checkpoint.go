package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"math"
)

// ErrCheckpointMismatch is returned by Restore when a checkpoint was taken
// from a computation with a different configuration, different graphs, or a
// different frozen-pair set — resuming from it would not reproduce the
// original run.
var ErrCheckpointMismatch = errors.New("core: checkpoint does not match this computation")

// ErrCorruptCheckpoint is returned by UnmarshalBinary when the bytes are not
// a well-formed checkpoint (bad magic, bad CRC, truncated, or inconsistent
// dimensions). Callers recovering persisted state should treat it as "no
// checkpoint" and restart from round 0.
var ErrCorruptCheckpoint = errors.New("core: corrupt checkpoint")

// DirCheckpoint is the mutable state of one direction engine at a round
// boundary. Everything else the engine needs (label matrix, agreement cache,
// frozen set, convergence bounds) is rebuilt deterministically from the
// graphs and configuration by NewComputation.
type DirCheckpoint struct {
	// Round and Evals are the iteration round and formula-(1) evaluation
	// counters at the instant of the checkpoint.
	Round int
	Evals int
	// Converged, Estimated and Warmed restore the corresponding engine
	// latches; LastDelta is the maximum pair increment of the latest round
	// (an ingredient of the upper-bound computation).
	Converged bool
	Estimated bool
	Warmed    bool
	LastDelta float64
	// N1 and N2 are the matrix dimensions including the artificial event.
	N1, N2 int
	// Cur and Prev are the S^round and S^(round-1) matrices, exact float64
	// bits. Both are needed: the estimation pass fits its recurrence
	// constant from the last two iterates.
	Cur, Prev []float64
}

// Checkpoint is a consistent snapshot of a Computation between iteration
// rounds, sufficient to resume it bit-identically via Restore. Fingerprint
// binds the snapshot to the numeric configuration, the graphs and the label
// matrix it was taken from (but not to Workers — a checkpoint taken under
// one worker budget resumes under any other, since results are worker-count
// independent).
type Checkpoint struct {
	Fingerprint uint64
	Dirs        []DirCheckpoint
}

// Round returns the largest per-direction round in the checkpoint.
func (cp *Checkpoint) Round() int {
	r := 0
	for i := range cp.Dirs {
		if cp.Dirs[i].Round > r {
			r = cp.Dirs[i].Round
		}
	}
	return r
}

// checkpoint binary format:
//
//	magic   "EMSCKP01"                        8 bytes
//	fingerprint                               uint64 LE
//	ndirs                                     uint32 LE
//	per direction:
//	  round, evals                            int64 LE each
//	  flags (bit0 converged, 1 estimated,
//	         2 warmed)                        1 byte
//	  lastDelta                               float64 bits LE
//	  n1, n2                                  uint32 LE each
//	  cur[n1*n2], prev[n1*n2]                 float64 bits LE each
//	crc32c over everything above              uint32 LE
const (
	checkpointMagic  = "EMSCKP01"
	ckpMagicLen      = 8
	ckpDirHeaderLen  = 8 + 8 + 1 + 8 + 4 + 4
	maxCheckpointDir = 2 // a computation has one or two direction engines
)

var ckpCRCTable = crc32.MakeTable(crc32.Castagnoli)

// MarshalBinary encodes the checkpoint with a trailing CRC32-Castagnoli so
// torn or bit-rotted files are detected on load. Matrices are stored as raw
// float64 bits: decoding reproduces the exact values, including negative
// zeros, so a resumed run cannot drift.
func (cp *Checkpoint) MarshalBinary() ([]byte, error) {
	if len(cp.Dirs) == 0 || len(cp.Dirs) > maxCheckpointDir {
		return nil, fmt.Errorf("core: checkpoint must have 1..%d directions, got %d", maxCheckpointDir, len(cp.Dirs))
	}
	size := ckpMagicLen + 8 + 4 + 4
	for i := range cp.Dirs {
		d := &cp.Dirs[i]
		if d.N1 <= 0 || d.N2 <= 0 || len(d.Cur) != d.N1*d.N2 || len(d.Prev) != d.N1*d.N2 {
			return nil, fmt.Errorf("core: checkpoint direction %d has inconsistent dimensions", i)
		}
		size += ckpDirHeaderLen + 16*len(d.Cur)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, checkpointMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, cp.Fingerprint)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(cp.Dirs)))
	for i := range cp.Dirs {
		d := &cp.Dirs[i]
		buf = binary.LittleEndian.AppendUint64(buf, uint64(d.Round))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(d.Evals))
		var flags byte
		if d.Converged {
			flags |= 1
		}
		if d.Estimated {
			flags |= 2
		}
		if d.Warmed {
			flags |= 4
		}
		buf = append(buf, flags)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(d.LastDelta))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(d.N1))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(d.N2))
		for _, v := range d.Cur {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
		for _, v := range d.Prev {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, ckpCRCTable))
	return buf, nil
}

// UnmarshalBinary decodes a checkpoint written by MarshalBinary. Any
// malformed input — wrong magic, failed CRC, truncation, or dimensions that
// do not add up — yields an error wrapping ErrCorruptCheckpoint; the method
// never panics and never allocates more than the input length implies.
func (cp *Checkpoint) UnmarshalBinary(data []byte) error {
	corrupt := func(why string) error {
		return fmt.Errorf("%w: %s", ErrCorruptCheckpoint, why)
	}
	if len(data) < ckpMagicLen+8+4+4 {
		return corrupt("too short")
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, ckpCRCTable) != binary.LittleEndian.Uint32(tail) {
		return corrupt("crc mismatch")
	}
	if string(body[:ckpMagicLen]) != checkpointMagic {
		return corrupt("bad magic")
	}
	off := ckpMagicLen
	fingerprint := binary.LittleEndian.Uint64(body[off:])
	off += 8
	ndirs := int(binary.LittleEndian.Uint32(body[off:]))
	off += 4
	if ndirs < 1 || ndirs > maxCheckpointDir {
		return corrupt(fmt.Sprintf("direction count %d out of range", ndirs))
	}
	dirs := make([]DirCheckpoint, ndirs)
	for i := range dirs {
		if len(body)-off < ckpDirHeaderLen {
			return corrupt("truncated direction header")
		}
		d := &dirs[i]
		d.Round = int(int64(binary.LittleEndian.Uint64(body[off:])))
		d.Evals = int(int64(binary.LittleEndian.Uint64(body[off+8:])))
		flags := body[off+16]
		d.Converged = flags&1 != 0
		d.Estimated = flags&2 != 0
		d.Warmed = flags&4 != 0
		d.LastDelta = math.Float64frombits(binary.LittleEndian.Uint64(body[off+17:]))
		d.N1 = int(binary.LittleEndian.Uint32(body[off+25:]))
		d.N2 = int(binary.LittleEndian.Uint32(body[off+29:]))
		off += ckpDirHeaderLen
		if d.N1 <= 0 || d.N2 <= 0 {
			return corrupt("non-positive dimensions")
		}
		cells := int64(d.N1) * int64(d.N2)
		if cells > int64(len(body)-off)/16 {
			return corrupt("matrix larger than input")
		}
		n := int(cells)
		d.Cur = make([]float64, n)
		d.Prev = make([]float64, n)
		for j := 0; j < n; j++ {
			d.Cur[j] = math.Float64frombits(binary.LittleEndian.Uint64(body[off:]))
			off += 8
		}
		for j := 0; j < n; j++ {
			d.Prev[j] = math.Float64frombits(binary.LittleEndian.Uint64(body[off:]))
			off += 8
		}
	}
	if off != len(body) {
		return corrupt("trailing bytes")
	}
	cp.Fingerprint = fingerprint
	cp.Dirs = dirs
	return nil
}

// Fingerprint returns the value a checkpoint of this computation would
// carry: an FNV-1a hash over everything that determines the numeric
// trajectory of the iteration — the numeric configuration, both graphs'
// in-edge structure and frequencies, the label matrix and the frozen-pair
// set of every direction engine. Worker budget and the Stop/Checkpoint hooks
// are deliberately excluded: they never change results, so a checkpoint
// resumes under any of them.
func (c *Computation) Fingerprint() uint64 {
	c.fpOnce.Do(func() {
		h := fnv.New64a()
		var scratch [8]byte
		put := func(v uint64) {
			binary.LittleEndian.PutUint64(scratch[:], v)
			h.Write(scratch[:])
		}
		putF := func(v float64) { put(math.Float64bits(v)) }
		putF(c.cfg.Alpha)
		putF(c.cfg.C)
		putF(c.cfg.Epsilon)
		put(uint64(int64(c.cfg.MaxRounds)))
		put(uint64(int64(c.cfg.EstimateI)))
		if c.cfg.Prune {
			put(1)
		} else {
			put(0)
		}
		put(uint64(int64(c.cfg.Direction)))
		for _, e := range c.engines() {
			put(uint64(int64(e.n1)))
			put(uint64(int64(e.n2)))
			// In-edge structure and frequencies drive formula (1); Pre lists
			// are sorted, so iteration order is deterministic.
			for _, g := range []*struct {
				pre  [][]int
				freq []map[int]float64
			}{
				{e.g1.Pre, e.g1.EdgeFreq},
				{e.g2.Pre, e.g2.EdgeFreq},
			} {
				for v, pre := range g.pre {
					put(uint64(len(pre)))
					for _, p := range pre {
						put(uint64(int64(p)))
						putF(g.freq[p][v])
					}
				}
			}
			for _, v := range e.lab {
				putF(v)
			}
			// The frozen set captures seeded pairs (Proposition 4 freezes),
			// which also change the trajectory.
			b := byte(0)
			nbit := 0
			for _, f := range e.frozen {
				b <<= 1
				if f {
					b |= 1
				}
				if nbit++; nbit == 8 {
					h.Write([]byte{b})
					b, nbit = 0, 0
				}
			}
			if nbit > 0 {
				h.Write([]byte{b})
			}
		}
		c.fp = h.Sum64()
	})
	return c.fp
}

// checkpointNow snapshots the mutable state of every direction engine. It
// must only be called between rounds (no engine goroutine running), which
// the checkpointed Run loop guarantees.
func (c *Computation) checkpointNow() *Checkpoint {
	cp := &Checkpoint{Fingerprint: c.Fingerprint()}
	for _, e := range c.engines() {
		cp.Dirs = append(cp.Dirs, DirCheckpoint{
			Round:     e.round,
			Evals:     e.evals,
			Converged: e.converged,
			Estimated: e.estimated,
			Warmed:    e.warmed,
			LastDelta: e.lastDelta,
			N1:        e.n1,
			N2:        e.n2,
			Cur:       append([]float64(nil), e.cur...),
			Prev:      append([]float64(nil), e.prev...),
		})
	}
	return cp
}

// Restore rewinds a freshly constructed Computation to the state captured in
// cp; a subsequent Run produces output bit-identical to the uninterrupted
// run the checkpoint was taken from. The computation must be built over the
// same graphs, numeric configuration and seeds as the original — enforced
// via the fingerprint — and must not have performed any rounds yet. Restore
// returns ErrCheckpointMismatch when the checkpoint belongs to a different
// computation.
func (c *Computation) Restore(cp *Checkpoint) error {
	if cp == nil {
		return fmt.Errorf("core: Restore requires a checkpoint")
	}
	for _, e := range c.engines() {
		if e.round != 0 {
			return fmt.Errorf("core: Restore must be called before iteration starts (round %d)", e.round)
		}
	}
	if cp.Fingerprint != c.Fingerprint() {
		return fmt.Errorf("%w: fingerprint %016x, computation has %016x",
			ErrCheckpointMismatch, cp.Fingerprint, c.Fingerprint())
	}
	engines := c.engines()
	if len(cp.Dirs) != len(engines) {
		return fmt.Errorf("%w: %d directions, computation has %d",
			ErrCheckpointMismatch, len(cp.Dirs), len(engines))
	}
	for i, e := range engines {
		d := &cp.Dirs[i]
		if d.N1 != e.n1 || d.N2 != e.n2 || len(d.Cur) != e.n1*e.n2 || len(d.Prev) != e.n1*e.n2 {
			return fmt.Errorf("%w: direction %d is %dx%d, computation has %dx%d",
				ErrCheckpointMismatch, i, d.N1, d.N2, e.n1, e.n2)
		}
	}
	for i, e := range engines {
		d := &cp.Dirs[i]
		copy(e.cur, d.Cur)
		copy(e.prev, d.Prev)
		e.round = d.Round
		e.evals = d.Evals
		e.converged = d.Converged
		e.estimated = d.Estimated
		e.warmed = d.Warmed
		e.lastDelta = d.LastDelta
	}
	return nil
}

// runLockstep drives the computation in lockstep rounds on behalf of the
// Checkpoint and Observer hooks: the Observer sees every round boundary,
// the Checkpoint hook a consistent snapshot every CheckpointEvery rounds.
// Lockstep is required so both direction engines are at a round boundary
// when state is read; rounds are Jacobi updates, so the lockstep schedule
// produces exactly the same numbers as the concurrent one.
func (c *Computation) runLockstep() error {
	defer c.span("iterate:lockstep")()
	every := c.cfg.CheckpointEvery
	if every <= 0 {
		every = 1
	}
	steps := 0
	for {
		done, err := c.Step()
		if err != nil {
			return err
		}
		if c.cfg.Observer != nil {
			c.observeRound()
		}
		if done {
			break
		}
		if c.cfg.Checkpoint != nil {
			if steps++; steps%every == 0 {
				c.cfg.Checkpoint(c.checkpointNow())
			}
		}
	}
	return c.Finish()
}
