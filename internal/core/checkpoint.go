package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"math"
)

// ErrCheckpointMismatch is returned by Restore when a checkpoint was taken
// from a computation with a different configuration, different graphs, or a
// different frozen-pair set — resuming from it would not reproduce the
// original run.
var ErrCheckpointMismatch = errors.New("core: checkpoint does not match this computation")

// ErrCorruptCheckpoint is returned by UnmarshalBinary when the bytes are not
// a well-formed checkpoint (bad magic, bad CRC, truncated, or inconsistent
// dimensions). Callers recovering persisted state should treat it as "no
// checkpoint" and restart from round 0.
var ErrCorruptCheckpoint = errors.New("core: corrupt checkpoint")

// DirCheckpoint is the mutable state of one direction engine at a round
// boundary. Everything else the engine needs (label matrix, agreement cache,
// frozen set, convergence bounds) is rebuilt deterministically from the
// graphs and configuration by NewComputation.
type DirCheckpoint struct {
	// Round and Evals are the iteration round and formula-(1) evaluation
	// counters at the instant of the checkpoint.
	Round int
	Evals int
	// Converged, Estimated and Warmed restore the corresponding engine
	// latches; LastDelta is the maximum pair increment of the latest round
	// (an ingredient of the upper-bound computation).
	Converged bool
	Estimated bool
	Warmed    bool
	LastDelta float64
	// N1 and N2 are the matrix dimensions including the artificial event.
	N1, N2 int
	// Cur and Prev are the S^round and S^(round-1) matrices, exact float64
	// bits, always in canonical row-major order regardless of the engine's
	// in-memory layout (Config.Tiled) — checkpoints are interchangeable
	// between layouts. Both are needed: the estimation pass fits its
	// recurrence constant from the last two iterates.
	Cur, Prev []float64
	// Fast-path detector state (Config.FastPath): the delta trajectory the
	// adaptive cutover watches and the per-pair small-increment table
	// (canonical row-major, one byte per pair). Small is nil for non-fast
	// computations; a resumed fast run replays the same cutover decision at
	// the same round.
	Cutover     bool
	PrevDelta   float64
	PrevRatio   float64
	RatioStreak int
	Small       []uint8
}

// Checkpoint is a consistent snapshot of a Computation between iteration
// rounds, sufficient to resume it bit-identically via Restore. Fingerprint
// binds the snapshot to the numeric configuration, the graphs and the label
// matrix it was taken from (but not to Workers — a checkpoint taken under
// one worker budget resumes under any other, since results are worker-count
// independent).
type Checkpoint struct {
	Fingerprint uint64
	Dirs        []DirCheckpoint
}

// Round returns the largest per-direction round in the checkpoint.
func (cp *Checkpoint) Round() int {
	r := 0
	for i := range cp.Dirs {
		if cp.Dirs[i].Round > r {
			r = cp.Dirs[i].Round
		}
	}
	return r
}

// checkpoint binary format:
//
//	magic   "EMSCKP01"                        8 bytes
//	fingerprint                               uint64 LE
//	ndirs                                     uint32 LE
//	per direction:
//	  round, evals                            int64 LE each
//	  flags (bit0 converged, 1 estimated,
//	         2 warmed, 3 fast-path trailer
//	         present, 4 cutover)              1 byte
//	  lastDelta                               float64 bits LE
//	  n1, n2                                  uint32 LE each
//	  cur[n1*n2], prev[n1*n2]                 float64 bits LE each
//	  if flags bit3 (fast-path trailer):
//	    prevDelta, prevRatio                  float64 bits LE each
//	    ratioStreak                           int64 LE
//	    small[n1*n2]                          1 byte each
//	crc32c over everything above              uint32 LE
//
// Checkpoints written before the fast path existed never set bit3 and decode
// unchanged.
const (
	checkpointMagic  = "EMSCKP01"
	ckpMagicLen      = 8
	ckpDirHeaderLen  = 8 + 8 + 1 + 8 + 4 + 4
	maxCheckpointDir = 2 // a computation has one or two direction engines
)

var ckpCRCTable = crc32.MakeTable(crc32.Castagnoli)

// MarshalBinary encodes the checkpoint with a trailing CRC32-Castagnoli so
// torn or bit-rotted files are detected on load. Matrices are stored as raw
// float64 bits: decoding reproduces the exact values, including negative
// zeros, so a resumed run cannot drift.
func (cp *Checkpoint) MarshalBinary() ([]byte, error) {
	if len(cp.Dirs) == 0 || len(cp.Dirs) > maxCheckpointDir {
		return nil, fmt.Errorf("core: checkpoint must have 1..%d directions, got %d", maxCheckpointDir, len(cp.Dirs))
	}
	size := ckpMagicLen + 8 + 4 + 4
	for i := range cp.Dirs {
		d := &cp.Dirs[i]
		if d.N1 <= 0 || d.N2 <= 0 || len(d.Cur) != d.N1*d.N2 || len(d.Prev) != d.N1*d.N2 {
			return nil, fmt.Errorf("core: checkpoint direction %d has inconsistent dimensions", i)
		}
		if d.Small != nil && len(d.Small) != d.N1*d.N2 {
			return nil, fmt.Errorf("core: checkpoint direction %d has inconsistent fast-path table", i)
		}
		size += ckpDirHeaderLen + 16*len(d.Cur)
		if d.Small != nil {
			size += 8 + 8 + 8 + len(d.Small)
		}
	}
	buf := make([]byte, 0, size)
	buf = append(buf, checkpointMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, cp.Fingerprint)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(cp.Dirs)))
	for i := range cp.Dirs {
		d := &cp.Dirs[i]
		buf = binary.LittleEndian.AppendUint64(buf, uint64(d.Round))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(d.Evals))
		var flags byte
		if d.Converged {
			flags |= 1
		}
		if d.Estimated {
			flags |= 2
		}
		if d.Warmed {
			flags |= 4
		}
		if d.Small != nil {
			flags |= 8
		}
		if d.Cutover {
			flags |= 16
		}
		buf = append(buf, flags)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(d.LastDelta))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(d.N1))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(d.N2))
		for _, v := range d.Cur {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
		for _, v := range d.Prev {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
		if d.Small != nil {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(d.PrevDelta))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(d.PrevRatio))
			buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(d.RatioStreak)))
			buf = append(buf, d.Small...)
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, ckpCRCTable))
	return buf, nil
}

// UnmarshalBinary decodes a checkpoint written by MarshalBinary. Any
// malformed input — wrong magic, failed CRC, truncation, or dimensions that
// do not add up — yields an error wrapping ErrCorruptCheckpoint; the method
// never panics and never allocates more than the input length implies.
func (cp *Checkpoint) UnmarshalBinary(data []byte) error {
	corrupt := func(why string) error {
		return fmt.Errorf("%w: %s", ErrCorruptCheckpoint, why)
	}
	if len(data) < ckpMagicLen+8+4+4 {
		return corrupt("too short")
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, ckpCRCTable) != binary.LittleEndian.Uint32(tail) {
		return corrupt("crc mismatch")
	}
	if string(body[:ckpMagicLen]) != checkpointMagic {
		return corrupt("bad magic")
	}
	off := ckpMagicLen
	fingerprint := binary.LittleEndian.Uint64(body[off:])
	off += 8
	ndirs := int(binary.LittleEndian.Uint32(body[off:]))
	off += 4
	if ndirs < 1 || ndirs > maxCheckpointDir {
		return corrupt(fmt.Sprintf("direction count %d out of range", ndirs))
	}
	dirs := make([]DirCheckpoint, ndirs)
	for i := range dirs {
		if len(body)-off < ckpDirHeaderLen {
			return corrupt("truncated direction header")
		}
		d := &dirs[i]
		d.Round = int(int64(binary.LittleEndian.Uint64(body[off:])))
		d.Evals = int(int64(binary.LittleEndian.Uint64(body[off+8:])))
		flags := body[off+16]
		d.Converged = flags&1 != 0
		d.Estimated = flags&2 != 0
		d.Warmed = flags&4 != 0
		hasFast := flags&8 != 0
		d.Cutover = flags&16 != 0
		d.LastDelta = math.Float64frombits(binary.LittleEndian.Uint64(body[off+17:]))
		d.N1 = int(binary.LittleEndian.Uint32(body[off+25:]))
		d.N2 = int(binary.LittleEndian.Uint32(body[off+29:]))
		off += ckpDirHeaderLen
		if d.N1 <= 0 || d.N2 <= 0 {
			return corrupt("non-positive dimensions")
		}
		cells := int64(d.N1) * int64(d.N2)
		if cells > int64(len(body)-off)/16 {
			return corrupt("matrix larger than input")
		}
		n := int(cells)
		d.Cur = make([]float64, n)
		d.Prev = make([]float64, n)
		for j := 0; j < n; j++ {
			d.Cur[j] = math.Float64frombits(binary.LittleEndian.Uint64(body[off:]))
			off += 8
		}
		for j := 0; j < n; j++ {
			d.Prev[j] = math.Float64frombits(binary.LittleEndian.Uint64(body[off:]))
			off += 8
		}
		if hasFast {
			if len(body)-off < 24+n {
				return corrupt("truncated fast-path trailer")
			}
			d.PrevDelta = math.Float64frombits(binary.LittleEndian.Uint64(body[off:]))
			d.PrevRatio = math.Float64frombits(binary.LittleEndian.Uint64(body[off+8:]))
			d.RatioStreak = int(int64(binary.LittleEndian.Uint64(body[off+16:])))
			off += 24
			d.Small = append([]uint8(nil), body[off:off+n]...)
			off += n
		}
	}
	if off != len(body) {
		return corrupt("trailing bytes")
	}
	cp.Fingerprint = fingerprint
	cp.Dirs = dirs
	return nil
}

// Fingerprint returns the value a checkpoint of this computation would
// carry: an FNV-1a hash over everything that determines the numeric
// trajectory of the iteration — the numeric configuration, both graphs'
// in-edge structure and frequencies, the label matrix and the frozen-pair
// set of every direction engine. Worker budget and the Stop/Checkpoint hooks
// are deliberately excluded: they never change results, so a checkpoint
// resumes under any of them.
func (c *Computation) Fingerprint() uint64 {
	c.fpOnce.Do(func() {
		h := fnv.New64a()
		var scratch [8]byte
		put := func(v uint64) {
			binary.LittleEndian.PutUint64(scratch[:], v)
			h.Write(scratch[:])
		}
		putF := func(v float64) { put(math.Float64bits(v)) }
		putF(c.cfg.Alpha)
		putF(c.cfg.C)
		putF(c.cfg.Epsilon)
		put(uint64(int64(c.cfg.MaxRounds)))
		put(uint64(int64(c.cfg.EstimateI)))
		if c.cfg.Prune {
			put(1)
		} else {
			put(0)
		}
		put(uint64(int64(c.cfg.Direction)))
		// The fast path changes the numeric trajectory, so its parameters
		// join the hash — but only when armed, keeping checkpoints written
		// by earlier exact-mode binaries valid. Tiled is deliberately
		// excluded: layout never changes numbers, so checkpoints are
		// interchangeable between layouts.
		if c.cfg.FastPath && c.cfg.EstimateI < 0 {
			put(0xFA57FA57)
			putF(c.cfg.fastPathBudget())
		}
		for _, e := range c.engines() {
			put(uint64(int64(e.n1)))
			put(uint64(int64(e.n2)))
			// In-edge structure and frequencies drive formula (1); Pre lists
			// are sorted, so iteration order is deterministic.
			for _, g := range []*struct {
				pre  [][]int
				freq []map[int]float64
			}{
				{e.g1.Pre, e.g1.EdgeFreq},
				{e.g2.Pre, e.g2.EdgeFreq},
			} {
				for v, pre := range g.pre {
					put(uint64(len(pre)))
					for _, p := range pre {
						put(uint64(int64(p)))
						putF(g.freq[p][v])
					}
				}
			}
			for _, v := range e.lab {
				putF(v)
			}
			// The frozen set captures seeded pairs (Proposition 4 freezes),
			// which also change the trajectory.
			b := byte(0)
			nbit := 0
			for _, f := range e.frozen {
				b <<= 1
				if f {
					b |= 1
				}
				if nbit++; nbit == 8 {
					h.Write([]byte{b})
					b, nbit = 0, 0
				}
			}
			if nbit > 0 {
				h.Write([]byte{b})
			}
		}
		c.fp = h.Sum64()
	})
	return c.fp
}

// checkpointNow snapshots the mutable state of every direction engine. It
// must only be called between rounds (no engine goroutine running), which
// the checkpointed Run loop guarantees.
func (c *Computation) checkpointNow() *Checkpoint {
	cp := &Checkpoint{Fingerprint: c.Fingerprint()}
	for _, e := range c.engines() {
		d := DirCheckpoint{
			Round:       e.round,
			Evals:       e.evals,
			Converged:   e.converged,
			Estimated:   e.estimated,
			Warmed:      e.warmed,
			LastDelta:   e.lastDelta,
			N1:          e.n1,
			N2:          e.n2,
			Cur:         e.logicalMatrix(e.cur),
			Prev:        e.logicalMatrix(e.prev),
			Cutover:     e.cutover,
			PrevDelta:   e.prevDelta,
			PrevRatio:   e.prevRatio,
			RatioStreak: e.ratioStreak,
		}
		if e.small != nil {
			d.Small = append([]uint8(nil), e.small...)
		}
		cp.Dirs = append(cp.Dirs, d)
	}
	return cp
}

// logicalMatrix copies a similarity matrix out of the engine's in-memory
// layout into canonical row-major order.
func (e *dirEngine) logicalMatrix(m []float64) []float64 {
	out := make([]float64, e.n1*e.n2)
	for i := 0; i < e.n1; i++ {
		mrow := e.rowOff[i]
		lrow := i * e.n2
		for j := 0; j < e.n2; j++ {
			out[lrow+j] = m[mrow+e.colOff[j]]
		}
	}
	return out
}

// Restore rewinds a freshly constructed Computation to the state captured in
// cp; a subsequent Run produces output bit-identical to the uninterrupted
// run the checkpoint was taken from. The computation must be built over the
// same graphs, numeric configuration and seeds as the original — enforced
// via the fingerprint — and must not have performed any rounds yet. Restore
// returns ErrCheckpointMismatch when the checkpoint belongs to a different
// computation.
func (c *Computation) Restore(cp *Checkpoint) error {
	if cp == nil {
		return fmt.Errorf("core: Restore requires a checkpoint")
	}
	for _, e := range c.engines() {
		if e.round != 0 {
			return fmt.Errorf("core: Restore must be called before iteration starts (round %d)", e.round)
		}
	}
	if cp.Fingerprint != c.Fingerprint() {
		return fmt.Errorf("%w: fingerprint %016x, computation has %016x",
			ErrCheckpointMismatch, cp.Fingerprint, c.Fingerprint())
	}
	engines := c.engines()
	if len(cp.Dirs) != len(engines) {
		return fmt.Errorf("%w: %d directions, computation has %d",
			ErrCheckpointMismatch, len(cp.Dirs), len(engines))
	}
	for i, e := range engines {
		d := &cp.Dirs[i]
		if d.N1 != e.n1 || d.N2 != e.n2 || len(d.Cur) != e.n1*e.n2 || len(d.Prev) != e.n1*e.n2 {
			return fmt.Errorf("%w: direction %d is %dx%d, computation has %dx%d",
				ErrCheckpointMismatch, i, d.N1, d.N2, e.n1, e.n2)
		}
	}
	for i, e := range engines {
		d := &cp.Dirs[i]
		for row := 0; row < e.n1; row++ {
			mrow := e.rowOff[row]
			lrow := row * e.n2
			for col := 0; col < e.n2; col++ {
				e.cur[mrow+e.colOff[col]] = d.Cur[lrow+col]
				e.prev[mrow+e.colOff[col]] = d.Prev[lrow+col]
			}
		}
		e.round = d.Round
		e.evals = d.Evals
		e.converged = d.Converged
		e.estimated = d.Estimated
		e.warmed = d.Warmed
		e.lastDelta = d.LastDelta
		if e.fast && d.Small != nil {
			copy(e.small, d.Small)
			e.cutover = d.Cutover
			e.prevDelta = d.PrevDelta
			e.prevRatio = d.PrevRatio
			e.ratioStreak = d.RatioStreak
		}
	}
	return nil
}

// runLockstep drives the computation in lockstep rounds on behalf of the
// Checkpoint and Observer hooks: the Observer sees every round boundary,
// the Checkpoint hook a consistent snapshot every CheckpointEvery rounds.
// Lockstep is required so both direction engines are at a round boundary
// when state is read; rounds are Jacobi updates, so the lockstep schedule
// produces exactly the same numbers as the concurrent one.
func (c *Computation) runLockstep() error {
	defer c.span("iterate:lockstep")()
	every := c.cfg.CheckpointEvery
	if every <= 0 {
		every = 1
	}
	steps := 0
	for {
		done, err := c.Step()
		if err != nil {
			return err
		}
		if c.cfg.Observer != nil {
			c.observeRound()
		}
		if done {
			break
		}
		if c.cfg.Checkpoint != nil {
			if steps++; steps%every == 0 {
				c.cfg.Checkpoint(c.checkpointNow())
			}
		}
	}
	if err := c.Finish(); err != nil {
		return err
	}
	// An estimation pass (explicit EstimateI or fast-path cutover) moves the
	// matrices after the last observed round; without a final observation a
	// progress consumer would see the run stall mid-flight and then complete.
	// Emit one synthetic round boundary carrying Estimated (and, on the fast
	// path, the certified ErrorBound).
	if c.cfg.Observer != nil {
		for _, e := range c.engines() {
			if e.estimated {
				c.observeRound()
				break
			}
		}
	}
	return nil
}
