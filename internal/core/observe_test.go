package core

import (
	"sync"
	"testing"
)

// TestObserverBitIdentical is the observer's determinism contract: arming
// Config.Observer (which switches Run to the lockstep schedule) must not
// change a single bit of the output at any worker count, with or without
// pruning.
func TestObserverBitIdentical(t *testing.T) {
	g1, g2 := procgenGraphs(t, 21, 12, 40)
	for _, prune := range []bool{true, false} {
		for _, workers := range []int{1, 4} {
			cfg := DefaultConfig()
			cfg.Prune = prune
			cfg.Workers = workers
			base, err := Compute(g1, g2, cfg)
			if err != nil {
				t.Fatalf("baseline: %v", err)
			}
			observed := cfg
			rounds := 0
			observed.Observer = func(ob RoundObservation) { rounds++ }
			got, err := Compute(g1, g2, observed)
			if err != nil {
				t.Fatalf("observed: %v", err)
			}
			if rounds == 0 {
				t.Fatalf("prune=%v workers=%d: observer never fired", prune, workers)
			}
			if got.Rounds != base.Rounds || got.Evaluations != base.Evaluations || got.Converged != base.Converged {
				t.Fatalf("prune=%v workers=%d: counters diverged: got (%d,%d,%v), want (%d,%d,%v)",
					prune, workers, got.Rounds, got.Evaluations, got.Converged,
					base.Rounds, base.Evaluations, base.Converged)
			}
			for i := range base.Sim {
				if base.Sim[i] != got.Sim[i] {
					t.Fatalf("prune=%v workers=%d: Sim[%d] %v != %v", prune, workers, i, got.Sim[i], base.Sim[i])
				}
			}
		}
	}
}

// TestObserverRoundStats checks the content of the observations: rounds
// increase one at a time, per-round evaluations sum to the engine total,
// pruned counts are zero without pruning and positive with it once the
// per-pair convergence bounds start biting, and the last observation agrees
// with the final result.
func TestObserverRoundStats(t *testing.T) {
	g1, g2 := procgenGraphs(t, 33, 14, 50)
	for _, prune := range []bool{true, false} {
		cfg := DefaultConfig()
		cfg.Prune = prune
		var obs []RoundObservation
		cfg.Observer = func(ob RoundObservation) { obs = append(obs, ob) }
		res, err := Compute(g1, g2, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(obs) == 0 {
			t.Fatal("no observations")
		}
		last := obs[len(obs)-1]
		if last.Round != res.Rounds {
			t.Errorf("prune=%v: last observed round %d, result rounds %d", prune, last.Round, res.Rounds)
		}
		if len(last.Dirs) != 2 {
			t.Fatalf("prune=%v: %d directions, want 2 (Both)", prune, len(last.Dirs))
		}
		if last.Dirs[0].Direction != Forward || last.Dirs[1].Direction != Backward {
			t.Errorf("prune=%v: direction order %v, %v", prune, last.Dirs[0].Direction, last.Dirs[1].Direction)
		}
		totalEvals, totalPruned := 0, 0
		for d := 0; d < 2; d++ {
			sum := 0
			prevRound := 0
			for _, ob := range obs {
				ds := ob.Dirs[d]
				if ds.Round != prevRound && ds.Round != prevRound+1 {
					t.Errorf("prune=%v dir %d: round jumped %d -> %d", prune, d, prevRound, ds.Round)
				}
				if ds.Round == prevRound+1 {
					sum += ds.RoundEvals
				}
				prevRound = ds.Round
			}
			if sum != last.Dirs[d].TotalEvals {
				t.Errorf("prune=%v dir %d: per-round evals sum %d != total %d", prune, d, sum, last.Dirs[d].TotalEvals)
			}
			totalEvals += last.Dirs[d].TotalEvals
			totalPruned += last.Dirs[d].TotalPruned
			if !last.Dirs[d].Converged && res.Converged {
				t.Errorf("prune=%v dir %d: not converged in last observation but result converged", prune, d)
			}
		}
		if totalEvals != res.Evaluations {
			t.Errorf("prune=%v: observed evals %d != result %d", prune, totalEvals, res.Evaluations)
		}
		if prune && totalPruned == 0 {
			t.Errorf("pruning enabled but no pair ever pruned (bound %d rounds)", res.Rounds)
		}
		if !prune && totalPruned != 0 {
			t.Errorf("pruning disabled but %d pairs reported pruned", totalPruned)
		}
	}
}

// TestObserverWithCheckpoint runs both lockstep hooks together: the cadence
// contract of Checkpoint must survive the Observer being armed too.
func TestObserverWithCheckpoint(t *testing.T) {
	g1, g2 := procgenGraphs(t, 7, 12, 40)
	cfg := DefaultConfig()
	cfg.CheckpointEvery = 2
	var ckps, rounds int
	cfg.Checkpoint = func(cp *Checkpoint) { ckps++ }
	cfg.Observer = func(ob RoundObservation) { rounds++ }
	res, err := Compute(g1, g2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != res.Rounds {
		t.Errorf("observed %d rounds, result has %d", rounds, res.Rounds)
	}
	if ckps == 0 || ckps > rounds/2+1 {
		t.Errorf("%d checkpoints for %d rounds at cadence 2", ckps, rounds)
	}
}

// TestSpanHook exercises Config.Span: the engine must open and close spans
// for the agreement-cache builds and the direction runs, from whatever
// goroutine — the hook is invoked concurrently, which -race verifies.
func TestSpanHook(t *testing.T) {
	g1, g2 := procgenGraphs(t, 5, 10, 30)
	var mu sync.Mutex
	opened := map[string]int{}
	closed := 0
	cfg := DefaultConfig()
	cfg.Alpha = 0.7
	cfg.Labels = func(a, b string) float64 { return 0 }
	cfg.Span = func(name string) func() {
		mu.Lock()
		opened[name]++
		mu.Unlock()
		return func() {
			mu.Lock()
			closed++
			mu.Unlock()
		}
	}
	base := cfg
	base.Span = nil
	want, err := Compute(g1, g2, base)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Compute(g1, g2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Sim {
		if want.Sim[i] != got.Sim[i] {
			t.Fatalf("span hook changed Sim[%d]", i)
		}
	}
	total := 0
	for name, n := range opened {
		total += n
		switch name {
		case "agreement-cache", "label-matrix":
			if n != 2 {
				t.Errorf("span %q opened %d times, want 2 (one per direction engine)", name, n)
			}
		case "direction:forward", "direction:backward":
			if n != 1 {
				t.Errorf("span %q opened %d times, want 1", name, n)
			}
		default:
			t.Errorf("unexpected span %q", name)
		}
	}
	if closed != total {
		t.Errorf("%d spans closed, %d opened", closed, total)
	}
}
