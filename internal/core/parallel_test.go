package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/depgraph"
	"repro/internal/label"
	"repro/internal/procgen"
)

// procgenGraphs plays a random process specification out twice with
// independent choice skews and returns the two dependency graphs — the same
// heterogeneous-pair construction the experiments use.
func procgenGraphs(t *testing.T, seed int64, activities, traces int) (*depgraph.Graph, *depgraph.Graph) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	spec, err := procgen.Generate(rng, procgen.DefaultOptions(activities))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	po := procgen.PlayoutOptions{Traces: traces, LoopRepeat: 0.3, MaxLoop: 3, XorSkew: 2}
	l1, err := spec.Playout(rng, "L1", po)
	if err != nil {
		t.Fatalf("Playout L1: %v", err)
	}
	l2, err := spec.Playout(rng, "L2", po)
	if err != nil {
		t.Fatalf("Playout L2: %v", err)
	}
	g1, err := depgraph.Build(l1)
	if err != nil {
		t.Fatalf("Build L1: %v", err)
	}
	g2, err := depgraph.Build(l2)
	if err != nil {
		t.Fatalf("Build L2: %v", err)
	}
	ga1, err := g1.AddArtificial()
	if err != nil {
		t.Fatalf("AddArtificial L1: %v", err)
	}
	ga2, err := g2.AddArtificial()
	if err != nil {
		t.Fatalf("AddArtificial L2: %v", err)
	}
	return ga1, ga2
}

// requireBitIdentical fails unless the two results agree exactly: the same
// float64 bits in every matrix and the same counters. No tolerance — the
// parallel engine must reproduce the serial computation, not approximate it.
func requireBitIdentical(t *testing.T, serial, parallel *Result, label string) {
	t.Helper()
	if serial.Evaluations != parallel.Evaluations {
		t.Errorf("%s: Evaluations %d != serial %d", label, parallel.Evaluations, serial.Evaluations)
	}
	if serial.Rounds != parallel.Rounds {
		t.Errorf("%s: Rounds %d != serial %d", label, parallel.Rounds, serial.Rounds)
	}
	if serial.Converged != parallel.Converged {
		t.Errorf("%s: Converged %v != serial %v", label, parallel.Converged, serial.Converged)
	}
	matrices := []struct {
		name string
		s, p []float64
	}{
		{"Sim", serial.Sim, parallel.Sim},
		{"Forward", serial.Forward, parallel.Forward},
		{"Backward", serial.Backward, parallel.Backward},
	}
	for _, m := range matrices {
		if len(m.s) != len(m.p) {
			t.Errorf("%s: %s length %d != serial %d", label, m.name, len(m.p), len(m.s))
			continue
		}
		for i := range m.s {
			if m.s[i] != m.p[i] {
				t.Fatalf("%s: %s[%d] = %x differs from serial %x", label, m.name, i, m.p[i], m.s[i])
			}
		}
	}
}

// TestParallelBitIdenticalToSerial sweeps worker counts against the serial
// engine across pruning, estimation and direction settings on randomized
// procgen graphs.
func TestParallelBitIdenticalToSerial(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		g1, g2 := procgenGraphs(t, seed, 18, 60)
		for _, prune := range []bool{true, false} {
			for _, estimateI := range []int{-1, 0, 3} {
				cfg := DefaultConfig()
				cfg.Prune = prune
				cfg.EstimateI = estimateI
				cfg.Workers = 1
				serial, err := Compute(g1, g2, cfg)
				if err != nil {
					t.Fatalf("serial Compute: %v", err)
				}
				for _, workers := range []int{2, 8} {
					cfg.Workers = workers
					par, err := Compute(g1, g2, cfg)
					if err != nil {
						t.Fatalf("parallel Compute: %v", err)
					}
					requireBitIdentical(t, serial, par,
						fmt.Sprintf("seed=%d prune=%v estimateI=%d workers=%d", seed, prune, estimateI, workers))
				}
			}
		}
	}
}

// TestParallelBitIdenticalWithLabels exercises the parallel label-matrix
// construction (alpha < 1 calls the label similarity from worker
// goroutines).
func TestParallelBitIdenticalWithLabels(t *testing.T) {
	g1, g2 := procgenGraphs(t, 11, 16, 50)
	cfg := DefaultConfig()
	cfg.Alpha = 0.7
	cfg.Labels = label.QGramCosine(3)
	cfg.Workers = 1
	serial, err := Compute(g1, g2, cfg)
	if err != nil {
		t.Fatalf("serial Compute: %v", err)
	}
	for _, workers := range []int{2, 8} {
		cfg.Workers = workers
		par, err := Compute(g1, g2, cfg)
		if err != nil {
			t.Fatalf("parallel Compute: %v", err)
		}
		requireBitIdentical(t, serial, par, fmt.Sprintf("labels workers=%d", workers))
	}
}

// TestParallelBitIdenticalSeeded covers frozen seeds (Proposition 4) and
// warm starts: both must survive any worker count unchanged.
func TestParallelBitIdenticalSeeded(t *testing.T) {
	g1, g2 := procgenGraphs(t, 3, 15, 50)
	base, err := Compute(g1, g2, DefaultConfig())
	if err != nil {
		t.Fatalf("base Compute: %v", err)
	}
	// Freeze the first few forward/backward pairs at their converged values
	// and warm-start everything else from the base result.
	seed := &Seed{
		Forward:      map[string]map[string]float64{},
		Backward:     map[string]map[string]float64{},
		WarmForward:  map[string]map[string]float64{},
		WarmBackward: map[string]map[string]float64{},
	}
	n2 := len(base.Names2)
	for i, a := range base.Names1 {
		for j, b := range base.Names2 {
			if i < 3 && j < 3 {
				if seed.Forward[a] == nil {
					seed.Forward[a] = map[string]float64{}
					seed.Backward[a] = map[string]float64{}
				}
				seed.Forward[a][b] = base.Forward[i*n2+j]
				seed.Backward[a][b] = base.Backward[i*n2+j]
				continue
			}
			if seed.WarmForward[a] == nil {
				seed.WarmForward[a] = map[string]float64{}
				seed.WarmBackward[a] = map[string]float64{}
			}
			seed.WarmForward[a][b] = base.Forward[i*n2+j] * 0.9
			seed.WarmBackward[a][b] = base.Backward[i*n2+j] * 0.9
		}
	}
	run := func(workers int) *Result {
		cfg := DefaultConfig()
		cfg.Workers = workers
		comp, err := NewComputation(g1, g2, cfg, seed)
		if err != nil {
			t.Fatalf("NewComputation workers=%d: %v", workers, err)
		}
		if err := comp.Run(); err != nil {
			t.Fatalf("Run workers=%d: %v", workers, err)
		}
		r, err := comp.Result()
		if err != nil {
			t.Fatalf("Result workers=%d: %v", workers, err)
		}
		return r
	}
	serial := run(1)
	for _, workers := range []int{2, 8} {
		requireBitIdentical(t, serial, run(workers), fmt.Sprintf("seeded workers=%d", workers))
	}
}

// TestParallelStepwiseBitIdentical drives serial and parallel computations
// in lockstep the way composite matching does, comparing the upper bound
// after every round bit-for-bit.
func TestParallelStepwiseBitIdentical(t *testing.T) {
	g1, g2 := procgenGraphs(t, 5, 15, 50)
	cfgS := DefaultConfig()
	cfgS.Workers = 1
	cfgP := DefaultConfig()
	cfgP.Workers = 4
	cs, err := NewComputation(g1, g2, cfgS, nil)
	if err != nil {
		t.Fatalf("NewComputation serial: %v", err)
	}
	cp, err := NewComputation(g1, g2, cfgP, nil)
	if err != nil {
		t.Fatalf("NewComputation parallel: %v", err)
	}
	for round := 1; round <= 100; round++ {
		ds, errS := cs.Step()
		dp, errP := cp.Step()
		if errS != nil || errP != nil {
			t.Fatalf("round %d: Step errors %v / %v", round, errS, errP)
		}
		if ds != dp {
			t.Fatalf("round %d: done %v != serial %v", round, dp, ds)
		}
		us, err := cs.AvgUpperBound()
		if err != nil {
			t.Fatalf("round %d: serial AvgUpperBound: %v", round, err)
		}
		up, err := cp.AvgUpperBound()
		if err != nil {
			t.Fatalf("round %d: parallel AvgUpperBound: %v", round, err)
		}
		if us != up {
			t.Fatalf("round %d: AvgUpperBound %x != serial %x", round, up, us)
		}
		if cs.Evaluations() != cp.Evaluations() {
			t.Fatalf("round %d: evaluations %d != serial %d", round, cp.Evaluations(), cs.Evaluations())
		}
		if ds {
			break
		}
	}
	rs, err := cs.Result()
	if err != nil {
		t.Fatalf("serial Result: %v", err)
	}
	rp, err := cp.Result()
	if err != nil {
		t.Fatalf("parallel Result: %v", err)
	}
	requireBitIdentical(t, rs, rp, "stepwise")
}

// TestParallelWithoutAgreementCache forces the uncached edge-agreement
// fallback, which recomputes factors inside worker goroutines.
func TestParallelWithoutAgreementCache(t *testing.T) {
	old := agreeCacheLimit
	agreeCacheLimit = 0
	defer func() { agreeCacheLimit = old }()
	g1, g2 := procgenGraphs(t, 9, 14, 40)
	cfg := DefaultConfig()
	cfg.Workers = 1
	serial, err := Compute(g1, g2, cfg)
	if err != nil {
		t.Fatalf("serial Compute: %v", err)
	}
	cfg.Workers = 8
	par, err := Compute(g1, g2, cfg)
	if err != nil {
		t.Fatalf("parallel Compute: %v", err)
	}
	requireBitIdentical(t, serial, par, "uncached workers=8")
}

func TestResolveWorkers(t *testing.T) {
	cases := []struct {
		workers, n1, n2, want int
	}{
		{1, 100, 100, 1}, // explicit serial
		{4, 100, 100, 4}, // explicit parallel
		{8, 4, 100, 3},   // capped at the n1-1 real rows
		{0, 10, 10, 1},   // auto stays serial under the threshold
		{3, 1, 10, 1},    // no real rows at all
	}
	for _, c := range cases {
		cfg := DefaultConfig()
		cfg.Workers = c.workers
		if got := resolveWorkers(cfg, c.n1, c.n2); got != c.want {
			t.Errorf("resolveWorkers(%d, %d, %d) = %d, want %d", c.workers, c.n1, c.n2, got, c.want)
		}
	}
}

func TestConfigValidateRejectsNegativeWorkers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative Workers accepted")
	}
}
