package core

import "errors"

// ErrStopped matches (via errors.Is) every StopError returned by a
// computation that was aborted through Config.Stop. Use it to distinguish
// cooperative cancellation from genuine engine failures; the concrete cause
// (e.g. context.Canceled or context.DeadlineExceeded) remains reachable
// through errors.Is as well, because StopError unwraps to it.
var ErrStopped = errors.New("core: computation stopped")

// StopError is the typed error an aborted computation returns: the stop hook
// of Config.Stop reported a non-nil cause, the engine unwound within the
// current round, and no result was produced.
type StopError struct {
	// Cause is the value the stop hook returned, typically a context error.
	Cause error
}

// Error describes the abort including its cause.
func (e *StopError) Error() string {
	if e.Cause != nil {
		return "core: computation stopped: " + e.Cause.Error()
	}
	return "core: computation stopped"
}

// Unwrap exposes the cause to errors.Is/errors.As.
func (e *StopError) Unwrap() error { return e.Cause }

// Is reports true for ErrStopped, so callers need not know the struct type.
func (e *StopError) Is(target error) bool { return target == ErrStopped }
