package core

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// EnginePanic is the value re-panicked on the computation's caller goroutine
// when a pool worker or direction goroutine panics. It preserves the original
// panic value and the stack of the goroutine that actually failed, so a
// recovering caller (e.g. the emsd job runner) can contain the fault and log
// its true origin. Without this hand-off a panic on a pool goroutine would
// crash the whole process before any caller-side recover could run.
type EnginePanic struct {
	// Val is the original panic value.
	Val any
	// Stack is the stack of the panicking goroutine, captured at recovery.
	Stack []byte
}

// String renders the panic value followed by its originating stack.
func (p *EnginePanic) String() string { return fmt.Sprintf("%v\n%s", p.Val, p.Stack) }

// asEnginePanic wraps a recovered value, keeping an existing EnginePanic (and
// with it the original stack) intact across nested hand-offs.
func asEnginePanic(r any) *EnginePanic {
	if ep, ok := r.(*EnginePanic); ok {
		return ep
	}
	return &EnginePanic{Val: r, Stack: debug.Stack()}
}

// rowTask is one contiguous row range [lo, hi) handed to a pool worker.
type rowTask struct {
	fn     func(w, lo, hi int)
	lo, hi int
	wg     *sync.WaitGroup
	// panicked collects the first panic of the submitting run call so it can
	// be re-raised on the submitter's goroutine.
	panicked *atomic.Pointer[EnginePanic]
}

// rowPool is a reusable set of worker goroutines that execute row-range
// tasks. One pool serves every parallel region of a Computation (both
// direction engines, all rounds), so goroutines are spawned once per
// computation instead of once per round.
//
// The worker index passed to the task function identifies the goroutine, not
// the task: per-worker scratch (the oneSides best buffers) is therefore
// touched by exactly one goroutine at a time even when a fast worker steals
// several row ranges of the same round.
//
// Workers park on the task channel between regions. The pool is shut down by
// a finalizer when the owning Computation becomes unreachable; this covers
// the composite-matching search, which abandons candidate computations
// mid-iteration when their upper bound cannot beat the incumbent.
type rowPool struct {
	workers int
	tasks   chan rowTask
}

// newRowPool starts workers goroutines (must be >= 2; a single worker is the
// serial path and needs no pool).
func newRowPool(workers int) *rowPool {
	p := &rowPool{workers: workers, tasks: make(chan rowTask)}
	for w := 0; w < workers; w++ {
		// The goroutine captures only the channel, not the pool, so the
		// finalizer below can run once the pool itself is unreachable.
		go func(w int, tasks <-chan rowTask) {
			for t := range tasks {
				runRowTask(w, t)
			}
		}(w, p.tasks)
	}
	runtime.SetFinalizer(p, func(p *rowPool) { close(p.tasks) })
	return p
}

// runRowTask executes one chunk, converting a panic into a hand-off to the
// submitting goroutine instead of crashing the process. The worker goroutine
// itself survives, keeping the pool usable for the remaining chunks and
// later rounds.
func runRowTask(w int, t rowTask) {
	defer func() {
		if r := recover(); r != nil {
			t.panicked.CompareAndSwap(nil, asEnginePanic(r))
		}
		t.wg.Done()
	}()
	t.fn(w, t.lo, t.hi)
}

// run partitions [lo, hi) into at most p.workers contiguous chunks and
// blocks until every chunk has been processed. Chunk boundaries depend only
// on the range and the worker count, never on scheduling. A panic inside any
// chunk is re-raised here, on the submitting goroutine, as an *EnginePanic.
func (p *rowPool) run(lo, hi int, fn func(w, lo, hi int)) {
	n := hi - lo
	if n <= 0 {
		return
	}
	chunks := p.workers
	if chunks > n {
		chunks = n
	}
	var wg sync.WaitGroup
	var panicked atomic.Pointer[EnginePanic]
	wg.Add(chunks)
	for i := 0; i < chunks; i++ {
		p.tasks <- rowTask{fn: fn, lo: lo + i*n/chunks, hi: lo + (i+1)*n/chunks, wg: &wg, panicked: &panicked}
	}
	wg.Wait()
	if ep := panicked.Load(); ep != nil {
		panic(ep)
	}
}

// autoParallelMinPairs is the matrix size (vertex pairs) below which
// Workers = 0 (automatic) stays serial: on small instances the per-round
// synchronization costs more than the row work it distributes. Explicit
// Workers > 1 always parallelizes. A variable so tests can force the
// automatic path.
var autoParallelMinPairs = 4096

// resolveWorkers turns the Config.Workers knob into an effective worker
// count for a pair of graphs with n1 x n2 vertices. At most n1-1 workers are
// useful (there are n1-1 real rows; the reversed-direction engine has the
// same vertex count).
func resolveWorkers(cfg Config, n1, n2 int) int {
	w := cfg.Workers
	if w == 0 {
		if n1*n2 < autoParallelMinPairs {
			return 1
		}
		w = runtime.GOMAXPROCS(0)
	}
	if w > n1-1 {
		w = n1 - 1
	}
	if w < 1 {
		w = 1
	}
	return w
}

// forRows runs fn over the row range [lo, hi), split across the engine's
// pool when it has one and inline otherwise. The worker index selects
// per-worker scratch; results must be written to per-row or per-worker
// locations so that any partition yields bit-identical results (see
// DESIGN.md on the parallel engine).
func (e *dirEngine) forRows(lo, hi int, fn func(w, lo, hi int)) {
	if e.pool == nil {
		fn(0, lo, hi)
		return
	}
	e.pool.run(lo, hi, fn)
}
