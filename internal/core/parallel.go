package core

import (
	"runtime"
	"sync"
)

// rowTask is one contiguous row range [lo, hi) handed to a pool worker.
type rowTask struct {
	fn     func(w, lo, hi int)
	lo, hi int
	wg     *sync.WaitGroup
}

// rowPool is a reusable set of worker goroutines that execute row-range
// tasks. One pool serves every parallel region of a Computation (both
// direction engines, all rounds), so goroutines are spawned once per
// computation instead of once per round.
//
// The worker index passed to the task function identifies the goroutine, not
// the task: per-worker scratch (the oneSides best buffers) is therefore
// touched by exactly one goroutine at a time even when a fast worker steals
// several row ranges of the same round.
//
// Workers park on the task channel between regions. The pool is shut down by
// a finalizer when the owning Computation becomes unreachable; this covers
// the composite-matching search, which abandons candidate computations
// mid-iteration when their upper bound cannot beat the incumbent.
type rowPool struct {
	workers int
	tasks   chan rowTask
}

// newRowPool starts workers goroutines (must be >= 2; a single worker is the
// serial path and needs no pool).
func newRowPool(workers int) *rowPool {
	p := &rowPool{workers: workers, tasks: make(chan rowTask)}
	for w := 0; w < workers; w++ {
		// The goroutine captures only the channel, not the pool, so the
		// finalizer below can run once the pool itself is unreachable.
		go func(w int, tasks <-chan rowTask) {
			for t := range tasks {
				t.fn(w, t.lo, t.hi)
				t.wg.Done()
			}
		}(w, p.tasks)
	}
	runtime.SetFinalizer(p, func(p *rowPool) { close(p.tasks) })
	return p
}

// run partitions [lo, hi) into at most p.workers contiguous chunks and
// blocks until every chunk has been processed. Chunk boundaries depend only
// on the range and the worker count, never on scheduling.
func (p *rowPool) run(lo, hi int, fn func(w, lo, hi int)) {
	n := hi - lo
	if n <= 0 {
		return
	}
	chunks := p.workers
	if chunks > n {
		chunks = n
	}
	var wg sync.WaitGroup
	wg.Add(chunks)
	for i := 0; i < chunks; i++ {
		p.tasks <- rowTask{fn: fn, lo: lo + i*n/chunks, hi: lo + (i+1)*n/chunks, wg: &wg}
	}
	wg.Wait()
}

// autoParallelMinPairs is the matrix size (vertex pairs) below which
// Workers = 0 (automatic) stays serial: on small instances the per-round
// synchronization costs more than the row work it distributes. Explicit
// Workers > 1 always parallelizes. A variable so tests can force the
// automatic path.
var autoParallelMinPairs = 4096

// resolveWorkers turns the Config.Workers knob into an effective worker
// count for a pair of graphs with n1 x n2 vertices. At most n1-1 workers are
// useful (there are n1-1 real rows; the reversed-direction engine has the
// same vertex count).
func resolveWorkers(cfg Config, n1, n2 int) int {
	w := cfg.Workers
	if w == 0 {
		if n1*n2 < autoParallelMinPairs {
			return 1
		}
		w = runtime.GOMAXPROCS(0)
	}
	if w > n1-1 {
		w = n1 - 1
	}
	if w < 1 {
		w = 1
	}
	return w
}

// forRows runs fn over the row range [lo, hi), split across the engine's
// pool when it has one and inline otherwise. The worker index selects
// per-worker scratch; results must be written to per-row or per-worker
// locations so that any partition yields bit-identical results (see
// DESIGN.md on the parallel engine).
func (e *dirEngine) forRows(lo, hi int, fn func(w, lo, hi int)) {
	if e.pool == nil {
		fn(0, lo, hi)
		return
	}
	e.pool.run(lo, hi, fn)
}
