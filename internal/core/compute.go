package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/depgraph"
)

// Result holds the computed pair-wise similarities between the real events
// of two dependency graphs.
type Result struct {
	// Names1 and Names2 list the real events of each graph in matrix order.
	Names1, Names2 []string
	// Sim is the row-major |Names1| x |Names2| combined similarity matrix.
	Sim []float64
	// Forward and Backward are the per-direction matrices; one of them is
	// nil unless Direction was Both.
	Forward, Backward []float64
	// Evaluations counts how many times formula (1) was evaluated across
	// both directions (the "number of iterations" metric of Figures 6/12).
	Evaluations int
	// Rounds is the maximum number of iteration rounds performed by either
	// direction.
	Rounds int
	// Converged reports whether iteration stopped by convergence (or by a
	// deliberate estimation cutover) rather than by the MaxRounds cap.
	Converged bool
	// Estimated reports whether any direction applied the closed-form
	// estimation of Section 3.5 — an explicit EstimateI or the adaptive
	// fast-path cutover.
	Estimated bool
	// ErrorBound is the certified per-pair absolute error bound of a
	// fast-path run (Config.FastPath): the worst direction's a-posteriori
	// Banach bound residual/(1-alpha*c). Zero for exact and explicit
	// EstimateI runs, which do not pay for the certification pass.
	ErrorBound float64
	// Pruned counts pair evaluations skipped across both directions and all
	// rounds: Proposition-2 convergence skips plus, on the fast path, the
	// adaptive per-pair freezes.
	Pruned int

	// idxOnce lazily builds the name-to-index maps behind Lookup, which
	// composite matching hits once per event pair.
	idxOnce    sync.Once
	idx1, idx2 map[string]int
}

// At returns the combined similarity of the i-th event of graph 1 and the
// j-th event of graph 2.
func (r *Result) At(i, j int) float64 { return r.Sim[i*len(r.Names2)+j] }

// Avg returns the average similarity over all real event pairs, the
// objective avg(S) that composite event matching maximizes.
func (r *Result) Avg() float64 {
	if len(r.Sim) == 0 {
		return 0
	}
	var sum float64
	for _, v := range r.Sim {
		sum += v
	}
	return sum / float64(len(r.Sim))
}

// Lookup returns the similarity of two events by name; ok is false when
// either name is unknown. The index maps are built on first use and shared
// by subsequent calls, so per-pair lookups stay O(1); Lookup is safe for
// concurrent use as long as the name slices are not mutated.
func (r *Result) Lookup(a, b string) (v float64, ok bool) {
	r.idxOnce.Do(func() {
		r.idx1 = nameIndex(r.Names1)
		r.idx2 = nameIndex(r.Names2)
	})
	i, ok1 := r.idx1[a]
	j, ok2 := r.idx2[b]
	if !ok1 || !ok2 {
		return 0, false
	}
	return r.At(i, j), true
}

// nameIndex inverts a name slice; the first occurrence wins, matching the
// previous linear-scan behavior on duplicate names.
func nameIndex(names []string) map[string]int {
	idx := make(map[string]int, len(names))
	for k, n := range names {
		if _, dup := idx[n]; !dup {
			idx[n] = k
		}
	}
	return idx
}

// Compute runs the full similarity computation between two dependency
// graphs (which must carry the artificial event) and returns the result.
// It is the one-shot form of Computation. When cfg.Stop aborts the run, the
// error wraps ErrStopped and the hook's cause.
func Compute(g1, g2 *depgraph.Graph, cfg Config) (*Result, error) {
	c, err := NewComputation(g1, g2, cfg, nil)
	if err != nil {
		return nil, err
	}
	if err := c.Run(); err != nil {
		return nil, err
	}
	return c.Result()
}

// Seed carries previously computed similarities, keyed by event names.
//
// The Forward/Backward maps freeze pairs at their seeded value — used for
// pairs that are provably unchanged after a composite-event merge
// (Proposition 4); iteration skips them entirely.
//
// The WarmForward/WarmBackward maps only provide starting values: the pairs
// still iterate, but starting near the old fixpoint converges in far fewer
// rounds. The fixpoint is unique for alpha*c < 1 (the contraction argument
// of Theorem 1), so warm starts do not change results — they are how
// incremental rematching after log updates stays cheap. All maps may
// independently be nil.
type Seed struct {
	// Forward[a][b] fixes the forward similarity of events a (graph 1) and
	// b (graph 2).
	Forward map[string]map[string]float64
	// Backward fixes backward similarities likewise.
	Backward map[string]map[string]float64
	// WarmForward provides non-frozen starting values for the forward
	// direction.
	WarmForward map[string]map[string]float64
	// WarmBackward likewise for the backward direction.
	WarmBackward map[string]map[string]float64
}

// Computation is a stepwise similarity computation. Composite-event matching
// drives it one round at a time so it can abort candidates whose similarity
// upper bound cannot beat the incumbent (Section 4.3).
type Computation struct {
	cfg      Config
	fwd, bwd *dirEngine // bwd is nil unless Direction == Both; fwd holds the
	// single engine for Forward or Backward directions.
	names1, names2 []string
	realPairs      int

	// fpOnce/fp lazily cache the checkpoint fingerprint (see Fingerprint).
	fpOnce sync.Once
	fp     uint64
}

// NewComputation prepares a similarity computation between two graphs with
// artificial events. seed may be nil.
func NewComputation(g1, g2 *depgraph.Graph, cfg Config, seed *Seed) (*Computation, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Computation{
		cfg:       cfg,
		names1:    g1.Names[g1.RealStart():],
		names2:    g2.Names[g2.RealStart():],
		realPairs: g1.RealCount() * g2.RealCount(),
	}
	// One pool serves both direction engines: the per-direction goroutines
	// of Run submit row ranges to the same workers, so a computation never
	// uses more than cfg.Workers row workers at once.
	var pool *rowPool
	if w := resolveWorkers(cfg, g1.N(), g2.N()); w > 1 {
		pool = newRowPool(w)
	}
	var err error
	switch cfg.Direction {
	case Forward:
		c.fwd, err = newDirEngine(g1, g2, cfg, pool)
	case Backward:
		c.fwd, err = newDirEngine(g1.Reverse(), g2.Reverse(), cfg, pool)
	case Both:
		c.fwd, err = newDirEngine(g1, g2, cfg, pool)
		if err == nil {
			c.bwd, err = newDirEngine(g1.Reverse(), g2.Reverse(), cfg, pool)
		}
	default:
		err = fmt.Errorf("core: invalid direction %v", cfg.Direction)
	}
	if err != nil {
		return nil, err
	}
	if seed != nil {
		if cfg.Direction != Backward {
			applySeed(c.fwd, g1, g2, seed.Forward, true)
			applySeed(c.fwd, g1, g2, seed.WarmForward, false)
		}
		switch cfg.Direction {
		case Backward:
			applySeed(c.fwd, g1, g2, seed.Backward, true)
			applySeed(c.fwd, g1, g2, seed.WarmBackward, false)
		case Both:
			applySeed(c.bwd, g1, g2, seed.Backward, true)
			applySeed(c.bwd, g1, g2, seed.WarmBackward, false)
		}
	}
	return c, nil
}

func applySeed(e *dirEngine, g1, g2 *depgraph.Graph, values map[string]map[string]float64, freeze bool) {
	for a, row := range values {
		i, ok := g1.Index[a]
		if !ok || i == 0 {
			continue
		}
		for b, v := range row {
			j, ok := g2.Index[b]
			if !ok || j == 0 {
				continue
			}
			if freeze {
				e.seed(i, j, v)
			} else if !e.frozen[i*e.n2+j] {
				e.cur[e.rowOff[i]+e.colOff[j]] = v
				e.warmed = true
			}
		}
	}
}

// Step performs one iteration round in every direction and reports whether
// the computation has finished. Calling Step after completion is a no-op
// that returns true. A non-nil error wraps ErrStopped: the stop hook aborted
// the round and the computation must not be used further.
func (c *Computation) Step() (done bool, err error) {
	if c.finished() {
		return true, nil
	}
	done = true
	for _, e := range c.engines() {
		if e.iterDone() {
			continue
		}
		delta, err := e.step()
		if err != nil {
			return false, err
		}
		if !e.doneAfter(delta) && !e.iterDone() {
			done = false
		}
	}
	return done, nil
}

// Finish completes the computation: any remaining exact rounds are skipped
// and, in estimation mode or after a fast-path cutover, the closed-form
// estimate is applied (followed by the fast path's certifying residual
// pass). Use it after deciding not to abort a stepwise computation.
// Idempotent.
func (c *Computation) Finish() error {
	for _, e := range c.engines() {
		if err := e.finish(); err != nil {
			return err
		}
	}
	return nil
}

// Run iterates every direction to completion (including estimation when
// configured). The two directions are independent fixpoints, so with
// Direction == Both they run concurrently. A panic on a direction goroutine
// is re-raised here as an *EnginePanic so callers can contain it; a stop
// requested through Config.Stop surfaces as an error wrapping ErrStopped.
// When Config.Checkpoint or Config.Observer is set, Run instead drives the
// directions in lockstep so it can hand out consistent round snapshots and
// observations — the numbers are identical either way (Jacobi rounds depend
// only on the previous matrix).
func (c *Computation) Run() error {
	if c.cfg.Checkpoint != nil || c.cfg.Observer != nil {
		return c.runLockstep()
	}
	engines := c.engines()
	dirs := c.directions()
	if len(engines) == 1 {
		defer c.span("direction:" + dirs[0].String())()
		return engines[0].run()
	}
	var wg sync.WaitGroup
	var panicked atomic.Pointer[EnginePanic]
	errs := make([]error, len(engines))
	for i, e := range engines {
		wg.Add(1)
		go func(i int, e *dirEngine) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, asEnginePanic(r))
				}
			}()
			defer c.span("direction:" + dirs[i].String())()
			errs[i] = e.run()
		}(i, e)
	}
	wg.Wait()
	if ep := panicked.Load(); ep != nil {
		panic(ep)
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// AvgUpperBound returns an upper bound on the average similarity over all
// real event pairs, given the rounds performed so far (Proposition 6 /
// Corollary 7). With Direction == Both it is the average of the two
// per-direction bounds, which bounds the average of the two averages.
func (c *Computation) AvgUpperBound() (float64, error) {
	if c.realPairs == 0 {
		return 0, nil
	}
	var sum float64
	engines := c.engines()
	for _, e := range engines {
		s, err := e.upperBoundSum()
		if err != nil {
			return 0, err
		}
		sum += s
	}
	return sum / float64(len(engines)) / float64(c.realPairs), nil
}

// Evaluations returns the number of formula-(1) evaluations so far.
func (c *Computation) Evaluations() int {
	n := 0
	for _, e := range c.engines() {
		n += e.evals
	}
	return n
}

// Result assembles the current similarity matrices. In estimation mode the
// estimate is applied first if pending. Once any direction engine has been
// stopped, Result refuses to publish the partial matrices and returns the
// latched stop error instead.
func (c *Computation) Result() (*Result, error) {
	for _, e := range c.engines() {
		if err := e.stopErr(); err != nil {
			return nil, err
		}
	}
	if err := c.Finish(); err != nil {
		return nil, err
	}
	r := &Result{
		Names1:      c.names1,
		Names2:      c.names2,
		Evaluations: c.Evaluations(),
	}
	for _, e := range c.engines() {
		if e.round > r.Rounds {
			r.Rounds = e.round
		}
		if e.estimated {
			r.Estimated = true
		}
		if e.errorBound > r.ErrorBound {
			r.ErrorBound = e.errorBound
		}
		r.Pruned += e.totalPruned
	}
	r.Converged = true
	for _, e := range c.engines() {
		if !e.converged && !e.estimated && e.round >= c.cfg.MaxRounds {
			r.Converged = false
		}
	}
	switch c.cfg.Direction {
	case Forward:
		r.Forward = c.fwd.realMatrix()
		r.Sim = r.Forward
	case Backward:
		r.Backward = c.fwd.realMatrix()
		r.Sim = r.Backward
	case Both:
		r.Forward = c.fwd.realMatrix()
		r.Backward = c.bwd.realMatrix()
		r.Sim = make([]float64, len(r.Forward))
		for i := range r.Sim {
			r.Sim[i] = (r.Forward[i] + r.Backward[i]) / 2
		}
	}
	return r, nil
}

// span opens a tracing span via the Config.Span hook; a no-op func when the
// hook is unarmed.
func (c *Computation) span(name string) func() {
	if c.cfg.Span == nil {
		return func() {}
	}
	return c.cfg.Span(name)
}

func (c *Computation) engines() []*dirEngine {
	if c.bwd != nil {
		return []*dirEngine{c.fwd, c.bwd}
	}
	return []*dirEngine{c.fwd}
}

func (c *Computation) finished() bool {
	for _, e := range c.engines() {
		if !e.iterDone() {
			return false
		}
	}
	return true
}

// ExactEstimationTradeoff is Algorithm 1 of the paper: I exact iteration
// rounds followed by the closed-form estimation. It is a convenience wrapper
// over Compute with EstimateI set.
func ExactEstimationTradeoff(g1, g2 *depgraph.Graph, cfg Config, iterations int) (*Result, error) {
	if iterations < 0 {
		return nil, fmt.Errorf("core: iterations must be >= 0, got %d", iterations)
	}
	cfg.EstimateI = iterations
	return Compute(g1, g2, cfg)
}
