package core

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/depgraph"
)

// dirEngine computes the forward similarity of Definition 2 for one
// direction between two dependency graphs that both carry the artificial
// event at index 0. Backward similarity is obtained by constructing a
// dirEngine over the reversed graphs.
type dirEngine struct {
	g1, g2 *depgraph.Graph
	cfg    Config

	n1, n2 int
	// lab[i*n2+j] is the label similarity of vertex i of g1 and j of g2
	// (zero rows/columns for the artificial vertices).
	lab []float64
	// l1, l2 are the longest distances l(v) from the artificial event.
	l1, l2 []int
	// cur and prev are the S^i and S^{i-1} matrices over all vertex pairs,
	// stored either row-major or as flat blocked 64x64 tiles (Config.Tiled).
	// The layout is abstracted by the offset tables below: the cell (i,j)
	// lives at rowOff[i]+colOff[j] in either layout, so the hot loops are
	// layout-free and results are bit-identical across layouts.
	cur, prev []float64
	// rowOff and colOff are the layout offset tables; matLen is the backing
	// length of cur/prev (padded to whole tiles when tiled).
	rowOff, colOff []int
	matLen         int
	// preRow1[v1][i] = rowOff[g1.Pre[v1][i]] and preCol2[v2][j] =
	// colOff[g2.Pre[v2][j]]: the pre-sets pre-translated into matrix
	// offsets, so the innermost similarity loop does one add per cell
	// instead of an index computation.
	preRow1, preCol2 [][]int
	// inF1[v]/inF2[v] are the in-edge frequencies aligned with Pre[v],
	// extracted once from the EdgeFreq maps so the agreement-cache build is
	// pure arithmetic instead of millions of map lookups.
	inF1, inF2 [][]float64
	// frozen marks pairs that must never be updated: pairs involving an
	// artificial event, and pairs seeded from a previous result whose value
	// is provably unchanged (Proposition 4). Indexed logically (i*n2+j).
	frozen []bool

	// Agreement cache. The edge-agreement factor C(...) = c*(1-|f1-f2|/(f1+f2))
	// depends only on the two edge frequencies, and a graph has few distinct
	// in-edge frequencies, so the cache is deduplicated by f1:
	// agreeRows[fIdx1[v1][i]][aOff2[v2]+j] is the factor for the i-th
	// in-neighbor of v1 against the j-th in-neighbor of v2. That is
	// |distinct f1| x E2 entries instead of E1 x E2 — typically a few MB
	// that stay cache-hot across rounds instead of tens of MB streamed cold
	// every round — and the build does one division per table cell instead
	// of one per edge pair. agreeRows is nil when even the deduplicated
	// table would exceed agreeCacheLimit (see buildAgreementCache).
	agreeRows [][]float64
	fIdx1     [][]int32
	aOff2     []int32

	// workers is the effective worker count; pool is nil when workers == 1
	// (the serial path). The pool is shared with the other direction's
	// engine of the same Computation.
	workers int
	pool    *rowPool
	// bufs[w] is the oneSides scratch of worker w; deltaW[w] and evalW[w]
	// accumulate worker w's max increment and evaluation count of a round.
	// Rows are distributed over workers, so every per-pair write lands in a
	// disjoint location and the only cross-worker reductions are max and
	// integer sum — both order-independent, keeping results bit-identical to
	// the serial path.
	bufs   [][]float64
	deltaW []float64
	evalW  []int
	// rowSum[v1] holds the per-row partial of upperBoundSum; summing rows in
	// index order makes the bound independent of the partition too.
	rowSum []float64

	// stopped latches the first StopError observed by any goroutine of this
	// engine; once set, every later check returns it without re-invoking the
	// hook, and partially written matrices are never published.
	stopped atomic.Pointer[StopError]

	round     int
	evals     int // number of formula-(1) evaluations performed
	converged bool
	estimated bool
	// roundEvals and roundPruned are the latest round's evaluation and
	// prune-skip counts, surfaced through Config.Observer; totalPruned
	// accumulates the skips. activePairs caches the non-frozen pair count
	// (computed lazily at the first step, after seeding settles): every
	// active pair is either evaluated or prune-skipped in a round, so
	// pruned = activePairs - roundEvals without touching the hot loop.
	roundEvals  int
	roundPruned int
	totalPruned int
	activePairs int
	// lastDelta is the maximum pair increment observed in the latest round.
	// Lemma 5's induction step shows increments contract by alpha*c per
	// round, so all future growth is bounded by lastDelta*ac/(1-ac) — a
	// much tighter upper-bound ingredient than (alpha*c)^round once the
	// iteration is nearly converged.
	lastDelta float64
	warmed    bool // a warm start voids increment-based bounds
	// bound is min over the graphs of the max finite l(v); Infinite when a
	// cycle makes both sides unbounded.
	bound int

	// Fast-path state (Config.FastPath). fast is armed when FastPath is on
	// and no explicit EstimateI overrides it; budget is the resolved error
	// budget and tol the derived per-pair freeze tolerance. small[i*n2+j]
	// counts the pair's consecutive rounds with increment <= tol; at
	// fastFreezeStreak the pair is deactivated (smallFrozen) and skipped —
	// the adaptive per-pair pruning that fires even on cyclic graphs whose
	// Proposition-2 bound is infinite. The cutover detector tracks the
	// global delta trajectory (prevDelta, prevRatio, ratioStreak): all of it
	// is driven by order-independent reductions, so fast-path decisions are
	// bit-identical at every worker count. errorBound is the certified
	// a-posteriori bound once computed (see residualBound); certified
	// latches the residual pass.
	fast        bool
	budget, tol float64
	small       []uint8
	prevDelta   float64
	prevRatio   float64
	ratioStreak int
	cutover     bool
	errorBound  float64
	certified   bool
}

// Tile geometry of the blocked layout (Config.Tiled): 64x64 float64 tiles,
// 32 KiB each — a tile row of cur plus one of prev fit comfortably in L1.
const (
	tileShift = 6
	tileSize  = 1 << tileShift
)

// Fast-path tuning knobs. A pair freezes after fastFreezeStreak consecutive
// rounds with increment <= tol; the ratio-based cutover needs the observed
// decay ratio stable within ratioStabilityTol (relative) for
// ratioStableRounds consecutive rounds before trusting the geometric-tail
// extrapolation.
const (
	smallFrozen       = 0xFF
	fastFreezeStreak  = 2
	ratioStableRounds = 3
	ratioStabilityTol = 0.05
)

// newDirEngine builds the per-direction engine. Both graphs must contain the
// artificial event. pool may be nil (serial) and is shared between the two
// direction engines of a Computation.
func newDirEngine(g1, g2 *depgraph.Graph, cfg Config, pool *rowPool) (*dirEngine, error) {
	if !g1.HasArtificial || !g2.HasArtificial {
		return nil, fmt.Errorf("core: similarity requires graphs with the artificial event (use Graph.AddArtificial)")
	}
	l1, err := g1.LongestFromArtificial()
	if err != nil {
		return nil, err
	}
	l2, err := g2.LongestFromArtificial()
	if err != nil {
		return nil, err
	}
	e := &dirEngine{
		g1: g1, g2: g2, cfg: cfg,
		n1: g1.N(), n2: g2.N(),
		l1: l1, l2: l2,
		pool: pool, workers: 1,
		activePairs: -1,
	}
	if pool != nil {
		e.workers = pool.workers
	}
	e.bufs = make([][]float64, e.workers)
	e.deltaW = make([]float64, e.workers)
	e.evalW = make([]int, e.workers)
	e.buildLayout()
	e.lab = make([]float64, e.n1*e.n2)
	sim := cfg.labels()
	if cfg.Alpha < 1 {
		endSpan := e.span("label-matrix")
		e.forRows(1, e.n1, func(w, lo, hi int) {
			if e.checkStop() != nil {
				return
			}
			for i := lo; i < hi; i++ {
				for j := 1; j < e.n2; j++ {
					e.lab[i*e.n2+j] = sim(g1.Names[i], g2.Names[j])
				}
			}
		})
		endSpan()
	}
	e.cur = make([]float64, e.matLen)
	e.prev = make([]float64, e.matLen)
	e.frozen = make([]bool, e.n1*e.n2)
	// Initialization: S^0(v^X, v^X) = 1; artificial/real pairs stay 0 and
	// are never updated.
	e.cur[0] = 1
	for j := 0; j < e.n2; j++ {
		e.frozen[j] = true
	}
	for i := 0; i < e.n1; i++ {
		e.frozen[i*e.n2] = true
	}
	e.bound = convergenceBound(l1, l2)
	e.fast = cfg.FastPath && cfg.EstimateI < 0
	if e.fast {
		e.budget = cfg.fastPathBudget()
		// tol is the per-pair freeze threshold: a pair whose increment
		// stayed at or below tol for fastFreezeStreak rounds is deactivated.
		// Its pending tail — roughly tol/(1-r) for the observed decay ratio
		// r — stays within the budget for the geometric trajectories the
		// cutover detector requires anyway, and the certifying residual pass
		// measures whatever was actually left behind, so tol trades speed
		// against the certified bound, never against correctness.
		e.tol = e.budget * (1 - cfg.Alpha*cfg.C) / 2
		if e.tol > e.budget/4 {
			e.tol = e.budget / 4
		}
		e.small = make([]uint8, e.n1*e.n2)
		e.prefilterHopeless()
	}
	endSpan := e.span("agreement-cache")
	e.buildAgreementCache()
	endSpan()
	if err := e.stopErr(); err != nil {
		return nil, err
	}
	return e, nil
}

// buildLayout computes the offset tables mapping the logical cell (i,j) to
// rowOff[i]+colOff[j] in the cur/prev backing arrays — plain row-major, or
// flat blocked 64x64 tiles when Config.Tiled. It also pre-translates the
// graphs' pre-sets into matrix offsets for the hot inner loop. The layout
// never changes any arithmetic: the same cells hold the same values, only
// their addresses move.
func (e *dirEngine) buildLayout() {
	e.rowOff = make([]int, e.n1)
	e.colOff = make([]int, e.n2)
	if e.cfg.Tiled {
		// Tiles are laid out band-major: all tiles of rows [0,64) first,
		// then rows [64,128), ... Within a band, tiles follow column order;
		// within a tile, cells are row-major. Dimensions are padded to whole
		// tiles (the padding cells are never addressed).
		tilesPerBand := (e.n2 + tileSize - 1) >> tileShift
		bandStride := tilesPerBand << (2 * tileShift)
		for i := range e.rowOff {
			e.rowOff[i] = (i>>tileShift)*bandStride + (i&(tileSize-1))<<tileShift
		}
		for j := range e.colOff {
			e.colOff[j] = (j>>tileShift)<<(2*tileShift) + j&(tileSize-1)
		}
		bands := (e.n1 + tileSize - 1) >> tileShift
		e.matLen = bands * bandStride
	} else {
		for i := range e.rowOff {
			e.rowOff[i] = i * e.n2
		}
		for j := range e.colOff {
			e.colOff[j] = j
		}
		e.matLen = e.n1 * e.n2
	}
	e.preRow1 = make([][]int, e.n1)
	e.inF1 = make([][]float64, e.n1)
	for v := 1; v < e.n1; v++ {
		pre := e.g1.Pre[v]
		if len(pre) == 0 {
			continue
		}
		offs := make([]int, len(pre))
		fs := make([]float64, len(pre))
		for i, p := range pre {
			offs[i] = e.rowOff[p]
			fs[i] = e.g1.EdgeFreq[p][v]
		}
		e.preRow1[v] = offs
		e.inF1[v] = fs
	}
	e.preCol2 = make([][]int, e.n2)
	e.inF2 = make([][]float64, e.n2)
	for v := 1; v < e.n2; v++ {
		pre := e.g2.Pre[v]
		if len(pre) == 0 {
			continue
		}
		offs := make([]int, len(pre))
		fs := make([]float64, len(pre))
		for j, p := range pre {
			offs[j] = e.colOff[p]
			fs[j] = e.g2.EdgeFreq[p][v]
		}
		e.preCol2[v] = offs
		e.inF2[v] = fs
	}
}

// checkStop consults the cooperative stop hook. The first non-nil cause is
// latched so every later check — from any worker goroutine — returns the
// same typed error without re-invoking the hook. It is called once per round
// and once per row-chunk; a stopped chunk simply returns, leaving matrices
// partially written, which is safe because a stopped computation only ever
// propagates the error and never publishes results.
func (e *dirEngine) checkStop() error {
	if p := e.stopped.Load(); p != nil {
		return p
	}
	if e.cfg.Stop == nil {
		return nil
	}
	if cause := e.cfg.Stop(); cause != nil {
		e.stopped.CompareAndSwap(nil, &StopError{Cause: cause})
		return e.stopped.Load()
	}
	return nil
}

// span opens a tracing span via the Config.Span hook; a no-op func when the
// hook is unarmed.
func (e *dirEngine) span(name string) func() {
	if e.cfg.Span == nil {
		return func() {}
	}
	return e.cfg.Span(name)
}

// stopErr returns the latched stop error without consulting the hook.
func (e *dirEngine) stopErr() error {
	if p := e.stopped.Load(); p != nil {
		return p
	}
	return nil
}

// agreeCacheLimit caps the total number of cached agreement factors
// (|distinct f1| * E2 entries); beyond it the engine computes factors on the
// fly. It is a variable so tests can force the fallback path.
var agreeCacheLimit int64 = 1 << 24

// buildAgreementCache precomputes the deduplicated agreement table: one row
// of E2 factors per distinct in-edge frequency of g1 (frequency indices are
// assigned in deterministic pre-set order). Disabled when the table would
// exceed agreeCacheLimit.
func (e *dirEngine) buildAgreementCache() {
	// Assign a dense index to every distinct in-edge frequency of g1.
	fIdx := make(map[float64]int32)
	var distinct []float64
	e.fIdx1 = make([][]int32, e.n1)
	for v1 := 1; v1 < e.n1; v1++ {
		f1s := e.inF1[v1]
		if len(f1s) == 0 {
			continue
		}
		ids := make([]int32, len(f1s))
		for i, f := range f1s {
			id, ok := fIdx[f]
			if !ok {
				id = int32(len(distinct))
				fIdx[f] = id
				distinct = append(distinct, f)
			}
			ids[i] = id
		}
		e.fIdx1[v1] = ids
	}
	// Per-v2 offsets into each table row: prefix sums of the pre-set sizes.
	e.aOff2 = make([]int32, e.n2)
	e2 := 0
	for v2 := 0; v2 < e.n2; v2++ {
		f2s := e.inF2[v2]
		if v2 == 0 || len(f2s) == 0 {
			e.aOff2[v2] = -1
			continue
		}
		e.aOff2[v2] = int32(e2)
		e2 += len(f2s)
	}
	if int64(len(distinct))*int64(e2) > agreeCacheLimit {
		e.fIdx1, e.aOff2 = nil, nil
		return
	}
	rows := make([][]float64, len(distinct))
	e.forRows(0, len(distinct), func(w, lo, hi int) {
		if e.checkStop() != nil {
			return
		}
		c := e.cfg.C
		for fi := lo; fi < hi; fi++ {
			f1 := distinct[fi]
			row := make([]float64, e2)
			for v2 := 1; v2 < e.n2; v2++ {
				off := e.aOff2[v2]
				if off < 0 {
					continue
				}
				for j, f2 := range e.inF2[v2] {
					// C(...) = c * (1 - |f1-f2|/(f1+f2)), inlined over the
					// pre-extracted frequencies (see edgeAgreement).
					sum := f1 + f2
					if sum == 0 {
						continue
					}
					d := f1 - f2
					if d < 0 {
						d = -d
					}
					row[int(off)+j] = c * (1 - d/sum)
				}
			}
			rows[fi] = row
		}
	})
	e.agreeRows = rows
}

// convergenceBound returns min(max_v1 l(v1), max_v2 l(v2)) over finite
// values, or Infinite when a side has any infinite l... per Proposition 2 the
// whole computation is guaranteed to stop after that many rounds.
func convergenceBound(l1, l2 []int) int {
	maxOf := func(l []int) int {
		m := 0
		for _, v := range l {
			if v > m {
				m = v
			}
		}
		return m
	}
	return min(maxOf(l1), maxOf(l2))
}

// seed fixes the similarity of pair (i,j) to v and freezes it so iteration
// never updates it. Used by composite matching for pairs whose value is
// provably unchanged (Proposition 4).
func (e *dirEngine) seed(i, j int, v float64) {
	e.cur[e.rowOff[i]+e.colOff[j]] = v
	e.frozen[i*e.n2+j] = true
}

// prefilterHopeless deactivates pairs that are provably stuck at zero before
// the first round: a vertex with no in-edges contributes no structural part,
// so a pair involving one evaluates to (1-alpha)*S^L from round 1 on — when
// that label part is zero too, the pair already sits at its fixpoint. The
// filter is exact (it spends no error budget; the certifying residual pass
// still re-evaluates the pairs). Graphs straight from AddArtificial give
// every real vertex an artificial in-edge, so this fires only on degenerate
// inputs such as frequency-filtered graphs with isolated vertices.
func (e *dirEngine) prefilterHopeless() {
	empty1 := make([]bool, e.n1)
	any := false
	for v1 := 1; v1 < e.n1; v1++ {
		if len(e.g1.Pre[v1]) == 0 {
			empty1[v1] = true
			any = true
		}
	}
	empty2 := make([]bool, e.n2)
	for v2 := 1; v2 < e.n2; v2++ {
		if len(e.g2.Pre[v2]) == 0 {
			empty2[v2] = true
			any = true
		}
	}
	if !any {
		return
	}
	for v1 := 1; v1 < e.n1; v1++ {
		row := v1 * e.n2
		for v2 := 1; v2 < e.n2; v2++ {
			if (empty1[v1] || empty2[v2]) && e.lab[row+v2] == 0 {
				e.small[row+v2] = smallFrozen
			}
		}
	}
}

// edgeAgreement returns C(v1,v1',v2,v2') = c * (1 - |f1-f2|/(f1+f2)) for the
// in-edges (p1,v1) of g1 and (p2,v2) of g2. Both edges must exist.
func (e *dirEngine) edgeAgreement(p1, v1, p2, v2 int) float64 {
	f1 := e.g1.EdgeFreq[p1][v1]
	f2 := e.g2.EdgeFreq[p2][v2]
	sum := f1 + f2
	if sum == 0 {
		return 0
	}
	return e.cfg.C * (1 - math.Abs(f1-f2)/sum)
}

// oneSides computes s(v1,v2) and s(v2,v1) of Definition 2 from the prev
// matrix in one pass: for each in-neighbor of one event, the best
// edge-weighted similarity against the in-neighbors of the other, averaged.
// w selects the calling worker's scratch buffer.
func (e *dirEngine) oneSides(v1, v2, w int) (s12, s21 float64) {
	rows := e.preRow1[v1]
	cols := e.preCol2[v2]
	if len(rows) == 0 || len(cols) == 0 {
		return 0, 0
	}
	if e.agreeRows != nil {
		if off := e.aOff2[v2]; off >= 0 {
			fids := e.fIdx1[v1]
			best2 := e.bufs[w]
			if cap(best2) < len(cols) {
				best2 = make([]float64, len(cols))
			} else {
				best2 = best2[:len(cols)]
				for j := range best2 {
					best2[j] = 0
				}
			}
			// Branchless inner kernel: a zero prev entry yields v = 0, which
			// never beats the (non-negative) running maxima, so the products
			// are computed unconditionally — same numbers, no data-dependent
			// branch. Reslicing the agreement row per outer step lets the
			// compiler drop the bounds checks on r[j] and best2[j].
			prev := e.prev
			var sum1 float64
			for i, base := range rows {
				r := e.agreeRows[fids[i]][off : int(off)+len(cols)]
				best := 0.0
				for j, c := range cols {
					v := r[j] * prev[base+c]
					best = max(best, v)
					best2[j] = max(best2[j], v)
				}
				sum1 += best
			}
			var sum2 float64
			for _, b := range best2 {
				sum2 += b
			}
			e.bufs[w] = best2
			return sum1 / float64(len(rows)), sum2 / float64(len(cols))
		}
	}
	// Fallback without the agreement cache.
	pre1 := e.g1.Pre[v1]
	pre2 := e.g2.Pre[v2]
	var sum1 float64
	best2 := make([]float64, len(pre2))
	for i, p1 := range pre1 {
		base := rows[i]
		best := 0.0
		for j, p2 := range pre2 {
			if s := e.prev[base+cols[j]]; s != 0 {
				v := e.edgeAgreement(p1, v1, p2, v2) * s
				if v > best {
					best = v
				}
				if v > best2[j] {
					best2[j] = v
				}
			}
		}
		sum1 += best
	}
	var sum2 float64
	for _, b := range best2 {
		sum2 += b
	}
	return sum1 / float64(len(pre1)), sum2 / float64(len(pre2))
}

// step performs one iteration round (formula (1)) over all non-frozen real
// pairs and returns the maximum absolute change. When pruning is enabled,
// pairs already past their convergence bound are skipped. A stop requested
// via Config.Stop aborts the round — checked once at round start and once
// per row-chunk — and returns the latched StopError.
//
// The round is a Jacobi update: every pair reads only the immutable prev
// matrix, so rows are distributed over the worker pool. Within a row the
// float additions happen in the same order as the serial path, cur writes
// are disjoint, and the cross-row reductions (max increment, evaluation
// count) are order-independent — results are bit-identical for any worker
// count.
func (e *dirEngine) step() (float64, error) {
	e.round++
	fireFailpoint(e.round)
	if err := e.checkStop(); err != nil {
		return 0, err
	}
	copy(e.prev, e.cur)
	for w := 0; w < e.workers; w++ {
		e.deltaW[w] = 0
		e.evalW[w] = 0
	}
	fast := e.fast
	e.forRows(1, e.n1, func(w, lo, hi int) {
		if e.checkStop() != nil {
			return
		}
		var maxDelta float64
		evals := 0
		for v1 := lo; v1 < hi; v1++ {
			row := v1 * e.n2
			mrow := e.rowOff[v1]
			for v2 := 1; v2 < e.n2; v2++ {
				idx := row + v2
				if e.frozen[idx] {
					continue
				}
				if fast && e.small[idx] == smallFrozen {
					continue
				}
				if e.cfg.Prune && e.round > min(e.l1[v1], e.l2[v2]) {
					continue
				}
				s12, s21 := e.oneSides(v1, v2, w)
				v := e.cfg.Alpha*(s12+s21)/2 + (1-e.cfg.Alpha)*e.lab[idx]
				evals++
				midx := mrow + e.colOff[v2]
				d := math.Abs(v - e.prev[midx])
				if d > maxDelta {
					maxDelta = d
				}
				e.cur[midx] = v
				if fast {
					// Track the pair's own increment: two consecutive rounds
					// at or below tol deactivate it for the rest of the run
					// (the unapplied tail is covered by the error budget and
					// certified by the residual pass).
					if d <= e.tol {
						if s := e.small[idx] + 1; s >= fastFreezeStreak {
							e.small[idx] = smallFrozen
						} else {
							e.small[idx] = s
						}
					} else if e.small[idx] != 0 {
						e.small[idx] = 0
					}
				}
			}
		}
		if maxDelta > e.deltaW[w] {
			e.deltaW[w] = maxDelta
		}
		e.evalW[w] += evals
	})
	if err := e.stopErr(); err != nil {
		return 0, err
	}
	var maxDelta float64
	for _, d := range e.deltaW {
		if d > maxDelta {
			maxDelta = d
		}
	}
	roundEvals := 0
	for _, n := range e.evalW {
		roundEvals += n
	}
	e.evals += roundEvals
	e.roundEvals = roundEvals
	if e.activePairs < 0 {
		// First round: the frozen set is final now (seeding happens before
		// iteration), so count the active pairs once.
		n := 0
		for _, f := range e.frozen {
			if !f {
				n++
			}
		}
		e.activePairs = n
	}
	e.roundPruned = e.activePairs - roundEvals
	e.totalPruned += e.roundPruned
	e.lastDelta = maxDelta
	if e.fast && !e.cutover {
		e.updateCutover(maxDelta)
	}
	return maxDelta, nil
}

// updateCutover decides, from the round's global max increment, whether the
// fast path may stop iterating exactly and hand over to the closed-form
// estimate. Two triggers:
//
//   - Contraction bound (rigorous): formula (1) is an (alpha*c)-contraction
//     in the sup norm, so the distance to the fixpoint is at most
//     delta*ac/(1-ac) (Banach). Once that is within half the budget, the
//     remaining rounds cannot move any pair meaningfully.
//   - Geometric tail (heuristic, certified afterwards): when the observed
//     decay ratio r = delta_k/delta_{k-1} has been stable for
//     ratioStableRounds rounds, the remaining change extrapolates to
//     delta*r/(1-r); cutting over once that is within the budget is the
//     adaptive version of hand-picking EstimateI. It may fire earlier than
//     the contraction bound because the fitted estimate applies most of the
//     extrapolated tail instead of discarding it, and the publishing
//     residual pass contracts the remaining error by another factor ac. The
//     residual pass (residualBound) certifies the actual error either way.
//
// Both triggers read only the order-independent global max delta, so the
// cutover round is identical at every worker count.
func (e *dirEngine) updateCutover(delta float64) {
	defer func() { e.prevDelta = delta }()
	if e.round < 2 {
		return // the per-pair fit needs two exact iterates
	}
	ac := e.cfg.Alpha * e.cfg.C
	half := e.budget / 2
	if ac < 1 && delta*ac/(1-ac) <= half {
		e.cutover = true
		return
	}
	if e.prevDelta <= 0 {
		e.prevRatio = 0
		e.ratioStreak = 0
		return
	}
	r := delta / e.prevDelta
	if r < 1 && e.prevRatio > 0 && math.Abs(r-e.prevRatio) <= ratioStabilityTol*e.prevRatio {
		e.ratioStreak++
	} else {
		e.ratioStreak = 0
	}
	e.prevRatio = r
	if e.ratioStreak >= ratioStableRounds-1 && r < 1 && delta*r/(1-r) <= e.budget {
		e.cutover = true
	}
}

// done reports whether iteration may stop: epsilon convergence, the
// early-convergence bound, or the hard round cap.
func (e *dirEngine) doneAfter(delta float64) bool {
	if delta <= e.cfg.Epsilon {
		e.converged = true
		return true
	}
	if e.cfg.Prune && e.bound != depgraph.Infinite && e.round >= e.bound {
		e.converged = true
		return true
	}
	return e.round >= e.cfg.MaxRounds
}

// iterLimit is the exact-round cap: MaxRounds, lowered to EstimateI when
// Algorithm 1 fixes the cutover round.
func (e *dirEngine) iterLimit() int {
	limit := e.cfg.MaxRounds
	if e.cfg.EstimateI >= 0 && e.cfg.EstimateI < limit {
		limit = e.cfg.EstimateI
	}
	return limit
}

// iterDone reports whether exact iteration is over: epsilon/bound
// convergence, the round cap, or the fast path's adaptive cutover.
func (e *dirEngine) iterDone() bool {
	return e.converged || e.cutover || e.round >= e.iterLimit()
}

// run iterates to completion, honoring the exact/estimation trade-off when
// cfg.EstimateI >= 0 (Algorithm 1) and the adaptive fast path (FastPath).
// It returns the StopError when the computation was aborted through
// Config.Stop.
func (e *dirEngine) run() error {
	// A checkpoint-restored engine may already be converged (or past its
	// cutover) with round < limit; stepping it again would perturb the
	// published values.
	for !e.iterDone() {
		delta, err := e.step()
		if err != nil {
			return err
		}
		if e.doneAfter(delta) {
			break
		}
	}
	return e.finish()
}

// finish completes the non-iterative tail of a run: the closed-form
// estimation pass when one is owed (explicit EstimateI, or a fast-path
// cutover) and, on the fast path, the residual pass that certifies the
// error bound. Idempotent — estimate and residualBound both latch.
func (e *dirEngine) finish() error {
	if !e.converged && (e.cfg.EstimateI >= 0 || e.cutover) {
		if err := e.estimate(); err != nil {
			return err
		}
	}
	if e.fast {
		return e.residualBound()
	}
	return nil
}

// estimate applies the closed-form estimation of Section 3.5 to every pair
// that has not converged after the exact rounds: with A = |•v1|, B = |•v2|,
// q = alpha*c*(2AB-A-B)/(2AB) and a = alpha*(A+B)/(2AB)*C_x + (1-alpha)*S^L,
// the estimate after h rounds is q^(h-I)*S^I + a*(1-q^(h-I))/(1-q), where
// C_x is the edge-agreement of the artificial in-edges and h is the pair's
// convergence bound min(l(v1), l(v2)) (the limit a/(1-q) when unbounded).
//
// Two refinements tighten the estimate without leaving the paper's
// framework (the paper leaves the estimation bound as future work):
// the exact S^I is a lower bound of the limit (Theorem 1 monotonicity), so
// the estimate is clamped from below; and when two exact iterates are
// available (I >= 2), the recurrence constant a is fitted per pair from the
// observed step a = S^I - q*S^(I-1) instead of assuming every edge
// agreement reaches its maximum c — the fitted recurrence has the same
// closed form and converges to the exact similarity as I grows.
func (e *dirEngine) estimate() error {
	if e.estimated {
		return e.stopErr()
	}
	e.estimated = true
	if err := e.checkStop(); err != nil {
		return err
	}
	I := e.round
	// At a fast-path cutover the estimate is additionally clamped to a
	// window around the last exact iterate: the contraction argument bounds
	// the true fixpoint within lastDelta*ac/(1-ac) of S^I, so no estimate —
	// however confident the fitted recurrence — may leave that window.
	// Warm starts void monotonicity but not the contraction, so their
	// window is symmetric instead of one-sided.
	fastCut := e.fast && e.cutover
	window := math.Inf(1)
	if fastCut {
		if ac := e.cfg.Alpha * e.cfg.C; ac < 1 {
			window = e.lastDelta * ac / (1 - ac)
		}
	}
	// Each pair's estimate depends only on its own cur/prev entries, so the
	// rows parallelize like step().
	e.forRows(1, e.n1, func(w, lo, hi int) {
		if e.checkStop() != nil {
			return
		}
		for v1 := lo; v1 < hi; v1++ {
			mrow := e.rowOff[v1]
			for v2 := 1; v2 < e.n2; v2++ {
				idx := v1*e.n2 + v2
				if e.frozen[idx] {
					continue
				}
				if fastCut && e.small[idx] == smallFrozen {
					continue // deactivated pair: its tail is inside the budget
				}
				h := min(e.l1[v1], e.l2[v2])
				if h <= I {
					continue // already exact
				}
				midx := mrow + e.colOff[v2]
				a, q := e.estimationCoefficients(v1, v2)
				if I >= 2 {
					if fit := e.cur[midx] - q*e.prev[midx]; fit >= 0 {
						a = fit
					}
				}
				var est float64
				if h == depgraph.Infinite {
					est = a / (1 - q)
				} else {
					pw := math.Pow(q, float64(h-I))
					est = pw*e.cur[midx] + a*(1-pw)/(1-q)
				}
				if est > e.cur[midx]+window {
					est = e.cur[midx] + window
				}
				// The exact S^I is a lower bound of the true similarity
				// (Theorem 1 monotonicity), so never estimate below it —
				// except after a warm start, where the fixpoint may sit
				// below the seeded iterate, bounded by the window.
				floor := e.cur[midx]
				if e.warmed && fastCut {
					floor = e.cur[midx] - window
				}
				if est < floor {
					est = floor
				}
				e.cur[midx] = clamp01(est)
			}
		}
	})
	return e.stopErr()
}

// residualBound certifies the fast path's output: it evaluates one full
// round of formula (1) over the final matrix S and converts the maximum
// residual into the a-posteriori Banach bound, valid for any starting point
// (cold or warm), any freezing heuristic and any estimate — whatever the
// fast path did to get here, the bound holds.
//
// After an estimation pass the computed round F(S) is also published as the
// final matrix: the round has been paid for, and the contraction maps it a
// factor ac closer to the fixpoint, so the certified bound tightens from
// |F(S)-S|/(1-ac) to |F(S)-S|*ac/(1-ac). An epsilon-converged fast run keeps
// S instead (its values must match what convergence reported) and carries
// the plain bound. Either way the result lands in e.errorBound and is
// surfaced as Result.ErrorBound.
func (e *dirEngine) residualBound() error {
	if e.certified {
		return e.stopErr()
	}
	e.certified = true
	if err := e.checkStop(); err != nil {
		return err
	}
	publish := e.estimated
	copy(e.prev, e.cur)
	for w := 0; w < e.workers; w++ {
		e.deltaW[w] = 0
	}
	e.forRows(1, e.n1, func(w, lo, hi int) {
		if e.checkStop() != nil {
			return
		}
		var maxRes float64
		for v1 := lo; v1 < hi; v1++ {
			row := v1 * e.n2
			mrow := e.rowOff[v1]
			for v2 := 1; v2 < e.n2; v2++ {
				idx := row + v2
				if e.frozen[idx] {
					continue
				}
				s12, s21 := e.oneSides(v1, v2, w)
				v := e.cfg.Alpha*(s12+s21)/2 + (1-e.cfg.Alpha)*e.lab[idx]
				midx := mrow + e.colOff[v2]
				if d := math.Abs(v - e.prev[midx]); d > maxRes {
					maxRes = d
				}
				if publish {
					e.cur[midx] = v
				}
			}
		}
		if maxRes > e.deltaW[w] {
			e.deltaW[w] = maxRes
		}
	})
	if err := e.stopErr(); err != nil {
		return err
	}
	var res float64
	for _, d := range e.deltaW {
		if d > res {
			res = d
		}
	}
	e.errorBound = res
	if ac := e.cfg.Alpha * e.cfg.C; ac < 1 {
		if publish {
			e.errorBound = res * ac / (1 - ac)
		} else if ac > 0 {
			e.errorBound = res / (1 - ac)
		}
	}
	return nil
}

// estimationCoefficients returns (a, q) of formula (2) for the pair (v1,v2).
func (e *dirEngine) estimationCoefficients(v1, v2 int) (a, q float64) {
	A := float64(len(e.g1.Pre[v1]))
	B := float64(len(e.g2.Pre[v2]))
	if A == 0 || B == 0 {
		// No structural contribution at all: the fixpoint is the label part.
		return (1 - e.cfg.Alpha) * e.lab[v1*e.n2+v2], 0
	}
	q = e.cfg.Alpha * e.cfg.C * (2*A*B - A - B) / (2 * A * B)
	var cx float64
	_, ok1 := e.g1.Freq(0, v1)
	_, ok2 := e.g2.Freq(0, v2)
	if ok1 && ok2 {
		cx = e.edgeAgreement(0, v1, 0, v2)
	}
	a = e.cfg.Alpha*(A+B)/(2*A*B)*cx + (1-e.cfg.Alpha)*e.lab[v1*e.n2+v2]
	return a, q
}

// upperBoundSum returns the sum over all real pairs of the similarity upper
// bounds after the current round k: S^k + ((ac)^k - (ac)^h)/(1-ac) with
// h = min(l(v1), l(v2)) (Corollary 7), falling back to the unbounded form of
// Proposition 6 when h is infinite, each clamped to 1.
func (e *dirEngine) upperBoundSum() (float64, error) {
	if err := e.checkStop(); err != nil {
		return 0, err
	}
	ac := e.cfg.Alpha * e.cfg.C
	k := float64(e.round)
	ack := math.Pow(ac, k)
	// Increment-contraction cap (Lemma 5 induction): after a round with
	// maximum increment d, future rounds add at most d*(ac + ac^2 + ...).
	// Monotone increments require a cold start, so warm-started engines
	// fall back to the geometric bound alone.
	deltaCap := math.Inf(1)
	if e.round >= 1 && !e.warmed {
		deltaCap = e.lastDelta * ac / (1 - ac)
	}
	// Bounds are accumulated per row and the row partials reduced in index
	// order, so the (non-associative) float sum groups identically for every
	// worker count.
	if e.rowSum == nil {
		e.rowSum = make([]float64, e.n1)
	}
	e.forRows(1, e.n1, func(w, lo, hi int) {
		if e.checkStop() != nil {
			return
		}
		for v1 := lo; v1 < hi; v1++ {
			var sum float64
			mrow := e.rowOff[v1]
			for v2 := 1; v2 < e.n2; v2++ {
				idx := v1*e.n2 + v2
				s := e.cur[mrow+e.colOff[v2]]
				if e.frozen[idx] {
					sum += s
					continue
				}
				h := min(e.l1[v1], e.l2[v2])
				var slack float64
				switch {
				case e.round >= h:
					slack = 0 // converged (Proposition 2)
				case h == depgraph.Infinite:
					slack = ack / (1 - ac)
				default:
					slack = (ack - math.Pow(ac, float64(h))) / (1 - ac)
				}
				if slack > deltaCap {
					slack = deltaCap
				}
				b := s + slack
				if b > 1 {
					b = 1
				}
				sum += b
			}
			e.rowSum[v1] = sum
		}
	})
	if err := e.stopErr(); err != nil {
		return 0, err
	}
	var sum float64
	for v1 := 1; v1 < e.n1; v1++ {
		sum += e.rowSum[v1]
	}
	return sum, nil
}

// realMatrix extracts the similarity matrix restricted to real events
// (dropping the artificial row and column).
func (e *dirEngine) realMatrix() []float64 {
	r1, r2 := e.n1-1, e.n2-1
	out := make([]float64, r1*r2)
	for i := 0; i < r1; i++ {
		mrow := e.rowOff[i+1]
		for j := 0; j < r2; j++ {
			out[i*r2+j] = e.cur[mrow+e.colOff[j+1]]
		}
	}
	return out
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
