package core

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/depgraph"
)

// dirEngine computes the forward similarity of Definition 2 for one
// direction between two dependency graphs that both carry the artificial
// event at index 0. Backward similarity is obtained by constructing a
// dirEngine over the reversed graphs.
type dirEngine struct {
	g1, g2 *depgraph.Graph
	cfg    Config

	n1, n2 int
	// lab[i*n2+j] is the label similarity of vertex i of g1 and j of g2
	// (zero rows/columns for the artificial vertices).
	lab []float64
	// l1, l2 are the longest distances l(v) from the artificial event.
	l1, l2 []int
	// cur and prev are the S^i and S^{i-1} matrices over all vertex pairs.
	cur, prev []float64
	// frozen marks pairs that must never be updated: pairs involving an
	// artificial event, and pairs seeded from a previous result whose value
	// is provably unchanged (Proposition 4).
	frozen []bool

	// agree caches the edge-agreement factors C(v1,v1',v2,v2') for every
	// pair (v1,v2): agree[v1*n2+v2][i*|pre2|+j] is the factor for the i-th
	// in-neighbor of v1 against the j-th in-neighbor of v2. The factors are
	// constant across rounds, so caching removes all map lookups and
	// floating-point recomputation from the hot loop. nil when the graphs
	// are too large for the cache (see agreeCacheLimit).
	agree [][]float64

	// workers is the effective worker count; pool is nil when workers == 1
	// (the serial path). The pool is shared with the other direction's
	// engine of the same Computation.
	workers int
	pool    *rowPool
	// bufs[w] is the oneSides scratch of worker w; deltaW[w] and evalW[w]
	// accumulate worker w's max increment and evaluation count of a round.
	// Rows are distributed over workers, so every per-pair write lands in a
	// disjoint location and the only cross-worker reductions are max and
	// integer sum — both order-independent, keeping results bit-identical to
	// the serial path.
	bufs   [][]float64
	deltaW []float64
	evalW  []int
	// rowSum[v1] holds the per-row partial of upperBoundSum; summing rows in
	// index order makes the bound independent of the partition too.
	rowSum []float64

	// stopped latches the first StopError observed by any goroutine of this
	// engine; once set, every later check returns it without re-invoking the
	// hook, and partially written matrices are never published.
	stopped atomic.Pointer[StopError]

	round     int
	evals     int // number of formula-(1) evaluations performed
	converged bool
	estimated bool
	// roundEvals and roundPruned are the latest round's evaluation and
	// prune-skip counts, surfaced through Config.Observer; totalPruned
	// accumulates the skips. activePairs caches the non-frozen pair count
	// (computed lazily at the first step, after seeding settles): every
	// active pair is either evaluated or prune-skipped in a round, so
	// pruned = activePairs - roundEvals without touching the hot loop.
	roundEvals  int
	roundPruned int
	totalPruned int
	activePairs int
	// lastDelta is the maximum pair increment observed in the latest round.
	// Lemma 5's induction step shows increments contract by alpha*c per
	// round, so all future growth is bounded by lastDelta*ac/(1-ac) — a
	// much tighter upper-bound ingredient than (alpha*c)^round once the
	// iteration is nearly converged.
	lastDelta float64
	warmed    bool // a warm start voids increment-based bounds
	// bound is min over the graphs of the max finite l(v); Infinite when a
	// cycle makes both sides unbounded.
	bound int
}

// newDirEngine builds the per-direction engine. Both graphs must contain the
// artificial event. pool may be nil (serial) and is shared between the two
// direction engines of a Computation.
func newDirEngine(g1, g2 *depgraph.Graph, cfg Config, pool *rowPool) (*dirEngine, error) {
	if !g1.HasArtificial || !g2.HasArtificial {
		return nil, fmt.Errorf("core: similarity requires graphs with the artificial event (use Graph.AddArtificial)")
	}
	l1, err := g1.LongestFromArtificial()
	if err != nil {
		return nil, err
	}
	l2, err := g2.LongestFromArtificial()
	if err != nil {
		return nil, err
	}
	e := &dirEngine{
		g1: g1, g2: g2, cfg: cfg,
		n1: g1.N(), n2: g2.N(),
		l1: l1, l2: l2,
		pool: pool, workers: 1,
		activePairs: -1,
	}
	if pool != nil {
		e.workers = pool.workers
	}
	e.bufs = make([][]float64, e.workers)
	e.deltaW = make([]float64, e.workers)
	e.evalW = make([]int, e.workers)
	e.lab = make([]float64, e.n1*e.n2)
	sim := cfg.labels()
	if cfg.Alpha < 1 {
		endSpan := e.span("label-matrix")
		e.forRows(1, e.n1, func(w, lo, hi int) {
			if e.checkStop() != nil {
				return
			}
			for i := lo; i < hi; i++ {
				for j := 1; j < e.n2; j++ {
					e.lab[i*e.n2+j] = sim(g1.Names[i], g2.Names[j])
				}
			}
		})
		endSpan()
	}
	e.cur = make([]float64, e.n1*e.n2)
	e.prev = make([]float64, e.n1*e.n2)
	e.frozen = make([]bool, e.n1*e.n2)
	// Initialization: S^0(v^X, v^X) = 1; artificial/real pairs stay 0 and
	// are never updated.
	e.cur[0] = 1
	for j := 0; j < e.n2; j++ {
		e.frozen[j] = true
	}
	for i := 0; i < e.n1; i++ {
		e.frozen[i*e.n2] = true
	}
	e.bound = convergenceBound(l1, l2)
	endSpan := e.span("agreement-cache")
	e.buildAgreementCache()
	endSpan()
	if err := e.stopErr(); err != nil {
		return nil, err
	}
	return e, nil
}

// checkStop consults the cooperative stop hook. The first non-nil cause is
// latched so every later check — from any worker goroutine — returns the
// same typed error without re-invoking the hook. It is called once per round
// and once per row-chunk; a stopped chunk simply returns, leaving matrices
// partially written, which is safe because a stopped computation only ever
// propagates the error and never publishes results.
func (e *dirEngine) checkStop() error {
	if p := e.stopped.Load(); p != nil {
		return p
	}
	if e.cfg.Stop == nil {
		return nil
	}
	if cause := e.cfg.Stop(); cause != nil {
		e.stopped.CompareAndSwap(nil, &StopError{Cause: cause})
		return e.stopped.Load()
	}
	return nil
}

// span opens a tracing span via the Config.Span hook; a no-op func when the
// hook is unarmed.
func (e *dirEngine) span(name string) func() {
	if e.cfg.Span == nil {
		return func() {}
	}
	return e.cfg.Span(name)
}

// stopErr returns the latched stop error without consulting the hook.
func (e *dirEngine) stopErr() error {
	if p := e.stopped.Load(); p != nil {
		return p
	}
	return nil
}

// agreeCacheLimit caps the total number of cached agreement factors
// (E1 * E2 entries); beyond it the engine computes factors on the fly. It
// is a variable so tests can force the fallback path.
var agreeCacheLimit int64 = 1 << 24

// buildAgreementCache precomputes the edge-agreement factors for every real
// pair unless the graphs are too large.
func (e *dirEngine) buildAgreementCache() {
	if int64(e.g1.EdgeCount())*int64(e.g2.EdgeCount()) > agreeCacheLimit {
		return
	}
	e.agree = make([][]float64, e.n1*e.n2)
	e.forRows(1, e.n1, func(w, lo, hi int) {
		if e.checkStop() != nil {
			return
		}
		for v1 := lo; v1 < hi; v1++ {
			pre1 := e.g1.Pre[v1]
			for v2 := 1; v2 < e.n2; v2++ {
				pre2 := e.g2.Pre[v2]
				if len(pre1) == 0 || len(pre2) == 0 {
					continue
				}
				row := make([]float64, len(pre1)*len(pre2))
				for i, p1 := range pre1 {
					for j, p2 := range pre2 {
						row[i*len(pre2)+j] = e.edgeAgreement(p1, v1, p2, v2)
					}
				}
				e.agree[v1*e.n2+v2] = row
			}
		}
	})
}

// convergenceBound returns min(max_v1 l(v1), max_v2 l(v2)) over finite
// values, or Infinite when a side has any infinite l... per Proposition 2 the
// whole computation is guaranteed to stop after that many rounds.
func convergenceBound(l1, l2 []int) int {
	maxOf := func(l []int) int {
		m := 0
		for _, v := range l {
			if v > m {
				m = v
			}
		}
		return m
	}
	return min(maxOf(l1), maxOf(l2))
}

// seed fixes the similarity of pair (i,j) to v and freezes it so iteration
// never updates it. Used by composite matching for pairs whose value is
// provably unchanged (Proposition 4).
func (e *dirEngine) seed(i, j int, v float64) {
	e.cur[i*e.n2+j] = v
	e.frozen[i*e.n2+j] = true
}

// edgeAgreement returns C(v1,v1',v2,v2') = c * (1 - |f1-f2|/(f1+f2)) for the
// in-edges (p1,v1) of g1 and (p2,v2) of g2. Both edges must exist.
func (e *dirEngine) edgeAgreement(p1, v1, p2, v2 int) float64 {
	f1 := e.g1.EdgeFreq[p1][v1]
	f2 := e.g2.EdgeFreq[p2][v2]
	sum := f1 + f2
	if sum == 0 {
		return 0
	}
	return e.cfg.C * (1 - math.Abs(f1-f2)/sum)
}

// oneSides computes s(v1,v2) and s(v2,v1) of Definition 2 from the prev
// matrix in one pass: for each in-neighbor of one event, the best
// edge-weighted similarity against the in-neighbors of the other, averaged.
// w selects the calling worker's scratch buffer.
func (e *dirEngine) oneSides(v1, v2, w int) (s12, s21 float64) {
	pre1 := e.g1.Pre[v1]
	pre2 := e.g2.Pre[v2]
	if len(pre1) == 0 || len(pre2) == 0 {
		return 0, 0
	}
	if cache := e.agree; cache != nil {
		row := cache[v1*e.n2+v2]
		best2 := e.bufs[w]
		if cap(best2) < len(pre2) {
			best2 = make([]float64, len(pre2))
		} else {
			best2 = best2[:len(pre2)]
			for j := range best2 {
				best2[j] = 0
			}
		}
		var sum1 float64
		k := 0
		for _, p1 := range pre1 {
			base := p1 * e.n2
			best := 0.0
			for j, p2 := range pre2 {
				if s := e.prev[base+p2]; s != 0 {
					v := row[k+j] * s
					if v > best {
						best = v
					}
					if v > best2[j] {
						best2[j] = v
					}
				}
			}
			sum1 += best
			k += len(pre2)
		}
		var sum2 float64
		for _, b := range best2 {
			sum2 += b
		}
		e.bufs[w] = best2
		return sum1 / float64(len(pre1)), sum2 / float64(len(pre2))
	}
	// Fallback without the agreement cache.
	var sum1 float64
	best2 := make([]float64, len(pre2))
	for _, p1 := range pre1 {
		best := 0.0
		for j, p2 := range pre2 {
			if s := e.prev[p1*e.n2+p2]; s != 0 {
				v := e.edgeAgreement(p1, v1, p2, v2) * s
				if v > best {
					best = v
				}
				if v > best2[j] {
					best2[j] = v
				}
			}
		}
		sum1 += best
	}
	var sum2 float64
	for _, b := range best2 {
		sum2 += b
	}
	return sum1 / float64(len(pre1)), sum2 / float64(len(pre2))
}

// step performs one iteration round (formula (1)) over all non-frozen real
// pairs and returns the maximum absolute change. When pruning is enabled,
// pairs already past their convergence bound are skipped. A stop requested
// via Config.Stop aborts the round — checked once at round start and once
// per row-chunk — and returns the latched StopError.
//
// The round is a Jacobi update: every pair reads only the immutable prev
// matrix, so rows are distributed over the worker pool. Within a row the
// float additions happen in the same order as the serial path, cur writes
// are disjoint, and the cross-row reductions (max increment, evaluation
// count) are order-independent — results are bit-identical for any worker
// count.
func (e *dirEngine) step() (float64, error) {
	e.round++
	fireFailpoint(e.round)
	if err := e.checkStop(); err != nil {
		return 0, err
	}
	copy(e.prev, e.cur)
	for w := 0; w < e.workers; w++ {
		e.deltaW[w] = 0
		e.evalW[w] = 0
	}
	e.forRows(1, e.n1, func(w, lo, hi int) {
		if e.checkStop() != nil {
			return
		}
		var maxDelta float64
		evals := 0
		for v1 := lo; v1 < hi; v1++ {
			row := v1 * e.n2
			for v2 := 1; v2 < e.n2; v2++ {
				idx := row + v2
				if e.frozen[idx] {
					continue
				}
				if e.cfg.Prune && e.round > min(e.l1[v1], e.l2[v2]) {
					continue
				}
				s12, s21 := e.oneSides(v1, v2, w)
				v := e.cfg.Alpha*(s12+s21)/2 + (1-e.cfg.Alpha)*e.lab[idx]
				evals++
				if d := math.Abs(v - e.prev[idx]); d > maxDelta {
					maxDelta = d
				}
				e.cur[idx] = v
			}
		}
		if maxDelta > e.deltaW[w] {
			e.deltaW[w] = maxDelta
		}
		e.evalW[w] += evals
	})
	if err := e.stopErr(); err != nil {
		return 0, err
	}
	var maxDelta float64
	for _, d := range e.deltaW {
		if d > maxDelta {
			maxDelta = d
		}
	}
	roundEvals := 0
	for _, n := range e.evalW {
		roundEvals += n
	}
	e.evals += roundEvals
	e.roundEvals = roundEvals
	if e.activePairs < 0 {
		// First round: the frozen set is final now (seeding happens before
		// iteration), so count the active pairs once.
		n := 0
		for _, f := range e.frozen {
			if !f {
				n++
			}
		}
		e.activePairs = n
	}
	e.roundPruned = e.activePairs - roundEvals
	e.totalPruned += e.roundPruned
	e.lastDelta = maxDelta
	return maxDelta, nil
}

// done reports whether iteration may stop: epsilon convergence, the
// early-convergence bound, or the hard round cap.
func (e *dirEngine) doneAfter(delta float64) bool {
	if delta <= e.cfg.Epsilon {
		e.converged = true
		return true
	}
	if e.cfg.Prune && e.bound != depgraph.Infinite && e.round >= e.bound {
		e.converged = true
		return true
	}
	return e.round >= e.cfg.MaxRounds
}

// run iterates to completion, honoring the exact/estimation trade-off when
// cfg.EstimateI >= 0 (Algorithm 1). It returns the StopError when the
// computation was aborted through Config.Stop.
func (e *dirEngine) run() error {
	limit := e.cfg.MaxRounds
	if e.cfg.EstimateI >= 0 && e.cfg.EstimateI < limit {
		limit = e.cfg.EstimateI
	}
	// A checkpoint-restored engine may already be converged with round <
	// limit; stepping it again would perturb the converged values.
	for !e.converged && e.round < limit {
		delta, err := e.step()
		if err != nil {
			return err
		}
		if e.doneAfter(delta) {
			break
		}
	}
	if e.cfg.EstimateI >= 0 && !e.converged {
		return e.estimate()
	}
	return nil
}

// estimate applies the closed-form estimation of Section 3.5 to every pair
// that has not converged after the exact rounds: with A = |•v1|, B = |•v2|,
// q = alpha*c*(2AB-A-B)/(2AB) and a = alpha*(A+B)/(2AB)*C_x + (1-alpha)*S^L,
// the estimate after h rounds is q^(h-I)*S^I + a*(1-q^(h-I))/(1-q), where
// C_x is the edge-agreement of the artificial in-edges and h is the pair's
// convergence bound min(l(v1), l(v2)) (the limit a/(1-q) when unbounded).
//
// Two refinements tighten the estimate without leaving the paper's
// framework (the paper leaves the estimation bound as future work):
// the exact S^I is a lower bound of the limit (Theorem 1 monotonicity), so
// the estimate is clamped from below; and when two exact iterates are
// available (I >= 2), the recurrence constant a is fitted per pair from the
// observed step a = S^I - q*S^(I-1) instead of assuming every edge
// agreement reaches its maximum c — the fitted recurrence has the same
// closed form and converges to the exact similarity as I grows.
func (e *dirEngine) estimate() error {
	if e.estimated {
		return e.stopErr()
	}
	e.estimated = true
	if err := e.checkStop(); err != nil {
		return err
	}
	I := e.round
	// Each pair's estimate depends only on its own cur/prev entries, so the
	// rows parallelize like step().
	e.forRows(1, e.n1, func(w, lo, hi int) {
		if e.checkStop() != nil {
			return
		}
		for v1 := lo; v1 < hi; v1++ {
			for v2 := 1; v2 < e.n2; v2++ {
				idx := v1*e.n2 + v2
				if e.frozen[idx] {
					continue
				}
				h := min(e.l1[v1], e.l2[v2])
				if h <= I {
					continue // already exact
				}
				a, q := e.estimationCoefficients(v1, v2)
				if I >= 2 {
					if fit := e.cur[idx] - q*e.prev[idx]; fit >= 0 {
						a = fit
					}
				}
				var est float64
				if h == depgraph.Infinite {
					est = a / (1 - q)
				} else {
					pw := math.Pow(q, float64(h-I))
					est = pw*e.cur[idx] + a*(1-pw)/(1-q)
				}
				// The exact S^I is a lower bound of the true similarity
				// (Theorem 1 monotonicity), so never estimate below it.
				if est < e.cur[idx] {
					est = e.cur[idx]
				}
				e.cur[idx] = clamp01(est)
			}
		}
	})
	return e.stopErr()
}

// estimationCoefficients returns (a, q) of formula (2) for the pair (v1,v2).
func (e *dirEngine) estimationCoefficients(v1, v2 int) (a, q float64) {
	A := float64(len(e.g1.Pre[v1]))
	B := float64(len(e.g2.Pre[v2]))
	if A == 0 || B == 0 {
		// No structural contribution at all: the fixpoint is the label part.
		return (1 - e.cfg.Alpha) * e.lab[v1*e.n2+v2], 0
	}
	q = e.cfg.Alpha * e.cfg.C * (2*A*B - A - B) / (2 * A * B)
	var cx float64
	_, ok1 := e.g1.Freq(0, v1)
	_, ok2 := e.g2.Freq(0, v2)
	if ok1 && ok2 {
		cx = e.edgeAgreement(0, v1, 0, v2)
	}
	a = e.cfg.Alpha*(A+B)/(2*A*B)*cx + (1-e.cfg.Alpha)*e.lab[v1*e.n2+v2]
	return a, q
}

// upperBoundSum returns the sum over all real pairs of the similarity upper
// bounds after the current round k: S^k + ((ac)^k - (ac)^h)/(1-ac) with
// h = min(l(v1), l(v2)) (Corollary 7), falling back to the unbounded form of
// Proposition 6 when h is infinite, each clamped to 1.
func (e *dirEngine) upperBoundSum() (float64, error) {
	if err := e.checkStop(); err != nil {
		return 0, err
	}
	ac := e.cfg.Alpha * e.cfg.C
	k := float64(e.round)
	ack := math.Pow(ac, k)
	// Increment-contraction cap (Lemma 5 induction): after a round with
	// maximum increment d, future rounds add at most d*(ac + ac^2 + ...).
	// Monotone increments require a cold start, so warm-started engines
	// fall back to the geometric bound alone.
	deltaCap := math.Inf(1)
	if e.round >= 1 && !e.warmed {
		deltaCap = e.lastDelta * ac / (1 - ac)
	}
	// Bounds are accumulated per row and the row partials reduced in index
	// order, so the (non-associative) float sum groups identically for every
	// worker count.
	if e.rowSum == nil {
		e.rowSum = make([]float64, e.n1)
	}
	e.forRows(1, e.n1, func(w, lo, hi int) {
		if e.checkStop() != nil {
			return
		}
		for v1 := lo; v1 < hi; v1++ {
			var sum float64
			for v2 := 1; v2 < e.n2; v2++ {
				idx := v1*e.n2 + v2
				s := e.cur[idx]
				if e.frozen[idx] {
					sum += s
					continue
				}
				h := min(e.l1[v1], e.l2[v2])
				var slack float64
				switch {
				case e.round >= h:
					slack = 0 // converged (Proposition 2)
				case h == depgraph.Infinite:
					slack = ack / (1 - ac)
				default:
					slack = (ack - math.Pow(ac, float64(h))) / (1 - ac)
				}
				if slack > deltaCap {
					slack = deltaCap
				}
				b := s + slack
				if b > 1 {
					b = 1
				}
				sum += b
			}
			e.rowSum[v1] = sum
		}
	})
	if err := e.stopErr(); err != nil {
		return 0, err
	}
	var sum float64
	for v1 := 1; v1 < e.n1; v1++ {
		sum += e.rowSum[v1]
	}
	return sum, nil
}

// realMatrix extracts the similarity matrix restricted to real events
// (dropping the artificial row and column).
func (e *dirEngine) realMatrix() []float64 {
	r1, r2 := e.n1-1, e.n2-1
	out := make([]float64, r1*r2)
	for i := 0; i < r1; i++ {
		copy(out[i*r2:(i+1)*r2], e.cur[(i+1)*e.n2+1:(i+2)*e.n2])
	}
	return out
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
