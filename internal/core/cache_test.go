package core

import (
	"math"
	"testing"
)

// TestAgreementCacheEquivalence: results must be identical with and without
// the precomputed edge-agreement cache (the cache is a pure optimization).
func TestAgreementCacheEquivalence(t *testing.T) {
	g1, g2 := exampleGraphs(t)
	cfg := DefaultConfig()
	cached, err := Compute(g1, g2, cfg)
	if err != nil {
		t.Fatalf("Compute cached: %v", err)
	}
	old := agreeCacheLimit
	agreeCacheLimit = 0
	defer func() { agreeCacheLimit = old }()
	plain, err := Compute(g1, g2, cfg)
	if err != nil {
		t.Fatalf("Compute uncached: %v", err)
	}
	for i := range cached.Sim {
		if math.Abs(cached.Sim[i]-plain.Sim[i]) > 1e-12 {
			t.Fatalf("cache changed similarity at %d: %g vs %g", i, cached.Sim[i], plain.Sim[i])
		}
	}
	if cached.Evaluations != plain.Evaluations {
		t.Errorf("cache changed evaluation count: %d vs %d", cached.Evaluations, plain.Evaluations)
	}
}

// TestAgreementCacheEquivalenceEstimation: likewise in estimation mode.
func TestAgreementCacheEquivalenceEstimation(t *testing.T) {
	g1, g2 := exampleGraphs(t)
	cached, err := ExactEstimationTradeoff(g1, g2, DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	old := agreeCacheLimit
	agreeCacheLimit = 0
	defer func() { agreeCacheLimit = old }()
	plain, err := ExactEstimationTradeoff(g1, g2, DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cached.Sim {
		if math.Abs(cached.Sim[i]-plain.Sim[i]) > 1e-12 {
			t.Fatalf("estimation differs at %d with cache disabled", i)
		}
	}
}
