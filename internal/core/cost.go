package core

import (
	"repro/internal/depgraph"
)

// CostEstimate predicts the peak working-set of a similarity computation
// before any of it is allocated. It is the contract between the parser and
// the resource governor: the server calls EstimateCost on the freshly built
// dependency graphs, compares Bytes against its memory budget, and only
// then lets NewComputation allocate the matrices.
//
// The prediction covers the engine's own O(n1*n2) state — similarity
// matrices, label matrix, freeze maps, agreement cache, pre-set tables —
// which dominates peak heap for any non-trivial pair. It deliberately does
// not model the parsed logs or graphs themselves (already resident when the
// estimate is made) nor allocator slack; callers wanting headroom apply
// their own safety factor on top.
type CostEstimate struct {
	// Bytes is the predicted peak engine heap across all direction engines.
	Bytes int64
	// Evals is an upper bound on formula-(1) evaluations: active pairs per
	// direction times the convergence bound. Pruning, freezing, and the
	// estimation cutover only ever reduce it.
	Evals int64
	// Directions holds the per-direction breakdown (one entry for Forward
	// or Backward, two for Both).
	Directions []DirCost
}

// DirCost itemizes one direction engine's predicted footprint.
type DirCost struct {
	N1, N2 int
	// MatrixBytes covers cur+prev (tile-padded when Tiled) plus the label
	// matrix, freeze map, and fast-path small map.
	MatrixBytes int64
	// AgreeBytes is the agreement cache: the factor table plus the fIdx1 /
	// aOff2 index arrays, zero when the table would exceed agreeCacheLimit
	// and the engine falls back to on-the-fly factors.
	AgreeBytes int64
	// EdgeBytes covers the pre-translated pre-set offset/frequency tables
	// and per-worker scratch.
	EdgeBytes int64
	// Rounds is the convergence bound min(MaxRounds, l-derived bound).
	Rounds int
}

// Total is this direction's predicted bytes.
func (d DirCost) Total() int64 { return d.MatrixBytes + d.AgreeBytes + d.EdgeBytes }

// EstimateCost predicts the peak memory and evaluation count of
// Compute(g1, g2, cfg) from graph dimensions alone. Both graphs must
// already carry the artificial event (as they do by the time the server
// has built them); the estimate is cheap — O(V+E) per direction — and
// never allocates matrix-sized state itself.
func EstimateCost(g1, g2 *depgraph.Graph, cfg Config) CostEstimate {
	var ce CostEstimate
	switch cfg.Direction {
	case Forward:
		ce.Directions = []DirCost{estimateDir(g1, g2, cfg, false)}
	case Backward:
		ce.Directions = []DirCost{estimateDir(g1, g2, cfg, true)}
	default: // Both
		ce.Directions = []DirCost{
			estimateDir(g1, g2, cfg, false),
			estimateDir(g1, g2, cfg, true),
		}
	}
	for _, d := range ce.Directions {
		ce.Bytes += d.Total()
		// Active pairs: every real×real pair, once per round.
		ce.Evals += int64(d.N1-1) * int64(d.N2-1) * int64(d.Rounds)
	}
	return ce
}

// estimateDir models one dirEngine. reversed mirrors Computation's Both
// wiring: the backward engine runs over Reverse()d graphs, so its in-edge
// structures are the forward graphs' out-edges. The math reads straight off
// newDirEngine/buildLayout/buildAgreementCache; keep them in sync.
func estimateDir(g1, g2 *depgraph.Graph, cfg Config, reversed bool) DirCost {
	n1, n2 := g1.N(), g2.N()
	d := DirCost{N1: n1, N2: n2}
	cells := int64(n1) * int64(n2)

	// cur + prev: matLen cells each, tile-padded when Tiled.
	matLen := cells
	if cfg.Tiled {
		bands := int64(n1+tileSize-1) >> tileShift
		tilesPerBand := int64(n2+tileSize-1) >> tileShift
		matLen = bands * tilesPerBand << (2 * tileShift)
	}
	d.MatrixBytes = 2 * 8 * matLen
	// lab (allocated regardless of Alpha) + frozen.
	d.MatrixBytes += 8*cells + cells
	// small: fast path only.
	if cfg.FastPath && cfg.EstimateI < 0 {
		d.MatrixBytes += cells
	}

	// Pre-set tables. In-edges of the (possibly reversed) graphs: each edge
	// contributes one int offset + one float64 frequency per side, plus the
	// slice headers and offset tables.
	e1 := edgeEntries(g1, reversed)
	e2 := edgeEntries(g2, reversed)
	const sliceHeader = 24
	d.EdgeBytes = 16*(e1+e2) + // preRow1/inF1 + preCol2/inF2 payloads
		4*sliceHeader*int64(n1+n2) + // their slice headers (2 per vertex per side)
		8*int64(n1+n2) + // rowOff + colOff
		8*int64(n1) // rowSum (lazy, but counts toward peak)
	// Per-worker scratch: one row of the largest g2 pre-set each.
	workers := resolveWorkers(cfg, n1, n2)
	d.EdgeBytes += int64(workers) * 8 * maxInDegree(g2, reversed)

	// Agreement cache: |distinct in-edge freqs of g1| × E2 factors, plus the
	// fIdx1/aOff2 indexes, unless past the limit (then the engine drops it).
	distinct := distinctEdgeFreqs(g1, reversed)
	if distinct*e2 <= agreeCacheLimit {
		d.AgreeBytes = 8*distinct*e2 + 4*e1 + 4*int64(n2) +
			sliceHeader*distinct // table row headers
	}

	d.Rounds = convergenceRounds(g1, g2, cfg, reversed)
	return d
}

// edgeEntries counts the in-edge pre-set entries the engine will table for
// one graph: sum of pre-set sizes over real vertices (out-edges when the
// direction runs over the reversed graph).
func edgeEntries(g *depgraph.Graph, reversed bool) int64 {
	adj := g.Pre
	if reversed {
		adj = g.Post
	}
	var total int64
	for v := 1; v < g.N(); v++ {
		total += int64(len(adj[v]))
	}
	return total
}

// maxInDegree is the largest pre-set size of one graph (post-set when
// reversed) — the per-worker scratch row length.
func maxInDegree(g *depgraph.Graph, reversed bool) int64 {
	adj := g.Pre
	if reversed {
		adj = g.Post
	}
	max := 0
	for v := 1; v < g.N(); v++ {
		if len(adj[v]) > max {
			max = len(adj[v])
		}
	}
	return int64(max)
}

// distinctEdgeFreqs counts the distinct in-edge frequencies of g (out-edge
// when reversed) — the agreement table's row count.
func distinctEdgeFreqs(g *depgraph.Graph, reversed bool) int64 {
	seen := make(map[float64]struct{})
	if reversed {
		// Reversed in-edges of v are the forward out-edges (v,u): their
		// frequencies live in EdgeFreq[v].
		for v := 1; v < g.N(); v++ {
			for u, f := range g.EdgeFreq[v] {
				if u == 0 {
					continue
				}
				seen[f] = struct{}{}
			}
		}
	} else {
		for v := 1; v < g.N(); v++ {
			for _, p := range g.Pre[v] {
				seen[g.EdgeFreq[p][v]] = struct{}{}
			}
		}
	}
	return int64(len(seen))
}

// convergenceRounds predicts the round bound of one direction:
// min(MaxRounds, convergenceBound over the longest-distance functions). An
// unbounded l (cycles) leaves MaxRounds. Errors computing l (no artificial
// event yet) also fall back to MaxRounds — the estimate must never fail.
func convergenceRounds(g1, g2 *depgraph.Graph, cfg Config, reversed bool) int {
	rounds := cfg.MaxRounds
	if rounds <= 0 {
		rounds = DefaultConfig().MaxRounds
	}
	if reversed {
		// l over the reversed graph needs the reversal materialized; the
		// backward bound is structurally similar to the forward one, and the
		// estimate only needs an upper bound, so reuse MaxRounds here.
		return rounds
	}
	l1, err1 := g1.LongestFromArtificial()
	l2, err2 := g2.LongestFromArtificial()
	if err1 != nil || err2 != nil {
		return rounds
	}
	if b := convergenceBound(l1, l2); b < rounds {
		return b
	}
	return rounds
}
