package core

import (
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/depgraph"
	"repro/internal/procgen"
)

// costTestPair builds a procgen workload pair like the emsbench harness
// does: two skewed playouts of one generated specification, as
// artificial-event dependency graphs.
func costTestPair(t *testing.T, events, traces int) (*depgraph.Graph, *depgraph.Graph) {
	t.Helper()
	rng := rand.New(rand.NewSource(2014))
	spec, err := procgen.Generate(rng, procgen.DefaultOptions(events))
	if err != nil {
		t.Fatalf("procgen: %v", err)
	}
	po := procgen.PlayoutOptions{Traces: traces, LoopRepeat: 0.3, MaxLoop: 3, XorSkew: 2}
	l1, err := spec.Playout(rng, "cost1", po)
	if err != nil {
		t.Fatalf("playout: %v", err)
	}
	l2, err := spec.Playout(rng, "cost2", po)
	if err != nil {
		t.Fatalf("playout: %v", err)
	}
	g1, err := depgraph.Build(l1)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if g1, err = g1.AddArtificial(); err != nil {
		t.Fatalf("artificial: %v", err)
	}
	g2, err := depgraph.Build(l2)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if g2, err = g2.AddArtificial(); err != nil {
		t.Fatalf("artificial: %v", err)
	}
	return g1, g2
}

// measuredPeakHeap runs fn with a 1ms heap sampler armed and returns the
// peak HeapAlloc growth over the post-GC baseline — the emsbench -mem
// measurement, inlined here so the model test needs no harness import.
func measuredPeakHeap(t *testing.T, fn func() error) int64 {
	t.Helper()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	base := int64(ms.HeapAlloc)
	var peak atomic.Int64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				var m runtime.MemStats
				runtime.ReadMemStats(&m)
				if d := int64(m.HeapAlloc) - base; d > peak.Load() {
					peak.Store(d)
				}
			}
		}
	}()
	err := fn()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	if d := int64(m.HeapAlloc) - base; d > peak.Load() {
		peak.Store(d)
	}
	close(stop)
	<-done
	if err != nil {
		t.Fatalf("compute under measurement: %v", err)
	}
	return peak.Load()
}

// TestEstimateCostTracksMeasuredPeak is the accuracy contract of the
// resource governor's cost model: across a procgen size sweep, worker counts
// 1/2/8, and tiled on/off, the predicted peak engine heap stays within a
// factor of two of the measured high-water mark. Tighter would fight the
// allocator (size classes, GC timing); looser would make -mem-budget
// admission decisions meaningless.
func TestEstimateCostTracksMeasuredPeak(t *testing.T) {
	if testing.Short() {
		t.Skip("memory sweep is slow; skipped with -short")
	}
	sizes := []struct{ events, traces int }{
		{64, 80},
		{120, 140},
	}
	for _, size := range sizes {
		g1, g2 := costTestPair(t, size.events, size.traces)
		for _, workers := range []int{1, 2, 8} {
			for _, tiled := range []bool{false, true} {
				cfg := DefaultConfig()
				cfg.Workers = workers
				cfg.Tiled = tiled

				est := EstimateCost(g1, g2, cfg)
				if est.Bytes <= 0 || est.Evals <= 0 {
					t.Fatalf("events=%d workers=%d tiled=%v: empty estimate %+v",
						size.events, workers, tiled, est)
				}
				measured := measuredPeakHeap(t, func() error {
					_, err := Compute(g1, g2, cfg)
					return err
				})
				if measured <= 0 {
					t.Fatalf("events=%d workers=%d tiled=%v: sampler measured nothing",
						size.events, workers, tiled)
				}
				ratio := float64(est.Bytes) / float64(measured)
				t.Logf("events=%-4d traces=%-4d workers=%d tiled=%-5v predicted=%8.2fKiB measured=%8.2fKiB ratio=%.2f",
					size.events, size.traces, workers, tiled,
					float64(est.Bytes)/1024, float64(measured)/1024, ratio)
				if ratio < 0.5 || ratio > 2.0 {
					t.Errorf("events=%d traces=%d workers=%d tiled=%v: predicted %d bytes vs measured %d (ratio %.2f, want within 2x)",
						size.events, size.traces, workers, tiled, est.Bytes, measured, ratio)
				}
			}
		}
	}
}

// TestEstimateCostMonotonicity pins cheap structural properties the governor
// relies on: cost grows with the workload, Both covers two directions, and
// the estimate itself never allocates matrix-scale memory.
func TestEstimateCostMonotonicity(t *testing.T) {
	small1, small2 := costTestPair(t, 24, 30)
	big1, big2 := costTestPair(t, 96, 90)
	cfg := DefaultConfig()

	smallEst := EstimateCost(small1, small2, cfg)
	bigEst := EstimateCost(big1, big2, cfg)
	if bigEst.Bytes <= smallEst.Bytes {
		t.Errorf("bigger pair predicted cheaper: %d <= %d bytes", bigEst.Bytes, smallEst.Bytes)
	}
	if bigEst.Evals <= smallEst.Evals {
		t.Errorf("bigger pair predicted fewer evals: %d <= %d", bigEst.Evals, smallEst.Evals)
	}
	if len(smallEst.Directions) != 2 {
		t.Errorf("Both direction produced %d per-direction entries, want 2", len(smallEst.Directions))
	}
	var sum int64
	for _, d := range smallEst.Directions {
		if d.Total() <= 0 {
			t.Errorf("direction cost %+v is not positive", d)
		}
		sum += d.Total()
	}
	if sum != smallEst.Bytes {
		t.Errorf("direction totals sum to %d, Bytes says %d", sum, smallEst.Bytes)
	}

	// The estimator must be cheap: estimating a large pair should allocate
	// orders of magnitude less than the matrices it predicts.
	estAlloc := testing.AllocsPerRun(3, func() {
		EstimateCost(big1, big2, cfg)
	})
	if estAlloc > 1000 {
		t.Errorf("EstimateCost performed %.0f allocations, want a cheap estimate", estAlloc)
	}
}
