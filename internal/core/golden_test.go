package core

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from the current engine output")

// goldenResult is the frozen similarity of the paper's running example
// (Figure 1 / Example 8): the forward, backward and combined matrices under
// the paper's default configuration (alpha = 1, c = 0.8, both directions,
// exact iteration with pruning).
type goldenResult struct {
	Names1      []string  `json:"names1"`
	Names2      []string  `json:"names2"`
	Forward     []float64 `json:"forward"`
	Backward    []float64 `json:"backward"`
	Sim         []float64 `json:"sim"`
	Evaluations int       `json:"evaluations"`
	Rounds      int       `json:"rounds"`
}

// TestGoldenPaperExample pins the engine to the paper's numbers: the
// Example 8 matrices are stored in testdata and every refactor must
// reproduce them to 1e-9. Regenerate deliberately with
// `go test ./internal/core -run GoldenPaperExample -update` and review the
// diff against the paper before committing.
func TestGoldenPaperExample(t *testing.T) {
	g1, g2 := exampleGraphs(t)
	r, err := Compute(g1, g2, DefaultConfig())
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	got := goldenResult{
		Names1:      r.Names1,
		Names2:      r.Names2,
		Forward:     r.Forward,
		Backward:    r.Backward,
		Sim:         r.Sim,
		Evaluations: r.Evaluations,
		Rounds:      r.Rounds,
	}
	path := filepath.Join("testdata", "example8_golden.json")
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatalf("marshal golden: %v", err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatalf("mkdir testdata: %v", err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create it): %v", err)
	}
	var want goldenResult
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parse golden: %v", err)
	}
	if !equalStrings(got.Names1, want.Names1) || !equalStrings(got.Names2, want.Names2) {
		t.Fatalf("event names drifted: got %v/%v, want %v/%v", got.Names1, got.Names2, want.Names1, want.Names2)
	}
	if got.Evaluations != want.Evaluations {
		t.Errorf("Evaluations = %d, want %d", got.Evaluations, want.Evaluations)
	}
	if got.Rounds != want.Rounds {
		t.Errorf("Rounds = %d, want %d", got.Rounds, want.Rounds)
	}
	compareGoldenMatrix(t, "Forward", got.Forward, want.Forward, want.Names1, want.Names2)
	compareGoldenMatrix(t, "Backward", got.Backward, want.Backward, want.Names1, want.Names2)
	compareGoldenMatrix(t, "Sim", got.Sim, want.Sim, want.Names1, want.Names2)
}

const goldenTolerance = 1e-9

func compareGoldenMatrix(t *testing.T, name string, got, want []float64, names1, names2 []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: length %d, want %d", name, len(got), len(want))
		return
	}
	n2 := len(names2)
	for i := range want {
		if math.Abs(got[i]-want[i]) > goldenTolerance {
			t.Errorf("%s(%s, %s) = %.12f, want %.12f (drift %g)",
				name, names1[i/n2], names2[i%n2], got[i], want[i], got[i]-want[i])
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
