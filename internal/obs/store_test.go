package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestTraceStoreRecordAndMerge(t *testing.T) {
	st := NewTraceStore(8, 1)
	tr := NewTrace("t1")
	tr.SetNode("node-a")
	root := tr.StartRoot("request")
	st.Record(tr) // forward-time snapshot: root still open

	sp := tr.StartSpan("compute")
	sp.SetAttr("rounds", "3")
	sp.End()
	root.End()
	st.Record(tr) // finish-time snapshot: merged by span ID

	spans := st.Spans("t1")
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2 (merged, not duplicated)", len(spans))
	}
	if spans[0].Open {
		t.Errorf("root span still open after merge: %+v", spans[0])
	}
	if spans[1].Attrs["rounds"] != "3" {
		t.Errorf("compute span = %+v", spans[1])
	}
	if st.Spans("missing") != nil {
		t.Error("missing trace returned spans")
	}
}

func TestTraceStoreEviction(t *testing.T) {
	st := NewTraceStore(3, 1)
	for i := 0; i < 5; i++ {
		st.RecordViews(fmt.Sprintf("t%d", i), []SpanView{{ID: "s", Name: "request"}})
	}
	if st.Len() != 3 {
		t.Fatalf("Len = %d, want 3", st.Len())
	}
	if st.Spans("t0") != nil || st.Spans("t1") != nil {
		t.Error("oldest traces not evicted")
	}
	// Updating an old trace moves it to the back of the eviction order.
	st.RecordViews("t2", []SpanView{{ID: "s2", Name: "compute"}})
	st.RecordViews("t5", []SpanView{{ID: "s", Name: "request"}})
	if st.Spans("t2") == nil {
		t.Error("recently updated trace evicted")
	}
	if st.Spans("t3") != nil {
		t.Error("least recently updated trace survived")
	}
}

func TestTraceStoreRecent(t *testing.T) {
	st := NewTraceStore(8, 1)
	st.RecordViews("a", []SpanView{{ID: "1", Name: "request", DurationMS: 5}})
	st.RecordViews("b", []SpanView{
		{ID: "1", Parent: "x", Name: "compute"},
		{ID: "2", Name: "request", DurationMS: 9},
	})
	recent := st.Recent(10)
	if len(recent) != 2 {
		t.Fatalf("Recent = %d rows, want 2", len(recent))
	}
	if recent[0].TraceID != "b" || recent[0].Root != "request" || recent[0].DurationMS != 9 {
		t.Errorf("recent[0] = %+v", recent[0])
	}
	if recent[1].TraceID != "a" || recent[1].Spans != 1 {
		t.Errorf("recent[1] = %+v", recent[1])
	}
	if got := st.Recent(1); len(got) != 1 || got[0].TraceID != "b" {
		t.Errorf("Recent(1) = %+v", got)
	}
}

func TestTraceStoreSampling(t *testing.T) {
	all := NewTraceStore(8, 1)
	none := NewTraceStore(8, 0)
	half := NewTraceStore(8, 0.5)
	kept := 0
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("trace-%d", i)
		if !all.Sampled(id) {
			t.Fatalf("sample=1 dropped %s", id)
		}
		if none.Sampled(id) {
			t.Fatalf("sample=0 kept %s", id)
		}
		if half.Sampled(id) {
			kept++
		}
	}
	if kept < 400 || kept > 600 {
		t.Errorf("sample=0.5 kept %d of 1000", kept)
	}
	// Sampling is a pure function of the ID: two stores with the same rate
	// agree on every trace, so cluster nodes keep the same set.
	other := NewTraceStore(8, 0.5)
	for i := 0; i < 100; i++ {
		id := fmt.Sprintf("trace-%d", i)
		if half.Sampled(id) != other.Sampled(id) {
			t.Fatalf("stores disagree on %s", id)
		}
	}
	none.RecordViews("x", []SpanView{{ID: "1", Name: "request"}})
	if none.Len() != 0 {
		t.Error("sample=0 stored a trace")
	}
}

// TestTraceStoreConcurrent hammers the store from many goroutines; -race is
// the real assertion.
func TestTraceStoreConcurrent(t *testing.T) {
	st := NewTraceStore(16, 1)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := fmt.Sprintf("t%d", i%20)
				st.RecordViews(id, []SpanView{{ID: fmt.Sprintf("s%d", w), Name: "request"}})
				st.Spans(id)
				st.Recent(5)
			}
		}(w)
	}
	wg.Wait()
	if st.Len() > 16 {
		t.Errorf("Len = %d exceeds retain", st.Len())
	}
}
