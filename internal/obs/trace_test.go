package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceSpans(t *testing.T) {
	tr := NewTrace("abc")
	if tr.ID() != "abc" {
		t.Fatalf("ID = %q", tr.ID())
	}
	s1 := tr.StartSpan("parse")
	time.Sleep(time.Millisecond)
	s1.End()
	s1.End() // idempotent
	end := tr.Span("iterate")
	end()
	open := tr.StartSpan("never-ends")
	_ = open

	views := tr.Snapshot()
	if len(views) != 3 {
		t.Fatalf("got %d spans, want 3", len(views))
	}
	if views[0].Name != "parse" || views[0].DurationMS <= 0 {
		t.Errorf("parse span = %+v", views[0])
	}
	if views[1].Name != "iterate" || views[1].Open {
		t.Errorf("iterate span = %+v", views[1])
	}
	if !views[2].Open {
		t.Errorf("open span not marked open: %+v", views[2])
	}
	tl := tr.Timeline()
	for _, want := range []string{"parse", "iterate", "never-ends", "(open)"} {
		if !strings.Contains(tl, want) {
			t.Errorf("timeline missing %q:\n%s", want, tl)
		}
	}
}

func TestTraceGeneratedIDsDistinct(t *testing.T) {
	a, b := NewTrace(""), NewTrace("")
	if a.ID() == "" || a.ID() == b.ID() {
		t.Errorf("IDs %q and %q", a.ID(), b.ID())
	}
	if len(a.ID()) != 32 {
		t.Errorf("ID length %d, want 32 hex chars", len(a.ID()))
	}
}

// TestTraceConcurrent opens and ends spans from many goroutines while
// snapshotting; -race is the actual assertion.
func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace("")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Span("work")()
				_ = tr.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Snapshot()); got != 8*200 {
		t.Errorf("got %d spans, want %d", got, 8*200)
	}
}

func TestTraceContext(t *testing.T) {
	if TraceFrom(nil) != nil {
		t.Error("TraceFrom(nil) != nil")
	}
	tr := NewTrace("x")
	ctx := ContextWithTrace(t.Context(), tr)
	if TraceFrom(ctx) != tr {
		t.Error("trace not carried through context")
	}
}

func TestTraceMiddleware(t *testing.T) {
	var seen *Trace
	h := TraceMiddleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = TraceFrom(r.Context())
	}))

	// Client-supplied ID is used and echoed.
	req := httptest.NewRequest("GET", "/", nil)
	req.Header.Set(RequestIDHeader, "client-id-1")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if seen == nil || seen.ID() != "client-id-1" {
		t.Fatalf("trace = %v", seen)
	}
	if got := rec.Header().Get(RequestIDHeader); got != "client-id-1" {
		t.Errorf("echoed ID = %q", got)
	}

	// Absent header: generated and returned.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if seen == nil || seen.ID() == "" || seen.ID() == "client-id-1" {
		t.Fatalf("generated trace = %v", seen)
	}
	if rec.Header().Get(RequestIDHeader) != seen.ID() {
		t.Errorf("response header %q != trace ID %q", rec.Header().Get(RequestIDHeader), seen.ID())
	}

	// Oversized client IDs are truncated, not rejected.
	req = httptest.NewRequest("GET", "/", nil)
	req.Header.Set(RequestIDHeader, strings.Repeat("x", 300))
	h.ServeHTTP(httptest.NewRecorder(), req)
	if len(seen.ID()) != 128 {
		t.Errorf("oversized ID length = %d, want 128", len(seen.ID()))
	}
}

func TestHTTPMetricsWrap(t *testing.T) {
	r := NewRegistry()
	m := NewHTTPMetrics(r, "t")
	h := m.Wrap("/v1/jobs", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
	}))
	for i := 0; i < 3; i++ {
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("POST", "/v1/jobs", nil))
	}
	// Implicit 200 via Write without WriteHeader.
	m.Wrap("/healthz", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("ok"))
	})).ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/healthz", nil))

	if got := m.requests.With("/v1/jobs", "POST", "202").Value(); got != 3 {
		t.Errorf("requests{202} = %g, want 3", got)
	}
	if got := m.requests.With("/healthz", "GET", "200").Value(); got != 1 {
		t.Errorf("requests{200} = %g, want 1", got)
	}
	if got := m.inFlight.Value(); got != 0 {
		t.Errorf("in-flight = %g, want 0", got)
	}
	if _, count, _ := m.latency.With("/v1/jobs").snapshot(); count != 3 {
		t.Errorf("latency count = %d, want 3", count)
	}
}
