package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceSpans(t *testing.T) {
	tr := NewTrace("abc")
	if tr.ID() != "abc" {
		t.Fatalf("ID = %q", tr.ID())
	}
	s1 := tr.StartSpan("parse")
	time.Sleep(time.Millisecond)
	s1.End()
	s1.End() // idempotent
	end := tr.Span("iterate")
	end()
	open := tr.StartSpan("never-ends")
	_ = open

	views := tr.Snapshot()
	if len(views) != 3 {
		t.Fatalf("got %d spans, want 3", len(views))
	}
	if views[0].Name != "parse" || views[0].DurationMS <= 0 {
		t.Errorf("parse span = %+v", views[0])
	}
	if views[1].Name != "iterate" || views[1].Open {
		t.Errorf("iterate span = %+v", views[1])
	}
	if !views[2].Open {
		t.Errorf("open span not marked open: %+v", views[2])
	}
	tl := tr.Timeline()
	for _, want := range []string{"parse", "iterate", "never-ends", "(open)"} {
		if !strings.Contains(tl, want) {
			t.Errorf("timeline missing %q:\n%s", want, tl)
		}
	}
}

func TestTraceGeneratedIDsDistinct(t *testing.T) {
	a, b := NewTrace(""), NewTrace("")
	if a.ID() == "" || a.ID() == b.ID() {
		t.Errorf("IDs %q and %q", a.ID(), b.ID())
	}
	if len(a.ID()) != 32 {
		t.Errorf("ID length %d, want 32 hex chars", len(a.ID()))
	}
}

// TestTraceConcurrent opens and ends spans from many goroutines while
// snapshotting; -race is the actual assertion.
func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace("")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Span("work")()
				_ = tr.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Snapshot()); got != 8*200 {
		t.Errorf("got %d spans, want %d", got, 8*200)
	}
}

func TestTraceContext(t *testing.T) {
	if TraceFrom(nil) != nil {
		t.Error("TraceFrom(nil) != nil")
	}
	tr := NewTrace("x")
	ctx := ContextWithTrace(t.Context(), tr)
	if TraceFrom(ctx) != tr {
		t.Error("trace not carried through context")
	}
}

func TestTraceMiddleware(t *testing.T) {
	var seen *Trace
	h := TraceMiddleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = TraceFrom(r.Context())
	}))

	// Client-supplied ID is used and echoed.
	req := httptest.NewRequest("GET", "/", nil)
	req.Header.Set(RequestIDHeader, "client-id-1")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if seen == nil || seen.ID() != "client-id-1" {
		t.Fatalf("trace = %v", seen)
	}
	if got := rec.Header().Get(RequestIDHeader); got != "client-id-1" {
		t.Errorf("echoed ID = %q", got)
	}

	// Absent header: generated and returned.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if seen == nil || seen.ID() == "" || seen.ID() == "client-id-1" {
		t.Fatalf("generated trace = %v", seen)
	}
	if rec.Header().Get(RequestIDHeader) != seen.ID() {
		t.Errorf("response header %q != trace ID %q", rec.Header().Get(RequestIDHeader), seen.ID())
	}

	// Oversized client IDs are truncated, not rejected.
	req = httptest.NewRequest("GET", "/", nil)
	req.Header.Set(RequestIDHeader, strings.Repeat("x", 300))
	h.ServeHTTP(httptest.NewRecorder(), req)
	if len(seen.ID()) != 128 {
		t.Errorf("oversized ID length = %d, want 128", len(seen.ID()))
	}
}

func TestTraceSpanParentage(t *testing.T) {
	tr := NewTraceWithParent("tid", "remote-span")
	if tr.ParentSpan() != "remote-span" {
		t.Fatalf("ParentSpan = %q", tr.ParentSpan())
	}
	// Before a root exists, spans parent under the remote parent.
	pre := tr.StartSpan("early")
	if pre.Parent() != "remote-span" {
		t.Errorf("pre-root span parent = %q, want remote-span", pre.Parent())
	}
	root := tr.StartRoot("request")
	if root.Parent() != "remote-span" {
		t.Errorf("root parent = %q, want remote-span", root.Parent())
	}
	child := tr.StartSpan("compute")
	if child.Parent() != root.ID() {
		t.Errorf("child parent = %q, want root %q", child.Parent(), root.ID())
	}
	// A second StartRoot does not displace the first.
	second := tr.StartRoot("request")
	if tr.Root() != root || second.Parent() != root.ID() {
		t.Errorf("second root displaced first: root=%v second.parent=%q", tr.Root().Name(), second.Parent())
	}
	if len(root.ID()) != 16 || root.ID() == child.ID() {
		t.Errorf("span IDs root=%q child=%q", root.ID(), child.ID())
	}
	views := tr.Snapshot()
	if len(views) != 4 || views[1].ID != root.ID() || views[2].Parent != root.ID() {
		t.Errorf("snapshot parentage wrong: %+v", views)
	}
}

func TestTraceAttrsAndKeep(t *testing.T) {
	tr := NewTrace("t")
	tr.SetNode("node-a")
	if tr.Node() != "node-a" {
		t.Errorf("Node = %q", tr.Node())
	}
	if tr.Kept() {
		t.Error("new trace marked kept")
	}
	tr.Keep()
	if !tr.Kept() {
		t.Error("Keep did not stick")
	}
	tr.SetAttr("degraded", "fast-path")
	if tr.Attr("degraded") != "fast-path" {
		t.Errorf("trace attr = %q", tr.Attr("degraded"))
	}
	sp := tr.StartSpan("compute")
	sp.SetAttr("rounds", "7")
	sp.End()
	v := tr.Snapshot()[0]
	if v.Node != "node-a" || v.Attrs["rounds"] != "7" {
		t.Errorf("span view = %+v", v)
	}
}

func TestTraceOnSpanEnd(t *testing.T) {
	tr := NewTrace("t")
	var ended []string
	tr.OnSpanEnd(func(s *Span) { ended = append(ended, s.Name()) })
	sp := tr.StartSpan("parse")
	sp.End()
	sp.End() // hook must fire once
	tr.Span("iterate")()
	if len(ended) != 2 || ended[0] != "parse" || ended[1] != "iterate" {
		t.Errorf("span-end hook calls = %v", ended)
	}
}

func TestTraceHeaderRoundTrip(t *testing.T) {
	v := FormatTraceHeader("trace-1", "span-9")
	tid, parent, ok := ParseTraceHeader(v)
	if !ok || tid != "trace-1" || parent != "span-9" {
		t.Fatalf("ParseTraceHeader(%q) = %q %q %v", v, tid, parent, ok)
	}
	// Client trace IDs may contain the separator; last-separator split wins.
	tid, parent, ok = ParseTraceHeader("a;b;span")
	if !ok || tid != "a;b" || parent != "span" {
		t.Errorf("nested sep parse = %q %q %v", tid, parent, ok)
	}
	for _, bad := range []string{"", "nosep", ";leadingsep", strings.Repeat("x", 300)} {
		if _, _, ok := ParseTraceHeader(bad); ok {
			t.Errorf("ParseTraceHeader(%q) accepted", bad)
		}
	}
}

// TestTraceMiddlewarePropagation covers the distributed half: an incoming
// X-Emsd-Trace header joins the sender's trace and parents the request
// root under the sender's hop span, and the middleware stamps node IDs and
// fires the request-end hook.
func TestTraceMiddlewarePropagation(t *testing.T) {
	var seen *Trace
	var finished *Trace
	h := TraceMiddlewareWith(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = TraceFrom(r.Context())
		seen.Keep()
		seen.Span("compute")()
	}), TraceConfig{
		Node:         "node-b",
		OnRequestEnd: func(tr *Trace) { finished = tr },
	})

	req := httptest.NewRequest("POST", "/v1/jobs", nil)
	req.Header.Set(TraceHeader, FormatTraceHeader("trace-77", "span-42"))
	req.Header.Set(RequestIDHeader, "ignored-when-trace-header-present")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)

	if seen == nil || seen.ID() != "trace-77" {
		t.Fatalf("trace = %v", seen)
	}
	if rec.Header().Get(RequestIDHeader) != "trace-77" {
		t.Errorf("echoed ID = %q", rec.Header().Get(RequestIDHeader))
	}
	if finished != seen || !finished.Kept() {
		t.Errorf("OnRequestEnd trace = %v kept=%v", finished, finished.Kept())
	}
	views := seen.Snapshot()
	if len(views) != 2 {
		t.Fatalf("got %d spans, want request+compute", len(views))
	}
	root := views[0]
	if root.Name != "request" || root.Parent != "span-42" || root.Open {
		t.Errorf("root span = %+v", root)
	}
	if root.Attrs["method"] != "POST" || root.Attrs["path"] != "/v1/jobs" {
		t.Errorf("root attrs = %v", root.Attrs)
	}
	if views[1].Parent != root.ID || views[1].Node != "node-b" {
		t.Errorf("child span = %+v", views[1])
	}
}

// BenchmarkSpanEndHook measures the span-end path feeding the per-phase
// histogram — the hot addition this PR makes to every engine phase.
func BenchmarkSpanEndHook(b *testing.B) {
	r := NewRegistry()
	hv := r.HistogramVec("bench_phase_seconds", "bench", DefBuckets(), "phase", "degraded")
	tr := NewTrace("bench")
	tr.OnSpanEnd(func(s *Span) {
		hv.With(s.Name(), "false").Observe(s.Duration().Seconds())
	})
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			tr.StartSpan("iterate").End()
		}
	})
}

func TestHTTPMetricsWrap(t *testing.T) {
	r := NewRegistry()
	m := NewHTTPMetrics(r, "t")
	h := m.Wrap("/v1/jobs", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
	}))
	for i := 0; i < 3; i++ {
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("POST", "/v1/jobs", nil))
	}
	// Implicit 200 via Write without WriteHeader.
	m.Wrap("/healthz", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("ok"))
	})).ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/healthz", nil))

	if got := m.requests.With("/v1/jobs", "POST", "202").Value(); got != 3 {
		t.Errorf("requests{202} = %g, want 3", got)
	}
	if got := m.requests.With("/healthz", "GET", "200").Value(); got != 1 {
		t.Errorf("requests{200} = %g, want 1", got)
	}
	if got := m.inFlight.Value(); got != 0 {
		t.Errorf("in-flight = %g, want 0", got)
	}
	if _, count, _ := m.latency.With("/v1/jobs").snapshot(); count != 3 {
		t.Errorf("latency count = %d, want 3", count)
	}
}
