package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestExpositionGolden freezes the text exposition format: family order,
// HELP/TYPE comments, label rendering, histogram expansion. Any format
// drift fails here before it breaks a real scraper.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_jobs_total", "Jobs processed.")
	c.Add(3)
	g := r.Gauge("test_queue_depth", "Queued jobs.")
	g.Set(2)
	v := r.CounterVec("test_http_requests_total", "Requests.", "route", "code")
	v.With("/v1/jobs", "200").Inc()
	v.With("/v1/jobs", "400").Add(2)
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.GaugeFunc("test_live", "Live value.", func() float64 { return 7.5 })

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_jobs_total Jobs processed.
# TYPE test_jobs_total counter
test_jobs_total 3
# HELP test_queue_depth Queued jobs.
# TYPE test_queue_depth gauge
test_queue_depth 2
# HELP test_http_requests_total Requests.
# TYPE test_http_requests_total counter
test_http_requests_total{route="/v1/jobs",code="200"} 1
test_http_requests_total{route="/v1/jobs",code="400"} 2
# HELP test_latency_seconds Latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.1"} 1
test_latency_seconds_bucket{le="1"} 2
test_latency_seconds_bucket{le="+Inf"} 3
test_latency_seconds_sum 5.55
test_latency_seconds_count 3
# HELP test_live Live value.
# TYPE test_live gauge
test_live 7.5
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestExpositionWellFormed scrapes via ServeHTTP and checks every line
// against the exposition grammar — the same property the CI scrape job
// enforces on a live emsd.
func TestExpositionWellFormed(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "A.").Inc()
	r.Histogram("b_seconds", "B with\nnewline and \\ backslash.", nil).Observe(0.2)
	r.CounterVec("c_total", "C.", "x").With("weird\"value\nwith\\stuff").Inc()

	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		if !ValidExpositionLine(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
}

// TestHistogramBuckets table-tests bucket boundary behavior: values on a
// boundary land in that bucket (le is inclusive), below in the lower,
// above in the next, and beyond the last bound only in +Inf.
func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		name    string
		buckets []float64
		obs     []float64
		wantCum []uint64 // cumulative, one per bucket then +Inf
		wantSum float64
	}{
		{
			name:    "boundary inclusive",
			buckets: []float64{1, 2},
			obs:     []float64{1, 2},
			wantCum: []uint64{1, 2, 2},
			wantSum: 3,
		},
		{
			name:    "below first",
			buckets: []float64{1, 2},
			obs:     []float64{0.5},
			wantCum: []uint64{1, 1, 1},
			wantSum: 0.5,
		},
		{
			name:    "between",
			buckets: []float64{1, 2},
			obs:     []float64{1.5},
			wantCum: []uint64{0, 1, 1},
			wantSum: 1.5,
		},
		{
			name:    "overflow",
			buckets: []float64{1, 2},
			obs:     []float64{3, 100},
			wantCum: []uint64{0, 0, 2},
			wantSum: 103,
		},
		{
			name:    "unsorted input sorted",
			buckets: []float64{2, 1},
			obs:     []float64{1.5},
			wantCum: []uint64{0, 1, 1},
			wantSum: 1.5,
		},
		{
			name:    "explicit +Inf dropped",
			buckets: []float64{1, math.Inf(1)},
			obs:     []float64{0.5, 7},
			wantCum: []uint64{1, 2},
			wantSum: 7.5,
		},
		{
			name:    "zero and negative",
			buckets: []float64{0, 1},
			obs:     []float64{-1, 0, 0.5},
			wantCum: []uint64{2, 3, 3},
			wantSum: -0.5,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := newHistogram(tc.buckets)
			for _, v := range tc.obs {
				h.Observe(v)
			}
			cum, count, sum := h.snapshot()
			if len(cum) != len(tc.wantCum) {
				t.Fatalf("got %d cumulative buckets, want %d", len(cum), len(tc.wantCum))
			}
			for i := range cum {
				if cum[i] != tc.wantCum[i] {
					t.Errorf("bucket %d: got %d, want %d", i, cum[i], tc.wantCum[i])
				}
			}
			if count != tc.wantCum[len(tc.wantCum)-1] {
				t.Errorf("count = %d, want %d", count, tc.wantCum[len(tc.wantCum)-1])
			}
			if math.Abs(sum-tc.wantSum) > 1e-12 {
				t.Errorf("sum = %g, want %g", sum, tc.wantSum)
			}
		})
	}
}

// TestRegistryConcurrentScrape hammers every metric kind from many
// goroutines while scraping concurrently; run under -race this is the
// registry's thread-safety proof, and the final counts check that no
// increment was lost.
func TestRegistryConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hammer_total", "H.")
	g := r.Gauge("hammer_gauge", "H.")
	v := r.CounterVec("hammer_vec_total", "H.", "worker")
	h := r.Histogram("hammer_seconds", "H.", []float64{0.5})

	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := string(rune('a' + w))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				v.With(lbl).Inc()
				h.Observe(float64(i%2) * 0.9)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				var b strings.Builder
				if _, err := r.WriteTo(&b); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(done)

	const total = workers * perWorker
	if got := c.Value(); got != total {
		t.Errorf("counter = %g, want %d", got, total)
	}
	if got := g.Value(); got != total {
		t.Errorf("gauge = %g, want %d", got, total)
	}
	for w := 0; w < workers; w++ {
		if got := v.With(string(rune('a' + w))).Value(); got != perWorker {
			t.Errorf("vec[%d] = %g, want %d", w, got, perWorker)
		}
	}
	if _, count, _ := h.snapshot(); count != total {
		t.Errorf("histogram count = %d, want %d", count, total)
	}
}

func TestInvalidRegistrationPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("ok_total", "x")
	expectPanic("duplicate", func() { r.Counter("ok_total", "x") })
	expectPanic("bad name", func() { r.Counter("0bad", "x") })
	expectPanic("bad label", func() { r.CounterVec("v_total", "x", "bad-label") })
	expectPanic("label arity", func() {
		v := r.CounterVec("w_total", "x", "a", "b")
		v.With("only-one")
	})
	expectPanic("counter decrease", func() { r.Counter("dec_total", "x").Add(-1) })
}
