package obs

import (
	"hash/fnv"
	"sync"
)

// TraceStore is a bounded per-node ring of finished traces, indexed by trace
// ID. Each node stores the spans *it* recorded; the /v1/traces handler fans
// a query across peers and merges the per-node span sets into one tree.
//
// Records for the same trace ID merge by span ID (a trace can be recorded
// more than once: when a forwarded submission's request ends, and again when
// its job completes), with the latest snapshot of each span winning. The
// ring evicts the least recently *updated* trace beyond the retain cap.
type TraceStore struct {
	mu     sync.Mutex
	retain int
	// sample is the precomputed FNV-64 threshold: a trace is stored when
	// hash(id) < sample. ^uint64(0) stores everything, 0 nothing.
	sample uint64

	byID  map[string]*storedTrace
	order []*storedTrace // least recently updated first
}

type storedTrace struct {
	id    string
	spans []SpanView     // start order of first sighting
	index map[string]int // span ID -> position in spans
	pos   int            // position in order (maintained on every move)
}

// TraceSummary is one row of the recent-traces listing.
type TraceSummary struct {
	TraceID string `json:"trace_id"`
	// Root is the name of the trace's locally-rooted span when this node
	// recorded one (e.g. "request"), else the first span's name.
	Root       string  `json:"root"`
	Spans      int     `json:"spans"`
	DurationMS float64 `json:"duration_ms"`
}

// NewTraceStore builds a store retaining up to retain traces and sampling
// the given fraction of trace IDs (clamped to [0,1]). Sampling hashes the
// trace ID, so every node in a cluster keeps or drops the *same* traces —
// a sampled-out trace is absent everywhere rather than partially assembled.
func NewTraceStore(retain int, sample float64) *TraceStore {
	if retain <= 0 {
		retain = 512
	}
	var threshold uint64
	switch {
	case sample >= 1:
		threshold = ^uint64(0)
	case sample <= 0:
		threshold = 0
	default:
		// 32-bit granularity avoids float->uint64 overflow at the top of
		// the range; plenty for a sampling knob.
		threshold = uint64(sample*float64(1<<32)) << 32
	}
	return &TraceStore{
		retain: retain,
		sample: threshold,
		byID:   make(map[string]*storedTrace),
	}
}

// Sampled reports whether a trace ID falls inside the store's sample.
func (st *TraceStore) Sampled(id string) bool {
	if st.sample == ^uint64(0) {
		return true
	}
	if st.sample == 0 {
		return false
	}
	h := fnv.New64a()
	h.Write([]byte(id))
	return h.Sum64() < st.sample
}

// Record stores the trace's current span snapshot, merging with any spans
// already stored under its ID. Unsampled traces are dropped silently.
func (st *TraceStore) Record(tr *Trace) {
	if tr == nil || !st.Sampled(tr.ID()) {
		return
	}
	st.RecordViews(tr.ID(), tr.Snapshot())
}

// RecordViews is Record for an already-snapshotted span set (the recovery
// path stores replayed traces this way). Unsampled IDs are dropped.
func (st *TraceStore) RecordViews(id string, spans []SpanView) {
	if id == "" || len(spans) == 0 || !st.Sampled(id) {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	t := st.byID[id]
	if t == nil {
		t = &storedTrace{id: id, index: make(map[string]int, len(spans))}
		st.byID[id] = t
		t.pos = len(st.order)
		st.order = append(st.order, t)
	} else {
		st.moveToBack(t)
	}
	for _, v := range spans {
		if i, ok := t.index[v.ID]; ok {
			t.spans[i] = v
			continue
		}
		t.index[v.ID] = len(t.spans)
		t.spans = append(t.spans, v)
	}
	for len(st.order) > st.retain {
		old := st.order[0]
		st.order = st.order[1:]
		for i, e := range st.order {
			e.pos = i
		}
		delete(st.byID, old.id)
	}
}

// moveToBack marks t most recently updated. Caller holds st.mu.
func (st *TraceStore) moveToBack(t *storedTrace) {
	last := len(st.order) - 1
	if st.order[last] == t {
		return
	}
	copy(st.order[t.pos:], st.order[t.pos+1:])
	st.order[last] = t
	for i := t.pos; i <= last; i++ {
		st.order[i].pos = i
	}
}

// Spans returns the stored span set for a trace ID, nil when absent.
func (st *TraceStore) Spans(id string) []SpanView {
	st.mu.Lock()
	defer st.mu.Unlock()
	t := st.byID[id]
	if t == nil {
		return nil
	}
	return append([]SpanView(nil), t.spans...)
}

// Recent lists up to limit stored traces, most recently updated first.
func (st *TraceStore) Recent(limit int) []TraceSummary {
	if limit <= 0 {
		limit = 20
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]TraceSummary, 0, min(limit, len(st.order)))
	for i := len(st.order) - 1; i >= 0 && len(out) < limit; i-- {
		t := st.order[i]
		s := TraceSummary{TraceID: t.id, Spans: len(t.spans)}
		for _, v := range t.spans {
			if v.Parent == "" && s.Root == "" {
				s.Root = v.Name
				s.DurationMS = v.DurationMS
			}
		}
		if s.Root == "" {
			s.Root = t.spans[0].Name
			s.DurationMS = t.spans[0].DurationMS
		}
		out = append(out, s)
	}
	return out
}

// Len returns the number of stored traces.
func (st *TraceStore) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.byID)
}
