package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// FlightRecorder is the daemon's black box: a fixed-size ring of recent
// structured events (admissions, governor transitions, queue depths,
// journal writes) that is cheap enough to feed on every job. When an
// anomaly fires — slow job, panic, deadline, degradation, shed,
// persistence failure — Dump snapshots the ring to a JSON file under the
// configured directory, so `emsstats flightrec` can reconstruct the
// seconds before the incident after the process is gone.
type FlightRecorder struct {
	node string
	dir  string // empty disables dumping (events still ring-buffer)

	// Now supplies timestamps; tests inject a deterministic clock so dumps
	// replay byte-identically under a committed chaos seed.
	Now func() time.Time
	// MaxDumps bounds the dump files kept on disk; oldest pruned first.
	MaxDumps int

	mu    sync.Mutex
	seq   uint64
	dumps uint64
	buf   []FlightEvent // ring, len == cap once full
	next  int           // ring write position
}

// FlightEvent is one entry in the flight-recorder ring.
type FlightEvent struct {
	Seq  uint64 `json:"seq"`
	AtNS int64  `json:"at_ns"`
	Kind string `json:"kind"`
	// Attrs hold small bounded values (job ID, queue depth, rung). Keys
	// render sorted (Go's JSON map ordering), keeping dumps deterministic.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// FlightDump is the on-disk snapshot format.
type FlightDump struct {
	Reason string            `json:"reason"`
	Seq    uint64            `json:"seq"` // dump ordinal on this node
	Node   string            `json:"node,omitempty"`
	AtNS   int64             `json:"at_ns"`
	Attrs  map[string]string `json:"attrs,omitempty"`
	Events []FlightEvent     `json:"events"`
}

// NewFlightRecorder builds a recorder ringing the last size events for
// node, dumping into dir on anomalies. An empty dir records events but
// never writes files.
func NewFlightRecorder(size int, dir, node string) *FlightRecorder {
	if size <= 0 {
		size = 256
	}
	return &FlightRecorder{
		node:     node,
		dir:      dir,
		Now:      time.Now,
		MaxDumps: 32,
		buf:      make([]FlightEvent, 0, size),
	}
}

// Note appends one event to the ring. attrs are alternating key/value
// pairs; a trailing odd key is dropped.
func (f *FlightRecorder) Note(kind string, attrs ...string) {
	if f == nil {
		return
	}
	var m map[string]string
	if len(attrs) >= 2 {
		m = make(map[string]string, len(attrs)/2)
		for i := 0; i+1 < len(attrs); i += 2 {
			m[attrs[i]] = attrs[i+1]
		}
	}
	now := f.Now().UnixNano()
	f.mu.Lock()
	f.seq++
	ev := FlightEvent{Seq: f.seq, AtNS: now, Kind: kind, Attrs: m}
	if len(f.buf) < cap(f.buf) {
		f.buf = append(f.buf, ev)
	} else {
		f.buf[f.next] = ev
		f.next = (f.next + 1) % cap(f.buf)
	}
	f.mu.Unlock()
}

// Events returns the ring contents in sequence order.
func (f *FlightRecorder) Events() []FlightEvent {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.eventsLocked()
}

func (f *FlightRecorder) eventsLocked() []FlightEvent {
	out := make([]FlightEvent, 0, len(f.buf))
	if len(f.buf) == cap(f.buf) {
		out = append(out, f.buf[f.next:]...)
		out = append(out, f.buf[:f.next]...)
	} else {
		out = append(out, f.buf...)
	}
	return out
}

// Dump snapshots the ring to a new file named dump-<ordinal>-<reason>.json
// (written via temp+rename so readers never see a torn file) and returns
// its path. A recorder with no directory returns "" without writing.
func (f *FlightRecorder) Dump(reason string, attrs ...string) string {
	if f == nil {
		return ""
	}
	var m map[string]string
	if len(attrs) >= 2 {
		m = make(map[string]string, len(attrs)/2)
		for i := 0; i+1 < len(attrs); i += 2 {
			m[attrs[i]] = attrs[i+1]
		}
	}
	now := f.Now().UnixNano()
	f.mu.Lock()
	f.dumps++
	d := FlightDump{
		Reason: reason,
		Seq:    f.dumps,
		Node:   f.node,
		AtNS:   now,
		Attrs:  m,
		Events: f.eventsLocked(),
	}
	dir := f.dir
	maxDumps := f.MaxDumps
	f.mu.Unlock()
	if dir == "" {
		return ""
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return ""
	}
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return ""
	}
	data = append(data, '\n')
	name := fmt.Sprintf("dump-%06d-%s.json", d.Seq, sanitizeReason(reason))
	path := filepath.Join(dir, name)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return ""
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return ""
	}
	pruneDumps(dir, maxDumps)
	return path
}

// sanitizeReason keeps dump filenames shell-safe.
func sanitizeReason(reason string) string {
	var b strings.Builder
	for _, r := range reason {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "anomaly"
	}
	return b.String()
}

// pruneDumps deletes the oldest dump files beyond the cap. Ordinal-named
// files sort lexically in creation order.
func pruneDumps(dir string, keep int) {
	if keep <= 0 {
		return
	}
	names, err := ListFlightDumps(dir)
	if err != nil || len(names) <= keep {
		return
	}
	for _, name := range names[:len(names)-keep] {
		os.Remove(filepath.Join(dir, name))
	}
}

// ListFlightDumps returns the dump filenames in dir, oldest first.
func ListFlightDumps(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		n := e.Name()
		if strings.HasPrefix(n, "dump-") && strings.HasSuffix(n, ".json") {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

// ReadFlightDump loads one dump file (emsstats flightrec).
func ReadFlightDump(path string) (*FlightDump, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d FlightDump
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &d, nil
}
