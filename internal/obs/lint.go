package obs

import (
	"strconv"
	"strings"
)

// ValidExpositionLine reports whether one line is well-formed Prometheus
// text exposition: empty, a HELP/TYPE (or free-form) comment, or a sample
// `name{label="value",...} value [timestamp]`. It is the check behind the
// CI scrape gate (cmd/emsd -check-metrics) and the registry's own format
// tests; it validates syntax only, not cross-line consistency.
func ValidExpositionLine(line string) bool {
	if line == "" {
		return true
	}
	if strings.HasPrefix(line, "#") {
		rest := strings.TrimPrefix(line, "#")
		if !strings.HasPrefix(rest, " ") {
			return false
		}
		fields := strings.SplitN(rest[1:], " ", 3)
		if len(fields) >= 2 && (fields[0] == "HELP" || fields[0] == "TYPE") {
			if !validName(fields[1]) {
				return false
			}
			if fields[0] == "TYPE" {
				if len(fields) != 3 {
					return false
				}
				switch fields[2] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return false
				}
			}
		}
		return true // other comments are legal and ignored by scrapers
	}
	// Sample line: metric name, optional label block, value, optional
	// timestamp.
	i := 0
	for i < len(line) && isNameChar(line[i], i == 0) {
		i++
	}
	if i == 0 {
		return false
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end := scanLabels(rest)
		if end < 0 {
			return false
		}
		rest = rest[end:]
	}
	if !strings.HasPrefix(rest, " ") {
		return false
	}
	fields := strings.Split(rest[1:], " ")
	if len(fields) < 1 || len(fields) > 2 {
		return false
	}
	if !validSampleValue(fields[0]) {
		return false
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return false
		}
	}
	return true
}

func isNameChar(c byte, first bool) bool {
	alpha := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
	return alpha || (!first && c >= '0' && c <= '9')
}

// scanLabels consumes a {name="value",...} block starting at s[0] == '{'
// and returns the index just past the closing brace, or -1 when malformed.
func scanLabels(s string) int {
	i := 1
	for {
		if i < len(s) && s[i] == '}' {
			return i + 1
		}
		start := i
		for i < len(s) && isNameChar(s[i], i == start) {
			i++
		}
		if i == start || i >= len(s) || s[i] != '=' {
			return -1
		}
		i++
		if i >= len(s) || s[i] != '"' {
			return -1
		}
		i++
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' {
				i++ // escaped char: skip it whatever it is
			}
			i++
		}
		if i >= len(s) {
			return -1
		}
		i++ // closing quote
		if i < len(s) && s[i] == ',' {
			i++
			continue
		}
		if i < len(s) && s[i] == '}' {
			return i + 1
		}
		return -1
	}
}

func validSampleValue(s string) bool {
	switch s {
	case "+Inf", "-Inf", "NaN", "Inf":
		return true
	}
	_, err := strconv.ParseFloat(s, 64)
	return err == nil
}
