package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
	"time"
)

// Trace is one request's trace: an ID (client-supplied via X-Request-ID,
// propagated from a peer via X-Emsd-Trace, or generated) plus the spans
// recorded while the request's job moved through the pipeline — parse,
// graph build, iteration, selection, peer hops. Each span carries its own
// ID, its parent span ID, the recording node's ID, and free-form key/value
// attributes, so spans recorded on different cluster nodes under the same
// trace ID assemble into one parent-linked tree (GET /v1/traces/{id}).
// All methods are safe for concurrent use: the match engine starts spans
// from its direction goroutines.
type Trace struct {
	id     string
	start  time.Time
	node   string // set once via SetNode before the trace is shared
	parent string // remote parent span ID carried in from X-Emsd-Trace

	mu    sync.Mutex
	spans []*Span
	root  *Span // request root; parent of subsequently started spans
	attrs map[string]string
	kept  bool
	onEnd func(*Span) // span-end hook (phase histograms); set before sharing
}

// Span is one named, timed phase of a trace. End it exactly once; End is
// idempotent.
type Span struct {
	tr     *Trace
	id     string
	parent string
	name   string
	start  time.Time

	mu    sync.Mutex
	dur   time.Duration
	ended bool
	attrs map[string]string
}

// NewTrace starts a trace. An empty id generates a fresh one.
func NewTrace(id string) *Trace {
	return NewTraceWithParent(id, "")
}

// NewTraceWithParent starts a trace whose top-level spans parent under a
// span recorded on another node — the propagation half of distributed
// tracing. An empty id generates a fresh one; an empty parent is NewTrace.
func NewTraceWithParent(id, parentSpanID string) *Trace {
	if id == "" {
		id = NewTraceID()
	}
	return &Trace{id: id, parent: parentSpanID, start: time.Now()}
}

// NewTraceID returns a 16-byte random hex ID.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; degrade to a
		// constant rather than panicking inside request handling.
		return "00000000000000000000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// NewSpanID returns an 8-byte random hex ID.
func NewSpanID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// ID returns the trace ID.
func (t *Trace) ID() string { return t.id }

// ParentSpan returns the remote parent span ID the trace was created with
// (empty for origin traces).
func (t *Trace) ParentSpan() string { return t.parent }

// SetNode stamps the recording node's ID onto the trace; every span
// snapshot carries it. Call before the trace is shared.
func (t *Trace) SetNode(node string) {
	t.mu.Lock()
	t.node = node
	t.mu.Unlock()
}

// Node returns the recording node's ID.
func (t *Trace) Node() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.node
}

// OnSpanEnd installs a hook called exactly once per span as it ends (the
// metrics layer feeds per-phase histograms from it). Call before the trace
// is shared; a nil fn clears the hook.
func (t *Trace) OnSpanEnd(fn func(*Span)) {
	t.mu.Lock()
	t.onEnd = fn
	t.mu.Unlock()
}

// SetAttr sets a trace-level attribute (e.g. the degradation rung), visible
// to span-end hooks via Span.Trace().Attr.
func (t *Trace) SetAttr(key, value string) {
	t.mu.Lock()
	if t.attrs == nil {
		t.attrs = make(map[string]string, 4)
	}
	t.attrs[key] = value
	t.mu.Unlock()
}

// Attr reads a trace-level attribute; empty when unset.
func (t *Trace) Attr(key string) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.attrs[key]
}

// Keep marks the trace as worth publishing to the trace store when its
// request finishes. Submission and relay paths set it; pure read traffic
// (polls, metrics scrapes) stays unmarked and is never stored.
func (t *Trace) Keep() {
	t.mu.Lock()
	t.kept = true
	t.mu.Unlock()
}

// Kept reports whether Keep was called.
func (t *Trace) Kept() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.kept
}

// StartSpan opens a span; call End on the returned span when the phase
// finishes. The span parents under the trace's root span when one was
// started (StartRoot), else under the trace's remote parent.
func (t *Trace) StartSpan(name string) *Span {
	s := &Span{tr: t, id: NewSpanID(), name: name, start: time.Now()}
	t.mu.Lock()
	if t.root != nil {
		s.parent = t.root.id
	} else {
		s.parent = t.parent
	}
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// StartRoot opens the trace's root span — the one later spans parent under.
// The first StartRoot wins; later calls open ordinary spans. The HTTP
// middleware starts one per request, named "request".
func (t *Trace) StartRoot(name string) *Span {
	s := &Span{tr: t, id: NewSpanID(), name: name, start: time.Now(), parent: t.parent}
	t.mu.Lock()
	if t.root == nil {
		t.root = s
	} else {
		s.parent = t.root.id
	}
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// Root returns the root span, nil before StartRoot.
func (t *Trace) Root() *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.root
}

// Span opens a span and returns its End function — the shape the core
// engine's Config.Span hook wants, so a Trace can be handed to the engine
// as `cfg.Span = trace.Span`.
func (t *Trace) Span(name string) func() {
	return t.StartSpan(name).End
}

// ID returns the span's ID (8-byte hex, unique within the cluster for all
// practical purposes).
func (s *Span) ID() string { return s.id }

// Name returns the span's phase name.
func (s *Span) Name() string { return s.name }

// Parent returns the parent span ID; empty for a root span of an origin
// trace.
func (s *Span) Parent() string { return s.parent }

// Trace returns the trace the span belongs to.
func (s *Span) Trace() *Trace { return s.tr }

// Duration returns the span's final length once ended, the elapsed time so
// far while still open.
func (s *Span) Duration() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		return time.Since(s.start)
	}
	return s.dur
}

// SetAttr attaches a key/value attribute to the span (rounds, evals,
// degradation mode, cache hit/miss, ...). Safe to call concurrently with
// snapshots; last write per key wins.
func (s *Span) SetAttr(key, value string) {
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// End closes the span; safe to call more than once (later calls are
// ignored) and from a different goroutine than StartSpan.
func (s *Span) End() {
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	s.mu.Unlock()
	s.tr.mu.Lock()
	hook := s.tr.onEnd
	s.tr.mu.Unlock()
	if hook != nil {
		hook(s)
	}
}

// SpanView is the JSON-friendly snapshot of one span, offsets relative to
// the trace start. It is also the wire form /v1/traces exchanges between
// nodes, so StartUnixNS carries the absolute start for cross-node ordering.
type SpanView struct {
	ID     string `json:"id,omitempty"`
	Parent string `json:"parent,omitempty"`
	Node   string `json:"node,omitempty"`
	Name   string `json:"name"`
	// StartMS is the offset from the recording trace's start; StartUnixNS
	// is the absolute wall-clock start used to order spans across nodes.
	StartMS     float64 `json:"start_ms"`
	StartUnixNS int64   `json:"start_unix_ns,omitempty"`
	// DurationMS is the span length; for a still-open span it is the time
	// elapsed so far and Open is true.
	DurationMS float64           `json:"duration_ms"`
	Open       bool              `json:"open,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// Snapshot returns the spans recorded so far in start order.
func (t *Trace) Snapshot() []SpanView {
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	node := t.node
	t.mu.Unlock()
	out := make([]SpanView, 0, len(spans))
	for _, s := range spans {
		s.mu.Lock()
		d, ended := s.dur, s.ended
		var attrs map[string]string
		if len(s.attrs) > 0 {
			attrs = make(map[string]string, len(s.attrs))
			for k, v := range s.attrs {
				attrs[k] = v
			}
		}
		s.mu.Unlock()
		if !ended {
			d = time.Since(s.start)
		}
		out = append(out, SpanView{
			ID:          s.id,
			Parent:      s.parent,
			Node:        node,
			Name:        s.name,
			StartMS:     durMS(s.start.Sub(t.start)),
			StartUnixNS: s.start.UnixNano(),
			DurationMS:  durMS(d),
			Open:        !ended,
			Attrs:       attrs,
		})
	}
	return out
}

// Timeline renders the spans as a one-line-per-span text block for the
// slow-job log:
//
//	parse            +0.0ms      1.2ms
//	graph-build      +1.3ms      4.0ms
//	iterate          +5.4ms    310.9ms
func (t *Trace) Timeline() string {
	views := t.Snapshot()
	var b strings.Builder
	for _, v := range views {
		open := ""
		if v.Open {
			open = " (open)"
		}
		fmt.Fprintf(&b, "%-24s +%9.1fms %10.1fms%s\n", v.Name, v.StartMS, v.DurationMS, open)
	}
	return strings.TrimRight(b.String(), "\n")
}

func durMS(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// TraceHeader is the W3C-traceparent-style propagation header peers carry
// on every forwarded, proxied, or fanned-out exchange: the trace ID plus
// the span ID of the calling side's hop span, so spans recorded on the
// receiving node parent under the sender's span.
const TraceHeader = "X-Emsd-Trace"

// traceHeaderSep joins trace ID and parent span ID in TraceHeader. The span
// ID is always plain hex, so splitting at the last separator is unambiguous
// even for client-supplied trace IDs that contain the separator themselves.
const traceHeaderSep = ";"

// FormatTraceHeader renders the TraceHeader value.
func FormatTraceHeader(traceID, parentSpanID string) string {
	return traceID + traceHeaderSep + parentSpanID
}

// ParseTraceHeader splits a TraceHeader value; ok is false for malformed or
// oversized values (the caller should fall back to a fresh trace).
func ParseTraceHeader(v string) (traceID, parentSpanID string, ok bool) {
	if v == "" || len(v) > 256 {
		return "", "", false
	}
	i := strings.LastIndex(v, traceHeaderSep)
	if i <= 0 { // no separator, or empty trace ID
		return "", "", false
	}
	return v[:i], v[i+1:], true
}

// traceKey carries a *Trace through a context.
type traceKey struct{}

// ContextWithTrace attaches the trace to the context; the ems facade picks
// it up and arms the engine's span hook from it, and cluster.Client
// propagates its ID to peers.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom extracts the trace from a context; nil when none (or when ctx
// itself is nil, so callers can pass an optional context straight through).
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
