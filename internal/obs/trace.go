package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
	"time"
)

// Trace is one request's in-process trace: an ID (client-supplied via
// X-Request-ID or generated) plus the spans recorded while the request's
// job moved through the pipeline — parse, graph build, iteration,
// selection. Spans are wall-clock only and kept in memory; the point is a
// per-job time breakdown in the job metadata and the slow-job log, not
// distributed tracing. All methods are safe for concurrent use: the match
// engine starts spans from its direction goroutines.
type Trace struct {
	id    string
	start time.Time

	mu    sync.Mutex
	spans []*Span
}

// Span is one named, timed phase of a trace. End it exactly once; End is
// idempotent.
type Span struct {
	tr    *Trace
	name  string
	start time.Time

	mu    sync.Mutex
	dur   time.Duration
	ended bool
}

// NewTrace starts a trace. An empty id generates a fresh one.
func NewTrace(id string) *Trace {
	if id == "" {
		id = NewTraceID()
	}
	return &Trace{id: id, start: time.Now()}
}

// NewTraceID returns a 16-byte random hex ID.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; degrade to a
		// constant rather than panicking inside request handling.
		return "00000000000000000000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// ID returns the trace ID.
func (t *Trace) ID() string { return t.id }

// StartSpan opens a span; call End on the returned span when the phase
// finishes.
func (t *Trace) StartSpan(name string) *Span {
	s := &Span{tr: t, name: name, start: time.Now()}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// Span opens a span and returns its End function — the shape the core
// engine's Config.Span hook wants, so a Trace can be handed to the engine
// as `cfg.Span = trace.Span`.
func (t *Trace) Span(name string) func() {
	return t.StartSpan(name).End
}

// End closes the span; safe to call more than once (later calls are
// ignored) and from a different goroutine than StartSpan.
func (s *Span) End() {
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	s.mu.Unlock()
}

// SpanView is the JSON-friendly snapshot of one span, offsets relative to
// the trace start.
type SpanView struct {
	Name    string  `json:"name"`
	StartMS float64 `json:"start_ms"`
	// DurationMS is the span length; for a still-open span it is the time
	// elapsed so far and Open is true.
	DurationMS float64 `json:"duration_ms"`
	Open       bool    `json:"open,omitempty"`
}

// Snapshot returns the spans recorded so far in start order.
func (t *Trace) Snapshot() []SpanView {
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	t.mu.Unlock()
	out := make([]SpanView, 0, len(spans))
	for _, s := range spans {
		s.mu.Lock()
		d, ended := s.dur, s.ended
		s.mu.Unlock()
		if !ended {
			d = time.Since(s.start)
		}
		out = append(out, SpanView{
			Name:       s.name,
			StartMS:    durMS(s.start.Sub(t.start)),
			DurationMS: durMS(d),
			Open:       !ended,
		})
	}
	return out
}

// Timeline renders the spans as a one-line-per-span text block for the
// slow-job log:
//
//	parse            +0.0ms      1.2ms
//	graph-build      +1.3ms      4.0ms
//	iterate          +5.4ms    310.9ms
func (t *Trace) Timeline() string {
	views := t.Snapshot()
	var b strings.Builder
	for _, v := range views {
		open := ""
		if v.Open {
			open = " (open)"
		}
		fmt.Fprintf(&b, "%-24s +%9.1fms %10.1fms%s\n", v.Name, v.StartMS, v.DurationMS, open)
	}
	return strings.TrimRight(b.String(), "\n")
}

func durMS(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// traceKey carries a *Trace through a context.
type traceKey struct{}

// ContextWithTrace attaches the trace to the context; the ems facade picks
// it up and arms the engine's span hook from it.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom extracts the trace from a context; nil when none (or when ctx
// itself is nil, so callers can pass an optional context straight through).
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
