package obs

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// fakeClock returns a deterministic, strictly increasing clock.
func fakeClock() func() time.Time {
	var mu sync.Mutex
	t0 := time.Unix(1700000000, 0)
	n := 0
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		n++
		return t0.Add(time.Duration(n) * time.Millisecond)
	}
}

func TestFlightRecorderRing(t *testing.T) {
	f := NewFlightRecorder(4, "", "node-a")
	f.Now = fakeClock()
	for i := 0; i < 6; i++ {
		f.Note("admit", "job", fmt.Sprintf("job-%d", i))
	}
	evs := f.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(i + 3); ev.Seq != want {
			t.Errorf("event %d seq = %d, want %d", i, ev.Seq, want)
		}
	}
	if evs[0].Attrs["job"] != "job-2" || evs[3].Attrs["job"] != "job-5" {
		t.Errorf("ring contents = %+v", evs)
	}
	// No directory: Dump records but writes nothing.
	if path := f.Dump("slow-job"); path != "" {
		t.Errorf("dir-less Dump wrote %q", path)
	}
}

func TestFlightRecorderDump(t *testing.T) {
	dir := t.TempDir()
	f := NewFlightRecorder(8, dir, "node-a")
	f.Now = fakeClock()
	f.Note("admit", "job", "job-000001", "queue_depth", "0")
	f.Note("journal.write", "job", "job-000001")
	path := f.Dump("slow-job", "job", "job-000001", "elapsed", "120ms")
	if path == "" {
		t.Fatal("Dump returned empty path")
	}
	d, err := ReadFlightDump(path)
	if err != nil {
		t.Fatal(err)
	}
	if d.Reason != "slow-job" || d.Node != "node-a" || d.Seq != 1 {
		t.Errorf("dump header = %+v", d)
	}
	if d.Attrs["job"] != "job-000001" {
		t.Errorf("dump attrs = %v", d.Attrs)
	}
	if len(d.Events) != 2 || d.Events[0].Kind != "admit" || d.Events[1].Kind != "journal.write" {
		t.Errorf("dump events = %+v", d.Events)
	}
	names, err := ListFlightDumps(dir)
	if err != nil || len(names) != 1 || names[0] != "dump-000001-slow-job.json" {
		t.Errorf("ListFlightDumps = %v, %v", names, err)
	}
	if _, err := os.Stat(filepath.Join(dir, names[0]+".tmp")); !os.IsNotExist(err) {
		t.Error("temp file left behind")
	}
}

func TestFlightRecorderPrune(t *testing.T) {
	dir := t.TempDir()
	f := NewFlightRecorder(8, dir, "node-a")
	f.Now = fakeClock()
	f.MaxDumps = 3
	for i := 0; i < 5; i++ {
		f.Note("admit")
		f.Dump("shed")
	}
	names, err := ListFlightDumps(dir)
	if err != nil || len(names) != 3 {
		t.Fatalf("kept %d dumps (%v), want 3", len(names), err)
	}
	if names[0] != "dump-000003-shed.json" || names[2] != "dump-000005-shed.json" {
		t.Errorf("pruned wrong files: %v", names)
	}
}

// TestFlightRecorderDeterministic replays the same event sequence under the
// same injected clock twice and requires byte-identical dump files — the
// property the chaos harness's committed-seed replay leans on.
func TestFlightRecorderDeterministic(t *testing.T) {
	run := func(dir string) []byte {
		f := NewFlightRecorder(8, dir, "node-a")
		f.Now = fakeClock()
		f.Note("admit", "job", "job-000001", "queue_depth", "0")
		f.Note("governor", "state", "pressured")
		f.Note("journal.error", "job", "job-000001", "err", "short write")
		path := f.Dump("persist-failure", "job", "job-000001")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a := run(t.TempDir())
	b := run(t.TempDir())
	if !bytes.Equal(a, b) {
		t.Errorf("dumps differ:\n%s\n----\n%s", a, b)
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.Note("admit")
	if f.Dump("x") != "" || f.Events() != nil {
		t.Error("nil recorder not inert")
	}
}
