package obs

import (
	"net/http"
	"strconv"
	"time"
)

// HTTPMetrics instruments HTTP handlers: request counts by route, method
// and status class; a latency histogram by route; and an in-flight gauge.
// Routes are explicit strings (the mux pattern), not raw URLs, so the label
// cardinality stays bounded no matter what clients request.
type HTTPMetrics struct {
	inFlight *Gauge
	requests *CounterVec
	latency  *HistogramVec
}

// NewHTTPMetrics registers the HTTP metric families on r under the given
// namespace prefix (e.g. "emsd" → emsd_http_requests_total).
func NewHTTPMetrics(r *Registry, namespace string) *HTTPMetrics {
	return &HTTPMetrics{
		inFlight: r.Gauge(namespace+"_http_in_flight_requests",
			"Requests currently being served."),
		requests: r.CounterVec(namespace+"_http_requests_total",
			"HTTP requests served, by route, method and status code.",
			"route", "method", "code"),
		latency: r.HistogramVec(namespace+"_http_request_duration_seconds",
			"HTTP request latency in seconds, by route.",
			DefBuckets(), "route"),
	}
}

// statusRecorder captures the status code a handler writes.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (s *statusRecorder) WriteHeader(code int) {
	s.code = code
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusRecorder) Write(p []byte) (int, error) {
	if s.code == 0 {
		s.code = http.StatusOK
	}
	return s.ResponseWriter.Write(p)
}

// Wrap instruments one route's handler. The route string becomes the
// "route" label value.
func (m *HTTPMetrics) Wrap(route string, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m.inFlight.Inc()
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		defer func() {
			m.inFlight.Dec()
			code := rec.code
			if code == 0 {
				code = http.StatusOK
			}
			m.requests.With(route, r.Method, strconv.Itoa(code)).Inc()
			m.latency.With(route).Observe(time.Since(start).Seconds())
		}()
		h.ServeHTTP(rec, r)
	})
}

// RequestIDHeader is the header a client sets to correlate its request with
// the job's trace; responses echo it back.
const RequestIDHeader = "X-Request-ID"

// TraceConfig customizes TraceMiddlewareWith.
type TraceConfig struct {
	// Node is stamped onto every trace (and thus every span snapshot) as
	// the recording node's ID.
	Node string
	// OnSpanEnd is installed on every trace as its span-end hook (see
	// Trace.OnSpanEnd); nil installs none.
	OnSpanEnd func(*Span)
	// OnRequestEnd is called after the handler returns, with the request's
	// trace, its root span already ended. The server publishes kept traces
	// to the trace store from here. nil disables.
	OnRequestEnd func(*Trace)
}

// TraceMiddleware attaches a Trace to every request's context: the ID is
// taken from the X-Emsd-Trace propagation header when present (joining the
// sender's trace and parenting under its hop span), else from the
// X-Request-ID header (truncated to 128 bytes), else generated. The
// resolved ID is echoed back via X-Request-ID so clients learn generated
// IDs.
func TraceMiddleware(next http.Handler) http.Handler {
	return TraceMiddlewareWith(next, TraceConfig{})
}

// TraceMiddlewareWith is TraceMiddleware with node stamping and hooks. Each
// request's trace gets a root span named "request" (method and path as
// attributes) that later spans — including engine phases of a job the
// request submits — parent under.
func TraceMiddlewareWith(next http.Handler, cfg TraceConfig) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var tr *Trace
		if tid, parent, ok := ParseTraceHeader(r.Header.Get(TraceHeader)); ok {
			tr = NewTraceWithParent(tid, parent)
		} else {
			id := r.Header.Get(RequestIDHeader)
			if len(id) > 128 {
				id = id[:128]
			}
			tr = NewTrace(id)
		}
		tr.SetNode(cfg.Node)
		tr.OnSpanEnd(cfg.OnSpanEnd)
		root := tr.StartRoot("request")
		root.SetAttr("method", r.Method)
		root.SetAttr("path", r.URL.Path)
		w.Header().Set(RequestIDHeader, tr.ID())
		next.ServeHTTP(w, r.WithContext(ContextWithTrace(r.Context(), tr)))
		root.End()
		if cfg.OnRequestEnd != nil {
			cfg.OnRequestEnd(tr)
		}
	})
}
