// Package obs is the stdlib-only observability layer of the repository: a
// Prometheus text-exposition metric registry (counters, gauges, histograms,
// with optional label dimensions), lightweight in-process request tracing
// (trace IDs and spans carried through context), and HTTP middleware that
// records per-route traffic. It exists so emsd can be operated like a real
// service — scraped, traced, and profiled — without importing anything
// beyond the standard library.
//
// The exposition format follows the Prometheus text format version 0.0.4:
// one HELP and TYPE comment per metric family, then one sample line per
// labeled series, histograms expanded into cumulative _bucket/_sum/_count
// series. Families render in registration order and series in first-use
// order, so the output is deterministic and goldenable.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// metricKind is the TYPE of a family in the exposition output.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// Registry holds metric families and renders them in the Prometheus text
// format. The zero value is not usable; create with NewRegistry. All
// methods are safe for concurrent use, including rendering while metrics
// are being updated.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// family is one named metric with a fixed kind and label schema.
type family struct {
	name, help string
	kind       metricKind
	labels     []string

	mu     sync.Mutex
	series map[string]series // canonical label-value key → series
	order  []string          // first-use order of keys, for stable output
	read   func() float64    // func-backed single series (labels must be empty)
}

// series is one labeled instance of a family.
type series interface {
	// write appends the sample line(s) for this series. name is the family
	// name, lbl the rendered {k="v",...} block (may be empty).
	write(w io.Writer, name, lbl string)
}

// validName matches the Prometheus metric and label name charset.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// register creates a family, panicking on invalid or duplicate names —
// metric registration happens at construction time, so a bad name is a
// programming error, not a runtime condition.
func (r *Registry) register(name, help string, kind metricKind, labels []string) *family {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l) || strings.HasPrefix(l, "__") {
			panic(fmt.Sprintf("obs: invalid label name %q for metric %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels: append([]string(nil), labels...),
		series: make(map[string]series),
	}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// labelKey canonicalizes label values into the series map key and the
// rendered label block. values must match the family's label schema.
func (f *family) labelKey(values []string) (key, rendered string) {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	if len(values) == 0 {
		return "", ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range f.labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	s := b.String()
	return s, s
}

// escapeLabel escapes a label value per the text format: backslash, double
// quote, and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// get returns the series for the label values, creating it with mk on first
// use.
func (f *family) get(values []string, mk func() series) series {
	key, _ := f.labelKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = mk()
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// formatFloat renders a sample value: shortest round-trip representation,
// with the Prometheus spellings of the special values.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteTo renders every family in the Prometheus text exposition format.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	cw := &countingWriter{w: w}
	for _, f := range fams {
		f.writeTo(cw)
		if cw.err != nil {
			return cw.n, cw.err
		}
	}
	return cw.n, cw.err
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}

func (f *family) writeTo(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n", f.name, strings.NewReplacer("\\", `\\`, "\n", `\n`).Replace(f.help))
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
	if f.read != nil {
		fmt.Fprintf(w, "%s %s\n", f.name, formatFloat(f.read()))
		return
	}
	f.mu.Lock()
	keys := append([]string(nil), f.order...)
	ss := make([]series, len(keys))
	for i, k := range keys {
		ss[i] = f.series[k]
	}
	f.mu.Unlock()
	for i, s := range ss {
		s.write(w, f.name, keys[i])
	}
}

// ServeHTTP renders the registry, so a Registry can be mounted directly at
// GET /metrics.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = r.WriteTo(w)
}

// ---- counters ----

// Counter is a monotonically increasing sample. Float-valued adds are
// supported (e.g. accumulated seconds); bits are maintained with CAS so
// concurrent Adds never lose increments.
type Counter struct{ bits atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter; negative deltas are a programming error and
// panic.
func (c *Counter) Add(d float64) {
	if d < 0 {
		panic("obs: counter decrease")
	}
	addFloat(&c.bits, d)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

func (c *Counter) write(w io.Writer, name, lbl string) {
	fmt.Fprintf(w, "%s%s %s\n", name, lbl, formatFloat(c.Value()))
}

func addFloat(bits *atomic.Uint64, d float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Counter registers an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, kindCounter, nil)
	return f.get(nil, func() series { return &Counter{} }).(*Counter)
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time. Use it to re-export counters that already live elsewhere (e.g. the
// server's job metrics) without double accounting. fn must be safe for
// concurrent use and monotone.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.register(name, help, kindCounter, nil)
	f.read = fn
}

// CounterVec is a counter family with label dimensions.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic("obs: CounterVec needs at least one label (use Counter)")
	}
	return &CounterVec{f: r.register(name, help, kindCounter, labels)}
}

// With returns the counter for the given label values, creating it on first
// use.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.get(values, func() series { return &Counter{} }).(*Counter)
}

// ---- gauges ----

// Gauge is a sample that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the value by d (negative is fine).
func (g *Gauge) Add(d float64) { addFloat(&g.bits, d) }

// Inc adds one; Dec subtracts one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) write(w io.Writer, name, lbl string) {
	fmt.Fprintf(w, "%s%s %s\n", name, lbl, formatFloat(g.Value()))
}

// Gauge registers an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, kindGauge, nil)
	return f.get(nil, func() series { return &Gauge{} }).(*Gauge)
}

// GaugeFunc registers a gauge read from fn at scrape time (e.g. live queue
// depth). fn must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, kindGauge, nil)
	f.read = fn
}

// GaugeVec is a gauge family with label dimensions.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if len(labels) == 0 {
		panic("obs: GaugeVec needs at least one label (use Gauge)")
	}
	return &GaugeVec{f: r.register(name, help, kindGauge, labels)}
}

// With returns the gauge for the given label values, creating it on first
// use.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.get(values, func() series { return &Gauge{} }).(*Gauge)
}

// ---- histograms ----

// DefBuckets are the default histogram buckets, identical to the Prometheus
// client defaults: tuned for request latencies in seconds from 5ms to 10s.
func DefBuckets() []float64 {
	return []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}
}

// Histogram counts observations into cumulative buckets. Buckets are fixed
// at registration; observation is lock-free (one atomic increment into the
// owning bucket, one CAS add into the sum).
type Histogram struct {
	upper  []float64 // sorted upper bounds, excluding +Inf
	counts []atomic.Uint64
	inf    atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

func newHistogram(buckets []float64) *Histogram {
	up := append([]float64(nil), buckets...)
	sort.Float64s(up)
	// Drop a trailing +Inf: the implicit overflow bucket covers it.
	for len(up) > 0 && math.IsInf(up[len(up)-1], 1) {
		up = up[:len(up)-1]
	}
	return &Histogram{upper: up, counts: make([]atomic.Uint64, len(up))}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v) // first bucket with upper >= v
	if i < len(h.upper) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	addFloat(&h.sum, v)
}

// snapshot returns cumulative bucket counts (including +Inf last), the
// total count and the sum. Concurrent Observes may land between the bucket
// loads; each line is individually consistent, which is all the text format
// promises.
func (h *Histogram) snapshot() (cum []uint64, count uint64, sum float64) {
	cum = make([]uint64, len(h.upper)+1)
	var running uint64
	for i := range h.upper {
		running += h.counts[i].Load()
		cum[i] = running
	}
	running += h.inf.Load()
	cum[len(h.upper)] = running
	return cum, running, math.Float64frombits(h.sum.Load())
}

func (h *Histogram) write(w io.Writer, name, lbl string) {
	cum, count, sum := h.snapshot()
	for i, up := range h.upper {
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabel(lbl, "le", formatFloat(up)), cum[i])
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabel(lbl, "le", "+Inf"), cum[len(cum)-1])
	fmt.Fprintf(w, "%s_sum%s %s\n", name, lbl, formatFloat(sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, lbl, count)
}

// mergeLabel inserts one extra label pair into an already-rendered label
// block (used for the histogram "le" label).
func mergeLabel(lbl, k, v string) string {
	extra := k + `="` + escapeLabel(v) + `"`
	if lbl == "" {
		return "{" + extra + "}"
	}
	return lbl[:len(lbl)-1] + "," + extra + "}"
}

// Histogram registers an unlabeled histogram; nil buckets use DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets()
	}
	f := r.register(name, help, kindHistogram, nil)
	return f.get(nil, func() series { return newHistogram(buckets) }).(*Histogram)
}

// HistogramVec is a histogram family with label dimensions; every series
// shares the bucket layout.
type HistogramVec struct {
	f       *family
	buckets []float64
}

// HistogramVec registers a labeled histogram family; nil buckets use
// DefBuckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(labels) == 0 {
		panic("obs: HistogramVec needs at least one label (use Histogram)")
	}
	if buckets == nil {
		buckets = DefBuckets()
	}
	return &HistogramVec{f: r.register(name, help, kindHistogram, labels), buckets: append([]float64(nil), buckets...)}
}

// With returns the histogram for the given label values, creating it on
// first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.get(values, func() series { return newHistogram(v.buckets) }).(*Histogram)
}
