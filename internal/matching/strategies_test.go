package matching

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStrategyString(t *testing.T) {
	if MaxTotal.String() != "max-total" || Greedy.String() != "greedy" || Stable.String() != "stable" {
		t.Errorf("strategy names wrong")
	}
}

func TestSelectWithUnknownStrategy(t *testing.T) {
	if _, err := SelectWith(Strategy(9), []string{"a"}, []string{"x"}, []float64{1}, 0, nil); err == nil {
		t.Errorf("unknown strategy accepted")
	}
}

func TestGreedyVsMaxTotal(t *testing.T) {
	// Greedy takes (0,0)=0.9 then is stuck with (1,1)=0.1; MaxTotal finds
	// the cross pairing worth 1.6.
	names1 := []string{"a", "b"}
	names2 := []string{"x", "y"}
	sim := []float64{
		0.9, 0.8,
		0.8, 0.1,
	}
	g, err := SelectWith(Greedy, names1, names2, sim, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Keys()[NewCorrespondence([]string{"a"}, []string{"x"}, 0).Key()] {
		t.Errorf("greedy did not take the locally best pair: %v", g)
	}
	m, err := SelectWith(MaxTotal, names1, names2, sim, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	var gt, mt float64
	for _, c := range g {
		gt += c.Score
	}
	for _, c := range m {
		mt += c.Score
	}
	if mt < gt {
		t.Errorf("max-total %g below greedy %g", mt, gt)
	}
}

func TestStableNoBlockingPair(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(5)
		cols := 1 + rng.Intn(5)
		sim := make([]float64, rows*cols)
		for i := range sim {
			sim[i] = math.Round(rng.Float64()*100) / 100
		}
		names1 := make([]string, rows)
		names2 := make([]string, cols)
		for i := range names1 {
			names1[i] = string(rune('a' + i))
		}
		for j := range names2 {
			names2[j] = string(rune('A' + j))
		}
		m, err := SelectWith(Stable, names1, names2, sim, 0, nil)
		if err != nil {
			return false
		}
		// Reconstruct the assignment.
		rowOf := map[string]string{}
		colOf := map[string]string{}
		for _, c := range m {
			rowOf[c.Left[0]] = c.Right[0]
			colOf[c.Right[0]] = c.Left[0]
		}
		val := func(a, b string) float64 {
			var i, j int
			for k, n := range names1 {
				if n == a {
					i = k
				}
			}
			for k, n := range names2 {
				if n == b {
					j = k
				}
			}
			return sim[i*cols+j]
		}
		// Blocking pair check: no (a, B) both strictly preferring each
		// other over their partners (unmatched counts as value -inf).
		for _, a := range names1 {
			for _, B := range names2 {
				v := val(a, B)
				pa, hasA := rowOf[a]
				pb, hasB := colOf[B]
				prefersA := !hasA || v > val(a, pa)
				prefersB := !hasB || v > val(pb, B)
				if prefersA && prefersB && (hasA || hasB || v > 0) && rowOf[a] != B {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestStrategiesAgreeOnDiagonalMatrix(t *testing.T) {
	names := []string{"a", "b", "c"}
	sim := []float64{
		0.9, 0.1, 0.1,
		0.1, 0.9, 0.1,
		0.1, 0.1, 0.9,
	}
	for _, s := range []Strategy{MaxTotal, Greedy, Stable} {
		m, err := SelectWith(s, names, names, sim, 0, nil)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if len(m) != 3 {
			t.Fatalf("%v selected %d pairs", s, len(m))
		}
		for _, c := range m {
			if c.Left[0] != c.Right[0] {
				t.Errorf("%v off-diagonal pair %v", s, c)
			}
		}
	}
}

func TestStrategiesRespectThreshold(t *testing.T) {
	names1 := []string{"a"}
	names2 := []string{"x"}
	for _, s := range []Strategy{MaxTotal, Greedy, Stable} {
		m, err := SelectWith(s, names1, names2, []float64{0.05}, 0.5, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(m) != 0 {
			t.Errorf("%v ignored threshold: %v", s, m)
		}
	}
}

func TestStrategiesSizeMismatch(t *testing.T) {
	for _, s := range []Strategy{MaxTotal, Greedy, Stable} {
		if _, err := SelectWith(s, []string{"a"}, []string{"x"}, []float64{1, 2}, 0, nil); err == nil {
			t.Errorf("%v: size mismatch accepted", s)
		}
	}
}

func TestStableRectangular(t *testing.T) {
	names1 := []string{"a", "b", "c"}
	names2 := []string{"x"}
	sim := []float64{0.2, 0.9, 0.5}
	m, err := SelectWith(Stable, names1, names2, sim, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 1 || m[0].Left[0] != "b" {
		t.Errorf("stable rectangular = %v, want b->x", m)
	}
}
