package matching

import (
	"fmt"
	"sort"

	"repro/internal/assignment"
)

// Strategy selects how pair-wise similarities become 1:1 correspondences.
// The paper uses maximum total similarity [17]; Section 6 outlines
// alternatives, implemented here for comparison.
type Strategy int

const (
	// MaxTotal picks the assignment maximizing the total similarity
	// (Hungarian algorithm) — the paper's choice.
	MaxTotal Strategy = iota
	// Greedy repeatedly picks the highest-similarity unconflicted pair.
	Greedy
	// Stable computes a stable matching (Gale-Shapley) where both sides
	// rank partners by similarity: no two events prefer each other over
	// their assigned partners.
	Stable
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case MaxTotal:
		return "max-total"
	case Greedy:
		return "greedy"
	case Stable:
		return "stable"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// SelectWith is Select with an explicit selection strategy.
func SelectWith(strategy Strategy, names1, names2 []string, sim []float64, threshold float64, split func(string) []string) (Mapping, error) {
	if len(sim) != len(names1)*len(names2) {
		return nil, fmt.Errorf("matching: similarity matrix size %d does not match %dx%d", len(sim), len(names1), len(names2))
	}
	if split == nil {
		split = func(s string) []string { return []string{s} }
	}
	var pairs []assignment.Pair
	var err error
	switch strategy {
	case MaxTotal:
		pairs, err = assignment.Maximize(sim, len(names1), len(names2))
	case Greedy:
		pairs = greedySelect(sim, len(names1), len(names2))
	case Stable:
		pairs = stableSelect(sim, len(names1), len(names2))
	default:
		err = fmt.Errorf("matching: unknown strategy %v", strategy)
	}
	if err != nil {
		return nil, err
	}
	var out Mapping
	for _, p := range pairs {
		if p.Value < threshold {
			continue
		}
		out = append(out, NewCorrespondence(split(names1[p.I]), split(names2[p.J]), p.Value))
	}
	return out.Sort(), nil
}

// greedySelect takes pairs in descending similarity order, skipping
// conflicts.
func greedySelect(sim []float64, rows, cols int) []assignment.Pair {
	type cand struct {
		i, j int
		v    float64
	}
	cands := make([]cand, 0, rows*cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			cands = append(cands, cand{i, j, sim[i*cols+j]})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].v != cands[b].v {
			return cands[a].v > cands[b].v
		}
		if cands[a].i != cands[b].i {
			return cands[a].i < cands[b].i
		}
		return cands[a].j < cands[b].j
	})
	usedR := make([]bool, rows)
	usedC := make([]bool, cols)
	var out []assignment.Pair
	for _, c := range cands {
		if usedR[c.i] || usedC[c.j] {
			continue
		}
		usedR[c.i] = true
		usedC[c.j] = true
		out = append(out, assignment.Pair{I: c.i, J: c.j, Value: c.v})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].I < out[b].I })
	return out
}

// stableSelect runs Gale-Shapley with rows proposing; both sides rank by
// similarity (ties broken by index for determinism).
func stableSelect(sim []float64, rows, cols int) []assignment.Pair {
	if rows == 0 || cols == 0 {
		return nil
	}
	// prefs[i] lists columns in descending preference for row i.
	prefs := make([][]int, rows)
	for i := 0; i < rows; i++ {
		p := make([]int, cols)
		for j := range p {
			p[j] = j
		}
		sort.Slice(p, func(a, b int) bool {
			va, vb := sim[i*cols+p[a]], sim[i*cols+p[b]]
			if va != vb {
				return va > vb
			}
			return p[a] < p[b]
		})
		prefs[i] = p
	}
	next := make([]int, rows)    // next proposal index per row
	partner := make([]int, cols) // assigned row per column, -1 if free
	for j := range partner {
		partner[j] = -1
	}
	free := make([]int, 0, rows)
	for i := rows - 1; i >= 0; i-- {
		free = append(free, i)
	}
	for len(free) > 0 {
		i := free[len(free)-1]
		free = free[:len(free)-1]
		if next[i] >= cols {
			continue // exhausted all proposals; stays unmatched
		}
		j := prefs[i][next[i]]
		next[i]++
		cur := partner[j]
		switch {
		case cur == -1:
			partner[j] = i
		case betterFor(sim, cols, j, i, cur):
			partner[j] = i
			free = append(free, cur)
		default:
			free = append(free, i)
		}
	}
	var out []assignment.Pair
	for j, i := range partner {
		if i >= 0 {
			out = append(out, assignment.Pair{I: i, J: j, Value: sim[i*cols+j]})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].I < out[b].I })
	return out
}

// betterFor reports whether column j prefers row a over row b.
func betterFor(sim []float64, cols, j, a, b int) bool {
	va, vb := sim[a*cols+j], sim[b*cols+j]
	if va != vb {
		return va > vb
	}
	return a < b
}
