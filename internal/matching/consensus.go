package matching

import (
	"fmt"
	"sort"
)

// Consensus combines several mappings of the same log pair — different
// matcher configurations, or the "inaccurate and contradictory" opinions of
// multiple human integrators the paper's introduction describes — into one
// mapping: a correspondence survives when at least quorum inputs contain
// it, conflicting survivors (sharing a left or right group) are resolved in
// favor of higher support then higher average score, and the score of each
// surviving correspondence is its average across supporting inputs.
func Consensus(mappings []Mapping, quorum int) (Mapping, error) {
	if quorum < 1 {
		return nil, fmt.Errorf("matching: quorum must be >= 1, got %d", quorum)
	}
	if quorum > len(mappings) {
		return nil, fmt.Errorf("matching: quorum %d exceeds %d mappings", quorum, len(mappings))
	}
	type tally struct {
		c     Correspondence
		count int
		score float64
	}
	tallies := make(map[string]*tally)
	for _, m := range mappings {
		seen := make(map[string]bool)
		for _, c := range m {
			k := c.Key()
			if seen[k] {
				continue // count once per input mapping
			}
			seen[k] = true
			t, ok := tallies[k]
			if !ok {
				t = &tally{c: c}
				tallies[k] = t
			}
			t.count++
			t.score += c.Score
		}
	}
	survivors := make([]*tally, 0, len(tallies))
	for _, t := range tallies {
		if t.count >= quorum {
			survivors = append(survivors, t)
		}
	}
	sort.Slice(survivors, func(i, j int) bool {
		if survivors[i].count != survivors[j].count {
			return survivors[i].count > survivors[j].count
		}
		si := survivors[i].score / float64(survivors[i].count)
		sj := survivors[j].score / float64(survivors[j].count)
		if si != sj {
			return si > sj
		}
		return survivors[i].c.Key() < survivors[j].c.Key()
	})
	usedLeft := make(map[string]bool)
	usedRight := make(map[string]bool)
	var out Mapping
	for _, t := range survivors {
		conflict := false
		for _, e := range t.c.Left {
			if usedLeft[e] {
				conflict = true
			}
		}
		for _, e := range t.c.Right {
			if usedRight[e] {
				conflict = true
			}
		}
		if conflict {
			continue
		}
		for _, e := range t.c.Left {
			usedLeft[e] = true
		}
		for _, e := range t.c.Right {
			usedRight[e] = true
		}
		out = append(out, NewCorrespondence(t.c.Left, t.c.Right, t.score/float64(t.count)))
	}
	return out.Sort(), nil
}
