package matching

import (
	"math"
	"testing"
)

func c1(l, r string, s float64) Correspondence {
	return NewCorrespondence([]string{l}, []string{r}, s)
}

func TestConsensusQuorum(t *testing.T) {
	m1 := Mapping{c1("a", "x", 0.9), c1("b", "y", 0.8)}
	m2 := Mapping{c1("a", "x", 0.7), c1("b", "z", 0.6)}
	m3 := Mapping{c1("a", "x", 0.8)}
	out, err := Consensus([]Mapping{m1, m2, m3}, 2)
	if err != nil {
		t.Fatalf("Consensus: %v", err)
	}
	if len(out) != 1 {
		t.Fatalf("got %v, want only a->x (quorum 2)", out)
	}
	if out[0].Left[0] != "a" || out[0].Right[0] != "x" {
		t.Errorf("survivor = %v", out[0])
	}
	if math.Abs(out[0].Score-0.8) > 1e-12 {
		t.Errorf("averaged score = %g, want 0.8", out[0].Score)
	}
}

func TestConsensusConflictResolution(t *testing.T) {
	// a->x supported twice, a->y once: a->x wins and blocks a->y.
	m1 := Mapping{c1("a", "x", 0.5)}
	m2 := Mapping{c1("a", "x", 0.5)}
	m3 := Mapping{c1("a", "y", 0.99)}
	out, err := Consensus([]Mapping{m1, m2, m3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Right[0] != "x" {
		t.Errorf("conflict resolved wrongly: %v", out)
	}
}

func TestConsensusCompositeGroupsConflict(t *testing.T) {
	// {c,d}->m conflicts with c->n via the shared left event c.
	m1 := Mapping{NewCorrespondence([]string{"c", "d"}, []string{"m"}, 0.9)}
	m2 := Mapping{NewCorrespondence([]string{"c", "d"}, []string{"m"}, 0.9)}
	m3 := Mapping{c1("c", "n", 0.9)}
	out, err := Consensus([]Mapping{m1, m2, m3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || len(out[0].Left) != 2 {
		t.Errorf("composite group lost: %v", out)
	}
}

func TestConsensusDuplicatesInOneInputCountOnce(t *testing.T) {
	m1 := Mapping{c1("a", "x", 0.5), c1("a", "x", 0.5)}
	out, err := Consensus([]Mapping{m1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("got %v", out)
	}
	// Quorum 2 must NOT be met by a duplicate within one input.
	if _, err := Consensus([]Mapping{m1}, 2); err == nil {
		t.Errorf("quorum above input count accepted")
	}
}

func TestConsensusValidation(t *testing.T) {
	if _, err := Consensus(nil, 0); err == nil {
		t.Errorf("quorum 0 accepted")
	}
	if _, err := Consensus([]Mapping{{}}, 2); err == nil {
		t.Errorf("quorum above count accepted")
	}
}
