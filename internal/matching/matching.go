// Package matching turns pair-wise event similarities into correspondences
// and scores them against a ground truth with precision, recall and
// f-measure — the evaluation criteria of Section 5 of the paper.
//
// A correspondence relates a set of events of log 1 to a set of events of
// log 2; singleton sets on both sides give the ordinary 1:1 match, larger
// sets express composite (m:n) matches.
package matching

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/assignment"
)

// Correspondence relates an event group of log 1 to an event group of log 2.
// Groups hold original (pre-merge) event names and are kept sorted.
type Correspondence struct {
	Left  []string
	Right []string
	Score float64
}

// NewCorrespondence builds a correspondence with sorted, copied groups.
func NewCorrespondence(left, right []string, score float64) Correspondence {
	l := append([]string(nil), left...)
	r := append([]string(nil), right...)
	sort.Strings(l)
	sort.Strings(r)
	return Correspondence{Left: l, Right: r, Score: score}
}

// Key returns a canonical identity for the correspondence, ignoring score.
func (c Correspondence) Key() string {
	return strings.Join(c.Left, "\x1f") + "\x1e" + strings.Join(c.Right, "\x1f")
}

// String renders the correspondence as "{a,b} -> {x} (0.87)".
func (c Correspondence) String() string {
	return fmt.Sprintf("{%s} -> {%s} (%.3f)", strings.Join(c.Left, ","), strings.Join(c.Right, ","), c.Score)
}

// Mapping is a set of correspondences.
type Mapping []Correspondence

// Keys returns the canonical key set of the mapping.
func (m Mapping) Keys() map[string]bool {
	out := make(map[string]bool, len(m))
	for _, c := range m {
		out[c.Key()] = true
	}
	return out
}

// Sort orders the mapping by descending score, then by key, in place, and
// returns it.
func (m Mapping) Sort() Mapping {
	sort.Slice(m, func(i, j int) bool {
		if m[i].Score != m[j].Score {
			return m[i].Score > m[j].Score
		}
		return m[i].Key() < m[j].Key()
	})
	return m
}

// Select applies the maximum-total-similarity selection method to a
// similarity matrix: an optimal assignment is computed and every selected
// pair with similarity >= threshold becomes a 1:1 correspondence. The group
// splitter, when non-nil, expands merged composite names back into their
// member events; nil treats every name as a singleton.
func Select(names1, names2 []string, sim []float64, threshold float64, split func(string) []string) (Mapping, error) {
	if len(sim) != len(names1)*len(names2) {
		return nil, fmt.Errorf("matching: similarity matrix size %d does not match %dx%d", len(sim), len(names1), len(names2))
	}
	pairs, err := assignment.Maximize(sim, len(names1), len(names2))
	if err != nil {
		return nil, err
	}
	if split == nil {
		split = func(s string) []string { return []string{s} }
	}
	var out Mapping
	for _, p := range pairs {
		if p.Value < threshold {
			continue
		}
		out = append(out, NewCorrespondence(split(names1[p.I]), split(names2[p.J]), p.Value))
	}
	return out.Sort(), nil
}

// Quality holds precision, recall and f-measure of a found mapping against
// the ground truth.
type Quality struct {
	Precision, Recall, FMeasure float64
	Found, Truth, Correct       int
}

// Evaluate scores found against truth: a found correspondence is correct iff
// a truth correspondence with exactly the same groups exists.
func Evaluate(found, truth Mapping) Quality {
	tk := truth.Keys()
	correct := 0
	for k := range found.Keys() {
		if tk[k] {
			correct++
		}
	}
	q := Quality{Found: len(found.Keys()), Truth: len(tk), Correct: correct}
	if q.Found > 0 {
		q.Precision = float64(correct) / float64(q.Found)
	}
	if q.Truth > 0 {
		q.Recall = float64(correct) / float64(q.Truth)
	}
	if q.Precision+q.Recall > 0 {
		q.FMeasure = 2 * q.Precision * q.Recall / (q.Precision + q.Recall)
	}
	return q
}

// AverageQuality averages a slice of qualities component-wise; the counters
// are summed. An empty slice yields the zero Quality.
func AverageQuality(qs []Quality) Quality {
	var out Quality
	if len(qs) == 0 {
		return out
	}
	for _, q := range qs {
		out.Precision += q.Precision
		out.Recall += q.Recall
		out.FMeasure += q.FMeasure
		out.Found += q.Found
		out.Truth += q.Truth
		out.Correct += q.Correct
	}
	n := float64(len(qs))
	out.Precision /= n
	out.Recall /= n
	out.FMeasure /= n
	return out
}
