package matching

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestCorrespondenceKeyOrderInsensitive(t *testing.T) {
	a := NewCorrespondence([]string{"b", "a"}, []string{"x"}, 0.5)
	b := NewCorrespondence([]string{"a", "b"}, []string{"x"}, 0.9)
	if a.Key() != b.Key() {
		t.Errorf("keys differ for same groups: %q vs %q", a.Key(), b.Key())
	}
}

func TestCorrespondenceKeySideSensitive(t *testing.T) {
	a := NewCorrespondence([]string{"a"}, []string{"x"}, 1)
	b := NewCorrespondence([]string{"x"}, []string{"a"}, 1)
	if a.Key() == b.Key() {
		t.Errorf("left/right swap has equal key")
	}
}

func TestCorrespondenceString(t *testing.T) {
	c := NewCorrespondence([]string{"a", "b"}, []string{"x"}, 0.5)
	if got := c.String(); got != "{a,b} -> {x} (0.500)" {
		t.Errorf("String = %q", got)
	}
}

func TestMappingSort(t *testing.T) {
	m := Mapping{
		NewCorrespondence([]string{"a"}, []string{"x"}, 0.3),
		NewCorrespondence([]string{"b"}, []string{"y"}, 0.9),
	}.Sort()
	if m[0].Score != 0.9 {
		t.Errorf("not sorted by descending score: %v", m)
	}
}

func TestSelectPicksOptimal(t *testing.T) {
	names1 := []string{"a", "b"}
	names2 := []string{"x", "y"}
	sim := []float64{
		0.9, 0.8,
		0.8, 0.1,
	}
	m, err := Select(names1, names2, sim, 0, nil)
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	keys := m.Keys()
	if !keys[NewCorrespondence([]string{"a"}, []string{"y"}, 0).Key()] ||
		!keys[NewCorrespondence([]string{"b"}, []string{"x"}, 0).Key()] {
		t.Errorf("Select chose %v, want a->y and b->x", m)
	}
}

func TestSelectThreshold(t *testing.T) {
	names1 := []string{"a", "b"}
	names2 := []string{"x", "y"}
	sim := []float64{
		0.9, 0.0,
		0.0, 0.05,
	}
	m, err := Select(names1, names2, sim, 0.2, nil)
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if len(m) != 1 {
		t.Fatalf("got %d correspondences, want 1 (threshold filters b->y): %v", len(m), m)
	}
	if m[0].Left[0] != "a" {
		t.Errorf("kept %v, want a->x", m[0])
	}
}

func TestSelectSplitsComposites(t *testing.T) {
	split := func(s string) []string { return strings.Split(s, "+") }
	m, err := Select([]string{"c+d"}, []string{"4"}, []float64{0.9}, 0, split)
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	want := []string{"c", "d"}
	if !reflect.DeepEqual(m[0].Left, want) {
		t.Errorf("Left = %v, want %v", m[0].Left, want)
	}
}

func TestSelectSizeMismatch(t *testing.T) {
	if _, err := Select([]string{"a"}, []string{"x"}, []float64{1, 2}, 0, nil); err == nil {
		t.Errorf("size mismatch accepted")
	}
}

func TestEvaluatePerfect(t *testing.T) {
	truth := Mapping{
		NewCorrespondence([]string{"a"}, []string{"x"}, 1),
		NewCorrespondence([]string{"b"}, []string{"y"}, 1),
	}
	q := Evaluate(truth, truth)
	if q.Precision != 1 || q.Recall != 1 || q.FMeasure != 1 {
		t.Errorf("perfect match scored %+v", q)
	}
}

func TestEvaluatePartial(t *testing.T) {
	truth := Mapping{
		NewCorrespondence([]string{"a"}, []string{"x"}, 1),
		NewCorrespondence([]string{"b"}, []string{"y"}, 1),
	}
	found := Mapping{
		NewCorrespondence([]string{"a"}, []string{"x"}, 1),
		NewCorrespondence([]string{"b"}, []string{"z"}, 1),
	}
	q := Evaluate(found, truth)
	if math.Abs(q.Precision-0.5) > 1e-12 || math.Abs(q.Recall-0.5) > 1e-12 {
		t.Errorf("partial match scored %+v, want P=R=0.5", q)
	}
	if math.Abs(q.FMeasure-0.5) > 1e-12 {
		t.Errorf("f-measure = %g, want 0.5", q.FMeasure)
	}
}

func TestEvaluateCompositeExactGroups(t *testing.T) {
	truth := Mapping{NewCorrespondence([]string{"c", "d"}, []string{"4"}, 1)}
	foundWrong := Mapping{NewCorrespondence([]string{"c"}, []string{"4"}, 1)}
	if q := Evaluate(foundWrong, truth); q.Correct != 0 {
		t.Errorf("subset group counted correct: %+v", q)
	}
	foundRight := Mapping{NewCorrespondence([]string{"d", "c"}, []string{"4"}, 1)}
	if q := Evaluate(foundRight, truth); q.Correct != 1 {
		t.Errorf("exact group not counted: %+v", q)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	q := Evaluate(nil, nil)
	if q.Precision != 0 || q.Recall != 0 || q.FMeasure != 0 {
		t.Errorf("empty eval = %+v, want zeros", q)
	}
}

func TestAverageQuality(t *testing.T) {
	qs := []Quality{
		{Precision: 1, Recall: 0.5, FMeasure: 2.0 / 3},
		{Precision: 0.5, Recall: 1, FMeasure: 2.0 / 3},
	}
	avg := AverageQuality(qs)
	if math.Abs(avg.Precision-0.75) > 1e-12 || math.Abs(avg.Recall-0.75) > 1e-12 {
		t.Errorf("average = %+v", avg)
	}
	if z := AverageQuality(nil); z.FMeasure != 0 {
		t.Errorf("empty average = %+v", z)
	}
}
