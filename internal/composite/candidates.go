// Package composite implements composite event matching (Section 4 of the
// paper): discovering candidate composite events as SEQ patterns, the greedy
// merge heuristic of Algorithm 2 (finding the optimal selection is NP-hard,
// Theorem 3), the unchanged-similarity pruning of Proposition 4 ("Uc"), and
// the similarity-upper-bound pruning of Section 4.3 ("Bd").
package composite

import (
	"sort"
	"strings"

	"repro/internal/eventlog"
)

// NameSep joins constituent event names into the name of a merged composite
// node. It is a control character so real event names cannot collide.
const NameSep = "\x1d"

// JoinName builds the merged node name for a composite event.
func JoinName(events []string) string { return strings.Join(events, NameSep) }

// SplitName expands a (possibly merged) node name into its constituent
// event names; plain names yield a singleton.
func SplitName(name string) []string { return strings.Split(name, NameSep) }

// DisplayName renders a merged name human-readably, e.g. "a+b".
func DisplayName(name string) string { return strings.ReplaceAll(name, NameSep, "+") }

// Candidate is a proposed composite event: a sequence of events that
// (almost) always appear consecutively, with the support of its weakest
// link.
type Candidate struct {
	Events  []string
	Support float64
}

// Key returns the canonical identity of the candidate.
func (c Candidate) Key() string { return JoinName(c.Events) }

// Overlaps reports whether the candidate shares any event with the set.
func (c Candidate) Overlaps(used map[string]bool) bool {
	for _, e := range c.Events {
		if used[e] {
			return true
		}
	}
	return false
}

// DiscoverOptions controls SEQ-pattern candidate discovery.
type DiscoverOptions struct {
	// Confidence is the minimum bidirectional confidence for a link (a,b):
	// f(a,b)/f(a) and f(a,b)/f(b) must both reach it. 1.0 means strictly
	// "always appear consecutively".
	Confidence float64
	// MaxLen caps the candidate length (>= 2).
	MaxLen int
	// MaxCandidates, when > 0, keeps only the strongest candidates.
	MaxCandidates int
}

// DefaultDiscoverOptions returns the conventional SEQ-pattern settings.
func DefaultDiscoverOptions() DiscoverOptions {
	return DiscoverOptions{Confidence: 0.9, MaxLen: 4}
}

// Discover finds composite event candidates in a log as SEQ patterns
// (following the CEP convention the paper cites): chains of events whose
// consecutive links hold with at least the configured confidence in both
// directions. All contiguous chains of length 2..MaxLen are returned,
// strongest support first.
func Discover(l *eventlog.Log, opts DiscoverOptions) []Candidate {
	if opts.MaxLen < 2 {
		opts.MaxLen = 2
	}
	st := eventlog.CollectStats(l)
	// strong[a] lists b such that the link a->b qualifies.
	strong := make(map[string][]link)
	for pair, f := range st.EdgeFreq {
		a, b := pair[0], pair[1]
		fa, fb := st.NodeFreq[a], st.NodeFreq[b]
		if fa <= 0 || fb <= 0 {
			continue
		}
		if f/fa >= opts.Confidence && f/fb >= opts.Confidence {
			strong[a] = append(strong[a], link{to: b, f: f})
		}
	}
	for a := range strong {
		ls := strong[a]
		sort.Slice(ls, func(i, j int) bool { return ls[i].to < ls[j].to })
	}
	seen := make(map[string]bool)
	var out []Candidate
	starts := make([]string, 0, len(strong))
	for a := range strong {
		starts = append(starts, a)
	}
	sort.Strings(starts)
	var extend func(chain []string, onPath map[string]bool, support float64)
	extend = func(chain []string, onPath map[string]bool, support float64) {
		if len(chain) >= 2 {
			c := Candidate{Events: append([]string(nil), chain...), Support: support}
			if k := c.Key(); !seen[k] {
				seen[k] = true
				out = append(out, c)
			}
		}
		if len(chain) >= opts.MaxLen {
			return
		}
		last := chain[len(chain)-1]
		for _, lk := range strong[last] {
			if onPath[lk.to] {
				continue
			}
			onPath[lk.to] = true
			extend(append(chain, lk.to), onPath, minFloat(support, lk.f))
			delete(onPath, lk.to)
		}
	}
	for _, a := range starts {
		extend([]string{a}, map[string]bool{a: true}, 1.0)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		return out[i].Key() < out[j].Key()
	})
	if opts.MaxCandidates > 0 && len(out) > opts.MaxCandidates {
		out = out[:opts.MaxCandidates]
	}
	return out
}

type link struct {
	to string
	f  float64
}

func minFloat(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
