package composite

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/eventlog"
	"repro/internal/matching"
	"repro/internal/paperexample"
)

func TestNameCodec(t *testing.T) {
	name := JoinName([]string{"c", "d"})
	if got := SplitName(name); !reflect.DeepEqual(got, []string{"c", "d"}) {
		t.Errorf("SplitName(JoinName) = %v", got)
	}
	if got := SplitName("plain"); !reflect.DeepEqual(got, []string{"plain"}) {
		t.Errorf("SplitName(plain) = %v", got)
	}
	if got := DisplayName(name); got != "c+d" {
		t.Errorf("DisplayName = %q", got)
	}
}

func TestCandidateOverlaps(t *testing.T) {
	c := Candidate{Events: []string{"a", "b"}}
	if !c.Overlaps(map[string]bool{"b": true}) {
		t.Errorf("overlap missed")
	}
	if c.Overlaps(map[string]bool{"z": true}) {
		t.Errorf("false overlap")
	}
}

// TestDiscoverPaperExample: in log 1 of the running example C and D always
// appear consecutively (they form the composite event 4 of log 2); no other
// run qualifies at confidence 0.9.
func TestDiscoverPaperExample(t *testing.T) {
	c1 := Discover(paperexample.Log1(), DefaultDiscoverOptions())
	if len(c1) != 1 {
		t.Fatalf("got %d candidates, want 1: %v", len(c1), c1)
	}
	if !reflect.DeepEqual(c1[0].Events, []string{"C", "D"}) {
		t.Errorf("candidate = %v, want [C D]", c1[0].Events)
	}
	if math.Abs(c1[0].Support-1.0) > 1e-12 {
		t.Errorf("support = %g, want 1.0", c1[0].Support)
	}
	if c2 := Discover(paperexample.Log2(), DefaultDiscoverOptions()); len(c2) != 0 {
		t.Errorf("log 2 candidates = %v, want none", c2)
	}
}

func TestDiscoverLongChain(t *testing.T) {
	l := eventlog.New("chain")
	for i := 0; i < 10; i++ {
		l.Append(eventlog.Trace{"s", "a", "b", "c", "t"})
	}
	cands := Discover(l, DiscoverOptions{Confidence: 1.0, MaxLen: 3})
	keys := make(map[string]bool)
	for _, c := range cands {
		keys[strings.Join(c.Events, "")] = true
	}
	// Every contiguous subsequence of the full always-consecutive run
	// sabct of length 2..3 qualifies.
	for _, want := range []string{"sa", "ab", "bc", "ct", "sab", "abc", "bct"} {
		if !keys[want] {
			t.Errorf("missing candidate %q (got %v)", want, keys)
		}
	}
}

func TestDiscoverConfidenceFilters(t *testing.T) {
	l := eventlog.New("half")
	l.Append(eventlog.Trace{"a", "b"})
	l.Append(eventlog.Trace{"a", "c"})
	if cands := Discover(l, DiscoverOptions{Confidence: 0.9, MaxLen: 2}); len(cands) != 0 {
		t.Errorf("low-confidence pair accepted: %v", cands)
	}
	if cands := Discover(l, DiscoverOptions{Confidence: 0.4, MaxLen: 2}); len(cands) == 0 {
		t.Errorf("pair rejected at low confidence threshold")
	}
}

func TestDiscoverMaxCandidates(t *testing.T) {
	l := eventlog.New("chain")
	for i := 0; i < 4; i++ {
		l.Append(eventlog.Trace{"a", "b", "c", "d", "e"})
	}
	all := Discover(l, DiscoverOptions{Confidence: 1.0, MaxLen: 4})
	capped := Discover(l, DiscoverOptions{Confidence: 1.0, MaxLen: 4, MaxCandidates: 2})
	if len(capped) != 2 {
		t.Fatalf("cap ignored: %d candidates", len(capped))
	}
	if len(all) <= 2 {
		t.Fatalf("test needs more than 2 candidates, got %d", len(all))
	}
}

// TestGreedyPaperExample7 reproduces Example 7: starting from average
// singleton similarity ~0.502, merging {C,D} raises it to ~0.508 and is the
// only accepted merge.
func TestGreedyPaperExample7(t *testing.T) {
	l1, l2 := paperexample.Log1(), paperexample.Log2()
	cands1 := []Candidate{
		{Events: []string{"C", "D"}, Support: 1},
		{Events: []string{"E", "F"}, Support: 0.4},
	}
	res, err := Greedy(l1, l2, cands1, nil, DefaultConfig())
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	if len(res.Merged1) != 1 || !reflect.DeepEqual(res.Merged1[0].Events, []string{"C", "D"}) {
		t.Fatalf("merged = %v, want exactly [C D]", res.Merged1)
	}
	if len(res.Merged2) != 0 {
		t.Errorf("log-2 merges = %v, want none", res.Merged2)
	}
	if avg := res.Final.Avg(); math.Abs(avg-0.508) > 0.005 {
		t.Errorf("final avg = %.4f, want ~0.508 (Example 7)", avg)
	}
	// The merged log must contain the composite node.
	found := false
	for _, tr := range res.Log1.Traces {
		for _, e := range tr {
			if e == JoinName([]string{"C", "D"}) {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("merged node missing from log 1")
	}
}

// TestGreedyMatchesTruth: after the {C,D} merge, maximum-total-similarity
// selection on the final matrix recovers the full ground truth of the
// running example.
func TestGreedyMatchesTruth(t *testing.T) {
	l1, l2 := paperexample.Log1(), paperexample.Log2()
	res, err := Greedy(l1, l2, Discover(l1, DefaultDiscoverOptions()), Discover(l2, DefaultDiscoverOptions()), DefaultConfig())
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	m, err := matching.Select(res.Final.Names1, res.Final.Names2, res.Final.Sim, 0.3, SplitName)
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	q := matching.Evaluate(m, paperexample.Truth())
	if q.Recall < 0.99 {
		t.Errorf("recall = %.3f, want 1.0; found %v", q.Recall, m)
	}
	if q.Precision < 0.8 {
		t.Errorf("precision = %.3f; found %v", q.Precision, m)
	}
}

// TestPruningPreservesGreedyOutcome: Uc and Bd pruning must not change the
// accepted merges or the final average similarity.
func TestPruningPreservesGreedyOutcome(t *testing.T) {
	l1, l2 := paperexample.Log1(), paperexample.Log2()
	cands1 := []Candidate{
		{Events: []string{"C", "D"}, Support: 1},
		{Events: []string{"E", "F"}, Support: 0.4},
	}
	variants := []struct {
		name   string
		uc, bd bool
	}{
		{"none", false, false},
		{"uc", true, false},
		{"bd", false, true},
		{"ucbd", true, true},
	}
	var baseline *Result
	for _, v := range variants {
		cfg := DefaultConfig()
		cfg.UseUnchanged = v.uc
		cfg.UseBounds = v.bd
		res, err := Greedy(l1, l2, cands1, nil, cfg)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		if baseline == nil {
			baseline = res
			continue
		}
		if !reflect.DeepEqual(res.Merged1, baseline.Merged1) {
			t.Errorf("%s: merges differ: %v vs %v", v.name, res.Merged1, baseline.Merged1)
		}
		if math.Abs(res.Final.Avg()-baseline.Final.Avg()) > 1e-3 {
			t.Errorf("%s: final avg %.5f vs %.5f", v.name, res.Final.Avg(), baseline.Final.Avg())
		}
	}
}

// TestPruningReducesWork: with both prunings on, strictly fewer formula
// evaluations are performed than with both off.
func TestPruningReducesWork(t *testing.T) {
	l1, l2 := paperexample.Log1(), paperexample.Log2()
	cands1 := []Candidate{
		{Events: []string{"C", "D"}, Support: 1},
		{Events: []string{"E", "F"}, Support: 0.4},
		{Events: []string{"B", "C"}, Support: 0.6},
	}
	run := func(uc, bd bool) Stats {
		cfg := DefaultConfig()
		cfg.UseUnchanged = uc
		cfg.UseBounds = bd
		res, err := Greedy(l1, l2, cands1, nil, cfg)
		if err != nil {
			t.Fatalf("Greedy(uc=%v,bd=%v): %v", uc, bd, err)
		}
		return res.Stats
	}
	off := run(false, false)
	on := run(true, true)
	if on.Evaluations >= off.Evaluations {
		t.Errorf("pruning did not reduce evaluations: %d vs %d", on.Evaluations, off.Evaluations)
	}
}

// TestGreedyDeltaStopsMerging: a huge delta accepts no merge at all.
func TestGreedyDeltaStopsMerging(t *testing.T) {
	l1, l2 := paperexample.Log1(), paperexample.Log2()
	cfg := DefaultConfig()
	cfg.Delta = 0.5
	res, err := Greedy(l1, l2, Discover(l1, DefaultDiscoverOptions()), nil, cfg)
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	if len(res.Merged1)+len(res.Merged2) != 0 {
		t.Errorf("delta=0.5 still merged: %v %v", res.Merged1, res.Merged2)
	}
}

// TestGreedyMaxSteps caps accepted merges.
func TestGreedyMaxSteps(t *testing.T) {
	l1 := eventlog.New("l1")
	for i := 0; i < 10; i++ {
		l1.Append(eventlog.Trace{"a", "b", "c", "d"})
	}
	l2 := eventlog.New("l2")
	for i := 0; i < 10; i++ {
		l2.Append(eventlog.Trace{"ab", "cd"})
	}
	cands := []Candidate{
		{Events: []string{"a", "b"}, Support: 1},
		{Events: []string{"c", "d"}, Support: 1},
	}
	cfg := DefaultConfig()
	cfg.MaxSteps = 1
	cfg.Delta = 0
	res, err := Greedy(l1, l2, cands, nil, cfg)
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	if got := len(res.Merged1); got > 1 {
		t.Errorf("MaxSteps=1 accepted %d merges", got)
	}
}

// TestGreedyMergesBothSides: candidates can be merged in log 2 as well.
func TestGreedyMergesBothSides(t *testing.T) {
	l1 := eventlog.New("l1")
	for i := 0; i < 5; i++ {
		l1.Append(eventlog.Trace{"pay", "checkvalidate", "ship"})
		l1.Append(eventlog.Trace{"wire", "checkvalidate", "mail"})
	}
	l2 := eventlog.New("l2")
	for i := 0; i < 5; i++ {
		l2.Append(eventlog.Trace{"p", "chk", "val", "s"})
		l2.Append(eventlog.Trace{"w", "chk", "val", "m"})
	}
	cands2 := Discover(l2, DefaultDiscoverOptions())
	if len(cands2) == 0 {
		t.Fatalf("no candidates discovered in log 2")
	}
	cfg := DefaultConfig()
	cfg.Delta = 0.0001
	res, err := Greedy(l1, l2, nil, cands2, cfg)
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	ok := false
	for _, c := range res.Merged2 {
		if reflect.DeepEqual(c.Events, []string{"chk", "val"}) {
			ok = true
		}
	}
	if !ok {
		t.Errorf("expected {chk,val} merge on side 2, got %v", res.Merged2)
	}
}

// TestUnchangedSeedCorrectness: with Uc only, final similarities equal the
// unpruned ones within epsilon on every pair.
func TestUnchangedSeedCorrectness(t *testing.T) {
	l1, l2 := paperexample.Log1(), paperexample.Log2()
	cands1 := []Candidate{{Events: []string{"E", "F"}, Support: 0.4}}
	run := func(uc bool) *core.Result {
		cfg := DefaultConfig()
		cfg.UseUnchanged = uc
		cfg.UseBounds = false
		cfg.Delta = -1 // force accepting the merge so seeding is exercised
		cfg.MaxSteps = 1
		res, err := Greedy(l1, l2, cands1, nil, cfg)
		if err != nil {
			t.Fatalf("Greedy(uc=%v): %v", uc, err)
		}
		return res.Final
	}
	plain := run(false)
	seeded := run(true)
	if !reflect.DeepEqual(plain.Names1, seeded.Names1) {
		t.Fatalf("names differ: %v vs %v", plain.Names1, seeded.Names1)
	}
	for i := range plain.Sim {
		if math.Abs(plain.Sim[i]-seeded.Sim[i]) > 5e-3 {
			t.Errorf("Uc changed similarity at %d: %.5f vs %.5f", i, plain.Sim[i], seeded.Sim[i])
		}
	}
}

func TestGreedyRejectsInvalidConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Sim.C = 2
	if _, err := Greedy(paperexample.Log1(), paperexample.Log2(), nil, nil, cfg); err == nil {
		t.Errorf("invalid config accepted")
	}
}

func TestCandidateString(t *testing.T) {
	c := Candidate{Events: []string{"a", "b"}, Support: 0.75}
	if got := c.String(); got != "a+b (support 0.75)" {
		t.Errorf("String = %q", got)
	}
}
