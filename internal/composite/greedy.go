package composite

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/depgraph"
	"repro/internal/eventlog"
)

// Config parameterizes the greedy composite matching of Algorithm 2.
type Config struct {
	// Sim configures the underlying EMS similarity.
	Sim core.Config
	// Delta is the minimum average-similarity improvement a merge step must
	// deliver to be accepted (the threshold δ of Algorithm 2).
	Delta float64
	// MinFrequency, when > 0, filters low-frequency edges from every
	// dependency graph before similarity computation (Section 2).
	MinFrequency float64
	// MaxSteps caps the number of accepted merges; 0 means unlimited.
	MaxSteps int
	// UseUnchanged enables the Proposition 4 pruning ("Uc"): similarities
	// provably unchanged by a merge are seeded instead of recomputed.
	UseUnchanged bool
	// UseBounds enables the Section 4.3 pruning ("Bd"): candidate
	// evaluation aborts as soon as its average-similarity upper bound
	// cannot beat the incumbent. Only applied to exact (non-estimation)
	// similarity computations.
	UseBounds bool
}

// DefaultConfig returns the paper's default composite settings: δ = 0.005
// (the value of Example 7) with both prunings enabled.
func DefaultConfig() Config {
	return Config{Sim: core.DefaultConfig(), Delta: 0.005, UseUnchanged: true, UseBounds: true}
}

// Stats reports the work the greedy search performed.
type Stats struct {
	// Evaluations counts formula-(1) evaluations across every similarity
	// computation (the Figure 12 metric).
	Evaluations int
	// CandidatesTried counts candidate evaluations started.
	CandidatesTried int
	// CandidatesAborted counts evaluations cut short by the upper-bound
	// pruning.
	CandidatesAborted int
	// StepsAccepted counts accepted merges.
	StepsAccepted int
}

// Result is the outcome of greedy composite matching.
type Result struct {
	// Final is the similarity over the merged dependency graphs; merged
	// node names join their constituents with NameSep (see SplitName).
	Final *core.Result
	// Merged1 and Merged2 list the accepted composites per side.
	Merged1, Merged2 []Candidate
	// Log1 and Log2 are the logs after merging.
	Log1, Log2 *eventlog.Log
	// Stats reports the search effort.
	Stats Stats
}

// Greedy runs Algorithm 2: starting from singleton similarity, it repeatedly
// merges the candidate composite event (from either log) that maximizes the
// average pair-wise similarity, until no candidate improves it by at least
// Delta. cands1 and cands2 are the candidate sets for the two logs (see
// Discover).
func Greedy(l1, l2 *eventlog.Log, cands1, cands2 []Candidate, cfg Config) (*Result, error) {
	if err := cfg.Sim.Validate(); err != nil {
		return nil, err
	}
	cur1, cur2 := l1.Clone(), l2.Clone()
	g1, err := buildGraph(cur1, cfg.MinFrequency)
	if err != nil {
		return nil, err
	}
	g2, err := buildGraph(cur2, cfg.MinFrequency)
	if err != nil {
		return nil, err
	}
	base, err := core.Compute(g1, g2, cfg.Sim)
	if err != nil {
		return nil, err
	}
	res := &Result{Log1: cur1, Log2: cur2}
	res.Stats.Evaluations = base.Evaluations

	used1 := make(map[string]bool)
	used2 := make(map[string]bool)
	for {
		if cfg.MaxSteps > 0 && res.Stats.StepsAccepted >= cfg.MaxSteps {
			break
		}
		type best struct {
			side int
			cand Candidate
			log  *eventlog.Log
			g    *depgraph.Graph
			res  *core.Result
		}
		var b *best
		bestAvg := base.Avg() + cfg.Delta
		// The candidate loop can be long; honor the cancellation hook between
		// candidate evaluations too, not only inside the engine rounds.
		if cfg.Sim.Stop != nil {
			if cause := cfg.Sim.Stop(); cause != nil {
				return nil, &core.StopError{Cause: cause}
			}
		}
		try := func(side int, cand Candidate, curLog *eventlog.Log, curG, otherG *depgraph.Graph) error {
			merged := curLog.MergeConsecutive(cand.Events, JoinName(cand.Events))
			mg, err := buildGraph(merged, cfg.MinFrequency)
			if err != nil {
				return err
			}
			var seed *core.Seed
			if cfg.UseUnchanged {
				seed = unchangedSeed(side, base, mg, cand, cfg.Sim.Direction)
			}
			var g1c, g2c *depgraph.Graph
			if side == 1 {
				g1c, g2c = mg, otherG
			} else {
				g1c, g2c = otherG, mg
			}
			comp, err := core.NewComputation(g1c, g2c, cfg.Sim, seed)
			if err != nil {
				return err
			}
			res.Stats.CandidatesTried++
			if cfg.UseBounds && cfg.Sim.EstimateI < 0 {
				// The bound is far above any attainable average in early
				// rounds and costs O(n1*n2) to evaluate, so it is checked
				// only every few rounds once the geometric slack has had a
				// chance to shrink.
				for round := 1; ; round++ {
					done, err := comp.Step()
					if err != nil {
						return err
					}
					if round >= 4 && round%3 == 1 {
						ub, err := comp.AvgUpperBound()
						if err != nil {
							return err
						}
						if ub < bestAvg {
							res.Stats.CandidatesAborted++
							res.Stats.Evaluations += comp.Evaluations()
							return nil
						}
					}
					if done {
						break
					}
				}
			} else {
				if err := comp.Run(); err != nil {
					return err
				}
			}
			r, err := comp.Result()
			if err != nil {
				return err
			}
			res.Stats.Evaluations += r.Evaluations
			if avg := r.Avg(); avg >= bestAvg {
				bestAvg = avg
				b = &best{side: side, cand: cand, log: merged, g: mg, res: r}
			}
			return nil
		}
		for _, cand := range cands1 {
			if cand.Overlaps(used1) {
				continue
			}
			if err := try(1, cand, cur1, g1, g2); err != nil {
				return nil, err
			}
		}
		for _, cand := range cands2 {
			if cand.Overlaps(used2) {
				continue
			}
			if err := try(2, cand, cur2, g2, g1); err != nil {
				return nil, err
			}
		}
		if b == nil {
			break
		}
		if b.side == 1 {
			cur1 = b.log
			g1 = b.g
			res.Merged1 = append(res.Merged1, b.cand)
			markUsed(used1, b.cand)
		} else {
			cur2 = b.log
			g2 = b.g
			res.Merged2 = append(res.Merged2, b.cand)
			markUsed(used2, b.cand)
		}
		base = b.res
		res.Stats.StepsAccepted++
	}
	res.Final = base
	res.Log1, res.Log2 = cur1, cur2
	return res, nil
}

func markUsed(used map[string]bool, cand Candidate) {
	for _, e := range cand.Events {
		used[e] = true
	}
}

// buildGraph constructs the dependency graph of a log with the artificial
// event, applying the minimum-frequency filter first.
func buildGraph(l *eventlog.Log, minFreq float64) (*depgraph.Graph, error) {
	g, err := depgraph.Build(l)
	if err != nil {
		return nil, err
	}
	ga, err := g.AddArtificial()
	if err != nil {
		return nil, err
	}
	if minFreq > 0 {
		ga = ga.FilterMinFrequency(minFreq)
	}
	return ga, nil
}

// unchangedSeed builds the Proposition 4 seed: after merging a composite
// into the graph on the given side, every pair whose side-node is provably
// unaffected keeps its previous similarity and is frozen.
//
// The affected roots are the merged node itself and any surviving
// constituent events (a constituent survives when the run only sometimes
// occurs consecutively, so some of its occurrences were not merged; its
// node and edge frequencies change). Every edge-frequency change of the
// merge is incident to a root, so forward similarities can change only for
// roots and their descendants, and backward similarities only for roots and
// their ancestors.
func unchangedSeed(side int, prev *core.Result, mergedG *depgraph.Graph, cand Candidate, dir core.Direction) *core.Seed {
	roots := make(map[int]bool)
	if i, ok := mergedG.Index[JoinName(cand.Events)]; ok {
		roots[i] = true
	}
	for _, e := range cand.Events {
		if i, ok := mergedG.Index[e]; ok {
			roots[i] = true
		}
	}
	if len(roots) == 0 {
		return nil
	}
	changedFwd := mergedG.Descendants(roots)
	changedBwd := mergedG.Ancestors(roots)
	for r := range roots {
		changedFwd[r] = true
		changedBwd[r] = true
	}

	seed := &core.Seed{}
	if dir == core.Forward || dir == core.Both {
		seed.Forward = seedDirection(side, prev, prev.Forward, mergedG, changedFwd)
	}
	if dir == core.Backward || dir == core.Both {
		seed.Backward = seedDirection(side, prev, prev.Backward, mergedG, changedBwd)
	}
	return seed
}

// seedDirection collects, for every unchanged node of the merged side, the
// previous similarities against every node of the other side. The seed maps
// are keyed graph1-name -> graph2-name regardless of the merged side.
func seedDirection(side int, prev *core.Result, mat []float64, mergedG *depgraph.Graph, changed map[int]bool) map[string]map[string]float64 {
	if mat == nil {
		return nil
	}
	names1, names2 := prev.Names1, prev.Names2
	idxSide := make(map[string]int)
	sideNames := names1
	if side == 2 {
		sideNames = names2
	}
	for k, n := range sideNames {
		idxSide[n] = k
	}
	out := make(map[string]map[string]float64)
	n2 := len(names2)
	for i := mergedG.RealStart(); i < mergedG.N(); i++ {
		if changed[i] {
			continue
		}
		name := mergedG.Names[i]
		pi, ok := idxSide[name]
		if !ok {
			continue
		}
		if side == 1 {
			row := make(map[string]float64, n2)
			for j, other := range names2 {
				row[other] = mat[pi*n2+j]
			}
			out[name] = row
		} else {
			for j, other := range names1 {
				if out[other] == nil {
					out[other] = make(map[string]float64)
				}
				out[other][name] = mat[j*n2+pi]
			}
		}
	}
	return out
}

// String renders a candidate for diagnostics.
func (c Candidate) String() string {
	return fmt.Sprintf("%s (support %.2f)", DisplayName(JoinName(c.Events)), c.Support)
}
