package composite

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/paperexample"
)

// TestExample8UnchangedSimilarities reproduces Example 8: when the
// composite candidate U = {E,F} is merged into G1, the forward similarities
// of A, B, C and D are provably unchanged (AN(v) ∩ U = ∅ for each of them),
// so Proposition 4 lets the greedy seed their rows instead of recomputing.
//
// The claim is specific to the forward direction: backward similarity
// propagates from successors, and A..D are all ancestors of the merged
// region, so their backward rows genuinely change.
func TestExample8UnchangedSimilarities(t *testing.T) {
	l1, l2 := paperexample.Log1(), paperexample.Log2()
	g1, err := buildGraph(l1, 0)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := buildGraph(l2, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Direction = core.Forward
	base, err := core.Compute(g1, g2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cand := Candidate{Events: []string{"E", "F"}, Support: 0.4}
	merged := l1.MergeConsecutive(cand.Events, JoinName(cand.Events))
	mg, err := buildGraph(merged, 0)
	if err != nil {
		t.Fatal(err)
	}
	seed := unchangedSeed(1, base, mg, cand, cfg.Direction)
	if seed == nil {
		t.Fatal("no seed built")
	}
	// Example 8: AN(A) ∩ U = ... = AN(D) ∩ U = ∅, so all four forward rows
	// are seeded.
	for _, v := range []string{"A", "B", "C", "D"} {
		if _, ok := seed.Forward[v]; !ok {
			t.Errorf("forward row of %s not seeded (Proposition 4 missed it)", v)
		}
	}
	// The merged node and surviving constituents must not be seeded.
	for _, v := range []string{JoinName(cand.Events), "E", "F"} {
		if _, ok := seed.Forward[v]; ok {
			t.Errorf("changed node %q wrongly seeded", v)
		}
	}
	comp, err := core.NewComputation(mg, g2, cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := comp.Run(); err != nil {
		t.Fatal(err)
	}
	res, err := comp.Result()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{"A", "B", "C", "D"} {
		for _, u := range []string{"1", "2", "3", "4", "5", "6"} {
			b, _ := base.Lookup(v, u)
			m, _ := res.Lookup(v, u)
			if math.Abs(b-m) > 1e-12 {
				t.Errorf("forward S(%s,%s) changed after merging {E,F}: %g vs %g", v, u, b, m)
			}
		}
	}
	// Sanity: Proposition 4 is not vacuous — an unpruned recomputation of a
	// changed row (E against G2) does move.
	unseeded, err := core.Compute(mg, g2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bE, _ := base.Lookup("E", "5")
	mE, okE := unseeded.Lookup("E", "5")
	if okE && math.Abs(bE-mE) < 1e-9 {
		t.Logf("note: S(E,5) happened to be stable across the merge (%g)", bE)
	}
}
