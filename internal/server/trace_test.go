package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// getTraceView polls GET /v1/traces/{id} on ts until ok accepts the view
// (trace records land asynchronously after the HTTP response, so the first
// reads can be early). localOnly marks the query as peer-relayed, which
// suppresses the fan-out — the view then holds ts's own spans only.
func getTraceView(t *testing.T, ts *httptest.Server, id string, localOnly bool, ok func(TraceView) bool) TraceView {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	var last TraceView
	seen := false
	for time.Now().Before(deadline) {
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/traces/"+id, nil)
		if err != nil {
			t.Fatal(err)
		}
		if localOnly {
			req.Header.Set(cluster.ForwardedHeader, "1")
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			var v TraceView
			err := json.NewDecoder(resp.Body).Decode(&v)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			last, seen = v, true
			if ok == nil || ok(v) {
				return v
			}
		} else {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !seen {
		t.Fatalf("trace %s never became queryable on %s", id, ts.URL)
	}
	t.Fatalf("trace %s never satisfied the condition; last view: %d spans on nodes %v",
		id, last.SpanCount, last.Nodes)
	return TraceView{}
}

// spanByName picks the first span with the given name on the given node.
func spanByName(v TraceView, node, name string) (obs.SpanView, bool) {
	for _, sv := range v.Spans {
		if sv.Node == node && sv.Name == name {
			return sv, true
		}
	}
	return obs.SpanView{}, false
}

// submitWithRequestID posts a job with a client-chosen X-Request-ID and
// returns the accepted view.
func submitWithRequestID(t *testing.T, ts *httptest.Server, req JobRequest, reqID string) JobView {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	hr.Header.Set(obs.RequestIDHeader, reqID)
	resp, err := ts.Client().Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit status = %d: %s", resp.StatusCode, b)
	}
	if echo := resp.Header.Get(obs.RequestIDHeader); echo != reqID {
		t.Fatalf("request ID echo = %q, want %q", echo, reqID)
	}
	var view JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	return view
}

// pickSenderAndOwner computes the ring owner of req's content key and a node
// that does not own it, so the forwarding path is exercised for sure.
func pickSenderAndOwner(t *testing.T, srvs []*Server, req JobRequest) (sender int, owner string) {
	t.Helper()
	pj, err := srvs[0].prepare(req)
	if err != nil {
		t.Fatal(err)
	}
	owner = srvs[0].cluster.ring.Owner(pj.key).ID
	for i, s := range srvs {
		if s.cfg.NodeID != owner {
			return i, owner
		}
	}
	t.Fatal("every node owns the key?")
	return 0, ""
}

// TestForwardedSubmissionKeepsRequestID pins the forwarded-trace fix: the
// owner node must execute a forwarded submission under the client's original
// X-Request-ID, not under a fresh ID minted on the hop. The owner's local
// trace store is the witness — it has spans filed under the original ID.
func TestForwardedSubmissionKeepsRequestID(t *testing.T) {
	srvs, ts := newTestCluster(t, 3)
	req := paperRequest(t)
	sender, owner := pickSenderAndOwner(t, srvs, req)
	ownerIdx := -1
	for i, s := range srvs {
		if s.cfg.NodeID == owner {
			ownerIdx = i
		}
	}

	const reqID = "client-req-4711"
	view := submitWithRequestID(t, ts[sender], req, reqID)
	final := pollJob(t, ts[sender], view.ID)
	if final.Status != StatusDone {
		t.Fatalf("job ended %s (%s)", final.Status, final.Error)
	}
	// The proxied job view reports the trace the owner executed under.
	if final.TraceID != reqID {
		t.Fatalf("owner executed under trace %q, want the client's original %q", final.TraceID, reqID)
	}

	// Ask the owner for its local spans only (the forwarded marker suppresses
	// fan-out): the request root and compute span must be filed under reqID.
	v := getTraceView(t, ts[ownerIdx], reqID, true, func(v TraceView) bool {
		_, ok := spanByName(v, owner, "compute")
		return ok
	})
	for _, sv := range v.Spans {
		if sv.Node != owner {
			t.Fatalf("local-only query returned span %q from node %q", sv.Name, sv.Node)
		}
	}
}

// TestClusterTraceAssembly is the acceptance scenario: a job submitted to
// node A but owned by node C yields, from a node that is neither, a single
// parent-linked span tree with correct per-node attribution — A's request
// root at the top, A's peer hop under it, C's request root under the hop,
// and C's compute span under that.
func TestClusterTraceAssembly(t *testing.T) {
	srvs, ts := newTestCluster(t, 3)
	req := paperRequest(t)
	sender, owner := pickSenderAndOwner(t, srvs, req)
	senderID := srvs[sender].cfg.NodeID

	// The reader is the third node: not the sender, not the owner. With its
	// store empty for this trace, everything it returns came from fan-out.
	reader := -1
	for i, s := range srvs {
		if i != sender && s.cfg.NodeID != owner {
			reader = i
		}
	}
	if reader < 0 {
		t.Fatal("no third node")
	}

	const reqID = "assembly-trace-0001"
	view := submitWithRequestID(t, ts[sender], req, reqID)
	if final := pollJob(t, ts[sender], view.ID); final.Status != StatusDone {
		t.Fatalf("job ended %s (%s)", final.Status, final.Error)
	}

	v := getTraceView(t, ts[reader], reqID, false, func(v TraceView) bool {
		_, ok := spanByName(v, owner, "compute")
		_, ok2 := spanByName(v, senderID, "peer:"+owner)
		return ok && ok2 && len(v.Partial) == 0
	})

	// Per-node attribution: both halves of the hop are present.
	wantNodes := map[string]bool{senderID: true, owner: true}
	for _, n := range v.Nodes {
		delete(wantNodes, n)
	}
	if len(wantNodes) > 0 {
		t.Fatalf("trace nodes = %v, missing %v", v.Nodes, wantNodes)
	}

	// One tree: the client's request to A is the only parentless span.
	if len(v.Tree) != 1 {
		names := make([]string, 0, len(v.Tree))
		for _, n := range v.Tree {
			names = append(names, n.Node+"/"+n.Name)
		}
		t.Fatalf("assembled %d tree roots (%v), want 1", len(v.Tree), names)
	}
	root := v.Tree[0]
	if root.Name != "request" || root.Node != senderID {
		t.Fatalf("tree root is %s/%s, want %s/request", root.Node, root.Name, senderID)
	}

	// Cross-node parentage: A.request -> A.peer:C -> C.request -> C.compute.
	hop, ok := spanByName(v, senderID, "peer:"+owner)
	if !ok {
		t.Fatal("no peer hop span on the sender")
	}
	if hop.Parent != root.ID {
		t.Fatalf("hop parent = %q, want the sender root %q", hop.Parent, root.ID)
	}
	ownerRoot, ok := spanByName(v, owner, "request")
	if !ok {
		t.Fatal("no request root on the owner")
	}
	if ownerRoot.Parent != hop.ID {
		t.Fatalf("owner root parent = %q, want the hop %q", ownerRoot.Parent, hop.ID)
	}
	compute, ok := spanByName(v, owner, "compute")
	if !ok {
		t.Fatal("no compute span on the owner")
	}
	if compute.Parent != ownerRoot.ID {
		t.Fatalf("compute parent = %q, want the owner root %q", compute.Parent, ownerRoot.ID)
	}
	if compute.Open {
		t.Fatal("compute span still open in the assembled trace")
	}
	if compute.Attrs["rounds"] == "" {
		t.Fatalf("compute span lost its engine attrs: %v", compute.Attrs)
	}

	// The listing endpoint knows the trace on the nodes that stored it.
	resp, err := ts[sender].Client().Get(ts[sender].URL + "/v1/traces?limit=10")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Traces []obs.TraceSummary `json:"traces"`
	}
	err = json.NewDecoder(resp.Body).Decode(&listing)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range listing.Traces {
		if row.TraceID == reqID {
			found = true
		}
	}
	if !found {
		t.Fatalf("GET /v1/traces does not list %s on the sender", reqID)
	}

	// Satellite: the span-end hook feeds the phase histogram on the owner.
	resp, err = ts[sender].Client().Get(ts[sender].URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "emsd_phase_seconds") ||
		!strings.Contains(string(body), `phase="request"`) {
		t.Fatal("/metrics has no emsd_phase_seconds series for the request phase")
	}
}

// TestClusterBatchTraceAssembly: a batch grid fanned across the cluster
// spans onto one trace — pairs executed on remote nodes parent under the
// coordinator's hop spans, and any node assembles the whole thing.
func TestClusterBatchTraceAssembly(t *testing.T) {
	srvs, ts := newTestCluster(t, 3)
	req, _ := gridBatchRequest(5, 2)

	const reqID = "batch-trace-0001"
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest(http.MethodPost, ts[0].URL+"/v1/batch", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	hr.Header.Set(obs.RequestIDHeader, reqID)
	resp, err := ts[0].Client().Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	var view JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch submit status = %d", resp.StatusCode)
	}
	if final := pollBatch(t, ts[0], view.ID); final.Status != StatusDone {
		t.Fatalf("batch ended %s (%s)", final.Status, final.Error)
	}

	coord := srvs[0].cfg.NodeID
	v := getTraceView(t, ts[1], reqID, false, func(v TraceView) bool {
		// The 4×4 grid cannot fit on one node of a 3-node ring: wait until at
		// least one remote compute span joined the coordinator's spans.
		if len(v.Nodes) < 2 {
			return false
		}
		for _, sv := range v.Spans {
			if sv.Name == "compute" && sv.Node != coord {
				return true
			}
		}
		return false
	})

	var remoteCompute obs.SpanView
	for _, sv := range v.Spans {
		if sv.Name == "compute" && sv.Node != coord {
			remoteCompute = sv
			break
		}
	}
	// The remote compute span parents under its node's request root, which
	// parents under one of the coordinator's peer hop spans.
	parent, ok := spanByName(v, remoteCompute.Node, "request")
	found := false
	for _, sv := range v.Spans {
		if sv.Node == remoteCompute.Node && sv.Name == "request" && sv.ID == remoteCompute.Parent {
			parent, found = sv, true
			break
		}
	}
	if !ok || !found {
		t.Fatalf("remote compute span on %s has no request root parent", remoteCompute.Node)
	}
	hopFound := false
	for _, sv := range v.Spans {
		if sv.ID == parent.Parent && sv.Node == coord && strings.HasPrefix(sv.Name, "peer:") {
			hopFound = true
			break
		}
	}
	if !hopFound {
		t.Fatalf("remote request root's parent %q is not a coordinator hop span", parent.Parent)
	}
}

// TestTraceQueryUnknownAndSampling: unknown IDs 404 cluster-wide, and a
// node configured to sample nothing stores nothing.
func TestTraceQueryUnknownAndSampling(t *testing.T) {
	s, ts := newTestServer(t, quietConfig(Config{Workers: 1, TraceSample: -1}))
	if _, err := s.Submit(paperRequest(t)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Completed == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if s.traces.Len() != 0 {
		t.Fatalf("trace store holds %d traces with sampling disabled", s.traces.Len())
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/traces/no-such-trace")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace status = %d, want 404", resp.StatusCode)
	}
	resp, err = ts.Client().Get(ts.URL + "/v1/traces?limit=bogus")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad limit status = %d, want 400", resp.StatusCode)
	}
}
