package server

import (
	"sync/atomic"
	"time"
)

// Metrics aggregates service counters. All methods are safe for concurrent
// use; the zero value is ready. Every field is an independent atomic — hot
// increments (submissions, cache probes) never contend on a lock — and
// Snapshot reads them individually, so a snapshot taken mid-update may mix
// counters that are one event apart. Each counter is monotonic on its own,
// which is the consistency Prometheus-style scrapes need.
type Metrics struct {
	submitted  atomic.Uint64
	completed  atomic.Uint64
	failed     atomic.Uint64
	cancelled  atomic.Uint64
	rejected   atomic.Uint64
	shed       atomic.Uint64
	panics     atomic.Uint64
	timeouts   atomic.Uint64
	cacheHits  atomic.Uint64
	cacheMiss  atomic.Uint64
	recovered  atomic.Uint64
	resumed    atomic.Uint64
	retried    atomic.Uint64
	ckpWritten atomic.Uint64

	// Governor counters: jobs downgraded by the degradation ladder and jobs
	// rejected outright because their prediction exceeds the whole budget.
	degraded atomic.Uint64
	tooLarge atomic.Uint64

	// Dirty-log counters: lenient-ingestion skips plus what the repair
	// pipeline did across all repaired jobs.
	ingestSkipped     atomic.Uint64
	repairedJobs      atomic.Uint64
	repairDropped     atomic.Uint64
	repairReordered   atomic.Uint64
	repairImputed     atomic.Uint64
	repairQuarantined atomic.Uint64

	// Wall-time aggregates, all in nanoseconds (timedJobs counts the jobs
	// that contributed). totalWall/timedJobs tear at worst by one job between
	// their two loads in Snapshot; the average is diagnostic, not billing.
	totalWall  atomic.Int64
	maxWall    atomic.Int64
	lastWall   atomic.Int64
	timedJobs  atomic.Uint64
	lastFinish atomic.Int64 // unix nanos of the most recent computed job
}

// Stats is a point-in-time snapshot of the metrics plus the live gauges the
// server injects (queue depth, running jobs, cache size).
type Stats struct {
	Submitted      uint64  `json:"jobs_submitted"`
	Completed      uint64  `json:"jobs_completed"`
	Failed         uint64  `json:"jobs_failed"`
	Cancelled      uint64  `json:"jobs_cancelled"`
	Rejected       uint64  `json:"jobs_rejected"`
	Shed           uint64  `json:"jobs_shed"`
	Panicked       uint64  `json:"jobs_panicked"`
	TimedOut       uint64  `json:"jobs_deadline_exceeded"`
	QueueDepth     int     `json:"queue_depth"`
	Running        int     `json:"jobs_running"`
	CacheHits      uint64  `json:"cache_hits"`
	CacheMisses    uint64  `json:"cache_misses"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
	CacheSize      int     `json:"cache_size"`
	AvgWallMillis  float64 `json:"avg_wall_ms"`
	MaxWallMillis  float64 `json:"max_wall_ms"`
	LastWallMillis float64 `json:"last_wall_ms"`

	// Durability counters; all zero on a server without a data directory.
	Recovered    uint64 `json:"jobs_recovered"`
	Resumed      uint64 `json:"jobs_resumed_from_checkpoint"`
	Retried      uint64 `json:"jobs_retried"`
	Checkpoints  uint64 `json:"checkpoints_written"`
	JournalBytes int64  `json:"journal_bytes"`

	// Dirty-log counters: records skipped by lenient ingestion and the
	// repair pipeline's aggregate activity across repaired jobs.
	IngestSkipped     uint64 `json:"ingest_records_skipped"`
	RepairedJobs      uint64 `json:"jobs_repaired"`
	RepairDropped     uint64 `json:"repair_events_dropped"`
	RepairReordered   uint64 `json:"repair_events_reordered"`
	RepairImputed     uint64 `json:"repair_events_imputed"`
	RepairQuarantined uint64 `json:"repair_traces_quarantined"`

	// Governor state: counters plus the live budget gauges the server fills
	// in. Governor is always present ("ok" on an unbudgeted node); the byte
	// gauges are zero without a -mem-budget.
	Degraded          uint64  `json:"jobs_degraded"`
	TooLarge          uint64  `json:"jobs_too_large"`
	Governor          string  `json:"governor"`
	Load              float64 `json:"load"`
	MemBudgetBytes    int64   `json:"mem_budget_bytes"`
	MemCommittedBytes int64   `json:"mem_committed_bytes"`
}

// Submitted records an accepted job submission.
func (m *Metrics) Submitted() { m.submitted.Add(1) }

// Rejected records a submission refused before queueing (bad request or
// shutdown).
func (m *Metrics) Rejected() { m.rejected.Add(1) }

// Shed records a submission turned away because the job queue was full.
func (m *Metrics) Shed() { m.shed.Add(1) }

// Panicked records a job whose computation panicked; the panic was contained
// and the job failed, the daemon kept serving.
func (m *Metrics) Panicked() { m.panics.Add(1) }

// TimedOut records a job aborted by its wall-clock deadline.
func (m *Metrics) TimedOut() { m.timeouts.Add(1) }

// CacheHit records a job served from the result cache (or coalesced onto an
// in-flight computation of the same pair).
func (m *Metrics) CacheHit() { m.cacheHits.Add(1) }

// CacheMiss records a job that required a fresh computation.
func (m *Metrics) CacheMiss() { m.cacheMiss.Add(1) }

// Recovered records a non-terminal job re-enqueued from the journal at boot.
func (m *Metrics) Recovered() { m.recovered.Add(1) }

// ResumedFromCheckpoint records a recovered job that restarted from a
// persisted engine checkpoint instead of round 0.
func (m *Metrics) ResumedFromCheckpoint() { m.resumed.Add(1) }

// Retried records a job re-enqueued after a transient in-process failure.
func (m *Metrics) Retried() { m.retried.Add(1) }

// CheckpointWritten records one engine checkpoint persisted to disk.
func (m *Metrics) CheckpointWritten() { m.ckpWritten.Add(1) }

// Degraded records a job downgraded a rung by the degradation ladder.
func (m *Metrics) Degraded() { m.degraded.Add(1) }

// TooLarge records a job rejected because its predicted footprint exceeds
// the entire memory budget.
func (m *Metrics) TooLarge() { m.tooLarge.Add(1) }

// IngestSkipped records n input records discarded by lenient ingestion.
func (m *Metrics) IngestSkipped(n uint64) { m.ingestSkipped.Add(n) }

// JobRepaired records one completed job that ran the repair pipeline,
// with the pipeline's combined tallies over both logs.
func (m *Metrics) JobRepaired(dropped, reordered, imputed, quarantined uint64) {
	m.repairedJobs.Add(1)
	m.repairDropped.Add(dropped)
	m.repairReordered.Add(reordered)
	m.repairImputed.Add(imputed)
	m.repairQuarantined.Add(quarantined)
}

// JobDone records a finished job: its terminal state and, for jobs that
// actually computed, the wall time of the computation.
func (m *Metrics) JobDone(status Status, wall time.Duration, computed bool) {
	switch status {
	case StatusDone:
		m.completed.Add(1)
	case StatusFailed:
		m.failed.Add(1)
	case StatusCancelled:
		m.cancelled.Add(1)
	}
	if computed {
		m.timedJobs.Add(1)
		m.totalWall.Add(int64(wall))
		m.lastWall.Store(int64(wall))
		m.lastFinish.Store(time.Now().UnixNano())
		for {
			cur := m.maxWall.Load()
			if int64(wall) <= cur || m.maxWall.CompareAndSwap(cur, int64(wall)) {
				break
			}
		}
	}
}

// Snapshot returns the current counters. Gauges (queue depth, running,
// cache size) are zero; the server fills them in.
func (m *Metrics) Snapshot() Stats {
	s := Stats{
		Submitted:   m.submitted.Load(),
		Completed:   m.completed.Load(),
		Failed:      m.failed.Load(),
		Cancelled:   m.cancelled.Load(),
		Rejected:    m.rejected.Load(),
		Shed:        m.shed.Load(),
		Panicked:    m.panics.Load(),
		TimedOut:    m.timeouts.Load(),
		CacheHits:   m.cacheHits.Load(),
		CacheMisses: m.cacheMiss.Load(),
		Recovered:   m.recovered.Load(),
		Resumed:     m.resumed.Load(),
		Retried:     m.retried.Load(),
		Checkpoints: m.ckpWritten.Load(),
		Degraded:    m.degraded.Load(),
		TooLarge:    m.tooLarge.Load(),

		IngestSkipped:     m.ingestSkipped.Load(),
		RepairedJobs:      m.repairedJobs.Load(),
		RepairDropped:     m.repairDropped.Load(),
		RepairReordered:   m.repairReordered.Load(),
		RepairImputed:     m.repairImputed.Load(),
		RepairQuarantined: m.repairQuarantined.Load(),
	}
	if total := s.CacheHits + s.CacheMisses; total > 0 {
		s.CacheHitRate = float64(s.CacheHits) / float64(total)
	}
	if timed := m.timedJobs.Load(); timed > 0 {
		s.AvgWallMillis = float64(m.totalWall.Load()) / float64(time.Millisecond) / float64(timed)
	}
	s.MaxWallMillis = float64(m.maxWall.Load()) / float64(time.Millisecond)
	s.LastWallMillis = float64(m.lastWall.Load()) / float64(time.Millisecond)
	return s
}
