package server

import (
	"sync"
	"time"
)

// Metrics aggregates service counters. All methods are safe for concurrent
// use; the zero value is ready.
type Metrics struct {
	mu         sync.Mutex
	submitted  uint64
	completed  uint64
	failed     uint64
	cancelled  uint64
	rejected   uint64
	shed       uint64
	panics     uint64
	timeouts   uint64
	cacheHits  uint64
	cacheMiss  uint64
	recovered  uint64
	resumed    uint64
	retried    uint64
	ckpWritten uint64
	totalWall  time.Duration
	maxWall    time.Duration
	timedJobs  uint64
	lastWall   time.Duration
	lastFinish time.Time
}

// Stats is a point-in-time snapshot of the metrics plus the live gauges the
// server injects (queue depth, running jobs, cache size).
type Stats struct {
	Submitted      uint64  `json:"jobs_submitted"`
	Completed      uint64  `json:"jobs_completed"`
	Failed         uint64  `json:"jobs_failed"`
	Cancelled      uint64  `json:"jobs_cancelled"`
	Rejected       uint64  `json:"jobs_rejected"`
	Shed           uint64  `json:"jobs_shed"`
	Panicked       uint64  `json:"jobs_panicked"`
	TimedOut       uint64  `json:"jobs_deadline_exceeded"`
	QueueDepth     int     `json:"queue_depth"`
	Running        int     `json:"jobs_running"`
	CacheHits      uint64  `json:"cache_hits"`
	CacheMisses    uint64  `json:"cache_misses"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
	CacheSize      int     `json:"cache_size"`
	AvgWallMillis  float64 `json:"avg_wall_ms"`
	MaxWallMillis  float64 `json:"max_wall_ms"`
	LastWallMillis float64 `json:"last_wall_ms"`

	// Durability counters; all zero on a server without a data directory.
	Recovered    uint64 `json:"jobs_recovered"`
	Resumed      uint64 `json:"jobs_resumed_from_checkpoint"`
	Retried      uint64 `json:"jobs_retried"`
	Checkpoints  uint64 `json:"checkpoints_written"`
	JournalBytes int64  `json:"journal_bytes"`
}

// Submitted records an accepted job submission.
func (m *Metrics) Submitted() {
	m.mu.Lock()
	m.submitted++
	m.mu.Unlock()
}

// Rejected records a submission refused before queueing (bad request or
// shutdown).
func (m *Metrics) Rejected() {
	m.mu.Lock()
	m.rejected++
	m.mu.Unlock()
}

// Shed records a submission turned away because the job queue was full.
func (m *Metrics) Shed() {
	m.mu.Lock()
	m.shed++
	m.mu.Unlock()
}

// Panicked records a job whose computation panicked; the panic was contained
// and the job failed, the daemon kept serving.
func (m *Metrics) Panicked() {
	m.mu.Lock()
	m.panics++
	m.mu.Unlock()
}

// TimedOut records a job aborted by its wall-clock deadline.
func (m *Metrics) TimedOut() {
	m.mu.Lock()
	m.timeouts++
	m.mu.Unlock()
}

// CacheHit records a job served from the result cache (or coalesced onto an
// in-flight computation of the same pair).
func (m *Metrics) CacheHit() {
	m.mu.Lock()
	m.cacheHits++
	m.mu.Unlock()
}

// CacheMiss records a job that required a fresh computation.
func (m *Metrics) CacheMiss() {
	m.mu.Lock()
	m.cacheMiss++
	m.mu.Unlock()
}

// Recovered records a non-terminal job re-enqueued from the journal at boot.
func (m *Metrics) Recovered() {
	m.mu.Lock()
	m.recovered++
	m.mu.Unlock()
}

// ResumedFromCheckpoint records a recovered job that restarted from a
// persisted engine checkpoint instead of round 0.
func (m *Metrics) ResumedFromCheckpoint() {
	m.mu.Lock()
	m.resumed++
	m.mu.Unlock()
}

// Retried records a job re-enqueued after a transient in-process failure.
func (m *Metrics) Retried() {
	m.mu.Lock()
	m.retried++
	m.mu.Unlock()
}

// CheckpointWritten records one engine checkpoint persisted to disk.
func (m *Metrics) CheckpointWritten() {
	m.mu.Lock()
	m.ckpWritten++
	m.mu.Unlock()
}

// JobDone records a finished job: its terminal state and, for jobs that
// actually computed, the wall time of the computation.
func (m *Metrics) JobDone(status Status, wall time.Duration, computed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch status {
	case StatusDone:
		m.completed++
	case StatusFailed:
		m.failed++
	case StatusCancelled:
		m.cancelled++
	}
	if computed {
		m.timedJobs++
		m.totalWall += wall
		m.lastWall = wall
		m.lastFinish = time.Now()
		if wall > m.maxWall {
			m.maxWall = wall
		}
	}
}

// Snapshot returns the current counters. Gauges (queue depth, running,
// cache size) are zero; the server fills them in.
func (m *Metrics) Snapshot() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Stats{
		Submitted:   m.submitted,
		Completed:   m.completed,
		Failed:      m.failed,
		Cancelled:   m.cancelled,
		Rejected:    m.rejected,
		Shed:        m.shed,
		Panicked:    m.panics,
		TimedOut:    m.timeouts,
		CacheHits:   m.cacheHits,
		CacheMisses: m.cacheMiss,
		Recovered:   m.recovered,
		Resumed:     m.resumed,
		Retried:     m.retried,
		Checkpoints: m.ckpWritten,
	}
	if total := m.cacheHits + m.cacheMiss; total > 0 {
		s.CacheHitRate = float64(m.cacheHits) / float64(total)
	}
	if m.timedJobs > 0 {
		s.AvgWallMillis = float64(m.totalWall.Microseconds()) / 1000 / float64(m.timedJobs)
	}
	s.MaxWallMillis = float64(m.maxWall.Microseconds()) / 1000
	s.LastWallMillis = float64(m.lastWall.Microseconds()) / 1000
	return s
}
