package server

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// VersionInfo describes the running binary, extracted from the build info
// the Go linker embeds. Fields degrade to "unknown" when the binary was
// built outside a module or VCS checkout (e.g. plain `go test`).
type VersionInfo struct {
	// Version is the main module's version ("(devel)" for source builds).
	Version string `json:"version"`
	// Revision is the VCS commit hash the binary was built from.
	Revision string `json:"revision"`
	// Dirty reports uncommitted changes at build time.
	Dirty bool `json:"dirty,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
}

var (
	versionOnce sync.Once
	versionInfo VersionInfo
)

// Version returns the binary's build identity; the extraction runs once.
func Version() VersionInfo {
	versionOnce.Do(func() {
		versionInfo = VersionInfo{
			Version:   "unknown",
			Revision:  "unknown",
			GoVersion: runtime.Version(),
		}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		if bi.Main.Version != "" {
			versionInfo.Version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				versionInfo.Revision = s.Value
			case "vcs.modified":
				versionInfo.Dirty = s.Value == "true"
			}
		}
	})
	return versionInfo
}
