package server

import (
	"context"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"repro/ems"
	"repro/internal/obs"
)

// Status is the lifecycle state of a match job.
type Status string

// Job lifecycle: queued → running → one of the terminal states. Jobs served
// from the cache (or coalesced onto an identical in-flight job) jump
// straight to done.
const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusDone      Status = "done"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
)

// LogInput carries one log of a job request. Exactly one of CSV, Traces,
// and Path must be set.
type LogInput struct {
	// Name labels the log in diagnostics; defaults to "log1"/"log2".
	Name string `json:"name,omitempty"`
	// CSV is an inline two-column case,event CSV document.
	CSV string `json:"csv,omitempty"`
	// Traces is the inline JSON form: a list of traces, each a list of
	// event names.
	Traces [][]string `json:"traces,omitempty"`
	// Path reads the log from a file on the server's filesystem.
	Path string `json:"path,omitempty"`
	// Format selects the file format for Path: "csv" (default) or "xml".
	Format string `json:"format,omitempty"`
	// Lenient reads the log with quarantining ingestion: malformed rows,
	// nameless events and oversized records are skipped and counted instead
	// of failing the submission. Only meaningful for CSV and Path inputs.
	Lenient bool `json:"lenient,omitempty"`
}

// JobOptions mirrors the emsmatch CLI knobs. Pointer fields distinguish
// "not given" from an explicit zero, so -labels can default alpha to 0.7
// exactly like the CLI does.
type JobOptions struct {
	Alpha     *float64 `json:"alpha,omitempty"`
	Labels    bool     `json:"labels,omitempty"`
	Estimate  *int     `json:"estimate,omitempty"`
	Composite bool     `json:"composite,omitempty"`
	Threshold *float64 `json:"threshold,omitempty"`
	MinFreq   *float64 `json:"min_freq,omitempty"`
	Delta     *float64 `json:"delta,omitempty"`
	// Exact disables the engine's default adaptive fast path and iterates
	// to exact convergence (ems.WithExact). Exact and estimated runs of the
	// same pair produce different matrices, so this is part of the cache key.
	Exact bool `json:"exact,omitempty"`
	// TimeoutMS overrides the server's default per-job wall-clock deadline
	// in milliseconds, clamped to the server's maximum. An explicit 0 asks
	// for no deadline (still subject to the server maximum). Deadlines never
	// change results, so they are deliberately not part of the cache key.
	TimeoutMS *float64 `json:"timeout_ms,omitempty"`
	// Repair enables the dirty-log repair pipeline over both logs before
	// matching (ems.WithRepairOptions); nil matches the logs as recorded.
	// Repair changes the matched logs and therefore the result, so the
	// resolved knobs join the cache key.
	Repair *RepairJobOptions `json:"repair,omitempty"`
	// NoDegrade opts the job out of the degradation ladder: a pressured
	// server sheds it (503 + Retry-After) instead of downgrading it to a
	// cheaper rung. Use for jobs whose callers need the requested fidelity.
	// Not part of the cache key — it only affects admission, never results.
	NoDegrade bool `json:"no_degrade,omitempty"`
}

// RepairJobOptions mirrors ems.RepairOptions over JSON. The zero value (with
// the pointer set in JobOptions) runs the default pipeline, whose order and
// imputation thresholds self-calibrate to each log's measured dirtiness.
type RepairJobOptions struct {
	Window         int     `json:"window,omitempty"`
	OrderRatio     float64 `json:"order_ratio,omitempty"`
	OrderMaxFwd    float64 `json:"order_max_fwd,omitempty"`
	OrderMaxPasses int     `json:"order_max_passes,omitempty"`
	ImputeRatio    float64 `json:"impute_ratio,omitempty"`
	ImputeMinPath  float64 `json:"impute_min_path,omitempty"`
	ImputeMax      int     `json:"impute_max,omitempty"`
}

func (r *RepairJobOptions) toEMS() ems.RepairOptions {
	return ems.RepairOptions{
		Window:         r.Window,
		OrderRatio:     r.OrderRatio,
		OrderMaxFwd:    r.OrderMaxFwd,
		OrderMaxPasses: r.OrderMaxPasses,
		ImputeRatio:    r.ImputeRatio,
		ImputeMinPath:  r.ImputeMinPath,
		ImputeMax:      r.ImputeMax,
	}
}

// JobRequest is the body of POST /v1/jobs.
type JobRequest struct {
	Log1    LogInput   `json:"log1"`
	Log2    LogInput   `json:"log2"`
	Options JobOptions `json:"options"`
}

// resolve turns a LogInput into a Log. skipped counts the records discarded
// by lenient ingestion (always 0 in strict mode, which fails instead).
func (in *LogInput) resolve(fallbackName string) (l *ems.Log, skipped int, err error) {
	name := in.Name
	if name == "" {
		name = fallbackName
	}
	set := 0
	for _, present := range []bool{in.CSV != "", in.Traces != nil, in.Path != ""} {
		if present {
			set++
		}
	}
	if set != 1 {
		return nil, 0, fmt.Errorf("%s: exactly one of csv, traces, path must be set", name)
	}
	ro := ems.ReadOptions{Lenient: in.Lenient}
	switch {
	case in.CSV != "":
		l, rep, err := ems.ReadCSVWith(strings.NewReader(in.CSV), name, ro)
		if err != nil {
			return nil, 0, fmt.Errorf("%s: %w", name, err)
		}
		return l, rep.Total(), nil
	case in.Traces != nil:
		l := ems.NewLog(name)
		for i, t := range in.Traces {
			if len(t) == 0 {
				return nil, 0, fmt.Errorf("%s: trace %d is empty", name, i)
			}
			l.Append(ems.Trace(t))
		}
		if l.Len() == 0 {
			return nil, 0, fmt.Errorf("%s: no traces", name)
		}
		return l, 0, nil
	default:
		f, err := os.Open(in.Path)
		if err != nil {
			return nil, 0, fmt.Errorf("%s: %w", name, err)
		}
		defer f.Close()
		var rep *ems.SkipReport
		switch in.Format {
		case "", "csv":
			l, rep, err = ems.ReadCSVWith(f, name, ro)
		case "xml":
			l, rep, err = ems.ReadXMLWith(f, ro)
		default:
			return nil, 0, fmt.Errorf("%s: unknown format %q (want csv or xml)", name, in.Format)
		}
		if err != nil {
			return nil, 0, fmt.Errorf("%s: %w", name, err)
		}
		return l, rep.Total(), nil
	}
}

// build validates the options and returns the ems option list plus the
// canonical string that feeds the cache key. Defaults mirror cmd/emsmatch:
// labels without an explicit alpha blends at 0.7.
func (o JobOptions) build() ([]ems.Option, string, error) {
	alpha := 1.0
	if o.Alpha != nil {
		alpha = *o.Alpha
	} else if o.Labels {
		alpha = 0.7
	}
	threshold := 0.1
	if o.Threshold != nil {
		threshold = *o.Threshold
	}
	minFreq := 0.0
	if o.MinFreq != nil {
		minFreq = *o.MinFreq
	}
	delta := 0.005
	if o.Delta != nil {
		delta = *o.Delta
	}
	estimate := -1
	if o.Estimate != nil {
		estimate = *o.Estimate
	}
	opts := []ems.Option{
		ems.WithMinFrequency(minFreq),
		ems.WithSelectionThreshold(threshold),
		ems.WithDelta(delta),
		ems.WithAlpha(alpha),
	}
	if o.Labels {
		opts = append(opts, ems.WithLabelSimilarity(ems.QGramCosine(3)))
	}
	if estimate >= 0 {
		opts = append(opts, ems.WithEstimation(estimate))
	}
	if o.Exact {
		opts = append(opts, ems.WithExact())
	}
	repairKey := "off"
	if o.Repair != nil {
		r := *o.Repair
		opts = append(opts, ems.WithRepairOptions(r.toEMS()))
		repairKey = fmt.Sprintf("w=%d,or=%g,omf=%g,omp=%d,ir=%g,imp=%g,im=%d",
			r.Window, r.OrderRatio, r.OrderMaxFwd, r.OrderMaxPasses,
			r.ImputeRatio, r.ImputeMinPath, r.ImputeMax)
	}
	// Probe the options now so bad values fail the submission with a 400
	// instead of a failed job later. NewMatcher validates options without
	// computing anything.
	probe := ems.NewLog("probe")
	probe.Append(ems.Trace{"x"})
	if _, err := ems.NewMatcher(probe, probe, opts...); err != nil {
		return nil, "", err
	}
	key := fmt.Sprintf("alpha=%g labels=%t estimate=%d threshold=%g minfreq=%g delta=%g composite=%t exact=%t repair=%s",
		alpha, o.Labels, estimate, threshold, minFreq, delta, o.Composite, o.Exact, repairKey)
	return opts, key, nil
}

// Job is one submitted match unit. The zero value is not usable; the server
// creates jobs.
type Job struct {
	ID string

	mu       sync.Mutex
	status   Status
	err      string
	result   *ems.Result
	cacheHit bool
	wall     time.Duration
	done     chan struct{}

	// fields owned by the server (guarded by Server.mu):
	key       string
	followers []*Job
	pair      ems.PairInput
	opts      []ems.Option
	composite bool
	// trace and prog are the job's observability handles, both set before
	// the job is shared and immutable afterwards: trace collects the span
	// timeline (always present on jobs created via Submit), prog accumulates
	// the engine's per-round observations (leader jobs that drive the
	// iteration engine only — nil for composite jobs, cache hits, and
	// followers).
	trace *obs.Trace
	prog  *progress
	// timeout is this job's wall-clock budget, armed when a worker picks the
	// job up (not at submission, so queue time does not count against it).
	timeout time.Duration
	// ctx and cancel are set for fresh (leader) jobs only: ctx is derived
	// from the server's base context, cancel carries the cancellation cause
	// (client cancel vs shutdown). Both are immutable after Submit.
	ctx    context.Context
	cancel context.CancelCauseFunc
	// batch is set on batch-coordinator jobs (IDs "batch-NNNNNN") and nil on
	// ordinary match jobs; immutable once the job is shared.
	batch *batchRun
	// cost is the governor reservation held by this job in bytes (0 when the
	// governor is off or the job never reserved); cleared by completeJob.
	cost int64
	// degraded names the ladder rung this job was downgraded to at admission
	// ("fast-path" or "estimate-only"); empty for jobs run as requested.
	// Immutable once the job is enqueued.
	degraded string

	// durability fields, set only on journaled jobs (DataDir configured):
	// seq is the journal sequence number (0 = not journaled: cache hits and
	// followers are never journaled), attempt counts worker pickups across
	// restarts, resume is the persisted engine checkpoint to restart from.
	seq     uint64
	attempt int
	resume  *ems.EngineCheckpoint
}

func newJob(id string) *Job {
	return &Job{ID: id, status: StatusQueued, done: make(chan struct{})}
}

// JobView is the JSON representation of a job's state.
type JobView struct {
	ID       string  `json:"id"`
	Status   Status  `json:"status"`
	CacheHit bool    `json:"cache_hit"`
	Error    string  `json:"error,omitempty"`
	WallMS   float64 `json:"wall_ms"`
	// TraceID identifies the request trace the job belongs to: the client's
	// X-Request-ID when one was sent, a generated ID otherwise. Empty only
	// for jobs recovered from a journal written by an older binary.
	TraceID string `json:"trace_id,omitempty"`
}

// View snapshots the job for serialization.
func (j *Job) View() JobView {
	v := JobView{ID: j.ID}
	if j.trace != nil { // immutable once the job is shared
		v.TraceID = j.trace.ID()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	v.Status = j.status
	v.CacheHit = j.cacheHit
	v.Error = j.err
	v.WallMS = float64(j.wall.Microseconds()) / 1000
	return v
}

// Status returns the job's current state.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Result returns the matched result once the job is done; ok is false in
// every other state.
func (j *Job) Result() (*ems.Result, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusDone {
		return nil, false
	}
	return j.result, true
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// setRunning transitions queued → running; it reports whether the
// transition happened (false when the job was already terminal).
func (j *Job) setRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusQueued {
		return false
	}
	j.status = StatusRunning
	return true
}

// setQueued transitions running → queued for a retry re-enqueue; it reports
// whether the transition happened (false when the job went terminal, e.g.
// was cancelled while failing).
func (j *Job) setQueued() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusRunning {
		return false
	}
	j.status = StatusQueued
	return true
}

// finish moves the job to a terminal state exactly once.
func (j *Job) finish(status Status, res *ems.Result, errMsg string, wall time.Duration, cacheHit bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.status {
	case StatusDone, StatusFailed, StatusCancelled:
		return
	}
	j.status = status
	j.result = res
	j.err = errMsg
	j.wall = wall
	j.cacheHit = cacheHit
	close(j.done)
}
