package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/ems"
	"repro/internal/cluster"
)

// swapHandler lets an httptest listener come up before the Server behind it
// exists: peers need each other's URLs at construction time. Requests that
// race the bootstrap get a 503, which the cluster paths treat as
// unavailable-and-retry.
type swapHandler struct {
	h atomic.Pointer[http.Handler]
}

func (sw *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h := sw.h.Load(); h != nil {
		(*h).ServeHTTP(w, r)
		return
	}
	http.Error(w, "booting", http.StatusServiceUnavailable)
}

// newTestCluster boots n emsd nodes on loopback listeners, fully meshed.
// Node IDs are "node-a", "node-b", ... — placement over them is
// deterministic, so tests can pick victims by ring position.
func newTestCluster(t *testing.T, n int) ([]*Server, []*httptest.Server) {
	t.Helper()
	handlers := make([]*swapHandler, n)
	ts := make([]*httptest.Server, n)
	for i := range handlers {
		handlers[i] = &swapHandler{}
		ts[i] = httptest.NewServer(handlers[i])
	}
	id := func(i int) string { return fmt.Sprintf("node-%c", 'a'+i) }
	srvs := make([]*Server, n)
	for i := 0; i < n; i++ {
		var peers []cluster.Node
		for j := 0; j < n; j++ {
			if j != i {
				peers = append(peers, cluster.Node{ID: id(j), Addr: ts[j].URL})
			}
		}
		s := mustNew(t, Config{
			Workers: 2,
			NodeID:  id(i),
			Cluster: &ClusterConfig{
				Advertise:     ts[i].URL,
				Peers:         peers,
				ProbeInterval: time.Hour, // request-path reporting only: no probe noise in tests
				PeerTimeout:   5 * time.Second,
				PollInterval:  20 * time.Millisecond,
			},
		})
		h := s.Handler()
		handlers[i].h.Store(&h)
		srvs[i] = s
	}
	t.Cleanup(func() {
		for i := n - 1; i >= 0; i-- {
			ts[i].Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			_ = srvs[i].Shutdown(ctx)
			cancel()
		}
	})
	return srvs, ts
}

// TestClusterForwarding: a submission to a non-owning node is forwarded to
// the ring owner, the returned handle is qualified with the owner's ID, and
// polling plus result fetch through the original node yield the exact bytes
// a local computation produces.
func TestClusterForwarding(t *testing.T) {
	srvs, ts := newTestCluster(t, 3)
	req := paperRequest(t)

	// Compute where the ring puts this request, then submit via a node that
	// does NOT own it so the forwarding path is exercised for sure.
	pj, err := srvs[0].prepare(req)
	if err != nil {
		t.Fatal(err)
	}
	owner := srvs[0].cluster.ring.Owner(pj.key).ID
	sender := -1
	for i, s := range srvs {
		if s.cfg.NodeID != owner {
			sender = i
			break
		}
	}
	view, code := postJob(t, ts[sender], req)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	wantSuffix := "@" + owner
	if !strings.HasSuffix(view.ID, wantSuffix) {
		t.Fatalf("forwarded job ID %q not qualified with owner %q", view.ID, owner)
	}

	// The whole exchange sticks to the sender node: poll + result are
	// proxied to the owner transparently.
	final := pollJob(t, ts[sender], view.ID)
	if final.Status != StatusDone {
		t.Fatalf("job status = %s (%s)", final.Status, final.Error)
	}
	if final.ID != view.ID {
		t.Fatalf("proxied view lost the qualified ID: %q vs %q", final.ID, view.ID)
	}
	got := fetchResult(t, ts[sender], view.ID)

	l1, _, err := req.Log1.resolve("log1")
	if err != nil {
		t.Fatal(err)
	}
	l2, _, err := req.Log2.resolve("log2")
	if err != nil {
		t.Fatal(err)
	}
	opts, _, err := JobOptions{}.build()
	if err != nil {
		t.Fatal(err)
	}
	want, err := ems.Match(l1, l2, opts...)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := want.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := got.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("forwarded result differs from local match:\n%s\nvs\n%s", a.String(), b.String())
	}

	// The owner executed it; the sender only relayed.
	if st := getStats(t, ts[sender]); st.Submitted != 0 {
		t.Fatalf("sender executed %d jobs itself instead of forwarding", st.Submitted)
	}
	// DELETE on the qualified handle routes too (the job is already
	// terminal, so this is just the routing check).
	reqDel, _ := http.NewRequest(http.MethodDelete, ts[sender].URL+"/v1/jobs/"+view.ID, nil)
	resp, err := ts[sender].Client().Do(reqDel)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxied cancel status = %d", resp.StatusCode)
	}
}

// gridBatchRequest builds a deterministic 4×4 grid over permutation logs of
// n events and the given trace count (bigger = slower pairs).
func gridBatchRequest(n, traces int) (BatchRequest, []ems.PairInput) {
	var req BatchRequest
	var logs1, logs2 []*ems.Log
	for i := 0; i < 4; i++ {
		l := permLog(n, traces, fmt.Sprintf("s%d", i), int64(i+1))
		logs1 = append(logs1, l)
		req.Logs1 = append(req.Logs1, LogInput{Name: l.Name, Traces: logTraces(l)})
	}
	for j := 0; j < 4; j++ {
		l := permLog(n, traces, fmt.Sprintf("t%d", j), int64(100+j))
		logs2 = append(logs2, l)
		req.Logs2 = append(req.Logs2, LogInput{Name: l.Name, Traces: logTraces(l)})
	}
	var pairs []ems.PairInput
	for _, l1 := range logs1 {
		for _, l2 := range logs2 {
			pairs = append(pairs, ems.PairInput{Name: l1.Name + "|" + l2.Name, Log1: l1, Log2: l2})
		}
	}
	return req, pairs
}

func logTraces(l *ems.Log) [][]string {
	out := make([][]string, len(l.Traces))
	for i, tr := range l.Traces {
		out[i] = append([]string(nil), tr...)
	}
	return out
}

func pollBatch(t *testing.T, ts *httptest.Server, id string) BatchView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := ts.Client().Get(ts.URL + "/v1/batch/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v BatchView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch v.Status {
		case StatusDone, StatusFailed, StatusCancelled:
			return v
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("batch %s did not finish", id)
	return BatchView{}
}

// TestClusterBatchFailover is the acceptance scenario: a 3-node cluster
// serves a 4×4 grid through POST /v1/batch, one worker node is killed
// mid-batch, the coordinator fails its pairs over to the next ring replica,
// and the final grid is byte-for-byte identical to a single-node
// ems.MatchAll over the same pairs.
func TestClusterBatchFailover(t *testing.T) {
	srvs, ts := newTestCluster(t, 3)
	// Dense permutation logs: each pair takes long enough that the kill
	// below lands while the grid is still in flight.
	req, refPairs := gridBatchRequest(9, 6)

	// Pick the victim deterministically: the owner of the first pair that is
	// not owned by the coordinator (node-a), so at least one pair must fail
	// over and the coordinator itself survives.
	pb, err := srvs[0].prepareBatch(req)
	if err != nil {
		t.Fatal(err)
	}
	victim := -1
	for _, p := range pb.pairs {
		if owner := srvs[0].cluster.ring.Owner(p.Key).ID; owner != srvs[0].cfg.NodeID {
			for i, s := range srvs {
				if s.cfg.NodeID == owner {
					victim = i
				}
			}
			break
		}
	}
	if victim < 1 {
		t.Fatalf("no pair placed on a peer; placement degenerate (victim=%d)", victim)
	}

	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts[0].Client().Post(ts[0].URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var view JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch submit status = %d (%+v)", resp.StatusCode, view)
	}

	// Kill the victim while the batch is in flight: its listener dies, so
	// every pair placed there fails over to the next replica.
	ts[victim].CloseClientConnections()
	ts[victim].Close()

	final := pollBatch(t, ts[0], view.ID)
	if final.Status != StatusDone {
		t.Fatalf("batch status = %s (error %q)", final.Status, final.Error)
	}
	if final.Pairs != 16 || final.Done != 16 || final.Failed != 0 {
		t.Fatalf("grid incomplete: pairs=%d done=%d failed=%d", final.Pairs, final.Done, final.Failed)
	}
	if final.Failovers == 0 {
		t.Fatal("victim was killed mid-batch but no failover was recorded")
	}

	// Bit-identical to the single-node batch path: the HTTP encoder
	// re-indents embedded JSON, so compare whitespace-compacted bytes —
	// json.Compact copies every number literal verbatim, so any float drift
	// across the wire or across nodes still fails the comparison.
	opts, _, err := JobOptions{}.build()
	if err != nil {
		t.Fatal(err)
	}
	ref := ems.MatchAll(refPairs, 2, false, opts...)
	byName := make(map[string]json.RawMessage, len(final.PairResults))
	for _, pv := range final.PairResults {
		if pv.Status != StatusDone {
			t.Fatalf("pair %q status %s: %s", pv.Name, pv.Status, pv.Error)
		}
		if pv.Node == srvs[victim].cfg.NodeID {
			t.Fatalf("pair %q reports terminal success on the killed node", pv.Name)
		}
		byName[pv.Name] = pv.Result
	}
	for _, out := range ref {
		if out.Err != nil {
			t.Fatalf("reference pair %q failed: %v", out.Name, out.Err)
		}
		var w bytes.Buffer
		if err := out.Result.WriteJSON(&w); err != nil {
			t.Fatal(err)
		}
		got, ok := byName[out.Name]
		if !ok {
			t.Fatalf("pair %q missing from the batch view", out.Name)
		}
		var want, have bytes.Buffer
		if err := json.Compact(&want, w.Bytes()); err != nil {
			t.Fatal(err)
		}
		if err := json.Compact(&have, []byte(got)); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), have.Bytes()) {
			t.Fatalf("pair %q differs from single-node MatchAll:\n%s\nvs\n%s", out.Name, want.String(), have.String())
		}
	}

	// Consensus over 16 successful pairs with the default (majority) quorum.
	if final.Quorum != 9 {
		t.Fatalf("default quorum = %d, want 9 (majority of 16)", final.Quorum)
	}
	if final.ConsensusError != "" {
		// An empty consensus is legitimate (the grids are random), but the
		// computation itself must have run.
		t.Fatalf("consensus failed: %s", final.ConsensusError)
	}

	// The coordinator's /metrics exports per-peer forward and failover
	// counters, and the victim's up-gauge dropped to 0.
	mresp, err := ts[0].Client().Get(ts[0].URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	exp, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(exp)
	victimID := srvs[victim].cfg.NodeID
	for _, want := range []string{
		fmt.Sprintf(`emsd_peer_failovers_total{peer=%q}`, victimID),
		fmt.Sprintf(`emsd_peer_up{peer=%q} 0`, victimID),
		"emsd_peer_forwards_total{peer=",
		"emsd_batch_pairs_total{outcome=\"done\"} 16",
		"emsd_batch_jobs_total 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	found := false
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, fmt.Sprintf(`emsd_peer_failovers_total{peer=%q}`, victimID)) {
			var v float64
			if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%g", &v); err == nil && v > 0 {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("victim failover counter not positive:\n%s", metrics)
	}

	// The progress endpoint carries the batch counters too.
	presp, err := ts[0].Client().Get(ts[0].URL + "/v1/jobs/" + view.ID + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	var pv ProgressView
	err = json.NewDecoder(presp.Body).Decode(&pv)
	presp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if pv.Batch == nil || pv.Batch.Done != 16 {
		t.Fatalf("progress batch view = %+v", pv.Batch)
	}
}

// TestBatchStandalone: POST /v1/batch works without any peers — the
// single-node ring places every pair locally — and explicit pairs mode with
// a custom quorum feeds the consensus.
func TestBatchStandalone(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	req, refPairs := gridBatchRequest(5, 3)
	req.Quorum = 1

	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var view JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch submit status = %d", resp.StatusCode)
	}
	if !strings.HasPrefix(view.ID, "batch-") {
		t.Fatalf("batch job ID = %q", view.ID)
	}
	final := pollBatch(t, ts, view.ID)
	if final.Status != StatusDone || final.Done != len(refPairs) {
		t.Fatalf("batch = %s done=%d/%d (%s)", final.Status, final.Done, len(refPairs), final.Error)
	}
	if final.Quorum != 1 {
		t.Fatalf("quorum = %d, want the requested 1", final.Quorum)
	}
	if len(final.Consensus) == 0 {
		t.Fatal("quorum 1 over successful pairs must yield a non-empty consensus")
	}
	// The batch handle is a job too: it lists, and its ID is pollable.
	if jv := pollJob(t, ts, view.ID); jv.Status != StatusDone {
		t.Fatalf("batch job view status = %s", jv.Status)
	}
}

// TestBatchValidation: malformed batches are rejected with 400 before any
// coordination starts.
func TestBatchValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxBatchPairs: 4})
	cases := []string{
		`{}`,
		`{"logs1":[{"traces":[["a"]]}]}`,
		`{"logs1":[{"traces":[["a"]]}],"logs2":[{"traces":[["b"]]}],"pairs":[{"log1":{"traces":[["a"]]},"log2":{"traces":[["b"]]}}]}`,
		`{"logs1":[{"traces":[["a"]]},{"traces":[["c"]]},{"traces":[["d"]]}],"logs2":[{"traces":[["b"]]},{"traces":[["e"]]}]}`, // 6 > MaxBatchPairs
		`{"logs1":[{"traces":[["a"]]}],"logs2":[{"traces":[["b"]]}],"quorum":-1}`,
		`{"logs1":[{"traces":[[]]}],"logs2":[{"traces":[["b"]]}]}`,
	}
	for i, body := range cases {
		resp, err := ts.Client().Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status = %d, want 400", i, resp.StatusCode)
		}
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/batch/batch-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown batch status = %d, want 404", resp.StatusCode)
	}
}

// TestJobsList: GET /v1/jobs pages newest-first and filters by status.
func TestJobsList(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	var ids []string
	for i := 0; i < 3; i++ {
		req := paperRequest(t)
		req.Options.Alpha = ptr(1.0 - float64(i)*0.1) // distinct keys: no coalescing
		view, code := postJob(t, ts, req)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d status = %d", i, code)
		}
		ids = append(ids, view.ID)
		pollJob(t, ts, view.ID)
	}

	var list struct {
		Jobs  []JobView `json:"jobs"`
		Count int       `json:"count"`
	}
	get := func(query string) {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + "/v1/jobs" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("list%s status = %d", query, resp.StatusCode)
		}
		list = struct {
			Jobs  []JobView `json:"jobs"`
			Count int       `json:"count"`
		}{}
		if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
			t.Fatal(err)
		}
	}
	get("")
	if list.Count != 3 || len(list.Jobs) != 3 {
		t.Fatalf("list count = %d, want 3", list.Count)
	}
	if list.Jobs[0].ID != ids[2] || list.Jobs[2].ID != ids[0] {
		t.Fatalf("list not newest-first: %v", list.Jobs)
	}
	get("?limit=2")
	if len(list.Jobs) != 2 || list.Jobs[0].ID != ids[2] {
		t.Fatalf("limited list wrong: %v", list.Jobs)
	}
	get("?status=done")
	if list.Count != 3 {
		t.Fatalf("done filter count = %d", list.Count)
	}
	get("?status=failed")
	if list.Count != 0 {
		t.Fatalf("failed filter count = %d", list.Count)
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs?status=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus status filter = %d, want 400", resp.StatusCode)
	}
}

func ptr[T any](v T) *T { return &v }

// TestClusterIntrospection: /healthz, /v1/version and /v1/cluster expose the
// node identity, role, and live peer view.
func TestClusterIntrospection(t *testing.T) {
	srvs, ts := newTestCluster(t, 3)
	resp, err := ts[0].Client().Get(ts[0].URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hb map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&hb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hb["node_id"] != "node-a" || hb["role"] != "peer" || hb["peers"] != 2.0 || hb["peers_up"] != 2.0 {
		t.Fatalf("healthz = %v", hb)
	}

	resp, err = ts[1].Client().Get(ts[1].URL + "/v1/version")
	if err != nil {
		t.Fatal(err)
	}
	var vb map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&vb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if vb["node_id"] != "node-b" || vb["role"] != "peer" || vb["go_version"] == nil {
		t.Fatalf("version = %v", vb)
	}

	resp, err = ts[2].Client().Get(ts[2].URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	var cv ClusterView
	if err := json.NewDecoder(resp.Body).Decode(&cv); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if cv.NodeID != "node-c" || len(cv.Nodes) != 3 || len(cv.Peers) != 2 {
		t.Fatalf("cluster view = %+v", cv)
	}
	if cv.Advertise != ts[2].URL {
		t.Fatalf("advertise = %q, want %q", cv.Advertise, ts[2].URL)
	}
	_ = srvs
}
