package server

import (
	"sync"
	"testing"

	"repro/ems"
	"repro/internal/paperexample"
)

func dummyResult(tag string) *ems.Result {
	return &ems.Result{Names1: []string{tag}, Names2: []string{tag}, Sim: []float64{1}}
}

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	c.Put("k1", dummyResult("r1"))
	c.Put("k2", dummyResult("r2"))
	if _, ok := c.Get("k1"); !ok {
		t.Fatal("k1 missing")
	}
	// k1 was just used, so inserting k3 must evict k2.
	c.Put("k3", dummyResult("r3"))
	if _, ok := c.Get("k2"); ok {
		t.Error("k2 survived past capacity (LRU order broken)")
	}
	if _, ok := c.Get("k1"); !ok {
		t.Error("recently used k1 was evicted")
	}
	if _, ok := c.Get("k3"); !ok {
		t.Error("k3 missing")
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
	// Updating an existing key must not grow the cache.
	c.Put("k3", dummyResult("r3b"))
	if c.Len() != 2 {
		t.Errorf("len after update = %d, want 2", c.Len())
	}
	if r, _ := c.Get("k3"); r.Names1[0] != "r3b" {
		t.Errorf("update did not replace the stored result")
	}
}

func TestResultCacheDisabled(t *testing.T) {
	c := newResultCache(0)
	c.Put("k", dummyResult("r"))
	if _, ok := c.Get("k"); ok {
		t.Error("disabled cache stored a result")
	}
	if c.Len() != 0 {
		t.Error("disabled cache non-empty")
	}
}

func TestResultCacheConcurrent(t *testing.T) {
	c := newResultCache(8)
	keys := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := keys[(i+w)%len(keys)]
				c.Put(k, dummyResult(k))
				c.Get(k)
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 8 {
		t.Errorf("cache over capacity: %d", c.Len())
	}
}

func TestCacheKeyContentAddressing(t *testing.T) {
	l1, l2 := paperexample.Log1(), paperexample.Log2()
	base := CacheKey(l1, l2, "opts")
	if CacheKey(l1, l2, "opts") != base {
		t.Fatal("key not deterministic")
	}
	// Same content under a different log name must share the key: the cache
	// is content-addressed, not name-addressed.
	renamed := l1.Clone()
	renamed.Name = "other"
	if CacheKey(renamed, l2, "opts") != base {
		t.Error("log name leaked into the content key")
	}
	// Different options, swapped sides, or different traces must differ.
	if CacheKey(l1, l2, "opts2") == base {
		t.Error("options not part of the key")
	}
	if CacheKey(l2, l1, "opts") == base {
		t.Error("side order not part of the key")
	}
	mutated := l1.Clone()
	mutated.Traces[0][0] = "X"
	if CacheKey(mutated, l2, "opts") == base {
		t.Error("trace content not part of the key")
	}
	// Trace boundaries matter: [ab],[c] differs from [a],[bc].
	x := ems.NewLog("x")
	x.Append(ems.Trace{"a", "b"})
	x.Append(ems.Trace{"c"})
	y := ems.NewLog("y")
	y.Append(ems.Trace{"a"})
	y.Append(ems.Trace{"b", "c"})
	if CacheKey(x, l2, "opts") == CacheKey(y, l2, "opts") {
		t.Error("trace boundaries not part of the key")
	}
}
