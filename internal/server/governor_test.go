package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"testing"

	"repro/ems"
)

// govConfig is the standard governor-enabled test server: a budget big
// enough for any test job, pressured at half.
func govConfig(budget int64) Config {
	return quietConfig(Config{Workers: 2, MemBudget: budget, PressureFraction: 0.5})
}

// TestGovernorAdmissionStates covers the admission state machine directly:
// ok -> pressured -> saturated as cost commits, admit vs shed vs too-large,
// and release draining it back.
func TestGovernorAdmissionStates(t *testing.T) {
	g := newGovernor(1000, 0.5)
	if g == nil {
		t.Fatal("governor disabled for a positive budget")
	}
	if st := g.state(); st != GovOK {
		t.Fatalf("fresh governor state %s, want ok", st)
	}
	if err := g.admit(400); err != nil {
		t.Fatalf("admit within budget: %v", err)
	}
	if st := g.state(); st != GovOK {
		t.Fatalf("state at 40%% %s, want ok", st)
	}
	if err := g.admit(200); err != nil {
		t.Fatalf("admit to 60%%: %v", err)
	}
	if st := g.state(); st != GovPressured {
		t.Fatalf("state at 60%% %s, want pressured", st)
	}
	if err := g.admit(500); !errors.Is(err, ErrSaturated) {
		t.Fatalf("admit past budget: %v, want ErrSaturated", err)
	}
	if err := g.admit(1500); !errors.Is(err, errJobTooLarge) {
		t.Fatalf("admit beyond whole budget: %v, want too-large", err)
	}
	if err := g.admit(400); err != nil {
		t.Fatalf("admit filling exactly: %v", err)
	}
	if st := g.state(); st != GovSaturated {
		t.Fatalf("state at 100%% %s, want saturated", st)
	}
	g.release(600)
	if st := g.state(); st != GovOK {
		t.Fatalf("state after release %s, want ok", st)
	}
	if newGovernor(0, 0.5) != nil || newGovernor(-1, 0.5) != nil {
		t.Error("budget <= 0 must disable the governor")
	}
}

// TestGovernorRejectsTooLargeJob: a job whose predicted footprint exceeds
// the entire budget is rejected up front with the typed estimate — before
// any matrix is allocated — and the daemon stays up.
func TestGovernorRejectsTooLargeJob(t *testing.T) {
	s := mustNew(t, govConfig(64)) // 64 bytes: nothing real fits
	t.Cleanup(func() { _ = s.Shutdown(context.Background()) })

	_, err := s.Submit(paperRequest(t))
	var tle *ems.TooLargeError
	if !errors.As(err, &tle) {
		t.Fatalf("submit against a 64-byte budget: got %v, want *ems.TooLargeError", err)
	}
	if tle.BudgetBytes != 64 {
		t.Errorf("error carries budget %d, want 64", tle.BudgetBytes)
	}
	if tle.Predicted.Bytes <= 64 {
		t.Errorf("error carries predicted %d bytes, want > budget", tle.Predicted.Bytes)
	}
	st := s.Stats()
	if st.TooLarge != 1 {
		t.Errorf("jobs_too_large = %d, want 1", st.TooLarge)
	}
	if st.MemBudgetBytes != 64 {
		t.Errorf("mem_budget_bytes = %d, want 64", st.MemBudgetBytes)
	}
	if st.MemCommittedBytes != 0 {
		t.Errorf("mem_committed_bytes = %d after rejection, want 0 (no leaked reservation)", st.MemCommittedBytes)
	}
}

// TestGovernorReleasesOnCompletion: a finished job hands its reservation
// back, so committed bytes return to zero and the state to ok.
func TestGovernorReleasesOnCompletion(t *testing.T) {
	s := mustNew(t, govConfig(1<<30))
	t.Cleanup(func() { _ = s.Shutdown(context.Background()) })

	j, err := s.Submit(paperRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if j.Status() != StatusDone {
		t.Fatalf("job ended %s", j.Status())
	}
	if got := s.gov.committed.Load(); got != 0 {
		t.Errorf("committed = %d after completion, want 0", got)
	}
	if res, _ := j.Result(); res.Degraded != "" {
		t.Errorf("unpressured job ran degraded (%q)", res.Degraded)
	}
}

// TestDegradationLadderUnderPressure is the ladder acceptance test: a
// pressured daemon downgrades fresh jobs instead of queueing them against
// the budget, stamps Result.Degraded, and counts the rung; NoDegrade
// submissions are shed instead; releasing the pressure restores exact
// service.
func TestDegradationLadderUnderPressure(t *testing.T) {
	s := mustNew(t, govConfig(1<<30))
	t.Cleanup(func() { _ = s.Shutdown(context.Background()) })

	// Pin the governor into the pressured band as a long-running admitted
	// fleet would.
	s.gov.forceCommit(s.gov.pressure)

	req := paperRequest(t)
	j, err := s.Submit(req)
	if err != nil {
		t.Fatalf("pressured submit: %v", err)
	}
	waitDone(t, j)
	if j.Status() != StatusDone {
		t.Fatalf("degraded job ended %s: %s", j.Status(), j.View().Error)
	}
	res, _ := j.Result()
	if res.Degraded != ems.DegradedFastPath && res.Degraded != ems.DegradedEstimateOnly {
		t.Fatalf("Result.Degraded = %q, want a ladder rung", res.Degraded)
	}
	if st := s.Stats(); st.Degraded != 1 {
		t.Errorf("jobs_degraded = %d, want 1", st.Degraded)
	}

	// Opt-out: a NoDegrade job must be shed, not silently approximated.
	reqNo := JobRequest{
		Log1: LogInput{Name: "N1", CSV: logCSV(t, permLog(6, 5, "n", 21))},
		Log2: LogInput{Name: "N2", CSV: logCSV(t, permLog(6, 5, "m", 22))},
	}
	reqNo.Options.NoDegrade = true
	if _, err := s.Submit(reqNo); !errors.Is(err, ErrSaturated) {
		t.Fatalf("NoDegrade submit under pressure: %v, want ErrSaturated", err)
	}

	// Pressure gone: the same options run exact again, undegraded.
	s.gov.release(s.gov.pressure)
	reqAfter := JobRequest{
		Log1: LogInput{Name: "A1", CSV: logCSV(t, permLog(6, 5, "p", 23))},
		Log2: LogInput{Name: "A2", CSV: logCSV(t, permLog(6, 5, "q", 24))},
	}
	jAfter, err := s.Submit(reqAfter)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, jAfter)
	resAfter, _ := jAfter.Result()
	if resAfter.Degraded != "" {
		t.Errorf("post-pressure job still degraded (%q)", resAfter.Degraded)
	}
}

// TestGovernorHTTPRejections pins the wire contract: too-large is a 413
// carrying the estimate, saturation is a 503 whose Retry-After derives from
// the queue drain rate (clamped to [1s, 30s]), and /healthz and
// /v1/cluster expose the governor state while still answering 200.
func TestGovernorHTTPRejections(t *testing.T) {
	s, ts := newTestServer(t, govConfig(1<<30))

	// Saturate the node; the degraded variant cannot be admitted either.
	s.gov.forceCommit(s.gov.budget)
	body, _ := json.Marshal(paperRequest(t))
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated submit status %d, want 503", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 || ra > 30 {
		t.Errorf("Retry-After = %q, want an integer in [1, 30]", resp.Header.Get("Retry-After"))
	}

	// Liveness and cluster views report the pressure without failing.
	hresp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hv struct {
		Status   string  `json:"status"`
		Governor string  `json:"governor"`
		Load     float64 `json:"load"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&hv); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK || hv.Status != "ok" {
		t.Errorf("saturated /healthz = %d %q, want 200 ok", hresp.StatusCode, hv.Status)
	}
	if hv.Governor != string(GovSaturated) || hv.Load < 1 {
		t.Errorf("/healthz governor=%q load=%v, want saturated >= 1", hv.Governor, hv.Load)
	}
	cresp, err := ts.Client().Get(ts.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	var cv ClusterView
	if err := json.NewDecoder(cresp.Body).Decode(&cv); err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if cv.Governor != string(GovSaturated) {
		t.Errorf("/v1/cluster governor = %q, want saturated", cv.Governor)
	}

	s.gov.release(s.gov.budget)

	// Too large: a fresh tiny-budget server turns the same job into a 413.
	_, tsSmall := newTestServer(t, govConfig(64))
	resp2, err := tsSmall.Client().Post(tsSmall.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("too-large submit status %d, want 413", resp2.StatusCode)
	}
	if resp2.Header.Get("Retry-After") != "" {
		t.Error("413 carries a Retry-After; a permanent rejection must not invite retries")
	}
}

// TestRetryAfterSecondsClamp: the drain-rate estimate respects its clamp on
// an idle server (floor 1s, no division blowups with empty metrics).
func TestRetryAfterSecondsClamp(t *testing.T) {
	s := mustNew(t, quietConfig(Config{Workers: 1}))
	t.Cleanup(func() { _ = s.Shutdown(context.Background()) })
	if got := s.retryAfterSeconds(); got < 1 || got > 30 {
		t.Errorf("idle retryAfterSeconds = %d, want within [1, 30]", got)
	}
}
