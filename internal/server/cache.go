package server

import (
	"container/list"
	"sync"

	"repro/ems"
	"repro/internal/jobkey"
)

// CacheKey identifies a match computation by content: a hash over both logs'
// traces and the canonical option string. Two submissions with identical
// trace content and options share a key regardless of log names, file paths,
// or the transport the logs arrived by. The computation lives in
// internal/jobkey so the cluster hash ring places jobs by the same identity
// the cache dedups them by.
func CacheKey(log1, log2 *ems.Log, optionKey string) string {
	return jobkey.Compute(log1, log2, optionKey)
}

// resultCache is an LRU-bounded map from content key to matched result.
// It is safe for concurrent use. Stored results are shared pointers: callers
// must treat them as immutable.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used
	entries map[string]*list.Element
	// onEvict, when set, is called (outside the lock) with the key of every
	// entry dropped by the LRU bound. The persisting server hooks it to delete
	// the on-disk result, so disk usage tracks the cache bound. Must be set
	// before the cache is shared.
	onEvict func(key string)
}

type cacheEntry struct {
	key string
	res *ems.Result
}

// newResultCache creates a cache holding at most capacity results;
// capacity <= 0 disables caching (every Get misses, Put is a no-op).
func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// Get returns the cached result for key, promoting it to most recently
// used.
func (c *resultCache) Get(key string) (*ems.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// Put stores a result under key, evicting the least recently used entry
// when over capacity.
func (c *resultCache) Put(key string, res *ems.Result) {
	if c.cap <= 0 || res == nil {
		return
	}
	var evicted []string
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		c.mu.Unlock()
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		k := last.Value.(*cacheEntry).key
		delete(c.entries, k)
		evicted = append(evicted, k)
	}
	onEvict := c.onEvict
	c.mu.Unlock()
	if onEvict != nil {
		for _, k := range evicted {
			onEvict(k)
		}
	}
}

// Len returns the number of cached results.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
