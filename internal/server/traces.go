package server

import (
	"encoding/json"
	"net/http"
	"net/url"
	"sort"
	"strconv"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// TraceSpanNode is one span of an assembled trace tree.
type TraceSpanNode struct {
	obs.SpanView
	Children []*TraceSpanNode `json:"children,omitempty"`
}

// TraceView is the body of GET /v1/traces/{id}: every span the cluster
// recorded under the trace ID, both flat (the wire form peers exchange) and
// as a parent-linked tree with per-node attribution.
type TraceView struct {
	TraceID   string           `json:"trace_id"`
	Nodes     []string         `json:"nodes"`
	SpanCount int              `json:"span_count"`
	Spans     []obs.SpanView   `json:"spans"`
	Tree      []*TraceSpanNode `json:"tree"`
	// Partial lists peers that could not be queried; their spans may be
	// missing from the tree.
	Partial []string `json:"partial,omitempty"`
}

// handleTraces lists this node's recently stored traces, newest first.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	limit := 20
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeJSON(w, http.StatusBadRequest,
				errorBody{Error: "limit must be a positive integer, got " + strconv.Quote(v)})
			return
		}
		limit = min(n, 200)
	}
	rows := s.traces.Recent(limit)
	writeJSON(w, http.StatusOK, struct {
		Traces []obs.TraceSummary `json:"traces"`
		Count  int                `json:"count"`
	}{Traces: rows, Count: len(rows)})
}

// handleTrace assembles one trace cluster-wide: local spans plus — unless
// the query itself was relayed by a peer (the forwarded marker suppresses
// fan-out loops exactly like it suppresses re-forwarded submissions) — the
// spans every reachable peer stored under the same ID.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	spans := s.traces.Spans(id)
	var partial []string
	if r.Header.Get(cluster.ForwardedHeader) == "" && s.cluster.clustered() {
		remote, down := s.gatherPeerSpans(r, id)
		spans = append(spans, remote...)
		partial = down
	}
	if len(spans) == 0 {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown trace"})
		return
	}
	writeJSON(w, http.StatusOK, assembleTrace(id, spans, partial))
}

// gatherPeerSpans fans the trace query out to every peer concurrently and
// returns the spans they stored plus the IDs of peers that did not answer.
// A peer that answers 404 simply recorded nothing for the trace; only
// transport-level failures make the result partial.
func (s *Server) gatherPeerSpans(r *http.Request, id string) (spans []obs.SpanView, down []string) {
	sc := s.cluster
	type reply struct {
		node  string
		spans []obs.SpanView
		err   error
	}
	ch := make(chan reply, len(sc.clients))
	for nodeID, cl := range sc.clients {
		go func(nodeID string, cl *cluster.Client) {
			rep := reply{node: nodeID}
			code, body, err := cl.Do(r.Context(), http.MethodGet, "/v1/traces/"+url.PathEscape(id), nil)
			switch {
			case err != nil:
				rep.err = err
			case code == http.StatusOK:
				var tv TraceView
				if jerr := json.Unmarshal(body, &tv); jerr == nil {
					rep.spans = tv.Spans
				}
			}
			ch <- rep
		}(nodeID, cl)
	}
	for range sc.clients {
		rep := <-ch
		if rep.err != nil {
			if sc.health != nil {
				sc.health.ReportFailure(rep.node, rep.err)
			}
			down = append(down, rep.node)
			continue
		}
		if sc.health != nil {
			sc.health.ReportSuccess(rep.node)
		}
		spans = append(spans, rep.spans...)
	}
	sort.Strings(down)
	return spans, down
}

// assembleTrace merges per-node span sets into one view: spans dedupe by ID
// (preferring closed snapshots over open ones), order by absolute start
// time, and link into a tree — a span whose parent is absent from the
// merged set (an origin root, or a parent recorded on an unreachable node)
// becomes a top-level tree root.
func assembleTrace(id string, spans []obs.SpanView, partial []string) TraceView {
	byID := make(map[string]obs.SpanView, len(spans))
	order := make([]string, 0, len(spans))
	nodeSet := map[string]bool{}
	for _, v := range spans {
		if v.Node != "" {
			nodeSet[v.Node] = true
		}
		if old, ok := byID[v.ID]; ok {
			// The same span can be stored twice (request-time snapshot, then
			// completion-time): keep the finished one.
			if old.Open && !v.Open {
				byID[v.ID] = v
			}
			continue
		}
		byID[v.ID] = v
		order = append(order, v.ID)
	}
	sort.SliceStable(order, func(i, j int) bool {
		a, b := byID[order[i]], byID[order[j]]
		if a.StartUnixNS != b.StartUnixNS {
			return a.StartUnixNS < b.StartUnixNS
		}
		return a.ID < b.ID
	})

	v := TraceView{TraceID: id, SpanCount: len(order), Partial: partial}
	v.Nodes = make([]string, 0, len(nodeSet))
	for n := range nodeSet {
		v.Nodes = append(v.Nodes, n)
	}
	sort.Strings(v.Nodes)

	nodes := make(map[string]*TraceSpanNode, len(order))
	v.Spans = make([]obs.SpanView, 0, len(order))
	for _, sid := range order {
		sv := byID[sid]
		v.Spans = append(v.Spans, sv)
		nodes[sid] = &TraceSpanNode{SpanView: sv}
	}
	for _, sid := range order {
		n := nodes[sid]
		if p, ok := nodes[n.Parent]; ok && n.Parent != sid {
			p.Children = append(p.Children, n)
		} else {
			v.Tree = append(v.Tree, n)
		}
	}
	return v
}
