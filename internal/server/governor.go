package server

import (
	"errors"
	"sync/atomic"

	"repro/ems"
)

// GovernorState summarizes the resource governor's view of the node for
// probes, peers, and the degradation ladder.
type GovernorState string

const (
	// GovOK: plenty of budget; jobs run exactly as requested.
	GovOK GovernorState = "ok"
	// GovPressured: committed cost crossed the pressure threshold; new jobs
	// are degraded down the ladder (exact → fast-path → estimate-only)
	// unless they opted out.
	GovPressured GovernorState = "pressured"
	// GovSaturated: the whole budget is committed; jobs that cannot be
	// degraded (or still don't fit) are shed with 503 + Retry-After.
	GovSaturated GovernorState = "saturated"
)

// ErrSaturated is returned by Submit when the memory governor cannot fit
// the job right now (the budget is committed to queued and running work).
// Like ErrQueueFull it maps to HTTP 503 with a drain-rate Retry-After: the
// condition is transient, the client should come back.
var ErrSaturated = errors.New("server: memory budget saturated")

// errJobTooLarge is the governor's internal verdict for a job whose
// predicted footprint exceeds the entire budget; submitPrepared converts it
// into a typed *ems.TooLargeError carrying the estimate.
var errJobTooLarge = errors.New("server: job exceeds the memory budget outright")

// governor enforces a global memory budget over admitted jobs. Every fresh
// (non-cache-hit, non-coalesced) job reserves its predicted peak engine
// bytes at admission and releases them on completion, so the sum of
// predicted footprints of queued+running jobs never exceeds the budget —
// admission counts bytes, not queue slots. All methods are lock-free and
// safe for concurrent use.
type governor struct {
	budget   int64 // total byte budget (> 0; a nil *governor means disabled)
	pressure int64 // committed bytes at which the state turns pressured

	committed atomic.Int64
}

// newGovernor builds a governor for budget bytes; pressureFrac in (0,1] is
// the pressured threshold as a fraction of the budget (0 = default 0.75).
// budget <= 0 disables the governor (returns nil).
func newGovernor(budget int64, pressureFrac float64) *governor {
	if budget <= 0 {
		return nil
	}
	if pressureFrac <= 0 || pressureFrac > 1 {
		pressureFrac = 0.75
	}
	return &governor{budget: budget, pressure: int64(float64(budget) * pressureFrac)}
}

// admit reserves cost bytes, or reports why it cannot: errJobTooLarge when
// the job can never fit (cost > whole budget), ErrSaturated when it does
// not fit right now.
func (g *governor) admit(cost int64) error {
	if cost > g.budget {
		return errJobTooLarge
	}
	for {
		cur := g.committed.Load()
		if cur+cost > g.budget {
			return ErrSaturated
		}
		if g.committed.CompareAndSwap(cur, cur+cost) {
			return nil
		}
	}
}

// forceCommit reserves cost bytes without an admission check — for jobs
// recovered from the journal, which were admitted before the restart. The
// commitment may transiently overshoot the budget; it drains as the
// recovered jobs finish.
func (g *governor) forceCommit(cost int64) { g.committed.Add(cost) }

// release returns a reservation.
func (g *governor) release(cost int64) { g.committed.Add(-cost) }

// state classifies the current commitment.
func (g *governor) state() GovernorState {
	c := g.committed.Load()
	switch {
	case c >= g.budget:
		return GovSaturated
	case c >= g.pressure:
		return GovPressured
	default:
		return GovOK
	}
}

// load is the committed fraction of the budget (may exceed 1 after
// forceCommit).
func (g *governor) load() float64 {
	return float64(g.committed.Load()) / float64(g.budget)
}

// governorState names the node's state for probes: "ok" when no governor
// is configured (an unbudgeted node never reports pressure).
func (s *Server) governorState() GovernorState {
	if s.gov == nil {
		return GovOK
	}
	return s.gov.state()
}

// governorLoad is the committed budget fraction (0 without a governor).
func (s *Server) governorLoad() float64 {
	if s.gov == nil {
		return 0
	}
	return s.gov.load()
}

// applyLadder is the degradation ladder: under memory pressure a fresh
// submission is downgraded one or two rungs — exact → fast-path →
// estimate-only — so it holds its matrices for far fewer rounds, draining
// the budget sooner instead of queueing behind it. Returns the (possibly
// rewritten) request and prepared job plus the rung taken; shed reports
// that the job opted out (NoDegrade) and must be shed instead. Composite
// jobs never degrade (their greedy merge loop depends on exact values).
func (s *Server) applyLadder(req JobRequest, pj *preparedJob) (JobRequest, *preparedJob, string, bool) {
	if s.gov == nil || req.Options.Composite {
		return req, pj, "", false
	}
	st := s.gov.state()
	if st == GovOK {
		return req, pj, "", false
	}
	if req.Options.NoDegrade {
		return req, pj, "", true
	}
	dreq := req
	var rung string
	if st == GovPressured && dreq.Options.Exact {
		// First rung: give up exact convergence for the certified fast path.
		dreq.Options.Exact = false
		rung = ems.DegradedFastPath
	} else {
		// Second rung (pressured non-exact jobs, and everything when
		// saturated): closed-form estimation only, no iteration at all.
		dreq.Options.Exact = false
		two := 2
		dreq.Options.Estimate = &two
		rung = ems.DegradedEstimateOnly
	}
	dpj, err := s.prepare(dreq)
	if err != nil {
		// The degraded variant does not validate (unexpected); run the
		// original rather than fail the job over our own rewrite.
		return req, pj, "", false
	}
	return dreq, dpj, rung, false
}
