package server

import (
	"repro/internal/obs"
)

// serverObs is the server's Prometheus surface: the registry served at
// GET /metrics, the HTTP middleware metrics, and the instruments the job
// path feeds directly. All counter families re-export the atomic Metrics
// through read-on-scrape functions, so the /v1/stats JSON and the
// exposition always agree on the same underlying counters.
type serverObs struct {
	reg      *obs.Registry
	http     *obs.HTTPMetrics
	jobDur   *obs.Histogram
	phaseDur *obs.HistogramVec // span durations, fed by the span-end hook

	// cluster instruments, labelled by peer node ID and pre-seeded at boot
	// so every configured peer shows a zero series from the first scrape.
	forwards   *obs.CounterVec // submissions placed on a peer
	failovers  *obs.CounterVec // attempts skipped or failed over away from a peer
	proxied    *obs.CounterVec // job reads/cancels relayed to a peer
	peerUp     *obs.GaugeVec   // 1 while a peer is believed reachable
	batchJobs  *obs.Counter    // accepted POST /v1/batch coordinations
	batchPairs *obs.CounterVec // terminal batch pairs by outcome
}

// jobDurationBuckets covers the matching workload: sub-millisecond toy pairs
// through multi-minute warehouse logs.
func jobDurationBuckets() []float64 {
	return []float64{.001, .005, .025, .1, .5, 1, 5, 30, 60, 300}
}

// newServerObs builds the registry over the server's metrics and gauges.
func newServerObs(s *Server) *serverObs {
	r := obs.NewRegistry()
	o := &serverObs{reg: r, http: obs.NewHTTPMetrics(r, "emsd")}

	v := Version()
	r.GaugeVec("emsd_build_info",
		"Build identity of the running emsd binary; the value is always 1.",
		"version", "revision", "go_version").
		With(v.Version, v.Revision, v.GoVersion).Set(1)

	m := s.metrics
	counters := []struct {
		name, help string
		read       func() uint64
	}{
		{"emsd_jobs_submitted_total", "Accepted job submissions.", m.submitted.Load},
		{"emsd_jobs_completed_total", "Jobs finished successfully.", m.completed.Load},
		{"emsd_jobs_failed_total", "Jobs that reached the failed state.", m.failed.Load},
		{"emsd_jobs_cancelled_total", "Jobs cancelled by a client or by shutdown.", m.cancelled.Load},
		{"emsd_jobs_rejected_total", "Submissions refused before queueing (bad request or shutdown).", m.rejected.Load},
		{"emsd_jobs_shed_total", "Submissions turned away because the job queue was full.", m.shed.Load},
		{"emsd_jobs_panicked_total", "Jobs whose computation panicked (contained; the daemon kept serving).", m.panics.Load},
		{"emsd_jobs_deadline_exceeded_total", "Jobs aborted by their wall-clock deadline.", m.timeouts.Load},
		{"emsd_cache_hits_total", "Jobs served from the result cache or coalesced onto an in-flight twin.", m.cacheHits.Load},
		{"emsd_cache_misses_total", "Jobs that required a fresh computation.", m.cacheMiss.Load},
		{"emsd_jobs_recovered_total", "Unfinished jobs re-enqueued from the journal at boot.", m.recovered.Load},
		{"emsd_jobs_resumed_total", "Recovered jobs restarted from a persisted engine checkpoint.", m.resumed.Load},
		{"emsd_jobs_retried_total", "Jobs re-enqueued after a transient in-process failure.", m.retried.Load},
		{"emsd_checkpoints_written_total", "Engine checkpoints persisted to disk.", m.ckpWritten.Load},
		{"emsd_ingest_records_skipped_total", "Input records discarded by lenient ingestion.", m.ingestSkipped.Load},
		{"emsd_jobs_repaired_total", "Completed jobs that ran the dirty-log repair pipeline.", m.repairedJobs.Load},
		{"emsd_repair_events_dropped_total", "Duplicate events removed by the repair pipeline.", m.repairDropped.Load},
		{"emsd_repair_events_reordered_total", "Events transposed back into the dominant order by the repair pipeline.", m.repairReordered.Load},
		{"emsd_repair_events_imputed_total", "Missing events re-inserted by the repair pipeline.", m.repairImputed.Load},
		{"emsd_repair_traces_quarantined_total", "Traces the repair pipeline quarantined as unrepairable.", m.repairQuarantined.Load},
		{"emsd_jobs_degraded_total", "Jobs downgraded a rung by the degradation ladder under memory pressure.", m.degraded.Load},
		{"emsd_jobs_too_large_total", "Jobs rejected because their predicted footprint exceeds the whole memory budget.", m.tooLarge.Load},
	}
	for _, c := range counters {
		read := c.read
		r.CounterFunc(c.name, c.help, func() float64 { return float64(read()) })
	}

	r.GaugeFunc("emsd_queue_depth", "Jobs queued but not yet running.",
		func() float64 { return float64(s.pool.Depth()) })
	r.GaugeFunc("emsd_jobs_running", "Jobs currently computing.",
		func() float64 { return float64(s.pool.Running()) })
	r.GaugeFunc("emsd_cache_entries", "Entries in the result cache.",
		func() float64 { return float64(s.cache.Len()) })
	r.GaugeFunc("emsd_journal_bytes", "Size of the job journal on disk; 0 without persistence.",
		func() float64 {
			if s.persist == nil {
				return 0
			}
			return float64(s.persist.journalBytes())
		})
	r.GaugeFunc("emsd_mem_budget_bytes", "Memory budget the resource governor admits jobs against; 0 without -mem-budget.",
		func() float64 {
			if s.gov == nil {
				return 0
			}
			return float64(s.gov.budget)
		})
	r.GaugeFunc("emsd_mem_committed_bytes", "Predicted bytes currently reserved by admitted jobs.",
		func() float64 {
			if s.gov == nil {
				return 0
			}
			return float64(s.gov.committed.Load())
		})

	o.jobDur = r.Histogram("emsd_job_duration_seconds",
		"Wall time of computed jobs (cache hits and coalesced jobs excluded).",
		jobDurationBuckets())
	o.phaseDur = r.HistogramVec("emsd_phase_seconds",
		"Trace span durations by pipeline phase (parse, compute, engine phases, peer hops); degraded marks spans of ladder-degraded jobs.",
		obs.DefBuckets(), "phase", "degraded")

	o.forwards = r.CounterVec("emsd_peer_forwards_total",
		"Submissions and batch pairs placed on a peer node.", "peer")
	o.failovers = r.CounterVec("emsd_peer_failovers_total",
		"Placement attempts moved off a peer because it was down or unreachable.", "peer")
	o.proxied = r.CounterVec("emsd_peer_proxied_total",
		"Job reads and cancels relayed to the peer owning a qualified job ID.", "peer")
	o.peerUp = r.GaugeVec("emsd_peer_up",
		"1 while the peer is believed reachable, 0 while it is down.", "peer")
	o.batchJobs = r.Counter("emsd_batch_jobs_total",
		"Accepted POST /v1/batch coordinations.")
	o.batchPairs = r.CounterVec("emsd_batch_pairs_total",
		"Terminal batch pairs by outcome.", "outcome")
	o.batchPairs.With("done").Add(0)
	o.batchPairs.With("failed").Add(0)
	for _, p := range s.cluster.cfg.Peers {
		o.forwards.With(p.ID).Add(0)
		o.failovers.With(p.ID).Add(0)
		o.proxied.With(p.ID).Add(0)
		o.peerUp.With(p.ID).Set(1) // health starts optimistic
	}
	r.GaugeFunc("emsd_peers_up", "Peers currently believed reachable.",
		func() float64 { return float64(s.cluster.peersUp()) })
	return o
}

// peerForward / peerFailover / peerProxy / peerUpGauge are the cluster
// paths' metric hooks, keyed by peer node ID.
func (o *serverObs) peerForward(id string)  { o.forwards.With(id).Inc() }
func (o *serverObs) peerFailover(id string) { o.failovers.With(id).Inc() }
func (o *serverObs) peerProxy(id string)    { o.proxied.With(id).Inc() }

func (o *serverObs) peerUpGauge(id string, up bool) {
	v := 0.0
	if up {
		v = 1
	}
	o.peerUp.With(id).Set(v)
}
