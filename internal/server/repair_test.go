package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/repair"
)

// dirtyCSV builds the two-column CSV of a log whose traces carry every
// defect class the repair pipeline handles, including one trace that is
// beyond repair under an imputation budget of 1.
func dirtyCSV() string {
	clean := "a c b x e y"
	traces := []string{
		clean, clean, clean, clean, clean, clean, clean, clean,
		"a a c b x e y", // duplicate
		"c a b x e y",   // swap
		"a b x e y",     // dropped c
		"a b x y",       // dropped c and e: beyond a budget of 1
	}
	var b strings.Builder
	b.WriteString("case,event\n")
	for i, tr := range traces {
		for _, e := range strings.Fields(tr) {
			b.WriteString("t")
			b.WriteByte(byte('a' + i))
			b.WriteString("," + e + "\n")
		}
	}
	return b.String()
}

// cleanCSV is the same process recorded without defects.
func cleanCSV() string {
	var b strings.Builder
	b.WriteString("case,event\n")
	for i := 0; i < 10; i++ {
		for _, e := range strings.Fields("a c b x e y") {
			b.WriteString("c")
			b.WriteByte(byte('a' + i))
			b.WriteString("," + e + "\n")
		}
	}
	return b.String()
}

func TestJobWithRepairQuarantinesCorruptedLog(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	req := JobRequest{
		Log1:    LogInput{CSV: cleanCSV()},
		Log2:    LogInput{CSV: dirtyCSV()},
		Options: JobOptions{Repair: &RepairJobOptions{ImputeMax: 1}},
	}
	view, code := postJob(t, ts, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	if final := pollJob(t, ts, view.ID); final.Status != StatusDone {
		t.Fatalf("job ended %s (%s)", final.Status, final.Error)
	}
	res := fetchResult(t, ts, view.ID)
	if res.Repair1 == nil || res.Repair2 == nil {
		t.Fatal("result lost its repair reports")
	}
	r2 := res.Repair2
	if r2.EventsDropped == 0 || r2.EventsReordered == 0 || r2.EventsImputed == 0 {
		t.Fatalf("dirty log repair incomplete: %+v", r2)
	}
	if r2.TracesQuarantined != 1 || len(r2.Quarantined) != 1 {
		t.Fatalf("quarantine report not populated: %+v", r2)
	}
	if q := r2.Quarantined[0]; q.Reason != repair.ReasonBeyondRepair {
		t.Fatalf("quarantine reason = %q, want %q", q.Reason, repair.ReasonBeyondRepair)
	}
	if r2.TracesIn != r2.TracesOut+r2.TracesQuarantined {
		t.Fatalf("repair accounting broken: %+v", r2)
	}

	st := getStats(t, ts)
	if st.RepairedJobs != 1 {
		t.Errorf("jobs_repaired = %d, want 1", st.RepairedJobs)
	}
	if st.RepairDropped == 0 || st.RepairReordered == 0 || st.RepairImputed == 0 {
		t.Errorf("repair counters not recorded: %+v", st)
	}
	if st.RepairQuarantined != 1 {
		t.Errorf("repair_traces_quarantined = %d, want 1", st.RepairQuarantined)
	}

	// An identical resubmission must coalesce or hit the cache, not recompute.
	again, code := postJob(t, ts, req)
	if code != http.StatusAccepted {
		t.Fatalf("resubmit status = %d", code)
	}
	if final := pollJob(t, ts, again.ID); final.Status != StatusDone || !final.CacheHit {
		t.Fatalf("resubmission not served from cache: %+v", final)
	}

	// Metrics surface the repair counter families.
	if s.Registry() == nil {
		t.Fatal("no registry")
	}
	body := getMetricsBody(t, ts)
	for _, want := range []string{
		"emsd_jobs_repaired_total 1",
		"emsd_repair_traces_quarantined_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

func getMetricsBody(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b strings.Builder
	if _, err := io.Copy(&b, resp.Body); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestRepairJoinsCacheKey(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 1})
	base := JobRequest{
		Log1: LogInput{CSV: cleanCSV()},
		Log2: LogInput{CSV: dirtyCSV()},
	}
	plain, err := s.prepare(base)
	if err != nil {
		t.Fatal(err)
	}
	withRepair := base
	withRepair.Options.Repair = &RepairJobOptions{}
	repaired, err := s.prepare(withRepair)
	if err != nil {
		t.Fatal(err)
	}
	if plain.key == repaired.key {
		t.Fatal("repair on/off share a cache key")
	}
	tuned := base
	tuned.Options.Repair = &RepairJobOptions{ImputeMax: 1}
	tunedPJ, err := s.prepare(tuned)
	if err != nil {
		t.Fatal(err)
	}
	if tunedPJ.key == repaired.key {
		t.Fatal("different repair knobs share a cache key")
	}
	// Invalid repair knobs fail the submission up front.
	bad := base
	bad.Options.Repair = &RepairJobOptions{ImputeMinPath: 2}
	if _, err := s.prepare(bad); err == nil {
		t.Fatal("invalid repair options accepted")
	}
}

func TestLenientIngestionSkipsMalformedRows(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	bad := "case,event\nta,a\nragged row with no comma\nta,b\ntb,a\ntb,b\n"
	strict := JobRequest{
		Log1: LogInput{CSV: bad},
		Log2: LogInput{CSV: bad},
	}
	if _, code := postJob(t, ts, strict); code != http.StatusBadRequest {
		t.Fatalf("strict submission of malformed CSV = %d, want 400", code)
	}
	lenient := JobRequest{
		Log1: LogInput{CSV: bad, Lenient: true},
		Log2: LogInput{CSV: bad, Lenient: true},
	}
	view, code := postJob(t, ts, lenient)
	if code != http.StatusAccepted {
		t.Fatalf("lenient submission = %d, want 202", code)
	}
	if final := pollJob(t, ts, view.ID); final.Status != StatusDone {
		t.Fatalf("lenient job ended %s (%s)", final.Status, final.Error)
	}
	if st := getStats(t, ts); st.IngestSkipped != 2 {
		t.Errorf("ingest_records_skipped = %d, want 2 (one bad row per log)", st.IngestSkipped)
	}
}
