package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/ems"
	"repro/internal/cluster"
	"repro/internal/obs"
)

// ClusterConfig makes this server a member of an emsd cluster. Every member
// must be configured with the same set of node IDs (the ring hashes IDs);
// addresses only matter for dialing.
type ClusterConfig struct {
	// Advertise is the base URL peers dial this node on
	// (e.g. "http://10.0.0.5:8484"). Informational on this side — peers
	// carry it in their own Peers lists — but echoed by the introspection
	// endpoints.
	Advertise string
	// Peers are the other cluster members. The local node is implicit.
	Peers []cluster.Node
	// VNodes is the virtual-node count per member (0 = cluster.DefaultVNodes).
	VNodes int
	// ProbeInterval is the peer health-probe period (0 = 2s).
	ProbeInterval time.Duration
	// PeerTimeout bounds one HTTP exchange with a peer (0 = 15s).
	PeerTimeout time.Duration
	// PollInterval is the remote-job poll period of the batch coordinator
	// (0 = 100ms).
	PollInterval time.Duration
	// BatchNodeInflight bounds concurrently executing batch pairs per node
	// (0 = cluster.DefaultNodeInflight).
	BatchNodeInflight int
}

// serverCluster is the node's view of the cluster: the ring (always built,
// a single-member ring when standalone — the batch coordinator runs over
// it either way), peer clients, and the health tracker. health is nil when
// there are no peers.
type serverCluster struct {
	self    cluster.Node
	ring    *cluster.Ring
	clients map[string]*cluster.Client
	health  *cluster.Health
	cfg     ClusterConfig
}

// newServerCluster builds the ring over self plus the configured peers.
// ccfg == nil yields the standalone single-node ring.
func newServerCluster(nodeID string, ccfg *ClusterConfig) (*serverCluster, error) {
	sc := &serverCluster{self: cluster.Node{ID: nodeID}}
	members := []cluster.Node{sc.self}
	if ccfg != nil {
		sc.cfg = *ccfg
		sc.self.Addr = ccfg.Advertise
		members[0] = sc.self
		sc.clients = make(map[string]*cluster.Client, len(ccfg.Peers))
		for _, p := range ccfg.Peers {
			if p.ID == nodeID {
				return nil, fmt.Errorf("server: peer list contains the local node ID %q", nodeID)
			}
			if p.Addr == "" {
				return nil, fmt.Errorf("server: peer %q has no address", p.ID)
			}
			members = append(members, p)
			sc.clients[p.ID] = cluster.NewClient(p, ccfg.PeerTimeout)
		}
	}
	ring, err := cluster.New(members, sc.cfg.VNodes)
	if err != nil {
		return nil, fmt.Errorf("server: build hash ring: %w", err)
	}
	sc.ring = ring
	return sc, nil
}

// clustered reports whether this node has peers (forwarding and proxying
// only exist then).
func (sc *serverCluster) clustered() bool { return len(sc.clients) > 0 }

// role names this node's mode for the introspection endpoints.
func (sc *serverCluster) role() string {
	if sc.clustered() {
		return "peer"
	}
	return "standalone"
}

// peersUp returns how many peers are currently believed reachable.
func (sc *serverCluster) peersUp() int {
	if sc.health == nil {
		return 0
	}
	return sc.health.UpCount()
}

// ClusterView is the body of GET /v1/cluster: ring membership and peer
// health at a glance.
type ClusterView struct {
	NodeID    string               `json:"node_id"`
	Advertise string               `json:"advertise,omitempty"`
	Role      string               `json:"role"`
	Nodes     []cluster.Node       `json:"nodes"`
	Peers     []cluster.PeerStatus `json:"peers,omitempty"`
	// Governor and Load describe the local node's memory pressure (peers
	// report theirs in the Peers entries).
	Governor string  `json:"governor"`
	Load     float64 `json:"load"`
}

// ClusterInfo snapshots this node's view of the cluster.
func (s *Server) ClusterInfo() ClusterView {
	v := ClusterView{
		NodeID:    s.cfg.NodeID,
		Advertise: s.cluster.self.Addr,
		Role:      s.cluster.role(),
		Nodes:     s.cluster.ring.Nodes(),
		Governor:  string(s.governorState()),
		Load:      s.governorLoad(),
	}
	if s.cluster.health != nil {
		v.Peers = s.cluster.health.Snapshot()
	}
	return v
}

// forwardSubmit tries to place a fresh submission on the key's owner. It
// reports whether the request was answered (forwarded and relayed); false
// means the caller should serve it locally — either this node owns the key
// (possibly by failover) or every remote replica is down. body is the raw
// request body, relayed verbatim so the owner journals exactly what the
// client sent.
func (s *Server) forwardSubmit(w http.ResponseWriter, r *http.Request, body []byte, key string) bool {
	sc := s.cluster
	if tr := obs.TraceFrom(r.Context()); tr != nil {
		// The forwarding node keeps its half of the trace (the request root
		// and the peer hop span); the owner's spans parent under the hop via
		// the X-Emsd-Trace header cluster.Client.Do sets.
		tr.Keep()
	}
	// Saturated peers sink behind non-saturated replicas (and behind the
	// local node, which is never tracked as saturated here): work drifts
	// toward nodes with budget left instead of bouncing off a 503.
	replicas := cluster.PreferUnsaturated(sc.ring.Replicas(key, 0), sc.health)
	for i, node := range replicas {
		if node.ID == sc.self.ID {
			return false // we own it: serve locally
		}
		cl := sc.clients[node.ID]
		last := i == len(replicas)-1
		if !last && sc.health != nil && !sc.health.Up(node.ID) {
			s.obs.peerFailover(node.ID)
			continue
		}
		// Forward retries the POST once on a transient peer failure before
		// this loop fails over to the next replica; the duplicate coalesces
		// on the content-addressed key, so a blind retry cannot recompute.
		code, resp, err := cl.Forward(r.Context(), body)
		if err != nil {
			if r.Context().Err() != nil {
				return true // client went away; nothing sensible to relay
			}
			if sc.health != nil {
				sc.health.ReportFailure(node.ID, err)
			}
			s.obs.peerFailover(node.ID)
			continue
		}
		if sc.health != nil {
			sc.health.ReportSuccess(node.ID)
		}
		s.obs.peerForward(node.ID)
		if code == http.StatusAccepted {
			resp = rewriteJobID(resp, node.ID)
		}
		relayJSON(w, code, resp)
		return true
	}
	return false // every remote replica down: degrade to local execution
}

// proxyJob relays a job read/cancel to the peer a qualified job ID names.
// suffix is "", "/result" or "/progress". Responses carrying the job's ID
// are rewritten back to the qualified form so the client's handle stays
// valid on this node.
func (s *Server) proxyJob(w http.ResponseWriter, r *http.Request, nodeID, rawID, suffix string) {
	cl := s.cluster.clients[nodeID]
	if cl == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("unknown cluster node %q", nodeID)})
		return
	}
	s.obs.peerProxy(nodeID)
	code, resp, err := cl.Do(r.Context(), r.Method, "/v1/jobs/"+rawID+suffix, nil)
	if err != nil {
		if s.cluster.health != nil {
			s.cluster.health.ReportFailure(nodeID, err)
		}
		writeJSON(w, http.StatusBadGateway,
			errorBody{Error: fmt.Sprintf("peer %s unreachable: %v", nodeID, errors.Unwrap(err))})
		return
	}
	if s.cluster.health != nil {
		s.cluster.health.ReportSuccess(nodeID)
	}
	if suffix != "/result" && (code == http.StatusOK || code == http.StatusAccepted) {
		resp = rewriteJobID(resp, nodeID)
	}
	relayJSON(w, code, resp)
}

// rewriteJobID qualifies the "id" field of a peer's JSON response with the
// peer's node ID. Bodies that don't parse (or carry no id) are relayed
// untouched.
func rewriteJobID(body []byte, nodeID string) []byte {
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		return body
	}
	id, ok := m["id"].(string)
	if !ok || id == "" {
		return body
	}
	m["id"] = cluster.QualifyJobID(id, nodeID)
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return body
	}
	return append(out, '\n')
}

// relayJSON writes a proxied peer response through.
func relayJSON(w http.ResponseWriter, code int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(body)
}

// runPairOn executes one batch pair on the given node: the local node goes
// through the ordinary submission path (cache, coalescing, journal and
// all), a peer through its client. It is the cluster.Runner the batch
// coordinator fans out with.
func (s *Server) runPairOn(ctx context.Context, node cluster.Node, req JobRequest, body []byte, noteJob func(jobID string)) (*ems.Result, error) {
	if node.ID == s.cluster.self.ID {
		// SubmitContext, not Submit: ctx carries the batch's trace, so
		// locally-placed pairs span onto the batch timeline like remote ones
		// do via the propagation header.
		job, err := s.SubmitContext(ctx, req)
		if err != nil {
			if errors.Is(err, ErrQueueFull) || errors.Is(err, ErrSaturated) || errors.Is(err, ErrShuttingDown) {
				// Local overload or drain is a placement problem, not a property
				// of the pair: let the coordinator try a replica.
				return nil, &cluster.UnavailableError{Node: node.ID, Op: "local submit", Err: err}
			}
			return nil, err
		}
		noteJob(job.ID)
		select {
		case <-job.Done():
		case <-ctx.Done():
			s.Cancel(job.ID)
			<-job.Done()
		}
		if res, ok := job.Result(); ok {
			return res, nil
		}
		v := job.View()
		if v.Status == StatusCancelled {
			return nil, fmt.Errorf("pair cancelled: %s", v.Error)
		}
		return nil, fmt.Errorf("pair failed: %s", v.Error)
	}
	cl := s.cluster.clients[node.ID]
	if cl == nil {
		return nil, &cluster.UnavailableError{Node: node.ID, Op: "dial", Err: fmt.Errorf("no client for node")}
	}
	res, jobID, err := cl.RunJob(ctx, body, s.cluster.cfg.PollInterval)
	if jobID != "" {
		noteJob(cluster.QualifyJobID(jobID, node.ID))
	}
	if err == nil && s.cluster.health != nil {
		s.cluster.health.ReportSuccess(node.ID)
	}
	return res, err
}
