package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/ems"
	"repro/internal/journal"
)

// On-disk layout under Config.DataDir:
//
//	journal/              write-ahead job journal (wal-*.log + snap-*.bin)
//	requests/<id>.json    submitted request body of every live job
//	checkpoints/<id>.bin  latest engine checkpoint of a running job
//	results/<key>.json    finished results, content-addressed by cache key
//
// Journal discipline: the request body is written (and fsynced) before the
// submit record, the submit record before the job is enqueued, and the
// result file before the done record — so every committed record only ever
// references files that exist. Replay therefore reconstructs a consistent
// queue after a crash at any instant; an uncommitted torn tail loses at most
// the operation that was being written.

// walRecord is one journal entry. Type is "submit" (a fresh job entered the
// queue), "start" (a worker picked it up; Attempt counts pickups across
// restarts) or "done" (terminal state reached).
type walRecord struct {
	Type      string `json:"t"`
	ID        string `json:"id"`
	Seq       uint64 `json:"seq,omitempty"`
	Key       string `json:"key,omitempty"`
	Composite bool   `json:"composite,omitempty"`
	Attempt   int    `json:"attempt,omitempty"`
	Status    Status `json:"status,omitempty"`
	Error     string `json:"error,omitempty"`
}

// jobState is the replayed state of one journaled job.
type jobState struct {
	ID        string `json:"id"`
	Seq       uint64 `json:"seq"`
	Key       string `json:"key"`
	Composite bool   `json:"composite,omitempty"`
	Attempt   int    `json:"attempt,omitempty"`
	Status    Status `json:"status"`
	Error     string `json:"error,omitempty"`
}

// walSnapshot is the compaction image: the full journaled state at the
// moment of compaction.
type walSnapshot struct {
	NextSeq uint64     `json:"next_seq"`
	Jobs    []jobState `json:"jobs"`
}

const (
	// compactEvery bounds journal growth: after this many terminal records
	// the live state is folded into a snapshot and old segments deleted.
	compactEvery = 256
	// maxTerminalStates bounds how many terminal jobs the snapshot retains
	// (so their status outlives a restart); older ones are forgotten.
	maxTerminalStates = 1000
	// maxCrashAttempts caps how often a recovered running job is restarted:
	// a job that was mid-run at this many crashes is presumed to be the
	// crash trigger and fails instead of crash-looping the daemon.
	maxCrashAttempts = 3
)

// persister owns everything under DataDir: the job journal plus the
// request, checkpoint and result files. Safe for concurrent use.
type persister struct {
	dir string
	log *slog.Logger

	mu       sync.Mutex
	j        *journal.Journal
	seq      uint64 // highest seq ever journaled
	jobs     map[string]*jobState
	terminal int // terminal records since the last compaction
}

// openPersister opens (or initializes) a data directory and replays the
// journal into the returned persister's job-state map.
func openPersister(dir string, logger *slog.Logger) (*persister, error) {
	for _, sub := range []string{"journal", "requests", "checkpoints", "results"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("server: data dir: %w", err)
		}
	}
	j, rec, err := journal.Open(filepath.Join(dir, "journal"), journal.Options{})
	if err != nil {
		return nil, fmt.Errorf("server: open journal: %w", err)
	}
	p := &persister{dir: dir, log: logger, j: j, jobs: make(map[string]*jobState)}
	if rec.SnapshotLost {
		logger.Warn("journal snapshot was unreadable; recovering from segments alone")
	}
	if rec.Torn {
		logger.Warn("journal had a torn tail; committed records are intact", "dropped_bytes", rec.DroppedBytes)
	}
	if len(rec.Snapshot) > 0 {
		var snap walSnapshot
		if err := json.Unmarshal(rec.Snapshot, &snap); err != nil {
			logger.Warn("journal snapshot undecodable, ignoring", "error", err)
		} else {
			p.seq = snap.NextSeq
			for i := range snap.Jobs {
				st := snap.Jobs[i]
				p.jobs[st.ID] = &st
			}
		}
	}
	for _, raw := range rec.Records {
		var r walRecord
		if err := json.Unmarshal(raw, &r); err != nil {
			logger.Warn("undecodable journal record ignored", "error", err)
			continue
		}
		p.applyLocked(r)
	}
	// Fold the replayed state into a fresh snapshot so the next boot starts
	// from one image instead of re-replaying ever-longer history.
	if len(rec.Records) > 0 || rec.Torn {
		if err := p.compactLocked(); err != nil {
			logger.Warn("journal compaction failed", "error", err)
		}
	}
	return p, nil
}

// applyLocked folds one record into the state map.
func (p *persister) applyLocked(r walRecord) {
	switch r.Type {
	case "submit":
		if r.Seq > p.seq {
			p.seq = r.Seq
		}
		p.jobs[r.ID] = &jobState{
			ID: r.ID, Seq: r.Seq, Key: r.Key, Composite: r.Composite, Status: StatusQueued,
		}
	case "start":
		if st, ok := p.jobs[r.ID]; ok {
			st.Status = StatusRunning
			st.Attempt = r.Attempt
		}
	case "done":
		if st, ok := p.jobs[r.ID]; ok {
			st.Status = r.Status
			st.Error = r.Error
		}
	}
}

// states returns every journaled job ordered by submission.
func (p *persister) states() []jobState {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]jobState, 0, len(p.jobs))
	for _, st := range p.jobs {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Seq < out[k].Seq })
	return out
}

// nextSeq returns the highest journaled sequence number.
func (p *persister) nextSeq() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.seq
}

// recordSubmit journals a fresh job. The request file must already be on
// disk (see saveRequest) so replay never resurrects a job it cannot rebuild.
func (p *persister) recordSubmit(st jobState) error {
	rec, err := json.Marshal(walRecord{
		Type: "submit", ID: st.ID, Seq: st.Seq, Key: st.Key, Composite: st.Composite,
	})
	if err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.j.Append(rec); err != nil {
		return err
	}
	if st.Seq > p.seq {
		p.seq = st.Seq
	}
	st.Status = StatusQueued
	p.jobs[st.ID] = &st
	return nil
}

// recordStart journals a worker picking the job up for its attempt-th run.
func (p *persister) recordStart(id string, attempt int) error {
	rec, err := json.Marshal(walRecord{Type: "start", ID: id, Attempt: attempt})
	if err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.j.Append(rec); err != nil {
		return err
	}
	if st, ok := p.jobs[id]; ok {
		st.Status = StatusRunning
		st.Attempt = attempt
	}
	return nil
}

// recordDone journals a terminal state, removes the job's request and
// checkpoint files (no longer needed for recovery), and compacts the journal
// once enough terminal records have accumulated.
func (p *persister) recordDone(id string, status Status, errMsg string) error {
	rec, err := json.Marshal(walRecord{Type: "done", ID: id, Status: status, Error: errMsg})
	if err != nil {
		return err
	}
	p.mu.Lock()
	if err := p.j.Append(rec); err != nil {
		p.mu.Unlock()
		return err
	}
	if st, ok := p.jobs[id]; ok {
		st.Status = status
		st.Error = errMsg
	}
	p.pruneTerminalLocked()
	p.terminal++
	var cerr error
	if p.terminal >= compactEvery {
		cerr = p.compactLocked()
	}
	p.mu.Unlock()
	os.Remove(p.requestPath(id))
	os.Remove(p.checkpointPath(id))
	return cerr
}

// pruneTerminalLocked forgets the oldest terminal jobs beyond the retention
// bound so snapshots stay bounded.
func (p *persister) pruneTerminalLocked() {
	var term []*jobState
	for _, st := range p.jobs {
		switch st.Status {
		case StatusDone, StatusFailed, StatusCancelled:
			term = append(term, st)
		}
	}
	if len(term) < maxTerminalStates {
		return
	}
	sort.Slice(term, func(i, k int) bool { return term[i].Seq < term[k].Seq })
	for _, st := range term[:len(term)-maxTerminalStates+1] {
		delete(p.jobs, st.ID)
	}
}

// compactLocked folds the current state into a journal snapshot.
func (p *persister) compactLocked() error {
	jobs := make([]jobState, 0, len(p.jobs))
	for _, st := range p.jobs {
		jobs = append(jobs, *st)
	}
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].Seq < jobs[k].Seq })
	snap, err := json.Marshal(walSnapshot{NextSeq: p.seq, Jobs: jobs})
	if err != nil {
		return err
	}
	if err := p.j.Compact(snap); err != nil {
		return err
	}
	p.terminal = 0
	return nil
}

// journalBytes reports the journal's on-disk size (the journal_bytes gauge).
func (p *persister) journalBytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.j.Size()
}

// Close flushes and closes the journal.
func (p *persister) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.j.Close()
}

func (p *persister) requestPath(id string) string {
	return filepath.Join(p.dir, "requests", id+".json")
}

func (p *persister) checkpointPath(id string) string {
	return filepath.Join(p.dir, "checkpoints", id+".bin")
}

func (p *persister) resultPath(key string) string {
	return filepath.Join(p.dir, "results", key+".json")
}

// saveRequest persists the submitted request body so the job can be rebuilt
// after a restart.
func (p *persister) saveRequest(id string, req JobRequest) error {
	data, err := json.Marshal(req)
	if err != nil {
		return err
	}
	return journal.WriteFileAtomic(p.requestPath(id), data)
}

// loadRequest reloads a persisted request body.
func (p *persister) loadRequest(id string) (JobRequest, error) {
	var req JobRequest
	data, err := os.ReadFile(p.requestPath(id))
	if err != nil {
		return req, err
	}
	if err := json.Unmarshal(data, &req); err != nil {
		return req, fmt.Errorf("undecodable request file: %w", err)
	}
	return req, nil
}

// saveCheckpoint atomically replaces the job's engine checkpoint.
func (p *persister) saveCheckpoint(id string, cp *ems.EngineCheckpoint) error {
	data, err := cp.MarshalBinary()
	if err != nil {
		return err
	}
	return journal.WriteFileAtomic(p.checkpointPath(id), data)
}

// loadCheckpoint returns the job's persisted checkpoint, or nil when there
// is none or it fails validation (a corrupt checkpoint simply restarts the
// computation from round 0).
func (p *persister) loadCheckpoint(id string) *ems.EngineCheckpoint {
	data, err := os.ReadFile(p.checkpointPath(id))
	if err != nil {
		return nil
	}
	var cp ems.EngineCheckpoint
	if err := cp.UnmarshalBinary(data); err != nil {
		p.log.Warn("discarding unusable checkpoint", "job_id", id, "error", err)
		return nil
	}
	return &cp
}

// saveResult persists a finished result, content-addressed by cache key.
func (p *persister) saveResult(key string, res *ems.Result) error {
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		return err
	}
	return journal.WriteFileAtomic(p.resultPath(key), buf.Bytes())
}

// loadResult reloads a persisted result; ok is false when the file is
// missing or unreadable.
func (p *persister) loadResult(key string) (*ems.Result, bool) {
	f, err := os.Open(p.resultPath(key))
	if err != nil {
		return nil, false
	}
	defer f.Close()
	res, err := ems.ReadResultJSON(f)
	if err != nil {
		p.log.Warn("discarding unusable result file", "key", key, "error", err)
		return nil, false
	}
	return res, true
}

// deleteResult removes a persisted result; wired as the cache's eviction
// hook so disk usage tracks the LRU bound.
func (p *persister) deleteResult(key string) {
	os.Remove(p.resultPath(key))
}
