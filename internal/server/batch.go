package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/ems"
	"repro/internal/cluster"
	"repro/internal/jobkey"
	"repro/internal/obs"
)

// BatchPairInput names one explicit pair of a batch.
type BatchPairInput struct {
	// Name labels the pair in results; defaults to "<log1>|<log2>".
	Name string   `json:"name,omitempty"`
	Log1 LogInput `json:"log1"`
	Log2 LogInput `json:"log2"`
}

// BatchRequest is the body of POST /v1/batch: either an N×M grid (every
// log of logs1 matched against every log of logs2 — the paper's
// subsidiary-alignment workload) or an explicit pair list, one shared
// option set, and an optional consensus quorum.
type BatchRequest struct {
	Logs1 []LogInput       `json:"logs1,omitempty"`
	Logs2 []LogInput       `json:"logs2,omitempty"`
	Pairs []BatchPairInput `json:"pairs,omitempty"`
	// Options apply to every pair and feed each pair's content key, so a
	// batch pair dedups against identical single submissions cluster-wide.
	Options JobOptions `json:"options"`
	// Quorum is the consensus threshold: a correspondence must be selected
	// by at least this many pair mappings to enter the batch's consensus
	// summary. 0 means a majority of the successful pairs.
	Quorum int `json:"quorum,omitempty"`
}

// BatchPairView is one pair's terminal state in the batch view.
type BatchPairView struct {
	Name string `json:"name"`
	// JobID is the pair's job handle — qualified with the executing node
	// when it ran remotely — pollable via GET /v1/jobs/{id} on this node.
	JobID    string `json:"job_id,omitempty"`
	Node     string `json:"node,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
	Status   Status `json:"status"`
	Error    string `json:"error,omitempty"`
	// Result is the pair's full match result (ems.Result JSON), present
	// once the pair is done. It is byte-identical to what a single-node
	// ems.MatchAll would produce for this pair.
	Result json.RawMessage `json:"result,omitempty"`
}

// consensusEntry mirrors the per-correspondence JSON of a match result.
type consensusEntry struct {
	Left  []string `json:"left"`
	Right []string `json:"right"`
	Score float64  `json:"score"`
}

// BatchView is the body of GET /v1/batch/{id}.
type BatchView struct {
	ID        string         `json:"id"`
	Status    Status         `json:"status"`
	TraceID   string         `json:"trace_id,omitempty"`
	Pairs     int            `json:"pairs"`
	Done      int            `json:"done"`
	Failed    int            `json:"failed"`
	Failovers int            `json:"failovers"`
	PerNode   map[string]int `json:"per_node,omitempty"`
	Quorum    int            `json:"quorum,omitempty"`
	// Consensus is the cluster-wide summary: correspondences supported by
	// at least Quorum pair mappings, scores averaged. Present once done.
	Consensus      []consensusEntry `json:"consensus,omitempty"`
	ConsensusError string           `json:"consensus_error,omitempty"`
	Error          string           `json:"error,omitempty"`
	WallMS         float64          `json:"wall_ms"`
	PairResults    []BatchPairView  `json:"pair_results,omitempty"`
}

// BatchProgressView is the batch slice of GET /v1/jobs/{id}/progress.
type BatchProgressView struct {
	Pairs     int            `json:"pairs"`
	Done      int            `json:"done"`
	Failed    int            `json:"failed"`
	Failovers int            `json:"failovers"`
	PerNode   map[string]int `json:"per_node,omitempty"`
}

// batchPairState is the coordinator-facing state of one pair.
type batchPairState struct {
	name     string
	jobID    string
	node     string
	attempts int
	status   Status
	err      string
	resJSON  []byte // rendered once at completion; the bytes the view serves
}

// batchRun is the live state of one batch job, written by the coordinator
// callbacks and read by HTTP pollers.
type batchRun struct {
	mu        sync.Mutex
	pairs     []batchPairState
	done      int
	failed    int
	failovers int
	perNode   map[string]int
	quorum    int // 0 until finalize (request asked for majority)
	reqQuorum int
	consensus []consensusEntry
	consErr   string
}

func (b *batchRun) noteJob(i int, jobID string) {
	b.mu.Lock()
	b.pairs[i].jobID = jobID
	b.mu.Unlock()
}

func (b *batchRun) noteFailover() {
	b.mu.Lock()
	b.failovers++
	b.mu.Unlock()
}

// completePair folds one terminal pair outcome in; the result is rendered
// to its wire JSON exactly once, here.
func (b *batchRun) completePair(i int, pr cluster.PairResult) error {
	var rendered []byte
	if pr.Err == nil && pr.Result != nil {
		var buf bytes.Buffer
		if err := pr.Result.WriteJSON(&buf); err != nil {
			pr.Err = fmt.Errorf("render pair result: %w", err)
		} else {
			rendered = buf.Bytes()
		}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	p := &b.pairs[i]
	p.node, p.attempts = pr.Node, pr.Attempts
	if pr.Err != nil {
		p.status, p.err = StatusFailed, pr.Err.Error()
		b.failed++
		return pr.Err
	}
	p.status, p.resJSON = StatusDone, rendered
	b.done++
	if pr.Node != "" {
		b.perNode[pr.Node]++
	}
	return nil
}

// finalize computes the consensus summary over the successful pairs.
func (b *batchRun) finalize(results []cluster.PairResult) {
	var mappings []ems.Mapping
	for _, pr := range results {
		if pr.Err == nil && pr.Result != nil {
			mappings = append(mappings, pr.Result.Mapping)
		}
	}
	quorum := b.reqQuorum
	if quorum <= 0 {
		quorum = len(mappings)/2 + 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.quorum = quorum
	if len(mappings) == 0 {
		b.consErr = "no successful pairs to build a consensus from"
		return
	}
	m, err := ems.Consensus(mappings, quorum)
	if err != nil {
		b.consErr = err.Error()
		return
	}
	b.consensus = make([]consensusEntry, 0, len(m))
	for _, c := range m {
		b.consensus = append(b.consensus, consensusEntry{Left: c.Left, Right: c.Right, Score: c.Score})
	}
}

// progress snapshots the counters for the progress endpoint.
func (b *batchRun) progress() *BatchProgressView {
	b.mu.Lock()
	defer b.mu.Unlock()
	v := &BatchProgressView{
		Pairs: len(b.pairs), Done: b.done, Failed: b.failed, Failovers: b.failovers,
		PerNode: make(map[string]int, len(b.perNode)),
	}
	for k, n := range b.perNode {
		v.PerNode[k] = n
	}
	return v
}

// fill copies the batch state into a view. Caller owns the view.
func (b *batchRun) fill(v *BatchView) {
	b.mu.Lock()
	defer b.mu.Unlock()
	v.Pairs = len(b.pairs)
	v.Done, v.Failed, v.Failovers, v.Quorum = b.done, b.failed, b.failovers, b.quorum
	v.PerNode = make(map[string]int, len(b.perNode))
	for k, n := range b.perNode {
		v.PerNode[k] = n
	}
	v.Consensus = append([]consensusEntry(nil), b.consensus...)
	v.ConsensusError = b.consErr
	v.PairResults = make([]BatchPairView, len(b.pairs))
	for i, p := range b.pairs {
		v.PairResults[i] = BatchPairView{
			Name: p.name, JobID: p.jobID, Node: p.node, Attempts: p.attempts,
			Status: p.status, Error: p.err, Result: json.RawMessage(p.resJSON),
		}
	}
}

// preparedBatch is a validated batch: per-pair requests (logs normalized to
// inline traces so they survive forwarding to peers), serialized bodies for
// the wire, and ring keys.
type preparedBatch struct {
	pairs  []cluster.Pair // name + content key, coordinator placement unit
	reqs   []JobRequest   // per-pair local submission
	bodies [][]byte       // per-pair wire form for remote submission
	run    *batchRun
}

// inlineLog normalizes a resolved log to the inline-traces wire form, so a
// pair can be shipped to a peer that does not share this node's filesystem.
func inlineLog(name string, l *ems.Log) LogInput {
	traces := make([][]string, len(l.Traces))
	for i, t := range l.Traces {
		traces[i] = append([]string(nil), t...)
	}
	return LogInput{Name: name, Traces: traces}
}

// defaultBatchPairs bounds the pairs of one batch when Config.MaxBatchPairs
// is unset: a 64×64 grid, plenty for the paper's 31-subsidiary workload.
const defaultBatchPairs = 4096

// prepareBatch validates a batch request and resolves every pair. Errors
// are the client's fault.
func (s *Server) prepareBatch(req BatchRequest) (*preparedBatch, error) {
	grid := len(req.Logs1) > 0 || len(req.Logs2) > 0
	if grid && len(req.Pairs) > 0 {
		return nil, fmt.Errorf("batch: pairs and logs1/logs2 are mutually exclusive")
	}
	if !grid && len(req.Pairs) == 0 {
		return nil, fmt.Errorf("batch: need logs1+logs2 (grid) or pairs")
	}
	if req.Quorum < 0 {
		return nil, fmt.Errorf("batch: quorum must be >= 0, got %d", req.Quorum)
	}
	maxPairs := s.cfg.MaxBatchPairs
	if maxPairs <= 0 {
		maxPairs = defaultBatchPairs
	}
	if (req.Log1Paths() || req.Log2Paths()) && !s.cfg.AllowPaths {
		return nil, fmt.Errorf("log paths are disabled on this server (start emsd with -allow-paths)")
	}
	// Validate the shared options once so a bad option set fails the whole
	// batch up front with a 400; the canonical option key feeds every
	// pair's ring key.
	_, optKey, err := req.Options.build()
	if err != nil {
		return nil, err
	}

	type resolved struct {
		in  LogInput
		log *ems.Log
	}
	resolve := func(in LogInput, fallback string) (resolved, error) {
		l, skipped, err := in.resolve(fallback)
		if err != nil {
			return resolved{}, err
		}
		if skipped > 0 {
			s.metrics.IngestSkipped(uint64(skipped))
		}
		return resolved{in: inlineLog(l.Name, l), log: l}, nil
	}

	pb := &preparedBatch{run: &batchRun{perNode: map[string]int{}, reqQuorum: req.Quorum}}
	addPair := func(name string, l1, l2 resolved) {
		pb.pairs = append(pb.pairs, cluster.Pair{Name: name, Key: jobkey.Compute(l1.log, l2.log, optKey)})
		pb.reqs = append(pb.reqs, JobRequest{Log1: l1.in, Log2: l2.in, Options: req.Options})
		pb.run.pairs = append(pb.run.pairs, batchPairState{name: name, status: StatusQueued})
	}

	if grid {
		if len(req.Logs1) == 0 || len(req.Logs2) == 0 {
			return nil, fmt.Errorf("batch: a grid needs both logs1 and logs2")
		}
		if n := len(req.Logs1) * len(req.Logs2); n > maxPairs {
			return nil, fmt.Errorf("batch: %d×%d grid is %d pairs, server bound is %d",
				len(req.Logs1), len(req.Logs2), n, maxPairs)
		}
		side1 := make([]resolved, len(req.Logs1))
		for i, in := range req.Logs1 {
			if side1[i], err = resolve(in, fmt.Sprintf("logs1[%d]", i)); err != nil {
				return nil, err
			}
		}
		side2 := make([]resolved, len(req.Logs2))
		for j, in := range req.Logs2 {
			if side2[j], err = resolve(in, fmt.Sprintf("logs2[%d]", j)); err != nil {
				return nil, err
			}
		}
		for _, l1 := range side1 {
			for _, l2 := range side2 {
				addPair(l1.in.Name+"|"+l2.in.Name, l1, l2)
			}
		}
	} else {
		if len(req.Pairs) > maxPairs {
			return nil, fmt.Errorf("batch: %d pairs, server bound is %d", len(req.Pairs), maxPairs)
		}
		for i, p := range req.Pairs {
			l1, err := resolve(p.Log1, fmt.Sprintf("pairs[%d].log1", i))
			if err != nil {
				return nil, err
			}
			l2, err := resolve(p.Log2, fmt.Sprintf("pairs[%d].log2", i))
			if err != nil {
				return nil, err
			}
			name := p.Name
			if name == "" {
				name = l1.in.Name + "|" + l2.in.Name
			}
			addPair(name, l1, l2)
		}
	}
	pb.bodies = make([][]byte, len(pb.reqs))
	for i, r := range pb.reqs {
		if pb.bodies[i], err = json.Marshal(r); err != nil {
			return nil, fmt.Errorf("batch: marshal pair %q: %w", pb.pairs[i].Name, err)
		}
	}
	return pb, nil
}

// Log1Paths / Log2Paths report whether any input log reads a server-local
// path (gated by Config.AllowPaths like single submissions).
func (r BatchRequest) Log1Paths() bool {
	for _, l := range r.Logs1 {
		if l.Path != "" {
			return true
		}
	}
	for _, p := range r.Pairs {
		if p.Log1.Path != "" {
			return true
		}
	}
	return false
}

func (r BatchRequest) Log2Paths() bool {
	for _, l := range r.Logs2 {
		if l.Path != "" {
			return true
		}
	}
	for _, p := range r.Pairs {
		if p.Log2.Path != "" {
			return true
		}
	}
	return false
}

// SubmitBatch validates a batch request, registers its job handle, and
// starts the coordinator in the background. The returned job is pollable
// via GET /v1/jobs/{id} (and /progress); the full grid lives at
// GET /v1/batch/{id}. Batches are coordinator-resident: they are not
// journaled (each executed pair is a normal job on its executing node and
// journals there), so a restart of this node loses the batch handle but no
// pair work.
func (s *Server) SubmitBatch(ctx context.Context, req BatchRequest) (*Job, error) {
	pb, err := s.prepareBatch(req)
	if err != nil {
		s.metrics.Rejected()
		return nil, &requestError{err}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.metrics.Rejected()
		return nil, ErrShuttingDown
	}
	s.nextID++
	job := newJob(fmt.Sprintf("batch-%06d", s.nextID))
	job.batch = pb.run
	job.trace = s.traceOrNew(ctx)
	job.trace.Keep()
	job.ctx, job.cancel = context.WithCancelCause(s.ctx)
	s.registerLocked(job)
	s.mu.Unlock()
	s.obs.batchJobs.Inc()
	s.batchWG.Add(1)
	go s.runBatch(job, pb)
	return job, nil
}

// runBatch drives one batch to completion: fan the pairs out over the
// ring, gather, build the consensus, finish the job.
func (s *Server) runBatch(job *Job, pb *preparedBatch) {
	defer s.batchWG.Done()
	if !job.setRunning() {
		return // cancelled before we started
	}
	start := time.Now()
	run := pb.run
	coord := &cluster.Coordinator{
		Ring:         s.cluster.ring,
		Health:       s.cluster.health,
		NodeInflight: s.cluster.cfg.BatchNodeInflight,
		OnFailover: func(node cluster.Node, pair cluster.Pair, err error) {
			run.noteFailover()
			s.obs.peerFailover(node.ID)
		},
		OnDone: func(i int, pr cluster.PairResult) {
			if err := run.completePair(i, pr); err != nil {
				s.obs.batchPairs.With("failed").Inc()
				s.jobLog(job).Warn("batch pair failed", "phase", "batch",
					"pair", pr.Name, "attempts", pr.Attempts, "error", err)
			} else {
				s.obs.batchPairs.With("done").Inc()
			}
		},
	}
	// The runner closes over the per-pair requests; pairs are identified to
	// the coordinator only by (name, key).
	index := make(map[string]int, len(pb.pairs))
	for i, p := range pb.pairs {
		index[p.Name] = i
	}
	coord.Run = func(ctx context.Context, node cluster.Node, pair cluster.Pair) (*ems.Result, error) {
		i := index[pair.Name]
		if node.ID != s.cluster.self.ID {
			s.obs.peerForward(node.ID)
		}
		return s.runPairOn(ctx, node, pb.reqs[i], pb.bodies[i], func(jobID string) { run.noteJob(i, jobID) })
	}
	// The batch trace rides the coordinator context: locally-placed pairs
	// join it directly, remote pairs via the propagation header on every
	// peer exchange.
	results := coord.Execute(obs.ContextWithTrace(job.ctx, job.trace), pb.pairs)
	run.finalize(results)
	wall := time.Since(start)
	failed := 0
	for _, pr := range results {
		if pr.Err != nil {
			failed++
		}
	}
	switch {
	case job.ctx.Err() != nil:
		job.finish(StatusCancelled, nil, "batch abandoned: "+context.Cause(job.ctx).Error(), wall, false)
	case failed == len(results):
		job.finish(StatusFailed, nil, "every pair failed", wall, false)
	default:
		job.finish(StatusDone, nil, "", wall, false)
	}
	if job.cancel != nil {
		job.cancel(nil)
	}
	s.recordTrace(job.trace)
	s.jobLog(job).Info("batch finished", "phase", "batch",
		"pairs", len(results), "failed", failed, "failovers", run.progress().Failovers,
		"wall_ms", float64(wall.Microseconds())/1000)
}

// Batch looks up a batch by job ID and snapshots its view; ok is false for
// unknown IDs and for plain (non-batch) jobs.
func (s *Server) Batch(id string) (BatchView, bool) {
	j, ok := s.Job(id)
	if !ok || j.batch == nil {
		return BatchView{}, false
	}
	jv := j.View()
	v := BatchView{ID: j.ID, Status: jv.Status, TraceID: jv.TraceID, Error: jv.Error, WallMS: jv.WallMS}
	j.batch.fill(&v)
	return v, true
}
