package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/ems"
	"repro/internal/paperexample"
)

func logCSV(t *testing.T, l *ems.Log) string {
	t.Helper()
	var buf bytes.Buffer
	if err := ems.WriteCSV(&buf, l); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func paperRequest(t *testing.T) JobRequest {
	t.Helper()
	return JobRequest{
		Log1: LogInput{Name: "L1", CSV: logCSV(t, paperexample.Log1())},
		Log2: LogInput{Name: "L2", CSV: logCSV(t, paperexample.Log2())},
	}
}

// permLog builds a log of random-permutation traces: dense dependency
// graphs that need many iteration rounds, i.e. a deliberately slow job.
func permLog(n, traces int, name string, seed int64) *ems.Log {
	rng := rand.New(rand.NewSource(seed))
	l := ems.NewLog(name)
	for s := 0; s < traces; s++ {
		p := rng.Perm(n)
		tr := make(ems.Trace, 0, n)
		for _, i := range p {
			tr = append(tr, fmt.Sprintf("%s%02d", name, i))
		}
		l.Append(tr)
	}
	return l
}

func postJob(t *testing.T, ts *httptest.Server, req JobRequest) (JobView, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view JobView
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatal(err)
		}
	}
	return view, resp.StatusCode
}

func pollJob(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var view JobView
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch view.Status {
		case StatusDone, StatusFailed, StatusCancelled:
			return view
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobView{}
}

func getStats(t *testing.T, ts *httptest.Server) Stats {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func fetchResult(t *testing.T, ts *httptest.Server, id string) *ems.Result {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status = %d", resp.StatusCode)
	}
	res, err := ems.ReadResultJSON(resp.Body)
	if err != nil {
		t.Fatalf("parse result: %v", err)
	}
	return res
}

func mustNew(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := mustNew(t, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

func TestSubmitPollResultMatchesDirectMatch(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	view, code := postJob(t, ts, paperRequest(t))
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	final := pollJob(t, ts, view.ID)
	if final.Status != StatusDone {
		t.Fatalf("job ended %s: %s", final.Status, final.Error)
	}
	got := fetchResult(t, ts, view.ID)
	want, err := ems.Match(paperexample.Log1(), paperexample.Log2())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Sim) != len(want.Sim) {
		t.Fatalf("matrix sizes differ: %d vs %d", len(got.Sim), len(want.Sim))
	}
	for i := range want.Sim {
		if math.Abs(got.Sim[i]-want.Sim[i]) > 1e-12 {
			t.Fatalf("similarity differs at %d", i)
		}
	}
	if len(got.Mapping) != len(want.Mapping) {
		t.Fatalf("mapping sizes differ: %d vs %d", len(got.Mapping), len(want.Mapping))
	}
}

// TestConcurrentDuplicateSubmissions is the acceptance scenario: two
// concurrent submissions of the same pair yield identical results with
// exactly one computation; the second is a cache hit visible in /v1/stats.
func TestConcurrentDuplicateSubmissions(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	req := paperRequest(t)
	const n = 2
	views := make([]JobView, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, code := postJob(t, ts, req)
			if code != http.StatusAccepted {
				t.Errorf("submit %d status = %d", i, code)
				return
			}
			views[i] = v
		}(i)
	}
	wg.Wait()
	results := make([]*ems.Result, n)
	for i, v := range views {
		final := pollJob(t, ts, v.ID)
		if final.Status != StatusDone {
			t.Fatalf("job %s ended %s: %s", v.ID, final.Status, final.Error)
		}
		results[i] = fetchResult(t, ts, v.ID)
	}
	for i := range results[0].Sim {
		if results[0].Sim[i] != results[1].Sim[i] {
			t.Fatalf("duplicate submissions disagree at %d", i)
		}
	}
	st := getStats(t, ts)
	if st.CacheMisses != 1 {
		t.Errorf("cache misses = %d, want exactly 1 computation", st.CacheMisses)
	}
	if st.CacheHits != 1 {
		t.Errorf("cache hits = %d, want 1", st.CacheHits)
	}
	if st.Submitted != 2 || st.Completed != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.CacheHitRate != 0.5 {
		t.Errorf("hit rate = %g, want 0.5", st.CacheHitRate)
	}
}

func TestSequentialResubmissionHitsCache(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	req := paperRequest(t)
	v1, _ := postJob(t, ts, req)
	if f := pollJob(t, ts, v1.ID); f.Status != StatusDone {
		t.Fatalf("first job: %s", f.Status)
	}
	v2, _ := postJob(t, ts, req)
	final := pollJob(t, ts, v2.ID)
	if final.Status != StatusDone || !final.CacheHit {
		t.Fatalf("resubmission view = %+v, want done cache hit", final)
	}
	// Different options must miss: the key is content + options.
	alpha := 0.9
	req.Options.Alpha = &alpha
	v3, _ := postJob(t, ts, req)
	if f := pollJob(t, ts, v3.ID); f.CacheHit {
		t.Errorf("different options served from cache")
	}
	st := getStats(t, ts)
	if st.CacheMisses != 2 || st.CacheHits != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.CacheSize != 2 {
		t.Errorf("cache size = %d, want 2", st.CacheSize)
	}
}

func TestCompositeJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	req := paperRequest(t)
	req.Options.Composite = true
	v, _ := postJob(t, ts, req)
	if f := pollJob(t, ts, v.ID); f.Status != StatusDone {
		t.Fatalf("composite job: %s (%s)", f.Status, f.Error)
	}
	res := fetchResult(t, ts, v.ID)
	if len(res.Composites1) != 1 {
		t.Errorf("composite job missed the {C,D} merge: %v", res.Composites1)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name string
		body string
	}{
		{"garbage", "not json"},
		{"missing logs", `{}`},
		{"two sources", `{"log1":{"csv":"case,event\nc,a\n","traces":[["a"]]},"log2":{"traces":[["b"]]}}`},
		{"empty trace", `{"log1":{"traces":[[]]},"log2":{"traces":[["b"]]}}`},
		{"bad csv", `{"log1":{"csv":"no header\n"},"log2":{"traces":[["b"]]}}`},
		{"path disabled", `{"log1":{"path":"/etc/hostname"},"log2":{"traces":[["b"]]}}`},
		{"bad alpha", `{"log1":{"traces":[["a"]]},"log2":{"traces":[["b"]]},"options":{"alpha":7}}`},
		{"unknown field", `{"log1":{"traces":[["a"]]},"log2":{"traces":[["b"]]},"bogus":1}`},
	}
	for _, c := range cases {
		resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", c.name, resp.StatusCode)
		}
	}
	st := getStats(t, ts)
	if st.Rejected != uint64(len(cases)) {
		t.Errorf("rejected = %d, want %d", st.Rejected, len(cases))
	}
	if st.Submitted != 0 {
		t.Errorf("bad requests counted as submissions: %d", st.Submitted)
	}
}

func TestUnknownJobAndPendingResult(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, path := range []string{"/v1/jobs/nope", "/v1/jobs/nope/result"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: status = %d, want 404", path, resp.StatusCode)
		}
	}
	// A slow job's result endpoint answers 409 while it runs.
	slow := JobRequest{
		Log1: LogInput{Traces: tracesOf(permLog(40, 40, "a", 1))},
		Log2: LogInput{Traces: tracesOf(permLog(40, 40, "b", 2))},
	}
	v, code := postJob(t, ts, slow)
	if code != http.StatusAccepted {
		t.Fatalf("submit slow: %d", code)
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + v.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("pending result status = %d, want 409", resp.StatusCode)
	}
	if f := pollJob(t, ts, v.ID); f.Status != StatusDone {
		t.Fatalf("slow job ended %s", f.Status)
	}
}

func tracesOf(l *ems.Log) [][]string {
	out := make([][]string, 0, l.Len())
	for _, t := range l.Traces {
		out = append(out, append([]string(nil), t...))
	}
	return out
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "ok" {
		t.Errorf("healthz body = %v", body)
	}
	if body["node_id"] != "emsd" || body["role"] != "standalone" {
		t.Errorf("healthz cluster identity = %v", body)
	}
}

// TestGracefulShutdownCancelsQueued is the acceptance scenario: shutdown
// while jobs are queued completes them as cancelled — no hang, no panic —
// while the running job drains.
func TestGracefulShutdownCancelsQueued(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	// One slow job occupies the single worker; distinct fast jobs queue
	// behind it. Exact mode keeps it slow enough that the queued jobs are
	// still pending when shutdown fires (the default fast path would drain
	// them before the race).
	slow := JobRequest{
		Log1:    LogInput{Traces: tracesOf(permLog(60, 60, "a", 1))},
		Log2:    LogInput{Traces: tracesOf(permLog(60, 60, "b", 2))},
		Options: JobOptions{Exact: true},
	}
	sv, code := postJob(t, ts, slow)
	if code != http.StatusAccepted {
		t.Fatalf("submit slow: %d", code)
	}
	queued := make([]JobView, 0, 3)
	for i := 0; i < 3; i++ {
		req := paperRequest(t)
		d := 0.001 * float64(i+1) // distinct options → distinct jobs
		req.Options.Delta = &d
		v, code := postJob(t, ts, req)
		if code != http.StatusAccepted {
			t.Fatalf("submit queued %d: %d", i, code)
		}
		queued = append(queued, v)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The slow job was running: it drained to done. The queued ones were
	// cancelled (unless the worker stole one before shutdown won the race —
	// done is then also legal — but at least one must be cancelled, and
	// none may be left hanging).
	if f := pollJob(t, ts, sv.ID); f.Status != StatusDone {
		t.Errorf("running job ended %s, want done (drain)", f.Status)
	}
	cancelled := 0
	for _, v := range queued {
		f := pollJob(t, ts, v.ID)
		switch f.Status {
		case StatusCancelled:
			cancelled++
		case StatusDone:
		default:
			t.Errorf("queued job %s ended %s", v.ID, f.Status)
		}
	}
	if cancelled == 0 {
		t.Errorf("no queued job was cancelled by shutdown")
	}
	// Submissions after shutdown are refused with 503.
	_, code = postJob(t, ts, paperRequest(t))
	if code != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown submit status = %d, want 503", code)
	}
	st := getStats(t, ts)
	if st.Cancelled == 0 {
		t.Errorf("stats cancelled = 0 after shutdown: %+v", st)
	}
	if st.QueueDepth != 0 || st.Running != 0 {
		t.Errorf("gauges non-zero after drain: %+v", st)
	}
	// Idempotent.
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("second shutdown: %v", err)
	}
}

func TestAllowPathsReadsFile(t *testing.T) {
	dir := t.TempDir()
	p1 := dir + "/l1.csv"
	p2 := dir + "/l2.csv"
	writeLogFile(t, p1, paperexample.Log1())
	writeLogFile(t, p2, paperexample.Log2())
	_, ts := newTestServer(t, Config{Workers: 1, AllowPaths: true})
	req := JobRequest{Log1: LogInput{Path: p1}, Log2: LogInput{Path: p2}}
	v, code := postJob(t, ts, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit by path: %d", code)
	}
	if f := pollJob(t, ts, v.ID); f.Status != StatusDone {
		t.Fatalf("path job ended %s: %s", f.Status, f.Error)
	}
	// The content key is transport-independent: the same pair inline is a
	// cache hit.
	v2, _ := postJob(t, ts, paperRequest(t))
	if f := pollJob(t, ts, v2.ID); !f.CacheHit {
		t.Errorf("inline resubmission of path-loaded pair missed the cache")
	}
	// Missing file is the client's fault.
	bad := JobRequest{Log1: LogInput{Path: dir + "/missing.csv"}, Log2: LogInput{Path: p2}}
	if _, code := postJob(t, ts, bad); code != http.StatusBadRequest {
		t.Errorf("missing path status = %d, want 400", code)
	}
}

func writeLogFile(t *testing.T, path string, l *ems.Log) {
	t.Helper()
	var buf bytes.Buffer
	if err := ems.WriteCSV(&buf, l); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestEngineWorkersBudget checks the pool-composition defaults: the per-job
// engine budget derives from GOMAXPROCS/Workers so daemon and engine
// parallelism compose instead of multiplying.
func TestEngineWorkersBudget(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	s := mustNew(t, Config{Workers: procs})
	t.Cleanup(func() { _ = s.Shutdown(context.Background()) })
	if s.cfg.EngineWorkers != 1 {
		t.Errorf("EngineWorkers = %d with a saturated job pool, want 1", s.cfg.EngineWorkers)
	}
	s2 := mustNew(t, Config{Workers: 1})
	t.Cleanup(func() { _ = s2.Shutdown(context.Background()) })
	if s2.cfg.EngineWorkers != procs {
		t.Errorf("EngineWorkers = %d with a single-job pool, want %d", s2.cfg.EngineWorkers, procs)
	}
	s3 := mustNew(t, Config{Workers: 2, EngineWorkers: -1})
	t.Cleanup(func() { _ = s3.Shutdown(context.Background()) })
	if s3.cfg.EngineWorkers != 1 {
		t.Errorf("EngineWorkers = %d with forced serial, want 1", s3.cfg.EngineWorkers)
	}
}

// TestEngineWorkersResultsIdentical runs the same job on a serial-engine and
// a parallel-engine server; the results must match exactly, and the second
// server's cache must still be keyed identically (engine workers are not
// part of the content key).
func TestEngineWorkersResultsIdentical(t *testing.T) {
	_, tsSerial := newTestServer(t, Config{Workers: 1, EngineWorkers: -1})
	_, tsPar := newTestServer(t, Config{Workers: 1, EngineWorkers: 4})
	req := JobRequest{
		Log1: LogInput{Name: "L1", CSV: logCSV(t, permLog(12, 30, "a", 1))},
		Log2: LogInput{Name: "L2", CSV: logCSV(t, permLog(12, 30, "b", 2))},
	}
	vs, _ := postJob(t, tsSerial, req)
	vp, _ := postJob(t, tsPar, req)
	if f := pollJob(t, tsSerial, vs.ID); f.Status != StatusDone {
		t.Fatalf("serial job ended %s: %s", f.Status, f.Error)
	}
	if f := pollJob(t, tsPar, vp.ID); f.Status != StatusDone {
		t.Fatalf("parallel job ended %s: %s", f.Status, f.Error)
	}
	rs := fetchResult(t, tsSerial, vs.ID)
	rp := fetchResult(t, tsPar, vp.ID)
	if len(rs.Sim) != len(rp.Sim) {
		t.Fatalf("matrix sizes differ: %d vs %d", len(rs.Sim), len(rp.Sim))
	}
	for i := range rs.Sim {
		if rs.Sim[i] != rp.Sim[i] {
			t.Fatalf("engine workers changed similarity at %d: %x vs %x", i, rs.Sim[i], rp.Sim[i])
		}
	}
	if rs.Evaluations != rp.Evaluations || rs.Rounds != rp.Rounds {
		t.Errorf("counters differ: evals %d/%d rounds %d/%d", rs.Evaluations, rp.Evaluations, rs.Rounds, rp.Rounds)
	}
}
