// Package server implements emsd, the long-running matching service: an
// HTTP/JSON front end over the ems engine with an async job queue, a
// bounded worker pool, a content-addressed LRU result cache, and a
// concurrent-safe metrics surface.
//
// Request flow: POST /v1/jobs parses the two logs and options, computes the
// content key, and either (a) answers from the cache, (b) coalesces onto an
// identical in-flight job, or (c) enqueues a fresh computation on the pool.
// Clients poll GET /v1/jobs/{id}, fetch GET /v1/jobs/{id}/result, and may
// abort with DELETE /v1/jobs/{id}. Jobs run under per-job wall-clock
// deadlines, panics inside a computation fail only that job, and a full
// queue sheds new submissions instead of accepting unbounded work. Shutdown
// drains running jobs within a grace period, then interrupts the stragglers
// in-engine.
package server

import (
	"context"
	"errors"
	"fmt"
	"log"
	"runtime"
	"runtime/debug"
	"time"

	"sync"

	"repro/ems"
	"repro/internal/core"
)

// Config sizes a Server.
type Config struct {
	// Workers bounds concurrent match computations; <= 0 uses GOMAXPROCS.
	Workers int
	// EngineWorkers is the per-job worker budget of the core iteration
	// engine (ems.WithWorkers): each running job may split its similarity
	// rounds across this many goroutines. 0 derives it from the machine
	// budget as max(1, GOMAXPROCS/Workers), so the job pool and the engine
	// pool compose to roughly GOMAXPROCS total instead of multiplying.
	// Negative forces the serial engine. Engine workers never change
	// results, so the result cache is shared across settings.
	EngineWorkers int
	// CacheSize bounds the result cache (entries); 0 uses the default
	// (128), negative disables caching.
	CacheSize int
	// MaxJobs bounds the job registry; once exceeded, the oldest terminal
	// jobs are forgotten (their IDs 404 afterwards). 0 uses the default
	// (10000).
	MaxJobs int
	// AllowPaths permits LogInput.Path (reading logs from the server's
	// filesystem). Off by default: inline-only keeps the service safe to
	// expose beyond localhost.
	AllowPaths bool
	// JobTimeout is the default per-job wall-clock deadline, counted from
	// the moment a worker picks the job up. 0 means no default deadline.
	// Requests can override it via options.timeout_ms, clamped to
	// MaxJobTimeout. A job that exceeds its deadline fails with a
	// "deadline exceeded" error; it does not count as cancelled.
	JobTimeout time.Duration
	// MaxJobTimeout caps every effective job deadline, including requests
	// that ask for no deadline at all. 0 means no cap.
	MaxJobTimeout time.Duration
	// MaxQueueDepth bounds the number of queued-but-not-running jobs; a
	// submission that would exceed it is shed with ErrQueueFull (HTTP 503 +
	// Retry-After) instead of growing the queue without bound. <= 0 is
	// unbounded. Cache hits and coalesced submissions are always served.
	MaxQueueDepth int
	// MaxBodyBytes bounds a submission body (inline logs included); 0 uses
	// the default 64 MiB. Oversized requests get HTTP 413.
	MaxBodyBytes int64
	// Log receives operational messages (currently: contained job panics
	// with their stack). nil uses the process-default logger.
	Log *log.Logger
}

// requestError marks a client-side (HTTP 400) submission failure.
type requestError struct{ err error }

func (e *requestError) Error() string { return e.err.Error() }
func (e *requestError) Unwrap() error { return e.err }

// IsRequestError reports whether err stems from a malformed submission
// rather than a server-side failure.
func IsRequestError(err error) bool {
	var re *requestError
	return errors.As(err, &re)
}

// Server is the emsd service state. Create with New, expose via Handler,
// stop with Shutdown.
type Server struct {
	cfg     Config
	metrics *Metrics
	cache   *resultCache
	pool    *pool

	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*Job
	jobOrder []string // insertion order, for bounded retention
	inflight map[string]*Job
	nextID   uint64
	closed   bool
}

// New creates a Server and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.EngineWorkers == 0 {
		if cfg.EngineWorkers = runtime.GOMAXPROCS(0) / cfg.Workers; cfg.EngineWorkers < 1 {
			cfg.EngineWorkers = 1
		}
	}
	if cfg.EngineWorkers < 0 {
		cfg.EngineWorkers = 1
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 128
	}
	if cfg.CacheSize < 0 {
		cfg.CacheSize = 0
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 10000
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 64 << 20
	}
	if cfg.Log == nil {
		cfg.Log = log.Default()
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		metrics:  &Metrics{},
		cache:    newResultCache(cfg.CacheSize),
		ctx:      ctx,
		cancel:   cancel,
		jobs:     make(map[string]*Job),
		inflight: make(map[string]*Job),
	}
	s.pool = newPool(cfg.Workers, cfg.MaxQueueDepth, s.runJob)
	return s
}

// errCancelledByClient is the cancellation cause installed by Cancel; runJob
// uses it to distinguish a client abort from shutdown or a deadline.
var errCancelledByClient = errors.New("server: job cancelled by client")

// resolveTimeout derives a job's effective deadline from the server default
// and the request override, clamping to the configured maximum.
func (s *Server) resolveTimeout(overrideMS *float64) (time.Duration, error) {
	d := s.cfg.JobTimeout
	if overrideMS != nil {
		if *overrideMS < 0 {
			return 0, fmt.Errorf("options: timeout_ms must be >= 0, got %g", *overrideMS)
		}
		d = time.Duration(*overrideMS * float64(time.Millisecond))
	}
	if max := s.cfg.MaxJobTimeout; max > 0 && (d <= 0 || d > max) {
		d = max
	}
	return d, nil
}

// Submit validates a request and returns its job handle. The job may
// already be terminal (cache hit). Errors satisfying IsRequestError are the
// client's fault; ErrShuttingDown means the server no longer accepts work.
func (s *Server) Submit(req JobRequest) (*Job, error) {
	if (req.Log1.Path != "" || req.Log2.Path != "") && !s.cfg.AllowPaths {
		s.metrics.Rejected()
		return nil, &requestError{fmt.Errorf("log paths are disabled on this server (start emsd with -allow-paths)")}
	}
	l1, err := req.Log1.resolve("log1")
	if err != nil {
		s.metrics.Rejected()
		return nil, &requestError{err}
	}
	l2, err := req.Log2.resolve("log2")
	if err != nil {
		s.metrics.Rejected()
		return nil, &requestError{err}
	}
	opts, optKey, err := req.Options.build()
	if err != nil {
		s.metrics.Rejected()
		return nil, &requestError{err}
	}
	timeout, err := s.resolveTimeout(req.Options.TimeoutMS)
	if err != nil {
		s.metrics.Rejected()
		return nil, &requestError{err}
	}
	// The engine-worker budget is appended after the cache key is derived:
	// worker counts never change results, so jobs submitted under different
	// budgets still coalesce and share cache entries.
	opts = append(opts, ems.WithWorkers(s.cfg.EngineWorkers))
	key := CacheKey(l1, l2, optKey)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.metrics.Rejected()
		return nil, ErrShuttingDown
	}
	s.nextID++
	job := newJob(fmt.Sprintf("job-%06d", s.nextID))
	s.registerLocked(job)
	s.metrics.Submitted()

	// (a) Completed result already cached.
	if res, ok := s.cache.Get(key); ok {
		s.mu.Unlock()
		s.metrics.CacheHit()
		job.finish(StatusDone, res, "", 0, true)
		s.metrics.JobDone(StatusDone, 0, false)
		return job, nil
	}
	// (b) Identical job already queued or running: coalesce.
	if leader, ok := s.inflight[key]; ok {
		leader.followers = append(leader.followers, job)
		s.mu.Unlock()
		s.metrics.CacheHit()
		return job, nil
	}
	// (c) Fresh computation.
	job.key = key
	job.pair = ems.PairInput{Name: job.ID, Log1: l1, Log2: l2}
	job.opts = opts
	job.composite = req.Options.Composite
	job.timeout = timeout
	job.ctx, job.cancel = context.WithCancelCause(s.ctx)
	s.inflight[key] = job
	s.mu.Unlock()
	s.metrics.CacheMiss()
	if err := s.pool.Enqueue(job); err != nil {
		if errors.Is(err, ErrQueueFull) {
			s.metrics.Shed()
			s.completeJob(job, StatusCancelled, nil, "job queue is full", 0, false)
			return nil, ErrQueueFull
		}
		s.completeJob(job, StatusCancelled, nil, "server shutting down", 0, false)
		return nil, ErrShuttingDown
	}
	return job, nil
}

// registerLocked adds the job to the registry, evicting the oldest terminal
// jobs beyond the retention bound. Caller holds s.mu.
func (s *Server) registerLocked(j *Job) {
	s.jobs[j.ID] = j
	s.jobOrder = append(s.jobOrder, j.ID)
	for len(s.jobs) > s.cfg.MaxJobs && len(s.jobOrder) > 0 {
		oldest := s.jobOrder[0]
		old, ok := s.jobs[oldest]
		if ok {
			switch old.Status() {
			case StatusDone, StatusFailed, StatusCancelled:
				delete(s.jobs, oldest)
			default:
				return // oldest still active: retain everything for now
			}
		}
		s.jobOrder = s.jobOrder[1:]
	}
}

// runJob is the pool callback: compute one pair and complete the job. The
// computation runs under the job's cancellable context plus its wall-clock
// deadline (armed here, so queue time does not count), and a panic anywhere
// in it — including inside engine worker goroutines, which hand their panics
// back to this goroutine — fails only this job while the daemon keeps
// serving.
func (s *Server) runJob(j *Job) {
	if !j.setRunning() {
		return
	}
	ctx := j.ctx
	if ctx == nil {
		ctx = s.ctx
	}
	if j.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, j.timeout)
		defer cancel()
	}
	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			s.metrics.Panicked()
			val, stack := r, debug.Stack()
			if ep, ok := r.(*core.EnginePanic); ok {
				val, stack = ep.Val, ep.Stack
			}
			s.cfg.Log.Printf("emsd: job %s panicked (contained): %v\n%s", j.ID, val, stack)
			s.completeJob(j, StatusFailed, nil,
				fmt.Sprintf("internal error: computation panicked: %v", val), time.Since(start), false)
		}
	}()
	opts := append(append(make([]ems.Option, 0, len(j.opts)+1), j.opts...), ems.WithContext(ctx))
	var res *ems.Result
	var err error
	if j.composite {
		res, err = ems.MatchComposite(j.pair.Log1, j.pair.Log2, opts...)
	} else {
		res, err = ems.Match(j.pair.Log1, j.pair.Log2, opts...)
	}
	wall := time.Since(start)
	switch {
	case err == nil:
		s.completeJob(j, StatusDone, res, "", wall, true)
	case errors.Is(err, ems.ErrStopped) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		cause := context.Cause(ctx)
		switch {
		case errors.Is(cause, errCancelledByClient):
			s.completeJob(j, StatusCancelled, nil, "cancelled by client", wall, false)
		case errors.Is(cause, context.DeadlineExceeded):
			s.metrics.TimedOut()
			s.completeJob(j, StatusFailed, nil,
				fmt.Sprintf("deadline exceeded: job ran longer than its %v budget", j.timeout), wall, false)
		default:
			s.completeJob(j, StatusCancelled, nil, "server shutting down", wall, false)
		}
	default:
		s.completeJob(j, StatusFailed, nil, err.Error(), wall, false)
	}
}

// completeJob finishes a leader job and every follower coalesced onto it,
// publishing a successful result to the cache.
func (s *Server) completeJob(j *Job, status Status, res *ems.Result, errMsg string, wall time.Duration, computed bool) {
	if status == StatusDone && res != nil {
		s.cache.Put(j.key, res)
	}
	s.mu.Lock()
	if j.key != "" && s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	followers := j.followers
	j.followers = nil
	s.mu.Unlock()

	j.finish(status, res, errMsg, wall, false)
	s.metrics.JobDone(status, wall, computed)
	for _, f := range followers {
		f.finish(status, res, errMsg, 0, true)
		s.metrics.JobDone(status, 0, false)
	}
	if j.cancel != nil {
		// Terminal either way: release the job context's resources. runJob
		// has already read the cancellation cause it cares about.
		j.cancel(nil)
	}
}

// Cancel aborts a job by ID: a queued job is finished as cancelled without
// running, a running job's computation is interrupted in-engine (within one
// iteration round) and finishes as cancelled shortly after. Cancelling a
// terminal job is a no-op. Cancelling a coalesced (follower) job detaches
// only that job; the leader computation keeps running for the others.
// ok is false when the ID is unknown.
func (s *Server) Cancel(id string) (*Job, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	if j.cancel != nil {
		// Cancel the context before the status check: if a worker picks the
		// job up concurrently, its computation starts already-cancelled and
		// aborts on the first round.
		j.cancel(errCancelledByClient)
	}
	if j.Status() == StatusQueued {
		// Not picked up yet (fresh job still queued, or a follower): finish
		// it now so pollers see the cancellation immediately; the worker
		// skips it later because setRunning fails on terminal jobs.
		s.completeJob(j, StatusCancelled, nil, "cancelled by client", 0, false)
	}
	return j, true
}

// Job looks up a job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Stats snapshots the metrics with live gauges filled in.
func (s *Server) Stats() Stats {
	st := s.metrics.Snapshot()
	st.QueueDepth = s.pool.Depth()
	st.Running = s.pool.Running()
	st.CacheSize = s.cache.Len()
	return st
}

// Shutdown stops intake, cancels queued jobs, and drains running jobs in
// two bounded phases: first it waits up to ctx's deadline for them to finish
// on their own, then it cancels the base context — which aborts the
// remaining computations in-engine within one iteration round — and waits
// for the workers to observe that. It returns ctx's error when the grace
// period expired (some jobs were interrupted rather than drained), nil when
// everything finished in time. It is idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	dropped := s.pool.Close()
	for _, j := range dropped {
		s.completeJob(j, StatusCancelled, nil, "server shutting down", 0, false)
	}
	err := s.pool.Wait(ctx)
	if !already {
		// Release the base context only after the drain, so running jobs
		// were given the chance to finish.
		s.cancel()
	}
	if err != nil {
		// Grace expired: the base-context cancellation above interrupts the
		// stragglers inside the iteration engine, so this final wait returns
		// within about one round rather than one job.
		_ = s.pool.Wait(context.Background())
	}
	return err
}
