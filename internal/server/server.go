// Package server implements emsd, the long-running matching service: an
// HTTP/JSON front end over the ems engine with an async job queue, a
// bounded worker pool, a content-addressed LRU result cache, and a
// concurrent-safe metrics surface.
//
// Request flow: POST /v1/jobs parses the two logs and options, computes the
// content key, and either (a) answers from the cache, (b) coalesces onto an
// identical in-flight job, or (c) enqueues a fresh computation on the pool.
// Clients poll GET /v1/jobs/{id} and fetch GET /v1/jobs/{id}/result.
// Shutdown drains running jobs and cancels queued ones.
package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"sync"

	"repro/ems"
)

// Config sizes a Server.
type Config struct {
	// Workers bounds concurrent match computations; <= 0 uses GOMAXPROCS.
	Workers int
	// EngineWorkers is the per-job worker budget of the core iteration
	// engine (ems.WithWorkers): each running job may split its similarity
	// rounds across this many goroutines. 0 derives it from the machine
	// budget as max(1, GOMAXPROCS/Workers), so the job pool and the engine
	// pool compose to roughly GOMAXPROCS total instead of multiplying.
	// Negative forces the serial engine. Engine workers never change
	// results, so the result cache is shared across settings.
	EngineWorkers int
	// CacheSize bounds the result cache (entries); 0 uses the default
	// (128), negative disables caching.
	CacheSize int
	// MaxJobs bounds the job registry; once exceeded, the oldest terminal
	// jobs are forgotten (their IDs 404 afterwards). 0 uses the default
	// (10000).
	MaxJobs int
	// AllowPaths permits LogInput.Path (reading logs from the server's
	// filesystem). Off by default: inline-only keeps the service safe to
	// expose beyond localhost.
	AllowPaths bool
}

// requestError marks a client-side (HTTP 400) submission failure.
type requestError struct{ err error }

func (e *requestError) Error() string { return e.err.Error() }
func (e *requestError) Unwrap() error { return e.err }

// IsRequestError reports whether err stems from a malformed submission
// rather than a server-side failure.
func IsRequestError(err error) bool {
	var re *requestError
	return errors.As(err, &re)
}

// Server is the emsd service state. Create with New, expose via Handler,
// stop with Shutdown.
type Server struct {
	cfg     Config
	metrics *Metrics
	cache   *resultCache
	pool    *pool

	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*Job
	jobOrder []string // insertion order, for bounded retention
	inflight map[string]*Job
	nextID   uint64
	closed   bool
}

// New creates a Server and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.EngineWorkers == 0 {
		if cfg.EngineWorkers = runtime.GOMAXPROCS(0) / cfg.Workers; cfg.EngineWorkers < 1 {
			cfg.EngineWorkers = 1
		}
	}
	if cfg.EngineWorkers < 0 {
		cfg.EngineWorkers = 1
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 128
	}
	if cfg.CacheSize < 0 {
		cfg.CacheSize = 0
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 10000
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		metrics:  &Metrics{},
		cache:    newResultCache(cfg.CacheSize),
		ctx:      ctx,
		cancel:   cancel,
		jobs:     make(map[string]*Job),
		inflight: make(map[string]*Job),
	}
	s.pool = newPool(cfg.Workers, s.runJob)
	return s
}

// Submit validates a request and returns its job handle. The job may
// already be terminal (cache hit). Errors satisfying IsRequestError are the
// client's fault; ErrShuttingDown means the server no longer accepts work.
func (s *Server) Submit(req JobRequest) (*Job, error) {
	if (req.Log1.Path != "" || req.Log2.Path != "") && !s.cfg.AllowPaths {
		s.metrics.Rejected()
		return nil, &requestError{fmt.Errorf("log paths are disabled on this server (start emsd with -allow-paths)")}
	}
	l1, err := req.Log1.resolve("log1")
	if err != nil {
		s.metrics.Rejected()
		return nil, &requestError{err}
	}
	l2, err := req.Log2.resolve("log2")
	if err != nil {
		s.metrics.Rejected()
		return nil, &requestError{err}
	}
	opts, optKey, err := req.Options.build()
	if err != nil {
		s.metrics.Rejected()
		return nil, &requestError{err}
	}
	// The engine-worker budget is appended after the cache key is derived:
	// worker counts never change results, so jobs submitted under different
	// budgets still coalesce and share cache entries.
	opts = append(opts, ems.WithWorkers(s.cfg.EngineWorkers))
	key := CacheKey(l1, l2, optKey)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.metrics.Rejected()
		return nil, ErrShuttingDown
	}
	s.nextID++
	job := newJob(fmt.Sprintf("job-%06d", s.nextID))
	s.registerLocked(job)
	s.metrics.Submitted()

	// (a) Completed result already cached.
	if res, ok := s.cache.Get(key); ok {
		s.mu.Unlock()
		s.metrics.CacheHit()
		job.finish(StatusDone, res, "", 0, true)
		s.metrics.JobDone(StatusDone, 0, false)
		return job, nil
	}
	// (b) Identical job already queued or running: coalesce.
	if leader, ok := s.inflight[key]; ok {
		leader.followers = append(leader.followers, job)
		s.mu.Unlock()
		s.metrics.CacheHit()
		return job, nil
	}
	// (c) Fresh computation.
	job.key = key
	job.pair = ems.PairInput{Name: job.ID, Log1: l1, Log2: l2}
	job.opts = opts
	job.composite = req.Options.Composite
	s.inflight[key] = job
	s.mu.Unlock()
	s.metrics.CacheMiss()
	if err := s.pool.Enqueue(job); err != nil {
		s.completeJob(job, StatusCancelled, nil, "server shutting down", 0, false)
		return nil, ErrShuttingDown
	}
	return job, nil
}

// registerLocked adds the job to the registry, evicting the oldest terminal
// jobs beyond the retention bound. Caller holds s.mu.
func (s *Server) registerLocked(j *Job) {
	s.jobs[j.ID] = j
	s.jobOrder = append(s.jobOrder, j.ID)
	for len(s.jobs) > s.cfg.MaxJobs && len(s.jobOrder) > 0 {
		oldest := s.jobOrder[0]
		old, ok := s.jobs[oldest]
		if ok {
			switch old.Status() {
			case StatusDone, StatusFailed, StatusCancelled:
				delete(s.jobs, oldest)
			default:
				return // oldest still active: retain everything for now
			}
		}
		s.jobOrder = s.jobOrder[1:]
	}
}

// runJob is the pool callback: compute one pair and complete the job.
func (s *Server) runJob(j *Job) {
	if !j.setRunning() {
		return
	}
	start := time.Now()
	out := ems.MatchAllContext(s.ctx, []ems.PairInput{j.pair}, 1, j.composite, j.opts...)[0]
	wall := time.Since(start)
	switch {
	case out.Err == nil:
		s.completeJob(j, StatusDone, out.Result, "", wall, true)
	case errors.Is(out.Err, context.Canceled) || errors.Is(out.Err, context.DeadlineExceeded):
		s.completeJob(j, StatusCancelled, nil, "server shutting down", wall, false)
	default:
		s.completeJob(j, StatusFailed, nil, out.Err.Error(), wall, false)
	}
}

// completeJob finishes a leader job and every follower coalesced onto it,
// publishing a successful result to the cache.
func (s *Server) completeJob(j *Job, status Status, res *ems.Result, errMsg string, wall time.Duration, computed bool) {
	if status == StatusDone && res != nil {
		s.cache.Put(j.key, res)
	}
	s.mu.Lock()
	if j.key != "" && s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	followers := j.followers
	j.followers = nil
	s.mu.Unlock()

	j.finish(status, res, errMsg, wall, false)
	s.metrics.JobDone(status, wall, computed)
	for _, f := range followers {
		f.finish(status, res, errMsg, 0, true)
		s.metrics.JobDone(status, 0, false)
	}
}

// Job looks up a job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Stats snapshots the metrics with live gauges filled in.
func (s *Server) Stats() Stats {
	st := s.metrics.Snapshot()
	st.QueueDepth = s.pool.Depth()
	st.Running = s.pool.Running()
	st.CacheSize = s.cache.Len()
	return st
}

// Shutdown stops intake, cancels queued jobs, and waits for running jobs to
// drain (bounded by ctx). It is idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	dropped := s.pool.Close()
	for _, j := range dropped {
		s.completeJob(j, StatusCancelled, nil, "server shutting down", 0, false)
	}
	err := s.pool.Wait(ctx)
	if !already {
		// Release the base context only after the drain, so running jobs
		// were given the chance to finish.
		s.cancel()
	}
	return err
}
